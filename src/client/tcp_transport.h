// TcpTransport: dial a real MVServer socket (client/transport.h impl).
//
// POSIX sockets, numeric IPv4 hosts, TCP_NODELAY on (the protocol is
// request/response; Nagle would serialize pipelined batches behind delayed
// ACKs). Windows is not supported — Connect returns Internal there.
#pragma once

#include <cstdint>
#include <string>

#include "client/transport.h"

namespace mvstore {

class TcpTransport : public Transport {
 public:
  TcpTransport(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  std::unique_ptr<Connection> Connect(Status* status = nullptr) override;

 private:
  std::string host_;
  uint16_t port_;
};

}  // namespace mvstore
