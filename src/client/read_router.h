// ReadRouter: route read-only work to follower replicas, writes to the
// leader.
//
// Log-shipping followers (docs/REPLICATION.md) serve snapshot reads at
// their replayed_ts watermark while refusing writes with kReadOnly, so a
// client that separates its read-only transactions can fan them out across
// followers and reserve the leader for writes. The router is deliberately
// dumb: round-robin over the registered followers, falling back to the
// leader when a follower is marked unavailable (connection refused, or the
// follower answered kUnavailable because it never attached). Staleness is
// the caller's contract — a follower read observes every commit up to its
// watermark, not necessarily the caller's own latest write through the
// leader; read-your-own-writes callers use Writer() for those reads.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "client/client.h"
#include "common/mutex.h"

namespace mvstore {

class ReadRouter {
 public:
  /// Non-owning: every client must outlive the router.
  explicit ReadRouter(MVClient* leader) : leader_(leader) {}

  void AddFollower(MVClient* follower) {
    MutexLock guard(mutex_);
    followers_.push_back(Entry{follower, true});
  }

  /// All writes — and read-your-own-writes reads — go here.
  MVClient* Writer() const { return leader_; }

  /// Next read target: round-robin over available followers; the leader
  /// when every follower is out (reads must keep working with zero
  /// replicas).
  MVClient* Reader() {
    MutexLock guard(mutex_);
    const size_t n = followers_.size();
    for (size_t i = 0; i < n; ++i) {
      Entry& e = followers_[next_++ % n];
      if (e.available) return e.client;
    }
    return leader_;
  }

  /// A read on this follower failed in a way that is not per-transaction
  /// (connect refused, kUnavailable): stop routing to it.
  void MarkUnavailable(MVClient* follower) { SetAvailable(follower, false); }
  /// The follower recovered (e.g. the caller's periodic probe succeeded).
  void MarkAvailable(MVClient* follower) { SetAvailable(follower, true); }

  size_t available_followers() {
    MutexLock guard(mutex_);
    size_t n = 0;
    for (const Entry& e : followers_) {
      if (e.available) ++n;
    }
    return n;
  }

 private:
  struct Entry {
    MVClient* client;
    bool available;
  };

  void SetAvailable(MVClient* follower, bool available) {
    MutexLock guard(mutex_);
    for (Entry& e : followers_) {
      if (e.client == follower) e.available = available;
    }
  }

  MVClient* const leader_;
  Mutex mutex_;
  std::vector<Entry> followers_ GUARDED_BY(mutex_);
  size_t next_ GUARDED_BY(mutex_) = 0;
};

}  // namespace mvstore
