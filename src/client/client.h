// MVClient: the client library for the wire protocol (server/wire.h).
//
// Wraps one Connection (TCP or loopback — the client cannot tell) behind a
// typed API. Two usage styles:
//
//  * Synchronous: each call sends one request frame and blocks for its
//    response. An interactive transaction spans round trips: Begin() opens
//    a server-side transaction owned by this connection's session,
//    Get/Insert/Put/Delete/ScanRange operate inside it, Commit()/Abort()
//    finish it.
//
//  * Pipelined batch: Queue*() buffers any number of request frames
//    locally, FlushBatch() sends them in one write and then reads exactly
//    one response per request, in order. A whole transaction
//    (Begin..Commit) — or a batch of whole-txn procedure calls — costs one
//    network round trip.
//
// Statuses come from the server verbatim (an Aborted status means the
// server already rolled the transaction back; kUnavailable means the
// request was refused unstarted — backpressure or shutdown — and can be
// retried). Transport failures and protocol violations surface as
// kInternal and poison the client: every later call fails fast, because a
// byte stream that lost framing cannot be resynchronized.
//
// Not thread-safe: one MVClient per thread, like one Connection.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "client/transport.h"
#include "common/types.h"
#include "server/wire.h"

namespace mvstore {

/// One response: the operation's status plus its opcode-specific payload
/// bytes (row for kGet, count|rows for kScanRange, procedure result for
/// kCall, text for kStats; empty otherwise).
struct WireResult {
  Status status;
  std::vector<uint8_t> payload;
};

class MVClient {
 public:
  /// Takes ownership of an established connection (Transport::Connect).
  explicit MVClient(std::unique_ptr<Connection> conn);
  ~MVClient();

  MVClient(const MVClient&) = delete;
  MVClient& operator=(const MVClient&) = delete;

  /// False once the transport broke or the protocol desynced.
  bool connected() const { return !broken_ && conn_ != nullptr; }

  /// --- synchronous API --------------------------------------------------------

  Status Ping();
  Status Begin(IsolationLevel isolation, bool read_only = false);
  Status Commit();
  Status Abort();
  /// Copies the row into `row` (`row_size` must match the table's payload
  /// size — Internal on a size mismatch with the server's reply).
  Status Get(TableId table, IndexId index, uint64_t key, void* row,
             size_t row_size);
  /// Size-agnostic variant: *row takes whatever payload the server sent
  /// (callers that don't know the table's payload size, e.g. the CLI).
  Status Get(TableId table, IndexId index, uint64_t key,
             std::vector<uint8_t>* row);
  Status Insert(TableId table, const void* payload, size_t size);
  /// Full-row overwrite of the row `key` reaches via `index`.
  Status Put(TableId table, IndexId index, uint64_t key, const void* payload,
             size_t size);
  Status Delete(TableId table, IndexId index, uint64_t key);
  /// Rows (ascending key order over [lo, hi]) appended to *rows, at most
  /// max_rows (server caps it too).
  Status ScanRange(TableId table, IndexId index, uint64_t lo, uint64_t hi,
                   uint32_t max_rows, std::vector<std::vector<uint8_t>>* rows);
  /// Procedure id registered under `name` (Database::RegisterProcedure).
  Status Resolve(const std::string& name, uint32_t* proc_id);
  /// Invoke a whole-txn procedure; one round trip commits a transaction.
  Status Call(uint32_t proc_id, const void* arg, size_t arg_len,
              std::vector<uint8_t>* result = nullptr);
  /// Server + engine counters as "name=value" lines.
  Status Stats(std::string* text);

  /// --- pipelined batch API ----------------------------------------------------

  void QueuePing();
  void QueueBegin(IsolationLevel isolation, bool read_only = false);
  void QueueCommit();
  void QueueAbort();
  void QueueGet(TableId table, IndexId index, uint64_t key);
  void QueueInsert(TableId table, const void* payload, size_t size);
  void QueuePut(TableId table, IndexId index, uint64_t key,
                const void* payload, size_t size);
  void QueueDelete(TableId table, IndexId index, uint64_t key);
  void QueueCall(uint32_t proc_id, const void* arg, size_t arg_len);

  /// Requests queued and not yet flushed.
  size_t queued() const { return batch_ops_.size(); }

  /// Send every queued frame in one write, then read one response per
  /// request into *results (in request order; may be nullptr to discard
  /// payloads but statuses are lost too — pass a vector). Internal if the
  /// transport broke; the per-request statuses live in the results.
  Status FlushBatch(std::vector<WireResult>* results);

 private:
  void QueueFrame(wire::Opcode opcode, const std::vector<uint8_t>& body);
  Status Roundtrip(wire::Opcode opcode, const std::vector<uint8_t>& body,
                   std::vector<uint8_t>* payload);
  Status ReadResponse(wire::Opcode expect, WireResult* result);

  std::unique_ptr<Connection> conn_;
  wire::FrameParser parser_;
  std::vector<uint8_t> batch_;
  std::vector<wire::Opcode> batch_ops_;
  bool broken_ = false;
};

}  // namespace mvstore
