// MVClient: the client library for the wire protocol (server/wire.h).
//
// Wraps one Connection (TCP or loopback — the client cannot tell) behind a
// typed API. Two usage styles:
//
//  * Synchronous: each call sends one request frame and blocks for its
//    response. An interactive transaction spans round trips: Begin() opens
//    a server-side transaction owned by this connection's session,
//    Get/Insert/Put/Delete/ScanRange operate inside it, Commit()/Abort()
//    finish it.
//
//  * Pipelined batch: Queue*() buffers any number of request frames
//    locally, FlushBatch() sends them in one write and then reads exactly
//    one response per request, in order. A whole transaction
//    (Begin..Commit) — or a batch of whole-txn procedure calls — costs one
//    network round trip.
//
// Statuses come from the server verbatim (an Aborted status means the
// server already rolled the transaction back; kUnavailable means the
// request was refused unstarted — backpressure or shutdown — and can be
// retried; kReadOnly means the database degraded and refused the write).
// Transport failures and protocol violations surface as kInternal and
// poison the connection: a byte stream that lost framing cannot be
// resynchronized. A client constructed over a Transport can recover by
// reconnecting; a client owning a single Connection stays broken.
//
// Retry policy (ClientOptions): kUnavailable responses are always
// retry-safe (the request was never started). A broken or timed-out
// connection is retried — through a reconnect — only for idempotent
// requests (Ping/Get/ScanRange/Resolve/Stats) and Begin; a write or Commit
// whose outcome is unknown is NEVER silently retried (the caller must
// decide). No retry happens while an interactive transaction is open: the
// transaction died with the session, so the caller has to restart it.
// Backoff between attempts is capped exponential with deterministic jitter.
//
// Not thread-safe: one MVClient per thread, like one Connection.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "client/transport.h"
#include "common/types.h"
#include "server/wire.h"

namespace mvstore {

/// One response: the operation's status plus its opcode-specific payload
/// bytes (row for kGet, count|rows for kScanRange, procedure result for
/// kCall, text for kStats; empty otherwise).
struct WireResult {
  Status status;
  std::vector<uint8_t> payload;
};

struct ClientOptions {
  /// Per-operation deadline on reading a response, in milliseconds; 0 waits
  /// forever. Expiry surfaces as kTimeout and poisons the connection (a
  /// late response would desync the framing), so with a Transport the next
  /// retryable request reconnects.
  uint32_t op_timeout_ms = 0;
  /// Extra attempts for retry-safe failures (see the policy above). 0
  /// disables retry entirely.
  uint32_t max_retries = 0;
  /// First backoff sleep; doubles per attempt up to backoff_max_ms, with
  /// jitter drawn deterministically from retry_seed in [ms/2, ms]. 0 skips
  /// sleeping (tests).
  uint32_t backoff_base_ms = 1;
  uint32_t backoff_max_ms = 128;
  /// Jitter stream seed; 0 uses a fixed default.
  uint64_t retry_seed = 0;
};

class MVClient {
 public:
  /// Takes ownership of an established connection (Transport::Connect).
  /// Without a Transport the client cannot reconnect: transport-level
  /// retries are limited to kUnavailable responses on the live connection.
  explicit MVClient(std::unique_ptr<Connection> conn,
                    ClientOptions options = {});
  /// Reconnecting client: dials `transport` lazily on first use and redials
  /// after a broken connection when the retry policy allows. `transport`
  /// must outlive the client.
  explicit MVClient(Transport& transport, ClientOptions options = {});
  ~MVClient();

  MVClient(const MVClient&) = delete;
  MVClient& operator=(const MVClient&) = delete;

  /// False once the transport broke or the protocol desynced (a Transport-
  /// backed client may still recover on its next retryable request).
  bool connected() const { return !broken_ && conn_ != nullptr; }

  /// True while an interactive Begin..Commit/Abort transaction is open on
  /// this connection (client-side bookkeeping driving the retry policy).
  bool in_txn() const { return in_txn_; }

  /// Successful (re)connects through the Transport, and requests re-sent by
  /// the retry policy (diagnostics).
  uint64_t reconnects() const { return reconnects_; }
  uint64_t retries() const { return retries_; }

  /// --- synchronous API --------------------------------------------------------

  Status Ping();
  Status Begin(IsolationLevel isolation, bool read_only = false);
  Status Commit();
  Status Abort();
  /// Copies the row into `row` (`row_size` must match the table's payload
  /// size — Internal on a size mismatch with the server's reply).
  Status Get(TableId table, IndexId index, uint64_t key, void* row,
             size_t row_size);
  /// Size-agnostic variant: *row takes whatever payload the server sent
  /// (callers that don't know the table's payload size, e.g. the CLI).
  Status Get(TableId table, IndexId index, uint64_t key,
             std::vector<uint8_t>* row);
  Status Insert(TableId table, const void* payload, size_t size);
  /// Full-row overwrite of the row `key` reaches via `index`.
  Status Put(TableId table, IndexId index, uint64_t key, const void* payload,
             size_t size);
  Status Delete(TableId table, IndexId index, uint64_t key);
  /// Rows (ascending key order over [lo, hi]) appended to *rows, at most
  /// max_rows (server caps it too).
  Status ScanRange(TableId table, IndexId index, uint64_t lo, uint64_t hi,
                   uint32_t max_rows, std::vector<std::vector<uint8_t>>* rows);
  /// Procedure id registered under `name` (Database::RegisterProcedure).
  Status Resolve(const std::string& name, uint32_t* proc_id);
  /// Invoke a whole-txn procedure; one round trip commits a transaction.
  Status Call(uint32_t proc_id, const void* arg, size_t arg_len,
              std::vector<uint8_t>* result = nullptr);
  /// Server + engine counters as "name=value" lines.
  Status Stats(std::string* text);
  /// Prometheus text exposition (counters, latency histograms, gauges);
  /// docs/OBSERVABILITY.md has the catalog and a scrape example.
  Status Metrics(std::string* text);
  /// Promote the follower behind this session into a writable leader
  /// (docs/REPLICATION.md). kUnavailable when it never caught up and
  /// `force` is false; kInvalidArgument when the server is not a follower.
  /// Idempotent — promoting a promoted follower is OK.
  Status Promote(bool force = false);

  /// --- pipelined batch API ----------------------------------------------------

  void QueuePing();
  void QueueBegin(IsolationLevel isolation, bool read_only = false);
  void QueueCommit();
  void QueueAbort();
  void QueueGet(TableId table, IndexId index, uint64_t key);
  void QueueInsert(TableId table, const void* payload, size_t size);
  void QueuePut(TableId table, IndexId index, uint64_t key,
                const void* payload, size_t size);
  void QueueDelete(TableId table, IndexId index, uint64_t key);
  void QueueCall(uint32_t proc_id, const void* arg, size_t arg_len);

  /// Requests queued and not yet flushed.
  size_t queued() const { return batch_ops_.size(); }

  /// Send every queued frame in one write, then read one response per
  /// request into *results (in request order; may be nullptr to discard
  /// payloads but statuses are lost too — pass a vector). Internal if the
  /// transport broke; the per-request statuses live in the results.
  Status FlushBatch(std::vector<WireResult>* results);

 private:
  void QueueFrame(wire::Opcode opcode, const std::vector<uint8_t>& body);
  /// Retry loop around RoundtripOnce; `idempotent` marks requests safe to
  /// re-send after a broken connection (outcome-unknown writes are not).
  Status Roundtrip(wire::Opcode opcode, const std::vector<uint8_t>& body,
                   std::vector<uint8_t>* payload, bool idempotent = false);
  Status RoundtripOnce(wire::Opcode opcode, const std::vector<uint8_t>& body,
                       std::vector<uint8_t>* payload);
  Status ReadResponse(wire::Opcode expect, WireResult* result);
  /// Update in_txn_ from an (opcode, response status) pair.
  void TrackTxnState(wire::Opcode opcode, const Status& s);
  /// Arm deadline_ for one request/batch from options_.op_timeout_ms.
  void ArmDeadline();
  /// Dial transport_ again (closing any old connection); false when there
  /// is no transport or the dial failed (connect_status_ says why).
  bool Reconnect();
  void Backoff(uint32_t attempt);

  ClientOptions options_;
  Transport* transport_ = nullptr;  // not owned; may be null
  std::unique_ptr<Connection> conn_;
  wire::FrameParser parser_;
  std::vector<uint8_t> batch_;
  std::vector<wire::Opcode> batch_ops_;
  bool broken_ = false;
  bool in_txn_ = false;
  Status connect_status_;
  std::chrono::steady_clock::time_point deadline_{};
  uint64_t rng_ = 0;
  uint64_t reconnects_ = 0;
  uint64_t retries_ = 0;
};

}  // namespace mvstore
