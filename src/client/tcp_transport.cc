#include "client/tcp_transport.h"

#include "common/failpoint.h"

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace mvstore {

#if !defined(_WIN32)

namespace {

class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection() override { Close(); }

  bool Send(const uint8_t* data, size_t n) override {
    if (MVSTORE_FAILPOINT("client.send")) return false;
    size_t sent = 0;
    while (sent < n) {
      ssize_t w = ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
      if (w <= 0) {
        if (w < 0 && errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(w);
    }
    return true;
  }

  size_t Recv(uint8_t* buf, size_t n) override {
    if (MVSTORE_FAILPOINT("client.recv")) return 0;
    while (true) {
      ssize_t r = ::recv(fd_, buf, n, 0);
      if (r > 0) return static_cast<size_t>(r);
      if (r < 0 && errno == EINTR) continue;
      return 0;
    }
  }

  size_t RecvTimeout(uint8_t* buf, size_t n, uint32_t timeout_ms,
                     bool* timed_out) override {
    if (timed_out != nullptr) *timed_out = false;
    if (timeout_ms == 0) return Recv(buf, n);
    if (MVSTORE_FAILPOINT("client.recv")) return 0;
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    while (true) {
      int r = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
      if (r > 0) break;
      if (r == 0) {
        // A hung server, not a dead one: the caller decides whether the
        // connection can still be trusted (it cannot — a late response
        // would desync the framing — so MVClient poisons it).
        if (timed_out != nullptr) *timed_out = true;
        return 0;
      }
      if (errno == EINTR) continue;
      return 0;
    }
    return Recv(buf, n);
  }

  void Close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

}  // namespace

std::unique_ptr<Connection> TcpTransport::Connect(Status* status) {
  auto fail = [&](Status s) -> std::unique_ptr<Connection> {
    if (status != nullptr) *status = s;
    return nullptr;
  };
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    return fail(Status::InvalidArgument());
  }
  if (MVSTORE_FAILPOINT("client.connect")) return fail(Status::Internal());
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail(Status::Internal());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return fail(Status::Internal());
  }
  int on = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
  if (status != nullptr) *status = Status::OK();
  return std::make_unique<TcpConnection>(fd);
}

#else  // _WIN32

std::unique_ptr<Connection> TcpTransport::Connect(Status* status) {
  if (status != nullptr) *status = Status::Internal();
  return nullptr;
}

#endif

}  // namespace mvstore
