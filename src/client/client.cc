#include "client/client.h"

#include <cstring>

namespace mvstore {

namespace {

using wire::BodyReader;
using wire::Opcode;

using wire::PutBytes;

std::vector<uint8_t> KeyBody(TableId table, IndexId index, uint64_t key) {
  std::vector<uint8_t> body;
  body.reserve(16);
  wire::Put(&body, table);
  wire::Put(&body, index);
  wire::Put(&body, key);
  return body;
}

}  // namespace

MVClient::MVClient(std::unique_ptr<Connection> conn)
    : conn_(std::move(conn)) {}

MVClient::~MVClient() {
  if (conn_ != nullptr) conn_->Close();
}

void MVClient::QueueFrame(Opcode opcode, const std::vector<uint8_t>& body) {
  wire::AppendFrame(&batch_, opcode, 0, body.data(), body.size());
  batch_ops_.push_back(opcode);
}

Status MVClient::ReadResponse(Opcode expect, WireResult* result) {
  wire::Frame frame;
  while (true) {
    switch (parser_.Next(&frame)) {
      case wire::FrameParser::Result::kFrame: {
        if ((frame.flags & wire::kFlagResponse) == 0) {
          broken_ = true;
          return Status::Internal();
        }
        BodyReader body(frame.body.data(), frame.body.size());
        uint8_t code = 0;
        uint8_t reason = 0;
        if (!body.Read(&code) || !body.Read(&reason)) {
          broken_ = true;
          return Status::Internal();
        }
        Status s = wire::WireToStatus(code, reason);
        if (frame.opcode == Opcode::kBye || (frame.flags & wire::kFlagFatal)) {
          // The server is closing this connection; its goodbye status (for
          // a refused session: kUnavailable) is the most truthful answer
          // to whatever we were waiting for.
          broken_ = true;
          return s;
        }
        if (frame.opcode != expect) {
          broken_ = true;  // response/request misalignment: desynced
          return Status::Internal();
        }
        result->status = s;
        result->payload.assign(body.rest(), body.rest() + body.remaining());
        return Status::OK();
      }
      case wire::FrameParser::Result::kBad:
        broken_ = true;
        return Status::Internal();
      case wire::FrameParser::Result::kNeedMore: {
        uint8_t chunk[4096];
        size_t n = conn_->Recv(chunk, sizeof(chunk));
        if (n == 0) {
          broken_ = true;
          return Status::Internal();
        }
        parser_.Feed(chunk, n);
        break;
      }
    }
  }
}

Status MVClient::Roundtrip(Opcode opcode, const std::vector<uint8_t>& body,
                           std::vector<uint8_t>* payload) {
  if (!connected()) return Status::Internal();
  if (!batch_ops_.empty()) return Status::InvalidArgument();  // flush first
  std::vector<uint8_t> frame;
  wire::AppendFrame(&frame, opcode, 0, body.data(), body.size());
  if (!conn_->Send(frame.data(), frame.size())) {
    broken_ = true;
    return Status::Internal();
  }
  WireResult result;
  Status transport = ReadResponse(opcode, &result);
  if (!transport.ok()) return transport;
  if (payload != nullptr) *payload = std::move(result.payload);
  return result.status;
}

Status MVClient::Ping() { return Roundtrip(Opcode::kPing, {}, nullptr); }

Status MVClient::Begin(IsolationLevel isolation, bool read_only) {
  std::vector<uint8_t> body;
  wire::Put(&body, static_cast<uint8_t>(isolation));
  wire::Put(&body, static_cast<uint8_t>(read_only ? 1 : 0));
  return Roundtrip(Opcode::kBegin, body, nullptr);
}

Status MVClient::Commit() { return Roundtrip(Opcode::kCommit, {}, nullptr); }

Status MVClient::Abort() { return Roundtrip(Opcode::kAbort, {}, nullptr); }

Status MVClient::Get(TableId table, IndexId index, uint64_t key, void* row,
                     size_t row_size) {
  std::vector<uint8_t> payload;
  Status s = Roundtrip(Opcode::kGet, KeyBody(table, index, key), &payload);
  if (!s.ok()) return s;
  if (payload.size() != row_size) {
    broken_ = true;
    return Status::Internal();
  }
  std::memcpy(row, payload.data(), row_size);
  return s;
}

Status MVClient::Get(TableId table, IndexId index, uint64_t key,
                     std::vector<uint8_t>* row) {
  return Roundtrip(Opcode::kGet, KeyBody(table, index, key), row);
}

Status MVClient::Insert(TableId table, const void* payload, size_t size) {
  std::vector<uint8_t> body;
  body.reserve(4 + size);
  wire::Put(&body, table);
  PutBytes(&body, payload, size);
  return Roundtrip(Opcode::kInsert, body, nullptr);
}

Status MVClient::Put(TableId table, IndexId index, uint64_t key,
                     const void* payload, size_t size) {
  std::vector<uint8_t> body = KeyBody(table, index, key);
  PutBytes(&body, payload, size);
  return Roundtrip(Opcode::kUpdate, body, nullptr);
}

Status MVClient::Delete(TableId table, IndexId index, uint64_t key) {
  return Roundtrip(Opcode::kDelete, KeyBody(table, index, key), nullptr);
}

Status MVClient::ScanRange(TableId table, IndexId index, uint64_t lo,
                           uint64_t hi, uint32_t max_rows,
                           std::vector<std::vector<uint8_t>>* rows) {
  std::vector<uint8_t> body;
  body.reserve(28);
  wire::Put(&body, table);
  wire::Put(&body, index);
  wire::Put(&body, lo);
  wire::Put(&body, hi);
  wire::Put(&body, max_rows);
  std::vector<uint8_t> payload;
  Status s = Roundtrip(Opcode::kScanRange, body, &payload);
  if (!s.ok()) return s;
  BodyReader reader(payload.data(), payload.size());
  uint32_t count = 0;
  if (!reader.Read(&count)) {
    broken_ = true;
    return Status::Internal();
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!reader.Read(&len) || len > reader.remaining()) {
      broken_ = true;
      return Status::Internal();
    }
    rows->emplace_back(reader.rest(), reader.rest() + len);
    reader.Skip(len);
  }
  return s;
}

Status MVClient::Resolve(const std::string& name, uint32_t* proc_id) {
  std::vector<uint8_t> body;
  PutBytes(&body, name.data(), name.size());
  std::vector<uint8_t> payload;
  Status s = Roundtrip(Opcode::kResolve, body, &payload);
  if (!s.ok()) return s;
  if (payload.size() != 4) {
    broken_ = true;
    return Status::Internal();
  }
  std::memcpy(proc_id, payload.data(), 4);
  return s;
}

Status MVClient::Call(uint32_t proc_id, const void* arg, size_t arg_len,
                      std::vector<uint8_t>* result) {
  std::vector<uint8_t> body;
  body.reserve(4 + arg_len);
  wire::Put(&body, proc_id);
  if (arg_len > 0) PutBytes(&body, arg, arg_len);
  return Roundtrip(Opcode::kCall, body, result);
}

Status MVClient::Stats(std::string* text) {
  std::vector<uint8_t> payload;
  Status s = Roundtrip(Opcode::kStats, {}, &payload);
  if (!s.ok()) return s;
  text->assign(reinterpret_cast<const char*>(payload.data()), payload.size());
  return s;
}

void MVClient::QueuePing() { QueueFrame(Opcode::kPing, {}); }

void MVClient::QueueBegin(IsolationLevel isolation, bool read_only) {
  std::vector<uint8_t> body;
  wire::Put(&body, static_cast<uint8_t>(isolation));
  wire::Put(&body, static_cast<uint8_t>(read_only ? 1 : 0));
  QueueFrame(Opcode::kBegin, body);
}

void MVClient::QueueCommit() { QueueFrame(Opcode::kCommit, {}); }

void MVClient::QueueAbort() { QueueFrame(Opcode::kAbort, {}); }

void MVClient::QueueGet(TableId table, IndexId index, uint64_t key) {
  QueueFrame(Opcode::kGet, KeyBody(table, index, key));
}

void MVClient::QueueInsert(TableId table, const void* payload, size_t size) {
  std::vector<uint8_t> body;
  body.reserve(4 + size);
  wire::Put(&body, table);
  PutBytes(&body, payload, size);
  QueueFrame(Opcode::kInsert, body);
}

void MVClient::QueuePut(TableId table, IndexId index, uint64_t key,
                        const void* payload, size_t size) {
  std::vector<uint8_t> body = KeyBody(table, index, key);
  PutBytes(&body, payload, size);
  QueueFrame(Opcode::kUpdate, body);
}

void MVClient::QueueDelete(TableId table, IndexId index, uint64_t key) {
  QueueFrame(Opcode::kDelete, KeyBody(table, index, key));
}

void MVClient::QueueCall(uint32_t proc_id, const void* arg, size_t arg_len) {
  std::vector<uint8_t> body;
  body.reserve(4 + arg_len);
  wire::Put(&body, proc_id);
  if (arg_len > 0) PutBytes(&body, arg, arg_len);
  QueueFrame(Opcode::kCall, body);
}

Status MVClient::FlushBatch(std::vector<WireResult>* results) {
  if (!connected()) {
    batch_.clear();
    batch_ops_.clear();
    return Status::Internal();
  }
  if (batch_ops_.empty()) return Status::OK();
  std::vector<Opcode> expected;
  expected.swap(batch_ops_);
  std::vector<uint8_t> frames;
  frames.swap(batch_);
  if (!conn_->Send(frames.data(), frames.size())) {
    broken_ = true;
    return Status::Internal();
  }
  for (Opcode opcode : expected) {
    WireResult result;
    Status transport = ReadResponse(opcode, &result);
    if (!transport.ok()) {
      // Transport/protocol death mid-batch: the remaining responses will
      // never arrive; surface what we know.
      if (results != nullptr) {
        results->push_back({transport, {}});
      }
      return Status::Internal();
    }
    if (results != nullptr) results->push_back(std::move(result));
  }
  return Status::OK();
}

}  // namespace mvstore
