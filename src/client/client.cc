#include "client/client.h"

#include <chrono>
#include <cstring>
#include <thread>

namespace mvstore {

namespace {

using wire::BodyReader;
using wire::Opcode;

using wire::PutBytes;

std::vector<uint8_t> KeyBody(TableId table, IndexId index, uint64_t key) {
  std::vector<uint8_t> body;
  body.reserve(16);
  wire::Put(&body, table);
  wire::Put(&body, index);
  wire::Put(&body, key);
  return body;
}

}  // namespace

namespace {
constexpr uint64_t kDefaultRetrySeed = 0x9e3779b97f4a7c15ull;
}  // namespace

MVClient::MVClient(std::unique_ptr<Connection> conn, ClientOptions options)
    : options_(options),
      conn_(std::move(conn)),
      rng_(options.retry_seed != 0 ? options.retry_seed : kDefaultRetrySeed) {}

MVClient::MVClient(Transport& transport, ClientOptions options)
    : options_(options),
      transport_(&transport),
      rng_(options.retry_seed != 0 ? options.retry_seed : kDefaultRetrySeed) {}

MVClient::~MVClient() {
  if (conn_ != nullptr) conn_->Close();
}

void MVClient::ArmDeadline() {
  if (options_.op_timeout_ms == 0) return;
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(options_.op_timeout_ms);
}

bool MVClient::Reconnect() {
  if (transport_ == nullptr) return false;
  if (conn_ != nullptr) {
    conn_->Close();
    conn_.reset();
  }
  Status s = Status::Internal();
  conn_ = transport_->Connect(&s);
  if (conn_ == nullptr) {
    connect_status_ = s.ok() ? Status::Internal() : s;
    return false;
  }
  connect_status_ = Status::OK();
  // Fresh byte stream: any half-parsed frame from the old connection is
  // garbage, and the old session (with any open transaction) is gone.
  parser_ = wire::FrameParser();
  broken_ = false;
  in_txn_ = false;
  ++reconnects_;
  return true;
}

void MVClient::Backoff(uint32_t attempt) {
  if (options_.backoff_base_ms == 0) return;
  const uint32_t shift = attempt > 16 ? 16 : attempt - 1;
  uint64_t ms = static_cast<uint64_t>(options_.backoff_base_ms) << shift;
  if (ms > options_.backoff_max_ms) ms = options_.backoff_max_ms;
  if (ms == 0) return;
  // Deterministic jitter in [ms/2, ms] so a herd of clients retrying the
  // same outage spreads out instead of re-stampeding in lockstep.
  rng_ = rng_ * 6364136223846793005ull + 1442695040888963407ull;
  const uint64_t half = ms / 2;
  ms = ms - half + ((rng_ >> 33) % (half + 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void MVClient::TrackTxnState(Opcode opcode, const Status& s) {
  if (!connected()) {
    in_txn_ = false;  // the server-side transaction died with the session
    return;
  }
  switch (opcode) {
    case Opcode::kBegin:
      if (s.ok()) in_txn_ = true;
      return;
    case Opcode::kCommit:
    case Opcode::kAbort:
      in_txn_ = false;  // the session's txn slot is free either way
      return;
    default:
      break;
  }
  // The server rolls an open transaction back itself when an op aborts it
  // (conflict, validation) and when the session is shed mid-transaction.
  if (s.IsAborted() || s.IsUnavailable()) in_txn_ = false;
}

void MVClient::QueueFrame(Opcode opcode, const std::vector<uint8_t>& body) {
  wire::AppendFrame(&batch_, opcode, 0, body.data(), body.size());
  batch_ops_.push_back(opcode);
}

Status MVClient::ReadResponse(Opcode expect, WireResult* result) {
  wire::Frame frame;
  while (true) {
    switch (parser_.Next(&frame)) {
      case wire::FrameParser::Result::kFrame: {
        if ((frame.flags & wire::kFlagResponse) == 0) {
          broken_ = true;
          return Status::Internal();
        }
        BodyReader body(frame.body.data(), frame.body.size());
        uint8_t code = 0;
        uint8_t reason = 0;
        if (!body.Read(&code) || !body.Read(&reason)) {
          broken_ = true;
          return Status::Internal();
        }
        Status s = wire::WireToStatus(code, reason);
        if (frame.opcode == Opcode::kBye || (frame.flags & wire::kFlagFatal)) {
          // The server is closing this connection; its goodbye status (for
          // a refused session: kUnavailable) is the most truthful answer
          // to whatever we were waiting for.
          broken_ = true;
          return s;
        }
        if (frame.opcode != expect) {
          broken_ = true;  // response/request misalignment: desynced
          return Status::Internal();
        }
        result->status = s;
        result->payload.assign(body.rest(), body.rest() + body.remaining());
        return Status::OK();
      }
      case wire::FrameParser::Result::kBad:
        broken_ = true;
        return Status::Internal();
      case wire::FrameParser::Result::kNeedMore: {
        uint8_t chunk[4096];
        size_t n = 0;
        bool timed_out = false;
        if (options_.op_timeout_ms == 0) {
          n = conn_->Recv(chunk, sizeof(chunk));
        } else {
          const auto now = std::chrono::steady_clock::now();
          if (now >= deadline_) {
            timed_out = true;
          } else {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline_ - now)
                    .count() +
                1;
            n = conn_->RecvTimeout(chunk, sizeof(chunk),
                                   static_cast<uint32_t>(left), &timed_out);
          }
        }
        if (timed_out) {
          // The response may still arrive later, which would desync the
          // framing — the connection cannot be trusted again.
          broken_ = true;
          return Status::Timeout();
        }
        if (n == 0) {
          broken_ = true;
          return Status::Internal();
        }
        parser_.Feed(chunk, n);
        break;
      }
    }
  }
}

Status MVClient::RoundtripOnce(Opcode opcode, const std::vector<uint8_t>& body,
                               std::vector<uint8_t>* payload) {
  std::vector<uint8_t> frame;
  wire::AppendFrame(&frame, opcode, 0, body.data(), body.size());
  ArmDeadline();
  if (!conn_->Send(frame.data(), frame.size())) {
    broken_ = true;
    return Status::Internal();
  }
  WireResult result;
  Status transport = ReadResponse(opcode, &result);
  if (!transport.ok()) return transport;
  if (payload != nullptr) *payload = std::move(result.payload);
  return result.status;
}

Status MVClient::Roundtrip(Opcode opcode, const std::vector<uint8_t>& body,
                           std::vector<uint8_t>* payload, bool idempotent) {
  if (!batch_ops_.empty()) return Status::InvalidArgument();  // flush first
  Status s = Status::Internal();
  for (uint32_t attempt = 0;; ++attempt) {
    if (!connected() && transport_ != nullptr) {
      // Lazy first dial, or redial after a poisoned connection. A failed
      // dial never sent anything, so it is always a retryable outcome.
      if (Reconnect()) {
        s = Status::OK();
      } else {
        s = connect_status_;
      }
    }
    const bool had_txn = in_txn_;
    bool attempted = false;
    if (connected()) {
      attempted = true;
      s = RoundtripOnce(opcode, body, payload);
      TrackTxnState(opcode, s);
    } else if (transport_ == nullptr) {
      return Status::Internal();  // single-connection client stays broken
    }
    if (s.ok()) return s;
    // kUnavailable means the request was refused unstarted — always safe
    // to re-send. A connection that broke mid-request is only safe to
    // replay when doing so cannot double-apply: idempotent reads, or Begin
    // (the old session's transaction died with it). Anything inside an
    // open interactive transaction cannot be transparently replayed — the
    // transaction state is gone — so the caller must restart it.
    bool retry_safe;
    if (!attempted) {
      retry_safe = true;
    } else if (s.IsUnavailable()) {
      retry_safe = !had_txn;
    } else if (!connected()) {
      retry_safe = !had_txn && (idempotent || opcode == Opcode::kBegin);
    } else {
      retry_safe = false;  // definitive response on a healthy connection
    }
    if (!retry_safe || attempt >= options_.max_retries) return s;
    ++retries_;
    Backoff(attempt + 1);
  }
}

Status MVClient::Ping() {
  return Roundtrip(Opcode::kPing, {}, nullptr, /*idempotent=*/true);
}

Status MVClient::Begin(IsolationLevel isolation, bool read_only) {
  std::vector<uint8_t> body;
  wire::Put(&body, static_cast<uint8_t>(isolation));
  wire::Put(&body, static_cast<uint8_t>(read_only ? 1 : 0));
  return Roundtrip(Opcode::kBegin, body, nullptr);
}

Status MVClient::Commit() { return Roundtrip(Opcode::kCommit, {}, nullptr); }

Status MVClient::Abort() { return Roundtrip(Opcode::kAbort, {}, nullptr); }

Status MVClient::Get(TableId table, IndexId index, uint64_t key, void* row,
                     size_t row_size) {
  std::vector<uint8_t> payload;
  Status s = Roundtrip(Opcode::kGet, KeyBody(table, index, key), &payload,
                       /*idempotent=*/true);
  if (!s.ok()) return s;
  if (payload.size() != row_size) {
    broken_ = true;
    return Status::Internal();
  }
  std::memcpy(row, payload.data(), row_size);
  return s;
}

Status MVClient::Get(TableId table, IndexId index, uint64_t key,
                     std::vector<uint8_t>* row) {
  return Roundtrip(Opcode::kGet, KeyBody(table, index, key), row,
                   /*idempotent=*/true);
}

Status MVClient::Insert(TableId table, const void* payload, size_t size) {
  std::vector<uint8_t> body;
  body.reserve(4 + size);
  wire::Put(&body, table);
  PutBytes(&body, payload, size);
  return Roundtrip(Opcode::kInsert, body, nullptr);
}

Status MVClient::Put(TableId table, IndexId index, uint64_t key,
                     const void* payload, size_t size) {
  std::vector<uint8_t> body = KeyBody(table, index, key);
  PutBytes(&body, payload, size);
  return Roundtrip(Opcode::kUpdate, body, nullptr);
}

Status MVClient::Delete(TableId table, IndexId index, uint64_t key) {
  return Roundtrip(Opcode::kDelete, KeyBody(table, index, key), nullptr);
}

Status MVClient::ScanRange(TableId table, IndexId index, uint64_t lo,
                           uint64_t hi, uint32_t max_rows,
                           std::vector<std::vector<uint8_t>>* rows) {
  std::vector<uint8_t> body;
  body.reserve(28);
  wire::Put(&body, table);
  wire::Put(&body, index);
  wire::Put(&body, lo);
  wire::Put(&body, hi);
  wire::Put(&body, max_rows);
  std::vector<uint8_t> payload;
  Status s =
      Roundtrip(Opcode::kScanRange, body, &payload, /*idempotent=*/true);
  if (!s.ok()) return s;
  BodyReader reader(payload.data(), payload.size());
  uint32_t count = 0;
  if (!reader.Read(&count)) {
    broken_ = true;
    return Status::Internal();
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!reader.Read(&len) || len > reader.remaining()) {
      broken_ = true;
      return Status::Internal();
    }
    rows->emplace_back(reader.rest(), reader.rest() + len);
    reader.Skip(len);
  }
  return s;
}

Status MVClient::Resolve(const std::string& name, uint32_t* proc_id) {
  std::vector<uint8_t> body;
  PutBytes(&body, name.data(), name.size());
  std::vector<uint8_t> payload;
  Status s = Roundtrip(Opcode::kResolve, body, &payload, /*idempotent=*/true);
  if (!s.ok()) return s;
  if (payload.size() != 4) {
    broken_ = true;
    return Status::Internal();
  }
  std::memcpy(proc_id, payload.data(), 4);
  return s;
}

Status MVClient::Call(uint32_t proc_id, const void* arg, size_t arg_len,
                      std::vector<uint8_t>* result) {
  std::vector<uint8_t> body;
  body.reserve(4 + arg_len);
  wire::Put(&body, proc_id);
  if (arg_len > 0) PutBytes(&body, arg, arg_len);
  return Roundtrip(Opcode::kCall, body, result);
}

Status MVClient::Stats(std::string* text) {
  std::vector<uint8_t> payload;
  Status s = Roundtrip(Opcode::kStats, {}, &payload, /*idempotent=*/true);
  if (!s.ok()) return s;
  text->assign(reinterpret_cast<const char*>(payload.data()), payload.size());
  return s;
}

Status MVClient::Metrics(std::string* text) {
  std::vector<uint8_t> payload;
  Status s = Roundtrip(Opcode::kMetrics, {}, &payload, /*idempotent=*/true);
  if (!s.ok()) return s;
  text->assign(reinterpret_cast<const char*>(payload.data()), payload.size());
  return s;
}

Status MVClient::Promote(bool force) {
  std::vector<uint8_t> body;
  wire::Put(&body, static_cast<uint8_t>(force ? 1 : 0));
  return Roundtrip(Opcode::kReplPromote, body, nullptr, /*idempotent=*/true);
}

void MVClient::QueuePing() { QueueFrame(Opcode::kPing, {}); }

void MVClient::QueueBegin(IsolationLevel isolation, bool read_only) {
  std::vector<uint8_t> body;
  wire::Put(&body, static_cast<uint8_t>(isolation));
  wire::Put(&body, static_cast<uint8_t>(read_only ? 1 : 0));
  QueueFrame(Opcode::kBegin, body);
}

void MVClient::QueueCommit() { QueueFrame(Opcode::kCommit, {}); }

void MVClient::QueueAbort() { QueueFrame(Opcode::kAbort, {}); }

void MVClient::QueueGet(TableId table, IndexId index, uint64_t key) {
  QueueFrame(Opcode::kGet, KeyBody(table, index, key));
}

void MVClient::QueueInsert(TableId table, const void* payload, size_t size) {
  std::vector<uint8_t> body;
  body.reserve(4 + size);
  wire::Put(&body, table);
  PutBytes(&body, payload, size);
  QueueFrame(Opcode::kInsert, body);
}

void MVClient::QueuePut(TableId table, IndexId index, uint64_t key,
                        const void* payload, size_t size) {
  std::vector<uint8_t> body = KeyBody(table, index, key);
  PutBytes(&body, payload, size);
  QueueFrame(Opcode::kUpdate, body);
}

void MVClient::QueueDelete(TableId table, IndexId index, uint64_t key) {
  QueueFrame(Opcode::kDelete, KeyBody(table, index, key));
}

void MVClient::QueueCall(uint32_t proc_id, const void* arg, size_t arg_len) {
  std::vector<uint8_t> body;
  body.reserve(4 + arg_len);
  wire::Put(&body, proc_id);
  if (arg_len > 0) PutBytes(&body, arg, arg_len);
  QueueFrame(Opcode::kCall, body);
}

Status MVClient::FlushBatch(std::vector<WireResult>* results) {
  if (!connected() && transport_ != nullptr) Reconnect();
  if (!connected()) {
    batch_.clear();
    batch_ops_.clear();
    return Status::Internal();
  }
  if (batch_ops_.empty()) return Status::OK();
  std::vector<Opcode> expected;
  expected.swap(batch_ops_);
  std::vector<uint8_t> frames;
  frames.swap(batch_);
  if (!conn_->Send(frames.data(), frames.size())) {
    broken_ = true;
    in_txn_ = false;
    return Status::Internal();
  }
  for (Opcode opcode : expected) {
    WireResult result;
    ArmDeadline();  // per-response deadline, like the synchronous path
    Status transport = ReadResponse(opcode, &result);
    if (!transport.ok()) {
      // Transport/protocol death mid-batch: the remaining responses will
      // never arrive; surface what we know. A batch is never retried — any
      // prefix of it may already have applied.
      in_txn_ = false;
      if (results != nullptr) {
        results->push_back({transport, {}});
      }
      return Status::Internal();
    }
    TrackTxnState(opcode, result.status);
    if (results != nullptr) results->push_back(std::move(result));
  }
  return Status::OK();
}

}  // namespace mvstore
