// Transport abstraction for the service layer.
//
// A Transport hands out Connections — ordered, reliable byte streams that
// carry wire-protocol frames (server/wire.h). Two implementations exist:
// TcpTransport (client/tcp_transport.h) dials a real MVServer socket, and
// LoopbackTransport (server/loopback.h) splices the client directly onto a
// server Session in-process, so every protocol and session test runs
// without sockets, ports, or an event loop — and both paths exercise the
// byte-identical framing code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace mvstore {

/// One established byte-stream connection. Not thread-safe: a connection
/// belongs to one client thread.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Send exactly `n` bytes; false when the connection is broken (the
  /// stream is dead and must be closed — partial frames cannot be resent).
  virtual bool Send(const uint8_t* data, size_t n) = 0;

  /// Receive up to `n` bytes, blocking until at least one byte is
  /// available. 0 means EOF/broken connection.
  virtual size_t Recv(uint8_t* buf, size_t n) = 0;

  /// Like Recv, but give up after `timeout_ms` with no data: returns 0 with
  /// *timed_out set. 0 with *timed_out false still means EOF/broken.
  /// timeout_ms == 0 waits forever. The default ignores the deadline —
  /// correct for in-process transports (loopback), whose responses are
  /// already buffered by the time the client reads; real sockets override.
  virtual size_t RecvTimeout(uint8_t* buf, size_t n, uint32_t timeout_ms,
                             bool* timed_out) {
    (void)timeout_ms;
    if (timed_out != nullptr) *timed_out = false;
    return Recv(buf, n);
  }

  virtual void Close() {}
};

/// Connection factory.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Establish a connection. nullptr on failure with *status set (if
  /// non-null): kUnavailable when the server refused the session
  /// (admission control or drain), kInternal for transport errors.
  virtual std::unique_ptr<Connection> Connect(Status* status = nullptr) = 0;
};

}  // namespace mvstore
