// Encodings of the 64-bit Begin and End words of a version header.
//
// Begin word (paper Section 2.3: "One bit in the field indicates the field's
// current content"):
//   bit 63 = 1 : bits 0..53 hold the ID of the transaction that created the
//                version and has not yet finalized it.
//   bit 63 = 0 : bits 0..62 hold the commit timestamp; kInfinity means the
//                version is invisible garbage (aborted creator).
//
// End word. We use the paper's MV/L layout (Section 4.1.1) as the single
// encoding for *both* MV schemes so that optimistic and pessimistic
// transactions can coexist on the same data (Section 4.5):
//   bit 63 = 0 : bits 0..62 hold the end timestamp (kInfinity = latest).
//   bit 63 = 1 : lock word
//       bit 62      : NoMoreReadLocks  (starvation guard)
//       bits 54..61 : ReadLockCount    (up to 255 read lockers)
//       bits 0..53  : WriteLock        (txn ID of writer, kNoWriter if none)
//
// A purely optimistic writer installs a lock word with ReadLockCount == 0 and
// WriteLock == its ID; that is exactly "the End field contains a transaction
// ID" from Section 2.3.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/types.h"

namespace mvstore {

/// Largest representable timestamp; used as "infinity" for the End field of
/// latest versions and the Begin field of garbage versions.
inline constexpr Timestamp kInfinity = (uint64_t{1} << 63) - 1;

/// Largest legal transaction ID (54 bits, all-ones reserved for kNoWriter).
inline constexpr TxnId kMaxTxnId = (uint64_t{1} << 54) - 2;

namespace lockword {

inline constexpr uint64_t kContentTypeBit = uint64_t{1} << 63;
inline constexpr uint64_t kNoMoreReadLocksBit = uint64_t{1} << 62;
inline constexpr int kReadCountShift = 54;
inline constexpr uint64_t kReadCountMask = uint64_t{0xFF} << kReadCountShift;
inline constexpr uint64_t kWriteLockMask = (uint64_t{1} << 54) - 1;
/// WriteLock value meaning "no write locker" (paper: "or infinity").
inline constexpr uint64_t kNoWriter = kWriteLockMask;
inline constexpr uint32_t kMaxReadLocks = 255;

/// True if the word holds a lock word (txn info) rather than a timestamp.
inline bool IsLockWord(uint64_t word) { return (word & kContentTypeBit) != 0; }

/// --- timestamp form -------------------------------------------------------

inline uint64_t MakeTimestamp(Timestamp ts) {
  assert(ts <= kInfinity);
  return ts;
}

inline Timestamp TimestampOf(uint64_t word) {
  assert(!IsLockWord(word));
  return word;
}

/// --- lock-word form --------------------------------------------------------

inline uint64_t MakeLockWord(uint32_t read_count, TxnId writer,
                             bool no_more_read_locks = false) {
  assert(read_count <= kMaxReadLocks);
  assert(writer <= kNoWriter);
  return kContentTypeBit |
         (no_more_read_locks ? kNoMoreReadLocksBit : uint64_t{0}) |
         (uint64_t{read_count} << kReadCountShift) | writer;
}

inline uint32_t ReadCountOf(uint64_t word) {
  return static_cast<uint32_t>((word & kReadCountMask) >> kReadCountShift);
}

inline TxnId WriterOf(uint64_t word) { return word & kWriteLockMask; }

inline bool HasWriter(uint64_t word) {
  return IsLockWord(word) && WriterOf(word) != kNoWriter;
}

inline bool NoMoreReadLocks(uint64_t word) {
  return (word & kNoMoreReadLocksBit) != 0;
}

/// Same lock word with the read count replaced.
inline uint64_t WithReadCount(uint64_t word, uint32_t count) {
  assert(IsLockWord(word));
  assert(count <= kMaxReadLocks);
  return (word & ~kReadCountMask) | (uint64_t{count} << kReadCountShift);
}

/// Same lock word with the writer replaced.
inline uint64_t WithWriter(uint64_t word, TxnId writer) {
  assert(IsLockWord(word));
  return (word & ~kWriteLockMask) | writer;
}

}  // namespace lockword

namespace beginword {

inline constexpr uint64_t kTxnIdBit = uint64_t{1} << 63;

inline uint64_t MakeTimestamp(Timestamp ts) {
  assert(ts <= kInfinity);
  return ts;
}

inline uint64_t MakeTxnId(TxnId id) {
  assert(id <= kMaxTxnId);
  return kTxnIdBit | id;
}

inline bool IsTxnId(uint64_t word) { return (word & kTxnIdBit) != 0; }

inline TxnId TxnIdOf(uint64_t word) {
  assert(IsTxnId(word));
  return word & ~kTxnIdBit;
}

inline Timestamp TimestampOf(uint64_t word) {
  assert(!IsTxnId(word));
  return word;
}

}  // namespace beginword

}  // namespace mvstore
