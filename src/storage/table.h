// Table: schema + version allocation + the set of indexes.
//
// The engine is schema-light by design: a row is a fixed-size payload (the
// benchmarks and examples define POD row structs), and each index supplies a
// capture-free extractor mapping payload -> 64-bit key. Records are only
// reachable through indexes (Section 2.1); index 0 is the primary (unique)
// hash index. Secondary indexes are either hash (equality probes, the
// paper's only access path) or ordered (skip list, range scans —
// storage/ordered_index.h); both chain versions through the version's
// per-index next pointers, so a version's allocation size depends only on
// the index count.
#pragma once

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/types.h"
#include "mem/slab_allocator.h"
#include "storage/hash_index.h"
#include "storage/ordered_index.h"
#include "storage/version.h"

namespace mvstore {

/// Definition of one index on a table.
struct IndexDef {
  HashIndex::KeyExtractor extractor = nullptr;
  /// Buckets to allocate. The paper sizes tables "appropriately so there are
  /// no collisions"; pass ~row count. (Also sizes the 1V engine's per-index
  /// key-lock table; ordered indexes use it for that purpose only.)
  uint64_t bucket_count = 1024;
  /// Unique indexes reject inserts whose key is already visible.
  bool unique = false;
  /// Ordered (skip-list) index supporting range scans. Secondary only: the
  /// primary index (position 0) must be a hash index.
  bool ordered = false;
};

/// Definition of a table.
struct TableDef {
  std::string name;
  uint32_t payload_size = 0;
  std::vector<IndexDef> indexes;
};

/// How a table's versions are allocated. With `use_slab` a per-table
/// SlabAllocator recycles fixed-size version slots (every version of a
/// table has the same size: header + chain pointers + payload); otherwise
/// each version is a global-heap allocation (the debug-friendly fallback:
/// ASan sees every version's lifetime).
struct TableMemoryOptions {
  bool use_slab = false;
  StatsCollector* stats = nullptr;
  /// Ordered indexes retire drained skip-list nodes through this manager;
  /// null restricts node retirement to single-threaded use (unit tests).
  EpochManager* epoch = nullptr;
};

class Table {
 public:
  using MemoryOptions = TableMemoryOptions;

  Table(TableId id, TableDef def, MemoryOptions mem = {})
      : id_(id), def_(std::move(def)) {
    indexes_.reserve(def_.indexes.size());
    for (uint32_t i = 0; i < def_.indexes.size(); ++i) {
      IndexSlot slot;
      if (def_.indexes[i].ordered) {
        if (i == 0) {
          // Not assert-only: in a Release build a null primary hash slot
          // would surface as a crash on the first table scan or teardown,
          // far from the misdeclared TableDef.
          std::fprintf(stderr,
                       "mvstore: table '%s': the primary index (position 0) "
                       "must be a hash index, not ordered\n",
                       def_.name.c_str());
          std::abort();
        }
        slot.ordered = std::make_unique<OrderedIndex>(
            i, def_.indexes[i].extractor, mem.use_slab, mem.stats, mem.epoch);
      } else {
        slot.hash = std::make_unique<HashIndex>(
            i, def_.indexes[i].bucket_count, def_.indexes[i].extractor);
      }
      indexes_.push_back(std::move(slot));
    }
    static_assert(alignof(Version) <= SlabAllocator::kSlotAlign);
    if (mem.use_slab) {
      slab_ = std::make_unique<SlabAllocator>(
          Version::AllocSize(num_indexes(), payload_size()), mem.stats);
    }
  }

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  ~Table() = default;

  TableId id() const { return id_; }
  const std::string& name() const { return def_.name; }
  uint32_t payload_size() const { return def_.payload_size; }
  uint32_t num_indexes() const { return static_cast<uint32_t>(indexes_.size()); }
  /// The hash index at position `i`; only valid for hash slots (check
  /// ordered_index(i) == nullptr first when `i` may be ordered).
  HashIndex& index(IndexId i) { return *indexes_[i].hash; }
  /// The ordered index at position `i`, or nullptr if `i` is a hash index.
  OrderedIndex* ordered_index(IndexId i) { return indexes_[i].ordered.get(); }
  const IndexDef& index_def(IndexId i) const { return def_.indexes[i]; }

  /// Index key of `v` under index `i`, regardless of index kind.
  uint64_t IndexKeyOf(IndexId i, const Version* v) const {
    return def_.indexes[i].extractor(v->Payload());
  }
  uint64_t IndexKeyOfPayload(IndexId i, const void* payload) const {
    return def_.indexes[i].extractor(payload);
  }

  /// Probe index `i` for `key`, invoking `fn(Version*)` on every version
  /// chained under it (hash: the key's bucket, which may include
  /// colliding keys; ordered: the key's node). `fn` returns true to
  /// continue. Caller must hold an EpochGuard.
  template <typename Fn>
  void ScanIndexKey(IndexId i, uint64_t key, Fn&& fn) {
    if (OrderedIndex* ordered = ordered_index(i)) {
      ordered->ScanKey(key, static_cast<Fn&&>(fn));
    } else {
      index(i).ScanBucket(key, static_cast<Fn&&>(fn));
    }
  }

  /// Allocate a fresh, not-yet-visible version holding a copy of `payload`
  /// (may be nullptr to leave the payload uninitialized). Slot memory may be
  /// recycled; Version::Create placement-initializes every header field.
  Version* AllocateVersion(const void* payload) {
    void* storage =
        slab_ != nullptr
            ? slab_->Allocate()
            : ::operator new(Version::AllocSize(num_indexes(), payload_size()));
    return Version::Create(storage, num_indexes(), payload_size(), payload);
  }

  /// Immediately free a version that was never published to any index.
  /// Published versions must instead be unlinked and epoch-retired.
  void FreeUnpublishedVersion(Version* v) {
    if (slab_ != nullptr) {
      slab_->Free(v);
    } else {
      ::operator delete(v);
    }
  }

  /// Deleter for EpochManager::Retire; `table_arg` is the owning Table*, so
  /// the slot returns to that table's slab (or the heap in fallback mode).
  static void VersionDeleter(void* v, void* table_arg) {
    static_cast<Table*>(table_arg)->FreeUnpublishedVersion(
        static_cast<Version*>(v));
  }

  /// The table's slab, or nullptr in heap mode (tests/benchmarks).
  SlabAllocator* slab() { return slab_.get(); }

  /// Insert `v` into every index of the table.
  void InsertIntoAllIndexes(Version* v) {
    for (auto& slot : indexes_) {
      if (slot.hash != nullptr) {
        slot.hash->Insert(v);
      } else {
        slot.ordered->Insert(v);
      }
    }
  }

  /// Unlink `v` from every index (garbage collection).
  void UnlinkFromAllIndexes(Version* v) {
    for (auto& slot : indexes_) {
      if (slot.hash != nullptr) {
        slot.hash->Unlink(v);
      } else {
        slot.ordered->Unlink(v);
      }
    }
  }

 private:
  /// Exactly one of the two pointers is set per position.
  struct IndexSlot {
    std::unique_ptr<HashIndex> hash;
    std::unique_ptr<OrderedIndex> ordered;
  };

  const TableId id_;
  const TableDef def_;
  std::vector<IndexSlot> indexes_;
  std::unique_ptr<SlabAllocator> slab_;
};

/// Catalog: id -> table. Tables are created before workers start and live
/// for the database lifetime, so lookups are unsynchronized.
class Catalog {
 public:
  /// Version-allocation policy for tables created after this call. Engines
  /// configure this once at construction, before any CreateTable.
  void ConfigureMemory(Table::MemoryOptions mem) { mem_ = mem; }

  TableId CreateTable(TableDef def) {
    TableId id = static_cast<TableId>(tables_.size());
    tables_.push_back(std::make_unique<Table>(id, std::move(def), mem_));
    return id;
  }

  Table& table(TableId id) { return *tables_[id]; }
  const Table& table(TableId id) const { return *tables_[id]; }
  uint32_t num_tables() const { return static_cast<uint32_t>(tables_.size()); }

  Table* FindByName(const std::string& name) {
    for (auto& t : tables_) {
      if (t->name() == name) return t.get();
    }
    return nullptr;
  }

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  Table::MemoryOptions mem_{};
};

}  // namespace mvstore
