// Table: schema + version allocation + the set of hash indexes.
//
// The engine is schema-light by design: a row is a fixed-size payload (the
// benchmarks and examples define POD row structs), and each index supplies a
// capture-free extractor mapping payload -> 64-bit key. Records are only
// reachable through indexes (Section 2.1); index 0 is the primary (unique)
// index.
#pragma once

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/types.h"
#include "mem/slab_allocator.h"
#include "storage/hash_index.h"
#include "storage/version.h"

namespace mvstore {

/// Definition of one hash index on a table.
struct IndexDef {
  HashIndex::KeyExtractor extractor = nullptr;
  /// Buckets to allocate. The paper sizes tables "appropriately so there are
  /// no collisions"; pass ~row count.
  uint64_t bucket_count = 1024;
  /// Unique indexes reject inserts whose key is already visible.
  bool unique = false;
};

/// Definition of a table.
struct TableDef {
  std::string name;
  uint32_t payload_size = 0;
  std::vector<IndexDef> indexes;
};

/// How a table's versions are allocated. With `use_slab` a per-table
/// SlabAllocator recycles fixed-size version slots (every version of a
/// table has the same size: header + chain pointers + payload); otherwise
/// each version is a global-heap allocation (the debug-friendly fallback:
/// ASan sees every version's lifetime).
struct TableMemoryOptions {
  bool use_slab = false;
  StatsCollector* stats = nullptr;
};

class Table {
 public:
  using MemoryOptions = TableMemoryOptions;

  Table(TableId id, TableDef def, MemoryOptions mem = {})
      : id_(id), def_(std::move(def)) {
    indexes_.reserve(def_.indexes.size());
    for (uint32_t i = 0; i < def_.indexes.size(); ++i) {
      indexes_.push_back(std::make_unique<HashIndex>(
          i, def_.indexes[i].bucket_count, def_.indexes[i].extractor));
    }
    static_assert(alignof(Version) <= SlabAllocator::kSlotAlign);
    if (mem.use_slab) {
      slab_ = std::make_unique<SlabAllocator>(
          Version::AllocSize(num_indexes(), payload_size()), mem.stats);
    }
  }

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  ~Table() = default;

  TableId id() const { return id_; }
  const std::string& name() const { return def_.name; }
  uint32_t payload_size() const { return def_.payload_size; }
  uint32_t num_indexes() const { return static_cast<uint32_t>(indexes_.size()); }
  HashIndex& index(IndexId i) { return *indexes_[i]; }
  const IndexDef& index_def(IndexId i) const { return def_.indexes[i]; }

  /// Allocate a fresh, not-yet-visible version holding a copy of `payload`
  /// (may be nullptr to leave the payload uninitialized). Slot memory may be
  /// recycled; Version::Create placement-initializes every header field.
  Version* AllocateVersion(const void* payload) {
    void* storage =
        slab_ != nullptr
            ? slab_->Allocate()
            : ::operator new(Version::AllocSize(num_indexes(), payload_size()));
    return Version::Create(storage, num_indexes(), payload_size(), payload);
  }

  /// Immediately free a version that was never published to any index.
  /// Published versions must instead be unlinked and epoch-retired.
  void FreeUnpublishedVersion(Version* v) {
    if (slab_ != nullptr) {
      slab_->Free(v);
    } else {
      ::operator delete(v);
    }
  }

  /// Deleter for EpochManager::Retire; `table_arg` is the owning Table*, so
  /// the slot returns to that table's slab (or the heap in fallback mode).
  static void VersionDeleter(void* v, void* table_arg) {
    static_cast<Table*>(table_arg)->FreeUnpublishedVersion(
        static_cast<Version*>(v));
  }

  /// The table's slab, or nullptr in heap mode (tests/benchmarks).
  SlabAllocator* slab() { return slab_.get(); }

  /// Insert `v` into every index of the table.
  void InsertIntoAllIndexes(Version* v) {
    for (auto& index : indexes_) index->Insert(v);
  }

  /// Unlink `v` from every index (garbage collection).
  void UnlinkFromAllIndexes(Version* v) {
    for (auto& index : indexes_) index->Unlink(v);
  }

 private:
  const TableId id_;
  const TableDef def_;
  std::vector<std::unique_ptr<HashIndex>> indexes_;
  std::unique_ptr<SlabAllocator> slab_;
};

/// Catalog: id -> table. Tables are created before workers start and live
/// for the database lifetime, so lookups are unsynchronized.
class Catalog {
 public:
  /// Version-allocation policy for tables created after this call. Engines
  /// configure this once at construction, before any CreateTable.
  void ConfigureMemory(Table::MemoryOptions mem) { mem_ = mem; }

  TableId CreateTable(TableDef def) {
    TableId id = static_cast<TableId>(tables_.size());
    tables_.push_back(std::make_unique<Table>(id, std::move(def), mem_));
    return id;
  }

  Table& table(TableId id) { return *tables_[id]; }
  const Table& table(TableId id) const { return *tables_[id]; }
  uint32_t num_tables() const { return static_cast<uint32_t>(tables_.size()); }

  Table* FindByName(const std::string& name) {
    for (auto& t : tables_) {
      if (t->name() == name) return t.get();
    }
    return nullptr;
  }

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  Table::MemoryOptions mem_{};
};

}  // namespace mvstore
