// Table: schema + version allocation + the set of hash indexes.
//
// The engine is schema-light by design: a row is a fixed-size payload (the
// benchmarks and examples define POD row structs), and each index supplies a
// capture-free extractor mapping payload -> 64-bit key. Records are only
// reachable through indexes (Section 2.1); index 0 is the primary (unique)
// index.
#pragma once

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/hash_index.h"
#include "storage/version.h"

namespace mvstore {

/// Definition of one hash index on a table.
struct IndexDef {
  HashIndex::KeyExtractor extractor = nullptr;
  /// Buckets to allocate. The paper sizes tables "appropriately so there are
  /// no collisions"; pass ~row count.
  uint64_t bucket_count = 1024;
  /// Unique indexes reject inserts whose key is already visible.
  bool unique = false;
};

/// Definition of a table.
struct TableDef {
  std::string name;
  uint32_t payload_size = 0;
  std::vector<IndexDef> indexes;
};

class Table {
 public:
  Table(TableId id, TableDef def) : id_(id), def_(std::move(def)) {
    indexes_.reserve(def_.indexes.size());
    for (uint32_t i = 0; i < def_.indexes.size(); ++i) {
      indexes_.push_back(std::make_unique<HashIndex>(
          i, def_.indexes[i].bucket_count, def_.indexes[i].extractor));
    }
  }

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  ~Table() = default;

  TableId id() const { return id_; }
  const std::string& name() const { return def_.name; }
  uint32_t payload_size() const { return def_.payload_size; }
  uint32_t num_indexes() const { return static_cast<uint32_t>(indexes_.size()); }
  HashIndex& index(IndexId i) { return *indexes_[i]; }
  const IndexDef& index_def(IndexId i) const { return def_.indexes[i]; }

  /// Allocate a fresh, not-yet-visible version holding a copy of `payload`
  /// (may be nullptr to leave the payload uninitialized).
  Version* AllocateVersion(const void* payload) {
    void* storage =
        ::operator new(Version::AllocSize(num_indexes(), payload_size()));
    return Version::Create(storage, num_indexes(), payload_size(), payload);
  }

  /// Immediately free a version that was never published to any index.
  /// Published versions must instead be unlinked and epoch-retired.
  static void FreeUnpublishedVersion(Version* v) { ::operator delete(v); }

  /// Deleter suitable for EpochManager::Retire.
  static void VersionDeleter(void* v) { ::operator delete(v); }

  /// Insert `v` into every index of the table.
  void InsertIntoAllIndexes(Version* v) {
    for (auto& index : indexes_) index->Insert(v);
  }

  /// Unlink `v` from every index (garbage collection).
  void UnlinkFromAllIndexes(Version* v) {
    for (auto& index : indexes_) index->Unlink(v);
  }

 private:
  const TableId id_;
  const TableDef def_;
  std::vector<std::unique_ptr<HashIndex>> indexes_;
};

/// Catalog: id -> table. Tables are created before workers start and live
/// for the database lifetime, so lookups are unsynchronized.
class Catalog {
 public:
  TableId CreateTable(TableDef def) {
    TableId id = static_cast<TableId>(tables_.size());
    tables_.push_back(std::make_unique<Table>(id, std::move(def)));
    return id;
  }

  Table& table(TableId id) { return *tables_[id]; }
  const Table& table(TableId id) const { return *tables_[id]; }
  uint32_t num_tables() const { return static_cast<uint32_t>(tables_.size()); }

  Table* FindByName(const std::string& name) {
    for (auto& t : tables_) {
      if (t->name() == name) return t.get();
    }
    return nullptr;
  }

 private:
  std::vector<std::unique_ptr<Table>> tables_;
};

}  // namespace mvstore
