// Lock-free hash index over versions (paper Section 2.1).
//
// * Lookups/scans traverse bucket chains without any locking; callers must
//   hold an EpochGuard so unlinked versions cannot be freed under them.
// * Inserts are a single CAS at the bucket head.
// * Unlinks (garbage collection only) serialize per bucket on a spin bit in
//   the bucket's metadata word; they never block readers or inserters.
// * The bucket metadata word also carries the MV/L bucket LockCount
//   (Section 4.1.2: "the current implementation stores the LockCount in the
//   hash bucket").
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/port.h"
#include "storage/version.h"
#include "util/bits.h"

namespace mvstore {

class HashIndex {
 public:
  /// Extracts the 64-bit index key from a version payload. Must be a
  /// capture-free function (applied on every probe).
  using KeyExtractor = uint64_t (*)(const void* payload);

  struct Bucket {
    /// Head of the version chain (linked via Version::Next(index_pos)).
    std::atomic<Version*> head{nullptr};
    /// bit 0: chain latch (GC unlink only); bits 32..63: bucket lock count.
    std::atomic<uint64_t> meta{0};
  };

  /// `index_pos` is this index's slot in each version's next-pointer array.
  HashIndex(uint32_t index_pos, uint64_t bucket_count_hint,
            KeyExtractor extractor)
      : index_pos_(index_pos),
        extractor_(extractor),
        bucket_count_(NextPowerOfTwo(bucket_count_hint < 16 ? 16
                                                            : bucket_count_hint)),
        mask_(bucket_count_ - 1),
        buckets_(bucket_count_) {}

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  uint32_t index_pos() const { return index_pos_; }
  uint64_t bucket_count() const { return bucket_count_; }

  uint64_t KeyOf(const Version* v) const { return extractor_(v->Payload()); }
  uint64_t KeyOfPayload(const void* payload) const { return extractor_(payload); }

  Bucket& BucketFor(uint64_t key) { return buckets_[HashInt64(key) & mask_]; }
  const Bucket& BucketFor(uint64_t key) const {
    return buckets_[HashInt64(key) & mask_];
  }
  Bucket& BucketAt(uint64_t i) { return buckets_[i]; }

  /// Lock-free insert at the head of v's bucket chain. The version's key
  /// must already be in its payload.
  void Insert(Version* v) {
    Bucket& bucket = BucketFor(KeyOf(v));
    Version* head = bucket.head.load(std::memory_order_acquire);
    do {
      v->Next(index_pos_).store(head, std::memory_order_relaxed);
    } while (!bucket.head.compare_exchange_weak(head, v,
                                                std::memory_order_release,
                                                std::memory_order_acquire));
  }

  /// Unlink `v` from its bucket chain (GC only). Returns false if not found
  /// (already unlinked). Readers may still hold pointers to v; the caller
  /// must epoch-retire it, never free immediately.
  bool Unlink(Version* v) {
    Bucket& bucket = BucketFor(KeyOf(v));
    LockChain(bucket);
    bool found = UnlinkLocked(bucket, v);
    UnlockChain(bucket);
    return found;
  }

  /// Iterate every version in the bucket for `key`. `fn(Version*)` returns
  /// true to continue, false to stop. Caller must hold an EpochGuard. The
  /// caller is responsible for re-checking the key: chains contain every key
  /// that hashes to the bucket.
  template <typename Fn>
  void ScanBucket(uint64_t key, Fn&& fn) {
    Bucket& bucket = BucketFor(key);
    for (Version* v = bucket.head.load(std::memory_order_acquire); v != nullptr;
         v = v->Next(index_pos_).load(std::memory_order_acquire)) {
      if (!fn(v)) return;
    }
  }

  /// Iterate every version in every bucket (full-table scan, Section 2.1:
  /// "To scan a table, one simply scans all buckets of any index").
  template <typename Fn>
  void ScanAll(Fn&& fn) {
    for (uint64_t i = 0; i < bucket_count_; ++i) {
      for (Version* v = buckets_[i].head.load(std::memory_order_acquire);
           v != nullptr;
           v = v->Next(index_pos_).load(std::memory_order_acquire)) {
        if (!fn(v)) return;
      }
    }
  }

  /// --- bucket lock count (MV/L, Section 4.1.2) -----------------------------

  static uint32_t BucketLockCount(const Bucket& bucket) {
    return static_cast<uint32_t>(bucket.meta.load(std::memory_order_acquire) >>
                                 32);
  }
  static void IncrBucketLockCount(Bucket& bucket) {
    bucket.meta.fetch_add(uint64_t{1} << 32, std::memory_order_acq_rel);
  }
  static void DecrBucketLockCount(Bucket& bucket) {
    bucket.meta.fetch_sub(uint64_t{1} << 32, std::memory_order_acq_rel);
  }

  /// Number of versions currently linked (racy; tests/stats only).
  uint64_t CountEntries() const {
    uint64_t n = 0;
    for (uint64_t i = 0; i < bucket_count_; ++i) {
      for (const Version* v = buckets_[i].head.load(std::memory_order_acquire);
           v != nullptr;
           v = v->Next(index_pos_).load(std::memory_order_acquire)) {
        ++n;
      }
    }
    return n;
  }

 private:
  static constexpr uint64_t kChainLatchBit = 1;

  void LockChain(Bucket& bucket) {
    while (true) {
      uint64_t meta = bucket.meta.load(std::memory_order_relaxed);
      if ((meta & kChainLatchBit) == 0 &&
          bucket.meta.compare_exchange_weak(meta, meta | kChainLatchBit,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
        return;
      }
      CpuRelax();
    }
  }

  void UnlockChain(Bucket& bucket) {
    bucket.meta.fetch_and(~kChainLatchBit, std::memory_order_release);
  }

  bool UnlinkLocked(Bucket& bucket, Version* v) {
    // Head removal must CAS: concurrent inserts also modify head.
    while (true) {
      Version* head = bucket.head.load(std::memory_order_acquire);
      if (head == v) {
        Version* next = v->Next(index_pos_).load(std::memory_order_acquire);
        if (bucket.head.compare_exchange_strong(head, next,
                                                std::memory_order_acq_rel)) {
          return true;
        }
        continue;  // an insert won the race; v is now interior
      }
      // Interior removal: only unlinks mutate interior next pointers and we
      // hold the chain latch, so a plain walk+store is safe.
      Version* prev = head;
      while (prev != nullptr) {
        Version* cur = prev->Next(index_pos_).load(std::memory_order_acquire);
        if (cur == v) {
          prev->Next(index_pos_)
              .store(v->Next(index_pos_).load(std::memory_order_acquire),
                     std::memory_order_release);
          return true;
        }
        if (cur == nullptr) return false;
        prev = cur;
      }
      return false;
    }
  }

  const uint32_t index_pos_;
  const KeyExtractor extractor_;
  const uint64_t bucket_count_;
  const uint64_t mask_;
  std::vector<Bucket> buckets_;
};

}  // namespace mvstore
