// Ordered secondary index over versions: a latch-efficient skip list.
//
// The paper's engines reach records only through lock-free hash indexes
// (Section 2.1), which serve equality probes but no range predicates. This
// index adds the ordered access path: a skip list keyed on a user-declared
// column whose nodes carry version-chain heads exactly like HashIndex
// buckets — one node per distinct key, all versions with that key chained
// through the version's per-index next pointer (`Version::Next(index_pos)`).
// Scans walk the bottom level and apply the paper's visibility rules per
// version (the caller does; this layer is visibility-agnostic, like
// HashIndex).
//
// Concurrency design:
//  * Lookups and range scans are lock-free: they traverse tower pointers
//    and version chains with acquire loads only. Callers must hold an
//    EpochGuard, exactly as for HashIndex bucket scans.
//  * Tower links use Harris-style pointer marking (bit 0 of a next pointer
//    marks the node logically deleted); traversals help unlink marked
//    nodes. Node inserts are CAS-only.
//  * Version-chain pushes and unlinks serialize per node on a spin bit in
//    the node's meta word (the HashIndex chain-latch idiom); readers of the
//    chain never take it.
//  * A node whose chain becomes empty (garbage collection unlinked its last
//    version) is retired: the unlinking thread wins the node's dead bit,
//    marks every tower level, physically unlinks it, and hands the memory
//    to the EpochManager. Slots recycle through an optional per-index
//    SlabAllocator (nodes are fixed-size: towers are allocated at
//    kMaxHeight regardless of the rolled height).
//
// The interaction that makes retirement safe: the thread that created a
// node may still be linking its upper tower levels when the node's chain
// drains. The creator holds the meta word's linking bit across that window;
// the retirer spins it out before marking, so a retired node can never be
// re-published into the tower.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/counters.h"
#include "common/port.h"
#include "mem/slab_allocator.h"
#include "storage/version.h"
#include "util/epoch.h"

namespace mvstore {

class OrderedIndex {
 public:
  /// Same contract as HashIndex::KeyExtractor: capture-free, applied on
  /// every comparison.
  using KeyExtractor = uint64_t (*)(const void* payload);

  /// Tower height cap. 2^16 distinct keys per expected level-1 node at
  /// p = 1/4 — ample for in-memory tables.
  static constexpr uint32_t kMaxHeight = 16;

  /// `index_pos` is this index's slot in each version's next-pointer array
  /// (shared numbering with the table's hash indexes). `epoch` may be null
  /// (single-threaded use: retirement frees immediately); `use_slab`
  /// recycles node slots through a SlabAllocator, mirroring version slots.
  OrderedIndex(uint32_t index_pos, KeyExtractor extractor, bool use_slab,
               StatsCollector* stats, EpochManager* epoch);
  ~OrderedIndex();

  OrderedIndex(const OrderedIndex&) = delete;
  OrderedIndex& operator=(const OrderedIndex&) = delete;

  uint32_t index_pos() const { return index_pos_; }

  uint64_t KeyOf(const Version* v) const { return extractor_(v->Payload()); }
  uint64_t KeyOfPayload(const void* payload) const {
    return extractor_(payload);
  }

  /// Link `v` into the node for its key, creating the node if absent. The
  /// version's key must already be in its payload. Safe to call from any
  /// thread; takes an epoch guard internally.
  void Insert(Version* v);

  /// Unlink `v` from its node's version chain (garbage collection only).
  /// Returns false if not found. If the chain drains, the node itself is
  /// unlinked from the tower and epoch-retired. Readers may still hold
  /// pointers to `v`; the caller must epoch-retire it, never free
  /// immediately.
  bool Unlink(Version* v);

  /// Visit every version whose key equals `key`. `fn(Version*)` returns
  /// true to continue, false to stop. Caller must hold an EpochGuard.
  template <typename Fn>
  void ScanKey(uint64_t key, Fn&& fn) {
    ScanRange(key, key, static_cast<Fn&&>(fn));
  }

  /// Visit every version whose key lies in [lo, hi], in ascending key
  /// order (versions within one key are newest-first, like a bucket
  /// chain). Caller must hold an EpochGuard. `fn(Version*)` returns true
  /// to continue, false to stop.
  template <typename Fn>
  void ScanRange(uint64_t lo, uint64_t hi, Fn&& fn) {
    Node* preds[kMaxHeight];
    Node* succs[kMaxHeight];
    Find(lo, preds, succs);
    for (Node* n = succs[0]; n != nullptr;
         n = StripMark(n->next[0].load(std::memory_order_acquire))) {
      if (n->key > hi) return;
      // A dead (draining) node has an empty chain; no special case needed.
      for (Version* v = n->chain.load(std::memory_order_acquire); v != nullptr;
           v = v->Next(index_pos_).load(std::memory_order_acquire)) {
        if (!fn(v)) return;
      }
    }
  }

  /// Number of versions currently linked (racy; tests/stats only).
  uint64_t CountEntries();
  /// Number of live (non-dead) key nodes (racy; tests/stats only).
  uint64_t CountNodes();

 private:
  struct alignas(SlabAllocator::kSlotAlign) Node {
    uint64_t key = 0;
    uint32_t height = 1;
    /// bit 0: chain latch; bit 1: dead (chain drained, being retired);
    /// bit 2: creator still linking upper tower levels.
    std::atomic<uint64_t> meta{0};
    /// Head of the version chain (linked via Version::Next(index_pos)).
    std::atomic<Version*> chain{nullptr};
    /// Tower. Bit 0 of a stored pointer marks this node logically deleted
    /// at that level. Always kMaxHeight slots (fixed node size → slab).
    std::atomic<Node*> next[kMaxHeight];
  };

  static constexpr uint64_t kChainLatchBit = 1;
  static constexpr uint64_t kDeadBit = 2;
  static constexpr uint64_t kLinkingBit = 4;

  static Node* StripMark(Node* p) {
    return reinterpret_cast<Node*>(reinterpret_cast<uintptr_t>(p) &
                                   ~uintptr_t{1});
  }
  static bool IsMarked(Node* p) {
    return (reinterpret_cast<uintptr_t>(p) & 1) != 0;
  }
  static Node* WithMark(Node* p) {
    return reinterpret_cast<Node*>(reinterpret_cast<uintptr_t>(p) |
                                   uintptr_t{1});
  }

  /// Locate `key`: preds[l]/succs[l] bracket it at every level, with
  /// succs[0] the first node whose key >= `key` (or null). Physically
  /// unlinks marked nodes encountered on the way (helping). Returns true
  /// if succs[0] holds exactly `key`.
  bool Find(uint64_t key, Node** preds, Node** succs);

  /// Push `v` at the head of `node`'s chain. Fails (false) if the node is
  /// dead — the caller re-runs Find and creates a fresh node.
  bool PushVersion(Node* node, Version* v);

  /// Mark every tower level, physically unlink, and epoch-retire `node`.
  /// Only the thread that won the dead bit calls this.
  void RemoveNode(Node* node);

  void LockMeta(Node* node);
  void UnlockMeta(Node* node);

  Node* AllocNode(uint64_t key);
  void FreeNode(Node* node);
  static void NodeDeleter(void* node, void* index_arg);
  void RetireNode(Node* node);

  static uint32_t RandomHeight();

  const uint32_t index_pos_;
  const KeyExtractor extractor_;
  EpochManager* const epoch_;
  std::unique_ptr<SlabAllocator> slab_;
  /// Head sentinel: key is never examined (it precedes every real node).
  Node head_;
};

}  // namespace mvstore
