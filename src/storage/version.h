// Version: the record format of the multiversion engine (paper Figure 1).
//
// A version is a single immutable payload plus a header:
//
//   | Begin (8B, atomic) | End (8B, atomic) | meta (8B) |
//   | next-pointer per index (8B each, atomic) | payload bytes |
//
// Begin/End hold either timestamps or transaction info; see lock_word.h.
// Records are reachable only through hash indexes: versions that hash to the
// same bucket are chained through the per-index next pointers.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <new>

#include "storage/lock_word.h"

namespace mvstore {

class Version {
 public:
  /// Bytes needed for a version with `num_indexes` chain pointers and a
  /// payload of `payload_size` bytes.
  static size_t AllocSize(uint32_t num_indexes, uint32_t payload_size) {
    return sizeof(Version) + num_indexes * sizeof(std::atomic<Version*>) +
           payload_size;
  }

  /// Construct a version in raw storage of AllocSize() bytes. Begin/End are
  /// initialized to (infinity, infinity): invisible until the creator
  /// installs its transaction ID / timestamps.
  static Version* Create(void* storage, uint32_t num_indexes,
                         uint32_t payload_size, const void* payload) {
    Version* v = new (storage) Version(num_indexes, payload_size);
    for (uint32_t i = 0; i < num_indexes; ++i) {
      new (&v->NextArray()[i]) std::atomic<Version*>(nullptr);
    }
    if (payload != nullptr) {
      std::memcpy(v->Payload(), payload, payload_size);
    }
    return v;
  }

  /// Chain pointer for index position `index_pos`.
  std::atomic<Version*>& Next(uint32_t index_pos) {
    return NextArray()[index_pos];
  }
  const std::atomic<Version*>& Next(uint32_t index_pos) const {
    return NextArray()[index_pos];
  }

  void* Payload() {
    return reinterpret_cast<char*>(this) + sizeof(Version) +
           num_indexes_ * sizeof(std::atomic<Version*>);
  }
  const void* Payload() const {
    return const_cast<Version*>(this)->Payload();
  }

  uint32_t payload_size() const { return payload_size_; }
  uint32_t num_indexes() const { return num_indexes_; }

  /// Begin word, i.e. creator txn ID or commit timestamp.
  std::atomic<uint64_t> begin;
  /// End word, i.e. timestamp or lock word (see lock_word.h).
  std::atomic<uint64_t> end;

 private:
  Version(uint32_t num_indexes, uint32_t payload_size)
      : begin(beginword::MakeTimestamp(kInfinity)),
        end(lockword::MakeTimestamp(kInfinity)),
        num_indexes_(num_indexes),
        payload_size_(payload_size) {}

  std::atomic<Version*>* NextArray() {
    return reinterpret_cast<std::atomic<Version*>*>(
        reinterpret_cast<char*>(this) + sizeof(Version));
  }
  const std::atomic<Version*>* NextArray() const {
    return const_cast<Version*>(this)->NextArray();
  }

  uint32_t num_indexes_;
  uint32_t payload_size_;
};

static_assert(sizeof(Version) == 24, "Version header should stay 24 bytes");

}  // namespace mvstore
