#include "storage/ordered_index.h"

#include <cassert>

namespace mvstore {

namespace {

/// Enter/exit an epoch region when a manager is present (the index's
/// internal mutations traverse tower pointers that concurrent retirers may
/// free). Re-entrant: engines typically already hold a guard.
class OptionalEpochGuard {
 public:
  explicit OptionalEpochGuard(EpochManager* manager) : manager_(manager) {
    if (manager_ != nullptr) manager_->Enter();
  }
  ~OptionalEpochGuard() {
    if (manager_ != nullptr) manager_->Exit();
  }
  OptionalEpochGuard(const OptionalEpochGuard&) = delete;
  OptionalEpochGuard& operator=(const OptionalEpochGuard&) = delete;

 private:
  EpochManager* const manager_;
};

}  // namespace

OrderedIndex::OrderedIndex(uint32_t index_pos, KeyExtractor extractor,
                           bool use_slab, StatsCollector* stats,
                           EpochManager* epoch)
    : index_pos_(index_pos), extractor_(extractor), epoch_(epoch) {
  if (use_slab) {
    slab_ = std::make_unique<SlabAllocator>(sizeof(Node), stats);
  }
  for (uint32_t i = 0; i < kMaxHeight; ++i) {
    head_.next[i].store(nullptr, std::memory_order_relaxed);
  }
}

OrderedIndex::~OrderedIndex() {
  // Single-threaded by contract (the owning Table is being destroyed).
  // Versions are freed by the table through its primary index; only the
  // nodes belong to us.
  Node* n = StripMark(head_.next[0].load(std::memory_order_relaxed));
  while (n != nullptr) {
    Node* next = StripMark(n->next[0].load(std::memory_order_relaxed));
    FreeNode(n);
    n = next;
  }
}

bool OrderedIndex::Find(uint64_t key, Node** preds, Node** succs) {
retry:
  Node* pred = &head_;
  for (int level = kMaxHeight - 1; level >= 0; --level) {
    Node* curr = StripMark(pred->next[level].load(std::memory_order_acquire));
    while (curr != nullptr) {
      Node* succ = curr->next[level].load(std::memory_order_acquire);
      if (IsMarked(succ)) {
        // curr is logically deleted at this level: help unlink it. The CAS
        // fails if pred itself got marked or its link moved; restart.
        Node* expected = curr;
        if (!pred->next[level].compare_exchange_strong(
                expected, StripMark(succ), std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          goto retry;
        }
        curr = StripMark(succ);
        continue;
      }
      if (curr->key < key) {
        pred = curr;
        curr = StripMark(succ);
        continue;
      }
      break;
    }
    preds[level] = pred;
    succs[level] = curr;
  }
  return succs[0] != nullptr && succs[0]->key == key;
}

void OrderedIndex::LockMeta(Node* node) {
  while (true) {
    uint64_t meta = node->meta.load(std::memory_order_relaxed);
    if ((meta & kChainLatchBit) == 0 &&
        node->meta.compare_exchange_weak(meta, meta | kChainLatchBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
      return;
    }
    CpuRelax();
  }
}

void OrderedIndex::UnlockMeta(Node* node) {
  node->meta.fetch_and(~kChainLatchBit, std::memory_order_release);
}

bool OrderedIndex::PushVersion(Node* node, Version* v) {
  LockMeta(node);
  if ((node->meta.load(std::memory_order_relaxed) & kDeadBit) != 0) {
    UnlockMeta(node);
    return false;  // node is draining out of the tower; caller retries
  }
  Version* head = node->chain.load(std::memory_order_relaxed);
  v->Next(index_pos_).store(head, std::memory_order_relaxed);
  // Readers traverse the chain lock-free; publish with release. Pushes all
  // hold the meta latch, so a plain store (no CAS) suffices.
  node->chain.store(v, std::memory_order_release);
  UnlockMeta(node);
  return true;
}

void OrderedIndex::Insert(Version* v) {
  OptionalEpochGuard guard(epoch_);
  const uint64_t key = KeyOf(v);
  Node* preds[kMaxHeight];
  Node* succs[kMaxHeight];
  while (true) {
    if (Find(key, preds, succs)) {
      if (PushVersion(succs[0], v)) return;
      CpuRelax();  // the node is being retired; wait for it to leave
      continue;
    }
    Node* node = AllocNode(key);
    v->Next(index_pos_).store(nullptr, std::memory_order_relaxed);
    node->chain.store(v, std::memory_order_relaxed);
    // Hold the linking bit across upper-level publication: a concurrent
    // chain-drain retirement must not mark-and-free the node while we are
    // still wiring it into the tower.
    node->meta.store(kLinkingBit, std::memory_order_relaxed);
    const uint32_t height = node->height;
    for (uint32_t i = 0; i < height; ++i) {
      node->next[i].store(succs[i], std::memory_order_relaxed);
    }
    Node* expected = succs[0];
    if (!preds[0]->next[0].compare_exchange_strong(expected, node,
                                                   std::memory_order_release,
                                                   std::memory_order_relaxed)) {
      FreeNode(node);  // never published
      continue;
    }
    for (uint32_t level = 1; level < height; ++level) {
      while (true) {
        // Not yet linked at this level, so only we touch next[level] (the
        // retirer waits out the linking bit before marking).
        node->next[level].store(succs[level], std::memory_order_relaxed);
        Node* expected_succ = succs[level];
        if (preds[level]->next[level].compare_exchange_strong(
                expected_succ, node, std::memory_order_release,
                std::memory_order_relaxed)) {
          break;
        }
        Find(key, preds, succs);  // preds went stale; refresh the bracket
      }
    }
    node->meta.fetch_and(~kLinkingBit, std::memory_order_release);
    return;
  }
}

bool OrderedIndex::Unlink(Version* v) {
  OptionalEpochGuard guard(epoch_);
  const uint64_t key = KeyOf(v);
  Node* preds[kMaxHeight];
  Node* succs[kMaxHeight];
  if (!Find(key, preds, succs)) return false;
  Node* node = succs[0];

  LockMeta(node);
  if ((node->meta.load(std::memory_order_relaxed) & kDeadBit) != 0) {
    UnlockMeta(node);
    return false;  // chain already drained; v is long gone
  }
  bool found = false;
  Version* head = node->chain.load(std::memory_order_relaxed);
  if (head == v) {
    node->chain.store(v->Next(index_pos_).load(std::memory_order_acquire),
                      std::memory_order_release);
    found = true;
  } else {
    for (Version* prev = head; prev != nullptr;
         prev = prev->Next(index_pos_).load(std::memory_order_acquire)) {
      Version* cur = prev->Next(index_pos_).load(std::memory_order_acquire);
      if (cur == v) {
        prev->Next(index_pos_)
            .store(v->Next(index_pos_).load(std::memory_order_acquire),
                   std::memory_order_release);
        found = true;
        break;
      }
    }
  }
  const bool drained = node->chain.load(std::memory_order_relaxed) == nullptr;
  if (drained) {
    // Win the dead bit while still latched: exactly one unlinker retires.
    node->meta.fetch_or(kDeadBit, std::memory_order_release);
  }
  UnlockMeta(node);
  if (drained) RemoveNode(node);
  return found;
}

void OrderedIndex::RemoveNode(Node* node) {
  // Wait out the creator's upper-level linking (bounded: linking never
  // blocks), so no tower CAS can re-publish the node after we mark it.
  while ((node->meta.load(std::memory_order_acquire) & kLinkingBit) != 0) {
    CpuRelax();
  }
  for (int level = static_cast<int>(node->height) - 1; level >= 0; --level) {
    Node* succ = node->next[level].load(std::memory_order_acquire);
    while (!IsMarked(succ)) {
      if (node->next[level].compare_exchange_weak(succ, WithMark(succ),
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
        break;
      }
    }
  }
  // A Find over the node's key physically unlinks it at every level it is
  // still reachable on (traversals help, but this call guarantees it).
  Node* preds[kMaxHeight];
  Node* succs[kMaxHeight];
  Find(node->key, preds, succs);
  RetireNode(node);
}

OrderedIndex::Node* OrderedIndex::AllocNode(uint64_t key) {
  void* storage = slab_ != nullptr ? slab_->Allocate()
                                   : ::operator new(sizeof(Node));
  Node* node = new (storage) Node();  // placement-init: slots recycle
  node->key = key;
  node->height = RandomHeight();
  for (uint32_t i = 0; i < kMaxHeight; ++i) {
    node->next[i].store(nullptr, std::memory_order_relaxed);
  }
  return node;
}

void OrderedIndex::FreeNode(Node* node) {
  if (slab_ != nullptr) {
    node->~Node();
    slab_->Free(node);
  } else {
    node->~Node();
    ::operator delete(node);
  }
}

void OrderedIndex::NodeDeleter(void* node, void* index_arg) {
  static_cast<OrderedIndex*>(index_arg)->FreeNode(static_cast<Node*>(node));
}

void OrderedIndex::RetireNode(Node* node) {
  if (epoch_ != nullptr) {
    epoch_->Retire(node, &NodeDeleter, this);
  } else {
    FreeNode(node);  // single-threaded use only
  }
}

uint32_t OrderedIndex::RandomHeight() {
  // Thread-local xorshift; p = 1/4 per promotion (CLP-style towers).
  thread_local uint64_t state =
      0x9E3779B97F4A7C15ull ^ reinterpret_cast<uint64_t>(&state);
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  uint32_t height = 1;
  for (uint64_t r = state; (r & 3) == 0 && height < kMaxHeight; r >>= 2) {
    ++height;
  }
  return height;
}

uint64_t OrderedIndex::CountEntries() {
  OptionalEpochGuard guard(epoch_);
  uint64_t n = 0;
  ScanRange(0, ~uint64_t{0}, [&](Version*) {
    ++n;
    return true;
  });
  return n;
}

uint64_t OrderedIndex::CountNodes() {
  OptionalEpochGuard guard(epoch_);
  uint64_t n = 0;
  for (Node* node = StripMark(head_.next[0].load(std::memory_order_acquire));
       node != nullptr;
       node = StripMark(node->next[0].load(std::memory_order_acquire))) {
    if ((node->meta.load(std::memory_order_acquire) & kDeadBit) == 0) ++n;
  }
  return n;
}

}  // namespace mvstore
