#include "sv/sv_engine.h"

#include <cstring>

#include "log/log_record.h"

namespace mvstore {

SVEngine::SVEngine(SVEngineOptions options)
    : options_(options),
      txn_pool_(options_.use_slab_allocator, &stats_) {
  catalog_.ConfigureMemory(
      Table::MemoryOptions{options_.use_slab_allocator, &stats_});
  LogSink* sink = nullptr;
  if (options_.log_mode != LogMode::kDisabled) {
    sink = options_.log_path.empty()
               ? static_cast<LogSink*>(new NullLogSink())
               : static_cast<LogSink*>(new FileLogSink(options_.log_path));
  }
  logger_ = std::make_unique<Logger>(options_.log_mode, sink);
}

SVEngine::~SVEngine() {
  epoch_.DrainAll();
  for (uint32_t tid = 0; tid < catalog_.num_tables(); ++tid) {
    Table& table = catalog_.table(tid);
    if (table.num_indexes() == 0) continue;
    std::vector<Version*> rows;
    table.index(0).ScanAll([&](Version* v) {
      rows.push_back(v);
      return true;
    });
    for (Version* v : rows) table.FreeUnpublishedVersion(v);
  }
}

TableId SVEngine::CreateTable(TableDef def) {
  TableId id = catalog_.CreateTable(std::move(def));
  Table& table = catalog_.table(id);
  lock_table_base_.push_back(static_cast<uint32_t>(lock_tables_.size()));
  for (uint32_t i = 0; i < table.num_indexes(); ++i) {
    // One lock per hash key: size the lock table like the index.
    lock_tables_.push_back(
        std::make_unique<SVLockTable>(table.index(i).bucket_count()));
  }
  return id;
}

SVTransaction* SVEngine::Begin(IsolationLevel isolation, bool read_only) {
  (void)read_only;
  // Snapshot has no meaning single-versioned; strengthen to Repeatable Read.
  if (isolation == IsolationLevel::kSnapshot) {
    isolation = IsolationLevel::kRepeatableRead;
  }
  return txn_pool_.Acquire(
      next_txn_id_.fetch_add(1, std::memory_order_relaxed), isolation);
}

Status SVEngine::AcquireLock(SVTransaction* txn, SVLockTable& locks,
                             uint64_t key, bool exclusive,
                             SVTransaction::LockEntry** entry_out) {
  KeyLock* lock = locks.LockFor(key);
  SVTransaction::LockEntry* held = txn->FindLock(lock);
  if (held != nullptr) {
    if (held->exclusive || !exclusive) {
      if (entry_out != nullptr) *entry_out = held;
      return Status::OK();
    }
    // Upgrade S -> X.
    stats_.Add(Stat::kLockWaits);
    if (!SVLockTable::AcquireExclusive(lock, txn->id, /*held_shared=*/true,
                                       options_.lock_timeout_us)) {
      // Our shared slot was consumed by the failed upgrade; drop the entry
      // so release doesn't double-release.
      *held = txn->locks.back();
      txn->locks.pop_back();
      return Status::Aborted(AbortReason::kLockTimeout);
    }
    held->exclusive = true;
    if (entry_out != nullptr) *entry_out = held;
    return Status::OK();
  }
  bool ok = exclusive
                ? SVLockTable::AcquireExclusive(lock, txn->id, false,
                                                options_.lock_timeout_us)
                : SVLockTable::AcquireShared(lock, txn->id,
                                             options_.lock_timeout_us);
  if (!ok) return Status::Aborted(AbortReason::kLockTimeout);
  txn->locks.push_back(SVTransaction::LockEntry{lock, exclusive});
  if (entry_out != nullptr) *entry_out = &txn->locks.back();
  return Status::OK();
}

Version* SVEngine::FindRow(HashIndex& index, uint64_t key,
                           const std::function<bool(const void*)>& residual) {
  Version* found = nullptr;
  index.ScanBucket(key, [&](Version* v) {
    if (index.KeyOf(v) != key) return true;
    if (residual && !residual(v->Payload())) return true;
    found = v;
    return false;
  });
  return found;
}

Status SVEngine::Read(SVTransaction* txn, TableId table_id, IndexId index_id,
                      uint64_t key, void* out) {
  Table& table = catalog_.table(table_id);
  bool found = false;
  Status s = Scan(txn, table_id, index_id, key, nullptr,
                  [&](const void* payload) {
                    std::memcpy(out, payload, table.payload_size());
                    found = true;
                    return false;
                  });
  if (!s.ok()) return s;
  return found ? Status::OK() : Status::NotFound();
}

Status SVEngine::Scan(SVTransaction* txn, TableId table_id, IndexId index_id,
                      uint64_t key,
                      const std::function<bool(const void*)>& residual,
                      const std::function<bool(const void*)>& consumer) {
  Table& table = catalog_.table(table_id);
  HashIndex& index = table.index(index_id);
  SVLockTable& locks = *lock_tables_[lock_table_base_[table_id] + index_id];

  const bool short_lock = txn->isolation == IsolationLevel::kReadCommitted;
  KeyLock* lock = locks.LockFor(key);
  SVTransaction::LockEntry* held = txn->FindLock(lock);
  bool release_after = false;
  if (held == nullptr) {
    if (!SVLockTable::AcquireShared(lock, txn->id, options_.lock_timeout_us)) {
      return DoAbort(txn, AbortReason::kLockTimeout);
    }
    if (short_lock) {
      release_after = true;  // cursor stability: release when the read ends
    } else {
      txn->locks.push_back(SVTransaction::LockEntry{lock, false});
    }
  }

  {
    EpochGuard guard(epoch_);
    index.ScanBucket(key, [&](Version* v) {
      if (index.KeyOf(v) != key) return true;
      if (residual && !residual(v->Payload())) return true;
      return consumer(v->Payload());
    });
  }

  if (release_after) SVLockTable::ReleaseShared(lock);
  return Status::OK();
}

Status SVEngine::ScanTable(SVTransaction* txn, TableId table_id,
                           const std::function<bool(const void*)>& consumer) {
  Table& table = catalog_.table(table_id);
  HashIndex& index = table.index(0);
  SVLockTable& locks = *lock_tables_[lock_table_base_[table_id]];
  EpochGuard guard(epoch_);
  Status result = Status::OK();
  index.ScanAll([&](Version* v) {
    uint64_t key = index.KeyOf(v);
    KeyLock* lock = locks.LockFor(key);
    SVTransaction::LockEntry* held = txn->FindLock(lock);
    if (held == nullptr) {
      if (!SVLockTable::AcquireShared(lock, txn->id,
                                      options_.lock_timeout_us)) {
        result = Status::Aborted(AbortReason::kLockTimeout);
        return false;
      }
    }
    bool keep_going = consumer(v->Payload());
    if (held == nullptr) SVLockTable::ReleaseShared(lock);
    return keep_going;
  });
  if (result.IsAborted()) return DoAbort(txn, result.abort_reason());
  return result;
}

Status SVEngine::Insert(SVTransaction* txn, TableId table_id,
                        const void* payload) {
  Table& table = catalog_.table(table_id);
  HashIndex& primary = table.index(0);
  SVLockTable& primary_locks = *lock_tables_[lock_table_base_[table_id]];
  const uint64_t key = primary.KeyOfPayload(payload);

  Status s = AcquireLock(txn, primary_locks, key, /*exclusive=*/true, nullptr);
  if (!s.ok()) return DoAbort(txn, s.abort_reason());

  EpochGuard guard(epoch_);
  if (table.index_def(0).unique && FindRow(primary, key, nullptr) != nullptr) {
    return Status::AlreadyExists();  // lock stays held (2PL)
  }
  Version* row = table.AllocateVersion(payload);
  row->begin.store(beginword::MakeTimestamp(0), std::memory_order_relaxed);
  // Lock the secondary keys too before publishing.
  for (uint32_t i = 1; i < table.num_indexes(); ++i) {
    uint64_t k = table.index(i).KeyOfPayload(payload);
    Status s2 = AcquireLock(txn, *lock_tables_[lock_table_base_[table_id] + i],
                            k, /*exclusive=*/true, nullptr);
    if (!s2.ok()) {
      table.FreeUnpublishedVersion(row);
      return DoAbort(txn, s2.abort_reason());
    }
  }
  table.InsertIntoAllIndexes(row);
  txn->undo.push_back(
      SVTransaction::UndoEntry{SVTransaction::UndoOp::kInsert, &table, row, {}});
  return Status::OK();
}

Status SVEngine::Update(SVTransaction* txn, TableId table_id, IndexId index_id,
                        uint64_t key, const std::function<void(void*)>& mutator) {
  Table& table = catalog_.table(table_id);
  HashIndex& index = table.index(index_id);
  SVLockTable& locks = *lock_tables_[lock_table_base_[table_id] + index_id];

  Status s = AcquireLock(txn, locks, key, /*exclusive=*/true, nullptr);
  if (!s.ok()) return DoAbort(txn, s.abort_reason());

  EpochGuard guard(epoch_);
  Version* row = FindRow(index, key, nullptr);
  if (row == nullptr) return Status::NotFound();

  // If updating through a secondary index, also X-lock the primary key so
  // writers serialize regardless of access path.
  if (index_id != 0) {
    uint64_t pk = table.index(0).KeyOf(row);
    Status s2 = AcquireLock(txn, *lock_tables_[lock_table_base_[table_id]], pk,
                            /*exclusive=*/true, nullptr);
    if (!s2.ok()) return DoAbort(txn, s2.abort_reason());
  }

  SVTransaction::UndoEntry entry;
  entry.op = SVTransaction::UndoOp::kUpdate;
  entry.table = &table;
  entry.row = row;
  entry.before.resize(table.payload_size());
  std::memcpy(entry.before.data(), row->Payload(), table.payload_size());
  txn->undo.push_back(std::move(entry));

  mutator(row->Payload());  // in place, under the X lock
  return Status::OK();
}

Status SVEngine::Delete(SVTransaction* txn, TableId table_id, IndexId index_id,
                        uint64_t key) {
  Table& table = catalog_.table(table_id);
  HashIndex& index = table.index(index_id);
  SVLockTable& locks = *lock_tables_[lock_table_base_[table_id] + index_id];

  Status s = AcquireLock(txn, locks, key, /*exclusive=*/true, nullptr);
  if (!s.ok()) return DoAbort(txn, s.abort_reason());

  EpochGuard guard(epoch_);
  Version* row = FindRow(index, key, nullptr);
  if (row == nullptr) return Status::NotFound();

  // X-lock every index key of the row, then unlink everywhere.
  for (uint32_t i = 0; i < table.num_indexes(); ++i) {
    if (i == index_id) continue;
    uint64_t k = table.index(i).KeyOf(row);
    Status s2 = AcquireLock(txn, *lock_tables_[lock_table_base_[table_id] + i],
                            k, /*exclusive=*/true, nullptr);
    if (!s2.ok()) return DoAbort(txn, s2.abort_reason());
  }
  table.UnlinkFromAllIndexes(row);
  txn->undo.push_back(
      SVTransaction::UndoEntry{SVTransaction::UndoOp::kDelete, &table, row, {}});
  return Status::OK();
}

void SVEngine::ReleaseAllLocks(SVTransaction* txn) {
  for (const auto& e : txn->locks) {
    if (e.exclusive) {
      SVLockTable::ReleaseExclusive(e.lock);
    } else {
      SVLockTable::ReleaseShared(e.lock);
    }
  }
  txn->locks.clear();
}

void SVEngine::WriteLog(SVTransaction* txn) {
  if (logger_->mode() == LogMode::kDisabled || txn->undo.empty()) return;
  thread_local std::vector<uint8_t> buffer;
  buffer.clear();
  LogRecordBuilder builder(buffer);
  builder.BeginRecord(commit_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                      txn->id);
  for (const auto& u : txn->undo) {
    switch (u.op) {
      case SVTransaction::UndoOp::kInsert:
        builder.AddInsert(u.table->id(), u.row->Payload(),
                          u.table->payload_size());
        break;
      case SVTransaction::UndoOp::kUpdate:
        builder.AddUpdate(u.table->id(), u.table->index(0).KeyOf(u.row),
                          u.before.data(), u.row->Payload(),
                          u.table->payload_size());
        break;
      case SVTransaction::UndoOp::kDelete:
        builder.AddDelete(u.table->id(), u.table->index(0).KeyOf(u.row));
        break;
    }
  }
  builder.EndRecord();
  logger_->Append(buffer);
}

Status SVEngine::Commit(SVTransaction* txn) {
  WriteLog(txn);
  // Deleted rows become unreachable only now; concurrent scans of other keys
  // may still traverse them, so retire through the epoch manager.
  for (const auto& u : txn->undo) {
    if (u.op == SVTransaction::UndoOp::kDelete) {
      epoch_.Retire(u.row, &Table::VersionDeleter, u.table);
    }
  }
  ReleaseAllLocks(txn);
  stats_.Add(Stat::kTxnCommitted);
  txn_pool_.Release(txn);
  return Status::OK();
}

Status SVEngine::DoAbort(SVTransaction* txn, AbortReason reason) {
  // Undo in reverse order under the still-held locks.
  for (auto it = txn->undo.rbegin(); it != txn->undo.rend(); ++it) {
    switch (it->op) {
      case SVTransaction::UndoOp::kInsert:
        it->table->UnlinkFromAllIndexes(it->row);
        epoch_.Retire(it->row, &Table::VersionDeleter, it->table);
        break;
      case SVTransaction::UndoOp::kUpdate:
        std::memcpy(it->row->Payload(), it->before.data(),
                    it->table->payload_size());
        break;
      case SVTransaction::UndoOp::kDelete:
        it->table->InsertIntoAllIndexes(it->row);
        break;
    }
  }
  ReleaseAllLocks(txn);
  stats_.Add(Stat::kTxnAborted);
  if (reason == AbortReason::kLockTimeout || reason == AbortReason::kDeadlock) {
    stats_.Add(Stat::kAbortDeadlock);
  }
  txn_pool_.Release(txn);
  return Status::Aborted(reason);
}

void SVEngine::Abort(SVTransaction* txn) {
  DoAbort(txn, AbortReason::kUserRequested);
}

}  // namespace mvstore
