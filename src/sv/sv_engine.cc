#include "sv/sv_engine.h"

#include <algorithm>
#include <cstring>

#include "log/log_record.h"
#include "log/log_segment.h"
#include "obs/slow_txn.h"

namespace mvstore {

SVEngine::SVEngine(SVEngineOptions options)
    : options_(options),
      hists_(options_.enable_latency_histograms),
      slow_txn_ticks_(obs::SlowTxnThresholdTicks(options_.slow_txn_us)),
      txn_pool_(options_.use_slab_allocator, &stats_) {
  catalog_.ConfigureMemory(
      Table::MemoryOptions{options_.use_slab_allocator, &stats_, &epoch_});
  LogSink* sink = nullptr;
  if (options_.log_mode != LogMode::kDisabled) {
    if (options_.log_path.empty()) {
      sink = new NullLogSink();
    } else if (options_.log_segment_bytes > 0) {
      sink = new SegmentedLogSink(
          options_.log_path,
          SegmentedLogSink::Options{options_.log_segment_bytes,
                                    options_.fsync_log},
          &stats_);
    } else {
      sink = new FileLogSink(options_.log_path, options_.fsync_log, &stats_);
    }
  }
  logger_ = std::make_unique<Logger>(options_.log_mode, sink,
                                     options_.group_commit_us, &stats_,
                                     &hists_);
}

SVEngine::~SVEngine() {
  epoch_.DrainAll();
  for (uint32_t tid = 0; tid < catalog_.num_tables(); ++tid) {
    Table& table = catalog_.table(tid);
    if (table.num_indexes() == 0) continue;
    std::vector<Version*> rows;
    table.index(0).ScanAll([&](Version* v) {
      rows.push_back(v);
      return true;
    });
    for (Version* v : rows) table.FreeUnpublishedVersion(v);
  }
}

TableId SVEngine::CreateTable(TableDef def) {
  TableId id = catalog_.CreateTable(std::move(def));
  Table& table = catalog_.table(id);
  lock_table_base_.push_back(static_cast<uint32_t>(lock_tables_.size()));
  for (uint32_t i = 0; i < table.num_indexes(); ++i) {
    // One lock per hash key: size the lock table like the index. Ordered
    // indexes get the same key-hash row locks plus a RangeLockManager for
    // interval (phantom) coverage.
    lock_tables_.push_back(
        std::make_unique<SVLockTable>(table.index_def(i).bucket_count));
    range_locks_.push_back(table.ordered_index(i) != nullptr
                               ? std::make_unique<RangeLockManager>()
                               : nullptr);
  }
  return id;
}

SVTransaction* SVEngine::Begin(IsolationLevel isolation, bool read_only) {
  (void)read_only;
  // Snapshot has no meaning single-versioned; strengthen to Repeatable Read.
  if (isolation == IsolationLevel::kSnapshot) {
    isolation = IsolationLevel::kRepeatableRead;
  }
  SVTransaction* txn = txn_pool_.Acquire(
      next_txn_id_.fetch_add(1, std::memory_order_relaxed), isolation);
  // Sampled commit-pipeline tracing, same policy as the MV engine: the
  // decision rides start_ticks; slow_txn_us forces every commit timed.
  if (hists_.enabled() && (slow_txn_ticks_ != 0 || obs::SampleThisTxn())) {
    txn->start_ticks = obs::NowTicks();
  }
  return txn;
}

Status SVEngine::AcquireLock(SVTransaction* txn, SVLockTable& locks,
                             uint64_t key, bool exclusive,
                             SVTransaction::LockEntry** entry_out) {
  KeyLock* lock = locks.LockFor(key);
  SVTransaction::LockEntry* held = txn->FindLock(lock);
  if (held != nullptr) {
    if (held->exclusive || !exclusive) {
      if (entry_out != nullptr) *entry_out = held;
      return Status::OK();
    }
    // Upgrade S -> X.
    stats_.Add(Stat::kLockWaits);
    if (!SVLockTable::AcquireExclusive(lock, txn->id, /*held_shared=*/true,
                                       options_.lock_timeout_us)) {
      // Our shared slot was consumed by the failed upgrade; drop the entry
      // so release doesn't double-release.
      *held = txn->locks.back();
      txn->locks.pop_back();
      return Status::Aborted(AbortReason::kLockTimeout);
    }
    held->exclusive = true;
    if (entry_out != nullptr) *entry_out = held;
    return Status::OK();
  }
  bool ok = exclusive
                ? SVLockTable::AcquireExclusive(lock, txn->id, false,
                                                options_.lock_timeout_us)
                : SVLockTable::AcquireShared(lock, txn->id,
                                             options_.lock_timeout_us);
  if (!ok) return Status::Aborted(AbortReason::kLockTimeout);
  txn->locks.push_back(SVTransaction::LockEntry{lock, exclusive});
  if (entry_out != nullptr) *entry_out = &txn->locks.back();
  return Status::OK();
}

Version* SVEngine::FindRow(Table& table, IndexId index_id, uint64_t key,
                           const std::function<bool(const void*)>& residual) {
  Version* found = nullptr;
  auto probe = [&](Version* v) {
    if (table.IndexKeyOf(index_id, v) != key) return true;
    if (residual && !residual(v->Payload())) return true;
    found = v;
    return false;
  };
  table.ScanIndexKey(index_id, key, probe);
  return found;
}

Status SVEngine::ReadRowForScan(SVTransaction* txn, Table& table,
                                IndexId index_id, SVLockTable& locks,
                                Version* v, bool cursor_stability,
                                const std::function<bool(const void*)>& residual,
                                const std::function<bool(const void*)>& consumer,
                                bool* keep_going) {
  *keep_going = true;
  const uint64_t key = table.IndexKeyOf(index_id, v);
  KeyLock* lock = locks.LockFor(key);
  SVTransaction::LockEntry* held = txn->FindLock(lock);
  bool release_after = false;
  if (held == nullptr) {
    if (!SVLockTable::AcquireShared(lock, txn->id, options_.lock_timeout_us)) {
      return Status::Aborted(AbortReason::kLockTimeout);
    }
    if (cursor_stability ||
        txn->isolation == IsolationLevel::kReadCommitted) {
      release_after = true;
    } else {
      txn->locks.push_back(SVTransaction::LockEntry{lock, false});
    }
    // Membership re-check: the index walk found `v` before we held the
    // lock, so a writer may have unlinked it in the window (aborted
    // insert, committed delete). Unconditional even when the acquisition
    // never waited: a writer can take X, unlink, and release entirely
    // inside that window without contending with our acquire. Only a row
    // we already held the lock for needs no check.
    bool linked = false;
    table.ScanIndexKey(index_id, key, [&](Version* candidate) {
      if (candidate == v) {
        linked = true;
        return false;
      }
      return true;
    });
    if (!linked) {
      if (release_after) SVLockTable::ReleaseShared(lock);
      return Status::OK();  // skip the vanished row; *keep_going stays true
    }
  }
  if (!residual || residual(v->Payload())) {
    *keep_going = consumer(v->Payload());
  }
  if (release_after) SVLockTable::ReleaseShared(lock);
  return Status::OK();
}

Status SVEngine::AcquireOrderedPoints(SVTransaction* txn, TableId table_id,
                                      Table& table, const void* payload) {
  for (uint32_t i = 0; i < table.num_indexes(); ++i) {
    RangeLockManager* ranges =
        range_locks_[lock_table_base_[table_id] + i].get();
    if (ranges == nullptr) continue;
    uint64_t key = table.IndexKeyOfPayload(i, payload);
    if (!ranges->AcquirePoint(txn->id, key, options_.lock_timeout_us)) {
      return Status::Aborted(AbortReason::kLockTimeout);
    }
    txn->range_locks.push_back(
        SVTransaction::RangeLockHold{ranges, key, key, /*point=*/true});
  }
  return Status::OK();
}

Status SVEngine::Read(SVTransaction* txn, TableId table_id, IndexId index_id,
                      uint64_t key, void* out) {
  Table& table = catalog_.table(table_id);
  bool found = false;
  Status s = Scan(txn, table_id, index_id, key, nullptr,
                  [&](const void* payload) {
                    std::memcpy(out, payload, table.payload_size());
                    found = true;
                    return false;
                  });
  if (!s.ok()) return s;
  return found ? Status::OK() : Status::NotFound();
}

Status SVEngine::Scan(SVTransaction* txn, TableId table_id, IndexId index_id,
                      uint64_t key,
                      const std::function<bool(const void*)>& residual,
                      const std::function<bool(const void*)>& consumer) {
  Table& table = catalog_.table(table_id);
  if (table.ordered_index(index_id) != nullptr) {
    // Equality probe on the ordered access path: a degenerate range (the
    // range machinery supplies the phantom coverage a hash-key lock would).
    return ScanRange(txn, table_id, index_id, key, key, residual, consumer);
  }
  HashIndex& index = table.index(index_id);
  SVLockTable& locks = *lock_tables_[lock_table_base_[table_id] + index_id];

  const bool short_lock = txn->isolation == IsolationLevel::kReadCommitted;
  KeyLock* lock = locks.LockFor(key);
  SVTransaction::LockEntry* held = txn->FindLock(lock);
  bool release_after = false;
  if (held == nullptr) {
    if (!SVLockTable::AcquireShared(lock, txn->id, options_.lock_timeout_us)) {
      return DoAbort(txn, AbortReason::kLockTimeout);
    }
    if (short_lock) {
      release_after = true;  // cursor stability: release when the read ends
    } else {
      txn->locks.push_back(SVTransaction::LockEntry{lock, false});
    }
  }

  {
    EpochGuard guard(epoch_);
    index.ScanBucket(key, [&](Version* v) {
      if (index.KeyOf(v) != key) return true;
      if (residual && !residual(v->Payload())) return true;
      return consumer(v->Payload());
    });
  }

  if (release_after) SVLockTable::ReleaseShared(lock);
  return Status::OK();
}

Status SVEngine::ScanRange(SVTransaction* txn, TableId table_id,
                           IndexId index_id, uint64_t lo, uint64_t hi,
                           const std::function<bool(const void*)>& residual,
                           const std::function<bool(const void*)>& consumer) {
  Table& table = catalog_.table(table_id);
  OrderedIndex* index = table.ordered_index(index_id);
  if (index == nullptr) return Status::InvalidArgument();
  SVLockTable& key_locks = *lock_tables_[lock_table_base_[table_id] + index_id];
  RangeLockManager& ranges =
      *range_locks_[lock_table_base_[table_id] + index_id];

  // Serializable: predicate-lock the interval before reading, so inserts
  // and deletes inside it wait for us (or time out) — strict 2PL phantom
  // protection over a range the hash-key locks cannot express.
  if (txn->isolation == IsolationLevel::kSerializable) {
    if (!ranges.AcquireRange(txn->id, lo, hi, options_.lock_timeout_us)) {
      return DoAbort(txn, AbortReason::kLockTimeout);
    }
    txn->range_locks.push_back(
        SVTransaction::RangeLockHold{&ranges, lo, hi, /*point=*/false});
  }

  EpochGuard guard(epoch_);
  Status result = Status::OK();
  index->ScanRange(lo, hi, [&](Version* v) {
    // Rows are read under their ordered-key hash lock (short under Read
    // Committed — cursor stability — held to commit otherwise): deleters
    // and in-place writers X-lock it, so payload and membership are
    // stable while we hold S.
    bool keep_going = true;
    Status s = ReadRowForScan(txn, table, index_id, key_locks, v,
                              /*cursor_stability=*/false, residual, consumer,
                              &keep_going);
    if (!s.ok()) {
      result = s;
      return false;
    }
    return keep_going;
  });
  if (result.IsAborted()) return DoAbort(txn, result.abort_reason());
  return result;
}

Status SVEngine::ScanTable(SVTransaction* txn, TableId table_id,
                           const std::function<bool(const void*)>& consumer) {
  Table& table = catalog_.table(table_id);
  SVLockTable& locks = *lock_tables_[lock_table_base_[table_id]];
  EpochGuard guard(epoch_);
  Status result = Status::OK();
  table.index(0).ScanAll([&](Version* v) {
    // Cursor stability only: each row's lock is released after the read
    // regardless of isolation (a full scan must not accumulate the whole
    // table's locks).
    bool keep_going = true;
    Status s = ReadRowForScan(txn, table, 0, locks, v,
                              /*cursor_stability=*/true, nullptr, consumer,
                              &keep_going);
    if (!s.ok()) {
      result = s;
      return false;
    }
    return keep_going;
  });
  if (result.IsAborted()) return DoAbort(txn, result.abort_reason());
  return result;
}

Status SVEngine::Insert(SVTransaction* txn, TableId table_id,
                        const void* payload) {
  Table& table = catalog_.table(table_id);
  HashIndex& primary = table.index(0);
  SVLockTable& primary_locks = *lock_tables_[lock_table_base_[table_id]];
  const uint64_t key = primary.KeyOfPayload(payload);

  Status s = AcquireLock(txn, primary_locks, key, /*exclusive=*/true, nullptr);
  if (!s.ok()) return DoAbort(txn, s.abort_reason());

  EpochGuard guard(epoch_);
  if (table.index_def(0).unique &&
      FindRow(table, 0, key, nullptr) != nullptr) {
    return Status::AlreadyExists();  // lock stays held (2PL)
  }
  Version* row = table.AllocateVersion(payload);
  row->begin.store(beginword::MakeTimestamp(0), std::memory_order_relaxed);
  // Lock the secondary keys too before publishing.
  for (uint32_t i = 1; i < table.num_indexes(); ++i) {
    uint64_t k = table.IndexKeyOfPayload(i, payload);
    Status s2 = AcquireLock(txn, *lock_tables_[lock_table_base_[table_id] + i],
                            k, /*exclusive=*/true, nullptr);
    if (!s2.ok()) {
      table.FreeUnpublishedVersion(row);
      return DoAbort(txn, s2.abort_reason());
    }
  }
  // Ordered indexes: the new keys must not land inside a range a
  // serializable scanner holds (phantom); wait it out or time out.
  Status sp = AcquireOrderedPoints(txn, table_id, table, payload);
  if (!sp.ok()) {
    table.FreeUnpublishedVersion(row);
    return DoAbort(txn, sp.abort_reason());
  }
  table.InsertIntoAllIndexes(row);
  txn->undo.push_back(
      SVTransaction::UndoEntry{SVTransaction::UndoOp::kInsert, &table, row, {}});
  return Status::OK();
}

Status SVEngine::Update(SVTransaction* txn, TableId table_id, IndexId index_id,
                        uint64_t key, const std::function<void(void*)>& mutator) {
  Table& table = catalog_.table(table_id);
  SVLockTable& locks = *lock_tables_[lock_table_base_[table_id] + index_id];

  Status s = AcquireLock(txn, locks, key, /*exclusive=*/true, nullptr);
  if (!s.ok()) return DoAbort(txn, s.abort_reason());

  EpochGuard guard(epoch_);
  Version* row = FindRow(table, index_id, key, nullptr);
  if (row == nullptr) return Status::NotFound();

  // If updating through a secondary index, also X-lock the primary key so
  // writers serialize regardless of access path.
  if (index_id != 0) {
    uint64_t pk = table.IndexKeyOf(0, row);
    Status s2 = AcquireLock(txn, *lock_tables_[lock_table_base_[table_id]], pk,
                            /*exclusive=*/true, nullptr);
    if (!s2.ok()) return DoAbort(txn, s2.abort_reason());
  }
  // X-lock the row's key in every ordered index: range scans read rows
  // under those keys' S locks, and the in-place mutation below must not
  // race them. (In-place updates cannot change index keys, so the keys
  // read here are stable.)
  for (uint32_t i = 0; i < table.num_indexes(); ++i) {
    if (i == index_id || table.ordered_index(i) == nullptr) continue;
    uint64_t k = table.IndexKeyOf(i, row);
    Status s2 = AcquireLock(txn, *lock_tables_[lock_table_base_[table_id] + i],
                            k, /*exclusive=*/true, nullptr);
    if (!s2.ok()) return DoAbort(txn, s2.abort_reason());
  }

  SVTransaction::UndoEntry entry;
  entry.op = SVTransaction::UndoOp::kUpdate;
  entry.table = &table;
  entry.row = row;
  entry.before.resize(table.payload_size());
  std::memcpy(entry.before.data(), row->Payload(), table.payload_size());
  txn->undo.push_back(std::move(entry));

  mutator(row->Payload());  // in place, under the X lock
  return Status::OK();
}

Status SVEngine::Delete(SVTransaction* txn, TableId table_id, IndexId index_id,
                        uint64_t key) {
  Table& table = catalog_.table(table_id);
  SVLockTable& locks = *lock_tables_[lock_table_base_[table_id] + index_id];

  Status s = AcquireLock(txn, locks, key, /*exclusive=*/true, nullptr);
  if (!s.ok()) return DoAbort(txn, s.abort_reason());

  EpochGuard guard(epoch_);
  Version* row = FindRow(table, index_id, key, nullptr);
  if (row == nullptr) return Status::NotFound();

  // X-lock every index key of the row, then unlink everywhere.
  for (uint32_t i = 0; i < table.num_indexes(); ++i) {
    if (i == index_id) continue;
    uint64_t k = table.IndexKeyOf(i, row);
    Status s2 = AcquireLock(txn, *lock_tables_[lock_table_base_[table_id] + i],
                            k, /*exclusive=*/true, nullptr);
    if (!s2.ok()) return DoAbort(txn, s2.abort_reason());
  }
  // Removing keys from an ordered index shrinks a serializable scanner's
  // result set just like an insert grows it: take the point entries first.
  Status sp = AcquireOrderedPoints(txn, table_id, table, row->Payload());
  if (!sp.ok()) return DoAbort(txn, sp.abort_reason());
  table.UnlinkFromAllIndexes(row);
  txn->undo.push_back(
      SVTransaction::UndoEntry{SVTransaction::UndoOp::kDelete, &table, row, {}});
  return Status::OK();
}

void SVEngine::ReleaseAllLocks(SVTransaction* txn) {
  for (const auto& e : txn->locks) {
    if (e.exclusive) {
      SVLockTable::ReleaseExclusive(e.lock);
    } else {
      SVLockTable::ReleaseShared(e.lock);
    }
  }
  txn->locks.clear();
  for (const auto& r : txn->range_locks) {
    if (r.point) {
      r.manager->ReleasePoint(txn->id, r.lo);
    } else {
      r.manager->ReleaseRange(txn->id, r.lo, r.hi);
    }
  }
  txn->range_locks.clear();
}

void SVEngine::WriteLog(SVTransaction* txn) {
  if (logger_->mode() == LogMode::kDisabled || txn->undo.empty()) return;
  if (logger_->replay_paused()) return;  // recovery: record already on disk
  thread_local std::vector<uint8_t> buffer;
  buffer.clear();
  LogRecordBuilder builder(buffer);
  builder.BeginRecord(commit_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                      txn->id);
  for (const auto& u : txn->undo) {
    switch (u.op) {
      case SVTransaction::UndoOp::kInsert:
        builder.AddInsert(u.table->id(), u.row->Payload(),
                          u.table->payload_size());
        break;
      case SVTransaction::UndoOp::kUpdate:
        builder.AddUpdate(u.table->id(), u.table->index(0).KeyOf(u.row),
                          u.before.data(), u.row->Payload(),
                          u.table->payload_size());
        break;
      case SVTransaction::UndoOp::kDelete:
        builder.AddDelete(u.table->id(), u.table->index(0).KeyOf(u.row));
        break;
    }
  }
  builder.EndRecord();
  logger_->Append(buffer);
}

Status SVEngine::Commit(SVTransaction* txn) {
  // Phase timing (docs/OBSERVABILITY.md): 1V has no validation phase, so
  // commit_total decomposes into log append + group wait + release.
  const bool timed = slow_txn_ticks_ != 0 ||
                     (txn->start_ticks != 0 && hists_.enabled());
  const uint64_t t_enter = timed ? obs::NowTicks() : 0;
  WriteLog(txn);
  const uint64_t group_wait_ticks =
      (timed && !txn->undo.empty() &&
       logger_->mode() != LogMode::kDisabled && !logger_->replay_paused())
          ? Logger::LastGroupWaitTicks()
          : 0;
  const uint64_t t_logged = timed ? obs::NowTicks() : 0;
  // Deleted rows become unreachable only now; concurrent scans of other keys
  // may still traverse them, so retire through the epoch manager.
  for (const auto& u : txn->undo) {
    if (u.op == SVTransaction::UndoOp::kDelete) {
      epoch_.Retire(u.row, &Table::VersionDeleter, u.table);
    }
  }
  ReleaseAllLocks(txn);
  stats_.Add(Stat::kTxnCommitted);
  const uint64_t writes = txn->undo.size();
  const TxnId txn_id = txn->id;
  const uint64_t start_ticks = txn->start_ticks;
  txn_pool_.Release(txn);
  if (timed) {
    const uint64_t t_done = obs::NowTicks();
    const uint64_t total = t_done - t_enter;
    const uint64_t log_span = t_logged - t_enter;
    hists_.Record(obs::Hist::kCommitTotal, total);
    hists_.Record(obs::Hist::kCommitLogAppend,
                  log_span - std::min(log_span, group_wait_ticks));
    if (start_ticks != 0) {
      hists_.Record(obs::Hist::kTxnLifetime, t_done - start_ticks);
    }
    if (slow_txn_ticks_ != 0 && total >= slow_txn_ticks_) {
      obs::CommitTrace trace;
      trace.scheme = "sv";
      trace.txn_id = txn_id;
      trace.total_ticks = total;
      trace.log_append_ticks = log_span - std::min(log_span, group_wait_ticks);
      trace.group_wait_ticks = group_wait_ticks;
      trace.writes = writes;
      obs::LogSlowTxn(trace, &stats_);
    }
  }
  return Status::OK();
}

Status SVEngine::DoAbort(SVTransaction* txn, AbortReason reason) {
  // Undo in reverse order under the still-held locks.
  for (auto it = txn->undo.rbegin(); it != txn->undo.rend(); ++it) {
    switch (it->op) {
      case SVTransaction::UndoOp::kInsert:
        it->table->UnlinkFromAllIndexes(it->row);
        epoch_.Retire(it->row, &Table::VersionDeleter, it->table);
        break;
      case SVTransaction::UndoOp::kUpdate:
        std::memcpy(it->row->Payload(), it->before.data(),
                    it->table->payload_size());
        break;
      case SVTransaction::UndoOp::kDelete:
        it->table->InsertIntoAllIndexes(it->row);
        break;
    }
  }
  ReleaseAllLocks(txn);
  stats_.Add(Stat::kTxnAborted);
  if (reason == AbortReason::kLockTimeout || reason == AbortReason::kDeadlock) {
    stats_.Add(Stat::kAbortDeadlock);
  }
  txn_pool_.Release(txn);
  return Status::Aborted(reason);
}

void SVEngine::Abort(SVTransaction* txn) {
  DoAbort(txn, AbortReason::kUserRequested);
}

}  // namespace mvstore
