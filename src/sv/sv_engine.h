// Single-version locking engine ("1V", paper Section 5).
//
// The paper's baseline: a well-tuned single-version engine with strict
// two-phase locking, against which both multiversion schemes (MV/O, MV/L;
// see cc/mv_engine.h) are compared in every experiment of Section 5. Its
// raw-overhead win under low contention (Figure 4) and its collapse under
// long readers (Figures 8-9) frame the paper's robustness argument.
//
// Rows are stored single-versioned in the same lock-free hash indexes as the
// MV engine (the Version header's Begin/End words are unused). Updates are
// applied in place under an exclusive key lock; aborts restore before-images
// from an undo set (strict two-phase locking).
//
// Isolation levels:
//  * Read Committed  - short shared locks (cursor stability): acquire,
//    read, release.
//  * Repeatable Read / Serializable - shared locks held to commit. A key
//    lock covers every record with that hash key, so equality scans get
//    phantom protection for free; RR and SR behave identically (the paper's
//    Table 3 shows near-identical 1V throughput for both).
//  * Snapshot - not supported single-versioned; mapped to Repeatable Read.
//
// Deadlocks are broken by lock-wait timeouts.
//
// Constraint: in-place updates must not change any index key (concurrent
// scans of other keys read key fields without a lock). Delete + insert to
// change a key.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/counters.h"
#include "common/status.h"
#include "common/types.h"
#include "log/logger.h"
#include "mem/object_pool.h"
#include "obs/histogram.h"
#include "storage/table.h"
#include "sv/lock_table.h"
#include "util/epoch.h"

namespace mvstore {

struct SVEngineOptions {
  /// Lock-wait timeout; expiry aborts the waiter (probable deadlock).
  uint64_t lock_timeout_us = 2000;
  LogMode log_mode = LogMode::kAsync;
  std::string log_path;
  /// fsync each flushed batch (see DatabaseOptions::fsync_log).
  bool fsync_log = false;
  /// > 0: rotating-segment log at this size; 0: one append-only file
  /// (see MVEngineOptions::log_segment_bytes).
  uint64_t log_segment_bytes = 0;
  /// Group-commit window (see Logger); 0 = flush as soon as possible.
  uint32_t group_commit_us = 0;
  /// Recycle row slots through per-table slabs and transaction objects
  /// through a pool (mem/); off = plain heap (debug fallback).
  bool use_slab_allocator = true;

  /// Record commit-pipeline phase latencies into obs/ histograms
  /// (docs/OBSERVABILITY.md). Off = Record() is a single relaxed load.
  bool enable_latency_histograms = true;

  /// Commits slower than this emit one rate-limited slow-txn log line with
  /// the per-phase breakdown (obs/slow_txn.h); 0 disables.
  uint64_t slow_txn_us = 0;
};

/// Single-version transaction handle.
class SVTransaction {
 public:
  SVTransaction(TxnId id, IsolationLevel isolation)
      : id(id), isolation(isolation) {}

  /// Re-arm a recycled handle (mem/object_pool.h); lock/undo vectors keep
  /// their capacity. Only the owning thread ever touches an SV handle, so
  /// recycling needs no epoch deferral.
  void Reset(TxnId new_id, IsolationLevel new_isolation) {
    id = new_id;
    isolation = new_isolation;
    start_ticks = 0;
    locks.clear();
    range_locks.clear();
    undo.clear();
  }

  TxnId id = 0;
  IsolationLevel isolation = IsolationLevel::kReadCommitted;
  /// obs::NowTicks() at Begin (owning thread only; feeds the txn_lifetime
  /// histogram at commit). 0 when histograms are disabled.
  uint64_t start_ticks = 0;

  struct LockEntry {
    KeyLock* lock;
    bool exclusive;
  };

  /// One registered predicate-lock entry (RangeLockManager): a scanned
  /// range (shared) or a written key (point). `point` distinguishes; a
  /// point entry stores its key in `lo`.
  struct RangeLockHold {
    RangeLockManager* manager;
    uint64_t lo;
    uint64_t hi;
    bool point;
  };

  enum class UndoOp : uint8_t { kInsert, kUpdate, kDelete };

  struct UndoEntry {
    UndoOp op;
    Table* table;
    Version* row;
    std::vector<uint8_t> before;  // update only
  };

  std::vector<LockEntry> locks;
  std::vector<RangeLockHold> range_locks;
  std::vector<UndoEntry> undo;

  /// Find this transaction's hold on `lock`, or nullptr.
  LockEntry* FindLock(KeyLock* lock) {
    for (auto& e : locks) {
      if (e.lock == lock) return &e;
    }
    return nullptr;
  }
};

class SVEngine {
 public:
  explicit SVEngine(SVEngineOptions options = {});
  ~SVEngine();

  SVEngine(const SVEngine&) = delete;
  SVEngine& operator=(const SVEngine&) = delete;

  TableId CreateTable(TableDef def);
  Table& table(TableId id) { return catalog_.table(id); }
  Catalog& catalog() { return catalog_; }

  SVTransaction* Begin(IsolationLevel isolation, bool read_only = false);

  Status Read(SVTransaction* txn, TableId table_id, IndexId index_id,
              uint64_t key, void* out);
  Status Scan(SVTransaction* txn, TableId table_id, IndexId index_id,
              uint64_t key, const std::function<bool(const void*)>& residual,
              const std::function<bool(const void*)>& consumer);
  /// Visit every row whose `index_id` key lies in [lo, hi], ascending.
  /// `index_id` must name an ordered index. Rows are read under their
  /// ordered-key hash locks (short under Read Committed, held to commit
  /// otherwise); serializable scans additionally register the range in the
  /// index's RangeLockManager, so conflicting inserts/deletes wait or time
  /// out (phantom protection by locking, the 1V way).
  Status ScanRange(SVTransaction* txn, TableId table_id, IndexId index_id,
                   uint64_t lo, uint64_t hi,
                   const std::function<bool(const void*)>& residual,
                   const std::function<bool(const void*)>& consumer);
  /// Visit every row of the table. Each row is read under a briefly-held
  /// shared key lock (cursor stability), so payloads are never torn but the
  /// scan as a whole is not a consistent snapshot (single-version storage
  /// has no snapshots; see the MV engines for consistent reporting scans).
  Status ScanTable(SVTransaction* txn, TableId table_id,
                   const std::function<bool(const void*)>& consumer);

  Status Insert(SVTransaction* txn, TableId table_id, const void* payload);
  Status Update(SVTransaction* txn, TableId table_id, IndexId index_id,
                uint64_t key, const std::function<void(void*)>& mutator);
  Status Delete(SVTransaction* txn, TableId table_id, IndexId index_id,
                uint64_t key);

  Status Commit(SVTransaction* txn);
  void Abort(SVTransaction* txn);

  StatsCollector& stats() { return stats_; }
  obs::LatencyHistograms& hists() { return hists_; }
  EpochManager& epoch() { return epoch_; }
  Logger& logger() { return *logger_; }
  const SVEngineOptions& options() const { return options_; }

  /// Timestamp the next commit record will exceed (recovery/checkpoint
  /// coordination): every transaction that already wrote its log record has
  /// an end timestamp <= this value.
  Timestamp commit_clock() const {
    return commit_clock_.load(std::memory_order_acquire);
  }
  /// Raise the commit clock to at least `floor`; recovery calls this after
  /// replay so post-recovery records sort after the replayed ones.
  void AdvanceCommitClock(Timestamp floor) {
    Timestamp cur = commit_clock_.load(std::memory_order_acquire);
    while (cur < floor && !commit_clock_.compare_exchange_weak(
                              cur, floor, std::memory_order_acq_rel)) {
    }
  }

 private:
  /// Acquire (or convert to) the requested mode on the key's lock,
  /// registering it in the transaction's lock set. Short-lock reads under
  /// Read Committed are handled by the caller.
  Status AcquireLock(SVTransaction* txn, SVLockTable& locks, uint64_t key,
                     bool exclusive, SVTransaction::LockEntry** entry_out);

  /// Find the row for `key` on any index kind. Caller must hold the key
  /// lock (any mode) and an epoch guard.
  Version* FindRow(Table& table, IndexId index_id, uint64_t key,
                   const std::function<bool(const void*)>& residual);

  /// Register point entries for `payload`'s key in every ordered index's
  /// RangeLockManager (insert/delete paths; blocks while a serializable
  /// scanner covers the key). Returns a lock-timeout abort status on
  /// expiry.
  Status AcquireOrderedPoints(SVTransaction* txn, TableId table_id,
                              Table& table, const void* payload);

  /// Read one traversal-discovered row under its `index_id` key lock:
  /// acquire shared (or reuse a held entry), re-validate that the row is
  /// still linked (the walk found it before the lock was granted, so an
  /// aborted insert or committed delete may have unlinked it while we
  /// waited), then run residual + consumer. `cursor_stability` releases
  /// the lock after the row regardless of isolation (full-table scans);
  /// otherwise only Read Committed releases early. Sets *keep_going from
  /// the consumer; returns a lock-timeout abort status on expiry.
  Status ReadRowForScan(SVTransaction* txn, Table& table, IndexId index_id,
                        SVLockTable& locks, Version* v, bool cursor_stability,
                        const std::function<bool(const void*)>& residual,
                        const std::function<bool(const void*)>& consumer,
                        bool* keep_going);

  void ReleaseAllLocks(SVTransaction* txn);
  void WriteLog(SVTransaction* txn);
  Status DoAbort(SVTransaction* txn, AbortReason reason);

  SVEngineOptions options_;
  /// stats_ precedes catalog_ and txn_pool_: table slabs and the pool flush
  /// local counters into it on destruction. hists_ keeps the same position
  /// for the same reason (the logger records group waits until it dies).
  StatsCollector stats_;
  obs::LatencyHistograms hists_;
  /// Precomputed SlowTxnThresholdTicks(options_.slow_txn_us); 0 = disabled.
  uint64_t slow_txn_ticks_ = 0;
  Catalog catalog_;
  ObjectPool<SVTransaction> txn_pool_;
  std::vector<std::unique_ptr<SVLockTable>> lock_tables_;  // [table][index]
  /// Parallel to lock_tables_: a RangeLockManager per ordered index
  /// (nullptr for hash slots).
  std::vector<std::unique_ptr<RangeLockManager>> range_locks_;
  std::vector<uint32_t> lock_table_base_;  // table id -> first lock table
  EpochManager epoch_;
  std::unique_ptr<Logger> logger_;
  std::atomic<TxnId> next_txn_id_{1};
  std::atomic<Timestamp> commit_clock_{0};
};

}  // namespace mvstore
