// Partitioned lock table for the single-version ("1V") engine.
//
// The paper's 1V engine has no central lock manager: "we embed a lock table
// in every index and assign each hash key to a lock in this partitioned
// lock table. A lock covers all records with the same hash key which
// automatically protects against phantoms. We use timeouts to detect and
// break deadlocks." (Section 5.)
//
// Each lock is a reader-count plus a writer-owner word. Waits spin with
// exponential backoff and a deadline; a timed-out acquisition aborts the
// transaction (probable deadlock).
//
// Hash-key locks protect equality scans against phantoms, but an ordered
// index's range scans need coverage over a key *interval*. RangeLockManager
// below supplies it: serializable scanners register [lo, hi] shared, and
// writers that add or remove keys from an ordered index register point
// entries; the two conflict pairwise across transactions and waits use the
// same timeout discipline.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/port.h"
#include "common/spin_latch.h"
#include "common/timing.h"
#include "common/types.h"
#include "util/bits.h"

namespace mvstore {

/// Spin-then-yield backoff for 1V lock waits.
class LockBackoff {
 public:
  void Pause() {
    if (++spins_ % 256 == 0) {
      std::this_thread::yield();
    } else {
      CpuRelax();
    }
  }

 private:
  uint32_t spins_ = 0;
};

/// Lazily arms the deadline on first call (avoids a clock read on the
/// uncontended path), then reports expiry.
inline bool LockWaitTimedOut(uint64_t* deadline, uint64_t timeout_us) {
  uint64_t now = NowMicros();
  if (*deadline == 0) {
    *deadline = now + timeout_us;
    return false;
  }
  return now >= *deadline;
}

/// One shared/exclusive lock. Readers increment `readers`; a writer owns
/// the lock by storing its transaction ID in `writer`. A writer waits for
/// readers to drain; readers wait for the writer to leave.
struct alignas(kCacheLineSize) KeyLock {
  std::atomic<uint64_t> writer{0};
  std::atomic<uint32_t> readers{0};
};

class SVLockTable {
 public:
  explicit SVLockTable(uint64_t partition_hint)
      : size_(NextPowerOfTwo(partition_hint < 64 ? 64 : partition_hint)),
        mask_(size_ - 1),
        locks_(size_) {}

  KeyLock* LockFor(uint64_t key) { return &locks_[HashInt64(key) & mask_]; }

  uint64_t size() const { return size_; }

  /// Acquire in shared mode; `self` already holding the write lock succeeds
  /// immediately (lock conversion is implicit: X covers S).
  /// Returns false on timeout.
  static bool AcquireShared(KeyLock* lock, TxnId self, uint64_t timeout_us) {
    Backoff backoff;
    uint64_t deadline = 0;
    while (true) {
      uint64_t w = lock->writer.load(std::memory_order_acquire);
      if (w == 0 || w == self) {
        if (w == self) return true;  // X implies S
        lock->readers.fetch_add(1, std::memory_order_acq_rel);
        uint64_t w2 = lock->writer.load(std::memory_order_seq_cst);
        if (w2 == 0 || w2 == self) return true;
        lock->readers.fetch_sub(1, std::memory_order_acq_rel);
      }
      if (TimedOut(&deadline, timeout_us)) return false;
      backoff.Pause();
    }
  }

  static void ReleaseShared(KeyLock* lock) {
    lock->readers.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// Acquire in exclusive mode. `held_shared` indicates the caller holds one
  /// shared slot that should be converted (upgrade). On timeout the shared
  /// slot is *not* restored -- the caller aborts anyway. Returns false on
  /// timeout.
  static bool AcquireExclusive(KeyLock* lock, TxnId self, bool held_shared,
                               uint64_t timeout_us) {
    if (held_shared) lock->readers.fetch_sub(1, std::memory_order_acq_rel);
    Backoff backoff;
    uint64_t deadline = 0;
    // Step 1: become the writer.
    while (true) {
      uint64_t expected = 0;
      if (lock->writer.compare_exchange_weak(expected, self,
                                             std::memory_order_acq_rel)) {
        break;
      }
      if (expected == self) break;  // reentrant
      if (TimedOut(&deadline, timeout_us)) return false;
      backoff.Pause();
    }
    // Step 2: wait out the remaining readers.
    while (lock->readers.load(std::memory_order_acquire) != 0) {
      if (TimedOut(&deadline, timeout_us)) {
        lock->writer.store(0, std::memory_order_release);
        return false;
      }
      backoff.Pause();
    }
    return true;
  }

  static void ReleaseExclusive(KeyLock* lock) {
    lock->writer.store(0, std::memory_order_release);
  }

 private:
  using Backoff = LockBackoff;

  static bool TimedOut(uint64_t* deadline, uint64_t timeout_us) {
    return LockWaitTimedOut(deadline, timeout_us);
  }

  const uint64_t size_;
  const uint64_t mask_;
  std::vector<KeyLock> locks_;
};

/// Predicate locks over one ordered index's key space, the 1V engine's
/// phantom protection for range scans (strict 2PL: entries are held to
/// commit and released with the transaction's other locks).
///
///  * A serializable range scan registers [lo, hi] in shared mode before
///    reading.
///  * An insert or delete that changes the index's key membership registers
///    a point entry for the affected key before touching the index.
///
/// A point entry conflicts with any overlapping range of another
/// transaction, and vice versa; same-kind entries never conflict (two
/// scanners share; two writers of the same key are already serialized by
/// that key's hash lock). Waits spin with the usual timeout, so range/point
/// deadlocks are broken like every other 1V deadlock.
///
/// The entry lists are short (one per live scanning/writing transaction)
/// and guarded by one spin latch; the scan-heavy path registers once per
/// range, not per row.
class RangeLockManager {
 public:
  /// Register [lo, hi] shared for `self` once no other transaction holds a
  /// point entry inside it. Returns false on timeout.
  bool AcquireRange(TxnId self, uint64_t lo, uint64_t hi,
                    uint64_t timeout_us) {
    LockBackoff backoff;
    uint64_t deadline = 0;
    while (true) {
      {
        SpinLatchGuard guard(latch_);
        bool conflict = false;
        for (const PointEntry& p : points_) {
          if (p.txn != self && p.key >= lo && p.key <= hi) {
            conflict = true;
            break;
          }
        }
        if (!conflict) {
          ranges_.push_back(RangeEntry{self, lo, hi});
          return true;
        }
      }
      if (LockWaitTimedOut(&deadline, timeout_us)) return false;
      backoff.Pause();
    }
  }

  void ReleaseRange(TxnId self, uint64_t lo, uint64_t hi) {
    SpinLatchGuard guard(latch_);
    for (size_t i = 0; i < ranges_.size(); ++i) {
      if (ranges_[i].txn == self && ranges_[i].lo == lo &&
          ranges_[i].hi == hi) {
        ranges_[i] = ranges_.back();
        ranges_.pop_back();
        return;
      }
    }
  }

  /// Register `key` for writer `self` once no other transaction holds a
  /// range covering it. Returns false on timeout.
  bool AcquirePoint(TxnId self, uint64_t key, uint64_t timeout_us) {
    LockBackoff backoff;
    uint64_t deadline = 0;
    while (true) {
      {
        SpinLatchGuard guard(latch_);
        bool conflict = false;
        for (const RangeEntry& r : ranges_) {
          if (r.txn != self && key >= r.lo && key <= r.hi) {
            conflict = true;
            break;
          }
        }
        if (!conflict) {
          points_.push_back(PointEntry{self, key});
          return true;
        }
      }
      if (LockWaitTimedOut(&deadline, timeout_us)) return false;
      backoff.Pause();
    }
  }

  void ReleasePoint(TxnId self, uint64_t key) {
    SpinLatchGuard guard(latch_);
    for (size_t i = 0; i < points_.size(); ++i) {
      if (points_[i].txn == self && points_[i].key == key) {
        points_[i] = points_.back();
        points_.pop_back();
        return;
      }
    }
  }

 private:
  struct RangeEntry {
    TxnId txn;
    uint64_t lo;
    uint64_t hi;
  };
  struct PointEntry {
    TxnId txn;
    uint64_t key;
  };

  SpinLatch latch_;
  std::vector<RangeEntry> ranges_ GUARDED_BY(latch_);
  std::vector<PointEntry> points_ GUARDED_BY(latch_);
};

}  // namespace mvstore
