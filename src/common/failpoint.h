// Deterministic fault-injection points ("failpoints").
//
// A failpoint is a named site compiled into a syscall-adjacent branch of the
// durability or serving path (log append, fsync, checkpoint rename, socket
// read, ...). Unarmed sites cost one relaxed atomic load of a global counter;
// builds configured with -DMVSTORE_FAILPOINTS_ENABLED=OFF compile every site
// to a constant-false branch so benchmark builds carry zero cost (enforced by
// scripts/bench_report.sh).
//
// Arming is programmatic (failpoint::Arm / ArmSpec) or environmental: the
// MVSTORE_FAILPOINTS env var is parsed once at process start. The spec
// grammar, shared by both paths:
//
//   spec    := site "=" action *( ";" site "=" action )
//   action  := ( "error" | "crash" | "delay(" ms ")" | "off" )
//              [ "@" hit ]      ; skip the first hit-1 evaluations
//              [ "%" one_in ]   ; then fire on ~1/K evaluations (seeded LCG)
//
// Examples: "log.fsync=error", "log.append.write=crash@17",
// "server.read=error%1000", "client.recv=delay(50)@3".
//
// Actions:
//   error  -> Evaluate() returns true; the site's code path reports the same
//             failure the wrapped syscall would (ENOSPC, EIO, EOF, ...).
//   crash  -> the process dies immediately via std::_Exit(kCrashExitCode):
//             no stdio flush, no destructors — exactly the page-cache state a
//             real crash leaves. The chaos harness (src/chaos/) matches on
//             the exit code.
//   delay  -> sleep the given milliseconds, then report "did not fire"
//             (latency injection without failure).
//
// The site catalog lives in docs/RELIABILITY.md; keep it in sync when adding
// sites.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/port.h"

namespace mvstore {
namespace failpoint {

/// Exit code of a crash-armed site. Distinct from any exit code the normal
/// process paths use, so harnesses can tell an injected crash from a bug.
inline constexpr int kCrashExitCode = 42;

enum class ActionKind : uint8_t {
  kOff = 0,  // site disarmed (parse target for "off")
  kError,    // Evaluate() returns true
  kCrash,    // std::_Exit(kCrashExitCode) inside Evaluate()
  kDelay,    // sleep delay_ms, return false
};

struct Action {
  ActionKind kind = ActionKind::kOff;
  /// Fire starting at this evaluation of the site (1-based; 0 == 1). A crash
  /// action with hit=N models "crash after N-1 successful passes".
  uint64_t hit = 1;
  /// Probabilistic gate: after `hit` is reached, fire on roughly one in K
  /// eligible evaluations using a per-site deterministic LCG. 0 = always.
  uint64_t one_in = 0;
  /// Sleep length for kDelay.
  uint32_t delay_ms = 0;
  /// Seed for the one_in LCG stream; 0 = derive from the site name so the
  /// same spec replays identically run over run.
  uint64_t seed = 0;
};

/// True when sites are compiled into this binary (MVSTORE_FAILPOINTS_ENABLED).
bool CompiledIn();

/// Arm `site` with `action` (replacing any previous arming). Arming a site
/// with ActionKind::kOff is equivalent to Disarm().
void Arm(const std::string& site, const Action& action);

/// Parse and arm a full spec string ("site=action;site=action"). Returns
/// false (arming nothing from the offending clause onward) on a malformed
/// spec; `error`, when non-null, receives a description.
bool ArmSpec(const std::string& spec, std::string* error = nullptr);

void Disarm(const std::string& site);
void DisarmAll();

/// Evaluations seen by `site` while armed (hit counting starts at arming).
uint64_t Hits(const std::string& site);

/// Currently armed site names (diagnostics).
std::vector<std::string> ArmedSites();

namespace internal {
/// Number of armed sites; the unarmed fast path is one relaxed load of this.
extern std::atomic<uint32_t> g_armed_sites;
bool EvaluateSlow(const char* site);
}  // namespace internal

/// Hot-path hook; use the MVSTORE_FAILPOINT macro rather than calling this.
inline bool Evaluate(const char* site) {
  if (MVSTORE_LIKELY(
          internal::g_armed_sites.load(std::memory_order_relaxed) == 0)) {
    return false;
  }
  return internal::EvaluateSlow(site);
}

}  // namespace failpoint
}  // namespace mvstore

/// `if (MVSTORE_FAILPOINT("log.fsync")) { ...report failure... }`
/// True when the named site is armed with an error action that fires on this
/// evaluation. Crash actions never return; delay actions sleep and yield
/// false. Compiles to `false` when MVSTORE_FAILPOINTS_ENABLED is off.
#if defined(MVSTORE_FAILPOINTS_ENABLED)
#define MVSTORE_FAILPOINT(site) \
  MVSTORE_UNLIKELY(::mvstore::failpoint::Evaluate(site))
#else
#define MVSTORE_FAILPOINT(site) (false)
#endif
