// Annotated thin wrappers over std::mutex / std::shared_mutex /
// std::condition_variable.
//
// The wrappers exist solely so Clang's thread-safety analysis can see lock
// acquisition and the data each lock protects (std:: types carry no
// capability attributes). They add no state and no indirection: every method
// is a single inlined forward to the std:: primitive, so a Mutex costs
// exactly what a std::mutex costs.
//
// Condition-variable waits: the analysis cannot see through a predicate
// lambda (a lambda body does not inherit the caller's lock set), so waits
// are written as explicit loops in the caller's scope:
//
//   MutexLock lock(mutex_);
//   while (flushed_lsn_ < target) commit_cv_.Wait(lock);   // guarded reads OK
//
// CondVar::Wait releases and re-acquires the mutex internally; like every
// annotated systems codebase, we let the analysis believe the capability is
// held across the wait (the caller's guarded accesses on either side are
// what the analysis should check; the wait itself is trusted).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace mvstore {

class CondVar;
class MutexLock;

/// std::mutex with capability annotations. Prefer the scoped MutexLock;
/// bare Lock/Unlock is for protocols a scope cannot express (and those
/// call sites should usually be REQUIRES-annotated helpers instead).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// No-op at runtime; tells the analysis the lock is held on paths where
  /// the acquisition happened out of its sight. Use sparingly.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII guard for Mutex (scoped capability). Holds a std::unique_lock so
/// CondVar can wait on it.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable bound to the annotated MutexLock. Predicate
/// loops live in the caller (see file comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <class Rep, class Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& rel) {
    return cv_.wait_for(lock.lock_, rel);
  }

  template <class Clock, class Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// std::shared_mutex with capability annotations.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive (writer) guard for SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterLock() RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) guard for SharedMutex. The destructor is a generic
/// release: scoped guards may hold either mode by the analysis's model.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace mvstore
