// Platform and compiler portability helpers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace mvstore {

/// Size of a cache line on every platform we target. Used to pad hot shared
/// state so that independently-updated words do not false-share.
inline constexpr std::size_t kCacheLineSize = 64;

#if defined(__GNUC__) || defined(__clang__)
#define MVSTORE_LIKELY(x) __builtin_expect(!!(x), 1)
#define MVSTORE_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define MVSTORE_LIKELY(x) (x)
#define MVSTORE_UNLIKELY(x) (x)
#endif

/// True in ThreadSanitizer builds. Slab recycling is invisible to TSan's
/// happens-before machinery the same way it is to ASan's quarantine, so
/// sanitizer builds default DatabaseOptions::use_slab_allocator off (tests
/// that exercise the slabs on purpose still opt back in).
#if defined(__SANITIZE_THREAD__)
inline constexpr bool kTsanBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
inline constexpr bool kTsanBuild = true;
#else
inline constexpr bool kTsanBuild = false;
#endif
#else
inline constexpr bool kTsanBuild = false;
#endif

/// True in AddressSanitizer builds; same slab-allocator reasoning as TSan —
/// slab recycling hides object lifetimes from the quarantine, so error-path
/// leak hunting wants real malloc/free.
#if defined(__SANITIZE_ADDRESS__)
inline constexpr bool kAsanBuild = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
inline constexpr bool kAsanBuild = true;
#else
inline constexpr bool kAsanBuild = false;
#endif
#else
inline constexpr bool kAsanBuild = false;
#endif

/// True in UndefinedBehaviorSanitizer builds. GCC defines no preprocessor
/// macro for -fsanitize=undefined, so the CMake option MVSTORE_UBSAN injects
/// MVSTORE_UBSAN_BUILD; Clang is additionally detected via __has_feature.
#if defined(MVSTORE_UBSAN_BUILD)
inline constexpr bool kUbsanBuild = true;
#elif defined(__has_feature)
#if __has_feature(undefined_behavior_sanitizer)
inline constexpr bool kUbsanBuild = true;
#else
inline constexpr bool kUbsanBuild = false;
#endif
#else
inline constexpr bool kUbsanBuild = false;
#endif

/// Any sanitizer that wants heap-backed object lifetimes. UBSan joins so
/// misaligned/invalid-pointer diagnostics point at real heap objects rather
/// than recycled slab slots.
inline constexpr bool kSanitizerBuild = kTsanBuild || kAsanBuild || kUbsanBuild;

/// CPU pause hint for spin loops.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fall back to a compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

}  // namespace mvstore
