// Platform and compiler portability helpers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace mvstore {

/// Size of a cache line on every platform we target. Used to pad hot shared
/// state so that independently-updated words do not false-share.
inline constexpr std::size_t kCacheLineSize = 64;

#if defined(__GNUC__) || defined(__clang__)
#define MVSTORE_LIKELY(x) __builtin_expect(!!(x), 1)
#define MVSTORE_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define MVSTORE_LIKELY(x) (x)
#define MVSTORE_UNLIKELY(x) (x)
#endif

/// CPU pause hint for spin loops.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // Fall back to a compiler barrier only.
  asm volatile("" ::: "memory");
#endif
}

}  // namespace mvstore
