// Tiny test-and-test-and-set spin latch for short critical sections.
#pragma once

#include <atomic>
#include <thread>

#include "common/port.h"
#include "common/thread_annotations.h"

namespace mvstore {

/// A one-word spin latch with a futex fallback. Use only around critical
/// sections of a few dozen instructions (list splices, counter pairs);
/// anything longer should use a real mutex. Not recursive.
///
/// States: 0 = free, 1 = held, 2 = held with (possible) sleepers. Waiters
/// spin briefly, then mark the latch contended and sleep; Unlock pays a
/// wake syscall only when that mark is set, so the uncontended path is one
/// CAS in and one exchange out. Sleeping (rather than yield-looping)
/// matters when holder and waiter share a core: a descheduled holder gets
/// the CPU back immediately instead of after the waiter's burned quantum.
///
/// A capability for Clang's thread-safety analysis: fields the latch
/// protects carry GUARDED_BY(latch), helpers that expect it held carry
/// REQUIRES(latch). See docs/STATIC_ANALYSIS.md.
class CAPABILITY("latch") SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void Lock() ACQUIRE() {
    uint32_t expected = 0;
    if (state_.compare_exchange_strong(expected, 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return;
    }
    LockSlow();
  }

  bool TryLock() TRY_ACQUIRE(true) {
    uint32_t expected = 0;
    return state_.compare_exchange_strong(expected, 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void Unlock() RELEASE() {
    if (state_.exchange(0, std::memory_order_release) == 2) {
      state_.notify_one();
    }
  }

  /// No-op at runtime; tells the analysis the latch is held on paths where
  /// the acquisition happened out of its sight (e.g. TryLock in a sibling
  /// function). Use sparingly; prefer REQUIRES on the helper.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  void LockSlow() {
    for (uint32_t spins = 0; spins < kSpinLimit; ++spins) {
      uint32_t s = state_.load(std::memory_order_relaxed);
      if (s == 0 && state_.compare_exchange_weak(s, 1,
                                                 std::memory_order_acquire,
                                                 std::memory_order_relaxed)) {
        return;
      }
      CpuRelax();
    }
    // Sleep phase. From here on, acquire only via exchange(2): once any
    // thread may be sleeping, the latch must stay marked contended until a
    // wake finds it free -- re-acquiring with a bare 1 would let the next
    // Unlock skip the notify and strand a sleeper. (Acquiring may therefore
    // over-mark a latch with no remaining waiters; the extra wake that
    // causes is harmless.)
    while (state_.exchange(2, std::memory_order_acquire) != 0) {
      state_.wait(2, std::memory_order_relaxed);
    }
  }

  static constexpr uint32_t kSpinLimit = 64;

  std::atomic<uint32_t> state_{0};
};

/// RAII guard for SpinLatch (scoped capability).
class SCOPED_CAPABILITY SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch& latch) ACQUIRE(latch) : latch_(latch) {
    latch_.Lock();
  }
  ~SpinLatchGuard() RELEASE() { latch_.Unlock(); }
  SpinLatchGuard(const SpinLatchGuard&) = delete;
  SpinLatchGuard& operator=(const SpinLatchGuard&) = delete;

 private:
  SpinLatch& latch_;
};

}  // namespace mvstore
