// Tiny test-and-test-and-set spin latch for short critical sections.
#pragma once

#include <atomic>

#include "common/port.h"

namespace mvstore {

/// A one-byte spin latch. Use only around critical sections of a few dozen
/// instructions (list splices, counter pairs); anything longer should use a
/// real mutex. Not recursive.
class SpinLatch {
 public:
  SpinLatch() = default;
  SpinLatch(const SpinLatch&) = delete;
  SpinLatch& operator=(const SpinLatch&) = delete;

  void Lock() {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) CpuRelax();
    }
  }

  bool TryLock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void Unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for SpinLatch.
class SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch& latch) : latch_(latch) { latch_.Lock(); }
  ~SpinLatchGuard() { latch_.Unlock(); }
  SpinLatchGuard(const SpinLatchGuard&) = delete;
  SpinLatchGuard& operator=(const SpinLatchGuard&) = delete;

 private:
  SpinLatch& latch_;
};

}  // namespace mvstore
