// Clang thread-safety-analysis attribute macros.
//
// These expand to Clang's capability attributes under Clang and to nothing
// under every other compiler, so the annotations are zero-cost at runtime
// and invisible to GCC (which would otherwise reject the unknown attributes
// under -Werror). The analysis itself runs in the CI `thread-safety` job
// (scripts/check_thread_safety.sh): a Clang compile of src/ with
// -Wthread-safety -Werror=thread-safety-analysis, plus negative fixtures
// that must FAIL to compile so a deleted GUARDED_BY is caught rather than
// silently weakening the check.
//
// Usage summary (see docs/STATIC_ANALYSIS.md for the full policy):
//
//   class CAPABILITY("mutex") Mutex { ... };    // a lock type
//   class SCOPED_CAPABILITY MutexLock { ... };  // an RAII guard type
//   int balance_ GUARDED_BY(mu_);               // field needs mu_ held
//   Node* head_ PT_GUARDED_BY(mu_);             // *head_ needs mu_ held
//   void RotateLocked() REQUIRES(mu_);          // caller must hold mu_
//   void Flush() EXCLUDES(mu_);                 // caller must NOT hold mu_
//   void Drain() NO_THREAD_SAFETY_ANALYSIS;     // protocol is non-lexical;
//                                               // comment the protocol!
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define MVSTORE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MVSTORE_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// A type that is a lock/latch ("capability" in analysis terms).
#define CAPABILITY(x) MVSTORE_THREAD_ANNOTATION(capability(x))

// An RAII type whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY MVSTORE_THREAD_ANNOTATION(scoped_lockable)

// Data members: reads/writes require the named capability held.
#define GUARDED_BY(x) MVSTORE_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) MVSTORE_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering declarations (deadlock detection).
#define ACQUIRED_BEFORE(...) \
  MVSTORE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  MVSTORE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function attributes: the caller must hold (exclusively / shared) the
// listed capabilities on entry, and still holds them on exit.
#define REQUIRES(...) \
  MVSTORE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  MVSTORE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function attributes: the function acquires/releases the capability.
#define ACQUIRE(...) MVSTORE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  MVSTORE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) MVSTORE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  MVSTORE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  MVSTORE_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

// Conditional acquisition: first argument is the return value meaning
// "acquired" (true for every Try* in this codebase).
#define TRY_ACQUIRE(...) \
  MVSTORE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  MVSTORE_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

// The caller must NOT hold the capability (the function acquires it itself,
// or sleeping while holding it would deadlock / stall the system).
#define EXCLUDES(...) MVSTORE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held; teaches the analysis about
// holds it cannot see (e.g. established in another translation unit).
#define ASSERT_CAPABILITY(x) MVSTORE_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  MVSTORE_THREAD_ANNOTATION(assert_shared_capability(x))

// The function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) MVSTORE_THREAD_ANNOTATION(lock_returned(x))

// Opt a function out of the analysis entirely. Every use must carry a
// comment stating the locking protocol it follows and why the analysis
// cannot express it (scripts/check_invariants.py enforces the comment).
#define NO_THREAD_SAFETY_ANALYSIS \
  MVSTORE_THREAD_ANNOTATION(no_thread_safety_analysis)
