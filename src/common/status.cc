#include "common/status.h"

namespace mvstore {

const char* AbortReasonName(AbortReason reason) {
  switch (reason) {
    case AbortReason::kNone:
      return "None";
    case AbortReason::kWriteWriteConflict:
      return "WriteWriteConflict";
    case AbortReason::kReadValidation:
      return "ReadValidation";
    case AbortReason::kPhantom:
      return "Phantom";
    case AbortReason::kCascading:
      return "Cascading";
    case AbortReason::kReadLockFailed:
      return "ReadLockFailed";
    case AbortReason::kWaitForRefused:
      return "WaitForRefused";
    case AbortReason::kDeadlock:
      return "Deadlock";
    case AbortReason::kLockTimeout:
      return "LockTimeout";
    case AbortReason::kUserRequested:
      return "UserRequested";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kAborted:
      return std::string("Aborted(") + AbortReasonName(reason_) + ")";
    case Code::kNotFound:
      return "NotFound";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kAlreadyExists:
      return "AlreadyExists";
    case Code::kInternal:
      return "Internal";
    case Code::kUnavailable:
      return "Unavailable";
    case Code::kReadOnly:
      return "ReadOnly";
    case Code::kTimeout:
      return "Timeout";
  }
  return "Unknown";
}

}  // namespace mvstore
