#include "common/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <unordered_map>

#include "common/mutex.h"

namespace mvstore {
namespace failpoint {

namespace internal {
std::atomic<uint32_t> g_armed_sites{0};
}  // namespace internal

namespace {

struct SiteState {
  Action action;
  uint64_t hits = 0;  // evaluations since arming
  uint64_t rng = 0;   // LCG state for the one_in gate
};

struct Registry {
  Mutex mu;
  std::unordered_map<std::string, SiteState> sites GUARDED_BY(mu);
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

uint64_t HashName(const std::string& name) {
  // FNV-1a; only needs to give distinct sites distinct LCG streams.
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

bool LcgFires(SiteState& state) {
  if (state.action.one_in <= 1) return true;
  state.rng = state.rng * 6364136223846793005ull + 1442695040888963407ull;
  return (state.rng >> 33) % state.action.one_in == 0;
}

void PublishCount(Registry& reg) REQUIRES(reg.mu) {
  internal::g_armed_sites.store(static_cast<uint32_t>(reg.sites.size()),
                                std::memory_order_release);
}

/// Parse "error", "crash", "delay(12)", "off" with optional "@N" and "%K"
/// suffixes (either order) into `out`.
bool ParseAction(const std::string& text, Action* out, std::string* error) {
  Action action;
  size_t pos = 0;
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": '" + text + "'";
    return false;
  };
  size_t word_end = text.find_first_of("@%(", pos);
  std::string word = text.substr(pos, word_end - pos);
  if (word == "off") {
    action.kind = ActionKind::kOff;
  } else if (word == "error") {
    action.kind = ActionKind::kError;
  } else if (word == "crash") {
    action.kind = ActionKind::kCrash;
  } else if (word == "delay") {
    action.kind = ActionKind::kDelay;
  } else {
    return fail("unknown failpoint action '" + word + "'");
  }
  pos = (word_end == std::string::npos) ? text.size() : word_end;

  auto parse_u64 = [&](uint64_t* value) {
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') return false;
    uint64_t v = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      v = v * 10 + static_cast<uint64_t>(text[pos] - '0');
      ++pos;
    }
    *value = v;
    return true;
  };

  if (action.kind == ActionKind::kDelay) {
    if (pos >= text.size() || text[pos] != '(') {
      return fail("delay needs '(ms)'");
    }
    ++pos;
    uint64_t ms = 0;
    if (!parse_u64(&ms) || pos >= text.size() || text[pos] != ')') {
      return fail("delay needs '(ms)'");
    }
    ++pos;
    action.delay_ms = static_cast<uint32_t>(ms);
  }
  while (pos < text.size()) {
    char c = text[pos++];
    uint64_t value = 0;
    if (c == '@') {
      if (!parse_u64(&value)) return fail("'@' needs a hit count");
      action.hit = value;
    } else if (c == '%') {
      if (!parse_u64(&value)) return fail("'%' needs a one-in-K count");
      action.one_in = value;
    } else {
      return fail("trailing garbage after action");
    }
  }
  *out = action;
  return true;
}

/// One-time loader for the MVSTORE_FAILPOINTS environment spec. A malformed
/// env spec is a hard error: silently running without the faults the
/// operator asked for would make a chaos run vacuously green.
struct EnvLoader {
  EnvLoader() {
    const char* spec = std::getenv("MVSTORE_FAILPOINTS");
    if (spec == nullptr || spec[0] == '\0') return;
    std::string error;
    if (!ArmSpec(spec, &error)) {
      std::fprintf(stderr, "mvstore: bad MVSTORE_FAILPOINTS: %s\n",
                   error.c_str());
      std::abort();
    }
  }
};
EnvLoader g_env_loader;

}  // namespace

bool CompiledIn() {
#if defined(MVSTORE_FAILPOINTS_ENABLED)
  return true;
#else
  return false;
#endif
}

void Arm(const std::string& site, const Action& action) {
  if (action.kind == ActionKind::kOff) {
    Disarm(site);
    return;
  }
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  SiteState& state = reg.sites[site];
  state.action = action;
  if (state.action.hit == 0) state.action.hit = 1;
  state.hits = 0;
  state.rng = action.seed != 0 ? action.seed : HashName(site);
  PublishCount(reg);
}

bool ArmSpec(const std::string& spec, std::string* error) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string clause = spec.substr(pos, end - pos);
    pos = end + 1;
    if (clause.empty()) continue;
    size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error != nullptr) *error = "expected site=action: '" + clause + "'";
      return false;
    }
    Action action;
    if (!ParseAction(clause.substr(eq + 1), &action, error)) return false;
    Arm(clause.substr(0, eq), action);
  }
  return true;
}

void Disarm(const std::string& site) {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  reg.sites.erase(site);
  PublishCount(reg);
}

void DisarmAll() {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  reg.sites.clear();
  PublishCount(reg);
}

uint64_t Hits(const std::string& site) {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

std::vector<std::string> ArmedSites() {
  Registry& reg = registry();
  MutexLock lock(reg.mu);
  std::vector<std::string> names;
  names.reserve(reg.sites.size());
  for (const auto& entry : reg.sites) names.push_back(entry.first);
  return names;
}

namespace internal {

bool EvaluateSlow(const char* site) {
  ActionKind fired = ActionKind::kOff;
  uint32_t delay_ms = 0;
  {
    Registry& reg = registry();
    MutexLock lock(reg.mu);
    auto it = reg.sites.find(site);
    if (it == reg.sites.end()) return false;
    SiteState& state = it->second;
    ++state.hits;
    if (state.hits < state.action.hit) return false;
    if (!LcgFires(state)) return false;
    fired = state.action.kind;
    delay_ms = state.action.delay_ms;
  }
  switch (fired) {
    case ActionKind::kError:
      return true;
    case ActionKind::kCrash:
      // No stdio flush, no atexit, no destructors: model a real crash. The
      // kernel keeps whatever already reached the page cache.
      std::_Exit(kCrashExitCode);
    case ActionKind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return false;
    case ActionKind::kOff:
      break;
  }
  return false;
}

}  // namespace internal

}  // namespace failpoint
}  // namespace mvstore
