// Monotonic-clock helpers for benchmarks and timeouts.
#pragma once

#include <chrono>
#include <cstdint>

namespace mvstore {

/// Nanoseconds on the steady (monotonic) clock.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t NowMicros() { return NowNanos() / 1000; }

/// Simple stopwatch.
class Timer {
 public:
  Timer() : start_(NowNanos()) {}
  void Reset() { start_ = NowNanos(); }
  uint64_t ElapsedNanos() const { return NowNanos() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  uint64_t start_;
};

}  // namespace mvstore
