// Central type aliases and enums shared across the engine.
#pragma once

#include <cstdint>

namespace mvstore {

/// Logical commit/begin timestamp. Drawn from one global monotonically
/// increasing counter (paper Section 2.4). 63 usable bits; bit 63 of version
/// words discriminates timestamps from transaction IDs.
using Timestamp = uint64_t;

/// Transaction identifier. 54 usable bits so it fits in the WriteLock field
/// of the MV/L lock word (paper Section 4.1.1).
using TxnId = uint64_t;

using TableId = uint32_t;
using IndexId = uint32_t;

/// Isolation levels supported by all three engines (paper Sections 3.4, 4.3).
enum class IsolationLevel : uint8_t {
  kReadCommitted = 0,
  kSnapshot,
  kRepeatableRead,
  kSerializable,
};

inline const char* IsolationLevelName(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kReadCommitted:
      return "ReadCommitted";
    case IsolationLevel::kSnapshot:
      return "Snapshot";
    case IsolationLevel::kRepeatableRead:
      return "RepeatableRead";
    case IsolationLevel::kSerializable:
      return "Serializable";
  }
  return "Unknown";
}

/// Concurrency-control scheme, matching the paper's labels:
/// 1V (single-version locking), MV/L (multiversion pessimistic),
/// MV/O (multiversion optimistic).
enum class Scheme : uint8_t {
  kSingleVersion = 0,  // "1V"
  kMultiVersionLocking,    // "MV/L"
  kMultiVersionOptimistic,  // "MV/O"
};

inline const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSingleVersion:
      return "1V";
    case Scheme::kMultiVersionLocking:
      return "MV/L";
    case Scheme::kMultiVersionOptimistic:
      return "MV/O";
  }
  return "Unknown";
}

}  // namespace mvstore
