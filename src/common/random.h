// Fast thread-local pseudo-random number generation for workloads and tests.
#pragma once

#include <cstdint>

namespace mvstore {

/// xoshiro256** by Blackman & Vigna. Not cryptographic; fast and high
/// quality, which is what workload generators need. Each worker thread owns
/// one instance seeded distinctly so runs are reproducible given a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t z = seed;
    for (auto& word : state_) {
      z += 0x9E3779B97F4A7C15ull;
      uint64_t s = z;
      s = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9ull;
      s = (s ^ (s >> 27)) * 0x94D049BB133111EBull;
      word = s ^ (s >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability pct/100.
  bool PercentChance(uint32_t pct) { return Uniform(100) < pct; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace mvstore
