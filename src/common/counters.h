// Engine-wide statistics counters.
//
// Hot paths bump counters on every commit, abort, version install and slab
// operation, so the cells they write must be core-private: each thread owns
// a cacheline-aligned cell (acquired through the thread-slot registry and
// recycled on thread exit) and bumps it with a plain load+store — no RMW,
// no sharing. Aggregation walks the cells at CounterSnapshot()/Get() time.
// This generalizes the slab allocator's magazine tally-flush trick to every
// counter in the engine.
//
// A thread whose cell cache has already been torn down (counter bumps from
// other thread-local destructors, e.g. slab magazine flushes) falls back to
// a shared overflow cell with fetch_add; cells released on thread exit fold
// their tallies into a retired cell so history survives recycling.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/port.h"
#include "common/spin_latch.h"
#include "util/tls_slots.h"

namespace mvstore {

/// Which event a counter tracks. Keep in sync with StatNames().
enum class Stat : uint32_t {
  kTxnCommitted = 0,
  kTxnAborted,
  kAbortWriteConflict,
  kAbortValidation,
  kAbortPhantom,
  kAbortCascading,
  kAbortDeadlock,
  kAbortLockFailed,
  kCommitDepsTaken,
  kCommitDepWaits,
  kSpeculativeReads,
  kSpeculativeIgnores,
  kWaitForDepsTaken,
  kPrecommitWaits,
  kVersionsCreated,
  kVersionsCollected,
  kDeadlocksDetected,
  kLockWaits,
  kSlabChunksAllocated,
  kSlabMagazineHits,
  kSlabMagazineMisses,
  kSlabSlotsRecycled,
  kTxnPoolHits,
  kTxnPoolMisses,
  kLogSegmentsRotated,
  kLogSegmentsDeleted,
  kLogWriteErrors,
  kLogGroupCommits,
  kLogGroupSizeSum,
  kCheckpointsTaken,
  kRecoveryTornTails,
  kRecoveryTornBytesDropped,
  kRecoveryRecordsReplayed,
  kRecoveryRecordsSkipped,
  kRecoveryIdempotentApplies,
  kReadOnlyTransitions,
  kWritesRefusedReadOnly,
  kSlowTxnLogged,
  kSlowTxnSuppressed,
  kNumStats,
};

inline const char* StatName(Stat stat) {
  static const char* kNames[] = {
      "txn_committed",      "txn_aborted",        "abort_write_conflict",
      "abort_validation",   "abort_phantom",      "abort_cascading",
      "abort_deadlock",     "abort_lock_failed",  "commit_deps_taken",
      "commit_dep_waits",   "speculative_reads",  "speculative_ignores",
      "waitfor_deps_taken", "precommit_waits",    "versions_created",
      "versions_collected", "deadlocks_detected", "lock_waits",
      "slab_chunks_allocated", "slab_magazine_hits", "slab_magazine_misses",
      "slab_slots_recycled", "txn_pool_hits",     "txn_pool_misses",
      "log_segments_rotated", "log_segments_deleted", "log_write_errors",
      "log_group_commits",  "log_group_size_sum",
      "checkpoints_taken",  "recovery_torn_tails",
      "recovery_torn_bytes_dropped", "recovery_records_replayed",
      "recovery_records_skipped", "recovery_idempotent_applies",
      "read_only_transitions", "writes_refused_read_only",
      "slow_txn_logged",    "slow_txn_suppressed",
  };
  return kNames[static_cast<uint32_t>(stat)];
}

/// Per-thread-cell counter set. Add() is a single-writer relaxed load+store
/// on the calling thread's own cacheline; Get() aggregates on demand.
class StatsCollector {
 public:
  /// Upper bound on concurrently registered threads; cells are recycled on
  /// thread exit, overflow shares the fetch_add cell.
  static constexpr uint32_t kMaxCells = 128;

  StatsCollector()
      : registry_id_(tls_slots::RegisterOwner(this, &ReleaseCellTrampoline)),
        cells_(kMaxCells) {}

  ~StatsCollector() {
    // Before any member dies: no thread-exit callback may touch a
    // half-destroyed collector.
    tls_slots::UnregisterOwner(registry_id_);
  }

  StatsCollector(const StatsCollector&) = delete;
  StatsCollector& operator=(const StatsCollector&) = delete;

  void Add(Stat stat, uint64_t delta = 1) {
    Cell* cell = MyCell();
    uint32_t i = static_cast<uint32_t>(stat);
    if (cell != nullptr) {
      // Single writer: the cell belongs to this thread until thread exit.
      cell->values[i].store(
          cell->values[i].load(std::memory_order_relaxed) + delta,
          std::memory_order_relaxed);
      return;
    }
    overflow_.values[i].fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Get(Stat stat) const {
    uint32_t i = static_cast<uint32_t>(stat);
    uint64_t total =
        retired_.values[i].load(std::memory_order_relaxed) +
        overflow_.values[i].load(std::memory_order_relaxed);
    uint32_t used = used_cells_.load(std::memory_order_acquire);
    if (used > kMaxCells) used = kMaxCells;
    for (uint32_t c = 0; c < used; ++c) {
      total += cells_[c].values[i].load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    uint32_t used = used_cells_.load(std::memory_order_acquire);
    if (used > kMaxCells) used = kMaxCells;
    for (uint32_t c = 0; c < used; ++c) {
      for (auto& value : cells_[c].values) {
        value.store(0, std::memory_order_relaxed);
      }
    }
    for (auto& value : retired_.values) value.store(0, std::memory_order_relaxed);
    for (auto& value : overflow_.values) value.store(0, std::memory_order_relaxed);
  }

  /// Multi-line human-readable dump of all non-zero counters.
  std::string ToString() const {
    std::string out;
    for (uint32_t i = 0; i < static_cast<uint32_t>(Stat::kNumStats); ++i) {
      uint64_t v = Get(static_cast<Stat>(i));
      if (v == 0) continue;
      out += StatName(static_cast<Stat>(i));
      out += "=";
      out += std::to_string(v);
      out += "\n";
    }
    return out;
  }

  /// High-water mark of cell indexes ever used (tests).
  uint32_t UsedCells() const {
    return used_cells_.load(std::memory_order_acquire);
  }

 private:
  struct StatsCellTag {};
  using CellCache = TlsSlotCache<StatsCellTag>;

  struct alignas(kCacheLineSize) Cell {
    std::array<std::atomic<uint64_t>, static_cast<uint32_t>(Stat::kNumStats)>
        values{};
  };

  Cell* MyCell() {
    uint32_t index = CellCache::Lookup(registry_id_);
    if (index != CellCache::kNone) return &cells_[index];
    return AcquireCell();
  }

  Cell* AcquireCell() {
    uint32_t index = CellCache::kNone;
    {
      SpinLatchGuard guard(freelist_latch_);
      if (!free_cells_.empty()) {
        index = free_cells_.back();
        free_cells_.pop_back();
      } else {
        uint32_t high_water = used_cells_.load(std::memory_order_relaxed);
        if (high_water < kMaxCells) {
          index = high_water;
          used_cells_.store(high_water + 1, std::memory_order_release);
        }
      }
    }
    if (index == CellCache::kNone) return nullptr;  // exhausted: overflow
    if (!CellCache::Store(registry_id_, index)) {
      // Thread tearing down: nothing left to release the cell later.
      ReleaseCell(index);
      return nullptr;
    }
    return &cells_[index];
  }

  static void ReleaseCellTrampoline(void* owner, uint32_t cell) {
    static_cast<StatsCollector*>(owner)->ReleaseCell(cell);
  }

  void ReleaseCell(uint32_t index) {
    // Fold the exiting thread's tallies into the retired cell, zero the
    // cell, and recycle it.
    Cell& cell = cells_[index];
    for (uint32_t i = 0; i < cell.values.size(); ++i) {
      uint64_t v = cell.values[i].load(std::memory_order_relaxed);
      if (v != 0) {
        retired_.values[i].fetch_add(v, std::memory_order_relaxed);
        cell.values[i].store(0, std::memory_order_relaxed);
      }
    }
    SpinLatchGuard guard(freelist_latch_);
    free_cells_.push_back(index);
  }

  const uint64_t registry_id_;
  std::atomic<uint32_t> used_cells_{0};
  SpinLatch freelist_latch_;
  std::vector<uint32_t> free_cells_ GUARDED_BY(freelist_latch_);
  std::vector<Cell> cells_;
  Cell retired_{};
  Cell overflow_{};
};

}  // namespace mvstore
