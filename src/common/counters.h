// Engine-wide statistics counters.
//
// Counters are striped across cache lines and aggregated on read, so hot
// paths pay one relaxed fetch_add on a (mostly) core-private line.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/port.h"

namespace mvstore {

/// Which event a counter tracks. Keep in sync with StatNames().
enum class Stat : uint32_t {
  kTxnCommitted = 0,
  kTxnAborted,
  kAbortWriteConflict,
  kAbortValidation,
  kAbortPhantom,
  kAbortCascading,
  kAbortDeadlock,
  kAbortLockFailed,
  kCommitDepsTaken,
  kCommitDepWaits,
  kSpeculativeReads,
  kSpeculativeIgnores,
  kWaitForDepsTaken,
  kPrecommitWaits,
  kVersionsCreated,
  kVersionsCollected,
  kDeadlocksDetected,
  kLockWaits,
  kSlabChunksAllocated,
  kSlabMagazineHits,
  kSlabMagazineMisses,
  kSlabSlotsRecycled,
  kTxnPoolHits,
  kTxnPoolMisses,
  kLogSegmentsRotated,
  kLogSegmentsDeleted,
  kLogWriteErrors,
  kLogGroupCommits,
  kLogGroupSizeSum,
  kCheckpointsTaken,
  kRecoveryTornTails,
  kRecoveryTornBytesDropped,
  kRecoveryRecordsReplayed,
  kRecoveryRecordsSkipped,
  kRecoveryIdempotentApplies,
  kNumStats,
};

inline const char* StatName(Stat stat) {
  static const char* kNames[] = {
      "txn_committed",      "txn_aborted",        "abort_write_conflict",
      "abort_validation",   "abort_phantom",      "abort_cascading",
      "abort_deadlock",     "abort_lock_failed",  "commit_deps_taken",
      "commit_dep_waits",   "speculative_reads",  "speculative_ignores",
      "waitfor_deps_taken", "precommit_waits",    "versions_created",
      "versions_collected", "deadlocks_detected", "lock_waits",
      "slab_chunks_allocated", "slab_magazine_hits", "slab_magazine_misses",
      "slab_slots_recycled", "txn_pool_hits",     "txn_pool_misses",
      "log_segments_rotated", "log_segments_deleted", "log_write_errors",
      "log_group_commits",  "log_group_size_sum",
      "checkpoints_taken",  "recovery_torn_tails",
      "recovery_torn_bytes_dropped", "recovery_records_replayed",
      "recovery_records_skipped", "recovery_idempotent_applies",
  };
  return kNames[static_cast<uint32_t>(stat)];
}

/// Striped counter set. `kStripes` should be >= typical thread counts; a
/// thread hashes to a stripe by its id.
class StatsCollector {
 public:
  static constexpr uint32_t kStripes = 64;

  void Add(Stat stat, uint64_t delta = 1) {
    stripes_[StripeIndex()].values[static_cast<uint32_t>(stat)].fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Get(Stat stat) const {
    uint64_t total = 0;
    for (const auto& stripe : stripes_) {
      total +=
          stripe.values[static_cast<uint32_t>(stat)].load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& stripe : stripes_) {
      for (auto& value : stripe.values) value.store(0, std::memory_order_relaxed);
    }
  }

  /// Multi-line human-readable dump of all non-zero counters.
  std::string ToString() const {
    std::string out;
    for (uint32_t i = 0; i < static_cast<uint32_t>(Stat::kNumStats); ++i) {
      uint64_t v = Get(static_cast<Stat>(i));
      if (v == 0) continue;
      out += StatName(static_cast<Stat>(i));
      out += "=";
      out += std::to_string(v);
      out += "\n";
    }
    return out;
  }

 private:
  static uint32_t StripeIndex() {
    static std::atomic<uint32_t> next_id{0};
    thread_local uint32_t id = next_id.fetch_add(1, std::memory_order_relaxed);
    return id % kStripes;
  }

  struct alignas(kCacheLineSize) Stripe {
    std::array<std::atomic<uint64_t>, static_cast<uint32_t>(Stat::kNumStats)>
        values{};
  };

  std::array<Stripe, kStripes> stripes_{};
};

}  // namespace mvstore
