// Status: lightweight result type for every fallible public operation.
//
// Modeled on the RocksDB/Arrow convention: operations return a Status (or a
// value plus a Status) instead of throwing. Transaction aborts are *expected*
// outcomes in a concurrency-control engine, so they are Status codes, not
// exceptions. The abort subcode records which mechanism killed the
// transaction; benchmarks and tests aggregate on it.
#pragma once

#include <cstdint>
#include <string>

namespace mvstore {

/// Reason a transaction was aborted. `kNone` means the status is not an
/// abort at all.
enum class AbortReason : uint8_t {
  kNone = 0,
  /// First-writer-wins: tried to update a version already write-locked by a
  /// concurrent transaction (write-write conflict, Section 2.6).
  kWriteWriteConflict,
  /// Optimistic read validation failed: a version read is no longer visible
  /// as of the end of the transaction (Section 3.2).
  kReadValidation,
  /// Optimistic phantom validation failed: a scan returned a new visible
  /// version (Section 3.2).
  kPhantom,
  /// A transaction this one speculatively depended on aborted (Section 2.7).
  kCascading,
  /// Pessimistic: could not acquire a read lock (count saturated or
  /// NoMoreReadLocks set, Section 4.1.1).
  kReadLockFailed,
  /// Pessimistic: could not install a wait-for dependency because the target
  /// set NoMoreWaitFors (Section 4.2).
  kWaitForRefused,
  /// Chosen as a deadlock victim (Section 4.4), or 1V lock wait timed out.
  kDeadlock,
  /// 1V: lock acquisition timed out (treated as a probable deadlock).
  kLockTimeout,
  /// Explicit user abort.
  kUserRequested,
};

/// Human-readable name for an abort reason.
const char* AbortReasonName(AbortReason reason);

/// Result of an operation. Cheap to copy in the common OK case.
class Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kAborted,        // transaction must abort; see AbortReason
    kNotFound,       // key/record not found
    kInvalidArgument,
    kAlreadyExists,  // unique-key violation on insert
    kInternal,
    kUnavailable,    // backpressure/shutdown: retry later, work not started
    kReadOnly,       // durability degraded: writes refused, reads still serve
    kTimeout,        // client-side deadline expired; outcome unknown
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status Aborted(AbortReason reason) {
    return Status(Code::kAborted, reason);
  }
  static Status NotFound() { return Status(Code::kNotFound, AbortReason::kNone); }
  static Status InvalidArgument() {
    return Status(Code::kInvalidArgument, AbortReason::kNone);
  }
  static Status AlreadyExists() {
    return Status(Code::kAlreadyExists, AbortReason::kNone);
  }
  static Status Internal() { return Status(Code::kInternal, AbortReason::kNone); }
  /// The service (not the data) refused the request: session limit reached,
  /// pipeline queue full, or the server is draining for shutdown. The
  /// request was never started, so retrying against a healthy server is
  /// always safe.
  static Status Unavailable() {
    return Status(Code::kUnavailable, AbortReason::kNone);
  }
  /// The database is in read-only degraded mode (a log write or fsync
  /// failed): the write was refused, reads and stats still serve. Commit
  /// returning this means the outcome was NOT made durable — treat the
  /// transaction as failed. See docs/RELIABILITY.md.
  static Status ReadOnly() {
    return Status(Code::kReadOnly, AbortReason::kNone);
  }
  /// A client-side deadline expired before the response arrived. The
  /// server may still execute the request: the outcome is unknown, so only
  /// idempotent requests are safe to retry (MVClient enforces this).
  static Status Timeout() { return Status(Code::kTimeout, AbortReason::kNone); }

  bool ok() const { return code_ == Code::kOk; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsReadOnly() const { return code_ == Code::kReadOnly; }
  bool IsTimeout() const { return code_ == Code::kTimeout; }

  Code code() const { return code_; }
  AbortReason abort_reason() const { return reason_; }

  /// "OK", "Aborted(WriteWriteConflict)", ...
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && reason_ == other.reason_;
  }

 private:
  Status(Code code, AbortReason reason) : code_(code), reason_(reason) {}

  Code code_ = Code::kOk;
  AbortReason reason_ = AbortReason::kNone;
};

}  // namespace mvstore
