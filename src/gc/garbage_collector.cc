#include "gc/garbage_collector.h"

#include <chrono>

namespace mvstore {

void GarbageCollector::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_acquire)) {
      RunOnce();
      std::this_thread::sleep_for(std::chrono::microseconds(interval_us_));
    }
  });
}

void GarbageCollector::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void GarbageCollector::Enqueue(Table* table, Version* version,
                               Timestamp retire_after) {
  uint32_t shard =
      enqueue_cursor_.fetch_add(1, std::memory_order_relaxed) % kShards;
  {
    SpinLatchGuard guard(shards_[shard].latch);
    shards_[shard].queue.push_back(Item{table, version, retire_after});
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
}

void GarbageCollector::EnqueueImmediate(Table* table, Version* version) {
  Enqueue(table, version, 0);
}

uint32_t GarbageCollector::Drain(Shard& shard, Timestamp watermark,
                                 uint32_t budget) {
  drains_in_flight_.fetch_add(1, std::memory_order_acquire);
  // Collect reclaimable items under the latch; unlink/retire outside it.
  std::vector<Item> ready;
  {
    SpinLatchGuard guard(shard.latch);
    uint32_t scanned = 0;
    // Items are roughly timestamp-ordered (enqueued at commit time), so a
    // front-drain finds ready items first; stop at the first blocked item
    // to keep the pass O(budget).
    while (!shard.queue.empty() && ready.size() < budget &&
           scanned < budget * 4) {
      const Item& item = shard.queue.front();
      if (item.retire_after >= watermark) break;
      ready.push_back(item);
      shard.queue.pop_front();
      ++scanned;
    }
  }
  for (const Item& item : ready) {
    item.table->UnlinkFromAllIndexes(item.version);
    // The deleter routes the slot back to the owning table's slab (or the
    // heap in fallback mode) once no lock-free scan can still reach it.
    epoch_.Retire(item.version, &Table::VersionDeleter, item.table);
    stats_.Add(Stat::kVersionsCollected);
  }
  pending_.fetch_sub(ready.size(), std::memory_order_relaxed);
  drains_in_flight_.fetch_sub(1, std::memory_order_release);
  return static_cast<uint32_t>(ready.size());
}

uint32_t GarbageCollector::Cooperate(uint32_t budget) {
  if (budget == 0) return 0;
  if (pending_.load(std::memory_order_relaxed) == 0) return 0;
  Timestamp now = now_fn_ != nullptr ? now_fn_(now_arg_) : kInfinity;
  Timestamp watermark = CachedWatermark(now);
  uint32_t shard =
      drain_cursor_.fetch_add(1, std::memory_order_relaxed) % kShards;
  return Drain(shards_[shard], watermark, budget);
}

uint64_t GarbageCollector::RunOnce() {
  MutexLock lock(run_once_mutex_);
  const uint64_t t_start =
      (hists_ != nullptr && hists_->enabled()) ? obs::NowTicks() : 0;
  Timestamp now = now_fn_ != nullptr ? now_fn_(now_arg_) : kInfinity;
  Timestamp watermark = Watermark(now);
  uint64_t total = 0;
  for (auto& shard : shards_) {
    uint32_t n;
    do {
      n = Drain(shard, watermark, 256);
      total += n;
    } while (n > 0);
  }
  // Our own drains are done; wait out any worker still between its
  // Cooperate pop and the unlink, so our return implies "unlinked".
  while (drains_in_flight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  if (t_start != 0) hists_->RecordSince(obs::Hist::kGcPass, t_start);
  return total;
}

}  // namespace mvstore
