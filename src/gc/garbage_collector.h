// Cooperative garbage collection of obsolete versions (paper Section 2.3).
//
// A version can be discarded once it is visible to no transaction:
//  * versions created by aborted transactions (Begin = infinity) -- garbage
//    immediately;
//  * old versions superseded by a committed update/delete at end timestamp E
//    -- garbage once every live transaction's begin timestamp exceeds E
//    (the watermark; every read time is >= the reader's begin timestamp).
//
// Reclamation = unlink from every index, then epoch-retire the memory (a
// concurrent scan may still hold the pointer).
//
// "Collection is handled cooperatively by all threads": worker threads drain
// a small budget at transaction boundaries; a background thread sweeps up
// the rest.
#pragma once

#include <atomic>
#include <deque>
#include <thread>

#include "common/counters.h"
#include "common/mutex.h"
#include "common/spin_latch.h"
#include "common/timing.h"
#include "common/types.h"
#include "obs/histogram.h"
#include "storage/table.h"
#include "txn/txn_table.h"
#include "util/epoch.h"

namespace mvstore {

class GarbageCollector {
 public:
  GarbageCollector(TxnTable& txn_table, EpochManager& epoch,
                   StatsCollector& stats, uint32_t interval_us)
      : txn_table_(txn_table),
        epoch_(epoch),
        stats_(stats),
        interval_us_(interval_us) {}

  ~GarbageCollector() { Stop(); }

  void Start();
  void Stop();

  /// Defer `version` until the watermark passes `retire_after` (the end
  /// timestamp that superseded it).
  void Enqueue(Table* table, Version* version, Timestamp retire_after);

  /// `version` is garbage now (aborted creator). Still goes through
  /// unlink + epoch retirement.
  void EnqueueImmediate(Table* table, Version* version);

  /// Worker-thread cooperation: reclaim up to `budget` ready versions.
  /// Returns the number reclaimed.
  uint32_t Cooperate(uint32_t budget);

  /// Reclaim everything currently ready. For the background thread, tests
  /// and shutdown. When RunOnce returns, every item that any concurrent
  /// drain (another RunOnce or a worker's Cooperate) had already popped has
  /// been unlinked too: Drain unlinks outside the shard latch, so without
  /// the mutex + in-flight wait a caller could observe popped-but-
  /// still-linked versions.
  uint64_t RunOnce();

  /// Versions queued but not yet reclaimed (approximate).
  uint64_t PendingCount() const {
    return pending_.load(std::memory_order_relaxed);
  }

  /// Current GC watermark: versions that died before this timestamp are
  /// unreachable by every present and future reader.
  Timestamp Watermark(Timestamp now) { return txn_table_.MinActiveBeginTs(now); }

  /// Watermark refreshed at most every ~200us, and monotone. Computing the
  /// exact value scans the whole transaction table; per-commit cooperative
  /// GC must not pay that. The table owns the cache so every consumer sees
  /// one consistent, never-regressing value.
  Timestamp CachedWatermark(Timestamp now) {
    return txn_table_.CachedMinActiveBeginTs(now);
  }

  /// Set the clock used for the watermark fallback (no active txns).
  void SetNowSource(Timestamp (*now_fn)(void*), void* arg) {
    now_fn_ = now_fn;
    now_arg_ = arg;
  }

  /// Record full-pass durations into `hists` (gc_pass; may be null). Set
  /// before Start(), unsynchronized otherwise.
  void SetHistograms(obs::LatencyHistograms* hists) { hists_ = hists; }

 private:
  struct Item {
    Table* table;
    Version* version;
    Timestamp retire_after;  // 0 = immediate
  };

  static constexpr uint32_t kShards = 16;

  struct alignas(kCacheLineSize) Shard {
    SpinLatch latch;
    std::deque<Item> queue GUARDED_BY(latch);
  };

  uint32_t Drain(Shard& shard, Timestamp watermark, uint32_t budget);

  TxnTable& txn_table_;
  EpochManager& epoch_;
  StatsCollector& stats_;
  const uint32_t interval_us_;

  Mutex run_once_mutex_;  // serializes full RunOnce passes
  std::atomic<uint32_t> drains_in_flight_{0};
  std::array<Shard, kShards> shards_;
  std::atomic<uint32_t> enqueue_cursor_{0};
  std::atomic<uint32_t> drain_cursor_{0};
  std::atomic<uint64_t> pending_{0};

  Timestamp (*now_fn_)(void*) = nullptr;
  void* now_arg_ = nullptr;
  obs::LatencyHistograms* hists_ = nullptr;

  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace mvstore
