#include "obs/histogram.h"

#include "common/timing.h"

namespace mvstore {
namespace obs {

double NanosPerTick() {
  // Magic-static: the first caller (always a cold path — snapshot,
  // exposition, slow-txn threshold conversion) pays a ~2ms spin measuring
  // the tick clock against steady_clock; everyone else reads the cached
  // ratio.
  static const double ratio = [] {
    uint64_t ticks0 = NowTicks();
    uint64_t nanos0 = NowNanos();
    while (NowNanos() - nanos0 < 2'000'000) {
    }
    uint64_t nanos1 = NowNanos();
    uint64_t ticks1 = NowTicks();
    if (ticks1 <= ticks0) return 1.0;  // broken tick source: assume ns
    return static_cast<double>(nanos1 - nanos0) /
           static_cast<double>(ticks1 - ticks0);
  }();
  return ratio;
}

LatencyHistograms::Cell* LatencyHistograms::AcquireCell() {
  uint32_t index = CellCache::kNone;
  {
    SpinLatchGuard guard(freelist_latch_);
    if (!free_cells_.empty()) {
      index = free_cells_.back();
      free_cells_.pop_back();
    } else {
      uint32_t high_water = used_cells_.load(std::memory_order_relaxed);
      if (high_water < kMaxCells) {
        index = high_water;
        used_cells_.store(high_water + 1, std::memory_order_release);
      }
    }
  }
  if (index == CellCache::kNone) return nullptr;  // exhausted: overflow
  // Allocation happens outside the latch: this thread owns `index`
  // exclusively until it is released, so the slot cannot race.
  Cell* cell = cells_[index].load(std::memory_order_acquire);
  if (cell == nullptr) {
    cell = new Cell();
    cells_[index].store(cell, std::memory_order_release);
  }
  if (!CellCache::Store(registry_id_, index)) {
    // Thread tearing down: nothing left to release the cell later.
    ReleaseCell(index);
    return nullptr;
  }
  return cell;
}

void LatencyHistograms::ReleaseCell(uint32_t index) {
  // Fold the exiting thread's tallies into the retired cell, zero the
  // cell, and recycle it. retired_ takes fetch_add: several threads may be
  // exiting at once.
  Cell* cell = cells_[index].load(std::memory_order_acquire);
  if (cell != nullptr) {
    for (uint32_t h = 0; h < cell->slots.size(); ++h) {
      Slot& from = cell->slots[h];
      Slot& into = retired_.slots[h];
      for (uint32_t i = 0; i < kNumBuckets; ++i) {
        uint64_t n = from.buckets[i].load(std::memory_order_relaxed);
        if (n != 0) {
          into.buckets[i].fetch_add(n, std::memory_order_relaxed);
          from.buckets[i].store(0, std::memory_order_relaxed);
        }
      }
      uint64_t sum = from.sum.load(std::memory_order_relaxed);
      if (sum != 0) {
        into.sum.fetch_add(sum, std::memory_order_relaxed);
        from.sum.store(0, std::memory_order_relaxed);
      }
      uint64_t max = from.max.load(std::memory_order_relaxed);
      from.max.store(0, std::memory_order_relaxed);
      uint64_t seen = into.max.load(std::memory_order_relaxed);
      while (max > seen && !into.max.compare_exchange_weak(
                               seen, max, std::memory_order_relaxed)) {
      }
    }
  }
  SpinLatchGuard guard(freelist_latch_);
  free_cells_.push_back(index);
}

}  // namespace obs
}  // namespace mvstore
