// Prometheus text-format rendering for the exposition endpoint.
//
// ServerCore::MetricsText() composes these helpers into one scrape body
// (served over the kMetrics wire opcode; `mvclient metrics` fetches it).
// Conventions, documented in docs/OBSERVABILITY.md:
//   * counters:   mvstore_<stat>_total
//   * histograms: mvstore_<hist>_seconds (_bucket/_sum/_count), plus
//                 mvstore_<hist>_quantile_seconds{quantile="..."} gauges
//                 and an mvstore_<hist>_max_seconds gauge
//   * gauges:     mvstore_<name>
// Ticks convert to seconds here, on the cold path, via NanosPerTick().
#pragma once

#include <cstdint>
#include <string>

#include "obs/histogram.h"

namespace mvstore {
namespace obs {

void AppendPromCounter(std::string* out, const std::string& name,
                       uint64_t value);

void AppendPromGauge(std::string* out, const std::string& name, double value);

/// Render one latency histogram family under `mvstore_<name>_seconds`.
/// Bucket values are recorded ticks; bounds convert to seconds. Empty
/// buckets are elided (cumulative counts stay valid), +Inf always emitted.
/// Follows with the quantile gauges (p50/p90/p99/p999) and the max gauge.
void AppendPromHistogram(std::string* out, const std::string& name,
                         const HistogramData& data);

}  // namespace obs
}  // namespace mvstore
