#include "obs/slow_txn.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>

#include "common/timing.h"
#include "obs/histogram.h"

namespace mvstore {
namespace obs {

namespace {

/// Minimum gap between emitted lines (~10 lines/s process-wide).
constexpr uint64_t kMinGapNanos = 100'000'000;

std::atomic<uint64_t> g_last_log_nanos{0};

}  // namespace

uint64_t SlowTxnThresholdTicks(uint64_t slow_txn_us) {
  if (slow_txn_us == 0) return 0;
  uint64_t ticks = MicrosToTicks(slow_txn_us);
  return ticks == 0 ? 1 : ticks;
}

bool LogSlowTxn(const CommitTrace& trace, StatsCollector* stats) {
  uint64_t now = NowNanos();
  uint64_t last = g_last_log_nanos.load(std::memory_order_relaxed);
  if (now - last < kMinGapNanos ||
      !g_last_log_nanos.compare_exchange_strong(last, now,
                                                std::memory_order_relaxed)) {
    if (stats != nullptr) stats->Add(Stat::kSlowTxnSuppressed);
    return false;
  }
  std::fprintf(stderr,
               "mvstore slow_txn scheme=%s txn=%" PRIu64 " total_us=%" PRIu64
               " validate_us=%" PRIu64 " log_append_us=%" PRIu64
               " group_wait_us=%" PRIu64 " writes=%" PRIu64 "\n",
               trace.scheme, trace.txn_id,
               static_cast<uint64_t>(TicksToMicros(trace.total_ticks)),
               static_cast<uint64_t>(TicksToMicros(trace.validate_ticks)),
               static_cast<uint64_t>(TicksToMicros(trace.log_append_ticks)),
               static_cast<uint64_t>(TicksToMicros(trace.group_wait_ticks)),
               trace.writes);
  if (stats != nullptr) stats->Add(Stat::kSlowTxnLogged);
  return true;
}

}  // namespace obs
}  // namespace mvstore
