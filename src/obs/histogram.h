// Striped latency histograms for the engine's hot paths.
//
// The same discipline as common/counters.h, applied to distributions: each
// thread owns a cacheline-aligned cell (acquired through the thread-slot
// registry, recycled on thread exit), and Record() is a handful of plain
// load+store pairs on that private cell — no RMW, no sharing, ~1ns. A
// registry-level enable flag short-circuits Record() to a single relaxed
// load when observability is off. Aggregation merges the cells into a
// HistogramData snapshot on demand (exposition, bench probes, tests).
//
// Values are recorded in *ticks* of a cheap monotonic clock (rdtsc on
// x86-64, cntvct_el0 on arm64, steady_clock elsewhere): a steady_clock read
// costs tens of ns, which would dwarf an empty-commit hot path; a tick read
// is a few ns. Ticks are converted to wall time only on the cold snapshot
// path, using a lazily calibrated ticks-per-nanosecond ratio.
//
// Bucket scheme ("log2 octaves, 4 linear sub-buckets"): values 0..3 land in
// exact buckets; a value with highest set bit k >= 2 lands in one of four
// sub-buckets of octave k, each 2^(k-2) wide. Quantile estimates report the
// bucket's inclusive upper bound, so they never under-report and over-report
// by at most 25% of the true value (one sub-bucket width over the octave
// base). docs/OBSERVABILITY.md documents this bound; the accuracy test
// asserts it.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "common/port.h"
#include "common/spin_latch.h"
#include "util/tls_slots.h"

namespace mvstore {
namespace obs {

/// Cheap monotonic clock, in arbitrary ticks. Frequency is constant for the
/// life of the process on every supported platform (invariant TSC assumed,
/// as every modern x86 server provides; cntvct_el0 is architecturally
/// fixed-frequency).
inline uint64_t NowTicks() {
#if defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  uint64_t ticks;
  asm volatile("mrs %0, cntvct_el0" : "=r"(ticks));
  return ticks;
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Calibrated conversion ratio (first call spins ~2ms against
/// steady_clock; never call on a hot path — snapshot/exposition only).
double NanosPerTick();

/// Commit-pipeline sampling: the per-phase commit trace (4 clock reads + 4
/// histogram records, ~150ns) would be a double-digit tax on an empty
/// Begin/Commit loop if paid every time, and the overhead budget is < 3%
/// (docs/OBSERVABILITY.md, enforced by histogram_overhead_test). So each
/// thread traces every 32nd transaction it begins — a deterministic
/// round-robin, not a coin flip, so single-threaded tests see a fixed
/// sample count. The decision is made at Begin() and rides the
/// transaction's start_ticks, giving a sampled transaction a coherent
/// whole-pipeline trace. Quantiles from 1-in-32 samples converge on the
/// true distribution at bench/production rates; DatabaseOptions::slow_txn_us
/// != 0 opts into tracing EVERY commit (slow-txn detection must not
/// sample), at the documented full-tracing cost.
constexpr uint64_t kCommitSampleMask = 31;

inline bool SampleThisTxn() {
  thread_local uint64_t counter = 0;
  return ((++counter) & kCommitSampleMask) == 0;
}

inline double TicksToNanos(uint64_t ticks) {
  return static_cast<double>(ticks) * NanosPerTick();
}
inline double TicksToMicros(uint64_t ticks) { return TicksToNanos(ticks) / 1e3; }
inline double TicksToSeconds(uint64_t ticks) { return TicksToNanos(ticks) / 1e9; }
inline uint64_t MicrosToTicks(uint64_t us) {
  return static_cast<uint64_t>(static_cast<double>(us) * 1e3 / NanosPerTick());
}

/// 4 sub-buckets per power-of-two octave; values 0..3 are exact. Highest
/// octave (k = 63) keeps the total at 252.
constexpr uint32_t kNumBuckets = 252;

inline uint32_t BucketIndex(uint64_t value) {
  if (value < 4) return static_cast<uint32_t>(value);
  uint32_t k = 63 - static_cast<uint32_t>(__builtin_clzll(value));
  return (k - 1) * 4 + static_cast<uint32_t>((value >> (k - 2)) & 3);
}

/// Inclusive upper bound of bucket `index` (the quantile estimate).
inline uint64_t BucketUpperBound(uint32_t index) {
  if (index < 4) return index;
  uint32_t k = index / 4 + 1;
  uint64_t sub = index % 4;
  return ((4 + sub + 1) << (k - 2)) - 1;
}

/// A plain, single-threaded histogram: the merge target for snapshots, the
/// serial oracle in tests, and the per-point diff carrier in benches.
struct HistogramData {
  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  void Record(uint64_t value) {
    buckets[BucketIndex(value)]++;
    count++;
    sum += value;
    if (value > max) max = value;
  }

  void Merge(const HistogramData& other) {
    for (uint32_t i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
    count += other.count;
    sum += other.sum;
    if (other.max > max) max = other.max;
  }

  /// Bucket-wise `this - base` (clamped), for interval deltas between two
  /// snapshots of a monotone histogram. `max` keeps this snapshot's value:
  /// the interval max is unknowable from bucket counts, and keeping the
  /// running max preserves the never-under-report property.
  void Subtract(const HistogramData& base) {
    for (uint32_t i = 0; i < kNumBuckets; ++i) {
      buckets[i] -= std::min(buckets[i], base.buckets[i]);
    }
    count -= std::min(count, base.count);
    sum -= std::min(sum, base.sum);
  }

  /// Smallest bucket upper bound covering at least q of the recorded
  /// values (q in [0,1]). 0 when empty. Never underestimates the true
  /// quantile; overestimates by <= 25% (see bucket scheme above).
  uint64_t ValueAtQuantile(double q) const {
    if (count == 0) return 0;
    double target = q * static_cast<double>(count);
    uint64_t seen = 0;
    for (uint32_t i = 0; i < kNumBuckets; ++i) {
      seen += buckets[i];
      if (static_cast<double>(seen) >= target && seen > 0) {
        return BucketUpperBound(i);
      }
    }
    return max;
  }

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Which latency distribution a histogram tracks. Keep in sync with
/// HistName() and the catalog in docs/OBSERVABILITY.md.
enum class Hist : uint32_t {
  kCommitTotal = 0,   // Commit() entry to terminated
  kCommitValidate,    // precommit: finish processing, validation, dep wait
  kCommitLogAppend,   // building + appending the redo record
  kCommitGroupWait,   // waiting for the group-commit flush (kSync)
  kReplAckWait,       // leader flusher waiting for follower acks (sync repl)
  kTxnLifetime,       // Begin() to commit
  kReadLatency,       // Database::Read
  kScanLatency,       // Database::Scan / ScanRange / ScanTable
  kGcPass,            // GarbageCollector::RunOnce
  kCheckpoint,        // Checkpointer::Take
  kRecoveryReplay,    // ReplayRecords
  kNumHists,
};

inline const char* HistName(Hist hist) {
  static const char* kNames[] = {
      "commit_total",      "commit_validate", "commit_log_append",
      "commit_group_wait", "repl_ack_wait",   "txn_lifetime",
      "read_latency",      "scan_latency",    "gc_pass",
      "checkpoint",        "recovery_replay",
  };
  return kNames[static_cast<uint32_t>(hist)];
}

/// Per-thread-cell histogram set. Record() touches only the calling
/// thread's cell; Snapshot() merges cells on demand. Cells are ~22KB each
/// and allocated lazily, so idle registries (one per engine) cost only the
/// slot table.
class LatencyHistograms {
 public:
  /// Upper bound on concurrently recording threads; cells recycle on
  /// thread exit, overflow shares a fetch_add cell.
  static constexpr uint32_t kMaxCells = 64;

  explicit LatencyHistograms(bool enabled = true)
      : registry_id_(tls_slots::RegisterOwner(this, &ReleaseCellTrampoline)),
        enabled_(enabled),
        cells_(kMaxCells) {}

  ~LatencyHistograms() {
    // Before any member dies: no thread-exit callback may touch a
    // half-destroyed registry.
    tls_slots::UnregisterOwner(registry_id_);
    for (auto& slot : cells_) delete slot.load(std::memory_order_relaxed);
  }

  LatencyHistograms(const LatencyHistograms&) = delete;
  LatencyHistograms& operator=(const LatencyHistograms&) = delete;

  /// When disabled, Record() is one relaxed load and a branch — a true
  /// no-op: no cell is acquired, no bucket is touched.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  void Record(Hist hist, uint64_t value) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    uint32_t h = static_cast<uint32_t>(hist);
    Cell* cell = MyCell();
    if (cell != nullptr) {
      // Single writer: the cell belongs to this thread until thread exit.
      Slot& slot = cell->slots[h];
      auto& bucket = slot.buckets[BucketIndex(value)];
      bucket.store(bucket.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
      slot.sum.store(slot.sum.load(std::memory_order_relaxed) + value,
                     std::memory_order_relaxed);
      if (value > slot.max.load(std::memory_order_relaxed)) {
        slot.max.store(value, std::memory_order_relaxed);
      }
      return;
    }
    SharedRecord(overflow_.slots[h], value);
  }

  /// Convenience: elapsed ticks since `start_ticks`.
  void RecordSince(Hist hist, uint64_t start_ticks) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    Record(hist, NowTicks() - start_ticks);
  }

  /// Merge every cell (live, retired, overflow) for one histogram. Cold
  /// path; concurrent Record()s may or may not be included (torn per-value
  /// reads are impossible — each bucket is a single atomic).
  HistogramData Snapshot(Hist hist) const {
    HistogramData out;
    uint32_t h = static_cast<uint32_t>(hist);
    MergeSlot(retired_.slots[h], &out);
    MergeSlot(overflow_.slots[h], &out);
    uint32_t used = used_cells_.load(std::memory_order_acquire);
    if (used > kMaxCells) used = kMaxCells;
    for (uint32_t c = 0; c < used; ++c) {
      const Cell* cell = cells_[c].load(std::memory_order_acquire);
      if (cell != nullptr) MergeSlot(cell->slots[h], &out);
    }
    return out;
  }

  void Reset() {
    uint32_t used = used_cells_.load(std::memory_order_acquire);
    if (used > kMaxCells) used = kMaxCells;
    for (uint32_t c = 0; c < used; ++c) {
      Cell* cell = cells_[c].load(std::memory_order_acquire);
      if (cell != nullptr) ZeroCell(cell);
    }
    ZeroCell(&retired_);
    ZeroCell(&overflow_);
  }

  /// High-water mark of cell indexes ever used (tests).
  uint32_t UsedCells() const {
    return used_cells_.load(std::memory_order_acquire);
  }

 private:
  struct HistCellTag {};
  using CellCache = TlsSlotCache<HistCellTag>;

  struct Slot {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };

  struct alignas(kCacheLineSize) Cell {
    std::array<Slot, static_cast<uint32_t>(Hist::kNumHists)> slots{};
  };

  /// fetch_add path for threads without a private cell (registry
  /// exhausted, or bumps from thread-local destructors after teardown) and
  /// for folding exiting threads into retired_.
  static void SharedRecord(Slot& slot, uint64_t value) {
    slot.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    slot.sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = slot.max.load(std::memory_order_relaxed);
    while (value > seen &&
           !slot.max.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed)) {
    }
  }

  static void MergeSlot(const Slot& slot, HistogramData* out) {
    for (uint32_t i = 0; i < kNumBuckets; ++i) {
      uint64_t n = slot.buckets[i].load(std::memory_order_relaxed);
      out->buckets[i] += n;
      out->count += n;
    }
    out->sum += slot.sum.load(std::memory_order_relaxed);
    uint64_t m = slot.max.load(std::memory_order_relaxed);
    if (m > out->max) out->max = m;
  }

  static void ZeroCell(Cell* cell) {
    for (auto& slot : cell->slots) {
      for (auto& bucket : slot.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      slot.sum.store(0, std::memory_order_relaxed);
      slot.max.store(0, std::memory_order_relaxed);
    }
  }

  Cell* MyCell() {
    uint32_t index = CellCache::Lookup(registry_id_);
    if (index != CellCache::kNone) {
      return cells_[index].load(std::memory_order_acquire);
    }
    return AcquireCell();
  }

  Cell* AcquireCell();

  static void ReleaseCellTrampoline(void* owner, uint32_t cell) {
    static_cast<LatencyHistograms*>(owner)->ReleaseCell(cell);
  }

  void ReleaseCell(uint32_t index);

  const uint64_t registry_id_;
  std::atomic<bool> enabled_;
  std::atomic<uint32_t> used_cells_{0};
  SpinLatch freelist_latch_;
  std::vector<uint32_t> free_cells_ GUARDED_BY(freelist_latch_);
  /// Slot i is written once (nullptr -> heap cell) by the thread that first
  /// claims index i; the pointer then lives until the registry dies.
  std::vector<std::atomic<Cell*>> cells_;
  Cell retired_{};
  Cell overflow_{};
};

}  // namespace obs
}  // namespace mvstore
