#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace mvstore {
namespace obs {

namespace {

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  *out += buf;
}

}  // namespace

void AppendPromCounter(std::string* out, const std::string& name,
                       uint64_t value) {
  char buf[32];
  *out += "# TYPE " + name + " counter\n";
  *out += name;
  std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
  *out += buf;
}

void AppendPromGauge(std::string* out, const std::string& name, double value) {
  *out += "# TYPE " + name + " gauge\n";
  *out += name;
  *out += " ";
  AppendDouble(out, value);
  *out += "\n";
}

void AppendPromHistogram(std::string* out, const std::string& name,
                         const HistogramData& data) {
  const double nanos_per_tick = NanosPerTick();
  const std::string family = "mvstore_" + name + "_seconds";
  *out += "# TYPE " + family + " histogram\n";
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    if (data.buckets[i] == 0) continue;
    cumulative += data.buckets[i];
    double le = static_cast<double>(BucketUpperBound(i)) * nanos_per_tick / 1e9;
    *out += family + "_bucket{le=\"";
    AppendDouble(out, le);
    *out += "\"} " + std::to_string(cumulative) + "\n";
  }
  *out += family + "_bucket{le=\"+Inf\"} " + std::to_string(data.count) + "\n";
  *out += family + "_sum ";
  AppendDouble(out, static_cast<double>(data.sum) * nanos_per_tick / 1e9);
  *out += "\n";
  *out += family + "_count " + std::to_string(data.count) + "\n";

  const std::string quantiles = "mvstore_" + name + "_quantile_seconds";
  static const struct {
    const char* label;
    double q;
  } kQuantiles[] = {
      {"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}, {"0.999", 0.999}};
  *out += "# TYPE " + quantiles + " gauge\n";
  for (const auto& quantile : kQuantiles) {
    *out += quantiles + "{quantile=\"" + quantile.label + "\"} ";
    AppendDouble(out, static_cast<double>(data.ValueAtQuantile(quantile.q)) *
                          nanos_per_tick / 1e9);
    *out += "\n";
  }
  AppendPromGauge(out, "mvstore_" + name + "_max_seconds",
                  static_cast<double>(data.max) * nanos_per_tick / 1e9);
}

}  // namespace obs
}  // namespace mvstore
