// Slow-transaction log: one structured line per over-threshold commit.
//
// When DatabaseOptions::slow_txn_us > 0, the commit path fills a stack
// CommitTrace with the per-phase tick spans it already measured for the
// histograms and calls MaybeLogSlowTxn() after the transaction terminates.
// Over-threshold commits emit a single key=value line to stderr, e.g.:
//
//   mvstore slow_txn scheme=mv txn=42 total_us=12873 validate_us=11
//       log_append_us=102 group_wait_us=12704 writes=3
//
// (one line; wrapped here for the comment). Emission is rate-limited
// process-wide to ~10 lines/s so a latency storm cannot turn the log into
// its own bottleneck; suppressed lines bump Stat::kSlowTxnSuppressed so
// the scrape still shows the storm's size.
#pragma once

#include <cstdint>

#include "common/counters.h"
#include "common/types.h"

namespace mvstore {
namespace obs {

/// Per-phase tick spans for one commit. Phases a scheme does not have (SV
/// has no validate; async log has no group wait measured) stay zero and
/// are still printed, so the line format is stable for parsers.
struct CommitTrace {
  const char* scheme = "mv";  // "mv" or "sv"
  TxnId txn_id = 0;
  uint64_t total_ticks = 0;
  uint64_t validate_ticks = 0;
  uint64_t log_append_ticks = 0;
  uint64_t group_wait_ticks = 0;
  uint64_t writes = 0;
};

/// Threshold in ticks for a slow_txn_us setting; 0 disables. Calibrates
/// the tick clock (milliseconds, once) — call at engine construction, not
/// on the commit path.
uint64_t SlowTxnThresholdTicks(uint64_t slow_txn_us);

/// Emits `trace` if the rate limiter admits it; the caller has already
/// compared total_ticks against SlowTxnThresholdTicks(). Returns true when
/// a line was written. `stats` (may be null) takes kSlowTxnLogged /
/// kSlowTxnSuppressed.
bool LogSlowTxn(const CommitTrace& trace, StatsCollector* stats);

}  // namespace obs
}  // namespace mvstore
