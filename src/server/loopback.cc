#include "server/loopback.h"

#include <cstring>

#include "server/server_core.h"
#include "server/session.h"

namespace mvstore {

namespace {

class LoopbackConnection : public Connection {
 public:
  LoopbackConnection(ServerCore& core, Session* session)
      : core_(core), session_(session) {}

  ~LoopbackConnection() override { Close(); }

  bool Send(const uint8_t* data, size_t n) override {
    if (session_ == nullptr) return false;
    if (!session_->OnBytes(data, n, &rx_)) {
      // Fatal protocol error: the session appended its final frame to rx_
      // (still readable), but the connection is dead for sending.
      ReleaseSession();
    }
    return true;
  }

  size_t Recv(uint8_t* buf, size_t n) override {
    const size_t avail = rx_.size() - pos_;
    if (avail == 0) return 0;  // EOF-equivalent: nothing pending
    const size_t take = n < avail ? n : avail;
    std::memcpy(buf, rx_.data() + pos_, take);
    pos_ += take;
    if (pos_ == rx_.size()) {
      rx_.clear();
      pos_ = 0;
      // The client consumed everything pending: the write buffer drained,
      // which re-arms the session's pipeline-burst budget (exactly what an
      // epoll worker signals when its outbuf empties).
      if (session_ != nullptr) session_->OnDrained();
    }
    return take;
  }

  void Close() override { ReleaseSession(); }

 private:
  void ReleaseSession() {
    if (session_ != nullptr) {
      core_.CloseSession(session_);
      session_ = nullptr;
    }
  }

  ServerCore& core_;
  Session* session_;
  std::vector<uint8_t> rx_;
  size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Connection> LoopbackTransport::Connect(Status* status) {
  Session* session = core_.OpenSession();
  if (session == nullptr) {
    if (status != nullptr) *status = Status::Unavailable();
    return nullptr;
  }
  if (status != nullptr) *status = Status::OK();
  return std::make_unique<LoopbackConnection>(core_, session);
}

}  // namespace mvstore
