// LoopbackTransport: the server without sockets.
//
// Implements the client-side Transport interface (client/transport.h) by
// splicing each connection straight onto a server Session in the same
// process: Send() feeds the session's frame parser and dispatch loop
// synchronously, and the responses it produces are buffered for Recv().
// Every byte still passes through the real wire framing and the real
// ServerCore admission/backpressure/drain logic — only epoll and the
// kernel socket buffers are gone — so protocol and session tests (and the
// malformed-frame suite) run deterministically with no ports, no event
// loop, and no platform dependency.
#pragma once

#include <memory>
#include <vector>

#include "client/transport.h"

namespace mvstore {

class ServerCore;
class Session;

class LoopbackTransport : public Transport {
 public:
  explicit LoopbackTransport(ServerCore& core) : core_(core) {}

  /// Admission control applies exactly as over TCP: a full or draining
  /// server yields nullptr with *status = kUnavailable.
  std::unique_ptr<Connection> Connect(Status* status = nullptr) override;

 private:
  ServerCore& core_;
};

}  // namespace mvstore
