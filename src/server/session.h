// Session: per-connection protocol state and request dispatch.
//
// One session per connection, owned by the ServerCore and driven by a
// transport (epoll worker or loopback): the transport feeds raw received
// bytes in, the session parses frames (server/wire.h), dispatches each
// request, and appends encoded response frames to the transport's write
// buffer — one response per request, in request order, so pipelining needs
// no request ids.
//
// A session owns at most one open transaction handle at a time: kBegin
// opens it, kCommit/kAbort (or any operation status that means the engine
// already rolled it back) closes it, and destroying the session aborts
// whatever is still open (client vanished mid-transaction). Registered
// procedures (kCall) manage their own transactions and neither see nor
// disturb the session's interactive handle.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "server/wire.h"

namespace mvstore {

class Database;
class ServerCore;
struct Txn;

class Session {
 public:
  Session(Database& db, ServerCore& core);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Feed `n` received bytes; parse and dispatch every complete frame,
  /// appending response frames to *out. Returns false when the connection
  /// must close (malformed frame — framing is lost); a final fatal frame
  /// telling the client why has already been appended to *out.
  bool OnBytes(const uint8_t* data, size_t n, std::vector<uint8_t>* out);

  /// The transport fully drained this session's responses to the client;
  /// resets the pipeline-burst budget (see ServerCoreOptions::max_pipeline).
  void OnDrained() { burst_depth_ = 0; }

  bool has_open_txn() const { return txn_ != nullptr; }
  IsolationLevel isolation() const { return isolation_; }

 private:
  void HandleFrame(const wire::Frame& frame, std::vector<uint8_t>* out);
  /// Follower write gate: when the core's ReplicaGate reports read-only,
  /// answer kReadOnly (leaving the open transaction usable for reads) and
  /// return true.
  bool RefuseWrite(const wire::Frame& frame, std::vector<uint8_t>* out);

  Database& db_;
  ServerCore& core_;
  wire::FrameParser parser_;

  /// The interactive transaction this session owns, if any.
  Txn* txn_ = nullptr;
  IsolationLevel isolation_ = IsolationLevel::kReadCommitted;
  /// Frames admitted since the write buffer last drained.
  uint32_t burst_depth_ = 0;
};

}  // namespace mvstore
