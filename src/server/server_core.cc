#include "server/server_core.h"

#include "obs/metrics.h"
#include "server/session.h"

namespace mvstore {

ServerCore::ServerCore(Database& db, ServerCoreOptions options)
    : db_(db), options_(options) {}

ServerCore::~ServerCore() = default;

Session* ServerCore::OpenSession() {
  if (draining()) {
    sessions_refused.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  MutexLock guard(sessions_mutex_);
  if (sessions_.size() >= options_.max_sessions) {
    sessions_refused.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  auto session = std::make_unique<Session>(db_, *this);
  Session* raw = session.get();
  sessions_.emplace(raw, std::move(session));
  sessions_opened.fetch_add(1, std::memory_order_relaxed);
  return raw;
}

void ServerCore::CloseSession(Session* session) {
  if (session == nullptr) return;
  std::unique_ptr<Session> owned;
  {
    MutexLock guard(sessions_mutex_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) return;
    owned = std::move(it->second);
    sessions_.erase(it);
  }
  // Destroyed outside the lock: the destructor aborts an open transaction,
  // which can block (lock release, dependency machinery) and must not
  // stall every other connect/disconnect.
}

void ServerCore::BeginDrain() {
  draining_.store(true, std::memory_order_release);
}

uint32_t ServerCore::active_sessions() {
  MutexLock guard(sessions_mutex_);
  return static_cast<uint32_t>(sessions_.size());
}

uint32_t ServerCore::sessions_with_open_txn() {
  MutexLock guard(sessions_mutex_);
  uint32_t n = 0;
  for (const auto& [raw, session] : sessions_) {
    if (session->has_open_txn()) ++n;
  }
  return n;
}

std::string ServerCore::StatsText() {
  std::string out;
  auto line = [&out](const char* name, uint64_t value) {
    out += "server.";
    out += name;
    out += "=";
    out += std::to_string(value);
    out += "\n";
  };
  line("sessions_active", active_sessions());
  line("sessions_opened", sessions_opened.load(std::memory_order_relaxed));
  line("sessions_refused", sessions_refused.load(std::memory_order_relaxed));
  line("frames_processed", frames_processed.load(std::memory_order_relaxed));
  line("frames_rejected", frames_rejected.load(std::memory_order_relaxed));
  line("requests_unavailable",
       requests_unavailable.load(std::memory_order_relaxed));
  if (ReplicaGate* gate = replica()) {
    line("repl_follower", 1);
    line("repl_writable", gate->writable() ? 1 : 0);
    line("repl_ready", gate->ready() ? 1 : 0);
    line("repl_replayed_ts", gate->replayed_ts());
  }
  for (const auto& [name, value] : db_.CounterSnapshot()) {
    out += name;
    out += "=";
    out += std::to_string(value);
    out += "\n";
  }
  return out;
}

std::string ServerCore::MetricsText() {
  std::string out;
  // Engine counters: CounterSnapshot is sorted by name (stable contract).
  for (const auto& [name, value] : db_.CounterSnapshot()) {
    obs::AppendPromCounter(&out, "mvstore_" + name + "_total", value);
  }
  // Service counters.
  obs::AppendPromCounter(&out, "mvstore_server_sessions_opened_total",
                         sessions_opened.load(std::memory_order_relaxed));
  obs::AppendPromCounter(&out, "mvstore_server_sessions_refused_total",
                         sessions_refused.load(std::memory_order_relaxed));
  obs::AppendPromCounter(&out, "mvstore_server_frames_processed_total",
                         frames_processed.load(std::memory_order_relaxed));
  obs::AppendPromCounter(&out, "mvstore_server_frames_rejected_total",
                         frames_rejected.load(std::memory_order_relaxed));
  obs::AppendPromCounter(
      &out, "mvstore_server_requests_unavailable_total",
      requests_unavailable.load(std::memory_order_relaxed));
  // Gauges.
  obs::AppendPromGauge(&out, "mvstore_server_sessions_active",
                       active_sessions());
  obs::AppendPromGauge(&out, "mvstore_read_only", db_.read_only() ? 1 : 0);
  if (ReplicaGate* gate = replica()) {
    const Timestamp replayed = gate->replayed_ts();
    const Timestamp leader = gate->leader_ts();
    obs::AppendPromGauge(&out, "mvstore_repl_writable",
                         gate->writable() ? 1 : 0);
    obs::AppendPromGauge(&out, "mvstore_repl_ready", gate->ready() ? 1 : 0);
    obs::AppendPromGauge(&out, "mvstore_repl_replayed_ts",
                         static_cast<double>(replayed));
    obs::AppendPromGauge(&out, "mvstore_repl_leader_ts",
                         static_cast<double>(leader));
    // Commit timestamps the follower still has to replay. Timestamps are
    // the engine's logical clock, not wall time.
    obs::AppendPromGauge(
        &out, "mvstore_repl_lag_timestamps",
        leader > replayed ? static_cast<double>(leader - replayed) : 0);
  }
  // Latency histograms, each with _bucket/_sum/_count, quantile gauges and
  // a max gauge (units: seconds).
  obs::LatencyHistograms& hists = db_.hists();
  for (uint32_t h = 0; h < static_cast<uint32_t>(obs::Hist::kNumHists); ++h) {
    const obs::Hist hist = static_cast<obs::Hist>(h);
    obs::AppendPromHistogram(&out, obs::HistName(hist),
                             hists.Snapshot(hist));
  }
  return out;
}

}  // namespace mvstore
