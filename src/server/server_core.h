// ServerCore: the transport-independent half of the server.
//
// Owns what every front end shares — the session registry, admission
// control, drain state, and service counters — so the epoll server
// (server/mv_server.h) and the in-process loopback transport
// (server/loopback.h) drive the exact same session, dispatch, and
// backpressure code. The transports differ only in how bytes arrive.
//
// Admission control and backpressure:
//  * max_sessions: OpenSession refuses (nullptr) once this many sessions
//    are live; the transport tells the client kUnavailable and closes.
//  * max_pipeline: frames a session admits per burst (between write-buffer
//    drains); excess frames are answered kUnavailable instead of queueing
//    unboundedly (the request is never started, so retrying is safe).
//  * BeginDrain: new sessions and new-transaction work (kBegin, kCall) are
//    refused kUnavailable while in-flight transactions may still finish
//    and commit — the graceful-shutdown contract: no committed work is
//    lost, and a later reopen of the database recovers all of it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "core/database.h"

namespace mvstore {

class Session;

/// What the session layer needs to know about a replication follower hosted
/// behind this server (src/repl/replica.h implements it). While the gate
/// reports !writable(), sessions refuse writes with kReadOnly and serve
/// snapshot reads at replayed_ts(); kReplPromote flips the gate to writable
/// and the server becomes an ordinary leader.
class ReplicaGate {
 public:
  virtual ~ReplicaGate() = default;
  /// True once Promote() succeeded — writes flow again.
  virtual bool writable() = 0;
  /// True once the follower has attached to the leader's live stream at
  /// least once; before that its tables may be an empty shell, so reads
  /// are refused kUnavailable rather than served misleadingly fresh.
  virtual bool ready() = 0;
  /// Largest leader commit timestamp replayed locally — the published
  /// staleness watermark follower reads run at.
  virtual Timestamp replayed_ts() = 0;
  /// Seal the replicated tail and turn this follower into a writable
  /// leader. `force` skips the never-attached guard.
  virtual Status Promote(bool force) = 0;
  /// Last commit timestamp the leader advertised (handshake/heartbeat);
  /// leader_ts() - replayed_ts() is the replication-lag gauge MetricsText
  /// exposes. 0 when unknown (default for gates that don't track it).
  virtual Timestamp leader_ts() { return 0; }
};

struct ServerCoreOptions {
  /// Live-session cap; further connects are refused kUnavailable.
  uint32_t max_sessions = 256;
  /// Frames a session accepts per burst before answering kUnavailable.
  uint32_t max_pipeline = 64;
};

class ServerCore {
 public:
  ServerCore(Database& db, ServerCoreOptions options = {});
  ~ServerCore();

  ServerCore(const ServerCore&) = delete;
  ServerCore& operator=(const ServerCore&) = delete;

  Database& db() { return db_; }
  const ServerCoreOptions& options() const { return options_; }

  /// Admit a session, or nullptr when the server is full or draining. The
  /// returned session stays owned by the core; release it with
  /// CloseSession.
  Session* OpenSession();
  void CloseSession(Session* session);

  /// Stop admitting sessions and new transactions; in-flight transactions
  /// may still run to commit/abort. Irreversible.
  void BeginDrain();
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Attach / detach the follower gate. The caller keeps ownership and must
  /// clear the gate (SetReplica(nullptr)) before destroying it.
  void SetReplica(ReplicaGate* gate) {
    replica_.store(gate, std::memory_order_release);
  }
  ReplicaGate* replica() const {
    return replica_.load(std::memory_order_acquire);
  }

  uint32_t active_sessions();
  /// Sessions currently holding an open transaction (the drain wait
  /// watches this go to zero).
  uint32_t sessions_with_open_txn();

  /// Service + engine counters as "name=value" lines: the server's own
  /// counters prefixed "server.", then Database::CounterSnapshot() — one
  /// uniform report for the STATS opcode. Counter lines are sorted by name
  /// within each group (the stable-name contract, docs/API.md).
  std::string StatsText();

  /// Prometheus text exposition for the kMetrics opcode: engine counters,
  /// latency histograms with quantile gauges, server/service gauges, and —
  /// when a replica gate is attached — the replication-lag gauge
  /// (leader_ts - replayed_ts). docs/OBSERVABILITY.md has the catalog.
  std::string MetricsText();

  /// --- service counters -------------------------------------------------------

  std::atomic<uint64_t> sessions_opened{0};
  std::atomic<uint64_t> sessions_refused{0};
  std::atomic<uint64_t> frames_processed{0};
  /// Malformed frames (framing lost; the connection died with them).
  std::atomic<uint64_t> frames_rejected{0};
  /// Requests answered kUnavailable (pipeline overflow or drain).
  std::atomic<uint64_t> requests_unavailable{0};

 private:
  Database& db_;
  const ServerCoreOptions options_;
  std::atomic<bool> draining_{false};
  std::atomic<ReplicaGate*> replica_{nullptr};

  friend struct TsaNegativeProbe;  // scripts/tsa_fixtures/ (compile-only)

  Mutex sessions_mutex_;
  std::unordered_map<Session*, std::unique_ptr<Session>> sessions_
      GUARDED_BY(sessions_mutex_);
};

}  // namespace mvstore
