#include "server/wire.h"

#include <cstddef>

namespace mvstore {
namespace wire {

namespace {
constexpr uint8_t kMagic0 = 'M';
constexpr uint8_t kMagic1 = 'V';
}  // namespace

uint32_t FrameChecksum(uint8_t flags, uint8_t opcode, const uint8_t* body,
                       size_t body_len) {
  uint32_t h = 2166136261u;
  auto mix = [&h](uint8_t byte) {
    h ^= byte;
    h *= 16777619u;
  };
  mix(flags);
  mix(opcode);
  for (size_t i = 0; i < body_len; ++i) mix(body[i]);
  return h;
}

void AppendFrame(std::vector<uint8_t>* out, Opcode opcode, uint8_t flags,
                 const uint8_t* body, size_t body_len) {
  Put(out, kMagic0);
  Put(out, kMagic1);
  Put(out, flags);
  Put(out, static_cast<uint8_t>(opcode));
  Put(out, static_cast<uint32_t>(body_len));
  Put(out, FrameChecksum(flags, static_cast<uint8_t>(opcode), body, body_len));
  if (body_len > 0) PutBytes(out, body, body_len);
}

void AppendResponse(std::vector<uint8_t>* out, Opcode opcode,
                    const Status& status, const uint8_t* payload,
                    size_t payload_len, bool fatal) {
  std::vector<uint8_t> body;
  body.reserve(2 + payload_len);
  Put(&body, static_cast<uint8_t>(status.code()));
  Put(&body, static_cast<uint8_t>(status.abort_reason()));
  if (payload_len > 0) PutBytes(&body, payload, payload_len);
  AppendFrame(out, opcode, kFlagResponse | (fatal ? kFlagFatal : 0),
              body.data(), body.size());
}

Status WireToStatus(uint8_t code, uint8_t reason) {
  if (code > static_cast<uint8_t>(Status::Code::kTimeout) ||
      reason > static_cast<uint8_t>(AbortReason::kUserRequested)) {
    return Status::Internal();
  }
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kAborted:
      return Status::Aborted(static_cast<AbortReason>(reason));
    case Status::Code::kNotFound:
      return Status::NotFound();
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument();
    case Status::Code::kAlreadyExists:
      return Status::AlreadyExists();
    case Status::Code::kInternal:
      return Status::Internal();
    case Status::Code::kUnavailable:
      return Status::Unavailable();
    case Status::Code::kReadOnly:
      return Status::ReadOnly();
    case Status::Code::kTimeout:
      // Timeouts are client-local; a server never legitimately sends one.
      return Status::Internal();
  }
  return Status::Internal();
}

void FrameParser::Feed(const uint8_t* data, size_t n) {
  if (bad_) return;
  // Compact before growing: pos_ only moves forward, and a long-lived
  // pipelined connection must not accrete every frame it ever parsed.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

FrameParser::Result FrameParser::Next(Frame* frame) {
  if (bad_) return Result::kBad;
  const size_t avail = buf_.size() - pos_;
  if (avail < kHeaderSize) return Result::kNeedMore;
  const uint8_t* h = buf_.data() + pos_;
  // Validate everything the header alone can prove before waiting for the
  // body: a garbage length must neither allocate nor stall the connection
  // waiting for bytes that will never come.
  if (h[0] != kMagic0 || h[1] != kMagic1) {
    bad_ = true;
    return Result::kBad;
  }
  const uint8_t flags = h[2];
  const uint8_t opcode = h[3];
  if ((flags & ~kKnownFlags) != 0 || opcode > kMaxOpcode) {
    bad_ = true;
    return Result::kBad;
  }
  uint32_t body_len = 0;
  uint32_t checksum = 0;
  std::memcpy(&body_len, h + 4, 4);
  std::memcpy(&checksum, h + 8, 4);
  if (body_len > kMaxFrameBody) {
    bad_ = true;
    return Result::kBad;
  }
  if (avail < kHeaderSize + body_len) return Result::kNeedMore;
  const uint8_t* body = h + kHeaderSize;
  if (FrameChecksum(flags, opcode, body, body_len) != checksum) {
    bad_ = true;
    return Result::kBad;
  }
  frame->flags = flags;
  frame->opcode = static_cast<Opcode>(opcode);
  frame->body.assign(body, body + body_len);
  pos_ += kHeaderSize + body_len;
  return Result::kFrame;
}

}  // namespace wire
}  // namespace mvstore
