// Wire protocol: length-prefixed, checksummed binary frames.
//
// The service layer (src/server/, src/client/) speaks one frame format in
// both directions, with the same hardening discipline as the redo log
// format (log/log_record.h): opcode and length bounds are validated before
// anything is allocated, the checksum is verified before a frame is
// dispatched, and garbage bytes kill the connection instead of desyncing
// the stream. Frames are pipelined: a connection may carry any number of
// request frames before reading a response, and responses come back in
// request order.
//
// Frame layout (all integers little-endian, 12-byte header):
//
//   magic 'M','V' (2B) | flags (1B) | opcode (1B) | body_len (4B) |
//   checksum (4B) | body (body_len bytes)
//
// The checksum is FNV-1a over flags, opcode, and the body, so a corrupted
// opcode cannot dispatch and a corrupted length is caught by the magic of
// the following frame or by the checksum of this one.
//
// Request bodies by opcode (responses mirror the request opcode with
// kFlagResponse set; their body is status_code (1B) | abort_reason (1B) |
// payload):
//
//   kPing        -                                    -> -
//   kBegin       isolation (1B) | read_only (1B)      -> -
//   kCommit      -                                    -> -
//   kAbort       -                                    -> -
//   kGet         table (4B) | index (4B) | key (8B)   -> row payload
//   kInsert      table (4B) | payload                 -> -
//   kUpdate      table (4B) | index (4B) | key (8B) | payload  -> -
//   kDelete      table (4B) | index (4B) | key (8B)   -> -
//   kScanRange   table (4B) | index (4B) | lo (8B) | hi (8B) | max_rows (4B)
//                                      -> count (4B) | count * (len(4B)|row)
//   kCall        proc_id (4B) | argument bytes        -> procedure result
//   kResolve     procedure name bytes                 -> proc_id (4B)
//   kStats       -                                    -> "name=value\n" text
//   kMetrics     -                                    -> Prometheus text
//                exposition (counters, latency histograms with quantiles,
//                gauges; docs/OBSERVABILITY.md has the catalog).
//   kBye         (server->client only) sent with kFlagFatal before the
//                server closes a refused or shutting-down connection; its
//                status explains why (kUnavailable).
//
// Replication opcodes (src/repl/, docs/REPLICATION.md). The pull phase
// (handshake/chunk) is request/response like everything above; after a
// successful kReplStream attach the connection switches to push mode:
// the leader sends kReplTail / kReplHeartbeat frames with no response
// flag and the follower sends kReplAck frames back, neither answered.
//
//   kReplHandshake proto (1B) | scheme (1B) | have_state (1B)
//                  | local_seq (8B) | local_size (8B)
//                  -> min_seq (8B) | ckpt_present (1B) | ckpt_size (8B)
//                     | ckpt_covered_seq (8B) | ckpt_snapshot_ts (8B)
//                     | cur_seq (8B) | cur_size (8B) | last_ts (8B)
//   kReplCkptChunk offset (8B) | max (4B)   -> total_size (8B) | bytes
//   kReplSegChunk  seq (8B) | offset (8B) | max (4B)
//                  -> sealed (1B) | size (8B) | bytes
//   kReplStream    seq (8B) | offset (8B)
//                  -> attached (1B) | cur_seq (8B) | cur_size (8B)
//   kReplTail      (leader->follower push) seq (8B) | offset (8B) | batch
//   kReplHeartbeat (leader->follower push) cur_seq (8B) | cur_size (8B)
//                  | last_ts (8B)
//   kReplAck       (follower->leader push) seq (8B) | offset (8B):
//                  everything below this position is durable at the follower
//   kReplPromote   force (1B), to a *follower's session port*: seal the
//                  replay tail and go writable (kUnavailable when the
//                  follower never caught up and force is 0).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/status.h"

namespace mvstore {
namespace wire {

enum class Opcode : uint8_t {
  kPing = 0,
  kBegin,
  kCommit,
  kAbort,
  kGet,
  kInsert,
  kUpdate,
  kDelete,
  kScanRange,
  kCall,
  kResolve,
  kStats,
  kBye,
  kReplHandshake,
  kReplCkptChunk,
  kReplSegChunk,
  kReplStream,
  kReplTail,
  kReplHeartbeat,
  kReplAck,
  kReplPromote,
  // Appended after the repl block so existing opcode values stay stable
  // across mixed-version client/server pairs.
  kMetrics,
};
constexpr uint8_t kMaxOpcode = static_cast<uint8_t>(Opcode::kMetrics);

/// Replication protocol version carried in kReplHandshake.
constexpr uint8_t kReplProtoVersion = 1;

constexpr uint8_t kFlagResponse = 0x1;
/// The sender closes the connection after this frame.
constexpr uint8_t kFlagFatal = 0x2;
constexpr uint8_t kKnownFlags = kFlagResponse | kFlagFatal;

constexpr size_t kHeaderSize = 12;
/// Upper bound on body_len: anything larger is a garbage length, rejected
/// before allocation (same rule as ParseLogRecord's insert-size bound).
constexpr uint32_t kMaxFrameBody = 4u << 20;

/// FNV-1a (32-bit) over flags | opcode | body.
uint32_t FrameChecksum(uint8_t flags, uint8_t opcode, const uint8_t* body,
                       size_t body_len);

struct Frame {
  uint8_t flags = 0;
  Opcode opcode = Opcode::kPing;
  std::vector<uint8_t> body;
};

/// Append one encoded frame to `out`.
void AppendFrame(std::vector<uint8_t>* out, Opcode opcode, uint8_t flags,
                 const uint8_t* body, size_t body_len);

/// Append a response frame: status_code | abort_reason | payload.
void AppendResponse(std::vector<uint8_t>* out, Opcode opcode,
                    const Status& status, const uint8_t* payload,
                    size_t payload_len, bool fatal = false);

/// Decode the two status bytes of a response body; garbage bytes (unknown
/// code or reason) decode to Internal rather than trusting the peer.
Status WireToStatus(uint8_t code, uint8_t reason);

/// Incremental frame scanner: feed bytes as they arrive (in any split —
/// byte-by-byte is fine), pull complete frames out. After kBad the stream
/// is unrecoverable (framing lost) and the connection must close.
class FrameParser {
 public:
  enum class Result : uint8_t {
    kFrame,     // *frame filled
    kNeedMore,  // no complete frame buffered yet
    kBad,       // malformed: bad magic/flags/opcode, oversized length,
                // or checksum mismatch
  };

  void Feed(const uint8_t* data, size_t n);
  Result Next(Frame* frame);

  /// Bytes buffered but not yet consumed by Next.
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;
  bool bad_ = false;
};

/// Little-endian body reader with the bounds discipline of ParseLogRecord:
/// every read is checked, and a failed read poisons nothing (the caller
/// just rejects the frame).
class BodyReader {
 public:
  BodyReader(const uint8_t* data, size_t n) : data_(data), n_(n) {}

  template <typename T>
  bool Read(T* value) {
    if (pos_ + sizeof(T) > n_) return false;
    std::memcpy(value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool Skip(size_t n) {
    if (pos_ + n > n_) return false;
    pos_ += n;
    return true;
  }

  /// The unread remainder (payload tails: insert/update payloads, call
  /// arguments, names).
  const uint8_t* rest() const { return data_ + pos_; }
  size_t remaining() const { return n_ - pos_; }

 private:
  const uint8_t* data_;
  size_t n_;
  size_t pos_ = 0;
};

template <typename T>
inline void Put(std::vector<uint8_t>* out, T value) {
  const size_t old_size = out->size();
  out->resize(old_size + sizeof(T));
  std::memcpy(out->data() + old_size, &value, sizeof(T));
}

inline void PutBytes(std::vector<uint8_t>* out, const void* data, size_t n) {
  if (n == 0) return;  // empty payloads may pass data == nullptr
  const size_t old_size = out->size();
  out->resize(old_size + n);
  std::memcpy(out->data() + old_size, data, n);
}

}  // namespace wire
}  // namespace mvstore
