#include "server/mv_server.h"

#include "common/failpoint.h"
#include "common/mutex.h"
#include "server/session.h"
#include "server/wire.h"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <vector>
#endif

namespace mvstore {

#if defined(__linux__)

namespace {

/// Read chunk per syscall; a connection with more buffered than this just
/// loops until EAGAIN.
constexpr size_t kReadChunk = 64 * 1024;

/// Write-side backpressure: once a connection has this many unsent
/// response bytes buffered, its worker stops reading new requests
/// (EPOLLIN off) until the peer drains. Without this, a client that
/// streams requests while never reading responses grows outbuf without
/// bound — max_pipeline caps admitted frames per burst, not buffered
/// bytes.
constexpr size_t kOutbufHighWatermark = 8 * 1024 * 1024;

void WakeEventFd(int fd) {
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(fd, &one, sizeof(one));
}

/// Best-effort blocking-ish send of a small buffer on a non-blocking fd
/// (the pre-close goodbye frame); gives up after a few EAGAIN retries
/// rather than stalling the acceptor on a hostile peer.
void SendBestEffort(int fd, const uint8_t* data, size_t n) {
  size_t sent = 0;
  int spins = 0;
  while (sent < n && spins < 100) {
    ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
    } else if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      ++spins;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    } else {
      return;
    }
  }
}

}  // namespace

struct MVServer::Impl {
  struct Conn {
    Session* session = nullptr;
    std::vector<uint8_t> outbuf;
    size_t outpos = 0;
    bool want_write = false;
    /// EPOLLIN armed; cleared when outbuf passes the high watermark.
    bool reading = true;

    size_t pending_out() const { return outbuf.size() - outpos; }
  };

  struct Worker {
    int epfd = -1;
    int wake_fd = -1;
    std::thread thread;
    Mutex pending_mutex;
    /// Connections handed over by the acceptor, adopted on the next wake.
    /// (`conns` below is worker-thread-only and needs no lock.)
    std::vector<std::pair<int, Session*>> pending GUARDED_BY(pending_mutex);
    std::unordered_map<int, Conn> conns;
  };

  Database& db;
  ServerOptions options;
  ServerCore core;

  int listen_fd = -1;
  int accept_wake_fd = -1;
  int accept_epfd = -1;
  uint16_t bound_port = 0;
  std::thread acceptor;
  std::vector<std::unique_ptr<Worker>> workers;
  std::atomic<bool> running{false};
  std::atomic<bool> stop_requested{false};
  uint32_t next_worker = 0;

  Impl(Database& db_in, ServerOptions options_in)
      : db(db_in), options(std::move(options_in)), core(db, options.core) {}

  Status Start() {
    if (running.load(std::memory_order_acquire)) {
      return Status::InvalidArgument();
    }
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (listen_fd < 0) return Status::Internal();
    int on = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
      CloseStartupFds();
      return Status::InvalidArgument();
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0 ||
        ::listen(listen_fd, 128) < 0) {
      CloseStartupFds();
      return Status::Internal();
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port = ntohs(addr.sin_port);

    accept_wake_fd = ::eventfd(0, EFD_NONBLOCK);
    // The acceptor's epoll is created here, not in the thread: an fd-limit
    // failure must fail Start() loudly, not leave a silently-spinning
    // acceptor that never accepts.
    accept_epfd = ::epoll_create1(0);
    if (accept_wake_fd < 0 || accept_epfd < 0) {
      CloseStartupFds();
      return Status::Internal();
    }
    {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = listen_fd;
      if (::epoll_ctl(accept_epfd, EPOLL_CTL_ADD, listen_fd, &ev) != 0) {
        CloseStartupFds();
        return Status::Internal();
      }
      ev.data.fd = accept_wake_fd;
      ::epoll_ctl(accept_epfd, EPOLL_CTL_ADD, accept_wake_fd, &ev);
    }
    const uint32_t n_workers = options.workers > 0 ? options.workers : 1;
    for (uint32_t i = 0; i < n_workers; ++i) {
      auto w = std::make_unique<Worker>();
      w->epfd = ::epoll_create1(0);
      w->wake_fd = ::eventfd(0, EFD_NONBLOCK);
      if (w->epfd < 0 || w->wake_fd < 0) {
        CloseStartupFds();
        return Status::Internal();
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = w->wake_fd;
      ::epoll_ctl(w->epfd, EPOLL_CTL_ADD, w->wake_fd, &ev);
      workers.push_back(std::move(w));
    }
    running.store(true, std::memory_order_release);
    for (auto& w : workers) {
      Worker* worker = w.get();
      worker->thread = std::thread([this, worker] { WorkerLoop(worker); });
    }
    acceptor = std::thread([this] { AcceptLoop(); });
    return Status::OK();
  }

  void CloseStartupFds() {
    if (listen_fd >= 0) ::close(listen_fd);
    listen_fd = -1;
    if (accept_wake_fd >= 0) ::close(accept_wake_fd);
    accept_wake_fd = -1;
    if (accept_epfd >= 0) ::close(accept_epfd);
    accept_epfd = -1;
    for (auto& w : workers) {
      if (w->epfd >= 0) ::close(w->epfd);
      if (w->wake_fd >= 0) ::close(w->wake_fd);
    }
    workers.clear();
  }

  void AcceptLoop() {
    epoll_event events[8];
    while (!stop_requested.load(std::memory_order_acquire)) {
      int n = ::epoll_wait(accept_epfd, events, 8, 100);
      if (n < 0) {
        if (errno == EINTR) continue;
        // A broken epoll must not become a busy spin.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      for (int i = 0; i < n; ++i) {
        if (events[i].data.fd != listen_fd) continue;
        while (true) {
          int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
          if (fd < 0) break;
          if (MVSTORE_FAILPOINT("server.accept")) {
            // Injected accept failure (fd-limit, conntrack drop): the
            // connection dies before a session exists.
            ::close(fd);
            continue;
          }
          int on = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
          Session* session = core.OpenSession();
          if (session == nullptr) {
            // Refused (full or draining): say why, then close. The client
            // maps the fatal kBye to Status::Unavailable.
            std::vector<uint8_t> bye;
            wire::AppendResponse(&bye, wire::Opcode::kBye,
                                 Status::Unavailable(), nullptr, 0,
                                 /*fatal=*/true);
            SendBestEffort(fd, bye.data(), bye.size());
            ::close(fd);
            continue;
          }
          Worker* w = workers[next_worker++ % workers.size()].get();
          {
            MutexLock guard(w->pending_mutex);
            w->pending.emplace_back(fd, session);
          }
          WakeEventFd(w->wake_fd);
        }
      }
    }
  }

  void WorkerLoop(Worker* w) {
    epoll_event events[64];
    uint8_t chunk[kReadChunk];
    while (true) {
      int n = ::epoll_wait(w->epfd, events, 64, 100);
      if (stop_requested.load(std::memory_order_acquire)) break;
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == w->wake_fd) {
          uint64_t drain;
          while (::read(w->wake_fd, &drain, sizeof(drain)) > 0) {
          }
          AdoptPending(w);
          continue;
        }
        auto it = w->conns.find(fd);
        if (it == w->conns.end()) continue;
        Conn& conn = it->second;
        bool alive = true;
        if (events[i].events & (EPOLLHUP | EPOLLERR)) alive = false;
        if (alive && conn.reading && (events[i].events & EPOLLIN)) {
          while (alive && conn.pending_out() < kOutbufHighWatermark) {
            if (MVSTORE_FAILPOINT("server.read")) {
              // Injected read failure: treat the connection as dead, the
              // same as an ECONNRESET from the kernel.
              alive = false;
              break;
            }
            ssize_t r = ::read(fd, chunk, sizeof(chunk));
            if (r > 0) {
              alive = conn.session->OnBytes(chunk, static_cast<size_t>(r),
                                            &conn.outbuf);
            } else if (r == 0) {
              alive = false;  // peer closed
            } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
              break;
            } else {
              alive = false;
            }
          }
        }
        if (!conn.outbuf.empty()) {
          if (!FlushConn(w, fd, conn)) alive = false;
        }
        if (alive && conn.reading &&
            conn.pending_out() >= kOutbufHighWatermark) {
          // Slow reader: park the read side until the write side drains
          // (FlushConn re-arms EPOLLIN when outbuf empties). Unread
          // request bytes stay in the kernel socket buffer, which is the
          // backpressure the client eventually feels.
          conn.reading = false;
          UpdateEvents(w, fd, conn);
        }
        if (!alive) {
          // A fatal-parse goodbye may still sit in outbuf; push what we can
          // before closing.
          if (conn.outpos < conn.outbuf.size()) {
            SendBestEffort(fd, conn.outbuf.data() + conn.outpos,
                           conn.outbuf.size() - conn.outpos);
          }
          CloseConn(w, fd);
        }
      }
    }
    // Teardown: close every connection this worker still owns.
    std::vector<int> fds;
    fds.reserve(w->conns.size());
    for (const auto& [fd, conn] : w->conns) fds.push_back(fd);
    for (int fd : fds) CloseConn(w, fd);
    AdoptPending(w, /*closing=*/true);
  }

  void AdoptPending(Worker* w, bool closing = false) {
    std::vector<std::pair<int, Session*>> pending;
    {
      MutexLock guard(w->pending_mutex);
      pending.swap(w->pending);
    }
    for (auto& [fd, session] : pending) {
      if (closing) {
        core.CloseSession(session);
        ::close(fd);
        continue;
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      if (::epoll_ctl(w->epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        core.CloseSession(session);
        ::close(fd);
        continue;
      }
      Conn conn;
      conn.session = session;
      w->conns.emplace(fd, std::move(conn));
    }
  }

  void UpdateEvents(Worker* w, int fd, const Conn& conn) {
    epoll_event ev{};
    ev.events = (conn.reading ? EPOLLIN : 0u) |
                (conn.want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    ::epoll_ctl(w->epfd, EPOLL_CTL_MOD, fd, &ev);
  }

  /// Write as much of conn.outbuf as the socket accepts; arms EPOLLOUT on
  /// short writes. False on a dead socket.
  bool FlushConn(Worker* w, int fd, Conn& conn) {
    while (conn.outpos < conn.outbuf.size()) {
      // Injected send failure: dead socket mid-response.
      if (MVSTORE_FAILPOINT("server.write")) return false;
      ssize_t sent = ::send(fd, conn.outbuf.data() + conn.outpos,
                            conn.outbuf.size() - conn.outpos, MSG_NOSIGNAL);
      if (sent > 0) {
        conn.outpos += static_cast<size_t>(sent);
      } else if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn.want_write) {
          conn.want_write = true;
          UpdateEvents(w, fd, conn);
        }
        return true;
      } else {
        return false;
      }
    }
    conn.outbuf.clear();
    conn.outpos = 0;
    conn.session->OnDrained();
    if (conn.want_write || !conn.reading) {
      conn.want_write = false;
      conn.reading = true;  // drained: resume reading a parked slow reader
      UpdateEvents(w, fd, conn);
    }
    return true;
  }

  void CloseConn(Worker* w, int fd) {
    auto it = w->conns.find(fd);
    if (it == w->conns.end()) return;
    core.CloseSession(it->second.session);
    ::epoll_ctl(w->epfd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    w->conns.erase(it);
  }

  void Stop() {
    if (!running.exchange(false, std::memory_order_acq_rel)) return;
    // Phase 1 — drain: no new sessions or transactions; in-flight
    // transactions keep running on live event loops until they finish (or
    // the timeout gives up on them; their sessions then abort what's open).
    core.BeginDrain();
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options.drain_timeout_ms);
    while (core.sessions_with_open_txn() > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // Phase 2 — make everything a client saw commit durable before the
    // sockets go away.
    db.logger().FlushAll();
    // Phase 3 — tear down the event loops.
    stop_requested.store(true, std::memory_order_release);
    WakeEventFd(accept_wake_fd);
    for (auto& w : workers) WakeEventFd(w->wake_fd);
    if (acceptor.joinable()) acceptor.join();
    for (auto& w : workers) {
      if (w->thread.joinable()) w->thread.join();
      ::close(w->epfd);
      ::close(w->wake_fd);
    }
    workers.clear();
    ::close(listen_fd);
    listen_fd = -1;
    ::close(accept_wake_fd);
    accept_wake_fd = -1;
    ::close(accept_epfd);
    accept_epfd = -1;
  }
};

MVServer::MVServer(Database& db, ServerOptions options)
    : impl_(std::make_unique<Impl>(db, std::move(options))) {}

MVServer::~MVServer() { Stop(); }

Status MVServer::Start() { return impl_->Start(); }

void MVServer::Stop() { impl_->Stop(); }

bool MVServer::running() const {
  return impl_->running.load(std::memory_order_acquire);
}

uint16_t MVServer::port() const { return impl_->bound_port; }

ServerCore& MVServer::core() { return impl_->core; }

#else  // !__linux__

struct MVServer::Impl {
  ServerCore core;
  Impl(Database& db, const ServerOptions& options)
      : core(db, options.core) {}
};

MVServer::MVServer(Database& db, ServerOptions options)
    : impl_(std::make_unique<Impl>(db, options)) {}

MVServer::~MVServer() = default;

Status MVServer::Start() { return Status::Unavailable(); }

void MVServer::Stop() {}

bool MVServer::running() const { return false; }

uint16_t MVServer::port() const { return 0; }

ServerCore& MVServer::core() { return impl_->core; }

#endif  // __linux__

}  // namespace mvstore
