// MVServer: epoll-based network front end.
//
// One acceptor plus N worker event loops serve wire-protocol frames
// (server/wire.h) over TCP. The acceptor owns the listen socket and admits
// connections through the shared ServerCore (admission control lives
// there, not here); each admitted connection is pinned to one worker, so a
// session is only ever touched by its worker thread and needs no locking.
// Workers run edge-level epoll loops: read everything available, feed the
// session, write responses back, and fall back to EPOLLOUT buffering when
// the socket would block — a slow reader holds only its own connection's
// buffer, never a worker thread.
//
// Shutdown is drain-first: Stop() flips the core into draining (new
// sessions and new transactions get kUnavailable), waits for in-flight
// transactions to finish (bounded by drain_timeout_ms), flushes the redo
// log, and only then tears the event loops down — so every transaction a
// client saw commit is durable and a later Database::Open recovers it.
//
// Linux-only (epoll + eventfd): on other platforms Start() returns
// kUnavailable and the loopback transport (server/loopback.h) remains the
// way to serve in-process traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "server/server_core.h"

namespace mvstore {

struct ServerOptions {
  /// Numeric IPv4 listen address.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the chosen port back with port().
  uint16_t port = 0;
  /// Worker event loops (connections are pinned round-robin). Dispatch is
  /// synchronous on the worker, so a LogMode::kSync commit blocks its loop
  /// for the flush (plus any group-commit window): size this to the
  /// expected number of *concurrently committing* sessions when running
  /// synchronous durability; kAsync commits never block the loop.
  uint32_t workers = 2;
  /// Admission control, shared with every other transport on the core.
  ServerCoreOptions core;
  /// How long Stop() waits for in-flight transactions to finish before
  /// closing connections anyway (their sessions abort what is still open).
  uint32_t drain_timeout_ms = 2000;
};

class MVServer {
 public:
  MVServer(Database& db, ServerOptions options = {});
  ~MVServer();  // Stop()s if still running

  MVServer(const MVServer&) = delete;
  MVServer& operator=(const MVServer&) = delete;

  /// Bind, listen, and start the acceptor + workers. InvalidArgument for a
  /// bad host, Internal for socket failures, kUnavailable off-Linux.
  Status Start();

  /// Graceful drain-then-close; idempotent. See the header comment.
  void Stop();

  bool running() const;
  /// Actual bound port (after Start with port = 0).
  uint16_t port() const;

  ServerCore& core();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mvstore
