#include "server/session.h"

#include "core/database.h"
#include "server/server_core.h"

namespace mvstore {

namespace {

using wire::AppendResponse;
using wire::BodyReader;
using wire::Frame;
using wire::Opcode;

/// Rows a single kScanRange response may carry, whatever the client asked
/// for: a garbage max_rows must not let one frame materialize the table.
constexpr uint32_t kScanRowCap = 65536;

/// Byte budget for a kScanRange response payload: stop the scan before the
/// response could outgrow wire::kMaxFrameBody — an over-limit frame would
/// be *valid work* that the client's parser must reject, poisoning the
/// connection. Half the frame limit leaves ample headroom for the count
/// prefix and status bytes.
constexpr size_t kScanByteCap = wire::kMaxFrameBody / 2;

/// Response bytes a session may buffer before refusing further frames in
/// the burst. The transport's own watermark only runs between socket
/// reads, but one 64KB read can carry a full pipeline of scans, each
/// producing megabytes — the byte budget must bind per *frame*, exactly
/// like the frame-count budget, or a single burst can balloon the write
/// buffer unboundedly before the transport ever sees it.
constexpr size_t kBurstByteCap = 8 * 1024 * 1024;

void RespondEmpty(std::vector<uint8_t>* out, Opcode opcode,
                  const Status& status) {
  AppendResponse(out, opcode, status, nullptr, 0);
}

}  // namespace

Session::Session(Database& db, ServerCore& core) : db_(db), core_(core) {}

Session::~Session() {
  if (txn_ != nullptr) db_.Abort(txn_);
}

bool Session::OnBytes(const uint8_t* data, size_t n,
                      std::vector<uint8_t>* out) {
  parser_.Feed(data, n);
  Frame frame;
  while (true) {
    wire::FrameParser::Result r = parser_.Next(&frame);
    if (r == wire::FrameParser::Result::kNeedMore) return true;
    if (r == wire::FrameParser::Result::kBad) {
      // Framing is lost: no further byte on this stream can be trusted to
      // start a frame. Tell the client (it may be blocked awaiting a
      // response) and close.
      core_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
      AppendResponse(out, Opcode::kBye, Status::InvalidArgument(), nullptr, 0,
                     /*fatal=*/true);
      return false;
    }
    core_.frames_processed.fetch_add(1, std::memory_order_relaxed);
    if (++burst_depth_ > core_.options().max_pipeline ||
        out->size() >= kBurstByteCap) {
      // Queue full: answer (so pipelined bookkeeping stays aligned) without
      // starting the request; the client retries after draining. If the
      // refused frame belonged to an open interactive transaction, abort
      // that transaction too — otherwise a burst of Begin + N ops + Commit
      // whose tail was refused would leave a *partial* write set open,
      // and a later Commit would make it durable. Aborting keeps the
      // contract honest: nothing the refusal touched can ever commit.
      core_.requests_unavailable.fetch_add(1, std::memory_order_relaxed);
      if (txn_ != nullptr) {
        db_.Abort(txn_);
        txn_ = nullptr;
      }
      RespondEmpty(out, frame.opcode, Status::Unavailable());
      continue;
    }
    HandleFrame(frame, out);
  }
}

void Session::HandleFrame(const Frame& frame, std::vector<uint8_t>* out) {
  BodyReader body(frame.body.data(), frame.body.size());
  switch (frame.opcode) {
    case Opcode::kPing:
      RespondEmpty(out, frame.opcode, Status::OK());
      return;

    case Opcode::kBegin: {
      uint8_t iso_byte = 0;
      uint8_t read_only = 0;
      if (!body.Read(&iso_byte) || !body.Read(&read_only) ||
          iso_byte > static_cast<uint8_t>(IsolationLevel::kSerializable)) {
        RespondEmpty(out, frame.opcode, Status::InvalidArgument());
        return;
      }
      if (txn_ != nullptr) {  // one interactive transaction per session
        RespondEmpty(out, frame.opcode, Status::InvalidArgument());
        return;
      }
      if (core_.draining()) {
        core_.requests_unavailable.fetch_add(1, std::memory_order_relaxed);
        RespondEmpty(out, frame.opcode, Status::Unavailable());
        return;
      }
      if (ReplicaGate* gate = core_.replica();
          gate != nullptr && !gate->writable() && !gate->ready()) {
        // A follower that never caught up would serve an empty (or
        // arbitrarily stale) shell as if it were data; refuse until the
        // first attach published a real watermark.
        core_.requests_unavailable.fetch_add(1, std::memory_order_relaxed);
        RespondEmpty(out, frame.opcode, Status::Unavailable());
        return;
      }
      isolation_ = static_cast<IsolationLevel>(iso_byte);
      txn_ = db_.Begin(isolation_, read_only != 0);
      RespondEmpty(out, frame.opcode, Status::OK());
      return;
    }

    case Opcode::kCommit: {
      if (txn_ == nullptr) {
        RespondEmpty(out, frame.opcode, Status::InvalidArgument());
        return;
      }
      Status s = db_.Commit(txn_);
      txn_ = nullptr;
      RespondEmpty(out, frame.opcode, s);
      return;
    }

    case Opcode::kAbort: {
      if (txn_ == nullptr) {
        RespondEmpty(out, frame.opcode, Status::InvalidArgument());
        return;
      }
      db_.Abort(txn_);
      txn_ = nullptr;
      RespondEmpty(out, frame.opcode, Status::OK());
      return;
    }

    case Opcode::kGet: {
      TableId table = 0;
      IndexId index = 0;
      uint64_t key = 0;
      if (!body.Read(&table) || !body.Read(&index) || !body.Read(&key) ||
          table >= db_.NumTables() || index >= db_.NumIndexes(table) ||
          txn_ == nullptr) {
        RespondEmpty(out, frame.opcode, Status::InvalidArgument());
        return;
      }
      std::vector<uint8_t> row(db_.PayloadSize(table));
      Status s = db_.Read(txn_, table, index, key, row.data());
      if (s.IsAborted()) txn_ = nullptr;
      AppendResponse(out, frame.opcode, s, s.ok() ? row.data() : nullptr,
                     s.ok() ? row.size() : 0);
      return;
    }

    case Opcode::kInsert: {
      TableId table = 0;
      if (!body.Read(&table) || table >= db_.NumTables() ||
          body.remaining() != db_.PayloadSize(table) || txn_ == nullptr) {
        RespondEmpty(out, frame.opcode, Status::InvalidArgument());
        return;
      }
      if (RefuseWrite(frame, out)) return;
      // Bounce through an aligned heap copy: body.rest() points into the
      // frame at an arbitrary offset, and Insert hands the payload pointer
      // to the table's key extractors, which cast it to the row struct.
      std::vector<uint8_t> row(body.rest(), body.rest() + body.remaining());
      Status s = db_.Insert(txn_, table, row.data());
      if (s.IsAborted()) txn_ = nullptr;
      RespondEmpty(out, frame.opcode, s);
      return;
    }

    case Opcode::kUpdate: {
      TableId table = 0;
      IndexId index = 0;
      uint64_t key = 0;
      if (!body.Read(&table) || !body.Read(&index) || !body.Read(&key) ||
          table >= db_.NumTables() || index >= db_.NumIndexes(table) ||
          body.remaining() != db_.PayloadSize(table) || txn_ == nullptr) {
        RespondEmpty(out, frame.opcode, Status::InvalidArgument());
        return;
      }
      if (RefuseWrite(frame, out)) return;
      const uint8_t* payload = body.rest();
      const uint32_t size = db_.PayloadSize(table);
      Status s = db_.Update(txn_, table, index, key, [&](void* p) {
        std::memcpy(p, payload, size);
      });
      if (s.IsAborted()) txn_ = nullptr;
      RespondEmpty(out, frame.opcode, s);
      return;
    }

    case Opcode::kDelete: {
      TableId table = 0;
      IndexId index = 0;
      uint64_t key = 0;
      if (!body.Read(&table) || !body.Read(&index) || !body.Read(&key) ||
          table >= db_.NumTables() || index >= db_.NumIndexes(table) ||
          txn_ == nullptr) {
        RespondEmpty(out, frame.opcode, Status::InvalidArgument());
        return;
      }
      if (RefuseWrite(frame, out)) return;
      Status s = db_.Delete(txn_, table, index, key);
      if (s.IsAborted()) txn_ = nullptr;
      RespondEmpty(out, frame.opcode, s);
      return;
    }

    case Opcode::kScanRange: {
      TableId table = 0;
      IndexId index = 0;
      uint64_t lo = 0;
      uint64_t hi = 0;
      uint32_t max_rows = 0;
      if (!body.Read(&table) || !body.Read(&index) || !body.Read(&lo) ||
          !body.Read(&hi) || !body.Read(&max_rows) ||
          table >= db_.NumTables() || index >= db_.NumIndexes(table) ||
          txn_ == nullptr) {
        RespondEmpty(out, frame.opcode, Status::InvalidArgument());
        return;
      }
      const uint32_t cap = max_rows < kScanRowCap ? max_rows : kScanRowCap;
      std::vector<uint8_t> payload;
      wire::Put(&payload, uint32_t{0});  // row count, patched below
      uint32_t count = 0;
      const uint32_t size = db_.PayloadSize(table);
      Status s = Status::OK();
      if (cap > 0) {
        s = db_.ScanRange(txn_, table, index, lo, hi, nullptr,
                          [&](const void* row) {
                            wire::Put(&payload, size);
                            wire::PutBytes(&payload, row, size);
                            return ++count < cap &&
                                   payload.size() < kScanByteCap;
                          });
      }
      if (s.IsAborted()) txn_ = nullptr;
      if (!s.ok()) {
        RespondEmpty(out, frame.opcode, s);
        return;
      }
      std::memcpy(payload.data(), &count, sizeof(count));
      AppendResponse(out, frame.opcode, s, payload.data(), payload.size());
      return;
    }

    case Opcode::kCall: {
      uint32_t proc_id = 0;
      if (!body.Read(&proc_id)) {
        RespondEmpty(out, frame.opcode, Status::InvalidArgument());
        return;
      }
      if (core_.draining()) {  // a procedure is a new transaction
        core_.requests_unavailable.fetch_add(1, std::memory_order_relaxed);
        RespondEmpty(out, frame.opcode, Status::Unavailable());
        return;
      }
      if (RefuseWrite(frame, out)) return;  // procedures write
      std::vector<uint8_t> result;
      Status s =
          db_.CallProcedure(proc_id, body.rest(), body.remaining(), &result);
      if (result.size() + 2 > wire::kMaxFrameBody) {
        // A procedure result too large to frame: an oversized frame would
        // be rejected by the client's parser and kill the connection, so
        // fail just this call instead.
        RespondEmpty(out, frame.opcode, Status::Internal());
        return;
      }
      AppendResponse(out, frame.opcode, s, result.data(), result.size());
      return;
    }

    case Opcode::kResolve: {
      std::string name(reinterpret_cast<const char*>(body.rest()),
                       body.remaining());
      int64_t id = db_.FindProcedure(name);
      if (id < 0) {
        RespondEmpty(out, frame.opcode, Status::NotFound());
        return;
      }
      std::vector<uint8_t> payload;
      wire::Put(&payload, static_cast<uint32_t>(id));
      AppendResponse(out, frame.opcode, Status::OK(), payload.data(),
                     payload.size());
      return;
    }

    case Opcode::kStats: {
      std::string text = core_.StatsText();
      AppendResponse(out, frame.opcode, Status::OK(),
                     reinterpret_cast<const uint8_t*>(text.data()),
                     text.size());
      return;
    }

    case Opcode::kMetrics: {
      std::string text = core_.MetricsText();
      AppendResponse(out, frame.opcode, Status::OK(),
                     reinterpret_cast<const uint8_t*>(text.data()),
                     text.size());
      return;
    }

    case Opcode::kBye:
      // Server-to-client only; as a request it is protocol misuse, but the
      // frame itself was well-formed, so answer and keep the connection.
      RespondEmpty(out, frame.opcode, Status::InvalidArgument());
      return;

    case Opcode::kReplPromote: {
      uint8_t force = 0;
      ReplicaGate* gate = core_.replica();
      if (!body.Read(&force) || gate == nullptr) {
        // Not a follower (or garbage body): nothing to promote.
        RespondEmpty(out, frame.opcode, Status::InvalidArgument());
        return;
      }
      RespondEmpty(out, frame.opcode, gate->Promote(force != 0));
      return;
    }

    case Opcode::kReplHandshake:
    case Opcode::kReplCkptChunk:
    case Opcode::kReplSegChunk:
    case Opcode::kReplStream:
    case Opcode::kReplTail:
    case Opcode::kReplHeartbeat:
    case Opcode::kReplAck:
      // Shipper-port opcodes (src/repl/shipper.h); on a session port they
      // are protocol misuse.
      RespondEmpty(out, frame.opcode, Status::InvalidArgument());
      return;
  }
  RespondEmpty(out, frame.opcode, Status::InvalidArgument());
}

bool Session::RefuseWrite(const Frame& frame, std::vector<uint8_t>* out) {
  ReplicaGate* gate = core_.replica();
  if (gate == nullptr || gate->writable()) return false;
  // Follower: writes are refused kReadOnly but the transaction stays open —
  // the client can keep reading its snapshot and commit (a no-op commit).
  RespondEmpty(out, frame.opcode, Status::ReadOnly());
  return true;
}

}  // namespace mvstore
