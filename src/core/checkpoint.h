// Checkpointing: bound recovery time and reclaim log space.
//
// A redo-only log (log/, core/recovery.h) grows forever and replays from
// byte zero. The checkpointer scans every table at a consistent point,
// writes the rows to a versioned checkpoint file, and records two facts the
// recovery path keys off:
//
//   * snapshot_ts  — every transaction with end timestamp <= snapshot_ts is
//     fully contained in the checkpoint image; recovery replays only log
//     records with end timestamp > snapshot_ts ("checkpoint + tail replay").
//   * covered_seq  — the log was rotated (log/log_segment.h) immediately
//     before the snapshot point was chosen, so every record in a segment
//     with sequence number < covered_seq has end timestamp <= snapshot_ts.
//     Once the checkpoint file is durably published, those segments are
//     redundant and are deleted (log truncation).
//
// Consistency per engine:
//   * MV engines: the scan runs inside one read-only Snapshot transaction,
//     so the image is transactionally exact at snapshot_ts across all
//     tables; tail replay onto it needs no conflict tolerance.
//   * 1V engine: single-version storage has no snapshots. The scan reads
//     each row under its key lock (never torn, never uncommitted), with
//     snapshot_ts drawn from the commit clock *before* the scan, so the
//     image of each row is its state at snapshot_ts or later — a fuzzy
//     checkpoint. Tail replay (end timestamp > snapshot_ts, in order, with
//     idempotent conflict tolerance: re-insert overwrites, re-delete and
//     update-of-missing-row are skipped) converges every row to the logged
//     final state; see ReplayOptions::tolerant in core/recovery.h.
//
// File format (little-endian, fixed-size rows):
//   header : magic "MVCKPT01" (8B) | format u32 | table_count u32
//            | snapshot_ts u64 | covered_seq u64
//   tables : table_id u32 | payload_size u32 | row_count u64
//            | row_count * payload_size row bytes
//   footer : checksum u64 (FNV-1a 64 of all preceding bytes)
//            | magic "MVCKPTED" (8B)
// The file is written to `<path>.tmp`, fsynced, then renamed — a crash
// mid-checkpoint leaves the previous checkpoint (or none) intact.
#pragma once

#include <string>

#include "common/status.h"
#include "core/database.h"

namespace mvstore {

/// Facts recovery needs before deciding what to replay.
struct CheckpointInfo {
  Timestamp snapshot_ts = 0;
  uint64_t covered_seq = 0;
};

/// What a checkpoint pass did.
struct CheckpointStats {
  Timestamp snapshot_ts = 0;
  uint64_t covered_seq = 0;
  uint64_t tables = 0;
  uint64_t rows = 0;
  uint64_t bytes = 0;          // checkpoint file size
  uint64_t segments_deleted = 0;
};

class Checkpointer {
 public:
  struct Options {
    /// Checkpoint file path (published atomically via `<path>.tmp` rename).
    std::string path;
    /// Delete fully-covered log segments after the checkpoint is durable.
    /// Only effective with a segmented log sink; a single-file log keeps
    /// all bytes (and recovery simply skips the covered prefix by
    /// timestamp).
    bool truncate_log = true;
  };

  Checkpointer(Database& db, Options options)
      : db_(db), options_(std::move(options)) {}

  /// Take one checkpoint. Safe to call while transactions run; commits are
  /// never blocked (MV) or blocked only per-row for the duration of a key
  /// lock (1V). Concurrent Take calls on the same database serialize
  /// (Database::checkpoint_mutex).
  Status Take(CheckpointStats* stats = nullptr);

 private:
  Database& db_;
  const Options options_;
};

/// Probe `path`: OK and *info filled for a valid checkpoint, NotFound when
/// the file does not exist, Internal when it exists but is corrupt (bad
/// magic, short file, checksum mismatch).
Status InspectCheckpoint(const std::string& path, CheckpointInfo* info);

/// Load the rows of a valid checkpoint into `db`, whose tables must already
/// be created with matching ids and payload sizes and still be empty.
/// Does NOT pause the logger — the recovery driver (RecoverDatabase) owns
/// that; calling this on a live logging database would re-log every row.
Status LoadCheckpoint(Database& db, const std::string& path,
                      CheckpointInfo* info, uint64_t* rows_loaded);

}  // namespace mvstore
