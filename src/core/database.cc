#include "core/database.h"

#include <algorithm>
#include <cstdio>

namespace mvstore {

Database::Database(DatabaseOptions options)
    : options_(options), txn_handle_pool_(options_.use_slab_allocator) {
  if (options_.scheme == Scheme::kSingleVersion) {
    SVEngineOptions sv;
    sv.lock_timeout_us = options_.lock_timeout_us;
    sv.log_mode = options_.log_mode;
    sv.log_path = options_.log_path;
    sv.fsync_log = options_.fsync_log;
    sv.log_segment_bytes = options_.log_segment_bytes;
    sv.group_commit_us = options_.group_commit_us;
    sv.use_slab_allocator = options_.use_slab_allocator;
    sv.enable_latency_histograms = options_.enable_latency_histograms;
    sv.slow_txn_us = options_.slow_txn_us;
    sv_ = std::make_unique<SVEngine>(sv);
  } else {
    MVEngineOptions mv;
    mv.honor_locks = options_.honor_locks;
    mv.log_mode = options_.log_mode;
    mv.log_path = options_.log_path;
    mv.fsync_log = options_.fsync_log;
    mv.log_segment_bytes = options_.log_segment_bytes;
    mv.group_commit_us = options_.group_commit_us;
    mv.gc_interval_us = options_.gc_interval_us;
    mv.deadlock_interval_us = options_.deadlock_interval_us;
    mv.ts_block_size = options_.ts_block_size;
    mv.use_slab_allocator = options_.use_slab_allocator;
    mv.enable_latency_histograms = options_.enable_latency_histograms;
    mv.slow_txn_us = options_.slow_txn_us;
    mv_ = std::make_unique<MVEngine>(mv);
  }
  // A dead sink at construction (bad path, permissions, full disk) means
  // every commit from here on would silently lose durability; say so once,
  // loudly. Database::Open turns this into a hard error.
  if (!log_status().ok()) {
    std::fprintf(stderr,
                 "mvstore: database log sink on '%s' is broken; commits will "
                 "NOT be durable (check Database::log_status())\n",
                 options_.log_path.c_str());
  }
}

Database::~Database() = default;

TableId Database::CreateTable(TableDef def) {
  return mv_ != nullptr ? mv_->CreateTable(std::move(def))
                        : sv_->CreateTable(std::move(def));
}

uint32_t Database::PayloadSize(TableId table_id) {
  return mv_ != nullptr ? mv_->table(table_id).payload_size()
                        : sv_->table(table_id).payload_size();
}

uint32_t Database::NumTables() {
  return mv_ != nullptr ? mv_->catalog().num_tables()
                        : sv_->catalog().num_tables();
}

uint32_t Database::NumIndexes(TableId table_id) {
  return mv_ != nullptr ? mv_->table(table_id).num_indexes()
                        : sv_->table(table_id).num_indexes();
}

const std::string& Database::TableName(TableId table_id) {
  return mv_ != nullptr ? mv_->table(table_id).name()
                        : sv_->table(table_id).name();
}

uint64_t Database::PrimaryKeyOfPayload(TableId table_id, const void* payload) {
  Table& table = mv_ != nullptr ? mv_->table(table_id) : sv_->table(table_id);
  return table.IndexKeyOfPayload(0, payload);
}

Logger& Database::logger() {
  return mv_ != nullptr ? mv_->logger() : sv_->logger();
}

Timestamp Database::LastCommitTimestamp() {
  return mv_ != nullptr ? mv_->ts_gen().Current() : sv_->commit_clock();
}

void Database::AdvanceCommitTimestamp(Timestamp floor) {
  if (mv_ != nullptr) {
    mv_->ts_gen().AdvanceTo(floor);
  } else {
    sv_->AdvanceCommitClock(floor);
  }
}

Txn* Database::Begin(IsolationLevel isolation, bool read_only) {
  if (mv_ != nullptr) {
    bool pessimistic = options_.scheme == Scheme::kMultiVersionLocking;
    return txn_handle_pool_.Acquire(
        mv_->Begin(isolation, pessimistic, read_only), nullptr, isolation);
  }
  return txn_handle_pool_.Acquire(nullptr, sv_->Begin(isolation, read_only),
                                  isolation);
}

void Database::EnterReadOnlyMode(const char* why) {
  bool expected = false;
  if (!read_only_.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
    return;  // already degraded; first transition wins
  }
  stats().Add(Stat::kReadOnlyTransitions);
  std::fprintf(stderr,
               "mvstore: entering READ-ONLY mode (%s); writes are refused "
               "with kReadOnly until restart + recovery (see "
               "docs/RELIABILITY.md)\n",
               why);
}

bool Database::WriteAllowed(bool check_sink) {
  if (MVSTORE_UNLIKELY(read_only_.load(std::memory_order_acquire))) {
    stats().Add(Stat::kWritesRefusedReadOnly);
    return false;
  }
  if (check_sink && options_.log_mode != LogMode::kDisabled &&
      MVSTORE_UNLIKELY(!log_status().ok())) {
    EnterReadOnlyMode("log sink reported failure");
    stats().Add(Stat::kWritesRefusedReadOnly);
    return false;
  }
  return true;
}

Status Database::Commit(Txn* txn) {
  const bool has_writes = txn->mv != nullptr ? !txn->mv->write_set.empty()
                                             : !txn->sv->undo.empty();
  if (has_writes && MVSTORE_UNLIKELY(!WriteAllowed(/*check_sink=*/true))) {
    // Refuse before anything becomes visible or reaches the log: roll the
    // transaction back and report the degradation instead of acknowledging
    // a commit that could never be durable.
    if (txn->mv != nullptr) {
      mv_->Abort(txn->mv);
    } else {
      sv_->Abort(txn->sv);
    }
    ReleaseTxn(txn);
    return Status::ReadOnly();
  }
  Status s = txn->mv != nullptr ? mv_->Commit(txn->mv) : sv_->Commit(txn->sv);
  ReleaseTxn(txn);
  if (has_writes && options_.log_mode != LogMode::kDisabled &&
      MVSTORE_UNLIKELY(!log_status().ok())) {
    EnterReadOnlyMode("log write/fsync failure during commit");
    if (s.ok() && options_.log_mode == LogMode::kSync) {
      // The engine committed in memory but the synchronous flush this ack
      // would have vouched for failed: the outcome is NOT durable. Report
      // kReadOnly so the caller treats the transaction as failed (the
      // commit-durability contract table in docs/RELIABILITY.md).
      return Status::ReadOnly();
    }
  }
  return s;
}

void Database::Abort(Txn* txn) {
  if (txn->mv != nullptr) {
    mv_->Abort(txn->mv);
  } else {
    sv_->Abort(txn->sv);
  }
  ReleaseTxn(txn);
}

Status Database::Read(Txn* txn, TableId table_id, IndexId index_id,
                      uint64_t key, void* out) {
  obs::LatencyHistograms& h = hists();
  const uint64_t t_start = h.enabled() ? obs::NowTicks() : 0;
  Status s = txn->mv != nullptr
                 ? mv_->Read(txn->mv, table_id, index_id, key, out)
                 : sv_->Read(txn->sv, table_id, index_id, key, out);
  if (t_start != 0) h.RecordSince(obs::Hist::kReadLatency, t_start);
  if (s.IsAborted()) ReleaseTxn(txn);
  return s;
}

Status Database::Scan(Txn* txn, TableId table_id, IndexId index_id,
                      uint64_t key,
                      const std::function<bool(const void*)>& residual,
                      const std::function<bool(const void*)>& consumer) {
  obs::LatencyHistograms& h = hists();
  const uint64_t t_start = h.enabled() ? obs::NowTicks() : 0;
  Status s =
      txn->mv != nullptr
          ? mv_->Scan(txn->mv, table_id, index_id, key, residual, consumer)
          : sv_->Scan(txn->sv, table_id, index_id, key, residual, consumer);
  if (t_start != 0) h.RecordSince(obs::Hist::kScanLatency, t_start);
  if (s.IsAborted()) ReleaseTxn(txn);
  return s;
}

Status Database::ScanRange(Txn* txn, TableId table_id, IndexId index_id,
                           uint64_t lo, uint64_t hi,
                           const std::function<bool(const void*)>& residual,
                           const std::function<bool(const void*)>& consumer) {
  obs::LatencyHistograms& h = hists();
  const uint64_t t_start = h.enabled() ? obs::NowTicks() : 0;
  Status s = txn->mv != nullptr
                 ? mv_->ScanRange(txn->mv, table_id, index_id, lo, hi,
                                  residual, consumer)
                 : sv_->ScanRange(txn->sv, table_id, index_id, lo, hi,
                                  residual, consumer);
  if (t_start != 0) h.RecordSince(obs::Hist::kScanLatency, t_start);
  if (s.IsAborted()) ReleaseTxn(txn);
  return s;
}

Status Database::ScanTable(Txn* txn, TableId table_id,
                           const std::function<bool(const void*)>& consumer) {
  obs::LatencyHistograms& h = hists();
  const uint64_t t_start = h.enabled() ? obs::NowTicks() : 0;
  Status s = txn->mv != nullptr
                 ? mv_->ScanTable(txn->mv, table_id, consumer)
                 : sv_->ScanTable(txn->sv, table_id, consumer);
  if (t_start != 0) h.RecordSince(obs::Hist::kScanLatency, t_start);
  if (s.IsAborted()) ReleaseTxn(txn);
  return s;
}

Status Database::Insert(Txn* txn, TableId table_id, const void* payload) {
  // Read-only refusal does not abort: the transaction may keep reading and
  // commit its read-only remainder.
  if (MVSTORE_UNLIKELY(!WriteAllowed(/*check_sink=*/false))) {
    return Status::ReadOnly();
  }
  Status s = txn->mv != nullptr ? mv_->Insert(txn->mv, table_id, payload)
                                : sv_->Insert(txn->sv, table_id, payload);
  if (s.IsAborted()) ReleaseTxn(txn);
  return s;
}

Status Database::Update(Txn* txn, TableId table_id, IndexId index_id,
                        uint64_t key,
                        const std::function<void(void*)>& mutator) {
  if (MVSTORE_UNLIKELY(!WriteAllowed(/*check_sink=*/false))) {
    return Status::ReadOnly();
  }
  Status s =
      txn->mv != nullptr
          ? mv_->Update(txn->mv, table_id, index_id, key, mutator)
          : sv_->Update(txn->sv, table_id, index_id, key, mutator);
  if (s.IsAborted()) ReleaseTxn(txn);
  return s;
}

Status Database::Delete(Txn* txn, TableId table_id, IndexId index_id,
                        uint64_t key) {
  if (MVSTORE_UNLIKELY(!WriteAllowed(/*check_sink=*/false))) {
    return Status::ReadOnly();
  }
  Status s = txn->mv != nullptr
                 ? mv_->Delete(txn->mv, table_id, index_id, key)
                 : sv_->Delete(txn->sv, table_id, index_id, key);
  if (s.IsAborted()) ReleaseTxn(txn);
  return s;
}

Status Database::RunTransaction(IsolationLevel isolation,
                                const std::function<Status(Txn*)>& body,
                                uint32_t max_retries) {
  Status s;
  for (uint32_t attempt = 0; attempt <= max_retries; ++attempt) {
    Txn* txn = Begin(isolation);
    s = body(txn);
    if (s.IsAborted()) continue;  // already rolled back; retry
    if (!s.ok()) {
      Abort(txn);
      return s;
    }
    s = Commit(txn);
    if (!s.IsAborted()) return s;
  }
  return s;
}

StatsCollector& Database::stats() {
  return mv_ != nullptr ? mv_->stats() : sv_->stats();
}

obs::LatencyHistograms& Database::hists() {
  return mv_ != nullptr ? mv_->hists() : sv_->hists();
}

std::vector<std::pair<std::string, uint64_t>> Database::CounterSnapshot() {
  StatsCollector& s = stats();
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(static_cast<uint32_t>(Stat::kNumStats));
  for (uint32_t i = 0; i < static_cast<uint32_t>(Stat::kNumStats); ++i) {
    out.emplace_back(StatName(static_cast<Stat>(i)),
                     s.Get(static_cast<Stat>(i)));
  }
  // Sorted by name (the stable-name scrape contract, docs/API.md): scrapers
  // diff consecutive snapshots line-by-line.
  std::sort(out.begin(), out.end());
  return out;
}

uint32_t Database::RegisterProcedure(const std::string& name,
                                     ProcedureFn fn) {
  WriterLock lock(procedures_mutex_);
  for (uint32_t i = 0; i < procedures_.size(); ++i) {
    if (procedures_[i].first == name) {
      procedures_[i].second = std::move(fn);
      return i;
    }
  }
  procedures_.emplace_back(name, std::move(fn));
  return static_cast<uint32_t>(procedures_.size() - 1);
}

int64_t Database::FindProcedure(const std::string& name) {
  ReaderLock lock(procedures_mutex_);
  for (uint32_t i = 0; i < procedures_.size(); ++i) {
    if (procedures_[i].first == name) return i;
  }
  return -1;
}

uint32_t Database::NumProcedures() {
  ReaderLock lock(procedures_mutex_);
  return static_cast<uint32_t>(procedures_.size());
}

std::string Database::ProcedureName(uint32_t id) {
  ReaderLock lock(procedures_mutex_);
  return id < procedures_.size() ? procedures_[id].first : std::string();
}

Status Database::CallProcedure(uint32_t id, const uint8_t* arg,
                               size_t arg_len, std::vector<uint8_t>* result) {
  ReaderLock lock(procedures_mutex_);
  if (id >= procedures_.size()) return Status::InvalidArgument();
  return procedures_[id].second(*this, arg, arg_len, result);
}

}  // namespace mvstore
