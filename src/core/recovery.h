// Crash recovery: rebuild database contents by replaying the redo log.
//
// The paper's engines log redo-only commit records ordered by end timestamp
// (Section 3.2: "Commit ordering is determined by transaction end
// timestamps, which are included in the log records, so multiple log streams
// on different devices can be used"). Recovery therefore:
//
//   1. parses all commit records (possibly from several streams),
//   2. sorts them by end timestamp,
//   3. re-applies each operation against a freshly created database with
//      the same table definitions.
//
// Updates are byte-range diffs keyed by the row's primary key; inserts carry
// the full payload; deletes carry the key.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/database.h"
#include "log/log_record.h"

namespace mvstore {

/// Parse every commit record in `bytes`. Returns false on a malformed tail
/// (records parsed so far are kept).
bool ParseAllRecords(const std::vector<uint8_t>& bytes,
                     std::vector<ParsedLogRecord>* records);

/// Read a log file produced by FileLogSink into memory. Empty result if the
/// file cannot be read.
std::vector<uint8_t> ReadLogFile(const std::string& path);

/// Replay `records` (from one or more log streams) into `db`. Table IDs in
/// the records must match tables already created in `db` with identical
/// payload sizes. Records are applied in end-timestamp order.
///
/// Returns the first non-recoverable error, or OK. Individual NotFound /
/// AlreadyExists conflicts are treated as corruption and reported as
/// Internal.
Status ReplayRecords(Database& db, std::vector<ParsedLogRecord> records);

/// Convenience: ReadLogFile + ParseAllRecords + ReplayRecords.
Status RecoverFromLogFile(Database& db, const std::string& path);

}  // namespace mvstore
