// Crash recovery: rebuild database contents from checkpoint + redo log.
//
// The paper's engines log redo-only commit records ordered by end timestamp
// (Section 3.2: "Commit ordering is determined by transaction end
// timestamps, which are included in the log records, so multiple log streams
// on different devices can be used"). Recovery therefore:
//
//   1. loads the latest checkpoint, if any (core/checkpoint.h) — it covers
//      every transaction with end timestamp <= its snapshot_ts;
//   2. parses the log tail — all segments (log/log_segment.h) or the single
//      log file — accepting a torn final batch: the valid prefix is kept,
//      the torn bytes are truncated off the file (so a continued log stays
//      parseable), counted, and reported;
//   3. replays records with end timestamp > snapshot_ts in end-timestamp
//      order, optionally partitioned by primary key across worker threads
//      (the paper's multiple-log-streams observation: per-key order is all
//      that matters, so disjoint key sets replay concurrently);
//   4. advances the engine's commit clock past every replayed timestamp, so
//      post-recovery commits extend the log consistently.
//
// Updates are byte-range diffs keyed by the row's primary key; inserts carry
// the full payload; deletes carry the key.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/database.h"
#include "log/log_record.h"

namespace mvstore {

/// How ReplayRecords applies a record stream.
struct ReplayOptions {
  /// Worker threads; ops partition by hash(table, primary key), each worker
  /// applies its keys in end-timestamp order. 1 = serial.
  uint32_t threads = 1;
  /// Skip records with end_ts <= this (they are inside the checkpoint).
  Timestamp skip_through_ts = 0;
  /// Tolerate idempotent conflicts: an insert whose key exists overwrites
  /// the payload, a delete of a missing key and an update of a missing row
  /// are skipped (counted in RecoveryReport::idempotent_applies). Required
  /// when replaying onto a fuzzy 1V checkpoint whose rows may already
  /// include part of the tail; without a checkpoint, leave strict so real
  /// corruption surfaces as Internal.
  bool tolerant = false;
};

/// What a recovery pass found and did.
struct RecoveryReport {
  bool checkpoint_loaded = false;
  Timestamp checkpoint_ts = 0;
  uint64_t checkpoint_rows = 0;
  uint64_t segments_scanned = 0;
  uint64_t torn_tails = 0;          // files whose tail failed to parse
  uint64_t torn_bytes_dropped = 0;  // bytes truncated off those tails
  uint64_t records_parsed = 0;
  uint64_t records_replayed = 0;
  uint64_t records_skipped = 0;     // covered by the checkpoint
  uint64_t idempotent_applies = 0;  // tolerant-mode conflict skips
  Timestamp max_timestamp = 0;      // largest end_ts seen anywhere
};

/// Parse every commit record in `bytes`, starting at offset `start` (a
/// segment's payload begins after its header). Returns false on a malformed
/// tail; records parsed so far are kept and *valid_bytes (if non-null) is
/// set to the absolute offset of the parseable prefix's end — the caller's
/// truncation point.
bool ParseAllRecords(const std::vector<uint8_t>& bytes,
                     std::vector<ParsedLogRecord>* records,
                     size_t* valid_bytes = nullptr, size_t start = 0);

/// Read a file into memory (streamed; files > 2 GiB are fine). Empty result
/// if the file cannot be read; *status (if non-null) distinguishes NotFound
/// (no such file) from Internal (a read error mid-file — the returned
/// prefix is short, and treating it as a torn tail would truncate real
/// data, so recovery must fail instead).
std::vector<uint8_t> ReadLogFile(const std::string& path,
                                 Status* status = nullptr);

/// Replay `records` into `db`. Table IDs in the records must match tables
/// already created in `db` with identical payload sizes. Records are applied
/// in end-timestamp order (per key, when parallel).
///
/// Returns the first non-recoverable error, or OK. In strict mode
/// (tolerant=false) NotFound / AlreadyExists conflicts are treated as
/// corruption and reported as Internal.
Status ReplayRecords(Database& db, std::vector<ParsedLogRecord> records,
                     const ReplayOptions& options,
                     RecoveryReport* report = nullptr);

/// Back-compat convenience: strict, serial replay.
Status ReplayRecords(Database& db, std::vector<ParsedLogRecord> records);

/// Convenience for single-file logs: ReadLogFile + ParseAllRecords +
/// strict serial ReplayRecords. A torn tail is tolerated: the valid prefix
/// replays, the file is truncated to it, and the event is counted
/// (Stat::kRecoveryTornTails) and logged to stderr.
Status RecoverFromLogFile(Database& db, const std::string& path);

/// Full recovery pass configuration (Database::Open wires this from
/// DatabaseOptions).
struct RecoveryOptions {
  /// Log location: segment prefix when `log_segment_bytes` > 0, single file
  /// otherwise (mirrors DatabaseOptions).
  std::string log_path;
  uint64_t log_segment_bytes = 0;
  /// Optional checkpoint file; missing file = full-log replay.
  std::string checkpoint_path;
  uint32_t threads = 1;
  /// Physically truncate torn tails off log files so a continued log stays
  /// parseable. Turn off only for read-only forensics.
  bool truncate_torn_tail = true;
};

/// Verify that the local segment set can honor a checkpoint that claims to
/// cover everything below `covered_seq`: an unbroken run of segment files
/// must start exactly at `covered_seq` (lower-numbered leftovers are
/// exempt — they are covered). Internal, with the gap named on stderr,
/// when it cannot. RecoverDatabase runs this BEFORE loading checkpoint
/// rows, so a checkpoint whose tail segments are missing (a shipped
/// checkpoint paired with someone else's log, a deleted middle segment)
/// is refused before it mutates the database; the replication follower
/// (src/repl/replica.h) runs the same check against its mirrored segment
/// set before declaring itself caught up.
Status ValidateSegmentCoverage(const std::string& log_path,
                               uint64_t covered_seq);

/// Checkpoint-load + tail-replay into `db` (tables must exist and be
/// empty). Pauses the logger for the duration — replayed commits are
/// already in the log and must not be re-appended — and advances the commit
/// clock past every recovered timestamp before returning.
Status RecoverDatabase(Database& db, const RecoveryOptions& options,
                       RecoveryReport* report = nullptr);

}  // namespace mvstore
