#include "core/recovery.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace mvstore {

bool ParseAllRecords(const std::vector<uint8_t>& bytes,
                     std::vector<ParsedLogRecord>* records) {
  size_t pos = 0;
  while (pos < bytes.size()) {
    ParsedLogRecord record;
    if (!ParseLogRecord(bytes, pos, &record)) return false;
    records->push_back(std::move(record));
  }
  return true;
}

std::vector<uint8_t> ReadLogFile(const std::string& path) {
  std::vector<uint8_t> bytes;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return bytes;
  std::fseek(file, 0, SEEK_END);
  long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  if (size > 0) {
    bytes.resize(static_cast<size_t>(size));
    size_t read = std::fread(bytes.data(), 1, bytes.size(), file);
    bytes.resize(read);
  }
  std::fclose(file);
  return bytes;
}

Status ReplayRecords(Database& db, std::vector<ParsedLogRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const ParsedLogRecord& a, const ParsedLogRecord& b) {
              return a.end_ts < b.end_ts;
            });
  for (const ParsedLogRecord& record : records) {
    Txn* txn = db.Begin(IsolationLevel::kReadCommitted);
    for (const ParsedLogOp& op : record.ops) {
      Status s;
      switch (op.op) {
        case LogOp::kInsert: {
          if (op.bytes.size() != db.PayloadSize(op.table)) {
            db.Abort(txn);
            return Status::Internal();
          }
          s = db.Insert(txn, op.table, op.bytes.data());
          break;
        }
        case LogOp::kUpdate: {
          s = db.Update(txn, op.table, /*index=*/0, op.key, [&](void* p) {
            std::memcpy(static_cast<char*>(p) + op.offset, op.bytes.data(),
                        op.bytes.size());
          });
          break;
        }
        case LogOp::kDelete: {
          s = db.Delete(txn, op.table, /*index=*/0, op.key);
          break;
        }
      }
      if (s.IsAborted()) return Status::Internal();  // replay is single-threaded
      if (!s.ok()) {
        db.Abort(txn);
        return Status::Internal();
      }
    }
    Status c = db.Commit(txn);
    if (!c.ok()) return Status::Internal();
  }
  return Status::OK();
}

Status RecoverFromLogFile(Database& db, const std::string& path) {
  std::vector<uint8_t> bytes = ReadLogFile(path);
  std::vector<ParsedLogRecord> records;
  if (!ParseAllRecords(bytes, &records)) return Status::Internal();
  return ReplayRecords(db, std::move(records));
}

}  // namespace mvstore
