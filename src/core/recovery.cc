#include "core/recovery.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/failpoint.h"
#include "core/checkpoint.h"
#include "log/log_segment.h"

namespace mvstore {

bool ParseAllRecords(const std::vector<uint8_t>& bytes,
                     std::vector<ParsedLogRecord>* records,
                     size_t* valid_bytes, size_t start) {
  size_t pos = start;
  size_t last_good = start;
  while (pos < bytes.size()) {
    ParsedLogRecord record;
    if (!ParseLogRecord(bytes, pos, &record)) {
      if (valid_bytes != nullptr) *valid_bytes = last_good;
      return false;
    }
    records->push_back(std::move(record));
    last_good = pos;
  }
  if (valid_bytes != nullptr) *valid_bytes = last_good;
  return true;
}

std::vector<uint8_t> ReadLogFile(const std::string& path, Status* status) {
  std::vector<uint8_t> bytes;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (status != nullptr) *status = Status::NotFound();
    return bytes;
  }
  // Size probe with a 64-bit offset (plain ftell returns long, which
  // truncates >2 GiB logs on LLP64 platforms); reading itself is streamed,
  // so a failed probe only costs reallocation.
#if defined(_WIN32)
  if (_fseeki64(file, 0, SEEK_END) == 0) {
    long long size = _ftelli64(file);
    if (size > 0) bytes.reserve(static_cast<size_t>(size));
    _fseeki64(file, 0, SEEK_SET);
  }
#else
  if (fseeko(file, 0, SEEK_END) == 0) {
    off_t size = ftello(file);
    if (size > 0) bytes.reserve(static_cast<size_t>(size));
    fseeko(file, 0, SEEK_SET);
  }
#endif
  uint8_t chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  // A mid-file read error leaves a short buffer that would otherwise be
  // indistinguishable from a torn tail — and torn tails get truncated.
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (status != nullptr) {
    *status = read_error ? Status::Internal() : Status::OK();
  }
  return bytes;
}

namespace {

/// Partition hash: ops on the same (table, primary key) must land on the
/// same replay worker so their end-timestamp order is preserved.
uint64_t PartitionOf(uint64_t table, uint64_t key) {
  uint64_t x = key * 0x9E3779B97F4A7C15ull ^ (table * 0xBF58476D1CE4E5B9ull);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  return x;
}

/// Apply ops [begin, end) inside one transaction. Returns kAborted with the
/// transaction already rolled back (caller retries the whole batch — the
/// rollback undid every op), or Internal on corruption, or OK.
Status ApplyBatch(Database& db, const std::vector<const ParsedLogOp*>& ops,
                  size_t begin, size_t end, bool tolerant,
                  uint64_t* idempotent) {
  Txn* txn = db.Begin(IsolationLevel::kReadCommitted);
  for (size_t i = begin; i < end; ++i) {
    const ParsedLogOp& op = *ops[i];
    Status s;
    switch (op.op) {
      case LogOp::kInsert: {
        s = db.Insert(txn, op.table, op.bytes.data());
        if (s.IsAlreadyExists() && tolerant) {
          // The row is already there (fuzzy checkpoint captured this insert
          // or a later state); converge by overwriting the payload.
          const uint64_t key =
              db.PrimaryKeyOfPayload(op.table, op.bytes.data());
          s = db.Update(txn, op.table, /*index=*/0, key, [&](void* p) {
            std::memcpy(p, op.bytes.data(), op.bytes.size());
          });
          ++*idempotent;
        }
        break;
      }
      case LogOp::kUpdate: {
        s = db.Update(txn, op.table, /*index=*/0, op.key, [&](void* p) {
          std::memcpy(static_cast<char*>(p) + op.offset, op.bytes.data(),
                      op.bytes.size());
        });
        if (s.IsNotFound() && tolerant) {
          // Row missing: a later delete (still ahead in this worker's
          // stream) removed it before the fuzzy checkpoint captured it.
          s = Status::OK();
          ++*idempotent;
        }
        break;
      }
      case LogOp::kDelete: {
        s = db.Delete(txn, op.table, /*index=*/0, op.key);
        if (s.IsNotFound() && tolerant) {
          s = Status::OK();
          ++*idempotent;
        }
        break;
      }
    }
    if (s.IsAborted()) return s;
    if (!s.ok()) {
      db.Abort(txn);
      return Status::Internal();
    }
  }
  Status c = db.Commit(txn);
  if (c.ok() || c.IsAborted()) return c;
  return Status::Internal();
}

/// One worker's stream: batched transactions, retrying aborted batches
/// (cross-worker lock-table collisions under 1V, never data conflicts —
/// key sets are disjoint by partition). A batch holds its key locks until
/// commit, so wide batches from several workers can deadlock through
/// lock-table hash collisions; aborted batches shrink geometrically down to
/// single-op transactions, which cannot hold more than one point lock and
/// therefore always make progress.
Status ApplyOps(Database& db, const std::vector<const ParsedLogOp*>& ops,
                bool tolerant, uint64_t* idempotent_out,
                std::atomic<bool>* failed) {
  constexpr size_t kBatch = 128;
  constexpr int kMaxSingleRetries = 1000;
  uint64_t idempotent = 0;
  size_t i = 0;
  size_t batch = kBatch;
  int single_retries = 0;
  while (i < ops.size()) {
    if (failed != nullptr && failed->load(std::memory_order_relaxed)) break;
    const size_t end = std::min(i + batch, ops.size());
    uint64_t batch_idempotent = 0;
    Status s = ApplyBatch(db, ops, i, end, tolerant, &batch_idempotent);
    if (s.ok()) {
      idempotent += batch_idempotent;
      i = end;
      batch = std::min(batch * 2, kBatch);
      single_retries = 0;
      continue;
    }
    if (s.IsAborted()) {
      if (end - i > 1) {
        batch = (end - i) / 2;  // contention: try a narrower lock footprint
        continue;
      }
      if (++single_retries <= kMaxSingleRetries) continue;
      s = Status::Internal();  // a single op aborting forever is not contention
    }
    if (failed != nullptr) failed->store(true, std::memory_order_relaxed);
    return s;
  }
  *idempotent_out = idempotent;
  return Status::OK();
}

}  // namespace

Status ReplayRecords(Database& db, std::vector<ParsedLogRecord> records,
                     const ReplayOptions& options, RecoveryReport* report) {
  obs::LatencyHistograms& hists = db.hists();
  const uint64_t t_start = hists.enabled() ? obs::NowTicks() : 0;
  // End-timestamp order is the paper's commit order; every worker stream
  // below preserves it per key.
  std::stable_sort(records.begin(), records.end(),
                   [](const ParsedLogRecord& a, const ParsedLogRecord& b) {
                     return a.end_ts < b.end_ts;
                   });

  const uint32_t threads = std::max<uint32_t>(1, options.threads);
  std::vector<std::vector<const ParsedLogOp*>> streams(threads);
  uint64_t replayed = 0;
  uint64_t skipped = 0;
  Timestamp max_ts = 0;
  for (const ParsedLogRecord& record : records) {
    max_ts = std::max(max_ts, record.end_ts);
    if (record.end_ts <= options.skip_through_ts) {
      ++skipped;
      continue;
    }
    for (const ParsedLogOp& op : record.ops) {
      if (op.table >= db.NumTables()) return Status::Internal();
      uint64_t key;
      if (op.op == LogOp::kInsert) {
        // Validate before running the extractor over the payload bytes.
        if (op.bytes.size() != db.PayloadSize(op.table)) {
          return Status::Internal();
        }
        key = db.PrimaryKeyOfPayload(op.table, op.bytes.data());
      } else {
        if (op.op == LogOp::kUpdate &&
            op.offset + op.bytes.size() > db.PayloadSize(op.table)) {
          return Status::Internal();
        }
        key = op.key;
      }
      const size_t w =
          threads == 1 ? 0 : PartitionOf(op.table, key) % threads;
      streams[w].push_back(&op);
    }
    ++replayed;
  }

  Status status;
  std::vector<uint64_t> idempotent(threads, 0);
  if (threads == 1) {
    status = ApplyOps(db, streams[0], options.tolerant, &idempotent[0],
                      nullptr);
  } else {
    std::atomic<bool> failed{false};
    std::vector<Status> worker_status(threads);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        worker_status[t] = ApplyOps(db, streams[t], options.tolerant,
                                    &idempotent[t], &failed);
      });
    }
    for (auto& th : pool) th.join();
    for (const Status& s : worker_status) {
      if (!s.ok()) {
        status = s;
        break;
      }
    }
  }
  if (!status.ok()) return status;

  uint64_t idempotent_total = 0;
  for (uint64_t v : idempotent) idempotent_total += v;
  db.stats().Add(Stat::kRecoveryRecordsReplayed, replayed);
  if (skipped > 0) db.stats().Add(Stat::kRecoveryRecordsSkipped, skipped);
  if (idempotent_total > 0) {
    db.stats().Add(Stat::kRecoveryIdempotentApplies, idempotent_total);
  }
  if (report != nullptr) {
    report->records_replayed += replayed;
    report->records_skipped += skipped;
    report->idempotent_applies += idempotent_total;
    report->max_timestamp = std::max(report->max_timestamp, max_ts);
  }
  if (t_start != 0) hists.RecordSince(obs::Hist::kRecoveryReplay, t_start);
  return Status::OK();
}

Status ReplayRecords(Database& db, std::vector<ParsedLogRecord> records) {
  return ReplayRecords(db, std::move(records), ReplayOptions{}, nullptr);
}

namespace {

/// Resume-appends guard: recovery replays through the normal commit path,
/// whose records are already in the log.
struct LoggerPauseGuard {
  explicit LoggerPauseGuard(Logger& logger) : logger(logger) {
    logger.PauseForReplay();
  }
  ~LoggerPauseGuard() { logger.ResumeAfterReplay(); }
  Logger& logger;
};

void NoteTornTail(Database& db, const std::string& path, uint64_t dropped,
                  size_t records_kept, RecoveryReport* report) {
  std::fprintf(stderr,
               "mvstore: torn tail in log '%s': keeping %zu records, "
               "dropping %llu trailing bytes\n",
               path.c_str(), records_kept,
               static_cast<unsigned long long>(dropped));
  db.stats().Add(Stat::kRecoveryTornTails);
  db.stats().Add(Stat::kRecoveryTornBytesDropped, dropped);
  if (report != nullptr) {
    ++report->torn_tails;
    report->torn_bytes_dropped += dropped;
  }
}

/// Cut the torn bytes off `path`, leaving `keep` bytes. A truncation that
/// does not take effect must fail recovery: the reopened sink would append
/// new records after the garbage, and the NEXT recovery would drop them all
/// as one giant torn tail.
Status TruncateTornTail(const std::string& path, uint64_t keep) {
  std::error_code ec;
  std::filesystem::resize_file(path, keep, ec);
  if (ec) {
    std::fprintf(stderr,
                 "mvstore: cannot truncate torn tail of '%s': %s\n",
                 path.c_str(), ec.message().c_str());
    return Status::Internal();
  }
  return Status::OK();
}

/// The shared continuity rule (see ValidateSegmentCoverage in recovery.h):
/// segments at or above `first_required` must form an unbroken run starting
/// exactly there. Segments *below* it are checkpoint-covered leftovers
/// (crash before truncation finished, or a sink that recreated low numbers
/// after segment loss) and carry no needed records, so they are exempt.
Status CheckSegmentContinuity(const std::string& log_path,
                              const std::vector<logseg::SegmentFile>& segments,
                              uint64_t first_required) {
  size_t begin_idx = 0;
  while (begin_idx < segments.size() &&
         segments[begin_idx].seq < first_required) {
    ++begin_idx;
  }
  if (begin_idx == segments.size()) {
    if (first_required > 1) {
      std::fprintf(stderr,
                   "mvstore: checkpoint for '%s' covers through segment %llu "
                   "but no segment at or above it survives; refusing "
                   "recovery that would silently drop the log tail\n",
                   log_path.c_str(),
                   static_cast<unsigned long long>(first_required));
      return Status::Internal();
    }
    return Status::OK();  // no log yet: nothing to replay
  }
  if (segments[begin_idx].seq != first_required) {
    std::fprintf(stderr,
                 "mvstore: log '%s' starts at segment %llu but nothing "
                 "covers segments %llu..%llu (missing checkpoint or deleted "
                 "segments); refusing partial recovery\n",
                 log_path.c_str(),
                 static_cast<unsigned long long>(segments[begin_idx].seq),
                 static_cast<unsigned long long>(first_required),
                 static_cast<unsigned long long>(segments[begin_idx].seq - 1));
    return Status::Internal();
  }
  for (size_t i = begin_idx + 1; i < segments.size(); ++i) {
    if (segments[i].seq != segments[i - 1].seq + 1) {
      std::fprintf(stderr,
                   "mvstore: log '%s' has a gap: segment %llu is followed "
                   "by %llu; refusing partial recovery\n",
                   log_path.c_str(),
                   static_cast<unsigned long long>(segments[i - 1].seq),
                   static_cast<unsigned long long>(segments[i].seq));
      return Status::Internal();
    }
  }
  return Status::OK();
}

/// Parse every segment of a segmented log in sequence order. Only the
/// highest-numbered segment may be torn (rotation closes a segment before
/// opening its successor); a parse failure anywhere else is corruption.
///
/// The sequence numbers must also account for every record: a gap between
/// segments, or a first segment that neither seq 1 nor a loaded checkpoint
/// explains, means records were lost (a deleted middle segment, or a
/// checkpoint that truncated the log and then went missing) — recovering
/// the remainder silently would present partial data as a clean database.
Status GatherSegmentRecords(Database& db, const RecoveryOptions& options,
                            bool have_checkpoint, uint64_t covered_seq,
                            std::vector<ParsedLogRecord>* records,
                            RecoveryReport* report) {
  const std::vector<logseg::SegmentFile> segments =
      logseg::ListSegments(options.log_path);
  const uint64_t first_required =
      have_checkpoint && covered_seq > 0 ? covered_seq : 1;
  Status continuity =
      CheckSegmentContinuity(options.log_path, segments, first_required);
  if (!continuity.ok()) return continuity;
  for (size_t i = 0; i < segments.size(); ++i) {
    const logseg::SegmentFile& seg = segments[i];
    const bool last = i + 1 == segments.size();
    if (seg.seq < covered_seq) continue;  // wholly inside the checkpoint
    if (seg.size < logseg::kHeaderSize) {
      // Crash between file creation and the header write: provably empty,
      // but only ever legal at the tail.
      if (!last) return Status::Internal();
      if (seg.size > 0) {
        NoteTornTail(db, seg.path, seg.size, 0, report);
        if (options.truncate_torn_tail) {
          Status t = TruncateTornTail(seg.path, 0);
          if (!t.ok()) return t;
        }
      }
      continue;
    }
    // Injected per-segment read failure (or crash mid-recovery: the next
    // recovery must start over from the same durable state).
    if (MVSTORE_FAILPOINT("recovery.segment.scan")) return Status::Internal();
    Status read_status;
    std::vector<uint8_t> bytes = ReadLogFile(seg.path, &read_status);
    if (!read_status.ok()) return Status::Internal();
    if (bytes.size() < logseg::kHeaderSize ||
        std::memcmp(bytes.data(), logseg::kSegmentMagic,
                    sizeof(logseg::kSegmentMagic)) != 0) {
      return Status::Internal();
    }
    uint64_t embedded_seq = 0;
    std::memcpy(&embedded_seq, bytes.data() + sizeof(logseg::kSegmentMagic),
                sizeof(embedded_seq));
    if (embedded_seq != seg.seq) return Status::Internal();
    const size_t before = records->size();
    size_t valid = 0;
    if (!ParseAllRecords(bytes, records, &valid, logseg::kHeaderSize)) {
      if (!last) return Status::Internal();
      NoteTornTail(db, seg.path, bytes.size() - valid,
                   records->size() - before, report);
      if (options.truncate_torn_tail) {
        Status t = TruncateTornTail(seg.path, valid);
        if (!t.ok()) return t;
      }
    }
    if (report != nullptr) ++report->segments_scanned;
  }
  return Status::OK();
}

Status GatherSingleFileRecords(Database& db, const RecoveryOptions& options,
                               std::vector<ParsedLogRecord>* records,
                               RecoveryReport* report) {
  if (MVSTORE_FAILPOINT("recovery.segment.scan")) return Status::Internal();
  Status read_status;
  std::vector<uint8_t> bytes = ReadLogFile(options.log_path, &read_status);
  if (read_status.code() == Status::Code::kInternal) {
    return read_status;  // short read, not a torn tail; NotFound is fine
  }
  size_t valid = 0;
  if (!ParseAllRecords(bytes, records, &valid)) {
    NoteTornTail(db, options.log_path, bytes.size() - valid, records->size(),
                 report);
    if (options.truncate_torn_tail) {
      Status t = TruncateTornTail(options.log_path, valid);
      if (!t.ok()) return t;
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateSegmentCoverage(const std::string& log_path,
                               uint64_t covered_seq) {
  return CheckSegmentContinuity(log_path, logseg::ListSegments(log_path),
                                covered_seq > 0 ? covered_seq : 1);
}

Status RecoverDatabase(Database& db, const RecoveryOptions& options,
                       RecoveryReport* report) {
  RecoveryReport local;
  LoggerPauseGuard pause(db.logger());

  // 1. Checkpoint image, if one exists. Probe the header and validate its
  //    coverage claim against the local segment set BEFORE loading a single
  //    row: covered_seq arrives inside the checkpoint file (possibly shipped
  //    from another machine), and a checkpoint paired with a log whose
  //    covering segments are missing must be refused while the tables are
  //    still empty — not after half its rows are in.
  Timestamp skip_through_ts = 0;
  uint64_t covered_seq = 0;
  if (!options.checkpoint_path.empty()) {
    CheckpointInfo probe;
    Status ps = InspectCheckpoint(options.checkpoint_path, &probe);
    if (ps.ok()) {
      if (options.log_segment_bytes > 0 && !options.log_path.empty() &&
          probe.covered_seq > 0) {
        Status cs =
            ValidateSegmentCoverage(options.log_path, probe.covered_seq);
        if (!cs.ok()) return cs;
      }
      CheckpointInfo info;
      uint64_t rows = 0;
      Status s = LoadCheckpoint(db, options.checkpoint_path, &info, &rows);
      if (!s.ok()) return s;
      local.checkpoint_loaded = true;
      local.checkpoint_ts = info.snapshot_ts;
      local.checkpoint_rows = rows;
      skip_through_ts = info.snapshot_ts;
      covered_seq = info.covered_seq;
    } else if (!ps.IsNotFound()) {
      return ps;  // a corrupt checkpoint must not be silently skipped
    }
  }

  // 2. Tail records.
  std::vector<ParsedLogRecord> records;
  if (!options.log_path.empty()) {
    Status s = options.log_segment_bytes > 0
                   ? GatherSegmentRecords(db, options, local.checkpoint_loaded,
                                          covered_seq, &records, &local)
                   : GatherSingleFileRecords(db, options, &records, &local);
    if (!s.ok()) return s;
  }
  local.records_parsed = records.size();

  // 3. Replay. Tolerant only over a *fuzzy* checkpoint — the 1V engine's
  //    per-row-locked image (core/checkpoint.h). MV checkpoints are exact
  //    snapshots, and a bare log starts from nothing; both replay strictly
  //    so corruption surfaces as Internal instead of being absorbed.
  ReplayOptions replay;
  replay.threads = options.threads;
  replay.skip_through_ts = skip_through_ts;
  replay.tolerant = local.checkpoint_loaded && db.mv_engine() == nullptr;
  Status s = ReplayRecords(db, std::move(records), replay, &local);
  if (!s.ok()) return s;

  // 4. Post-recovery commits must draw timestamps past everything replayed.
  db.AdvanceCommitTimestamp(
      std::max(local.max_timestamp, local.checkpoint_ts));

  if (report != nullptr) *report = local;
  return Status::OK();
}

Status RecoverFromLogFile(Database& db, const std::string& path) {
  LoggerPauseGuard pause(db.logger());
  RecoveryOptions options;
  options.log_path = path;
  RecoveryReport local;
  std::vector<ParsedLogRecord> records;
  Status s = GatherSingleFileRecords(db, options, &records, &local);
  if (!s.ok()) return s;
  s = ReplayRecords(db, std::move(records), ReplayOptions{}, &local);
  if (!s.ok()) return s;
  db.AdvanceCommitTimestamp(local.max_timestamp);
  return Status::OK();
}

std::unique_ptr<Database> Database::Open(
    const DatabaseOptions& options,
    const std::function<void(Database&)>& define_schema, Status* status,
    RecoveryReport* report) {
  auto set_status = [&](Status s) {
    if (status != nullptr) *status = s;
  };
  auto db = std::make_unique<Database>(options);
  if (!db->log_status().ok()) {
    // A database opened for durability with a dead log sink is useless;
    // fail loudly instead of running volatile.
    set_status(Status::Internal());
    return nullptr;
  }
  if (define_schema) define_schema(*db);
  // Recover whenever there is durable state to load — a checkpoint alone
  // counts (log_mode may be kDisabled for a read-only analytical open).
  if (!options.log_path.empty() || !options.checkpoint_path.empty()) {
    RecoveryOptions recovery;
    recovery.log_path = options.log_path;
    recovery.log_segment_bytes = options.log_segment_bytes;
    recovery.checkpoint_path = options.checkpoint_path;
    recovery.threads = options.recovery_threads;
    Status s = RecoverDatabase(*db, recovery, report);
    if (!s.ok()) {
      set_status(s);
      return nullptr;
    }
  }
  set_status(Status::OK());
  return db;
}

}  // namespace mvstore
