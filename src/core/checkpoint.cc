#include "core/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "common/failpoint.h"
#include "core/recovery.h"
#include "log/log_segment.h"
#include "txn/transaction.h"

namespace mvstore {

namespace {

constexpr char kHeaderMagic[8] = {'M', 'V', 'C', 'K', 'P', 'T', '0', '1'};
constexpr char kFooterMagic[8] = {'M', 'V', 'C', 'K', 'P', 'T', 'E', 'D'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderSize = 8 + 4 + 4 + 8 + 8;
constexpr size_t kFooterSize = 8 + 8;
constexpr size_t kTableHeaderSize = 4 + 4 + 8;

/// FNV-1a 64, streamed.
class Checksum {
 public:
  void Update(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ull;
};

/// Buffered, checksummed writer over a stdio FILE.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::FILE* file) : file_(file) {}

  bool Write(const void* data, size_t n) {
    checksum_.Update(data, n);
    return Raw(data, n);
  }
  /// Write without folding into the checksum (the footer itself).
  bool Raw(const void* data, size_t n) {
    return std::fwrite(data, 1, n, file_) == n;
  }
  template <typename T>
  bool Put(T value) {
    return Write(&value, sizeof(T));
  }
  uint64_t checksum() const { return checksum_.value(); }

 private:
  std::FILE* file_;
  Checksum checksum_;
};

/// Validate magic + checksum + structure; fill *info. `payload` gets the
/// byte range holding the table sections (between header and footer).
Status ValidateCheckpoint(const std::vector<uint8_t>& bytes,
                          CheckpointInfo* info, size_t* tables_begin,
                          uint32_t* table_count) {
  if (bytes.size() < kHeaderSize + kFooterSize) return Status::Internal();
  if (std::memcmp(bytes.data(), kHeaderMagic, 8) != 0) return Status::Internal();
  if (std::memcmp(bytes.data() + bytes.size() - 8, kFooterMagic, 8) != 0) {
    return Status::Internal();
  }
  uint32_t format = 0;
  std::memcpy(&format, bytes.data() + 8, 4);
  if (format != kFormatVersion) return Status::Internal();
  std::memcpy(table_count, bytes.data() + 12, 4);
  std::memcpy(&info->snapshot_ts, bytes.data() + 16, 8);
  std::memcpy(&info->covered_seq, bytes.data() + 24, 8);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, bytes.data() + bytes.size() - kFooterSize, 8);
  Checksum actual;
  actual.Update(bytes.data(), bytes.size() - kFooterSize);
  if (actual.value() != stored_checksum) return Status::Internal();
  *tables_begin = kHeaderSize;
  return Status::OK();
}

}  // namespace

Status Checkpointer::Take(CheckpointStats* stats) {
  if (options_.path.empty()) return Status::InvalidArgument();
  obs::LatencyHistograms& hists = db_.hists();
  const uint64_t t_start = hists.enabled() ? obs::NowTicks() : 0;
  // One checkpoint pass at a time per database: concurrent passes would
  // interleave writes into the same temp file and publish a corrupt
  // checkpoint after its predecessor's covered segments were deleted.
  MutexLock serialize(db_.checkpoint_mutex());

  // 1. Barrier: everything appended so far reaches the sink, then rotate so
  //    the covering rule holds — any record flushed into a segment below
  //    `covered` was appended (and its end timestamp drawn) before this
  //    point, hence before snapshot_ts is drawn below.
  Logger& logger = db_.logger();
  logger.FlushAll();
  auto* segmented = dynamic_cast<SegmentedLogSink*>(logger.sink());
  const uint64_t covered = segmented != nullptr ? segmented->Rotate() : 0;

  // 2. Snapshot point. MV: a read-only Snapshot transaction pins an exact
  //    read time. 1V: the commit clock *before* the fuzzy scan (see header).
  Txn* snap = nullptr;
  Timestamp snapshot_ts;
  if (db_.mv_engine() != nullptr) {
    snap = db_.Begin(IsolationLevel::kSnapshot, /*read_only=*/true);
    snapshot_ts = snap->mv->begin_ts.load(std::memory_order_acquire);
  } else {
    snapshot_ts = db_.LastCommitTimestamp();
  }

  // 3. Scan + write `<path>.tmp`, one table buffered at a time.
  const std::string tmp_path = options_.path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    if (snap != nullptr) db_.Abort(snap);
    return Status::Internal();
  }
  CheckpointWriter writer(file);
  const uint32_t table_count = db_.NumTables();
  bool write_ok = writer.Write(kHeaderMagic, 8) && writer.Put(kFormatVersion) &&
                  writer.Put(table_count) && writer.Put(snapshot_ts) &&
                  writer.Put(covered);
  uint64_t total_rows = 0;
  Status scan_status;
  std::vector<uint8_t> rows;
  for (TableId tid = 0; write_ok && scan_status.ok() && tid < table_count;
       ++tid) {
    const uint32_t payload_size = db_.PayloadSize(tid);
    rows.clear();
    auto consume = [&](const void* payload) {
      const auto* p = static_cast<const uint8_t*>(payload);
      rows.insert(rows.end(), p, p + payload_size);
      return true;
    };
    if (snap != nullptr) {
      scan_status = db_.ScanTable(snap, tid, consume);
      if (scan_status.IsAborted()) snap = nullptr;  // handle already released
    } else {
      // 1V: each row is read under a briefly-held key lock; RunTransaction
      // absorbs lock-timeout aborts by rescanning from scratch.
      scan_status = db_.RunTransaction(
          IsolationLevel::kReadCommitted, [&](Txn* t) {
            rows.clear();
            return db_.ScanTable(t, tid, consume);
          });
    }
    if (!scan_status.ok()) break;
    const uint64_t row_count = rows.size() / payload_size;
    write_ok = writer.Put(tid) && writer.Put(payload_size) &&
               writer.Put(row_count) &&
               (rows.empty() || writer.Write(rows.data(), rows.size()));
    total_rows += row_count;
  }
  if (snap != nullptr) {
    Status commit = db_.Commit(snap);
    if (scan_status.ok()) scan_status = commit;
  }
  if (write_ok) {
    const uint64_t checksum = writer.checksum();
    write_ok = writer.Raw(&checksum, 8) && writer.Raw(kFooterMagic, 8);
  }
  // Injected tmp-write failure (or crash mid-checkpoint, leaving a stale
  // tmp file behind — which publish-by-rename makes harmless).
  if (MVSTORE_FAILPOINT("checkpoint.write")) write_ok = false;
  // 4. Make it durable, then publish atomically.
  if (write_ok) write_ok = std::fflush(file) == 0;
  if (write_ok) write_ok = PortableFsync(file);
  std::fclose(file);
  if (!scan_status.ok() || !write_ok) {
    std::remove(tmp_path.c_str());
    return scan_status.ok() ? Status::Internal() : scan_status;
  }
  // Injected rename failure; a crash action here dies between the durable
  // tmp file and the publish — recovery must keep using the old checkpoint.
  std::error_code ec;
  if (MVSTORE_FAILPOINT("checkpoint.rename")) {
    ec = std::make_error_code(std::errc::io_error);
  } else {
    std::filesystem::rename(tmp_path, options_.path, ec);
  }
  if (ec) {
    std::remove(tmp_path.c_str());
    return Status::Internal();
  }
  db_.stats().Add(Stat::kCheckpointsTaken);

  // 5. The checkpoint now covers every record below `covered`; reclaim.
  uint64_t deleted = 0;
  if (options_.truncate_log && segmented != nullptr && covered > 0) {
    deleted = segmented->RemoveSegmentsBelow(covered);
  }

  if (stats != nullptr) {
    stats->snapshot_ts = snapshot_ts;
    stats->covered_seq = covered;
    stats->tables = table_count;
    stats->rows = total_rows;
    std::error_code size_ec;
    stats->bytes = static_cast<uint64_t>(
        std::filesystem::file_size(options_.path, size_ec));
    if (size_ec) stats->bytes = 0;
    stats->segments_deleted = deleted;
  }
  if (t_start != 0) hists.RecordSince(obs::Hist::kCheckpoint, t_start);
  return Status::OK();
}

Status InspectCheckpoint(const std::string& path, CheckpointInfo* info) {
  Status s;
  std::vector<uint8_t> bytes = ReadLogFile(path, &s);
  if (!s.ok()) return s;
  size_t tables_begin = 0;
  uint32_t table_count = 0;
  return ValidateCheckpoint(bytes, info, &tables_begin, &table_count);
}

Status LoadCheckpoint(Database& db, const std::string& path,
                      CheckpointInfo* info, uint64_t* rows_loaded) {
  if (MVSTORE_FAILPOINT("checkpoint.load")) return Status::Internal();
  Status s;
  std::vector<uint8_t> bytes = ReadLogFile(path, &s);
  if (!s.ok()) return s;
  CheckpointInfo local_info;
  size_t pos = 0;
  uint32_t table_count = 0;
  s = ValidateCheckpoint(bytes, &local_info, &pos, &table_count);
  if (!s.ok()) return s;
  if (info != nullptr) *info = local_info;

  const size_t tables_end = bytes.size() - kFooterSize;
  uint64_t loaded = 0;
  for (uint32_t i = 0; i < table_count; ++i) {
    if (pos + kTableHeaderSize > tables_end) return Status::Internal();
    TableId table_id;
    uint32_t payload_size;
    uint64_t row_count;
    std::memcpy(&table_id, bytes.data() + pos, 4);
    std::memcpy(&payload_size, bytes.data() + pos + 4, 4);
    std::memcpy(&row_count, bytes.data() + pos + 8, 8);
    pos += kTableHeaderSize;
    if (table_id >= db.NumTables() ||
        payload_size != db.PayloadSize(table_id)) {
      return Status::Internal();  // schema mismatch
    }
    if (row_count > (tables_end - pos) / payload_size) {
      return Status::Internal();
    }
    // Batched inserts: one transaction per kBatch rows keeps undo/write
    // sets bounded without paying a commit per row.
    constexpr uint64_t kBatch = 512;
    uint64_t row = 0;
    while (row < row_count) {
      const uint64_t end = std::min(row + kBatch, row_count);
      Txn* txn = db.Begin(IsolationLevel::kReadCommitted);
      for (; row < end; ++row) {
        Status ins = db.Insert(txn, table_id, bytes.data() + pos +
                                                  row * payload_size);
        if (!ins.ok()) {
          if (!ins.IsAborted()) db.Abort(txn);
          return Status::Internal();
        }
      }
      Status c = db.Commit(txn);
      if (!c.ok()) return Status::Internal();
    }
    pos += row_count * payload_size;
    loaded += row_count;
  }
  if (pos != tables_end) return Status::Internal();
  if (rows_loaded != nullptr) *rows_loaded = loaded;
  return Status::OK();
}

Status Database::Checkpoint() {
  if (options_.checkpoint_path.empty()) return Status::InvalidArgument();
  Checkpointer checkpointer(
      *this, Checkpointer::Options{options_.checkpoint_path,
                                   /*truncate_log=*/true});
  return checkpointer.Take(nullptr);
}

}  // namespace mvstore
