// Database: the library's public facade.
//
// Wraps the three concurrency-control engines behind a single API so that
// applications, tests and benchmarks can switch schemes with one option:
//
//   DatabaseOptions opts;
//   opts.scheme = Scheme::kMultiVersionOptimistic;   // "MV/O"
//   Database db(opts);
//   TableId accounts = db.CreateTable(...);
//   Txn* txn = db.Begin(IsolationLevel::kSerializable);
//   db.Read(txn, accounts, 0, key, &row);
//   ...
//   Status s = db.Commit(txn);
//
// All data operations return Status; Status::IsAborted() means the
// transaction has already been rolled back and the handle is dead. The
// caller simply retries with a fresh transaction.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cc/mv_engine.h"
#include "common/mutex.h"
#include "common/port.h"
#include "common/status.h"
#include "common/types.h"
#include "mem/object_pool.h"
#include "storage/table.h"
#include "sv/sv_engine.h"

namespace mvstore {

struct DatabaseOptions {
  Scheme scheme = Scheme::kMultiVersionOptimistic;

  /// Logging (paper configuration: asynchronous group commit).
  LogMode log_mode = LogMode::kAsync;
  /// Empty: in-memory byte-counting sink. Otherwise a file path (or, with
  /// log_segment_bytes > 0, a rotating-segment prefix). Existing log data on
  /// the path is preserved: sinks open in append mode, so a reopened
  /// database continues the log rather than truncating history. Use
  /// Database::Open (or RecoverDatabase) to replay that history first.
  std::string log_path;
  /// Durability of file-backed logs. Default (false): batches are flushed
  /// with fflush only — they survive a process crash but NOT an OS crash or
  /// power loss. Set true to fsync every flushed batch (real durability;
  /// with LogMode::kSync, commit then waits on an fsync'd batch). Only
  /// meaningful when log_path is set.
  bool fsync_log = false;
  /// > 0: segmented log — log_path is a prefix producing
  /// `<log_path>.<seq>.seg` files rotated at this size, which is what lets a
  /// completed checkpoint delete (truncate) covered segments. 0: log_path is
  /// one append-only file; checkpoints still work but reclaim nothing.
  uint64_t log_segment_bytes = 0;
  /// Checkpoint file location used by Database::Checkpoint() and by
  /// Database::Open() at recovery. Empty: no checkpointing; recovery is a
  /// full-log replay.
  std::string checkpoint_path;
  /// Worker threads for log replay in Database::Open (the paper's "multiple
  /// log streams" observation: records partition by primary key and replay
  /// in end-timestamp order per key). 1 = serial replay.
  uint32_t recovery_threads = 1;
  /// Group-commit window in microseconds: once the log flusher sees a
  /// pending commit record it waits this long so concurrent committers
  /// coalesce into one flush (one fsync with fsync_log). Amortizes
  /// device-bound commit latency across sessions at the cost of up to this
  /// much added latency per commit. 0 (default) flushes as soon as the
  /// flusher wakes. Counters: log_group_commits (batches flushed),
  /// log_group_size_sum (records across those batches).
  uint32_t group_commit_us = 0;

  /// MV engines: see MVEngineOptions.
  bool honor_locks = true;
  uint32_t gc_interval_us = 2000;
  uint32_t deadlock_interval_us = 1000;
  /// Per-thread end-timestamp block size (txn/timestamp.h); 1 = unbatched.
  uint32_t ts_block_size = 16;

  /// 1V engine: lock-wait timeout (deadlock breaking).
  uint64_t lock_timeout_us = 2000;

  /// Memory subsystem (src/mem/): recycle version slots through per-table
  /// slab allocators and transaction objects through pools, integrated with
  /// epoch reclamation. Default on; turn off to route every allocation
  /// through the global heap (ASan-style debugging, leak triage). Sanitizer
  /// builds (TSan/ASan) default off (common/port.h) -- recycling hides
  /// object lifetimes from the tools; tests that target the slabs opt back
  /// in.
  bool use_slab_allocator = !kSanitizerBuild;

  /// Observability (src/obs/, docs/OBSERVABILITY.md). On: commit-pipeline
  /// phases, txn lifetime, read/scan, GC, checkpoint and recovery latencies
  /// are recorded into striped histograms, exposed through MetricsText /
  /// the kMetrics wire opcode. Off: every Record() is one relaxed load.
  bool enable_latency_histograms = true;
  /// Commits slower than this (microseconds) emit one rate-limited
  /// structured stderr line with the per-phase breakdown; 0 disables.
  uint64_t slow_txn_us = 0;
};

/// Opaque transaction handle; owned by the Database between Begin and
/// Commit/Abort. Recycled through a pool (mem/object_pool.h) when the slab
/// subsystem is on.
struct Txn {
  Txn(Transaction* mv_in, SVTransaction* sv_in, IsolationLevel isolation_in)
      : mv(mv_in), sv(sv_in), isolation(isolation_in) {}

  void Reset(Transaction* mv_in, SVTransaction* sv_in,
             IsolationLevel isolation_in) {
    mv = mv_in;
    sv = sv_in;
    isolation = isolation_in;
  }

  Transaction* mv = nullptr;
  SVTransaction* sv = nullptr;
  IsolationLevel isolation = IsolationLevel::kReadCommitted;
};

struct RecoveryReport;

class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Recover-then-continue: construct a database, let `define_schema` create
  /// the tables (the schema is code — extractor function pointers — so it
  /// cannot live in the log), then replay the durable state on
  /// options.log_path / options.checkpoint_path: load the checkpoint if one
  /// exists, replay the log tail (torn tail truncated, counted, and
  /// reported), and advance the commit clock past every replayed timestamp
  /// so the continued log stays correctly ordered. On success the returned
  /// database holds exactly the recovered state and appends to the same log.
  /// On failure returns nullptr and sets *status (if non-null).
  static std::unique_ptr<Database> Open(
      const DatabaseOptions& options,
      const std::function<void(Database&)>& define_schema,
      Status* status = nullptr, RecoveryReport* report = nullptr);

  Scheme scheme() const { return options_.scheme; }
  const DatabaseOptions& options() const { return options_; }

  /// Create a table; index 0 is the primary index.
  TableId CreateTable(TableDef def);

  /// Number of payload bytes per row of `table_id`.
  uint32_t PayloadSize(TableId table_id);

  /// Number of tables created so far.
  uint32_t NumTables();

  /// Number of indexes on `table_id` (valid index ids are 0..n-1). The
  /// service layer validates wire-supplied ids against this before
  /// touching the engine.
  uint32_t NumIndexes(TableId table_id);

  /// Name a table was created with.
  const std::string& TableName(TableId table_id);

  /// Primary (index 0) key of a payload of `table_id`.
  uint64_t PrimaryKeyOfPayload(TableId table_id, const void* payload);

  /// --- transactions ---------------------------------------------------------

  Txn* Begin(IsolationLevel isolation, bool read_only = false);
  Status Commit(Txn* txn);
  void Abort(Txn* txn);

  /// --- operations -----------------------------------------------------------

  /// Copy the row with `key` (via `index_id`) into `out`.
  Status Read(Txn* txn, TableId table_id, IndexId index_id, uint64_t key,
              void* out);
  /// Visit every row matching `key` and the optional residual predicate.
  Status Scan(Txn* txn, TableId table_id, IndexId index_id, uint64_t key,
              const std::function<bool(const void*)>& residual,
              const std::function<bool(const void*)>& consumer);
  /// Visit every visible row whose `index_id` key lies in [lo, hi], in
  /// ascending key order. Requires an ordered index
  /// (IndexDef::ordered). MV: visibility per version at the transaction's
  /// read time; serializable transactions rescan the range at commit and
  /// abort on phantoms. 1V: rows are read under key locks and serializable
  /// scans predicate-lock the range, so conflicting inserts wait or time
  /// out.
  Status ScanRange(Txn* txn, TableId table_id, IndexId index_id, uint64_t lo,
                   uint64_t hi,
                   const std::function<bool(const void*)>& residual,
                   const std::function<bool(const void*)>& consumer);
  /// Visit every visible row of the table (full-table scan through the
  /// primary index). MV: snapshot-consistent at the transaction's read
  /// time. 1V: per-row cursor stability only.
  Status ScanTable(Txn* txn, TableId table_id,
                   const std::function<bool(const void*)>& consumer);
  Status Insert(Txn* txn, TableId table_id, const void* payload);
  Status Update(Txn* txn, TableId table_id, IndexId index_id, uint64_t key,
                const std::function<void(void*)>& mutator);
  Status Delete(Txn* txn, TableId table_id, IndexId index_id, uint64_t key);

  /// Run `body(txn)` with automatic retry on abort. `body` returns a Status;
  /// non-abort failures are returned as-is after an internal Abort.
  Status RunTransaction(IsolationLevel isolation,
                        const std::function<Status(Txn*)>& body,
                        uint32_t max_retries = 1000);

  /// --- durability -------------------------------------------------------------

  /// The engine's group-commit logger (valid in every LogMode; inert when
  /// kDisabled).
  Logger& logger();

  /// Health of the log sink: OK, or Internal once an open/write failure has
  /// dropped bytes (also surfaced on stderr at construction). Commit turns a
  /// broken sink into read-only mode (below) the moment a write transaction
  /// trips over it.
  Status log_status() { return logger().sink_status(); }

  /// True once the database has degraded to read-only mode: a log write or
  /// fsync failed, so write durability can no longer be promised. Writes are
  /// refused with Status::ReadOnly(); reads, scans, stats and read-only
  /// procedures keep serving. The mode is sticky for the life of the
  /// process — recovery from the durable state (restart + Database::Open) is
  /// the only exit (docs/RELIABILITY.md has the operator runbook).
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

  /// Force read-only mode (first transition logs `why` to stderr and bumps
  /// the read_only_transitions counter). Called internally on log failure;
  /// public so operators/tests can fence writes deliberately.
  void EnterReadOnlyMode(const char* why);

  /// Write a checkpoint to options.checkpoint_path (see core/checkpoint.h):
  /// rotate the log, scan every table at a consistent point, atomically
  /// publish the checkpoint file, then delete log segments it covers.
  /// InvalidArgument if options.checkpoint_path is empty.
  Status Checkpoint();

  /// Largest commit timestamp any written log record can carry so far.
  Timestamp LastCommitTimestamp();

  /// Raise the commit clock to at least `floor` (recovery only; see
  /// TimestampGenerator::AdvanceTo).
  void AdvanceCommitTimestamp(Timestamp floor);

  /// Serializes checkpoint passes against each other (Checkpointer::Take
  /// locks this): two interleaved writers on the same temp file would
  /// publish a checksum-corrupt checkpoint after the covered segments were
  /// already deleted — an unrecoverable state.
  Mutex& checkpoint_mutex() RETURN_CAPABILITY(checkpoint_mutex_) {
    return checkpoint_mutex_;
  }

  /// --- registered procedures --------------------------------------------------
  ///
  /// A procedure is a whole transaction behind one call: the service layer
  /// (src/server/) dispatches a single request frame to it, so one network
  /// round trip begins, runs, and commits a full transaction (the TATP ops
  /// in workload/tatp.h register themselves this way). The procedure owns
  /// its transaction lifecycle — typically via RunTransaction — and returns
  /// the commit status; `result` carries optional reply bytes.

  using ProcedureFn = std::function<Status(
      Database& db, const uint8_t* arg, size_t arg_len,
      std::vector<uint8_t>* result)>;

  /// Register `fn` under `name`; returns its id (stable for the lifetime of
  /// the database). Re-registering a name replaces the function but keeps
  /// the id. Registration is cheap but takes the registry writer lock; do it
  /// at setup, not per request.
  uint32_t RegisterProcedure(const std::string& name, ProcedureFn fn);

  /// Id registered under `name`, or -1.
  int64_t FindProcedure(const std::string& name);

  /// Number of registered procedures (ids are 0..count-1).
  uint32_t NumProcedures();

  /// Name a procedure id was registered under; empty for a bad id.
  std::string ProcedureName(uint32_t id);

  /// Invoke procedure `id`. InvalidArgument for an unknown id; otherwise
  /// whatever the procedure returns (kAborted statuses mean the transaction
  /// inside rolled back and the caller may retry the call).
  ///
  /// Contract for procedures served over the wire: `result` must fit in
  /// one response frame (wire::kMaxFrameBody, 4 MB). A larger result is a
  /// procedure-author bug — the server cannot frame it and reports
  /// Internal to the client even though the procedure's transaction may
  /// already be committed, which makes a blind retry unsafe. Paginate big
  /// exports across calls instead.
  Status CallProcedure(uint32_t id, const uint8_t* arg, size_t arg_len,
                       std::vector<uint8_t>* result);

  /// --- introspection ----------------------------------------------------------

  StatsCollector& stats();

  /// The engine's latency histograms (src/obs/histogram.h). Always valid;
  /// inert when options.enable_latency_histograms is false.
  obs::LatencyHistograms& hists();

  /// All engine counters, including zeros, as name/value pairs — one
  /// uniform shape for the server's STATS procedure to merge with its own
  /// session counters. Sorted by name: the names are a stable scrape
  /// contract (docs/API.md), and sorted output lets scrapers diff two
  /// snapshots line-by-line.
  std::vector<std::pair<std::string, uint64_t>> CounterSnapshot();
  /// MV engines only (nullptr under 1V): direct access for tests/benches.
  MVEngine* mv_engine() { return mv_.get(); }
  SVEngine* sv_engine() { return sv_.get(); }

 private:
  /// Release a finished handle back to the pool.
  void ReleaseTxn(Txn* txn) { txn_handle_pool_.Release(txn); }

  /// Gate for write operations: false once read-only (bumping the
  /// writes_refused counter), flipping the mode on first sight of a broken
  /// sink. `check_sink` false skips the sink probe (per-op fast path; the
  /// sink is probed at commit, where durability is actually promised).
  bool WriteAllowed(bool check_sink);

  std::atomic<bool> read_only_{false};

  DatabaseOptions options_;
  std::unique_ptr<MVEngine> mv_;
  std::unique_ptr<SVEngine> sv_;
  ObjectPool<Txn> txn_handle_pool_;
  Mutex checkpoint_mutex_;

  /// Procedure registry. Reads (Find/Call) take the lock shared and hold it
  /// across the call, so a procedure can never be destroyed mid-execution
  /// by a concurrent re-registration.
  SharedMutex procedures_mutex_;
  std::vector<std::pair<std::string, ProcedureFn>> procedures_
      GUARDED_BY(procedures_mutex_);
};

}  // namespace mvstore
