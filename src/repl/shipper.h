// ReplShipper: the leader half of log-shipping replication.
//
// Serves followers on its own listen port, speaking the repl opcodes of the
// shared wire protocol (server/wire.h). Each follower connection moves
// through two phases:
//
//   Pull (request/response) — the follower bootstraps: kReplHandshake
//   exchanges protocol version, scheme and positions; kReplCkptChunk ships
//   the leader's checkpoint file; kReplSegChunk ships sealed-segment and
//   live-segment bytes by (seq, offset). Pulls are stateless and
//   restartable — a follower can die mid-bootstrap and resume at its own
//   durable position. From handshake until attach the shipper pins a
//   retain floor on the segment sink so a concurrent checkpoint cannot
//   truncate segments the follower is still fetching.
//
//   Push (streaming) — kReplStream attaches the follower once its position
//   equals the sink's current position; the comparison and the registration
//   happen under the same hub lock the commit observer enqueues under, so
//   no flushed batch can fall between pull and push. After attach the
//   leader pushes every flushed group-commit batch as kReplTail frames
//   (split below the frame body cap), interleaves kReplHeartbeat when
//   idle, and reads kReplAck frames back.
//
// Durability coupling: the shipper installs itself as the logger's
// CommitObserver, which runs after the sink's Write+Sync but before kSync
// committers are released. In sync mode (the default) OnFlushedBatch
// blocks until every attached follower has acknowledged the batch as
// locally durable — so "commit acknowledged to a client" implies "the
// bytes are on the follower's disk", the invariant the failover drill
// proves. A follower that stops acking within ack_timeout_ms is dropped
// (and its connection shut down) rather than wedging commits; a follower
// that sends garbage kills only its own connection, never the leader.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/database.h"

namespace mvstore {

struct ShipperOptions {
  /// Numeric IPv4 listen address for the replication port.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back with port().
  uint16_t port = 0;
  /// Block the log flusher (and therefore kSync committers) until every
  /// attached follower acknowledged the batch. Off = pure asynchronous
  /// shipping: followers lag without back-pressuring commits, and acked
  /// commits can be lost with the leader.
  bool sync = true;
  /// How long a sync flush waits for follower acks before dropping the
  /// laggard and releasing committers.
  uint32_t ack_timeout_ms = 5000;
  /// Idle-stream heartbeat interval (also the sender's poll granularity).
  uint32_t heartbeat_ms = 100;
  /// Byte cap per kReplCkptChunk / kReplSegChunk response payload.
  uint32_t max_chunk = 256 * 1024;
};

class ReplShipper {
 public:
  /// `db` must log through a SegmentedLogSink (DatabaseOptions::log_path +
  /// log_segment_bytes > 0); Start() returns InvalidArgument otherwise.
  ReplShipper(Database& db, ShipperOptions options = {});
  ~ReplShipper();  // Stop()s if still running

  ReplShipper(const ReplShipper&) = delete;
  ReplShipper& operator=(const ReplShipper&) = delete;

  /// Bind, listen, spawn the acceptor, and install the commit observer.
  Status Start();

  /// Detach the observer (commits stop waiting), close every follower
  /// connection, and join all threads. Idempotent.
  void Stop();

  bool running() const;
  uint16_t port() const;

  /// Followers currently in push mode.
  uint32_t attached_followers();
  /// Flushed batches offered to at least one attached follower.
  uint64_t batches_shipped() const;
  /// Followers dropped for ack timeout or a dead/garbage connection.
  uint64_t followers_dropped() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mvstore
