#include "repl/shipper.h"

#include "common/failpoint.h"
#include "common/mutex.h"
#include "core/checkpoint.h"
#include "log/log_segment.h"
#include "server/wire.h"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>
#endif

namespace mvstore {

#if defined(__linux__)

namespace {

/// Byte cap per kReplTail frame; batches larger than this are split (the
/// follower mirrors a byte stream, so splits need no record alignment).
constexpr size_t kTailChunk = 1u << 20;

bool SendAll(int fd, const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
    } else if (w < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

/// Read `max` bytes of `path` starting at `offset` into *out; *total gets
/// the file's current size. False when the file cannot be opened.
bool ReadFileChunk(const std::string& path, uint64_t offset, uint32_t max,
                   std::vector<uint8_t>* out, uint64_t* total) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  if (fseeko(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return false;
  }
  const off_t size = ftello(f);
  *total = size < 0 ? 0 : static_cast<uint64_t>(size);
  if (offset < *total && max > 0) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(max, *total - offset));
    out->resize(want);
    if (fseeko(f, static_cast<off_t>(offset), SEEK_SET) != 0 ||
        std::fread(out->data(), 1, want, f) != want) {
      std::fclose(f);
      return false;
    }
  }
  std::fclose(f);
  return true;
}

}  // namespace

struct ReplShipper::Impl : public CommitObserver {
  using Position = SegmentedLogSink::Position;

  struct Follower {
    int fd = -1;
    int wake_fd = -1;
    std::thread thread;
    bool attached = false;
    bool dead = false;
    /// Everything below this has been handed to this follower (attach
    /// position, advanced per enqueued batch) — the guard against
    /// re-shipping a batch the follower already pulled.
    Position stream_pos{};
    /// Everything below this is durable at the follower (from kReplAck).
    Position acked{};
    /// Lowest segment this (bootstrapping) follower may still pull;
    /// 0 once attached or dead.
    uint64_t retain_seq = 0;
    std::deque<std::pair<Position, std::vector<uint8_t>>> outbox;
  };

  Database& db;
  ShipperOptions options;
  SegmentedLogSink* sink = nullptr;

  int listen_fd = -1;
  uint16_t bound_port = 0;
  std::thread acceptor;
  std::atomic<bool> running{false};
  std::atomic<bool> stopping{false};

  Mutex hub_mutex;
  CondVar ack_cv;
  std::vector<std::unique_ptr<Follower>> followers GUARDED_BY(hub_mutex);

  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> dropped{0};

  Impl(Database& db_in, ShipperOptions options_in)
      : db(db_in), options(std::move(options_in)) {}

  ~Impl() override { Stop(); }

  Status Start() {
    if (running.load(std::memory_order_acquire)) {
      return Status::InvalidArgument();
    }
    sink = dynamic_cast<SegmentedLogSink*>(db.logger().sink());
    if (sink == nullptr) return Status::InvalidArgument();
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) return Status::Internal();
    int on = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
      ::close(listen_fd);
      listen_fd = -1;
      return Status::InvalidArgument();
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0 ||
        ::listen(listen_fd, 16) < 0) {
      ::close(listen_fd);
      listen_fd = -1;
      return Status::Internal();
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port = ntohs(addr.sin_port);
    stopping.store(false, std::memory_order_release);
    running.store(true, std::memory_order_release);
    acceptor = std::thread([this] { AcceptLoop(); });
    db.logger().SetCommitObserver(this);
    return Status::OK();
  }

  /// NO_THREAD_SAFETY_ANALYSIS: the final traversal of `followers` (joins +
  /// fd close) runs without hub_mutex. Safe by protocol — the acceptor is
  /// already joined (the only mutator of the vector's shape besides
  /// ReapDead, which it calls), so the vector is frozen; holding hub_mutex
  /// across thread.join() would deadlock with MarkDead, which each follower
  /// thread takes the lock in on its way out.
  void Stop() NO_THREAD_SAFETY_ANALYSIS {
    if (!running.exchange(false, std::memory_order_acq_rel)) return;
    {
      MutexLock guard(hub_mutex);
      stopping.store(true, std::memory_order_release);
    }
    ack_cv.NotifyAll();
    // Detach before tearing connections down: SetCommitObserver serializes
    // against an in-flight OnFlushedBatch, which the stopping flag just
    // released from its ack wait.
    db.logger().SetCommitObserver(nullptr);
    if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
    if (acceptor.joinable()) acceptor.join();
    if (listen_fd >= 0) ::close(listen_fd);
    listen_fd = -1;
    {
      MutexLock guard(hub_mutex);
      for (auto& f : followers) {
        if (f->fd >= 0) ::shutdown(f->fd, SHUT_RDWR);
        WakeFollower(f.get());
      }
    }
    for (auto& f : followers) {
      if (f->thread.joinable()) f->thread.join();
      if (f->fd >= 0) ::close(f->fd);
      if (f->wake_fd >= 0) ::close(f->wake_fd);
    }
    followers.clear();
    if (sink != nullptr) sink->SetRetainFloor(0);
  }

  static void WakeFollower(Follower* f) {
    if (f->wake_fd >= 0) {
      uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(f->wake_fd, &one, sizeof(one));
    }
  }

  void RecomputeRetainLocked() REQUIRES(hub_mutex) {
    uint64_t floor = 0;
    for (const auto& f : followers) {
      if (f->dead || f->retain_seq == 0) continue;
      if (floor == 0 || f->retain_seq < floor) floor = f->retain_seq;
    }
    sink->SetRetainFloor(floor);
  }

  /// Shut the socket down so the connection thread unblocks and exits; the
  /// thread itself finishes the bookkeeping in MarkDead.
  void DropLocked(Follower* f) REQUIRES(hub_mutex) {
    if (f->dead) return;
    if (f->fd >= 0) ::shutdown(f->fd, SHUT_RDWR);
    f->attached = false;
    dropped.fetch_add(1, std::memory_order_relaxed);
  }

  void MarkDead(Follower* f) {
    MutexLock guard(hub_mutex);
    f->dead = true;
    f->attached = false;
    // Shut the socket down now so the peer sees the session end immediately;
    // the fd itself is closed when the acceptor reaps this entry (keeps the
    // close serialized with Stop(), which also shuts follower fds down).
    if (f->fd >= 0) ::shutdown(f->fd, SHUT_RDWR);
    f->retain_seq = 0;
    f->outbox.clear();
    RecomputeRetainLocked();
    ack_cv.NotifyAll();
  }

  // --- CommitObserver -------------------------------------------------------

  void OnFlushedBatch(const uint8_t* data, size_t size) override {
    if (size == 0) return;
    // last_write_pos names the batch the flusher just handed the sink; it
    // is stable here because only the flusher writes on the leader.
    const Position start = sink->last_write_pos();
    const Position end{start.seq, start.offset + size};
    MutexLock lock(hub_mutex);
    bool offered = false;
    for (auto& f : followers) {
      if (!f->attached || f->dead) continue;
      if (!(f->stream_pos < end)) continue;  // already pulled this batch
      f->outbox.emplace_back(start,
                             std::vector<uint8_t>(data, data + size));
      f->stream_pos = end;
      WakeFollower(f.get());
      offered = true;
    }
    if (!offered) return;
    batches.fetch_add(1, std::memory_order_relaxed);
    if (!options.sync) return;
    // Hold the committers until every attached follower has the batch on
    // its disk — the zero-acked-loss contract. A follower that cannot keep
    // up within the timeout is dropped, not waited on forever. The wait is
    // the repl_ack_wait histogram span: it runs on the leader's flusher
    // thread, inside the group-commit window every kSync committer of this
    // batch is blocked on.
    obs::LatencyHistograms& hists = db.hists();
    const uint64_t t_wait = hists.enabled() ? obs::NowTicks() : 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(options.ack_timeout_ms);
    while (!stopping.load(std::memory_order_acquire)) {
      bool pending = false;
      for (auto& f : followers) {
        if (f->attached && !f->dead && f->acked < end) {
          pending = true;
          break;
        }
      }
      if (!pending) break;
      if (ack_cv.WaitUntil(lock, deadline) == std::cv_status::timeout) {
        for (auto& f : followers) {
          if (f->attached && !f->dead && f->acked < end) DropLocked(f.get());
        }
        break;
      }
    }
    if (t_wait != 0) hists.RecordSince(obs::Hist::kReplAckWait, t_wait);
  }

  // --- acceptor -------------------------------------------------------------

  void AcceptLoop() {
    while (!stopping.load(std::memory_order_acquire)) {
      pollfd p{listen_fd, POLLIN, 0};
      int n = ::poll(&p, 1, 100);
      if (n <= 0) continue;
      int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      int on = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
      ReapDead();
      auto f = std::make_unique<Follower>();
      f->fd = fd;
      f->wake_fd = ::eventfd(0, EFD_NONBLOCK);
      Follower* raw = f.get();
      {
        MutexLock guard(hub_mutex);
        followers.push_back(std::move(f));
      }
      raw->thread = std::thread([this, raw] { ServeConn(raw); });
    }
  }

  void ReapDead() {
    std::vector<std::unique_ptr<Follower>> done;
    {
      MutexLock guard(hub_mutex);
      for (auto it = followers.begin(); it != followers.end();) {
        if ((*it)->dead) {
          done.push_back(std::move(*it));
          it = followers.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& f : done) {
      if (f->thread.joinable()) f->thread.join();
      if (f->fd >= 0) ::close(f->fd);
      if (f->wake_fd >= 0) ::close(f->wake_fd);
    }
  }

  // --- per-connection pull phase --------------------------------------------

  void ServeConn(Follower* f) {
    wire::FrameParser parser;
    uint8_t buf[64 * 1024];
    bool attached = false;
    bool fatal = false;
    while (!stopping.load(std::memory_order_acquire) && !fatal && !attached) {
      pollfd p{f->fd, POLLIN, 0};
      int n = ::poll(&p, 1, 100);
      if (n <= 0) continue;
      ssize_t r = ::recv(f->fd, buf, sizeof(buf), 0);
      if (r <= 0) break;
      parser.Feed(buf, static_cast<size_t>(r));
      wire::Frame frame;
      while (!fatal && !attached) {
        wire::FrameParser::Result res = parser.Next(&frame);
        if (res == wire::FrameParser::Result::kNeedMore) break;
        if (res == wire::FrameParser::Result::kBad) {
          // Garbage from a follower kills only this replication session;
          // the leader and its other followers are untouched.
          fatal = true;
          break;
        }
        std::vector<uint8_t> out;
        if (!HandlePullFrame(f, frame, &out, &attached)) fatal = true;
        if (!out.empty() && !SendAll(f->fd, out.data(), out.size())) {
          fatal = true;
        }
      }
    }
    if (attached && !fatal) StreamTo(f);
    MarkDead(f);
  }

  bool HandlePullFrame(Follower* f, const wire::Frame& frame,
                       std::vector<uint8_t>* out, bool* attached) {
    wire::BodyReader body(frame.body.data(), frame.body.size());
    switch (frame.opcode) {
      case wire::Opcode::kReplHandshake: {
        uint8_t proto = 0, scheme = 0, have_state = 0;
        uint64_t local_seq = 0, local_size = 0;
        if (!body.Read(&proto) || !body.Read(&scheme) ||
            !body.Read(&have_state) || !body.Read(&local_seq) ||
            !body.Read(&local_size)) {
          wire::AppendResponse(out, frame.opcode, Status::InvalidArgument(),
                               nullptr, 0, /*fatal=*/true);
          return false;
        }
        const Position cur = sink->current_pos();
        if (proto != wire::kReplProtoVersion ||
            scheme != static_cast<uint8_t>(db.scheme()) ||
            cur < Position{local_seq, local_size}) {
          // Version/scheme mismatch, or a follower claiming bytes this
          // leader never wrote (a diverged or stale-handshake peer): refuse
          // before any byte ships.
          wire::AppendResponse(out, frame.opcode, Status::InvalidArgument(),
                               nullptr, 0, /*fatal=*/true);
          return false;
        }
        const std::vector<logseg::SegmentFile> segs =
            logseg::ListSegments(sink->prefix());
        const uint64_t min_seq = segs.empty() ? cur.seq : segs.front().seq;
        CheckpointInfo ckpt;
        uint8_t ckpt_present = 0;
        uint64_t ckpt_size = 0;
        const std::string& ckpt_path = db.options().checkpoint_path;
        if (!ckpt_path.empty() &&
            InspectCheckpoint(ckpt_path, &ckpt).ok()) {
          ckpt_present = 1;
          std::vector<uint8_t> none;
          ReadFileChunk(ckpt_path, 0, 0, &none, &ckpt_size);
        }
        {
          // From handshake to attach (or death), nothing the follower may
          // still need to pull is allowed to be truncated away.
          MutexLock guard(hub_mutex);
          f->retain_seq = min_seq;
          RecomputeRetainLocked();
        }
        std::vector<uint8_t> payload;
        wire::Put(&payload, min_seq);
        wire::Put(&payload, ckpt_present);
        wire::Put(&payload, ckpt_size);
        wire::Put(&payload, ckpt.covered_seq);
        wire::Put(&payload, static_cast<uint64_t>(ckpt.snapshot_ts));
        wire::Put(&payload, cur.seq);
        wire::Put(&payload, cur.offset);
        wire::Put(&payload, static_cast<uint64_t>(db.LastCommitTimestamp()));
        wire::AppendResponse(out, frame.opcode, Status::OK(), payload.data(),
                             payload.size());
        return true;
      }

      case wire::Opcode::kReplCkptChunk: {
        uint64_t offset = 0;
        uint32_t max = 0;
        if (!body.Read(&offset) || !body.Read(&max)) {
          wire::AppendResponse(out, frame.opcode, Status::InvalidArgument(),
                               nullptr, 0, /*fatal=*/true);
          return false;
        }
        const std::string& path = db.options().checkpoint_path;
        std::vector<uint8_t> bytes;
        uint64_t total = 0;
        if (path.empty() ||
            !ReadFileChunk(path, offset, std::min(max, options.max_chunk),
                           &bytes, &total)) {
          wire::AppendResponse(out, frame.opcode, Status::NotFound(), nullptr,
                               0);
          return true;
        }
        std::vector<uint8_t> payload;
        wire::Put(&payload, total);
        wire::PutBytes(&payload, bytes.data(), bytes.size());
        wire::AppendResponse(out, frame.opcode, Status::OK(), payload.data(),
                             payload.size());
        return true;
      }

      case wire::Opcode::kReplSegChunk: {
        uint64_t seq = 0, offset = 0;
        uint32_t max = 0;
        if (!body.Read(&seq) || !body.Read(&offset) || !body.Read(&max)) {
          wire::AppendResponse(out, frame.opcode, Status::InvalidArgument(),
                               nullptr, 0, /*fatal=*/true);
          return false;
        }
        if (MVSTORE_FAILPOINT("repl.ship.send")) return false;
        std::vector<uint8_t> bytes;
        uint64_t total = 0;
        if (!ReadFileChunk(logseg::SegmentPath(sink->prefix(), seq), offset,
                           std::min(max, options.max_chunk), &bytes,
                           &total)) {
          wire::AppendResponse(out, frame.opcode, Status::NotFound(), nullptr,
                               0);
          return true;
        }
        const uint8_t sealed = seq < sink->current_seq() ? 1 : 0;
        std::vector<uint8_t> payload;
        wire::Put(&payload, sealed);
        wire::Put(&payload, total);
        wire::PutBytes(&payload, bytes.data(), bytes.size());
        wire::AppendResponse(out, frame.opcode, Status::OK(), payload.data(),
                             payload.size());
        return true;
      }

      case wire::Opcode::kReplStream: {
        uint64_t seq = 0, offset = 0;
        if (!body.Read(&seq) || !body.Read(&offset)) {
          wire::AppendResponse(out, frame.opcode, Status::InvalidArgument(),
                               nullptr, 0, /*fatal=*/true);
          return false;
        }
        const Position follower{seq, offset};
        MutexLock guard(hub_mutex);
        // current_pos is read under the hub lock — the same lock
        // OnFlushedBatch enqueues under — so a batch flushed after this
        // comparison is guaranteed to land in this follower's outbox.
        const Position cur = sink->current_pos();
        if (cur < follower) {
          wire::AppendResponse(out, frame.opcode, Status::InvalidArgument(),
                               nullptr, 0, /*fatal=*/true);
          return false;
        }
        std::vector<uint8_t> payload;
        const uint8_t ok = follower == cur ? 1 : 0;
        wire::Put(&payload, ok);
        wire::Put(&payload, cur.seq);
        wire::Put(&payload, cur.offset);
        wire::AppendResponse(out, frame.opcode, Status::OK(), payload.data(),
                             payload.size());
        if (ok != 0) {
          f->attached = true;
          f->stream_pos = cur;
          f->acked = cur;  // attach requires the follower to be durable here
          f->retain_seq = 0;
          RecomputeRetainLocked();
          *attached = true;
        }
        return true;
      }

      default:
        // The replication port speaks only the pull opcodes; anything else
        // is protocol misuse and closes the connection.
        wire::AppendResponse(out, frame.opcode, Status::InvalidArgument(),
                             nullptr, 0, /*fatal=*/true);
        return false;
    }
  }

  // --- per-connection push phase --------------------------------------------

  void StreamTo(Follower* f) {
    wire::FrameParser parser;
    uint8_t buf[16 * 1024];
    auto last_send = std::chrono::steady_clock::now();
    while (!stopping.load(std::memory_order_acquire)) {
      pollfd pfds[2] = {{f->fd, POLLIN, 0}, {f->wake_fd, POLLIN, 0}};
      ::poll(pfds, 2, static_cast<int>(options.heartbeat_ms));
      if (pfds[1].revents & POLLIN) {
        uint64_t drain;
        while (::read(f->wake_fd, &drain, sizeof(drain)) > 0) {
        }
      }
      // Inbound: acks (and only acks).
      if (pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
        ssize_t r = ::recv(f->fd, buf, sizeof(buf), MSG_DONTWAIT);
        if (r == 0 || (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR)) {
          return;
        }
        if (r > 0) {
          parser.Feed(buf, static_cast<size_t>(r));
          wire::Frame frame;
          while (true) {
            wire::FrameParser::Result res = parser.Next(&frame);
            if (res == wire::FrameParser::Result::kNeedMore) break;
            if (res == wire::FrameParser::Result::kBad) return;
            if (frame.opcode != wire::Opcode::kReplAck) return;
            wire::BodyReader body(frame.body.data(), frame.body.size());
            uint64_t seq = 0, offset = 0;
            if (!body.Read(&seq) || !body.Read(&offset)) return;
            {
              MutexLock guard(hub_mutex);
              const Position acked{seq, offset};
              if (f->acked < acked) f->acked = acked;
            }
            ack_cv.NotifyAll();
          }
        }
      }
      // Outbound: drained under the lock, sent outside it.
      std::deque<std::pair<Position, std::vector<uint8_t>>> out;
      {
        MutexLock guard(hub_mutex);
        out.swap(f->outbox);
        if (f->dead) return;
      }
      bool sent = false;
      for (const auto& [start, bytes] : out) {
        size_t off = 0;
        while (off < bytes.size()) {
          const size_t n = std::min(kTailChunk, bytes.size() - off);
          if (MVSTORE_FAILPOINT("repl.ship.send")) return;
          std::vector<uint8_t> body;
          wire::Put(&body, start.seq);
          wire::Put(&body, start.offset + off);
          wire::PutBytes(&body, bytes.data() + off, n);
          std::vector<uint8_t> framed;
          wire::AppendFrame(&framed, wire::Opcode::kReplTail, 0, body.data(),
                            body.size());
          if (!SendAll(f->fd, framed.data(), framed.size())) return;
          off += n;
          sent = true;
        }
      }
      const auto now = std::chrono::steady_clock::now();
      if (sent) {
        last_send = now;
      } else if (now - last_send >=
                 std::chrono::milliseconds(options.heartbeat_ms)) {
        const Position cur = sink->current_pos();
        std::vector<uint8_t> body;
        wire::Put(&body, cur.seq);
        wire::Put(&body, cur.offset);
        wire::Put(&body, static_cast<uint64_t>(db.LastCommitTimestamp()));
        std::vector<uint8_t> framed;
        wire::AppendFrame(&framed, wire::Opcode::kReplHeartbeat, 0,
                          body.data(), body.size());
        if (!SendAll(f->fd, framed.data(), framed.size())) return;
        last_send = now;
      }
    }
  }
};

ReplShipper::ReplShipper(Database& db, ShipperOptions options)
    : impl_(std::make_unique<Impl>(db, std::move(options))) {}

ReplShipper::~ReplShipper() { Stop(); }

Status ReplShipper::Start() { return impl_->Start(); }

void ReplShipper::Stop() { impl_->Stop(); }

bool ReplShipper::running() const {
  return impl_->running.load(std::memory_order_acquire);
}

uint16_t ReplShipper::port() const { return impl_->bound_port; }

uint32_t ReplShipper::attached_followers() {
  MutexLock guard(impl_->hub_mutex);
  uint32_t n = 0;
  for (const auto& f : impl_->followers) {
    if (f->attached && !f->dead) ++n;
  }
  return n;
}

uint64_t ReplShipper::batches_shipped() const {
  return impl_->batches.load(std::memory_order_relaxed);
}

uint64_t ReplShipper::followers_dropped() const {
  return impl_->dropped.load(std::memory_order_relaxed);
}

#else  // !__linux__

struct ReplShipper::Impl {
  explicit Impl(Database&, ShipperOptions) {}
};

ReplShipper::ReplShipper(Database& db, ShipperOptions options)
    : impl_(std::make_unique<Impl>(db, std::move(options))) {}

ReplShipper::~ReplShipper() = default;

Status ReplShipper::Start() { return Status::Unavailable(); }

void ReplShipper::Stop() {}

bool ReplShipper::running() const { return false; }

uint16_t ReplShipper::port() const { return 0; }

uint32_t ReplShipper::attached_followers() { return 0; }

uint64_t ReplShipper::batches_shipped() const { return 0; }

uint64_t ReplShipper::followers_dropped() const { return 0; }

#endif  // __linux__

}  // namespace mvstore
