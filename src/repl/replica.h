// Replica: the follower half of log-shipping replication.
//
// Owns a Database whose segmented log is a byte-for-byte mirror of the
// leader's, kept current by a streaming thread that speaks the repl opcodes
// to the leader's ReplShipper (src/repl/shipper.h):
//
//   Bootstrap — Open() first recovers whatever the local mirror already
//   holds (ordinary crash recovery, including the shipped-checkpoint
//   coverage check), then the thread handshakes. A fresh follower fetches
//   the leader's checkpoint file in chunks, loads it, and pulls segment
//   bytes from the checkpoint's covered_seq; a restarting follower resumes
//   pulling at its own durable position. Every pulled byte goes through
//   SegmentedLogSink::MirrorAppend, so the mirror either extends
//   contiguously or the desync is refused.
//
//   Tail replay — pulled and pushed bytes are parsed incrementally
//   (records never split across segments, but batches may split across
//   frames, so a carry buffer holds the unparsed suffix) and applied with
//   the same ReplayRecords machinery crash recovery uses, while the local
//   logger stays paused so replayed commits are not re-appended. The
//   largest applied leader end-timestamp is published as replayed_ts() —
//   the staleness watermark follower snapshot reads run at.
//
//   Attach — once caught up, kReplStream flips the connection to push mode:
//   the leader streams every flushed batch, the replica makes it durable
//   (MirrorAppend with sync) before acking, and heartbeats bound staleness
//   detection. A lost or silent leader triggers reconnect-and-resume; an
//   unrecoverable condition (scheme mismatch, divergence, leader truncated
//   past our position) parks the replica in failed().
//
//   Promote() — seal the mirrored tail exactly as crash recovery seals a
//   torn log (partial record truncated off), advance the commit clock past
//   everything replayed, and resume the logger: the follower is now a
//   writable leader appending to the same segment files.
//
// The Replica implements ServerCore's ReplicaGate, so a server fronting it
// refuses writes with kReadOnly until promoted while serving snapshot
// reads throughout. See docs/REPLICATION.md for the full contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/database.h"
#include "server/server_core.h"

namespace mvstore {

struct ReplicaOptions {
  /// Local mirror database. Must use a segmented log (log_path +
  /// log_segment_bytes > 0); checkpoint_path is required to bootstrap from
  /// a leader that has truncated its log. The scheme must match the
  /// leader's.
  DatabaseOptions db;
  /// Table definitions, exactly as passed to the leader's Database::Open.
  std::function<void(Database&)> define_schema;

  std::string leader_host = "127.0.0.1";
  uint16_t leader_port = 0;

  /// Pause between reconnect attempts after a lost leader.
  uint32_t reconnect_ms = 50;
  /// Attached stream with no frame (tail or heartbeat) for this long =
  /// leader presumed dead; drop the connection and re-dial.
  uint32_t heartbeat_timeout_ms = 2000;
  /// Per-request timeout during the pull phase.
  uint32_t io_timeout_ms = 5000;
  /// Pull-phase chunk request size.
  uint32_t max_chunk = 256 * 1024;
  /// Invoked (from the streaming thread) the first time this replica
  /// attaches to the live stream — the "caught up at least once" signal the
  /// failover drill keys its ack ledger on.
  std::function<void()> on_first_attach;
};

class Replica : public ReplicaGate {
 public:
  /// Recover the local mirror and start following. Returns nullptr with
  /// *status set when the options are invalid or local recovery fails;
  /// leader unreachability is NOT an Open error — the streaming thread
  /// keeps retrying until Stop() or Promote().
  static std::unique_ptr<Replica> Open(ReplicaOptions options,
                                       Status* status = nullptr);
  ~Replica() override;

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// The local database: serve reads from it (through a ServerCore whose
  /// gate this replica is), and writes after Promote().
  Database& db() { return *db_; }

  /// Stop following without promoting (shutdown path). Idempotent.
  void Stop();

  // --- ReplicaGate ----------------------------------------------------------

  bool writable() override { return promoted_.load(std::memory_order_acquire); }
  bool ready() override {
    return ever_attached_.load(std::memory_order_acquire);
  }
  Timestamp replayed_ts() override {
    return replayed_ts_.load(std::memory_order_acquire);
  }
  /// Seal the replicated tail (truncate any half-mirrored record, exactly
  /// as crash recovery truncates a torn tail), advance the commit clock
  /// past everything replayed, resume the logger, and go writable.
  /// Unavailable when the replica never attached and `force` is false.
  Status Promote(bool force) override;

  // --- observability --------------------------------------------------------

  /// Unrecoverable: scheme/protocol mismatch, local mirror diverged, or the
  /// leader truncated segments past our position (re-seed required).
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  /// Successful live-stream attaches over this replica's lifetime. Unlike
  /// reconnects(), this does NOT grow while re-dialing a dead leader, so a
  /// harness can prove "the stream never dropped between attach N and the
  /// leader's death" by the counter holding at N.
  uint64_t attaches() const { return attaches_.load(std::memory_order_relaxed); }
  /// Leader commit clock as of the last handshake/heartbeat — replayed_ts()
  /// lagging this bounds observed staleness (and their difference is the
  /// replication-lag gauge the metrics exposition publishes).
  Timestamp leader_ts() override {
    return leader_ts_.load(std::memory_order_acquire);
  }
  uint64_t batches_applied() const {
    return batches_applied_.load(std::memory_order_relaxed);
  }

 private:
  explicit Replica(ReplicaOptions options);

  struct Impl;

  ReplicaOptions options_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Impl> impl_;

  std::atomic<bool> promoted_{false};
  std::atomic<bool> ever_attached_{false};
  std::atomic<bool> failed_{false};
  std::atomic<Timestamp> replayed_ts_{0};
  std::atomic<Timestamp> leader_ts_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> attaches_{0};
  std::atomic<uint64_t> batches_applied_{0};
};

}  // namespace mvstore
