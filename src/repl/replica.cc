#include "repl/replica.h"

#include <algorithm>

#include "common/failpoint.h"
#include "core/checkpoint.h"
#include "core/recovery.h"
#include "log/log_segment.h"
#include "server/wire.h"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#endif

namespace mvstore {

#if defined(__linux__)

namespace {

/// Unparsed-suffix cap: a record that never completes past this is corrupt,
/// not merely split across frames (the largest legal record is far smaller
/// than a segment).
constexpr size_t kMaxCarry = 64u << 20;

/// RunSession / Streaming outcome.
enum SessionEnd : int {
  kRetry = 0,     // transient: re-dial and resume from the durable position
  kTerminal = 1,  // stopping, promoted, or failed_ was set
};

bool SendAll(int fd, const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<size_t>(w);
    } else if (w < 0 && errno == EINTR) {
      continue;
    } else {
      return false;
    }
  }
  return true;
}

/// One leader connection: dial, framed send, framed receive with timeout.
struct Conn {
  int fd = -1;
  wire::FrameParser parser;

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  bool Dial(const std::string& host, uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(fd);
      fd = -1;
      return false;
    }
    int on = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
    return true;
  }

  bool Send(wire::Opcode opcode, const std::vector<uint8_t>& body) {
    std::vector<uint8_t> framed;
    wire::AppendFrame(&framed, opcode, 0, body.data(), body.size());
    return SendAll(fd, framed.data(), framed.size());
  }

  /// 1 = *frame filled, 0 = timeout, -1 = connection dead or framing lost.
  int Recv(wire::Frame* frame, uint32_t timeout_ms,
           const std::atomic<bool>& stop) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    uint8_t buf[64 * 1024];
    while (true) {
      switch (parser.Next(frame)) {
        case wire::FrameParser::Result::kFrame:
          return 1;
        case wire::FrameParser::Result::kBad:
          return -1;
        case wire::FrameParser::Result::kNeedMore:
          break;
      }
      if (stop.load(std::memory_order_acquire)) return -1;
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return 0;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - now)
                            .count();
      pollfd p{fd, POLLIN, 0};
      const int n =
          ::poll(&p, 1, static_cast<int>(std::min<long long>(left, 100)));
      if (n < 0 && errno != EINTR) return -1;
      if (n <= 0) continue;
      const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
      if (r <= 0) return -1;
      parser.Feed(buf, static_cast<size_t>(r));
    }
  }
};

}  // namespace

struct Replica::Impl {
  using Position = SegmentedLogSink::Position;

  Replica* self = nullptr;
  SegmentedLogSink* sink = nullptr;
  std::thread thread;
  std::atomic<bool> stopping{false};
  /// The live connection's fd, published so Stop/Promote can shut it down
  /// and unblock the streaming thread.
  std::atomic<int> conn_fd{-1};

  /// Mirrored-but-unapplied suffix of the byte stream (a record split
  /// across tail frames, or the torn tail a dead leader left behind).
  /// Streaming-thread-owned; Promote reads it only after joining.
  std::vector<uint8_t> carry;

  /// True once the local tables hold data (recovered, checkpoint-loaded, or
  /// streamed) — from then on bootstrap-from-checkpoint is off the table
  /// and reconnects resume at the durable mirror position.
  bool have_state = false;
  Timestamp skip_floor = 0;
  bool tolerant = false;
  /// covered_seq of a checkpoint this replica bootstrapped from; the attach
  /// path re-runs the segment-coverage check against it.
  uint64_t covered_seq_hint = 0;
  bool attach_cb_fired = false;

  Database& db() { return *self->db_; }

  void Fail(const char* why) {
    if (!self->failed_.exchange(true, std::memory_order_acq_rel)) {
      std::fprintf(stderr, "mvstore: replica unrecoverable: %s\n", why);
    }
  }

  bool ShouldRun() const {
    return !stopping.load(std::memory_order_acquire) &&
           !self->failed_.load(std::memory_order_acquire) &&
           !self->promoted_.load(std::memory_order_acquire);
  }

  void StreamLoop() {
    bool first = true;
    while (ShouldRun()) {
      if (!first) {
        self->reconnects_.fetch_add(1, std::memory_order_relaxed);
        // Stop-checked reconnect pause.
        for (uint32_t waited = 0;
             waited < self->options_.reconnect_ms && ShouldRun();
             waited += 10) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (!ShouldRun()) break;
      }
      first = false;
      RunSession();
    }
    conn_fd.store(-1, std::memory_order_release);
  }

  /// Request/response helper for the pull phase. OK/peer-status on a
  /// response; Timeout on silence; Unavailable on a dead connection or
  /// protocol garbage.
  Status Request(Conn& conn, wire::Opcode opcode,
                 const std::vector<uint8_t>& body,
                 std::vector<uint8_t>* payload) {
    if (!conn.Send(opcode, body)) return Status::Unavailable();
    wire::Frame frame;
    const int r = conn.Recv(&frame, self->options_.io_timeout_ms, stopping);
    if (r == 0) return Status::Timeout();
    if (r < 0) return Status::Unavailable();
    if (frame.opcode != opcode || !(frame.flags & wire::kFlagResponse) ||
        frame.body.size() < 2) {
      return Status::Unavailable();
    }
    const Status status = wire::WireToStatus(frame.body[0], frame.body[1]);
    if (payload != nullptr) {
      payload->assign(frame.body.begin() + 2, frame.body.end());
    }
    return status;
  }

  /// Parse complete records off the carry buffer and apply them with the
  /// recovery machinery; the unparsed suffix stays for the next arrival.
  Status ApplyCarry() {
    std::vector<ParsedLogRecord> records;
    size_t valid = 0;
    ParseAllRecords(carry, &records, &valid);
    if (!records.empty()) {
      Timestamp max_ts = 0;
      for (const ParsedLogRecord& r : records) {
        max_ts = std::max(max_ts, r.end_ts);
      }
      ReplayOptions replay;
      replay.threads = 1;
      replay.skip_through_ts = skip_floor;
      replay.tolerant = tolerant;
      Status s = ReplayRecords(db(), std::move(records), replay);
      if (!s.ok()) return s;
      Timestamp prev = self->replayed_ts_.load(std::memory_order_relaxed);
      while (prev < max_ts && !self->replayed_ts_.compare_exchange_weak(
                                  prev, max_ts, std::memory_order_release)) {
      }
    }
    carry.erase(carry.begin(), carry.begin() + valid);
    if (carry.size() > kMaxCarry) return Status::Internal();
    return Status::OK();
  }

  bool SendAck(Conn& conn) {
    const Position cur = sink->current_pos();
    std::vector<uint8_t> body;
    wire::Put(&body, cur.seq);
    wire::Put(&body, cur.offset);
    return conn.Send(wire::Opcode::kReplAck, body);
  }

  /// Pull the leader's checkpoint file into checkpoint_path. The leader may
  /// rewrite its checkpoint mid-fetch (tmp+rename on its side, but our
  /// chunks would mix the two files and fail the footer check), so the
  /// whole fetch restarts on validation failure.
  Status FetchCheckpoint(Conn& conn) {
    const std::string& path = self->options_.db.checkpoint_path;
    const std::string tmp = path + ".fetch";
    for (int attempt = 0; attempt < 5 && ShouldRun(); ++attempt) {
      std::FILE* out = std::fopen(tmp.c_str(), "wb");
      if (out == nullptr) return Status::Internal();
      uint64_t offset = 0;
      uint64_t total = 0;
      bool io_ok = true;
      do {
        std::vector<uint8_t> body;
        wire::Put(&body, offset);
        wire::Put(&body, self->options_.max_chunk);
        std::vector<uint8_t> payload;
        Status s =
            Request(conn, wire::Opcode::kReplCkptChunk, body, &payload);
        if (!s.ok()) {
          std::fclose(out);
          return s;
        }
        wire::BodyReader reader(payload.data(), payload.size());
        if (!reader.Read(&total)) {
          std::fclose(out);
          return Status::Unavailable();
        }
        const size_t n = reader.remaining();
        if (n > 0 &&
            std::fwrite(reader.rest(), 1, n, out) != n) {
          io_ok = false;
          break;
        }
        if (n == 0 && offset < total) break;  // shrank mid-fetch: revalidate
        offset += n;
      } while (offset < total);
      if (std::fclose(out) != 0) io_ok = false;
      if (!io_ok) return Status::Internal();
      CheckpointInfo info;
      if (offset == total && total > 0 &&
          InspectCheckpoint(tmp, &info).ok()) {
        std::error_code ec;
        std::filesystem::rename(tmp, path, ec);
        return ec ? Status::Internal() : Status::OK();
      }
      // Torn or mid-rewrite image: refetch from scratch.
    }
    return Status::Unavailable();
  }

  void RunSession() {
    Conn conn;
    if (!conn.Dial(self->options_.leader_host, self->options_.leader_port)) {
      return;
    }
    conn_fd.store(conn.fd, std::memory_order_release);
    RunSessionOn(conn);
    conn_fd.store(-1, std::memory_order_release);
  }

  void RunSessionOn(Conn& conn) {
    // --- handshake ---
    const Position local = sink->current_pos();
    std::vector<uint8_t> body;
    wire::Put(&body, wire::kReplProtoVersion);
    wire::Put(&body, static_cast<uint8_t>(db().scheme()));
    wire::Put(&body, static_cast<uint8_t>(have_state ? 1 : 0));
    wire::Put(&body, local.seq);
    wire::Put(&body, local.offset);
    std::vector<uint8_t> payload;
    Status hs = Request(conn, wire::Opcode::kReplHandshake, body, &payload);
    if (hs.IsInvalidArgument()) {
      // Protocol/scheme mismatch, or the leader never wrote bytes we hold:
      // this pairing can never work.
      Fail("handshake refused (version/scheme mismatch or diverged ahead "
           "of leader)");
      return;
    }
    if (!hs.ok()) return;
    wire::BodyReader reader(payload.data(), payload.size());
    uint64_t min_seq = 0, ckpt_size = 0, ckpt_covered = 0, ckpt_ts = 0;
    uint64_t cur_seq = 0, cur_size = 0, last_ts = 0;
    uint8_t ckpt_present = 0;
    if (!reader.Read(&min_seq) || !reader.Read(&ckpt_present) ||
        !reader.Read(&ckpt_size) || !reader.Read(&ckpt_covered) ||
        !reader.Read(&ckpt_ts) || !reader.Read(&cur_seq) ||
        !reader.Read(&cur_size) || !reader.Read(&last_ts)) {
      return;
    }
    self->leader_ts_.store(last_ts, std::memory_order_release);

    // --- choose a start position ---
    Position pos;
    if (!have_state) {
      if (ckpt_present != 0 && ckpt_covered > 0 &&
          !self->options_.db.checkpoint_path.empty()) {
        Status fs = FetchCheckpoint(conn);
        if (!fs.ok()) return;
        CheckpointInfo info;
        uint64_t rows = 0;
        Status ls = LoadCheckpoint(db(), self->options_.db.checkpoint_path,
                                   &info, &rows);
        if (!ls.ok()) {
          Fail("shipped checkpoint failed to load");
          return;
        }
        db().AdvanceCommitTimestamp(info.snapshot_ts);
        skip_floor = info.snapshot_ts;
        tolerant = db().mv_engine() == nullptr;
        covered_seq_hint = info.covered_seq;
        self->replayed_ts_.store(info.snapshot_ts,
                                 std::memory_order_release);
        pos = Position{std::max<uint64_t>(info.covered_seq, 1),
                       logseg::kHeaderSize};
      } else if (min_seq > 1) {
        Fail("leader truncated its log and offers no usable checkpoint "
             "(set checkpoint_path, or re-seed this follower)");
        return;
      } else {
        pos = Position{1, logseg::kHeaderSize};
      }
      // From here the tables are (about to be) non-empty: reconnects must
      // resume at the mirror position, never re-bootstrap.
      have_state = true;
    } else {
      pos = local;
      if (pos.seq < min_seq) {
        Fail("leader truncated segments past this follower's position "
             "(re-seed required)");
        return;
      }
    }

    // --- catch-up: pull segment bytes until level with the live end ---
    while (ShouldRun()) {
      std::vector<uint8_t> req;
      wire::Put(&req, pos.seq);
      wire::Put(&req, pos.offset);
      wire::Put(&req, self->options_.max_chunk);
      std::vector<uint8_t> resp;
      Status s = Request(conn, wire::Opcode::kReplSegChunk, req, &resp);
      if (!s.ok()) return;  // includes NotFound: reconnect and re-handshake
      wire::BodyReader chunk(resp.data(), resp.size());
      uint8_t sealed = 0;
      uint64_t total = 0;
      if (!chunk.Read(&sealed) || !chunk.Read(&total)) return;
      const size_t n = chunk.remaining();
      if (n > 0) {
        Status ma = sink->MirrorAppend(pos.seq, pos.offset, chunk.rest(), n,
                                       /*sync=*/false);
        if (!ma.ok()) {
          Fail("mirror append refused a pulled chunk (local log diverged "
               "from leader)");
          return;
        }
        carry.insert(carry.end(), chunk.rest(), chunk.rest() + n);
        if (!ApplyCarry().ok()) {
          Fail("replaying pulled records failed");
          return;
        }
        pos.offset += n;
        continue;
      }
      if (sealed != 0) {
        if (pos.offset < total) return;  // file shrank under us: reconnect
        if (!carry.empty()) {
          // Batches are never split across segments, so bytes left over at
          // a segment boundary can only be corruption.
          Fail("record spans a segment boundary in the mirrored log");
          return;
        }
        pos = Position{pos.seq + 1, logseg::kHeaderSize};
        continue;
      }
      // Live segment, no new bytes: we are level. Make the mirror durable,
      // then ask to attach; the leader re-checks under its hub lock.
      sink->Sync();
      std::vector<uint8_t> areq;
      wire::Put(&areq, pos.seq);
      wire::Put(&areq, pos.offset);
      std::vector<uint8_t> aresp;
      Status as = Request(conn, wire::Opcode::kReplStream, areq, &aresp);
      if (as.IsInvalidArgument()) {
        Fail("attach refused: follower claims bytes the leader never wrote");
        return;
      }
      if (!as.ok()) return;
      wire::BodyReader att(aresp.data(), aresp.size());
      uint8_t attached = 0;
      uint64_t lseq = 0, lsize = 0;
      if (!att.Read(&attached) || !att.Read(&lseq) || !att.Read(&lsize)) {
        return;
      }
      if (attached == 0) continue;  // leader advanced meanwhile: keep pulling
      if (covered_seq_hint > 0) {
        // Same check recovery runs before trusting a shipped checkpoint:
        // the mirrored segment set must actually back the coverage claim.
        Status vs = ValidateSegmentCoverage(self->options_.db.log_path,
                                            covered_seq_hint);
        if (!vs.ok()) {
          Fail("mirrored segment set does not cover the bootstrap "
               "checkpoint");
          return;
        }
      }
      self->attaches_.fetch_add(1, std::memory_order_relaxed);
      if (!self->ever_attached_.exchange(true, std::memory_order_acq_rel) &&
          !attach_cb_fired) {
        attach_cb_fired = true;
        if (self->options_.on_first_attach) self->options_.on_first_attach();
      }
      Streaming(conn);
      return;
    }
  }

  void Streaming(Conn& conn) {
    auto last_frame = std::chrono::steady_clock::now();
    while (ShouldRun()) {
      wire::Frame frame;
      const int r = conn.Recv(&frame, 100, stopping);
      if (r < 0) return;
      const auto now = std::chrono::steady_clock::now();
      if (r == 0) {
        if (now - last_frame >= std::chrono::milliseconds(
                                    self->options_.heartbeat_timeout_ms)) {
          return;  // silent leader: presume dead, re-dial
        }
        continue;
      }
      last_frame = now;
      switch (frame.opcode) {
        case wire::Opcode::kReplTail: {
          if (MVSTORE_FAILPOINT("repl.tail.recv")) return;
          wire::BodyReader body(frame.body.data(), frame.body.size());
          uint64_t seq = 0, offset = 0;
          if (!body.Read(&seq) || !body.Read(&offset)) return;
          const size_t n = body.remaining();
          const Position local = sink->current_pos();
          const Position at{seq, offset};
          if (at.seq < local.seq ||
              (at.seq == local.seq && offset + n <= local.offset)) {
            // Replayed duplicate (leader resent after our ack was lost):
            // already durable here, just re-ack.
            if (!SendAck(conn)) return;
            break;
          }
          Status ma =
              sink->MirrorAppend(seq, offset, body.rest(), n, /*sync=*/true);
          if (!ma.ok()) {
            Fail("mirror append refused a streamed batch (local log "
                 "diverged from leader)");
            return;
          }
          // Durable first, ack second: the leader releases kSync
          // committers on this ack, so it must imply follower durability.
          if (!SendAck(conn)) return;
          carry.insert(carry.end(), body.rest(), body.rest() + n);
          if (!ApplyCarry().ok()) {
            Fail("replaying streamed records failed");
            return;
          }
          self->batches_applied_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case wire::Opcode::kReplHeartbeat: {
          wire::BodyReader body(frame.body.data(), frame.body.size());
          uint64_t hseq = 0, hsize = 0, hts = 0;
          if (!body.Read(&hseq) || !body.Read(&hsize) || !body.Read(&hts)) {
            return;
          }
          self->leader_ts_.store(hts, std::memory_order_release);
          break;
        }
        default:
          return;  // stream phase speaks tail + heartbeat only
      }
    }
  }

  void StopThread() {
    stopping.store(true, std::memory_order_release);
    const int fd = conn_fd.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    if (thread.joinable()) thread.join();
  }
};

Replica::Replica(ReplicaOptions options) : options_(std::move(options)) {}

std::unique_ptr<Replica> Replica::Open(ReplicaOptions options,
                                       Status* status) {
  auto fail = [status](Status s) -> std::unique_ptr<Replica> {
    if (status != nullptr) *status = s;
    return nullptr;
  };
  if (options.db.log_path.empty() || options.db.log_segment_bytes == 0 ||
      options.leader_port == 0 || !options.define_schema) {
    return fail(Status::InvalidArgument());
  }
  std::unique_ptr<Replica> replica(new Replica(std::move(options)));
  Status open_status;
  RecoveryReport report;
  replica->db_ = Database::Open(replica->options_.db,
                                replica->options_.define_schema, &open_status,
                                &report);
  if (replica->db_ == nullptr) return fail(open_status);
  auto* sink =
      dynamic_cast<SegmentedLogSink*>(replica->db_->logger().sink());
  if (sink == nullptr) return fail(Status::InvalidArgument());

  replica->impl_ = std::make_unique<Impl>();
  Impl& impl = *replica->impl_;
  impl.self = replica.get();
  impl.sink = sink;
  const SegmentedLogSink::Position cur = sink->current_pos();
  impl.have_state = report.checkpoint_loaded || report.records_replayed > 0 ||
                    cur.seq > 1 || cur.offset > logseg::kHeaderSize;
  impl.skip_floor = report.checkpoint_ts;
  impl.tolerant =
      report.checkpoint_loaded && replica->db_->mv_engine() == nullptr;
  replica->replayed_ts_.store(
      std::max(report.max_timestamp, report.checkpoint_ts),
      std::memory_order_release);

  // Paused for the replica's whole following life: streamed records are
  // already in the mirrored log and must not be re-appended. Promote()
  // resumes.
  replica->db_->logger().PauseForReplay();
  impl.thread = std::thread([&impl] { impl.StreamLoop(); });
  if (status != nullptr) *status = Status::OK();
  return replica;
}

Replica::~Replica() {
  Stop();
}

void Replica::Stop() {
  if (impl_ != nullptr) impl_->StopThread();
}

Status Replica::Promote(bool force) {
  if (promoted_.load(std::memory_order_acquire)) return Status::OK();
  if (!ever_attached_.load(std::memory_order_acquire) && !force) {
    return Status::Unavailable();
  }
  if (impl_ == nullptr) return Status::Internal();
  impl_->StopThread();
  // Seal the tail: a record half-mirrored when the leader died is exactly a
  // torn tail, dropped the same way crash recovery drops one.
  if (!impl_->carry.empty()) {
    Status ts = impl_->sink->TruncateActiveTail(impl_->carry.size());
    if (!ts.ok()) return ts;
    impl_->carry.clear();
  }
  if (MVSTORE_FAILPOINT("repl.promote")) return Status::Internal();
  db_->AdvanceCommitTimestamp(
      std::max(replayed_ts_.load(std::memory_order_acquire),
               leader_ts_.load(std::memory_order_acquire)));
  db_->logger().ResumeAfterReplay();
  promoted_.store(true, std::memory_order_release);
  return Status::OK();
}

#else  // !__linux__

struct Replica::Impl {};

Replica::Replica(ReplicaOptions options) : options_(std::move(options)) {}

std::unique_ptr<Replica> Replica::Open(ReplicaOptions, Status* status) {
  if (status != nullptr) *status = Status::Unavailable();
  return nullptr;
}

Replica::~Replica() = default;

void Replica::Stop() {}

Status Replica::Promote(bool) { return Status::Unavailable(); }

#endif  // __linux__

}  // namespace mvstore
