// Segmented redo-log output: the log as a sequence of rotating files.
//
// A single append-only log file cannot be truncated from the front, so a
// checkpoint could never reclaim the bytes it makes redundant. Segmenting
// fixes that: the logger writes to `<prefix>.<seq>.seg` files, rotating to a
// new sequence number when the current segment exceeds a size target, and a
// completed checkpoint deletes every segment whose records it wholly covers
// (see core/checkpoint.h for the covering rule).
//
// Invariants the rest of the durability subsystem relies on:
//  * Segment sequence numbers start at 1 and increase monotonically; the
//    file name and the 16-byte segment header both carry the number.
//  * A batch handed to Write() is never split across segments, and batches
//    are whole commit records, so every segment is independently parseable.
//  * Reopening an existing prefix resumes appending to the highest-numbered
//    segment; nothing is ever truncated at open time except a segment too
//    short to hold its own header (a crash landed between file creation and
//    the header write — it provably contains no records).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/mutex.h"
#include "common/status.h"
#include "log/logger.h"

namespace mvstore {
namespace logseg {

/// Bytes 0-7 of every segment file.
inline constexpr char kSegmentMagic[8] = {'M', 'V', 'S', 'E', 'G', '0', '0', '1'};
/// Magic (8B) + sequence number (8B).
inline constexpr size_t kHeaderSize = 16;

/// `<prefix>.<seq, 8 digits>.seg`
std::string SegmentPath(const std::string& prefix, uint64_t seq);

struct SegmentFile {
  uint64_t seq = 0;
  std::string path;
  uint64_t size = 0;
};

/// All existing segment files for `prefix`, sorted by sequence number.
std::vector<SegmentFile> ListSegments(const std::string& prefix);

}  // namespace logseg

/// Rotating-segment log sink (see file comment). Thread-safe: the logger's
/// flusher thread calls Write/Sync while a checkpointer may concurrently
/// Rotate or RemoveSegmentsBelow.
class SegmentedLogSink : public LogSink {
 public:
  struct Options {
    /// Rotate once the current segment reaches this many bytes. A batch
    /// larger than the target gets a segment to itself (records are never
    /// split). Must be > 0.
    uint64_t segment_bytes = 64ull << 20;
    /// fsync every Sync() (see DatabaseOptions::fsync_log).
    bool use_fsync = false;
  };

  SegmentedLogSink(std::string prefix, Options options,
                   StatsCollector* stats = nullptr);
  ~SegmentedLogSink() override;

  void Write(const uint8_t* data, size_t size) override;
  void Sync() override;
  Status status() const override {
    return failed_.load(std::memory_order_acquire) ? Status::Internal()
                                                   : Status::OK();
  }

  /// A byte position in the segment stream: segment sequence number plus
  /// offset within that segment file (header included). Ordered
  /// lexicographically.
  struct Position {
    uint64_t seq = 0;
    uint64_t offset = 0;
    bool operator<(const Position& o) const {
      return seq != o.seq ? seq < o.seq : offset < o.offset;
    }
    bool operator==(const Position& o) const {
      return seq == o.seq && offset == o.offset;
    }
  };

  /// Sequence number of the segment currently receiving appends.
  uint64_t current_seq() const;

  /// End of everything written so far: {current segment, its size}. The log
  /// shipper reads this under the same lock Write advances it under, so a
  /// stream attached at current_pos() misses nothing.
  Position current_pos() const;

  /// Where the most recent Write landed: {segment, offset of the batch's
  /// first byte}. Stable until the next Write (rotation does not move it),
  /// which is what lets the post-flush CommitObserver name the batch it was
  /// just handed.
  Position last_write_pos() const;

  /// Follower-side mirror append: write `size` bytes at exactly
  /// (seq, offset) of the local segment stream, creating segment `seq`
  /// (header included — headers are byte-identical across replicas) when
  /// `seq` is ahead of the current segment. Returns InvalidArgument when
  /// the position does not extend the local stream contiguously (the mirror
  /// desynced from the leader) and Internal on I/O failure. `sync` forces
  /// the bytes down per Options::use_fsync before returning.
  Status MirrorAppend(uint64_t seq, uint64_t offset, const uint8_t* data,
                      size_t size, bool sync);

  /// Keep segments >= `seq` alive through RemoveSegmentsBelow (a follower
  /// is bootstrapping from them); 0 lifts the floor. The shipper owns this.
  void SetRetainFloor(uint64_t seq);

  /// Cut the last `bytes` bytes off the active segment — the promote path's
  /// seal: a partial record mirrored before the leader died is dropped
  /// exactly as crash recovery truncates a torn tail. InvalidArgument when
  /// the cut would reach into the segment header.
  Status TruncateActiveTail(uint64_t bytes);

  /// Close the current segment and open the next one. Returns the new
  /// segment's sequence number; every record flushed before this call lives
  /// in a segment with a smaller number.
  uint64_t Rotate();

  /// Delete every segment file with sequence number < `seq` (checkpoint
  /// truncation). Returns the number of files removed.
  uint64_t RemoveSegmentsBelow(uint64_t seq);

  const std::string& prefix() const { return prefix_; }

 private:
  /// Open segment `seq` (append). Writes a fresh header when the file is
  /// empty; truncates first when it is shorter than a header.
  void OpenSegmentLocked(uint64_t seq) REQUIRES(mutex_);
  void RotateLocked() REQUIRES(mutex_);
  void Fail(const char* what);

  const std::string prefix_;
  const Options options_;
  StatsCollector* const stats_;

  mutable Mutex mutex_;
  std::FILE* file_ GUARDED_BY(mutex_) = nullptr;
  uint64_t seq_ GUARDED_BY(mutex_) = 0;
  /// Bytes in the current segment, header included.
  uint64_t segment_size_ GUARDED_BY(mutex_) = 0;
  /// Where the latest Write/MirrorAppend began.
  Position last_write_ GUARDED_BY(mutex_) = {0, 0};
  std::atomic<uint64_t> retain_floor_{0};
  std::atomic<bool> failed_{false};
};

}  // namespace mvstore
