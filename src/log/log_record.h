// Redo log record format.
//
// One record per committed transaction (paper Section 3.2: "Commit ordering
// is determined by transaction end timestamps, which are included in the log
// records"). Updates log the byte-range difference between old and new
// payloads plus fixed metadata (Section 5: "Each update produces a log
// record that stores the difference between the old and new versions, plus
// 8 bytes of metadata"); inserts log the full payload; deletes log the
// primary key.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/types.h"

namespace mvstore {

enum class LogOp : uint8_t {
  kInsert = 0,
  kUpdate,
  kDelete,
};

/// Byte-serialized commit record:
///   header:  end_timestamp (8B) | txn_id (8B) | op_count (4B)
///   per op:  op (1B) | table_id (4B) | specific body
///     insert: payload_size (4B) | payload bytes
///     update: key (8B) | diff_offset (4B) | diff_len (4B) | diff bytes
///     delete: key (8B)
/// The update key is the paper's "8 bytes of metadata" per update record;
/// recovery uses it to locate the row the diff applies to.
class LogRecordBuilder {
 public:
  explicit LogRecordBuilder(std::vector<uint8_t>& out) : out_(out) {}

  void BeginRecord(Timestamp end_ts, TxnId txn_id) {
    count_pos_ = 0;
    Put(end_ts);
    Put(txn_id);
    count_pos_ = out_.size();
    Put(uint32_t{0});
    op_count_ = 0;
  }

  void AddInsert(TableId table, const void* payload, uint32_t size) {
    Put(static_cast<uint8_t>(LogOp::kInsert));
    Put(table);
    Put(size);
    PutBytes(payload, size);
    ++op_count_;
  }

  /// Logs the smallest single contiguous byte range where old != new, plus
  /// the primary key of the updated row.
  void AddUpdate(TableId table, uint64_t key, const void* old_payload,
                 const void* new_payload, uint32_t size) {
    const uint8_t* a = static_cast<const uint8_t*>(old_payload);
    const uint8_t* b = static_cast<const uint8_t*>(new_payload);
    uint32_t lo = 0;
    while (lo < size && a[lo] == b[lo]) ++lo;
    uint32_t hi = size;
    while (hi > lo && a[hi - 1] == b[hi - 1]) --hi;
    Put(static_cast<uint8_t>(LogOp::kUpdate));
    Put(table);
    Put(key);
    Put(lo);
    Put(hi - lo);
    PutBytes(b + lo, hi - lo);
    ++op_count_;
  }

  void AddDelete(TableId table, uint64_t key) {
    Put(static_cast<uint8_t>(LogOp::kDelete));
    Put(table);
    Put(key);
    ++op_count_;
  }

  void EndRecord() {
    std::memcpy(out_.data() + count_pos_, &op_count_, sizeof(op_count_));
  }

 private:
  // resize + memcpy rather than vector::insert: same codegen, but insert's
  // range path trips a GCC 12 -Wstringop-overflow false positive when
  // inlined into callers at -O3.
  template <typename T>
  void Put(T value) {
    const size_t old_size = out_.size();
    out_.resize(old_size + sizeof(T));
    std::memcpy(out_.data() + old_size, &value, sizeof(T));
  }
  void PutBytes(const void* data, size_t n) {
    if (n == 0) return;  // an empty diff may pass data == nullptr
    const size_t old_size = out_.size();
    out_.resize(old_size + n);
    std::memcpy(out_.data() + old_size, data, n);
  }

  std::vector<uint8_t>& out_;
  size_t count_pos_ = 0;
  uint32_t op_count_ = 0;
};

/// Minimal reader for tests: parses one commit record starting at `pos`,
/// returns false when the buffer is exhausted.
struct ParsedLogOp {
  LogOp op;
  TableId table;
  uint32_t offset = 0;  // update only
  std::vector<uint8_t> bytes;
  uint64_t key = 0;  // update and delete
};

struct ParsedLogRecord {
  Timestamp end_ts;
  TxnId txn_id;
  std::vector<ParsedLogOp> ops;
};

inline bool ParseLogRecord(const std::vector<uint8_t>& buf, size_t& pos,
                           ParsedLogRecord* record) {
  auto get = [&](void* dst, size_t n) {
    if (pos + n > buf.size()) return false;
    // n == 0 (an empty diff/payload) would hand memcpy null pointers: an
    // empty vector's data() and an empty buffer's data() are both null,
    // and memcpy declares its arguments nonnull.
    if (n != 0) std::memcpy(dst, buf.data() + pos, n);
    pos += n;
    return true;
  };
  if (pos >= buf.size()) return false;
  uint32_t count = 0;
  if (!get(&record->end_ts, 8) || !get(&record->txn_id, 8) || !get(&count, 4))
    return false;
  record->ops.clear();
  for (uint32_t i = 0; i < count; ++i) {
    ParsedLogOp op;
    uint8_t op_byte = 0;
    if (!get(&op_byte, 1) || !get(&op.table, 4)) return false;
    // A torn or corrupt tail can yield any byte here; an unknown opcode must
    // fail the parse, not fall through with an uninitialized op.
    if (op_byte > static_cast<uint8_t>(LogOp::kDelete)) return false;
    op.op = static_cast<LogOp>(op_byte);
    switch (op.op) {
      case LogOp::kInsert: {
        uint32_t size = 0;
        if (!get(&size, 4)) return false;
        // Bound-check before resize: a garbage length must not trigger a
        // multi-gigabyte allocation on the recovery path.
        if (size > buf.size() - pos) return false;
        op.bytes.resize(size);
        if (!get(op.bytes.data(), size)) return false;
        break;
      }
      case LogOp::kUpdate: {
        uint32_t len = 0;
        if (!get(&op.key, 8) || !get(&op.offset, 4) || !get(&len, 4)) {
          return false;
        }
        if (len > buf.size() - pos) return false;
        op.bytes.resize(len);
        if (!get(op.bytes.data(), len)) return false;
        break;
      }
      case LogOp::kDelete:
        if (!get(&op.key, 8)) return false;
        break;
    }
    record->ops.push_back(std::move(op));
  }
  return true;
}

}  // namespace mvstore
