#include "log/logger.h"

#include <cstdlib>

#include "common/failpoint.h"

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace mvstore {

bool PortableFsync(std::FILE* file) {
  if (MVSTORE_FAILPOINT("log.fsync")) return false;
#if defined(_WIN32)
  return _commit(_fileno(file)) == 0;
#else
  return ::fsync(fileno(file)) == 0;
#endif
}

FileLogSink::FileLogSink(const std::string& path, bool use_fsync,
                         StatsCollector* stats)
    : use_fsync_(use_fsync), stats_(stats) {
  // Append, not truncate: an existing log on this path is prior committed
  // history (recover-then-continue), not scratch space.
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    failed_.store(true, std::memory_order_release);
    std::fprintf(stderr, "mvstore: cannot open log file '%s' for append\n",
                 path.c_str());
    if (stats_ != nullptr) stats_->Add(Stat::kLogWriteErrors);
  }
}

void FileLogSink::Write(const uint8_t* data, size_t size) {
  if (file_ == nullptr) return;
  if (MVSTORE_FAILPOINT("log.append.partial")) {
    // Torn-write crash: a prefix of the batch reaches the OS, then the
    // process dies mid-write. Recovery must detect and truncate the tear.
    std::fwrite(data, 1, size / 2, file_);
    std::fflush(file_);
    std::_Exit(failpoint::kCrashExitCode);
  }
  if ((MVSTORE_FAILPOINT("log.append.write") ||
       std::fwrite(data, 1, size, file_) != size) &&
      !failed_.exchange(true, std::memory_order_acq_rel)) {
    std::fprintf(stderr,
                 "mvstore: log fwrite failed; further commit records will "
                 "NOT be durable\n");
    if (stats_ != nullptr) stats_->Add(Stat::kLogWriteErrors);
  }
}

void FileLogSink::Sync() {
  if (file_ == nullptr) return;
  // fwrite into stdio's buffer can succeed while the real write fails here
  // (ENOSPC), and with use_fsync the page cache can accept what the device
  // then rejects (EIO at writeback); both are dropped durability and must
  // surface.
  bool synced =
      !MVSTORE_FAILPOINT("log.append.sync") && std::fflush(file_) == 0;
  if (synced && use_fsync_) synced = PortableFsync(file_);
  if (!synced && !failed_.exchange(true, std::memory_order_acq_rel)) {
    std::fprintf(stderr,
                 "mvstore: log flush/fsync failed; further commit records "
                 "will NOT be durable\n");
    if (stats_ != nullptr) stats_->Add(Stat::kLogWriteErrors);
  }
}

Logger::Logger(LogMode mode, LogSink* sink, uint32_t group_commit_us,
               StatsCollector* stats, obs::LatencyHistograms* hists)
    : mode_(mode),
      group_commit_us_(group_commit_us),
      stats_(stats),
      hists_(hists),
      sink_(sink) {
  if (mode_ == LogMode::kDisabled) return;
  running_.store(true, std::memory_order_release);
  flusher_ = std::thread([this] { FlusherLoop(); });
}

Logger::~Logger() {
  if (mode_ == LogMode::kDisabled) return;
  {
    MutexLock guard(mutex_);
    running_.store(false, std::memory_order_release);
  }
  flusher_cv_.NotifyAll();
  if (flusher_.joinable()) flusher_.join();
  // Final drain.
  if (!buffer_.empty() && sink_ != nullptr) {
    sink_->Write(buffer_.data(), buffer_.size());
    sink_->Sync();
    NotifyObserver(buffer_.data(), buffer_.size());
    if (stats_ != nullptr) {
      stats_->Add(Stat::kLogGroupCommits);
      stats_->Add(Stat::kLogGroupSizeSum, buffer_records_);
    }
  }
}

void Logger::SetCommitObserver(CommitObserver* obs) {
  MutexLock guard(observer_mutex_);
  observer_ = obs;
}

void Logger::NotifyObserver(const uint8_t* data, size_t size) {
  MutexLock guard(observer_mutex_);
  if (observer_ != nullptr) observer_->OnFlushedBatch(data, size);
}

namespace {
/// Most recent kSync wait of this thread (see Logger::LastGroupWaitTicks).
thread_local uint64_t tl_last_group_wait_ticks = 0;
}  // namespace

uint64_t Logger::LastGroupWaitTicks() { return tl_last_group_wait_ticks; }

void Logger::Append(const std::vector<uint8_t>& record) {
  tl_last_group_wait_ticks = 0;
  if (mode_ == LogMode::kDisabled || record.empty()) return;
  uint64_t my_lsn;
  {
    MutexLock guard(mutex_);
    if (replay_paused_.load(std::memory_order_relaxed)) {
      return;  // replaying: the record is already on disk
    }
    buffer_.insert(buffer_.end(), record.begin(), record.end());
    ++buffer_records_;
    appended_lsn_ += record.size();
    my_lsn = appended_lsn_;
  }
  records_.fetch_add(1, std::memory_order_relaxed);
  // Group commit: wake the flusher only when it is actually parked. At high
  // commit rates it never is, so the common path is mutex + memcpy only; a
  // missed wakeup costs at most one flusher poll interval.
  if (mode_ == LogMode::kSync ||
      flusher_idle_.load(std::memory_order_acquire)) {
    flusher_cv_.NotifyOne();
  }
  if (mode_ == LogMode::kSync) {
    const uint64_t wait_start = obs::NowTicks();
    {
      MutexLock lock(mutex_);
      while (flushed_lsn_ < my_lsn) commit_cv_.Wait(lock);
    }
    tl_last_group_wait_ticks = obs::NowTicks() - wait_start;
    if (hists_ != nullptr) {
      hists_->Record(obs::Hist::kCommitGroupWait, tl_last_group_wait_ticks);
    }
  }
}

void Logger::FlusherLoop() {
  constexpr auto kPollInterval = std::chrono::milliseconds(1);
  std::vector<uint8_t> batch;
  uint64_t batch_records = 0;
  while (true) {
    {
      MutexLock lock(mutex_);
      flusher_idle_.store(true, std::memory_order_release);
      // Parked poll: wake on an appender's notify, shutdown, or the poll
      // tick — written as an explicit deadline loop (not a predicate
      // lambda) so the thread-safety analysis sees the guarded reads.
      const auto poll_deadline = std::chrono::steady_clock::now() +
                                 kPollInterval;
      while (buffer_.empty() && running_.load(std::memory_order_acquire)) {
        if (flusher_cv_.WaitUntil(lock, poll_deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      flusher_idle_.store(false, std::memory_order_release);
      if (buffer_.empty() && !running_.load(std::memory_order_acquire)) return;
      // Group-commit window: the first pending record opens the window; any
      // commit serialized before it closes rides the same Write+Sync (one
      // fsync for the whole group). Appender wakeups do not close the
      // window — only its deadline or shutdown does — so it holds its full
      // length under traffic.
      if (group_commit_us_ > 0 && !buffer_.empty() &&
          running_.load(std::memory_order_acquire)) {
        const auto window_deadline =
            std::chrono::steady_clock::now() +
            std::chrono::microseconds(group_commit_us_);
        while (running_.load(std::memory_order_acquire)) {
          if (flusher_cv_.WaitUntil(lock, window_deadline) ==
              std::cv_status::timeout) {
            break;
          }
        }
      }
      batch.swap(buffer_);
      batch_records = buffer_records_;
      buffer_records_ = 0;
    }
    if (!batch.empty()) {
      sink_->Write(batch.data(), batch.size());
      sink_->Sync();
      NotifyObserver(batch.data(), batch.size());
      if (stats_ != nullptr) {
        stats_->Add(Stat::kLogGroupCommits);
        stats_->Add(Stat::kLogGroupSizeSum, batch_records);
      }
      batch.clear();
    }
    // Everything not sitting in the (refilled) buffer has been flushed.
    {
      MutexLock guard(mutex_);
      flushed_lsn_ = appended_lsn_ - buffer_.size();
    }
    commit_cv_.NotifyAll();
  }
}

void Logger::FlushAll() {
  if (mode_ == LogMode::kDisabled) return;
  MutexLock lock(mutex_);
  // Wait for what is appended *now*, not for quiescence: under sustained
  // commit traffic appended_lsn_ is a moving target and a barrier chasing
  // it (the checkpointer does this mid-workload) would never return.
  const uint64_t target = appended_lsn_;
  flusher_cv_.NotifyOne();
  while (flushed_lsn_ < target) commit_cv_.Wait(lock);
}

void Logger::PauseForReplay() {
  if (mode_ == LogMode::kDisabled) return;
  FlushAll();  // anything appended before the pause still reaches the sink
  MutexLock guard(mutex_);
  replay_paused_.store(true, std::memory_order_release);
}

void Logger::ResumeAfterReplay() {
  if (mode_ == LogMode::kDisabled) return;
  MutexLock guard(mutex_);
  replay_paused_.store(false, std::memory_order_release);
}

}  // namespace mvstore
