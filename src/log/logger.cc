#include "log/logger.h"

#if defined(_WIN32)
#include <io.h>
#else
#include <unistd.h>
#endif

namespace mvstore {

void FileLogSink::Sync() {
  if (file_ == nullptr) return;
  std::fflush(file_);
  if (use_fsync_) {
#if defined(_WIN32)
    _commit(_fileno(file_));
#else
    ::fsync(fileno(file_));
#endif
  }
}

Logger::Logger(LogMode mode, LogSink* sink) : mode_(mode), sink_(sink) {
  if (mode_ == LogMode::kDisabled) return;
  running_.store(true, std::memory_order_release);
  flusher_ = std::thread([this] { FlusherLoop(); });
}

Logger::~Logger() {
  if (mode_ == LogMode::kDisabled) return;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    running_.store(false, std::memory_order_release);
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  // Final drain.
  if (!buffer_.empty() && sink_ != nullptr) {
    sink_->Write(buffer_.data(), buffer_.size());
    sink_->Sync();
  }
}

void Logger::Append(const std::vector<uint8_t>& record) {
  if (mode_ == LogMode::kDisabled || record.empty()) return;
  uint64_t my_lsn;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    buffer_.insert(buffer_.end(), record.begin(), record.end());
    appended_lsn_ += record.size();
    my_lsn = appended_lsn_;
  }
  records_.fetch_add(1, std::memory_order_relaxed);
  // Group commit: wake the flusher only when it is actually parked. At high
  // commit rates it never is, so the common path is mutex + memcpy only; a
  // missed wakeup costs at most one flusher poll interval.
  if (mode_ == LogMode::kSync ||
      flusher_idle_.load(std::memory_order_acquire)) {
    flusher_cv_.notify_one();
  }
  if (mode_ == LogMode::kSync) {
    std::unique_lock<std::mutex> lock(mutex_);
    commit_cv_.wait(lock, [&] { return flushed_lsn_ >= my_lsn; });
  }
}

void Logger::FlusherLoop() {
  constexpr auto kPollInterval = std::chrono::milliseconds(1);
  std::vector<uint8_t> batch;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      flusher_idle_.store(true, std::memory_order_release);
      flusher_cv_.wait_for(lock, kPollInterval, [&] {
        return !buffer_.empty() || !running_.load(std::memory_order_acquire);
      });
      flusher_idle_.store(false, std::memory_order_release);
      if (buffer_.empty() && !running_.load(std::memory_order_acquire)) return;
      batch.swap(buffer_);
    }
    if (!batch.empty()) {
      sink_->Write(batch.data(), batch.size());
      sink_->Sync();
      batch.clear();
    }
    // Everything not sitting in the (refilled) buffer has been flushed.
    {
      std::lock_guard<std::mutex> guard(mutex_);
      flushed_lsn_ = appended_lsn_ - buffer_.size();
    }
    commit_cv_.notify_all();
  }
}

void Logger::FlushAll() {
  if (mode_ == LogMode::kDisabled) return;
  while (true) {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (buffer_.empty() && flushed_lsn_ >= appended_lsn_) return;
    }
    flusher_cv_.notify_one();
    std::this_thread::yield();
  }
}

}  // namespace mvstore
