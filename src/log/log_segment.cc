#include "log/log_segment.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/failpoint.h"

namespace mvstore {
namespace logseg {

std::string SegmentPath(const std::string& prefix, uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ".%08llu.seg",
                static_cast<unsigned long long>(seq));
  return prefix + buf;
}

std::vector<SegmentFile> ListSegments(const std::string& prefix) {
  namespace fs = std::filesystem;
  std::vector<SegmentFile> segments;
  fs::path p(prefix);
  fs::path dir = p.has_parent_path() ? p.parent_path() : fs::path(".");
  std::string base = p.filename().string() + ".";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    // base + digits + ".seg". SegmentPath zero-pads to 8 digits but %08llu
    // widens past 10^8 rotations, so accept any run of >= 8 digits — the
    // lister must recognize everything the writer can emit.
    if (name.size() < base.size() + 12 || name.rfind(base, 0) != 0 ||
        name.compare(name.size() - 4, 4, ".seg") != 0) {
      continue;
    }
    const std::string digits =
        name.substr(base.size(), name.size() - base.size() - 4);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    SegmentFile f;
    f.seq = std::strtoull(digits.c_str(), nullptr, 10);
    f.path = entry.path().string();
    std::error_code size_ec;
    f.size = static_cast<uint64_t>(fs::file_size(entry.path(), size_ec));
    if (size_ec) f.size = 0;
    segments.push_back(std::move(f));
  }
  std::sort(segments.begin(), segments.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.seq < b.seq;
            });
  return segments;
}

}  // namespace logseg

SegmentedLogSink::SegmentedLogSink(std::string prefix, Options options,
                                   StatsCollector* stats)
    : prefix_(std::move(prefix)), options_(options), stats_(stats) {
  MutexLock guard(mutex_);
  std::vector<logseg::SegmentFile> existing = logseg::ListSegments(prefix_);
  OpenSegmentLocked(existing.empty() ? 1 : existing.back().seq);
}

SegmentedLogSink::~SegmentedLogSink() {
  MutexLock guard(mutex_);
  if (file_ != nullptr) std::fclose(file_);
}

void SegmentedLogSink::OpenSegmentLocked(uint64_t seq) {
  const std::string path = logseg::SegmentPath(prefix_, seq);
  namespace fs = std::filesystem;
  std::error_code ec;
  uint64_t size = static_cast<uint64_t>(fs::file_size(path, ec));
  if (ec) size = 0;
  if (size > 0 && size < logseg::kHeaderSize) {
    // Crash between creation and the header write; no records inside.
    fs::resize_file(path, 0, ec);
    size = 0;
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    Fail("fopen");
    return;
  }
  seq_ = seq;
  segment_size_ = size;
  if (size == 0) {
    uint8_t header[logseg::kHeaderSize];
    std::memcpy(header, logseg::kSegmentMagic, sizeof(logseg::kSegmentMagic));
    std::memcpy(header + sizeof(logseg::kSegmentMagic), &seq, sizeof(seq));
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header)) {
      Fail("fwrite(header)");
      return;
    }
    std::fflush(file_);
    segment_size_ = logseg::kHeaderSize;
  }
}

void SegmentedLogSink::RotateLocked() {
  if (file_ != nullptr) {
    bool synced = !MVSTORE_FAILPOINT("log.rotate") && std::fflush(file_) == 0;
    if (synced && options_.use_fsync) synced = PortableFsync(file_);
    if (!synced) Fail("flush at rotation");
    std::fclose(file_);
    file_ = nullptr;
  }
  OpenSegmentLocked(seq_ + 1);
  if (stats_ != nullptr) stats_->Add(Stat::kLogSegmentsRotated);
}

void SegmentedLogSink::Write(const uint8_t* data, size_t size) {
  MutexLock guard(mutex_);
  if (segment_size_ > logseg::kHeaderSize &&
      segment_size_ + size > options_.segment_bytes) {
    RotateLocked();
  }
  if (file_ == nullptr) return;
  if (MVSTORE_FAILPOINT("log.append.partial")) {
    // Torn-write crash (see FileLogSink::Write): a prefix lands, then death.
    std::fwrite(data, 1, size / 2, file_);
    std::fflush(file_);
    std::_Exit(failpoint::kCrashExitCode);
  }
  last_write_ = Position{seq_, segment_size_};
  if (MVSTORE_FAILPOINT("log.append.write") ||
      std::fwrite(data, 1, size, file_) != size) {
    Fail("fwrite");
    return;
  }
  segment_size_ += size;
}

void SegmentedLogSink::Sync() {
  MutexLock guard(mutex_);
  if (file_ == nullptr) return;
  // See FileLogSink::Sync: buffered-write and device-writeback failures
  // both surface here.
  bool synced =
      !MVSTORE_FAILPOINT("log.append.sync") && std::fflush(file_) == 0;
  if (synced && options_.use_fsync) synced = PortableFsync(file_);
  if (!synced) Fail("flush/fsync");
}

uint64_t SegmentedLogSink::current_seq() const {
  MutexLock guard(mutex_);
  return seq_;
}

SegmentedLogSink::Position SegmentedLogSink::current_pos() const {
  MutexLock guard(mutex_);
  return Position{seq_, segment_size_};
}

SegmentedLogSink::Position SegmentedLogSink::last_write_pos() const {
  MutexLock guard(mutex_);
  return last_write_;
}

Status SegmentedLogSink::MirrorAppend(uint64_t seq, uint64_t offset,
                                      const uint8_t* data, size_t size,
                                      bool sync) {
  MutexLock guard(mutex_);
  if (failed_.load(std::memory_order_acquire)) return Status::Internal();
  if (seq > seq_) {
    // The leader rotated: seal the local segment and open the leader's
    // sequence number directly (may skip numbers after a re-seed; local
    // OpenSegmentLocked writes the same 16-byte header the leader wrote,
    // so mirrored segments stay byte-identical).
    if (file_ != nullptr) {
      bool synced = std::fflush(file_) == 0;
      if (synced && options_.use_fsync) synced = PortableFsync(file_);
      if (!synced) {
        Fail("mirror flush at rotation");
        return Status::Internal();
      }
      std::fclose(file_);
      file_ = nullptr;
    }
    OpenSegmentLocked(seq);
    if (stats_ != nullptr) stats_->Add(Stat::kLogSegmentsRotated);
  }
  if (file_ == nullptr) return Status::Internal();
  if (seq != seq_ || offset != segment_size_) {
    // Not the next byte of the local stream: the mirror and the leader
    // disagree about where we are. Never write — a silent gap or overwrite
    // here is exactly the divergence this subsystem must rule out.
    return Status::InvalidArgument();
  }
  last_write_ = Position{seq_, segment_size_};
  if (std::fwrite(data, 1, size, file_) != size) {
    Fail("mirror fwrite");
    return Status::Internal();
  }
  segment_size_ += size;
  if (sync) {
    bool synced = std::fflush(file_) == 0;
    if (synced && options_.use_fsync) synced = PortableFsync(file_);
    if (!synced) {
      Fail("mirror flush/fsync");
      return Status::Internal();
    }
  }
  return Status::OK();
}

void SegmentedLogSink::SetRetainFloor(uint64_t seq) {
  retain_floor_.store(seq, std::memory_order_release);
}

Status SegmentedLogSink::TruncateActiveTail(uint64_t bytes) {
  MutexLock guard(mutex_);
  if (bytes == 0) return Status::OK();
  if (file_ == nullptr || failed_.load(std::memory_order_acquire)) {
    return Status::Internal();
  }
  if (segment_size_ < logseg::kHeaderSize + bytes) {
    return Status::InvalidArgument();
  }
  if (std::fflush(file_) != 0) {
    Fail("flush before tail truncation");
    return Status::Internal();
  }
  std::error_code ec;
  std::filesystem::resize_file(logseg::SegmentPath(prefix_, seq_),
                               segment_size_ - bytes, ec);
  if (ec) {
    Fail("tail truncation");
    return Status::Internal();
  }
  // The stream stays open in append mode, so the next write lands at the
  // new, shorter end (POSIX O_APPEND re-seeks per write).
  segment_size_ -= bytes;
  return Status::OK();
}

uint64_t SegmentedLogSink::Rotate() {
  MutexLock guard(mutex_);
  RotateLocked();
  return seq_;
}

uint64_t SegmentedLogSink::RemoveSegmentsBelow(uint64_t seq) {
  // Listing and unlinking need no lock: Rotate only ever creates files with
  // *larger* sequence numbers, so the set below `seq` is stable.
  // A bootstrapping follower may still be pulling covered segments; the
  // retain floor keeps them until its stream attaches (SetRetainFloor).
  const uint64_t floor = retain_floor_.load(std::memory_order_acquire);
  if (floor > 0 && floor < seq) seq = floor;
  uint64_t removed = 0;
  namespace fs = std::filesystem;
  for (const logseg::SegmentFile& f : logseg::ListSegments(prefix_)) {
    if (f.seq >= seq) break;
    // Injected unlink failure: the segment stays behind (recovery must
    // tolerate covered segments that outlive their checkpoint).
    if (MVSTORE_FAILPOINT("log.segment.remove")) continue;
    std::error_code ec;
    if (fs::remove(f.path, ec) && !ec) {
      ++removed;
      if (stats_ != nullptr) stats_->Add(Stat::kLogSegmentsDeleted);
    }
  }
  return removed;
}

void SegmentedLogSink::Fail(const char* what) {
  if (!failed_.exchange(true, std::memory_order_acq_rel)) {
    std::fprintf(stderr,
                 "mvstore: segmented log sink '%s' failed in %s; further "
                 "commit records will NOT be durable\n",
                 prefix_.c_str(), what);
  }
  if (stats_ != nullptr) stats_->Add(Stat::kLogWriteErrors);
}

}  // namespace mvstore
