// Group-commit redo logger (paper Sections 2.4, 5).
//
// Committing transactions serialize their write sets into a shared buffer;
// a background flusher hands full batches to a sink (file or null), so many
// commits share one I/O (group commit). The paper's experiments run
// *asynchronous* logging -- transactions do not wait for the flush -- so the
// engine defaults to kAsync; kSync waits for the flush LSN (durable commit)
// and kDisabled removes logging entirely.
#pragma once

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/counters.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/types.h"
#include "log/log_record.h"
#include "obs/histogram.h"

namespace mvstore {

enum class LogMode : uint8_t {
  kDisabled = 0,
  kAsync,  // group commit, no waiting (paper's configuration)
  kSync,   // wait for the batch containing the record to be flushed
};

/// fsync (POSIX) / _commit (Windows) a stdio stream. Returns false on
/// failure — which means acknowledged bytes may not be on the device, the
/// exact condition durability callers must surface, so never ignore it.
bool PortableFsync(std::FILE* file);

/// Destination for flushed batches.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const uint8_t* data, size_t size) = 0;
  virtual void Sync() {}
  /// Health of the sink: OK, or Internal after an open/write failure (the
  /// sink keeps accepting calls but drops bytes — callers that care about
  /// durability must check).
  virtual Status status() const { return Status::OK(); }
};

/// Counts bytes; used by benchmarks so logging exercises the full
/// serialization + batching path without depending on disk bandwidth.
class NullLogSink : public LogSink {
 public:
  void Write(const uint8_t* data, size_t size) override {
    (void)data;
    bytes_.fetch_add(size, std::memory_order_relaxed);
  }
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> bytes_{0};
};

/// Appends to a single file. Opens in append mode, so reopening a database
/// on an existing log path resumes after the existing records instead of
/// destroying them (recover-then-continue). Callers that need the log
/// truncated (a fresh benchmark run) must remove the file themselves.
///
/// DURABILITY CAVEAT: by default Sync() calls fflush only, which moves
/// bytes into the OS page cache — the log survives a process crash but NOT
/// an OS crash or power loss. Pass `use_fsync = true` (wired to
/// DatabaseOptions::fsync_log) to fsync every flushed batch; group commit
/// amortizes the fsync across the batch's transactions, but expect
/// device-bound commit latency under LogMode::kSync.
class FileLogSink : public LogSink {
 public:
  explicit FileLogSink(const std::string& path, bool use_fsync = false,
                       StatsCollector* stats = nullptr);
  ~FileLogSink() override {
    if (file_ != nullptr) std::fclose(file_);
  }
  bool ok() const { return file_ != nullptr; }
  void Write(const uint8_t* data, size_t size) override;
  /// Flush the batch to the OS; with use_fsync, force it to the device.
  void Sync() override;
  Status status() const override {
    return failed_.load(std::memory_order_acquire) ? Status::Internal()
                                                   : Status::OK();
  }

 private:
  std::FILE* file_ = nullptr;
  const bool use_fsync_;
  StatsCollector* const stats_;
  std::atomic<bool> failed_{false};
};

/// Captures all bytes in memory; for tests that parse the log back.
class MemoryLogSink : public LogSink {
 public:
  void Write(const uint8_t* data, size_t size) override {
    MutexLock guard(mutex_);
    buffer_.insert(buffer_.end(), data, data + size);
  }
  std::vector<uint8_t> Contents() {
    MutexLock guard(mutex_);
    return buffer_;
  }

 private:
  Mutex mutex_;
  std::vector<uint8_t> buffer_ GUARDED_BY(mutex_);
};

/// Observes every batch the flusher hands to the sink, called AFTER the
/// sink's Write+Sync but BEFORE kSync committers are released — the hook a
/// log shipper (src/repl/) uses to make "commit acknowledged" imply
/// "follower has the bytes": a synchronous shipper blocks inside
/// OnFlushedBatch until its followers acknowledge, and only then does the
/// flusher advance flushed_lsn_ and wake committers.
class CommitObserver {
 public:
  virtual ~CommitObserver() = default;
  /// `data`/`size` is the exact byte range just written to the sink.
  virtual void OnFlushedBatch(const uint8_t* data, size_t size) = 0;
};

class Logger {
 public:
  /// Logger takes ownership of `sink` (must be non-null unless kDisabled).
  ///
  /// `group_commit_us` > 0 opens a group-commit window: once the flusher
  /// sees a pending record it waits this long before flushing, so commits
  /// arriving within the window join the batch and share one sink
  /// Write+Sync (one fsync when the sink fsyncs). Each counted batch bumps
  /// log_group_commits by 1 and log_group_size_sum by the batch's record
  /// count, so mean group size = sum / commits. 0 keeps the pre-window
  /// behavior: the flusher swaps the buffer as soon as it wakes.
  Logger(LogMode mode, LogSink* sink, uint32_t group_commit_us = 0,
         StatsCollector* stats = nullptr,
         obs::LatencyHistograms* hists = nullptr);
  ~Logger();

  LogMode mode() const { return mode_; }
  uint32_t group_commit_us() const { return group_commit_us_; }

  /// Append one serialized commit record. In kSync mode, blocks until the
  /// record's batch has been flushed to the sink.
  void Append(const std::vector<uint8_t>& record);

  /// Flush everything buffered (checkpoint barrier, shutdown, tests).
  /// Blocks on the flusher's progress via condition variable — no spinning.
  void FlushAll();

  /// Recovery replay re-executes committed transactions through the normal
  /// commit path, which would re-append their records to a log that already
  /// holds them. While paused, Append drops records (and kSync does not
  /// wait). Only the recovery driver may use this, and only while no other
  /// thread is committing.
  void PauseForReplay();
  void ResumeAfterReplay();
  /// True between PauseForReplay and ResumeAfterReplay; engines check it to
  /// skip serializing a record Append would drop anyway.
  bool replay_paused() const {
    return replay_paused_.load(std::memory_order_relaxed);
  }

  /// Install (or clear, with nullptr) the post-flush observer. Serialized
  /// against in-flight OnFlushedBatch calls: when SetCommitObserver returns,
  /// the previous observer will never be called again and may be destroyed.
  /// `obs` is not owned and must be cleared before it dies.
  void SetCommitObserver(CommitObserver* obs);

  /// The sink, or nullptr when kDisabled. The logger stays the owner.
  LogSink* sink() { return sink_.get(); }
  /// Health of the sink (OK when disabled): Internal after an open or write
  /// failure, meaning some bytes were dropped and durability is broken.
  Status sink_status() const {
    return sink_ != nullptr ? sink_->status() : Status::OK();
  }

  uint64_t records_appended() const {
    return records_.load(std::memory_order_relaxed);
  }

  /// Ticks the calling thread spent in its most recent kSync Append wait
  /// (0 for async/disabled appends). Feeds the slow-txn trace's group-wait
  /// phase without widening Append's signature.
  static uint64_t LastGroupWaitTicks();

 private:
  friend struct TsaNegativeProbe;  // scripts/tsa_fixtures/ (compile-only)

  void FlusherLoop();
  void NotifyObserver(const uint8_t* data, size_t size);

  const LogMode mode_;
  const uint32_t group_commit_us_;
  StatsCollector* const stats_;
  obs::LatencyHistograms* const hists_;
  std::unique_ptr<LogSink> sink_;

  Mutex mutex_;
  CondVar flusher_cv_;
  CondVar commit_cv_;
  std::vector<uint8_t> buffer_ GUARDED_BY(mutex_);
  /// Records in buffer_ (group-size counter).
  uint64_t buffer_records_ GUARDED_BY(mutex_) = 0;
  uint64_t appended_lsn_ GUARDED_BY(mutex_) = 0;  // bytes appended
  uint64_t flushed_lsn_ GUARDED_BY(mutex_) = 0;   // bytes flushed

  /// Replay pause (see PauseForReplay); written under mutex_. Atomic so the
  /// engines' WriteLog fast-path check needs no lock.
  std::atomic<bool> replay_paused_{false};

  /// Post-flush hook (see CommitObserver). Guarded by its own mutex, not
  /// mutex_: the flusher holds observer_mutex_ across the callback (which
  /// may block on follower acknowledgements) while committers keep
  /// appending under mutex_ undisturbed.
  Mutex observer_mutex_;
  CommitObserver* observer_ GUARDED_BY(observer_mutex_) = nullptr;

  std::atomic<uint64_t> records_{0};
  std::atomic<bool> running_{false};
  /// True while the flusher is parked; appenders skip the wakeup otherwise.
  std::atomic<bool> flusher_idle_{false};
  std::thread flusher_;
};

}  // namespace mvstore
