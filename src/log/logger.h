// Group-commit redo logger (paper Sections 2.4, 5).
//
// Committing transactions serialize their write sets into a shared buffer;
// a background flusher hands full batches to a sink (file or null), so many
// commits share one I/O (group commit). The paper's experiments run
// *asynchronous* logging -- transactions do not wait for the flush -- so the
// engine defaults to kAsync; kSync waits for the flush LSN (durable commit)
// and kDisabled removes logging entirely.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "log/log_record.h"

namespace mvstore {

enum class LogMode : uint8_t {
  kDisabled = 0,
  kAsync,  // group commit, no waiting (paper's configuration)
  kSync,   // wait for the batch containing the record to be flushed
};

/// Destination for flushed batches.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const uint8_t* data, size_t size) = 0;
  virtual void Sync() {}
};

/// Counts bytes; used by benchmarks so logging exercises the full
/// serialization + batching path without depending on disk bandwidth.
class NullLogSink : public LogSink {
 public:
  void Write(const uint8_t* data, size_t size) override {
    (void)data;
    bytes_.fetch_add(size, std::memory_order_relaxed);
  }
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> bytes_{0};
};

/// Appends to a file.
///
/// DURABILITY CAVEAT: by default Sync() calls fflush only, which moves
/// bytes into the OS page cache — the log survives a process crash but NOT
/// an OS crash or power loss. Pass `use_fsync = true` (wired to
/// DatabaseOptions::fsync_log) to fsync every flushed batch; group commit
/// amortizes the fsync across the batch's transactions, but expect
/// device-bound commit latency under LogMode::kSync.
class FileLogSink : public LogSink {
 public:
  explicit FileLogSink(const std::string& path, bool use_fsync = false)
      : use_fsync_(use_fsync) {
    file_ = std::fopen(path.c_str(), "wb");
  }
  ~FileLogSink() override {
    if (file_ != nullptr) std::fclose(file_);
  }
  bool ok() const { return file_ != nullptr; }
  void Write(const uint8_t* data, size_t size) override {
    if (file_ != nullptr) std::fwrite(data, 1, size, file_);
  }
  /// Flush the batch to the OS; with use_fsync, force it to the device.
  void Sync() override;

 private:
  std::FILE* file_ = nullptr;
  const bool use_fsync_;
};

/// Captures all bytes in memory; for tests that parse the log back.
class MemoryLogSink : public LogSink {
 public:
  void Write(const uint8_t* data, size_t size) override {
    std::lock_guard<std::mutex> guard(mutex_);
    buffer_.insert(buffer_.end(), data, data + size);
  }
  std::vector<uint8_t> Contents() {
    std::lock_guard<std::mutex> guard(mutex_);
    return buffer_;
  }

 private:
  std::mutex mutex_;
  std::vector<uint8_t> buffer_;
};

class Logger {
 public:
  /// Logger takes ownership of `sink` (must be non-null unless kDisabled).
  Logger(LogMode mode, LogSink* sink);
  ~Logger();

  LogMode mode() const { return mode_; }

  /// Append one serialized commit record. In kSync mode, blocks until the
  /// record's batch has been flushed to the sink.
  void Append(const std::vector<uint8_t>& record);

  /// Flush everything buffered (shutdown/tests).
  void FlushAll();

  uint64_t records_appended() const {
    return records_.load(std::memory_order_relaxed);
  }

 private:
  void FlusherLoop();

  const LogMode mode_;
  std::unique_ptr<LogSink> sink_;

  std::mutex mutex_;
  std::condition_variable flusher_cv_;
  std::condition_variable commit_cv_;
  std::vector<uint8_t> buffer_;
  uint64_t appended_lsn_ = 0;  // bytes appended
  uint64_t flushed_lsn_ = 0;   // bytes flushed

  std::atomic<uint64_t> records_{0};
  std::atomic<bool> running_{false};
  /// True while the flusher is parked; appenders skip the wakeup otherwise.
  std::atomic<bool> flusher_idle_{false};
  std::thread flusher_;
};

}  // namespace mvstore
