// Bucket locks for phantom protection in MV/L (paper Section 4.1.2).
//
// A bucket lock does not block inserts; it forces inserters to take wait-for
// dependencies on the lock holders (Section 4.2.2). The LockCount lives in
// the hash bucket itself (fast existence check); the LockList lives here, in
// "a separate hash table with the bucket address as the key".
#pragma once

#include <unordered_map>
#include <vector>

#include "common/spin_latch.h"
#include "common/types.h"
#include "storage/hash_index.h"
#include "util/bits.h"

namespace mvstore {

class BucketLockTable {
 public:
  static constexpr uint32_t kPartitions = 64;

  /// Acquire a bucket lock for `holder`. Multiple transactions can hold the
  /// same bucket locked.
  void Lock(HashIndex::Bucket* bucket, TxnId holder) {
    Partition& p = PartitionFor(bucket);
    SpinLatchGuard guard(p.latch);
    p.lists[bucket].push_back(holder);
    HashIndex::IncrBucketLockCount(*bucket);
  }

  /// Release `holder`'s lock on `bucket`.
  void Unlock(HashIndex::Bucket* bucket, TxnId holder) {
    Partition& p = PartitionFor(bucket);
    SpinLatchGuard guard(p.latch);
    auto it = p.lists.find(bucket);
    if (it == p.lists.end()) return;
    auto& holders = it->second;
    for (size_t i = 0; i < holders.size(); ++i) {
      if (holders[i] == holder) {
        holders[i] = holders.back();
        holders.pop_back();
        HashIndex::DecrBucketLockCount(*bucket);
        break;
      }
    }
    if (holders.empty()) p.lists.erase(it);
  }

  /// Snapshot of current holders. Used by inserters to take wait-for
  /// dependencies; check the bucket's LockCount first to skip the latch on
  /// the (common) unlocked path.
  std::vector<TxnId> Holders(HashIndex::Bucket* bucket) {
    Partition& p = PartitionFor(bucket);
    SpinLatchGuard guard(p.latch);
    auto it = p.lists.find(bucket);
    return it == p.lists.end() ? std::vector<TxnId>{} : it->second;
  }

 private:
  struct alignas(kCacheLineSize) Partition {
    SpinLatch latch;
    std::unordered_map<HashIndex::Bucket*, std::vector<TxnId>> lists
        GUARDED_BY(latch);
  };

  Partition& PartitionFor(HashIndex::Bucket* bucket) {
    return partitions_[HashInt64(reinterpret_cast<uint64_t>(bucket)) %
                       kPartitions];
  }

  std::array<Partition, kPartitions> partitions_;
};

}  // namespace mvstore
