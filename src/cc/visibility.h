// Version visibility and updatability (paper Sections 2.5 and 2.6).
//
// Implements the full case analysis of Table 1 (Begin field holds a
// transaction ID) and Table 2 (End field holds a transaction ID), including
// speculative reads and speculative ignores that register commit
// dependencies instead of blocking (Section 2.7).
//
// Two modes:
//  * kNormalProcessing  - speculation allowed, exactly as in the paper --
//    with one deliberate deviation: Read Committed readers never speculate.
//    RC promises no snapshot, so a Preparing transaction is treated like an
//    Active one (its versions not yet committed; the previous version is
//    still the latest committed state). The paper's Tables 1/2 would take a
//    commit dependency here; declining it keeps the RC hot path free of
//    dependency futex round trips. Snapshot-based levels speculate as
//    written. A transaction never blocks during normal processing.
//  * kValidation        - used while re-checking reads/scans at the end of
//    an optimistic transaction. Speculative *reads* are not allowed
//    (Section 3.2: commit dependencies may be acquired during validation
//    "but only if it speculatively ignores a version"); encountering a
//    Preparing creator whose result would matter fails conservatively.
#pragma once

#include "common/counters.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/version.h"
#include "txn/commit_dep.h"
#include "txn/transaction.h"
#include "txn/txn_table.h"

namespace mvstore {

enum class VisibilityMode {
  kNormalProcessing,
  kValidation,
};

/// Outcome of a visibility test.
struct VisibilityResult {
  /// Version is visible at the probe's read time (possibly speculatively).
  bool visible = false;
  /// The probing transaction must abort (cascading abort discovered, or a
  /// validation-mode conflict with a Preparing transaction).
  bool must_abort = false;
  AbortReason abort_reason = AbortReason::kNone;
};

/// Shared context for visibility probes.
struct VisibilityContext {
  Transaction* self = nullptr;
  TxnTable* txn_table = nullptr;
  StatsCollector* stats = nullptr;
  VisibilityMode mode = VisibilityMode::kNormalProcessing;
  /// The probe feeds an update/delete of the found version. Read Committed
  /// then speculates like every other level (the paper's speculative
  /// update): declining would surface the previous version, whose write
  /// lock is still held by the Preparing transaction -- a guaranteed
  /// first-writer-wins abort where a commit dependency would have chained.
  bool for_update = false;
};

/// Test whether `v` is visible to `ctx.self` as of `read_time`.
/// May register commit dependencies on `ctx.self` (speculative read /
/// speculative ignore). The caller must hold an EpochGuard.
VisibilityResult CheckVisibility(const VisibilityContext& ctx, Version* v,
                                 Timestamp read_time);

/// Classification of a version for update attempts (Section 2.6).
enum class Updatability {
  /// Latest version: End == infinity, or write-locked by an aborted txn.
  kUpdatable,
  /// A committed newer version exists, or an active/preparing transaction
  /// holds the write lock: write-write conflict, first-writer-wins.
  kWriteConflict,
};

/// Check whether `v` is updatable *right now*. Advisory: the authoritative
/// check is the CAS that installs the write lock.
Updatability CheckUpdatability(const VisibilityContext& ctx, Version* v);

}  // namespace mvstore
