#include "cc/mv_engine.h"

#include "log/log_segment.h"
#include "obs/slow_txn.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace mvstore {

namespace {

/// Abort reason to use when AbortNow was observed.
AbortReason KillReason(Transaction* txn) {
  AbortReason hint = txn->kill_reason.load(std::memory_order_relaxed);
  return hint == AbortReason::kNone ? AbortReason::kCascading : hint;
}

Stat AbortStat(AbortReason reason) {
  switch (reason) {
    case AbortReason::kWriteWriteConflict:
      return Stat::kAbortWriteConflict;
    case AbortReason::kReadValidation:
      return Stat::kAbortValidation;
    case AbortReason::kPhantom:
      return Stat::kAbortPhantom;
    case AbortReason::kCascading:
      return Stat::kAbortCascading;
    case AbortReason::kDeadlock:
      return Stat::kAbortDeadlock;
    case AbortReason::kReadLockFailed:
    case AbortReason::kWaitForRefused:
      return Stat::kAbortLockFailed;
    default:
      return Stat::kTxnAborted;
  }
}

}  // namespace

MVEngine::MVEngine(MVEngineOptions options)
    : options_(options),
      hists_(options_.enable_latency_histograms),
      slow_txn_ticks_(obs::SlowTxnThresholdTicks(options_.slow_txn_us)),
      txn_pool_(options_.use_slab_allocator, &stats_),
      ts_gen_(options_.ts_block_size) {
  catalog_.ConfigureMemory(
      Table::MemoryOptions{options_.use_slab_allocator, &stats_, &epoch_});
  LogSink* sink = nullptr;
  if (options_.log_mode != LogMode::kDisabled) {
    if (options_.log_path.empty()) {
      sink = new NullLogSink();
    } else if (options_.log_segment_bytes > 0) {
      sink = new SegmentedLogSink(
          options_.log_path,
          SegmentedLogSink::Options{options_.log_segment_bytes,
                                    options_.fsync_log},
          &stats_);
    } else {
      sink = new FileLogSink(options_.log_path, options_.fsync_log, &stats_);
    }
  }
  logger_ = std::make_unique<Logger>(options_.log_mode, sink,
                                     options_.group_commit_us, &stats_,
                                     &hists_);
  gc_ = std::make_unique<GarbageCollector>(txn_table_, epoch_, stats_,
                                           options_.gc_interval_us);
  gc_->SetHistograms(&hists_);
  gc_->SetNowSource(
      [](void* arg) {
        return static_cast<TimestampGenerator*>(arg)->Current() + 1;
      },
      &ts_gen_);
  if (options_.gc_interval_us > 0) gc_->Start();
  deadlock_ = std::make_unique<DeadlockDetector>(
      txn_table_, epoch_, stats_,
      options_.deadlock_interval_us > 0 ? options_.deadlock_interval_us : 1000);
  if (options_.deadlock_interval_us > 0) deadlock_->Start();
}

MVEngine::~MVEngine() {
  deadlock_->Stop();
  gc_->Stop();
  // Abandoned transactions (tests that Begin and never finish): abort-free
  // teardown -- just release the objects.
  for (Transaction* t : txn_table_.Snapshot()) {
    txn_table_.Remove(t->id);
    txn_pool_.Release(t);
  }
  // Drain the GC queue completely: with no live transactions, the watermark
  // passes everything.
  gc_->RunOnce();
  epoch_.DrainAll();
  // Free versions still linked in the indexes (the live database image).
  for (uint32_t tid = 0; tid < catalog_.num_tables(); ++tid) {
    Table& table = catalog_.table(tid);
    if (table.num_indexes() == 0) continue;
    std::vector<Version*> versions;
    table.index(0).ScanAll([&](Version* v) {
      versions.push_back(v);
      return true;
    });
    for (Version* v : versions) table.FreeUnpublishedVersion(v);
  }
}

Transaction* MVEngine::Begin(IsolationLevel isolation, bool pessimistic,
                             bool read_only) {
  // Section 3.4, "Read-only transactions": a transaction that performs no
  // writes and reads a begin-time snapshot is trivially serializable (its
  // serialization point is its begin timestamp), so declared-read-only
  // transactions requesting Repeatable Read or Serializable run at Snapshot
  // -- no read locks, no read-set tracking, no validation. This is what
  // isolates the paper's long readers from updaters (Figures 8 and 9).
  if (read_only && (isolation == IsolationLevel::kSerializable ||
                    isolation == IsolationLevel::kRepeatableRead)) {
    isolation = IsolationLevel::kSnapshot;
  }
  Transaction* txn =
      txn_pool_.Acquire(id_gen_.Next(), isolation, pessimistic, read_only);
  // Sampled commit-pipeline tracing: the decision rides start_ticks so a
  // sampled transaction gets a coherent whole-pipeline trace. slow_txn_us
  // forces every commit to be timed (see obs::SampleThisTxn).
  if (hists_.enabled() && (slow_txn_ticks_ != 0 || obs::SampleThisTxn())) {
    txn->start_ticks = obs::NowTicks();
  }
  // Publish with begin_ts == 0 first: the GC watermark treats an unknown
  // begin timestamp as "could be anything", so no version this transaction
  // might see can be reclaimed in the window before the timestamp is set.
  txn_table_.Insert(txn);
  // A begin timestamp is a read of the clock, not a draw from it (Section 6:
  // drawing is the one critical section every transaction shares, so only
  // commits pay for it). Current() is at or above every finished commit and
  // strictly below every end timestamp drawn after it, which is exactly
  // what a snapshot needs.
  txn->begin_ts.store(ts_gen_.Current(), std::memory_order_release);
  return txn;
}

Timestamp MVEngine::ReadTime(Transaction* txn) const {
  // Section 3.4 (optimistic) / Section 4.3.1 (pessimistic).
  if (txn->pessimistic) {
    return txn->isolation == IsolationLevel::kSnapshot
               ? txn->begin_ts.load(std::memory_order_acquire)
               : ts_gen_.Current();
  }
  return txn->isolation == IsolationLevel::kReadCommitted
             ? ts_gen_.Current()
             : txn->begin_ts.load(std::memory_order_acquire);
}

VisibilityContext MVEngine::VisCtx(Transaction* txn, VisibilityMode mode) {
  VisibilityContext ctx;
  ctx.self = txn;
  ctx.txn_table = &txn_table_;
  ctx.stats = &stats_;
  ctx.mode = mode;
  return ctx;
}

/// ---------------------------------------------------------------------------
/// Record locks (Section 4.2.1)
/// ---------------------------------------------------------------------------

Status MVEngine::AcquireReadLock(Transaction* txn, Version* v, bool* locked) {
  *locked = false;
  while (true) {
    uint64_t end_word = v->end.load(std::memory_order_acquire);

    if (!lockword::IsLockWord(end_word)) {
      if (lockword::TimestampOf(end_word) != kInfinity) {
        // Not a latest version: no read lock required (Section 4.3.1).
        return Status::OK();
      }
      uint64_t desired = lockword::MakeLockWord(1, lockword::kNoWriter);
      if (v->end.compare_exchange_weak(end_word, desired,
                                       std::memory_order_acq_rel)) {
        *locked = true;
        return Status::OK();
      }
      continue;
    }

    if (lockword::NoMoreReadLocks(end_word) ||
        lockword::ReadCountOf(end_word) >= lockword::kMaxReadLocks) {
      return Status::Aborted(AbortReason::kReadLockFailed);
    }

    uint32_t count = lockword::ReadCountOf(end_word);
    TxnId writer = lockword::WriterOf(end_word);

    if (writer != lockword::kNoWriter && writer != txn->id && count == 0) {
      // First read lock on a write-locked version: the writer must wait for
      // us (Section 4.2.1), unless it already aborted.
      Transaction* tu = txn_table_.Find(writer);
      if (tu == nullptr || tu->id != writer) {
        CpuRelax();
        continue;  // writer terminated; End word is being finalized
      }
      if (tu->state.load(std::memory_order_acquire) == TxnState::kAborted) {
        // Aborted writer: lockable without a dependency.
        if (v->end.compare_exchange_weak(
                end_word, lockword::WithReadCount(end_word, 1),
                std::memory_order_acq_rel)) {
          *locked = true;
          return Status::OK();
        }
        continue;
      }
      if (tu->no_more_wait_fors.load(std::memory_order_seq_cst)) {
        return Status::Aborted(AbortReason::kReadLockFailed);
      }
      tu->wait_for_counter.fetch_add(1, std::memory_order_seq_cst);
      if (tu->no_more_wait_fors.load(std::memory_order_seq_cst)) {
        // The writer reached its precommit barrier concurrently; back out.
        tu->wait_for_counter.fetch_sub(1, std::memory_order_seq_cst);
        tu->NotifyEvent();
        return Status::Aborted(AbortReason::kReadLockFailed);
      }
      if (v->end.compare_exchange_strong(end_word,
                                         lockword::WithReadCount(end_word, 1),
                                         std::memory_order_acq_rel)) {
        stats_.Add(Stat::kWaitForDepsTaken);
        *locked = true;
        return Status::OK();
      }
      // Lost the race; undo the dependency and retry from scratch.
      tu->wait_for_counter.fetch_sub(1, std::memory_order_seq_cst);
      tu->NotifyEvent();
      continue;
    }

    if (v->end.compare_exchange_weak(
            end_word, lockword::WithReadCount(end_word, count + 1),
            std::memory_order_acq_rel)) {
      *locked = true;
      return Status::OK();
    }
  }
}

void MVEngine::ReleaseReadLock(Transaction* /*txn*/, Version* v) {
  while (true) {
    uint64_t end_word = v->end.load(std::memory_order_acquire);
    if (!lockword::IsLockWord(end_word)) return;  // finalized under us (abort)
    uint32_t count = lockword::ReadCountOf(end_word);
    if (count == 0) return;  // defensive: already released
    TxnId writer = lockword::WriterOf(end_word);

    if (count == 1 && writer != lockword::kNoWriter) {
      // Last read lock on a write-locked version: set NoMoreReadLocks and
      // release the writer's wait-for dependency (Section 4.2.1). Both
      // fields live in the same word, so one CAS is atomic for both.
      uint64_t desired = lockword::MakeLockWord(0, writer, true);
      if (v->end.compare_exchange_weak(end_word, desired,
                                       std::memory_order_acq_rel)) {
        Transaction* tu = txn_table_.Find(writer);
        if (tu != nullptr && tu->id == writer) {
          tu->wait_for_counter.fetch_sub(1, std::memory_order_seq_cst);
          tu->NotifyEvent();
        }
        return;
      }
      continue;
    }

    uint64_t desired;
    if (count == 1 && writer == lockword::kNoWriter &&
        !lockword::NoMoreReadLocks(end_word)) {
      // No writer, no more readers: normalize back to "end = infinity".
      desired = lockword::MakeTimestamp(kInfinity);
    } else {
      desired = lockword::WithReadCount(end_word, count - 1);
    }
    if (v->end.compare_exchange_weak(end_word, desired,
                                     std::memory_order_acq_rel)) {
      return;
    }
  }
}

void MVEngine::ReleaseOwnReadLock(Transaction* txn, Version* v) {
  SpinLatchGuard latch(txn->read_set_latch);
  for (ReadSetEntry& e : txn->read_set) {
    if (e.version == v && e.read_locked) {
      ReleaseReadLock(txn, v);
      e.read_locked = false;
      return;
    }
  }
}

/// ---------------------------------------------------------------------------
/// Write locks (Sections 2.6, 4.3.1)
/// ---------------------------------------------------------------------------

Status MVEngine::InstallWriteLock(Transaction* txn, Version* v) {
  while (true) {
    uint64_t end_word = v->end.load(std::memory_order_acquire);

    if (!lockword::IsLockWord(end_word)) {
      if (lockword::TimestampOf(end_word) != kInfinity) {
        // A committed newer version exists.
        return Status::Aborted(AbortReason::kWriteWriteConflict);
      }
      uint64_t desired = lockword::MakeLockWord(0, txn->id);
      if (v->end.compare_exchange_weak(end_word, desired,
                                       std::memory_order_acq_rel)) {
        return Status::OK();
      }
      continue;  // "some other transaction has sneaked in" -- re-examine
    }

    TxnId writer = lockword::WriterOf(end_word);

    if (writer == txn->id) {
      // We already hold the write lock (double update of one version).
      return Status::Aborted(AbortReason::kWriteWriteConflict);
    }

    if (writer == lockword::kNoWriter) {
      // Read-locked only: eager update (Section 4.2). Take the write lock
      // and a wait-for dependency on the readers.
      uint64_t desired = lockword::WithWriter(end_word, txn->id);
      if (v->end.compare_exchange_weak(end_word, desired,
                                       std::memory_order_acq_rel)) {
        if (lockword::ReadCountOf(end_word) > 0 && UsesWaitFors(txn)) {
          txn->wait_for_counter.fetch_add(1, std::memory_order_seq_cst);
          stats_.Add(Stat::kWaitForDepsTaken);
        }
        return Status::OK();
      }
      continue;
    }

    // Write-locked by someone else: updatable only if they aborted.
    Transaction* te = txn_table_.Find(writer);
    if (te == nullptr || te->id != writer) {
      CpuRelax();
      continue;  // terminated; the word is being finalized -- reread
    }
    TxnState s = te->state.load(std::memory_order_acquire);
    if (s == TxnState::kTerminated) {
      CpuRelax();
      continue;
    }
    if (s == TxnState::kAborted) {
      // Take over the aborted writer's lock, preserving reader state.
      uint64_t desired = lockword::WithWriter(end_word, txn->id);
      if (v->end.compare_exchange_weak(end_word, desired,
                                       std::memory_order_acq_rel)) {
        if (lockword::ReadCountOf(end_word) > 0 && UsesWaitFors(txn)) {
          txn->wait_for_counter.fetch_add(1, std::memory_order_seq_cst);
          stats_.Add(Stat::kWaitForDepsTaken);
        }
        return Status::OK();
      }
      continue;
    }
    // Active, Preparing or Committed: first-writer-wins.
    return Status::Aborted(AbortReason::kWriteWriteConflict);
  }
}

/// ---------------------------------------------------------------------------
/// Bucket-lock dependencies (Section 4.2.2)
/// ---------------------------------------------------------------------------

Status MVEngine::ImposePhantomDependency(Transaction* txn, Version* v) {
  Timestamp read_time = ReadTime(txn);
  while (true) {
    uint64_t begin_word = v->begin.load(std::memory_order_acquire);
    if (!beginword::IsTxnId(begin_word)) {
      Timestamp ts = beginword::TimestampOf(begin_word);
      if (ts != kInfinity && ts > read_time) {
        // Committed during our scan setup: a phantom we can no longer
        // prevent. Conservative abort (rare race window).
        return Status::Aborted(AbortReason::kPhantom);
      }
      return Status::OK();  // garbage, or invisible for End-side reasons
    }
    TxnId tb_id = beginword::TxnIdOf(begin_word);
    if (tb_id == txn->id) return Status::OK();

    Transaction* tb = txn_table_.Find(tb_id);
    if (tb == nullptr || tb->id != tb_id) {
      CpuRelax();
      continue;  // finalized; reread
    }
    TxnState s = tb->state.load(std::memory_order_acquire);
    switch (s) {
      case TxnState::kAborted:
        return Status::OK();
      case TxnState::kTerminated:
        CpuRelax();
        continue;
      case TxnState::kCommitted: {
        Timestamp ts = AwaitEndTimestamp(tb);
        return ts > read_time ? Status::Aborted(AbortReason::kPhantom)
                              : Status::OK();
      }
      case TxnState::kPreparing: {
        Timestamp ts = AwaitEndTimestamp(tb);
        // ts < read_time would have made the version speculatively visible,
        // so here ts > read_time: the inserter is already past its barrier
        // and will commit into our scan range.
        return ts > read_time ? Status::Aborted(AbortReason::kPhantom)
                              : Status::OK();
      }
      case TxnState::kActive: {
        // "TS registers a wait-for dependency on TU's behalf" (4.2.2).
        if (tb->no_more_wait_fors.load(std::memory_order_seq_cst)) {
          return Status::Aborted(AbortReason::kWaitForRefused);
        }
        tb->wait_for_counter.fetch_add(1, std::memory_order_seq_cst);
        if (tb->no_more_wait_fors.load(std::memory_order_seq_cst)) {
          tb->wait_for_counter.fetch_sub(1, std::memory_order_seq_cst);
          tb->NotifyEvent();
          return Status::Aborted(AbortReason::kWaitForRefused);
        }
        {
          SpinLatchGuard guard(txn->waiting_latch);
          txn->waiting_txn_list.push_back(tb_id);
        }
        stats_.Add(Stat::kWaitForDepsTaken);
        return Status::OK();
      }
    }
  }
}

Status MVEngine::TakeBucketLockDependencies(Transaction* txn,
                                            HashIndex::Bucket* bucket) {
  if (HashIndex::BucketLockCount(*bucket) == 0) return Status::OK();
  for (TxnId holder_id : bucket_locks_.Holders(bucket)) {
    if (holder_id == txn->id) continue;
    EpochGuard guard(epoch_);
    Transaction* holder = txn_table_.Find(holder_id);
    if (holder == nullptr || holder->id != holder_id) continue;  // completed
    bool added = false;
    {
      SpinLatchGuard latch(holder->waiting_latch);
      if (!holder->waiting_drained) {
        holder->waiting_txn_list.push_back(txn->id);
        added = true;
      }
    }
    if (added) {
      txn->wait_for_counter.fetch_add(1, std::memory_order_seq_cst);
      stats_.Add(Stat::kWaitForDepsTaken);
    }
  }
  return Status::OK();
}

/// ---------------------------------------------------------------------------
/// Scans and point operations
/// ---------------------------------------------------------------------------

Version* MVEngine::FindVisible(Transaction* txn, Table& table, IndexId index_id,
                               uint64_t key, Timestamp read_time,
                               const Predicate& residual, Status* status,
                               bool for_update) {
  *status = Status::OK();
  VisibilityContext ctx = VisCtx(txn, VisibilityMode::kNormalProcessing);
  ctx.for_update = for_update;
  Version* found = nullptr;
  bool serializable_pessimistic =
      txn->pessimistic && txn->isolation == IsolationLevel::kSerializable;
  auto probe = [&](Version* v) {
    if (table.IndexKeyOf(index_id, v) != key) return true;
    if (residual && !residual(v->Payload())) return true;
    VisibilityResult vis = CheckVisibility(ctx, v, read_time);
    if (vis.must_abort) {
      *status = Status::Aborted(vis.abort_reason);
      return false;
    }
    if (!vis.visible) {
      if (serializable_pessimistic) {
        Status s = ImposePhantomDependency(txn, v);
        if (!s.ok()) {
          *status = s;
          return false;
        }
      }
      return true;
    }
    found = v;
    return false;
  };
  table.ScanIndexKey(index_id, key, probe);
  return found;
}

Status MVEngine::Scan(Transaction* txn, TableId table_id, IndexId index_id,
                      uint64_t key, const Predicate& residual,
                      const ScanConsumer& consumer) {
  if (txn->abort_now.load(std::memory_order_acquire)) {
    return DoAbort(txn, KillReason(txn));
  }
  Table& table = catalog_.table(table_id);
  if (table.ordered_index(index_id) != nullptr) {
    // Equality probe on the ordered access path: a degenerate range. Phantom
    // protection comes from the range machinery (precommit rescan), not
    // bucket locks — ordered nodes have no bucket lock word.
    return ScanRange(txn, table_id, index_id, key, key, residual, consumer);
  }
  HashIndex& index = table.index(index_id);
  EpochGuard guard(epoch_);

  Timestamp read_time = ReadTime(txn);
  const bool serializable = txn->isolation == IsolationLevel::kSerializable;
  const bool repeatable =
      serializable || txn->isolation == IsolationLevel::kRepeatableRead;

  // Phantom protection setup (Section 3.1 "Start scan" / 4.3.1).
  if (serializable && !txn->pessimistic) {
    txn->AddScan(&table, &index, key, residual);
  }
  HashIndex::Bucket* bucket = &index.BucketFor(key);
  if (serializable && txn->pessimistic) {
    bucket_locks_.Lock(bucket, txn->id);
    txn->bucket_lock_set.push_back(BucketLockEntry{&index, bucket});
  }

  VisibilityContext ctx = VisCtx(txn, VisibilityMode::kNormalProcessing);
  Status result = Status::OK();
  index.ScanBucket(key, [&](Version* v) {
    if (index.KeyOf(v) != key) return true;           // hash collision
    if (residual && !residual(v->Payload())) return true;  // Check predicate
    VisibilityResult vis = CheckVisibility(ctx, v, read_time);  // visibility
    if (vis.must_abort) {
      result = Status::Aborted(vis.abort_reason);
      return false;
    }
    if (!vis.visible) {
      if (serializable && txn->pessimistic) {
        Status s = ImposePhantomDependency(txn, v);
        if (!s.ok()) {
          result = s;
          return false;
        }
      }
      return true;
    }
    // Read version: track / lock according to scheme + isolation.
    if (txn->pessimistic) {
      if (repeatable) {
        bool locked = false;
        Status s = AcquireReadLock(txn, v, &locked);
        if (!s.ok()) {
          result = s;
          return false;
        }
        if (locked) txn->AddRead(v, true);
      }
    } else if (repeatable) {
      txn->AddRead(v, false);
    }
    return consumer(v->Payload());
  });

  if (!result.ok() && result.IsAborted()) {
    return DoAbort(txn, result.abort_reason());
  }
  return result;
}

Status MVEngine::ScanRange(Transaction* txn, TableId table_id,
                           IndexId index_id, uint64_t lo, uint64_t hi,
                           const Predicate& residual,
                           const ScanConsumer& consumer) {
  if (txn->abort_now.load(std::memory_order_acquire)) {
    return DoAbort(txn, KillReason(txn));
  }
  Table& table = catalog_.table(table_id);
  OrderedIndex* index = table.ordered_index(index_id);
  if (index == nullptr) return Status::InvalidArgument();
  EpochGuard guard(epoch_);

  Timestamp read_time = ReadTime(txn);
  const bool serializable = txn->isolation == IsolationLevel::kSerializable;
  const bool repeatable =
      serializable || txn->isolation == IsolationLevel::kRepeatableRead;

  // Phantom protection: the range joins the transaction's read footprint
  // and is revalidated by rescan at precommit — for MV/L too, since bucket
  // locks cannot cover a key interval. (Declared-read-only transactions ran
  // through the Snapshot downgrade at Begin and never register ranges.)
  if (serializable) {
    txn->AddRangeScan(&table, index, lo, hi, residual);
  }

  VisibilityContext ctx = VisCtx(txn, VisibilityMode::kNormalProcessing);
  Status result = Status::OK();
  index->ScanRange(lo, hi, [&](Version* v) {
    if (residual && !residual(v->Payload())) return true;
    VisibilityResult vis = CheckVisibility(ctx, v, read_time);
    if (vis.must_abort) {
      result = Status::Aborted(vis.abort_reason);
      return false;
    }
    if (!vis.visible) return true;
    // Read stability, per scheme + isolation (same policy as Scan).
    if (txn->pessimistic) {
      if (repeatable) {
        bool locked = false;
        Status s = AcquireReadLock(txn, v, &locked);
        if (!s.ok()) {
          result = s;
          return false;
        }
        if (locked) txn->AddRead(v, true);
      }
    } else if (repeatable) {
      txn->AddRead(v, false);
    }
    return consumer(v->Payload());
  });

  if (!result.ok() && result.IsAborted()) {
    return DoAbort(txn, result.abort_reason());
  }
  return result;
}

Status MVEngine::ScanTable(Transaction* txn, TableId table_id,
                           const ScanConsumer& consumer) {
  if (txn->abort_now.load(std::memory_order_acquire)) {
    return DoAbort(txn, KillReason(txn));
  }
  Table& table = catalog_.table(table_id);
  HashIndex& index = table.index(0);
  EpochGuard guard(epoch_);
  Timestamp read_time = ReadTime(txn);
  VisibilityContext ctx = VisCtx(txn, VisibilityMode::kNormalProcessing);
  Status result = Status::OK();
  index.ScanAll([&](Version* v) {
    VisibilityResult vis = CheckVisibility(ctx, v, read_time);
    if (vis.must_abort) {
      result = Status::Aborted(vis.abort_reason);
      return false;
    }
    if (!vis.visible) return true;
    return consumer(v->Payload());
  });
  if (result.IsAborted()) return DoAbort(txn, result.abort_reason());
  return result;
}

Status MVEngine::Read(Transaction* txn, TableId table_id, IndexId index_id,
                      uint64_t key, void* out) {
  Table& table = catalog_.table(table_id);
  bool found = false;
  Status s = Scan(txn, table_id, index_id, key, nullptr,
                  [&](const void* payload) {
                    std::memcpy(out, payload, table.payload_size());
                    found = true;
                    return false;
                  });
  if (!s.ok()) return s;
  return found ? Status::OK() : Status::NotFound();
}

namespace {

/// True if `v` could (still) materialize key `key`: an uncommitted latest
/// version created by a live transaction other than `self`.
bool IsInFlightInsert(TxnTable& txn_table, Version* v, TxnId self) {
  uint64_t begin_word = v->begin.load(std::memory_order_acquire);
  if (!beginword::IsTxnId(begin_word)) return false;
  TxnId creator = beginword::TxnIdOf(begin_word);
  if (creator == self) return false;
  Transaction* tb = txn_table.Find(creator);
  if (tb == nullptr || tb->id != creator) return false;
  TxnState s = tb->state.load(std::memory_order_acquire);
  if (s != TxnState::kActive && s != TxnState::kPreparing) return false;
  // Must still be a latest-form version (not already superseded).
  uint64_t end_word = v->end.load(std::memory_order_acquire);
  if (!lockword::IsLockWord(end_word)) {
    return lockword::TimestampOf(end_word) == kInfinity;
  }
  return lockword::WriterOf(end_word) == lockword::kNoWriter;
}

}  // namespace

Status MVEngine::Insert(Transaction* txn, TableId table_id,
                        const void* payload) {
  if (txn->read_only) return Status::InvalidArgument();
  if (txn->abort_now.load(std::memory_order_acquire)) {
    return DoAbort(txn, KillReason(txn));
  }
  Table& table = catalog_.table(table_id);
  EpochGuard guard(epoch_);
  HashIndex& primary = table.index(0);
  const uint64_t key = primary.KeyOfPayload(payload);
  const bool unique = table.index_def(0).unique;
  Timestamp read_time = ReadTime(txn);
  VisibilityContext ctx = VisCtx(txn, VisibilityMode::kNormalProcessing);

  auto key_conflict = [&](Version* exclude) {
    bool conflict = false;
    primary.ScanBucket(key, [&](Version* v) {
      if (v == exclude || primary.KeyOf(v) != key) return true;
      VisibilityResult vis = CheckVisibility(ctx, v, read_time);
      if (vis.visible || IsInFlightInsert(txn_table_, v, txn->id)) {
        conflict = true;
        return false;
      }
      return true;
    });
    return conflict;
  };

  if (unique && key_conflict(nullptr)) return Status::AlreadyExists();

  Version* v = table.AllocateVersion(payload);
  v->begin.store(beginword::MakeTxnId(txn->id), std::memory_order_release);
  // Connect into all indexes; honor bucket locks (Section 4.2.2 / 4.5).
  // Ordered indexes have no bucket locks: serializable scanners of a key
  // range catch this insert via their precommit rescan instead.
  for (uint32_t i = 0; i < table.num_indexes(); ++i) {
    if (OrderedIndex* ordered = table.ordered_index(i)) {
      ordered->Insert(v);
      continue;
    }
    HashIndex& index = table.index(i);
    HashIndex::Bucket* bucket = &index.BucketFor(index.KeyOfPayload(payload));
    index.Insert(v);
    if (UsesWaitFors(txn)) {
      Status s = TakeBucketLockDependencies(txn, bucket);
      if (!s.ok()) return DoAbort(txn, s.abort_reason());
    }
  }
  txn->AddWrite(&table, nullptr, v);
  stats_.Add(Stat::kVersionsCreated);

  // Close the check-then-insert race: if another in-flight insert of the
  // same key is now present, retract ours. (Both racers may retract; the
  // application retries.)
  if (unique && key_conflict(v)) {
    txn->write_set.pop_back();
    table.UnlinkFromAllIndexes(v);
    epoch_.Retire(v, &Table::VersionDeleter, &table);
    return Status::AlreadyExists();
  }
  return Status::OK();
}

Status MVEngine::Update(Transaction* txn, TableId table_id, IndexId index_id,
                        uint64_t key, const Mutator& mutator) {
  if (txn->read_only) return Status::InvalidArgument();
  if (txn->abort_now.load(std::memory_order_acquire)) {
    return DoAbort(txn, KillReason(txn));
  }
  Table& table = catalog_.table(table_id);
  EpochGuard guard(epoch_);

  Status status;
  Version* v = FindVisible(txn, table, index_id, key, ReadTime(txn), nullptr,
                           &status, /*for_update=*/true);
  if (!status.ok()) return DoAbort(txn, status.abort_reason());
  if (v == nullptr) return Status::NotFound();

  if (txn->pessimistic) ReleaseOwnReadLock(txn, v);
  Status lock_status = InstallWriteLock(txn, v);
  if (!lock_status.ok()) {
    return DoAbort(txn, lock_status.abort_reason());
  }

  Version* vn = table.AllocateVersion(v->Payload());
  mutator(vn->Payload());
  vn->begin.store(beginword::MakeTxnId(txn->id), std::memory_order_release);
  for (uint32_t i = 0; i < table.num_indexes(); ++i) {
    if (OrderedIndex* ordered = table.ordered_index(i)) {
      ordered->Insert(vn);
      continue;
    }
    HashIndex& target = table.index(i);
    HashIndex::Bucket* bucket = &target.BucketFor(target.KeyOfPayload(vn->Payload()));
    target.Insert(vn);
    if (UsesWaitFors(txn)) {
      Status s = TakeBucketLockDependencies(txn, bucket);
      if (!s.ok()) return DoAbort(txn, s.abort_reason());
    }
  }
  txn->AddWrite(&table, v, vn);
  stats_.Add(Stat::kVersionsCreated);
  return Status::OK();
}

Status MVEngine::Delete(Transaction* txn, TableId table_id, IndexId index_id,
                        uint64_t key) {
  if (txn->read_only) return Status::InvalidArgument();
  if (txn->abort_now.load(std::memory_order_acquire)) {
    return DoAbort(txn, KillReason(txn));
  }
  Table& table = catalog_.table(table_id);
  EpochGuard guard(epoch_);

  Status status;
  Version* v = FindVisible(txn, table, index_id, key, ReadTime(txn), nullptr,
                           &status, /*for_update=*/true);
  if (!status.ok()) return DoAbort(txn, status.abort_reason());
  if (v == nullptr) return Status::NotFound();

  if (txn->pessimistic) ReleaseOwnReadLock(txn, v);
  Status lock_status = InstallWriteLock(txn, v);
  if (!lock_status.ok()) {
    return DoAbort(txn, lock_status.abort_reason());
  }
  txn->AddWrite(&table, v, nullptr);
  return Status::OK();
}

/// ---------------------------------------------------------------------------
/// Commit protocol
/// ---------------------------------------------------------------------------

void MVEngine::ReleaseHeldLocks(Transaction* txn) {
  EpochGuard guard(epoch_);  // lock release dereferences writer transactions
  // Read locks.
  {
    SpinLatchGuard latch(txn->read_set_latch);
    for (ReadSetEntry& e : txn->read_set) {
      if (e.read_locked) {
        ReleaseReadLock(txn, e.version);
        e.read_locked = false;
      }
    }
  }
  // Bucket locks.
  for (BucketLockEntry& e : txn->bucket_lock_set) {
    bucket_locks_.Unlock(e.bucket, txn->id);
  }
  txn->bucket_lock_set.clear();
}

void MVEngine::DrainWaitingList(Transaction* txn) {
  std::vector<TxnId> waiters;
  {
    SpinLatchGuard latch(txn->waiting_latch);
    txn->waiting_drained = true;
    waiters.swap(txn->waiting_txn_list);
  }
  EpochGuard guard(epoch_);
  for (TxnId id : waiters) {
    Transaction* t = txn_table_.Find(id);
    if (t != nullptr && t->id == id) {
      t->wait_for_counter.fetch_sub(1, std::memory_order_seq_cst);
      t->NotifyEvent();
    }
  }
}

bool MVEngine::FinishNormalProcessing(Transaction* txn) {
  // End of normal processing (Section 4.3.1): wait out incoming wait-for
  // dependencies, *holding* read and bucket locks across the wait. Locks are
  // released immediately after precommit: a writer of a version we read can
  // then only acquire its end timestamp after ours, which is exactly read
  // stability; symmetric waiters form a genuine deadlock that the detector
  // resolves through the implicit read-lock edges (Section 4.4 step 3).
  if (!UsesWaitFors(txn)) {
    return !txn->abort_now.load(std::memory_order_acquire);
  }
  txn->no_more_wait_fors.store(true, std::memory_order_seq_cst);
  if (txn->wait_for_counter.load(std::memory_order_seq_cst) > 0) {
    stats_.Add(Stat::kPrecommitWaits);
    txn->blocked.store(true, std::memory_order_release);
    txn->WaitEvent([&] {
      return txn->wait_for_counter.load(std::memory_order_acquire) <= 0 ||
             txn->abort_now.load(std::memory_order_acquire);
    });
    txn->blocked.store(false, std::memory_order_release);
  }
  return !txn->abort_now.load(std::memory_order_acquire);
}

Status MVEngine::Validate(Transaction* txn) {
  EpochGuard guard(epoch_);
  const Timestamp end_time = txn->end_ts.load(std::memory_order_acquire);
  VisibilityContext ctx = VisCtx(txn, VisibilityMode::kValidation);

  // Read stability: every version read must still be visible as of the end
  // of the transaction (Section 3.2). A version we later updated or deleted
  // *ourselves* trivially passes: our own write lock guaranteed nobody else
  // replaced it.
  for (const ReadSetEntry& e : txn->read_set) {
    uint64_t end_word = e.version->end.load(std::memory_order_acquire);
    if (lockword::IsLockWord(end_word) &&
        lockword::WriterOf(end_word) == txn->id) {
      continue;
    }
    VisibilityResult vis = CheckVisibility(ctx, e.version, end_time);
    if (vis.must_abort || !vis.visible) {
      return Status::Aborted(AbortReason::kReadValidation);
    }
  }

  if (txn->isolation != IsolationLevel::kSerializable) return Status::OK();

  // Phantom detection: repeat every scan; a version visible at the end of
  // the transaction that was not visible at its start is a phantom
  // (Figure 3: V4).
  const Timestamp begin_time = txn->begin_ts.load(std::memory_order_acquire);
  for (const ScanSetEntry& scan : txn->scan_set) {
    bool phantom = false;
    scan.index->ScanBucket(scan.key, [&](Version* v) {
      if (scan.index->KeyOf(v) != scan.key) return true;
      if (scan.residual && !scan.residual(v->Payload())) return true;
      VisibilityResult at_end = CheckVisibility(ctx, v, end_time);
      if (at_end.must_abort) {
        phantom = true;
        return false;
      }
      if (!at_end.visible) return true;
      VisibilityResult at_begin = CheckVisibility(ctx, v, begin_time);
      if (at_begin.must_abort || !at_begin.visible) {
        phantom = true;  // came into existence during our lifetime
        return false;
      }
      return true;
    });
    if (phantom) return Status::Aborted(AbortReason::kPhantom);
  }
  return ValidateRangeScans(txn);
}

Status MVEngine::ValidateRangeScans(Transaction* txn) {
  if (txn->range_scan_set.empty()) return Status::OK();
  EpochGuard guard(epoch_);
  const Timestamp end_time = txn->end_ts.load(std::memory_order_acquire);
  const Timestamp begin_time = txn->begin_ts.load(std::memory_order_acquire);
  VisibilityContext ctx = VisCtx(txn, VisibilityMode::kValidation);
  // Same phantom rule as the bucket rescan above, applied to [lo, hi]: a
  // version visible at the end of the transaction that was not visible at
  // its start came into existence during our lifetime.
  for (const RangeScanSetEntry& scan : txn->range_scan_set) {
    bool phantom = false;
    scan.index->ScanRange(scan.lo, scan.hi, [&](Version* v) {
      if (scan.residual && !scan.residual(v->Payload())) return true;
      VisibilityResult at_end = CheckVisibility(ctx, v, end_time);
      if (at_end.must_abort) {
        phantom = true;
        return false;
      }
      if (!at_end.visible) return true;
      VisibilityResult at_begin = CheckVisibility(ctx, v, begin_time);
      if (at_begin.must_abort || !at_begin.visible) {
        phantom = true;
        return false;
      }
      return true;
    });
    if (phantom) return Status::Aborted(AbortReason::kPhantom);
  }
  return Status::OK();
}

void MVEngine::WriteLog(Transaction* txn) {
  if (logger_->mode() == LogMode::kDisabled || txn->write_set.empty()) return;
  if (logger_->replay_paused()) return;  // recovery: record already on disk
  thread_local std::vector<uint8_t> buffer;
  buffer.clear();
  LogRecordBuilder builder(buffer);
  builder.BeginRecord(txn->end_ts.load(std::memory_order_relaxed), txn->id);
  for (const WriteSetEntry& w : txn->write_set) {
    if (w.old_version == nullptr && w.new_version != nullptr) {
      builder.AddInsert(w.table->id(), w.new_version->Payload(),
                        w.table->payload_size());
    } else if (w.old_version != nullptr && w.new_version != nullptr) {
      builder.AddUpdate(w.table->id(), w.table->index(0).KeyOf(w.new_version),
                        w.old_version->Payload(), w.new_version->Payload(),
                        w.table->payload_size());
    } else if (w.old_version != nullptr) {
      builder.AddDelete(w.table->id(),
                        w.table->index(0).KeyOf(w.old_version));
    }
  }
  builder.EndRecord();
  logger_->Append(buffer);
}

void MVEngine::Postprocess(Transaction* txn, bool committed) {
  if (committed) {
    const Timestamp ts = txn->end_ts.load(std::memory_order_relaxed);
    for (const WriteSetEntry& w : txn->write_set) {
      if (w.new_version != nullptr) {
        w.new_version->begin.store(beginword::MakeTimestamp(ts),
                                   std::memory_order_release);
      }
      if (w.old_version != nullptr) {
        // All read locks are gone (precommit barrier), so the lock word is
        // exactly (count=0, writer=us); finalize to the end timestamp.
        uint64_t end_word = w.old_version->end.load(std::memory_order_acquire);
        while (lockword::IsLockWord(end_word) &&
               lockword::WriterOf(end_word) == txn->id) {
          if (w.old_version->end.compare_exchange_weak(
                  end_word, lockword::MakeTimestamp(ts),
                  std::memory_order_acq_rel)) {
            break;
          }
        }
      }
    }
  } else {
    for (const WriteSetEntry& w : txn->write_set) {
      if (w.new_version != nullptr) {
        // Make the aborted version invisible to everyone (Section 3.3).
        w.new_version->begin.store(beginword::MakeTimestamp(kInfinity),
                                   std::memory_order_release);
      }
      if (w.old_version != nullptr) {
        // Reset the End field to infinity unless another transaction has
        // already detected our abort and taken over the write lock.
        uint64_t end_word = w.old_version->end.load(std::memory_order_acquire);
        while (lockword::IsLockWord(end_word) &&
               lockword::WriterOf(end_word) == txn->id) {
          uint64_t desired;
          if (lockword::ReadCountOf(end_word) == 0) {
            desired = lockword::MakeTimestamp(kInfinity);
          } else {
            // Readers remain: just clear our write lock; the last reader
            // release normalizes the word.
            desired = lockword::WithWriter(end_word, lockword::kNoWriter);
          }
          if (w.old_version->end.compare_exchange_weak(
                  end_word, desired, std::memory_order_acq_rel)) {
            break;
          }
        }
      }
    }
  }
}

void MVEngine::Terminate(Transaction* txn, bool committed) {
  const Timestamp end_ts = txn->end_ts.load(std::memory_order_relaxed);
  for (const WriteSetEntry& w : txn->write_set) {
    if (committed) {
      if (w.old_version != nullptr) {
        // Superseded at end_ts; reclaim once no reader can see it.
        gc_->Enqueue(w.table, w.old_version, end_ts);
      }
    } else {
      if (w.new_version != nullptr) {
        gc_->EnqueueImmediate(w.table, w.new_version);
      }
    }
  }
  txn->state.store(TxnState::kTerminated, std::memory_order_release);
  txn_table_.Remove(txn->id);
  // Back to the pool once no visibility check can still dereference it.
  epoch_.Retire(
      txn,
      [](void* p, void* pool) {
        static_cast<ObjectPool<Transaction>*>(pool)->Release(
            static_cast<Transaction*>(p));
      },
      &txn_pool_);
}

Status MVEngine::DoAbort(Transaction* txn, AbortReason reason) {
  EpochGuard guard(epoch_);
  txn->state.store(TxnState::kAborted, std::memory_order_release);
  ReleaseHeldLocks(txn);
  if (UsesWaitFors(txn)) {
    txn->no_more_wait_fors.store(true, std::memory_order_seq_cst);
    DrainWaitingList(txn);
  }
  ResolveCommitDependencies(txn, /*committed=*/false, txn_table_);
  Postprocess(txn, /*committed=*/false);
  stats_.Add(Stat::kTxnAborted);
  stats_.Add(AbortStat(reason));
  Terminate(txn, /*committed=*/false);
  gc_->Cooperate(options_.cooperative_gc_budget);
  return Status::Aborted(reason);
}

void MVEngine::Abort(Transaction* txn) {
  DoAbort(txn, AbortReason::kUserRequested);
}

Status MVEngine::Commit(Transaction* txn) {
  // No epoch guard across this function: it contains blocking waits, and
  // pinning an epoch while blocked would stall reclamation engine-wide.
  //
  // Phase timing (docs/OBSERVABILITY.md): one NowTicks() read per phase
  // boundary on the transactions Begin() picked for tracing (1 in 32 per
  // thread — see obs::SampleThisTxn; slow_txn_us forces every commit),
  // nothing but this branch otherwise. Validate = entry through the
  // commit-dep wait; log append = WriteLog minus the group-commit wait the
  // Logger measures itself.
  const bool timed = slow_txn_ticks_ != 0 ||
                     (txn->start_ticks != 0 && hists_.enabled());
  const uint64_t t_enter = timed ? obs::NowTicks() : 0;
  if (txn->abort_now.load(std::memory_order_acquire)) {
    return DoAbort(txn, KillReason(txn));
  }
  // End of normal processing: release locks, wait out wait-for deps.
  if (!FinishNormalProcessing(txn)) {
    return DoAbort(txn, KillReason(txn));
  }

  // Precommit (Section 2.4): publish Preparing FIRST, then draw the end
  // timestamp. The order is load-bearing: a concurrent reader whose begin
  // timestamp is B and who still observes our state as Active must be able
  // to conclude that our end timestamp T — not yet drawn, because drawing
  // happens after the Preparing store it did not see — will satisfy T > B,
  // which is what makes "writer Active => old version still visible / new
  // version invisible" sound. With the reverse order there is a window
  // where T <= B is already fixed while readers still see Active, and a
  // scan can return a value that never existed at its snapshot (one leg of
  // a committed update). Readers that catch Preparing before the timestamp
  // store spin in AwaitEndTimestamp.
  txn->state.store(TxnState::kPreparing, std::memory_order_seq_cst);
  txn->end_ts.store(ts_gen_.Next(), std::memory_order_seq_cst);

  // Now that the serialization point is fixed, release read and bucket
  // locks and the outgoing wait-for dependencies (Section 4.2.2). Any
  // updater of a version we read is still waiting on our read lock here, so
  // its end timestamp is necessarily greater than ours.
  ReleaseHeldLocks(txn);
  if (UsesWaitFors(txn)) DrainWaitingList(txn);

  // Optimistic validation (Section 3.2).
  if (!txn->pessimistic &&
      (txn->isolation == IsolationLevel::kSerializable ||
       txn->isolation == IsolationLevel::kRepeatableRead)) {
    Status vs = Validate(txn);
    if (!vs.ok()) return DoAbort(txn, vs.abort_reason());
  } else if (txn->pessimistic &&
             txn->isolation == IsolationLevel::kSerializable) {
    // MV/L phantom protection for range scans: bucket locks cover hash
    // buckets only, so ordered-index ranges are revalidated by rescan, the
    // one place a pessimistic transaction can abort at commit.
    Status vs = ValidateRangeScans(txn);
    if (!vs.ok()) return DoAbort(txn, vs.abort_reason());
  }

  // Wait for outstanding commit dependencies (Sections 2.7, 3.2, 4.3.2).
  if (txn->commit_dep_counter.load(std::memory_order_acquire) > 0) {
    stats_.Add(Stat::kCommitDepWaits);
    txn->WaitEvent([&] {
      return txn->commit_dep_counter.load(std::memory_order_acquire) == 0 ||
             txn->abort_now.load(std::memory_order_acquire);
    });
  }
  if (txn->abort_now.load(std::memory_order_acquire)) {
    return DoAbort(txn, KillReason(txn));
  }
  const uint64_t t_validated = timed ? obs::NowTicks() : 0;

  // Log and commit.
  WriteLog(txn);
  // Append resets the thread-local wait on entry; guard against commits
  // whose WriteLog never reached Append (empty write set, disabled or
  // paused logger) reading a previous commit's wait.
  const uint64_t group_wait_ticks =
      (timed && !txn->write_set.empty() &&
       logger_->mode() != LogMode::kDisabled && !logger_->replay_paused())
          ? Logger::LastGroupWaitTicks()
          : 0;
  const uint64_t t_logged = timed ? obs::NowTicks() : 0;
  txn->state.store(TxnState::kCommitted, std::memory_order_seq_cst);
  {
    EpochGuard guard(epoch_);
    ResolveCommitDependencies(txn, /*committed=*/true, txn_table_);
  }
  Postprocess(txn, /*committed=*/true);
  stats_.Add(Stat::kTxnCommitted);
  const uint64_t writes = txn->write_set.size();
  const TxnId txn_id = txn->id;
  const uint64_t start_ticks = txn->start_ticks;
  Terminate(txn, /*committed=*/true);
  gc_->Cooperate(options_.cooperative_gc_budget);
  if (timed) {
    const uint64_t t_done = obs::NowTicks();
    const uint64_t total = t_done - t_enter;
    const uint64_t log_span = t_logged - t_validated;
    hists_.Record(obs::Hist::kCommitTotal, total);
    hists_.Record(obs::Hist::kCommitValidate, t_validated - t_enter);
    hists_.Record(obs::Hist::kCommitLogAppend,
                  log_span - std::min(log_span, group_wait_ticks));
    if (start_ticks != 0) {
      hists_.Record(obs::Hist::kTxnLifetime, t_done - start_ticks);
    }
    if (slow_txn_ticks_ != 0 && total >= slow_txn_ticks_) {
      obs::CommitTrace trace;
      trace.scheme = "mv";
      trace.txn_id = txn_id;
      trace.total_ticks = total;
      trace.validate_ticks = t_validated - t_enter;
      trace.log_append_ticks = log_span - std::min(log_span, group_wait_ticks);
      trace.group_wait_ticks = group_wait_ticks;
      trace.writes = writes;
      obs::LogSlowTxn(trace, &stats_);
    }
  }
  return Status::OK();
}

}  // namespace mvstore
