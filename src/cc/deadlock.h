// Wait-for-graph deadlock detection for MV/L (paper Section 4.4).
//
// Nodes: transactions that finished normal processing and are blocked on
// wait-for dependencies. Edges (T2 -> T1 means T2 waits for T1):
//   * explicit, from bucket locks: each T2 in T1's WaitingTxnList;
//   * implicit, from read locks: T1 read-locked a version write-locked by
//     T2, so T2 waits for T1's release.
// Cycles are found with Tarjan's strongly-connected-components algorithm;
// candidate deadlocks are re-verified (the graph is built while processing
// continues, so it can be imprecise) and the youngest member aborts.
#pragma once

#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/counters.h"
#include "common/mutex.h"
#include "txn/txn_table.h"
#include "util/epoch.h"

namespace mvstore {

class DeadlockDetector {
 public:
  DeadlockDetector(TxnTable& txn_table, EpochManager& epoch,
                   StatsCollector& stats, uint32_t interval_us)
      : txn_table_(txn_table),
        epoch_(epoch),
        stats_(stats),
        interval_us_(interval_us) {}

  ~DeadlockDetector() { Stop(); }

  void Start();
  void Stop();

  /// One detection pass. Returns the number of victims aborted.
  /// Exposed for tests; thread-safe against the background thread.
  uint32_t RunOnce();

 private:
  TxnTable& txn_table_;
  EpochManager& epoch_;
  StatsCollector& stats_;
  const uint32_t interval_us_;

  /// Serializes passes (tests may call RunOnce concurrently with the
  /// background thread) and guards the scratch vectors below, which are
  /// reused so the periodic scan is allocation-free in steady state.
  Mutex pass_mutex_;
  std::vector<Transaction*> snapshot_scratch_ GUARDED_BY(pass_mutex_);
  std::vector<Transaction*> nodes_scratch_ GUARDED_BY(pass_mutex_);
  std::vector<TxnId> waiting_scratch_ GUARDED_BY(pass_mutex_);
  std::vector<Version*> locked_scratch_ GUARDED_BY(pass_mutex_);
  std::unordered_map<TxnId, uint32_t> node_of_scratch_
      GUARDED_BY(pass_mutex_);
  /// Only the first nodes.size() entries are live each pass; entries are
  /// cleared, not destroyed, so inner capacities survive too.
  std::vector<std::vector<uint32_t>> adjacency_scratch_
      GUARDED_BY(pass_mutex_);

  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace mvstore
