// Multiversion storage engine with optimistic (MV/O) and pessimistic (MV/L)
// concurrency control (paper Sections 2-4).
//
// One engine hosts both transaction kinds concurrently ("peaceful
// coexistence", Section 4.5): every version uses the MV/L End-word encoding,
// and optimistic transactions honor read locks and bucket locks when the
// engine's honor_locks option is on (the default; turn it off to benchmark a
// pure-optimistic configuration).
//
// Threading model: any thread may run transactions. A transaction object is
// used by its owning thread; other threads touch only its atomic fields and
// latched sets, exactly as the paper's dependency machinery prescribes.
#pragma once

#include <functional>
#include <memory>

#include "cc/bucket_lock.h"
#include "cc/deadlock.h"
#include "cc/visibility.h"
#include "common/counters.h"
#include "common/status.h"
#include "common/types.h"
#include "gc/garbage_collector.h"
#include "log/logger.h"
#include "mem/object_pool.h"
#include "obs/histogram.h"
#include "storage/table.h"
#include "txn/timestamp.h"
#include "txn/transaction.h"
#include "txn/txn_table.h"
#include "util/epoch.h"

namespace mvstore {

struct MVEngineOptions {
  /// Optimistic transactions honor MV/L read/bucket locks (Section 4.5).
  /// Irrelevant when no pessimistic transactions run, except for the small
  /// cost of the precommit wait-for barrier.
  bool honor_locks = true;

  /// Redo logging (paper default: asynchronous group commit).
  LogMode log_mode = LogMode::kAsync;
  /// Empty = NullLogSink (count bytes only); otherwise a file path.
  std::string log_path;
  /// fsync each flushed batch (see DatabaseOptions::fsync_log).
  bool fsync_log = false;
  /// > 0: log_path names a rotating-segment prefix (log/log_segment.h) and
  /// segments rotate at this size, enabling checkpoint truncation.
  /// 0: log_path is one append-only file (no rotation, no truncation).
  uint64_t log_segment_bytes = 0;
  /// Group-commit window (see Logger); 0 = flush as soon as possible.
  uint32_t group_commit_us = 0;

  /// Background garbage collection sweep interval; 0 disables the thread
  /// (cooperative GC still runs).
  uint32_t gc_interval_us = 2000;
  /// Versions reclaimed inline by each committing worker.
  uint32_t cooperative_gc_budget = 16;

  /// Deadlock-detector pass interval; 0 disables the thread.
  uint32_t deadlock_interval_us = 1000;

  /// End timestamps are carved off the shared counter in per-thread blocks
  /// of this size (txn/timestamp.h); 1 = unbatched (every commit touches
  /// the shared cacheline, the pre-Section-6 behavior).
  uint32_t ts_block_size = TimestampGenerator::kDefaultBlockSize;

  /// Recycle version slots through per-table slabs and transaction objects
  /// through a pool (mem/). Off = every version/transaction is a global
  /// heap allocation -- slower, but gives ASan-style tooling full lifetime
  /// visibility.
  bool use_slab_allocator = true;

  /// Record commit-pipeline phase latencies into obs/ histograms
  /// (docs/OBSERVABILITY.md). Off = Record() is a single relaxed load.
  bool enable_latency_histograms = true;

  /// Commits slower than this emit one rate-limited slow-txn log line with
  /// the per-phase breakdown (obs/slow_txn.h); 0 disables.
  uint64_t slow_txn_us = 0;
};

/// Callback deciding whether a payload matches a residual predicate.
using Predicate = std::function<bool(const void* payload)>;
/// Scan consumer; return false to stop the scan.
using ScanConsumer = std::function<bool(const void* payload)>;
/// In-place payload editor used by Update (applied to a private copy).
using Mutator = std::function<void(void* payload)>;

class MVEngine {
 public:
  explicit MVEngine(MVEngineOptions options = {});
  ~MVEngine();

  MVEngine(const MVEngine&) = delete;
  MVEngine& operator=(const MVEngine&) = delete;

  /// --- schema ---------------------------------------------------------------

  TableId CreateTable(TableDef def) { return catalog_.CreateTable(std::move(def)); }
  Table& table(TableId id) { return catalog_.table(id); }
  Catalog& catalog() { return catalog_; }

  /// --- transaction lifecycle -------------------------------------------------

  /// Start a transaction. `pessimistic` selects MV/L (locking); otherwise
  /// MV/O (validation).
  Transaction* Begin(IsolationLevel isolation, bool pessimistic,
                     bool read_only = false);

  /// Commit; on any failure the transaction is aborted internally and the
  /// returned status carries the abort reason. The handle is invalid after
  /// this call either way.
  Status Commit(Transaction* txn);

  /// User-requested abort. The handle is invalid after this call.
  void Abort(Transaction* txn);

  /// --- data operations --------------------------------------------------------
  ///
  /// All operations return kAborted statuses when the transaction must die;
  /// the engine has already aborted it in that case and the handle is
  /// invalid. kNotFound / kAlreadyExists leave the transaction running.

  /// Read the first visible version matching `key` on `index_id`; copies the
  /// payload into `out` (payload_size bytes).
  Status Read(Transaction* txn, TableId table_id, IndexId index_id,
              uint64_t key, void* out);

  /// Scan all visible versions matching `key` (plus optional residual
  /// predicate). Serializable transactions register the scan for phantom
  /// protection (MV/O: ScanSet; MV/L: bucket lock). On an ordered index
  /// this is ScanRange(key, key).
  Status Scan(Transaction* txn, TableId table_id, IndexId index_id,
              uint64_t key, const Predicate& residual,
              const ScanConsumer& consumer);

  /// Visit every visible version whose `index_id` key lies in [lo, hi], in
  /// ascending key order, applying the paper's visibility rules per version
  /// at the transaction's read time. `index_id` must name an ordered
  /// (skip-list) index. Serializable transactions (both MV/O and MV/L)
  /// record the range in their RangeScanSet; it is rescanned at precommit
  /// and a version that became visible during the transaction's lifetime
  /// aborts it (phantom).
  Status ScanRange(Transaction* txn, TableId table_id, IndexId index_id,
                   uint64_t lo, uint64_t hi, const Predicate& residual,
                   const ScanConsumer& consumer);

  /// Visit every visible row of the table as of the transaction's read time
  /// by scanning all buckets of the primary index (Section 2.1: "To scan a
  /// table, one simply scans all buckets of any index on the table").
  /// No phantom protection is registered -- full scans are intended for
  /// snapshot / read-committed readers (reporting); serializable callers
  /// needing full-table stability should use per-key Scans.
  Status ScanTable(Transaction* txn, TableId table_id,
                   const ScanConsumer& consumer);

  /// Insert a new record. Fails with kAlreadyExists if the primary (unique)
  /// index already holds a visible or in-flight record with the same key.
  Status Insert(Transaction* txn, TableId table_id, const void* payload);

  /// Update the first visible version matching `key`: copies it, applies
  /// `mutator`, installs the new version.
  Status Update(Transaction* txn, TableId table_id, IndexId index_id,
                uint64_t key, const Mutator& mutator);

  /// Delete the first visible version matching `key`.
  Status Delete(Transaction* txn, TableId table_id, IndexId index_id,
                uint64_t key);

  /// --- infrastructure access ---------------------------------------------------

  EpochManager& epoch() { return epoch_; }
  TxnTable& txn_table() { return txn_table_; }
  TimestampGenerator& ts_gen() { return ts_gen_; }
  StatsCollector& stats() { return stats_; }
  obs::LatencyHistograms& hists() { return hists_; }
  GarbageCollector& gc() { return *gc_; }
  Logger& logger() { return *logger_; }
  DeadlockDetector& deadlock_detector() { return *deadlock_; }
  const MVEngineOptions& options() const { return options_; }

 private:
  /// Logical read time for a transaction's reads (Sections 3.1, 4.3.1).
  Timestamp ReadTime(Transaction* txn) const;

  VisibilityContext VisCtx(Transaction* txn, VisibilityMode mode);

  /// Find the first visible version for key on any index kind; nullptr if
  /// none. On conflict requiring abort, sets `status`. `for_update` marks
  /// probes that feed an update/delete (see VisibilityContext::for_update).
  Version* FindVisible(Transaction* txn, Table& table, IndexId index_id,
                       uint64_t key, Timestamp read_time,
                       const Predicate& residual, Status* status,
                       bool for_update = false);

  /// MV/L: acquire a read lock on a latest version (Section 4.2.1).
  /// Returns OK and sets *locked, or an abort status.
  Status AcquireReadLock(Transaction* txn, Version* v, bool* locked);
  /// Release one read lock; wakes the writer when the last lock goes away.
  void ReleaseReadLock(Transaction* txn, Version* v);

  /// Release our own read lock on `v` if we hold one (before write-locking
  /// it, so we never wait on ourselves at precommit).
  void ReleaseOwnReadLock(Transaction* txn, Version* v);

  /// Install a write lock on `v` (Section 2.6 / 4.3.1 "Update version").
  Status InstallWriteLock(Transaction* txn, Version* v);

  /// Serializable MV/L scanner: impose a wait-for dependency on the active
  /// creator of an invisible version (potential phantom, Section 4.2.2).
  Status ImposePhantomDependency(Transaction* txn, Version* v);

  /// Inserter side of bucket locks: wait-for dependencies on lock holders.
  Status TakeBucketLockDependencies(Transaction* txn, HashIndex::Bucket* bucket);

  /// True when this transaction participates in the wait-for machinery.
  bool UsesWaitFors(const Transaction* txn) const {
    return txn->pessimistic || options_.honor_locks;
  }

  /// End-of-normal-processing (Section 4.3.1): release read/bucket locks,
  /// then wait out wait-for dependencies. Returns false if the transaction
  /// must abort (AbortNow).
  bool FinishNormalProcessing(Transaction* txn);

  /// Optimistic validation: read stability + phantom checks (Section 3.2).
  ///
  /// NO_THREAD_SAFETY_ANALYSIS: iterates txn->read_set without
  /// read_set_latch. Safe by protocol — the owner thread is past its last
  /// AddRead when validation runs, so the latch-free iteration races only
  /// with the deadlock detector's const walk (both readers); taking the
  /// latch here would hold it across every visibility check of the commit.
  Status Validate(Transaction* txn) NO_THREAD_SAFETY_ANALYSIS;

  /// Rescan every registered range scan at the end timestamp: a version
  /// visible now but not at begin time is a phantom. Runs inside Validate
  /// for MV/O; pessimistic serializable transactions with range scans run
  /// it directly at precommit (bucket locks cover hash scans only).
  Status ValidateRangeScans(Transaction* txn);

  /// Write the commit record (Section 3.2 logging step).
  void WriteLog(Transaction* txn);

  /// Propagate end timestamp / reset fields (Section 3.3).
  void Postprocess(Transaction* txn, bool committed);

  /// Common abort path; resolves dependents, postprocesses, terminates.
  Status DoAbort(Transaction* txn, AbortReason reason);

  /// Remove from the txn table, hand versions to GC, retire the object.
  void Terminate(Transaction* txn, bool committed);

  void ReleaseHeldLocks(Transaction* txn);
  void DrainWaitingList(Transaction* txn);

  MVEngineOptions options_;
  /// stats_ precedes catalog_ and txn_pool_: table slabs and the pool flush
  /// local counters into it on destruction. hists_ keeps the same position
  /// for the same reason (the logger records group waits until it dies).
  StatsCollector stats_;
  obs::LatencyHistograms hists_;
  /// Precomputed SlowTxnThresholdTicks(options_.slow_txn_us); 0 = disabled.
  uint64_t slow_txn_ticks_ = 0;
  Catalog catalog_;
  ObjectPool<Transaction> txn_pool_;
  EpochManager epoch_;
  TxnTable txn_table_;
  TimestampGenerator ts_gen_;
  TxnIdGenerator id_gen_;
  BucketLockTable bucket_locks_;
  std::unique_ptr<Logger> logger_;
  std::unique_ptr<GarbageCollector> gc_;
  std::unique_ptr<DeadlockDetector> deadlock_;
};

}  // namespace mvstore
