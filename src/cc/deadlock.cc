#include "cc/deadlock.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <vector>

namespace mvstore {

namespace {

/// Iterative Tarjan SCC over a small adjacency-list graph.
/// Returns the components (each a list of node indices) in reverse
/// topological order; only components of size > 1 can be deadlocks here
/// (a transaction never waits on itself).
class TarjanScc {
 public:
  /// `n` bounds the live nodes: `adjacency` may be an oversized scratch
  /// buffer whose entries past `n` are stale.
  TarjanScc(const std::vector<std::vector<uint32_t>>& adjacency, uint32_t n)
      : adjacency_(adjacency),
        n_(n),
        index_(n_, kUndefined),
        lowlink_(n_, 0),
        on_stack_(n_, 0) {}

  std::vector<std::vector<uint32_t>> Run() {
    for (uint32_t v = 0; v < n_; ++v) {
      if (index_[v] == kUndefined) StrongConnect(v);
    }
    return components_;
  }

 private:
  static constexpr uint32_t kUndefined = ~uint32_t{0};

  void StrongConnect(uint32_t root) {
    // Explicit DFS stack: (node, next-edge-cursor).
    std::vector<std::pair<uint32_t, size_t>> dfs;
    dfs.emplace_back(root, 0);
    index_[root] = lowlink_[root] = next_index_++;
    stack_.push_back(root);
    on_stack_[root] = 1;

    while (!dfs.empty()) {
      auto& [v, cursor] = dfs.back();
      if (cursor < adjacency_[v].size()) {
        uint32_t w = adjacency_[v][cursor++];
        if (index_[w] == kUndefined) {
          index_[w] = lowlink_[w] = next_index_++;
          stack_.push_back(w);
          on_stack_[w] = 1;
          dfs.emplace_back(w, 0);
        } else if (on_stack_[w]) {
          lowlink_[v] = std::min(lowlink_[v], index_[w]);
        }
        continue;
      }
      // v is finished.
      if (lowlink_[v] == index_[v]) {
        std::vector<uint32_t> component;
        while (true) {
          uint32_t w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = 0;
          component.push_back(w);
          if (w == v) break;
        }
        components_.push_back(std::move(component));
      }
      uint32_t finished = v;
      dfs.pop_back();
      if (!dfs.empty()) {
        uint32_t parent = dfs.back().first;
        lowlink_[parent] = std::min(lowlink_[parent], lowlink_[finished]);
      }
    }
  }

  const std::vector<std::vector<uint32_t>>& adjacency_;
  const uint32_t n_;
  std::vector<uint32_t> index_;
  std::vector<uint32_t> lowlink_;
  std::vector<uint8_t> on_stack_;
  std::vector<uint32_t> stack_;
  std::vector<std::vector<uint32_t>> components_;
  uint32_t next_index_ = 0;
};

}  // namespace

void DeadlockDetector::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_acquire)) {
      RunOnce();
      std::this_thread::sleep_for(std::chrono::microseconds(interval_us_));
    }
  });
}

void DeadlockDetector::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

uint32_t DeadlockDetector::RunOnce() {
  MutexLock pass_lock(pass_mutex_);
  EpochGuard guard(epoch_);

  // Step 1: nodes = blocked transactions (Section 4.4 step 1). The scratch
  // vectors keep their capacity across passes, so the common every-few-
  // hundred-microseconds scan allocates nothing.
  txn_table_.SnapshotInto(snapshot_scratch_);
  std::vector<Transaction*>& nodes = nodes_scratch_;
  nodes.clear();
  std::unordered_map<TxnId, uint32_t>& node_of = node_of_scratch_;
  node_of.clear();
  for (Transaction* t : snapshot_scratch_) {
    if (t->blocked.load(std::memory_order_acquire)) {
      node_of.emplace(t->id, static_cast<uint32_t>(nodes.size()));
      nodes.push_back(t);
    }
  }
  if (nodes.size() < 2) return 0;

  std::vector<std::vector<uint32_t>>& adjacency = adjacency_scratch_;
  if (adjacency.size() < nodes.size()) adjacency.resize(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) adjacency[i].clear();

  // Step 2: explicit edges. T2 in T1's WaitingTxnList waits for T1:
  // edge T2 -> T1.
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    Transaction* t1 = nodes[i];
    std::vector<TxnId>& waiting = waiting_scratch_;
    {
      SpinLatchGuard latch(t1->waiting_latch);
      waiting.assign(t1->waiting_txn_list.begin(), t1->waiting_txn_list.end());
    }
    for (TxnId t2_id : waiting) {
      auto it = node_of.find(t2_id);
      if (it != node_of.end()) adjacency[it->second].push_back(i);
    }
  }

  // Step 3: implicit edges. T1 holds a read lock on version V; V is
  // write-locked by T2: T2 waits for T1's release, edge T2 -> T1.
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    Transaction* t1 = nodes[i];
    std::vector<Version*>& locked_versions = locked_scratch_;
    locked_versions.clear();
    {
      SpinLatchGuard latch(t1->read_set_latch);
      for (const ReadSetEntry& e : t1->read_set) {
        if (e.read_locked) locked_versions.push_back(e.version);
      }
    }
    for (Version* v : locked_versions) {
      uint64_t end_word = v->end.load(std::memory_order_acquire);
      if (!lockword::IsLockWord(end_word)) continue;
      TxnId writer = lockword::WriterOf(end_word);
      if (writer == lockword::kNoWriter || writer == t1->id) continue;
      auto it = node_of.find(writer);
      if (it != node_of.end()) adjacency[it->second].push_back(i);
    }
  }

  // Find cycles.
  auto components =
      TarjanScc(adjacency, static_cast<uint32_t>(nodes.size())).Run();
  uint32_t victims = 0;
  for (const auto& component : components) {
    if (component.size() < 2) continue;
    // Re-verify: the graph may be stale; real deadlocks cannot dissolve, but
    // members that already unblocked indicate a false positive.
    bool all_blocked = true;
    for (uint32_t idx : component) {
      if (!nodes[idx]->blocked.load(std::memory_order_acquire)) {
        all_blocked = false;
        break;
      }
    }
    if (!all_blocked) continue;
    // Abort the youngest member (largest transaction ID): older transactions
    // have done more work.
    Transaction* victim = nodes[component[0]];
    for (uint32_t idx : component) {
      if (nodes[idx]->id > victim->id) victim = nodes[idx];
    }
    victim->kill_reason.store(AbortReason::kDeadlock, std::memory_order_relaxed);
    victim->abort_now.store(true, std::memory_order_release);
    victim->NotifyEvent();
    stats_.Add(Stat::kDeadlocksDetected);
    ++victims;
  }
  return victims;
}

}  // namespace mvstore
