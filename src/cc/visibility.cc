#include "cc/visibility.h"

#include <thread>

#include "common/port.h"

namespace mvstore {

namespace {

/// Spin until `txn` leaves the Preparing state. Only used during validation,
/// where waiting is permitted (the paper forbids blocking only during
/// *normal processing*). Cannot deadlock: a validating transaction waits
/// only on transactions that precommitted earlier and therefore hold smaller
/// end timestamps; those never wait on larger ones through this path.
TxnState AwaitResolution(Transaction* txn) {
  uint32_t spins = 0;
  TxnState s = txn->state.load(std::memory_order_acquire);
  while (s == TxnState::kPreparing) {
    if (++spins % 64 == 0) {
      std::this_thread::yield();
    } else {
      CpuRelax();
    }
    s = txn->state.load(std::memory_order_acquire);
  }
  return s;
}

}  // namespace

VisibilityResult CheckVisibility(const VisibilityContext& ctx, Version* v,
                                 Timestamp read_time) {
  Transaction* self = ctx.self;
  TxnTable* table = ctx.txn_table;
  VisibilityResult result;

  // ---- Step 1: Begin field (paper Table 1) --------------------------------
  //
  // Establish the version's begin time, or conclude invisible. Loops only on
  // "terminated or not found -> reread" cases, which resolve quickly.
  while (true) {
    uint64_t begin_word = v->begin.load(std::memory_order_acquire);

    if (!beginword::IsTxnId(begin_word)) {
      Timestamp begin_ts = beginword::TimestampOf(begin_word);
      if (begin_ts == kInfinity) return result;     // aborted-creator garbage
      if (read_time < begin_ts) return result;      // too new
      break;                                        // begin established
    }

    TxnId tb_id = beginword::TxnIdOf(begin_word);

    if (tb_id == self->id) {
      // Row 1 of Table 1, own-version subcase: visible only if this is our
      // latest write of the record (no newer own version supersedes it).
      uint64_t end_word = v->end.load(std::memory_order_acquire);
      if (lockword::IsLockWord(end_word) &&
          lockword::WriterOf(end_word) == self->id) {
        return result;  // we replaced or deleted it ourselves
      }
      result.visible = true;
      return result;
    }

    Transaction* tb = table->Find(tb_id);
    if (tb == nullptr || tb->id != tb_id) {
      // Terminated or not found: TB finalized the Begin field; reread.
      CpuRelax();
      continue;
    }

    TxnState tb_state = tb->state.load(std::memory_order_acquire);
    if (tb_state == TxnState::kActive) {
      return result;  // uncommitted, not ours: invisible
    }
    if (tb_state == TxnState::kAborted) {
      return result;  // garbage version
    }
    if (tb_state == TxnState::kTerminated) {
      CpuRelax();
      continue;  // begin field is finalized; reread
    }

    if (tb_state == TxnState::kPreparing && !ctx.for_update &&
        ctx.mode == VisibilityMode::kNormalProcessing &&
        self->isolation == IsolationLevel::kReadCommitted) {
      // Read Committed fast path: no snapshot is promised, so an
      // uncommitted Preparing creator is handled exactly like an Active
      // one -- the version is simply not committed yet and the scan falls
      // through to the latest committed version below it. This sidesteps
      // the commit dependency (and its futex round trip at commit) that a
      // speculative read would cost; under an oversubscribed box a
      // descheduled Preparing writer otherwise strands a growing crowd of
      // dependents. Snapshot-based levels still speculate: for them the
      // version IS visible at their read time if TB commits, so skipping
      // it would serve a stale snapshot, not a different-but-legal one.
      return result;
    }

    // State is Preparing or Committed. Preparing is published before the
    // end timestamp is drawn (see MVEngine::Commit), so spin out the
    // two-store window if we caught it; by Committed the value is long set.
    Timestamp ts = AwaitEndTimestamp(tb);

    if (tb_state == TxnState::kCommitted) {
      if (read_time < ts) return result;
      break;  // committed with begin time ts <= read_time
    }

    // tb_state == kPreparing: V's begin will be ts if TB commits.
    if (read_time < ts) return result;  // invisible either way

    if (ctx.mode == VisibilityMode::kValidation) {
      // Speculative reads are not allowed during validation. Wait for TB to
      // resolve; if it commits the version is (potentially) visible, if it
      // aborts the version is garbage.
      TxnState final_state = AwaitResolution(tb);
      if (final_state == TxnState::kAborted) return result;
      continue;  // re-run with finalized/committed begin
    }

    // Speculative read (Table 1, Preparing row): test passes using ts as the
    // begin time, so take a commit dependency on TB and proceed.
    CommitDepOutcome dep = RegisterCommitDependency(self, tb);
    if (dep == CommitDepOutcome::kProviderAborted) {
      return result;  // TB aborted meanwhile: garbage version
    }
    if (dep == CommitDepOutcome::kProviderTerminated) {
      // TB resolved and finalized the Begin field between our state reads;
      // the word now holds the truth (timestamp or infinity). Reread.
      CpuRelax();
      continue;
    }
    if (dep == CommitDepOutcome::kRegistered && ctx.stats != nullptr) {
      ctx.stats->Add(Stat::kSpeculativeReads);
      ctx.stats->Add(Stat::kCommitDepsTaken);
    }
    break;  // begin time established (speculatively, or TB committed)
  }

  // ---- Step 2: End field (paper Table 2) ----------------------------------
  //
  // We now know V's begin time is (or will be) <= read_time.
  while (true) {
    uint64_t end_word = v->end.load(std::memory_order_acquire);

    if (!lockword::IsLockWord(end_word)) {
      result.visible = read_time < lockword::TimestampOf(end_word);
      return result;
    }

    TxnId te_id = lockword::WriterOf(end_word);
    if (te_id == lockword::kNoWriter) {
      // Read-locked but not write-locked: still the latest version, logical
      // end time is infinity.
      result.visible = true;
      return result;
    }

    if (te_id == self->id) {
      // We updated or deleted this version ourselves; our own new version
      // (or the deletion) wins.
      return result;
    }

    Transaction* te = table->Find(te_id);
    if (te == nullptr || te->id != te_id) {
      CpuRelax();
      continue;  // TE terminated: end word finalized or writer cleared
    }

    TxnState te_state = te->state.load(std::memory_order_acquire);
    switch (te_state) {
      case TxnState::kActive:
        // TE's update is uncommitted: V is still the latest committed
        // version and is visible to everyone but TE.
        result.visible = true;
        return result;
      case TxnState::kAborted:
        // Table 2: V is visible. (Even if another updater sneaked in, its
        // end timestamp must postdate our read time.)
        result.visible = true;
        return result;
      case TxnState::kTerminated:
        CpuRelax();
        continue;
      case TxnState::kCommitted: {
        Timestamp ts = AwaitEndTimestamp(te);
        result.visible = read_time < ts;
        return result;
      }
      case TxnState::kPreparing: {
        if (!ctx.for_update && ctx.mode == VisibilityMode::kNormalProcessing &&
            self->isolation == IsolationLevel::kReadCommitted) {
          // Read Committed fast path, mirror of the Begin-field case: TE
          // has not committed, so V is still the latest committed version.
          // No dependency, no end-timestamp await.
          result.visible = true;
          return result;
        }
        // Spin out the Preparing-before-timestamp window (see
        // MVEngine::Commit precommit ordering).
        Timestamp ts = AwaitEndTimestamp(te);
        if (read_time < ts) {
          // V will be visible whether TE commits (end = ts > read time) or
          // aborts (end stays infinity).
          result.visible = true;
          return result;
        }
        // ts < read_time: if TE commits V is invisible; if TE aborts it is
        // visible. Speculatively ignore V and depend on TE committing.
        CommitDepOutcome dep = RegisterCommitDependency(self, te);
        if (dep == CommitDepOutcome::kProviderAborted) {
          // TE aborted meanwhile: V remains visible.
          result.visible = true;
          return result;
        }
        if (dep == CommitDepOutcome::kProviderTerminated) {
          // TE resolved and finalized the End field between our state
          // reads; the word now holds the truth. Reread.
          CpuRelax();
          continue;
        }
        if (dep == CommitDepOutcome::kRegistered && ctx.stats != nullptr) {
          ctx.stats->Add(Stat::kSpeculativeIgnores);
          ctx.stats->Add(Stat::kCommitDepsTaken);
        }
        return result;  // invisible (speculatively, or TE committed)
      }
    }
  }
}

Updatability CheckUpdatability(const VisibilityContext& ctx, Version* v) {
  while (true) {
    uint64_t end_word = v->end.load(std::memory_order_acquire);
    if (!lockword::IsLockWord(end_word)) {
      return lockword::TimestampOf(end_word) == kInfinity
                 ? Updatability::kUpdatable
                 : Updatability::kWriteConflict;
    }
    TxnId te_id = lockword::WriterOf(end_word);
    if (te_id == lockword::kNoWriter) return Updatability::kUpdatable;
    if (te_id == ctx.self->id) return Updatability::kWriteConflict;

    Transaction* te = ctx.txn_table->Find(te_id);
    if (te == nullptr || te->id != te_id) {
      CpuRelax();
      continue;  // finalized; reread
    }
    TxnState s = te->state.load(std::memory_order_acquire);
    if (s == TxnState::kAborted) return Updatability::kUpdatable;
    if (s == TxnState::kTerminated) {
      CpuRelax();
      continue;
    }
    // Active or Preparing: uncommitted later version exists.
    return Updatability::kWriteConflict;
  }
}

}  // namespace mvstore
