// The paper's parameterized homogeneous workload (Section 5.1) and the
// heterogeneous mixes built from it (Section 5.2).
//
// "The workload consists of a single transaction type that performs R reads
// and W writes against a table of N records with a unique key. Each row is
// 24 bytes, and reads and writes are uniformly and randomly scattered over
// the N records."
#pragma once

#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "core/database.h"

namespace mvstore {
namespace workload {

/// 24-byte row, as in Section 5.1.
struct Row24 {
  uint64_t key;
  uint64_t value;
  uint64_t pad;
};
static_assert(sizeof(Row24) == 24);

inline uint64_t Row24Key(const void* payload) {
  return static_cast<const Row24*>(payload)->key;
}

/// Create and populate the N-row table. Buckets are sized ~N ("we size hash
/// tables appropriately so there are no collisions").
inline TableId CreateAndLoadRows(Database& db, uint64_t rows) {
  TableDef def;
  def.name = "rows";
  def.payload_size = sizeof(Row24);
  def.indexes.push_back(IndexDef{&Row24Key, rows, /*unique=*/true});
  TableId table = db.CreateTable(def);
  for (uint64_t k = 0; k < rows; ++k) {
    Txn* txn = db.Begin(IsolationLevel::kReadCommitted);
    Row24 row{k, k * 10, 0};
    db.Insert(txn, table, &row);
    db.Commit(txn);
  }
  return table;
}

/// One update transaction: R reads + W writes, uniform keys.
/// Returns the commit status (aborts already rolled back).
inline Status RunUpdateTxn(Database& db, TableId table, Random& rng,
                           uint64_t rows, uint32_t reads, uint32_t writes,
                           IsolationLevel isolation) {
  Txn* txn = db.Begin(isolation);
  Row24 row;
  for (uint32_t i = 0; i < reads; ++i) {
    Status s = db.Read(txn, table, 0, rng.Uniform(rows), &row);
    if (s.IsAborted()) return s;
  }
  for (uint32_t i = 0; i < writes; ++i) {
    Status s = db.Update(txn, table, 0, rng.Uniform(rows), [](void* p) {
      static_cast<Row24*>(p)->value += 1;
    });
    if (s.IsAborted()) return s;
  }
  return db.Commit(txn);
}

/// One short read-only transaction: R reads, uniform keys (Section 5.2.1).
inline Status RunReadOnlyTxn(Database& db, TableId table, Random& rng,
                             uint64_t rows, uint32_t reads,
                             IsolationLevel isolation) {
  Txn* txn = db.Begin(isolation, /*read_only=*/true);
  Row24 row;
  for (uint32_t i = 0; i < reads; ++i) {
    Status s = db.Read(txn, table, 0, rng.Uniform(rows), &row);
    if (s.IsAborted()) return s;
  }
  return db.Commit(txn);
}

/// One long read-only transaction touching `touches` random rows
/// (Section 5.2.2: serializable, transactionally consistent, reads 10% of
/// the table). Returns (status, sum) -- the sum defeats dead-code
/// elimination.
inline Status RunLongReadTxn(Database& db, TableId table, Random& rng,
                             uint64_t rows, uint64_t touches,
                             uint64_t* checksum) {
  Txn* txn = db.Begin(IsolationLevel::kSerializable, /*read_only=*/true);
  Row24 row;
  uint64_t sum = 0;
  for (uint64_t i = 0; i < touches; ++i) {
    Status s = db.Read(txn, table, 0, rng.Uniform(rows), &row);
    if (s.IsAborted()) return s;
    if (s.ok()) sum += row.value;
  }
  *checksum += sum;
  return db.Commit(txn);
}

}  // namespace workload
}  // namespace mvstore
