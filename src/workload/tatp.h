// TATP: Telecommunication Application Transaction Processing benchmark
// (paper Section 5.3; spec at tatpbenchmark.sourceforge.net).
//
// Four tables, two hash indexes each; seven short transaction types mixed
// 80% read / 16% update / 2% insert / 2% delete; non-uniform subscriber-id
// generation.
//
// This is the workload behind the paper's Table 4 (bench/table4_tatp.cc):
// 20M subscribers, 24 threads, Read Committed, where all three schemes
// sustain millions of transactions per second and 1V leads the MV schemes
// by roughly 1.35x on raw throughput.
#pragma once

#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "core/database.h"

namespace mvstore {
namespace tatp {

/// --- schema -----------------------------------------------------------------

struct SubscriberRow {
  uint64_t s_id;
  uint64_t sub_nbr;      // numeric rendering of the 15-digit string
  uint8_t bit[10];       // bit_1..bit_10
  uint8_t hex[10];       // hex_1..hex_10
  uint8_t byte2[10];     // byte2_1..byte2_10
  uint16_t pad;
  uint32_t msc_location;
  uint32_t vlr_location;
};

struct AccessInfoRow {
  uint64_t s_id;
  uint8_t ai_type;  // 1..4
  uint8_t data1;
  uint8_t data2;
  char data3[3];
  char data4[5];
  char pad[3];
};

struct SpecialFacilityRow {
  uint64_t s_id;
  uint8_t sf_type;  // 1..4
  uint8_t is_active;
  uint8_t error_cntrl;
  uint8_t data_a;
  char data_b[5];
  char pad[7];
};

struct CallForwardingRow {
  uint64_t s_id;
  uint8_t sf_type;
  uint8_t start_time;  // 0, 8, 16
  uint8_t end_time;    // start_time + 1..8
  char pad[5];
  uint64_t numberx;
};

/// Composite keys (64-bit packing).
inline uint64_t AccessInfoKey(uint64_t s_id, uint8_t ai_type) {
  return s_id * 4 + (ai_type - 1);
}
inline uint64_t SpecialFacilityKey(uint64_t s_id, uint8_t sf_type) {
  return s_id * 4 + (sf_type - 1);
}
inline uint64_t CallForwardingKey(uint64_t s_id, uint8_t sf_type,
                                  uint8_t start_time) {
  return (s_id * 4 + (sf_type - 1)) * 4 + start_time / 8;
}
/// Secondary key: all call-forwarding rows for (s_id, sf_type).
inline uint64_t CallForwardingSfKey(uint64_t s_id, uint8_t sf_type) {
  return s_id * 4 + (sf_type - 1);
}

/// The deployed TATP database handle.
struct TatpDatabase {
  TableId subscriber;
  TableId access_info;
  TableId special_facility;
  TableId call_forwarding;
  uint64_t subscribers;
};

/// Create tables + indexes and load `subscribers` subscribers with the
/// spec's population rules (1-4 access-info rows, 1-4 special facilities,
/// 0-3 call-forwarding rows each).
TatpDatabase LoadTatp(Database& db, uint64_t subscribers, uint64_t seed = 42);

/// Transaction types, with the spec's mix percentages.
enum class TatpTxnType : uint8_t {
  kGetSubscriberData = 0,   // 35%
  kGetNewDestination,       // 10%
  kGetAccessData,           // 35%
  kUpdateSubscriberData,    // 2%
  kUpdateLocation,          // 14%
  kInsertCallForwarding,    // 2%
  kDeleteCallForwarding,    // 2%
};

/// Pick a transaction type according to the mix.
TatpTxnType PickTxnType(Random& rng);

/// Non-uniform subscriber id: ((rand(0,A) | rand(1,N)) % N) + 1, with
/// A = 2^ceil(log2(N))/2 - 1 (65535 at the spec's 1M scale).
uint64_t NonUniformSid(Random& rng, uint64_t subscribers);

/// Execute one transaction of the given type. Returns the commit status;
/// kAborted means rolled back (caller retries or counts the abort).
Status RunTatpTxn(Database& db, const TatpDatabase& tatp, Random& rng,
                  TatpTxnType type,
                  IsolationLevel isolation = IsolationLevel::kReadCommitted);

/// Consistency check used by tests: every special facility belongs to an
/// existing subscriber, every call-forwarding row to an existing special
/// facility. Returns true if consistent.
bool CheckConsistency(Database& db, const TatpDatabase& tatp);

}  // namespace tatp
}  // namespace mvstore
