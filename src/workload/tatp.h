// TATP: Telecommunication Application Transaction Processing benchmark
// (paper Section 5.3; spec at tatpbenchmark.sourceforge.net).
//
// Four tables, two hash indexes each; seven short transaction types mixed
// 80% read / 16% update / 2% insert / 2% delete; non-uniform subscriber-id
// generation.
//
// This is the workload behind the paper's Table 4 (bench/table4_tatp.cc):
// 20M subscribers, 24 threads, Read Committed, where all three schemes
// sustain millions of transactions per second and 1V leads the MV schemes
// by roughly 1.35x on raw throughput.
#pragma once

#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "core/database.h"

namespace mvstore {
namespace tatp {

/// --- schema -----------------------------------------------------------------

struct SubscriberRow {
  uint64_t s_id;
  uint64_t sub_nbr;      // numeric rendering of the 15-digit string
  uint8_t bit[10];       // bit_1..bit_10
  uint8_t hex[10];       // hex_1..hex_10
  uint8_t byte2[10];     // byte2_1..byte2_10
  uint16_t pad;
  uint32_t msc_location;
  uint32_t vlr_location;
};

struct AccessInfoRow {
  uint64_t s_id;
  uint8_t ai_type;  // 1..4
  uint8_t data1;
  uint8_t data2;
  char data3[3];
  char data4[5];
  char pad[3];
};

struct SpecialFacilityRow {
  uint64_t s_id;
  uint8_t sf_type;  // 1..4
  uint8_t is_active;
  uint8_t error_cntrl;
  uint8_t data_a;
  char data_b[5];
  char pad[7];
};

struct CallForwardingRow {
  uint64_t s_id;
  uint8_t sf_type;
  uint8_t start_time;  // 0, 8, 16
  uint8_t end_time;    // start_time + 1..8
  char pad[5];
  uint64_t numberx;
};

/// Composite keys (64-bit packing).
inline uint64_t AccessInfoKey(uint64_t s_id, uint8_t ai_type) {
  return s_id * 4 + (ai_type - 1);
}
inline uint64_t SpecialFacilityKey(uint64_t s_id, uint8_t sf_type) {
  return s_id * 4 + (sf_type - 1);
}
inline uint64_t CallForwardingKey(uint64_t s_id, uint8_t sf_type,
                                  uint8_t start_time) {
  return (s_id * 4 + (sf_type - 1)) * 4 + start_time / 8;
}
/// Secondary key: all call-forwarding rows for (s_id, sf_type).
inline uint64_t CallForwardingSfKey(uint64_t s_id, uint8_t sf_type) {
  return s_id * 4 + (sf_type - 1);
}

/// The deployed TATP database handle.
struct TatpDatabase {
  TableId subscriber;
  TableId access_info;
  TableId special_facility;
  TableId call_forwarding;
  uint64_t subscribers;
};

/// Create tables + indexes and load `subscribers` subscribers with the
/// spec's population rules (1-4 access-info rows, 1-4 special facilities,
/// 0-3 call-forwarding rows each). Equivalent to CreateTatpTables +
/// PopulateTatp.
TatpDatabase LoadTatp(Database& db, uint64_t subscribers, uint64_t seed = 42);

/// Schema only: create the four tables + indexes, load nothing. This is
/// the half that belongs in Database::Open's define_schema callback —
/// schema is code and cannot live in the log, but data committed inside
/// define_schema WOULD be logged and then double-applied by the replay
/// that follows. Recover-then-continue servers (tools/mvserver_main.cc)
/// create tables here and call PopulateTatp only when the recovered
/// database turns out to be empty.
TatpDatabase CreateTatpTables(Database& db, uint64_t subscribers);

/// Load the spec's population into already-created tables (committed
/// through the normal path, so it is logged and recoverable).
void PopulateTatp(Database& db, const TatpDatabase& tatp, uint64_t seed = 42);

/// Transaction types, with the spec's mix percentages.
enum class TatpTxnType : uint8_t {
  kGetSubscriberData = 0,   // 35%
  kGetNewDestination,       // 10%
  kGetAccessData,           // 35%
  kUpdateSubscriberData,    // 2%
  kUpdateLocation,          // 14%
  kInsertCallForwarding,    // 2%
  kDeleteCallForwarding,    // 2%
};

/// Pick a transaction type according to the mix.
TatpTxnType PickTxnType(Random& rng);

/// Non-uniform subscriber id: ((rand(0,A) | rand(1,N)) % N) + 1, with
/// A = 2^ceil(log2(N))/2 - 1 (65535 at the spec's 1M scale).
uint64_t NonUniformSid(Random& rng, uint64_t subscribers);

/// Execute one transaction of the given type. Returns the commit status;
/// kAborted means rolled back (caller retries or counts the abort).
Status RunTatpTxn(Database& db, const TatpDatabase& tatp, Random& rng,
                  TatpTxnType type,
                  IsolationLevel isolation = IsolationLevel::kReadCommitted);

/// Consistency check used by tests: every special facility belongs to an
/// existing subscriber, every call-forwarding row to an existing special
/// facility. Returns true if consistent.
bool CheckConsistency(Database& db, const TatpDatabase& tatp);

/// Register the seven TATP transactions as whole-txn procedures on the
/// database ("tatp.get_subscriber_data", ..., names below), plus
/// "tatp.mixed" which draws the type from the spec's mix. One server round
/// trip to any of them begins, runs, and commits a full transaction
/// server-side. Argument frame (little-endian): seed (8B) | isolation (1B,
/// IsolationLevel; anything else = ReadCommitted); all row/parameter
/// randomness derives from the seed, so a client stream with distinct seeds
/// reproduces the paper's independent worker streams. Returns the id of the
/// first registered procedure; the ids are consecutive in TatpTxnType
/// order with "tatp.mixed" last.
uint32_t RegisterTatpProcedures(Database& db, const TatpDatabase& tatp);

/// Procedure name for a TATP transaction type ("tatp.update_location", ...).
const char* TatpProcedureName(TatpTxnType type);

}  // namespace tatp
}  // namespace mvstore
