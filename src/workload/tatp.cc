#include "workload/tatp.h"

#include <cstring>

#include "util/bits.h"

namespace mvstore {
namespace tatp {

namespace {

uint64_t SubscriberKey(const void* p) {
  return static_cast<const SubscriberRow*>(p)->s_id;
}
uint64_t SubscriberNbrKey(const void* p) {
  return static_cast<const SubscriberRow*>(p)->sub_nbr;
}
uint64_t AccessInfoPk(const void* p) {
  const auto* r = static_cast<const AccessInfoRow*>(p);
  return AccessInfoKey(r->s_id, r->ai_type);
}
uint64_t AccessInfoSid(const void* p) {
  return static_cast<const AccessInfoRow*>(p)->s_id;
}
uint64_t SpecialFacilityPk(const void* p) {
  const auto* r = static_cast<const SpecialFacilityRow*>(p);
  return SpecialFacilityKey(r->s_id, r->sf_type);
}
uint64_t SpecialFacilitySid(const void* p) {
  return static_cast<const SpecialFacilityRow*>(p)->s_id;
}
uint64_t CallForwardingPk(const void* p) {
  const auto* r = static_cast<const CallForwardingRow*>(p);
  return CallForwardingKey(r->s_id, r->sf_type, r->start_time);
}
uint64_t CallForwardingSf(const void* p) {
  const auto* r = static_cast<const CallForwardingRow*>(p);
  return CallForwardingSfKey(r->s_id, r->sf_type);
}

}  // namespace

TatpDatabase LoadTatp(Database& db, uint64_t subscribers, uint64_t seed) {
  TatpDatabase tatp = CreateTatpTables(db, subscribers);
  PopulateTatp(db, tatp, seed);
  return tatp;
}

TatpDatabase CreateTatpTables(Database& db, uint64_t subscribers) {
  TatpDatabase tatp;
  tatp.subscribers = subscribers;

  {
    TableDef def;
    def.name = "subscriber";
    def.payload_size = sizeof(SubscriberRow);
    def.indexes.push_back(IndexDef{&SubscriberKey, subscribers, true});
    def.indexes.push_back(IndexDef{&SubscriberNbrKey, subscribers, false});
    tatp.subscriber = db.CreateTable(def);
  }
  {
    TableDef def;
    def.name = "access_info";
    def.payload_size = sizeof(AccessInfoRow);
    def.indexes.push_back(IndexDef{&AccessInfoPk, subscribers * 3, true});
    def.indexes.push_back(IndexDef{&AccessInfoSid, subscribers, false});
    tatp.access_info = db.CreateTable(def);
  }
  {
    TableDef def;
    def.name = "special_facility";
    def.payload_size = sizeof(SpecialFacilityRow);
    def.indexes.push_back(IndexDef{&SpecialFacilityPk, subscribers * 3, true});
    def.indexes.push_back(IndexDef{&SpecialFacilitySid, subscribers, false});
    tatp.special_facility = db.CreateTable(def);
  }
  {
    TableDef def;
    def.name = "call_forwarding";
    def.payload_size = sizeof(CallForwardingRow);
    def.indexes.push_back(IndexDef{&CallForwardingPk, subscribers * 4, true});
    def.indexes.push_back(IndexDef{&CallForwardingSf, subscribers * 2, false});
    tatp.call_forwarding = db.CreateTable(def);
  }
  return tatp;
}

void PopulateTatp(Database& db, const TatpDatabase& tatp, uint64_t seed) {
  const uint64_t subscribers = tatp.subscribers;
  Random rng(seed);
  for (uint64_t sid = 1; sid <= subscribers; ++sid) {
    Txn* txn = db.Begin(IsolationLevel::kReadCommitted);

    SubscriberRow sub{};
    sub.s_id = sid;
    sub.sub_nbr = sid;  // spec: sub_nbr is s_id zero-padded to 15 digits
    for (int i = 0; i < 10; ++i) {
      sub.bit[i] = static_cast<uint8_t>(rng.Uniform(2));
      sub.hex[i] = static_cast<uint8_t>(rng.Uniform(16));
      sub.byte2[i] = static_cast<uint8_t>(rng.Uniform(256));
    }
    sub.msc_location = static_cast<uint32_t>(rng.Next());
    sub.vlr_location = static_cast<uint32_t>(rng.Next());
    db.Insert(txn, tatp.subscriber, &sub);

    // 1..4 access-info rows with distinct ai_type.
    uint8_t types[4] = {1, 2, 3, 4};
    uint32_t n_ai = 1 + static_cast<uint32_t>(rng.Uniform(4));
    for (uint32_t i = 0; i < n_ai; ++i) {
      AccessInfoRow ai{};
      ai.s_id = sid;
      ai.ai_type = types[i];
      ai.data1 = static_cast<uint8_t>(rng.Uniform(256));
      ai.data2 = static_cast<uint8_t>(rng.Uniform(256));
      std::memset(ai.data3, 'A' + static_cast<int>(rng.Uniform(26)), 3);
      std::memset(ai.data4, 'A' + static_cast<int>(rng.Uniform(26)), 5);
      db.Insert(txn, tatp.access_info, &ai);
    }

    // 1..4 special facilities, each with 0..3 call forwardings.
    uint32_t n_sf = 1 + static_cast<uint32_t>(rng.Uniform(4));
    for (uint32_t i = 0; i < n_sf; ++i) {
      SpecialFacilityRow sf{};
      sf.s_id = sid;
      sf.sf_type = types[i];
      sf.is_active = rng.PercentChance(85) ? 1 : 0;
      sf.error_cntrl = static_cast<uint8_t>(rng.Uniform(256));
      sf.data_a = static_cast<uint8_t>(rng.Uniform(256));
      std::memset(sf.data_b, 'A' + static_cast<int>(rng.Uniform(26)), 5);
      db.Insert(txn, tatp.special_facility, &sf);

      uint32_t n_cf = static_cast<uint32_t>(rng.Uniform(4));  // 0..3
      uint8_t start_times[3] = {0, 8, 16};
      for (uint32_t j = 0; j < n_cf && j < 3; ++j) {
        CallForwardingRow cf{};
        cf.s_id = sid;
        cf.sf_type = sf.sf_type;
        cf.start_time = start_times[j];
        cf.end_time =
            static_cast<uint8_t>(cf.start_time + 1 + rng.Uniform(8));
        cf.numberx = rng.Next() % 1000000000000000ull;
        db.Insert(txn, tatp.call_forwarding, &cf);
      }
    }
    db.Commit(txn);
  }
}

TatpTxnType PickTxnType(Random& rng) {
  uint64_t p = rng.Uniform(100);
  if (p < 35) return TatpTxnType::kGetSubscriberData;
  if (p < 45) return TatpTxnType::kGetNewDestination;
  if (p < 80) return TatpTxnType::kGetAccessData;
  if (p < 82) return TatpTxnType::kUpdateSubscriberData;
  if (p < 96) return TatpTxnType::kUpdateLocation;
  if (p < 98) return TatpTxnType::kInsertCallForwarding;
  return TatpTxnType::kDeleteCallForwarding;
}

uint64_t NonUniformSid(Random& rng, uint64_t subscribers) {
  uint64_t a = NextPowerOfTwo(subscribers) / 2 - 1;  // 65535 at 1M scale
  return ((rng.UniformRange(0, a) | rng.UniformRange(1, subscribers)) %
          subscribers) +
         1;
}

namespace {

Status GetSubscriberData(Database& db, const TatpDatabase& tatp, Random& rng,
                         IsolationLevel iso) {
  uint64_t sid = NonUniformSid(rng, tatp.subscribers);
  Txn* txn = db.Begin(iso, /*read_only=*/true);
  SubscriberRow sub;
  Status s = db.Read(txn, tatp.subscriber, 0, sid, &sub);
  if (s.IsAborted()) return s;
  return db.Commit(txn);
}

Status GetNewDestination(Database& db, const TatpDatabase& tatp, Random& rng,
                         IsolationLevel iso) {
  uint64_t sid = NonUniformSid(rng, tatp.subscribers);
  uint8_t sf_type = static_cast<uint8_t>(1 + rng.Uniform(4));
  uint8_t start_time = static_cast<uint8_t>(rng.Uniform(3) * 8);
  uint8_t end_time = static_cast<uint8_t>(1 + rng.Uniform(24));

  Txn* txn = db.Begin(iso, /*read_only=*/true);
  SpecialFacilityRow sf;
  Status s = db.Read(txn, tatp.special_facility, 0,
                     SpecialFacilityKey(sid, sf_type), &sf);
  if (s.IsAborted()) return s;
  if (s.ok() && sf.is_active == 1) {
    // Spec predicate: cf.start_time <= <start_time> AND <end_time> < cf.end_time.
    uint64_t numberx = 0;
    Status scan = db.Scan(
        txn, tatp.call_forwarding, 1, CallForwardingSfKey(sid, sf_type),
        [&](const void* p) {
          const auto* cf = static_cast<const CallForwardingRow*>(p);
          return cf->start_time <= start_time && end_time < cf->end_time;
        },
        [&](const void* p) {
          numberx = static_cast<const CallForwardingRow*>(p)->numberx;
          return true;
        });
    if (scan.IsAborted()) return scan;
    (void)numberx;
  }
  return db.Commit(txn);
}

Status GetAccessData(Database& db, const TatpDatabase& tatp, Random& rng,
                     IsolationLevel iso) {
  uint64_t sid = NonUniformSid(rng, tatp.subscribers);
  uint8_t ai_type = static_cast<uint8_t>(1 + rng.Uniform(4));
  Txn* txn = db.Begin(iso, /*read_only=*/true);
  AccessInfoRow ai;
  Status s = db.Read(txn, tatp.access_info, 0, AccessInfoKey(sid, ai_type), &ai);
  if (s.IsAborted()) return s;
  return db.Commit(txn);
}

Status UpdateSubscriberData(Database& db, const TatpDatabase& tatp,
                            Random& rng, IsolationLevel iso) {
  uint64_t sid = NonUniformSid(rng, tatp.subscribers);
  uint8_t sf_type = static_cast<uint8_t>(1 + rng.Uniform(4));
  uint8_t bit = static_cast<uint8_t>(rng.Uniform(2));
  uint8_t data_a = static_cast<uint8_t>(rng.Uniform(256));

  Txn* txn = db.Begin(iso);
  Status s = db.Update(txn, tatp.subscriber, 0, sid, [&](void* p) {
    static_cast<SubscriberRow*>(p)->bit[0] = bit;
  });
  if (s.IsAborted()) return s;
  s = db.Update(txn, tatp.special_facility, 0, SpecialFacilityKey(sid, sf_type),
                [&](void* p) {
                  static_cast<SpecialFacilityRow*>(p)->data_a = data_a;
                });
  if (s.IsAborted()) return s;  // NotFound is fine (spec hit rate ~62.5%)
  return db.Commit(txn);
}

Status UpdateLocation(Database& db, const TatpDatabase& tatp, Random& rng,
                      IsolationLevel iso) {
  uint64_t sub_nbr = NonUniformSid(rng, tatp.subscribers);
  uint32_t vlr = static_cast<uint32_t>(rng.Next());
  Txn* txn = db.Begin(iso);
  // Lookup by sub_nbr (secondary index), update vlr_location.
  Status s = db.Update(txn, tatp.subscriber, 1, sub_nbr, [&](void* p) {
    static_cast<SubscriberRow*>(p)->vlr_location = vlr;
  });
  if (s.IsAborted()) return s;
  return db.Commit(txn);
}

Status InsertCallForwarding(Database& db, const TatpDatabase& tatp,
                            Random& rng, IsolationLevel iso) {
  uint64_t sub_nbr = NonUniformSid(rng, tatp.subscribers);
  uint8_t sf_type = static_cast<uint8_t>(1 + rng.Uniform(4));
  uint8_t start_time = static_cast<uint8_t>(rng.Uniform(3) * 8);

  Txn* txn = db.Begin(iso);
  SubscriberRow sub;
  Status s = db.Read(txn, tatp.subscriber, 1, sub_nbr, &sub);
  if (s.IsAborted()) return s;
  if (s.IsNotFound()) return db.Commit(txn);
  uint64_t sid = sub.s_id;

  // The spec reads the subscriber's special facility types first.
  bool has_sf = false;
  s = db.Scan(txn, tatp.special_facility, 1, sid, nullptr,
              [&](const void* p) {
                has_sf |= static_cast<const SpecialFacilityRow*>(p)->sf_type ==
                          sf_type;
                return true;
              });
  if (s.IsAborted()) return s;

  if (has_sf) {
    CallForwardingRow cf{};
    cf.s_id = sid;
    cf.sf_type = sf_type;
    cf.start_time = start_time;
    cf.end_time = static_cast<uint8_t>(start_time + 1 + rng.Uniform(8));
    cf.numberx = rng.Next() % 1000000000000000ull;
    s = db.Insert(txn, tatp.call_forwarding, &cf);
    if (s.IsAborted()) return s;
    // AlreadyExists is an expected benchmark outcome; commit anyway.
  }
  return db.Commit(txn);
}

Status DeleteCallForwarding(Database& db, const TatpDatabase& tatp,
                            Random& rng, IsolationLevel iso) {
  uint64_t sub_nbr = NonUniformSid(rng, tatp.subscribers);
  uint8_t sf_type = static_cast<uint8_t>(1 + rng.Uniform(4));
  uint8_t start_time = static_cast<uint8_t>(rng.Uniform(3) * 8);

  Txn* txn = db.Begin(iso);
  SubscriberRow sub;
  Status s = db.Read(txn, tatp.subscriber, 1, sub_nbr, &sub);
  if (s.IsAborted()) return s;
  if (s.IsNotFound()) return db.Commit(txn);

  s = db.Delete(txn, tatp.call_forwarding, 0,
                CallForwardingKey(sub.s_id, sf_type, start_time));
  if (s.IsAborted()) return s;  // NotFound is an expected outcome
  return db.Commit(txn);
}

}  // namespace

Status RunTatpTxn(Database& db, const TatpDatabase& tatp, Random& rng,
                  TatpTxnType type, IsolationLevel iso) {
  switch (type) {
    case TatpTxnType::kGetSubscriberData:
      return GetSubscriberData(db, tatp, rng, iso);
    case TatpTxnType::kGetNewDestination:
      return GetNewDestination(db, tatp, rng, iso);
    case TatpTxnType::kGetAccessData:
      return GetAccessData(db, tatp, rng, iso);
    case TatpTxnType::kUpdateSubscriberData:
      return UpdateSubscriberData(db, tatp, rng, iso);
    case TatpTxnType::kUpdateLocation:
      return UpdateLocation(db, tatp, rng, iso);
    case TatpTxnType::kInsertCallForwarding:
      return InsertCallForwarding(db, tatp, rng, iso);
    case TatpTxnType::kDeleteCallForwarding:
      return DeleteCallForwarding(db, tatp, rng, iso);
  }
  return Status::InvalidArgument();
}

bool CheckConsistency(Database& db, const TatpDatabase& tatp) {
  bool consistent = true;
  Txn* txn = db.Begin(IsolationLevel::kSerializable, /*read_only=*/true);
  for (uint64_t sid = 1; sid <= tatp.subscribers && consistent; ++sid) {
    SubscriberRow sub;
    if (!db.Read(txn, tatp.subscriber, 0, sid, &sub).ok()) {
      consistent = false;
      break;
    }
    // Every call-forwarding row must reference an existing special facility.
    for (uint8_t sf_type = 1; sf_type <= 4; ++sf_type) {
      SpecialFacilityRow sf;
      Status sf_status = db.Read(txn, tatp.special_facility, 0,
                                 SpecialFacilityKey(sid, sf_type), &sf);
      bool cf_exists = false;
      db.Scan(txn, tatp.call_forwarding, 1, CallForwardingSfKey(sid, sf_type),
              nullptr, [&](const void*) {
                cf_exists = true;
                return false;
              });
      if (cf_exists && sf_status.IsNotFound()) {
        consistent = false;
        break;
      }
    }
  }
  db.Commit(txn);
  return consistent;
}

const char* TatpProcedureName(TatpTxnType type) {
  switch (type) {
    case TatpTxnType::kGetSubscriberData:
      return "tatp.get_subscriber_data";
    case TatpTxnType::kGetNewDestination:
      return "tatp.get_new_destination";
    case TatpTxnType::kGetAccessData:
      return "tatp.get_access_data";
    case TatpTxnType::kUpdateSubscriberData:
      return "tatp.update_subscriber_data";
    case TatpTxnType::kUpdateLocation:
      return "tatp.update_location";
    case TatpTxnType::kInsertCallForwarding:
      return "tatp.insert_call_forwarding";
    case TatpTxnType::kDeleteCallForwarding:
      return "tatp.delete_call_forwarding";
  }
  return "tatp.unknown";
}

namespace {

/// Decode the shared procedure argument frame: seed (8B) | isolation (1B).
bool ParseTatpArg(const uint8_t* arg, size_t arg_len, uint64_t* seed,
                  IsolationLevel* iso) {
  if (arg_len < 9) return false;
  std::memcpy(seed, arg, 8);
  uint8_t iso_byte = arg[8];
  *iso = iso_byte <= static_cast<uint8_t>(IsolationLevel::kSerializable)
             ? static_cast<IsolationLevel>(iso_byte)
             : IsolationLevel::kReadCommitted;
  return true;
}

}  // namespace

uint32_t RegisterTatpProcedures(Database& db, const TatpDatabase& tatp) {
  uint32_t first = 0;
  for (uint8_t t = 0;
       t <= static_cast<uint8_t>(TatpTxnType::kDeleteCallForwarding); ++t) {
    TatpTxnType type = static_cast<TatpTxnType>(t);
    uint32_t id = db.RegisterProcedure(
        TatpProcedureName(type),
        [tatp, type](Database& d, const uint8_t* arg, size_t arg_len,
                     std::vector<uint8_t>*) {
          uint64_t seed = 0;
          IsolationLevel iso;
          if (!ParseTatpArg(arg, arg_len, &seed, &iso)) {
            return Status::InvalidArgument();
          }
          Random rng(seed);
          return RunTatpTxn(d, tatp, rng, type, iso);
        });
    if (t == 0) first = id;
  }
  db.RegisterProcedure(
      "tatp.mixed",
      [tatp](Database& d, const uint8_t* arg, size_t arg_len,
             std::vector<uint8_t>*) {
        uint64_t seed = 0;
        IsolationLevel iso;
        if (!ParseTatpArg(arg, arg_len, &seed, &iso)) {
          return Status::InvalidArgument();
        }
        Random rng(seed);
        return RunTatpTxn(d, tatp, rng, PickTxnType(rng), iso);
      });
  return first;
}

}  // namespace tatp
}  // namespace mvstore
