// Object pool for transaction objects.
//
// MVEngine::Begin used to pay `new Transaction` (and the matching epoch-
// deferred `delete`) per transaction -- a global-allocator round trip plus
// the reallocation of every read/write/scan-set vector from scratch. The
// pool recycles *constructed* objects instead: a released transaction keeps
// its vectors' capacity, so a recycled Begin is a handful of stores.
//
// Requirements on T: `T(Args...)` constructs a fresh object and
// `void Reset(Args...)` restores every field of a recycled one to its
// just-constructed state -- the pool hands out recycled objects with no
// other cleanup.
//
// Recycled objects circulate like slab slots (mem/slab_allocator.h): a
// latch-free thread-local cache over a spin-latched global freelist. With
// `enabled = false` the pool degrades to plain new/delete, the heap-debug
// configuration (ASan sees every transaction boundary again).
//
// Safety: Release() makes the object immediately reusable by any thread.
// For epoch-protected objects (MV transactions are dereferenced by
// concurrent visibility checks), route Release through
// EpochManager::Retire so no reader can still hold the pointer.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/counters.h"
#include "common/port.h"
#include "common/spin_latch.h"

namespace mvstore {

template <typename T>
class ObjectPool {
 public:
  static constexpr uint32_t kCacheCapacity = 16;
  static constexpr uint32_t kTransferBatch = kCacheCapacity / 2;

  explicit ObjectPool(bool enabled, StatsCollector* stats = nullptr)
      : enabled_(enabled),
        pool_id_(next_pool_id_.fetch_add(1, std::memory_order_relaxed)),
        stats_(stats) {}

  /// Destroys every object the pool ever created, including ones still
  /// acquired -- callers must have quiesced.
  ~ObjectPool() {
    for (T* obj : all_) delete obj;
  }

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Hand out an object: recycled (Reset with `args`) when available,
  /// freshly constructed otherwise.
  template <typename... Args>
  T* Acquire(Args&&... args) {
    if (!enabled_) return new T(std::forward<Args>(args)...);
    Cache& c = CacheForThisThread();
    if (c.count > 0) {
      if (stats_ != nullptr) stats_->Add(Stat::kTxnPoolHits);
      T* obj = c.items[--c.count];
      obj->Reset(std::forward<Args>(args)...);
      return obj;
    }
    return AcquireSlow(c, std::forward<Args>(args)...);
  }

  /// Return an object for reuse. The object stays constructed (vector
  /// capacities survive); the next Acquire re-arms it via Reset.
  void Release(T* obj) {
    if (!enabled_) {
      delete obj;
      return;
    }
    Cache& c = CacheForThisThread();
    if (c.count == kCacheCapacity) {
      SpinLatchGuard guard(latch_);
      free_.insert(free_.end(), c.items, c.items + kTransferBatch);
      std::copy(c.items + kTransferBatch, c.items + c.count, c.items);
      c.count -= kTransferBatch;
    }
    c.items[c.count++] = obj;
  }

  bool enabled() const { return enabled_; }

 private:
  struct alignas(kCacheLineSize) Cache {
    uint32_t count = 0;
    T* items[kCacheCapacity];
  };

  /// Same registry trick as SlabAllocator::MagazineForThisThread: a
  /// thread-local vector indexed by a never-reused pool id.
  Cache& CacheForThisThread() {
    thread_local std::vector<Cache*> tl_caches;
    if (pool_id_ < tl_caches.size() && tl_caches[pool_id_] != nullptr) {
      return *tl_caches[pool_id_];
    }
    auto owned = std::make_unique<Cache>();
    Cache* c = owned.get();
    {
      SpinLatchGuard guard(latch_);
      caches_.push_back(std::move(owned));
    }
    if (tl_caches.size() <= pool_id_) tl_caches.resize(pool_id_ + 1);
    tl_caches[pool_id_] = c;
    return *c;
  }

  template <typename... Args>
  T* AcquireSlow(Cache& c, Args&&... args) {
    T* recycled = nullptr;
    {
      SpinLatchGuard guard(latch_);
      if (!free_.empty()) {
        recycled = free_.back();
        free_.pop_back();
        uint32_t take = kTransferBatch - 1;
        while (take > 0 && !free_.empty()) {
          c.items[c.count++] = free_.back();
          free_.pop_back();
          --take;
        }
      }
    }
    if (recycled != nullptr) {
      if (stats_ != nullptr) stats_->Add(Stat::kTxnPoolHits);
      recycled->Reset(std::forward<Args>(args)...);
      return recycled;
    }
    if (stats_ != nullptr) stats_->Add(Stat::kTxnPoolMisses);
    T* obj = new T(std::forward<Args>(args)...);
    {
      SpinLatchGuard guard(latch_);
      all_.push_back(obj);
    }
    return obj;
  }

  inline static std::atomic<uint32_t> next_pool_id_{0};

  const bool enabled_;
  const uint32_t pool_id_;
  StatsCollector* const stats_;

  SpinLatch latch_;
  std::vector<T*> free_ GUARDED_BY(latch_);
  /// Latched for writes; the destructor's unlatched sweep is a quiesced-
  /// caller contract (ctors/dtors are exempt from the analysis anyway).
  std::vector<T*> all_ GUARDED_BY(latch_);
  std::vector<std::unique_ptr<Cache>> caches_ GUARDED_BY(latch_);
};

}  // namespace mvstore
