// Slab allocation of fixed-size slots with thread-local magazine caches.
//
// The paper's performance claim is that the only shared critical section in
// the MV engine is one atomic timestamp increment (Section 6). Paying a
// global `::operator new` / `::operator delete` round trip per version would
// reintroduce an allocator lock on every update, so versions (and
// transaction objects, see mem/object_pool.h) are recycled through slabs
// instead, the way Hekaton recycles fixed-size version slots through its
// epoch machinery.
//
// Layout: one allocator per fixed slot size (per table: a version's size is
// determined by the table's index count and payload size). Slots are carved
// out of large chunks and never returned to the OS until the allocator dies;
// freed slots circulate through three tiers:
//
//   thread-local magazine  --  array of slot pointers, touched only by its
//                              owning thread: the hot path is latch-free
//   global freelist spine  --  spin-latched; magazines refill from / flush
//                              to it in half-magazine batches
//   chunk bump region      --  fresh slots, carved under the same latch
//
// Frees may come from any thread (GC and epoch reclamation run wherever
// retirement happens); a slot freed on thread A enters A's magazine and
// migrates to other threads through the spine.
//
// Safety: a slot handed back via Free() may be handed out again by the next
// Allocate() with no quarantine. Callers must ensure no concurrent reader
// can still dereference the slot -- in the engine this is exactly what
// epoch-based reclamation guarantees (versions reach Free() only through
// EpochManager::Retire / unpublished-version paths).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/counters.h"
#include "common/port.h"
#include "common/spin_latch.h"
#include "util/tls_slots.h"

namespace mvstore {

class SlabAllocator {
 public:
  /// Slots per magazine. Sized so a magazine (one cache-line-aligned block
  /// of pointers) absorbs a transaction's worth of churn without touching
  /// the spine latch.
  static constexpr uint32_t kMagazineCapacity = 64;
  /// Refill/flush batch: half a magazine, so a freshly refilled thread can
  /// absorb a burst of frees (and vice versa) before taking the latch again.
  static constexpr uint32_t kTransferBatch = kMagazineCapacity / 2;
  /// Every slot is aligned to this (chunks come max-aligned from
  /// ::operator new and slot sizes are rounded up to a multiple).
  static constexpr size_t kSlotAlign = 16;
  /// Chunks are at least this large (and always hold >= kTransferBatch
  /// slots) so chunk allocation stays rare.
  static constexpr size_t kMinChunkBytes = 64 * 1024;
  /// Local hit/recycle tallies are folded into the StatsCollector every
  /// (kStatsFlushMask + 1) events, keeping the hot path free of shared
  /// atomics while bounding counter staleness.
  static constexpr uint64_t kStatsFlushMask = 1023;

  /// `stats` may be nullptr (no counter export). The allocator hands out
  /// slots of exactly `slot_size` bytes rounded up to kSlotAlign.
  explicit SlabAllocator(size_t slot_size, StatsCollector* stats = nullptr);
  ~SlabAllocator();

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  /// Get one slot. Hot path: pop from this thread's magazine, no latch.
  void* Allocate() {
    Magazine& m = MagazineForThisThread();
    if (m.count > 0) {
      if (((++m.hits) & kStatsFlushMask) == 0) FlushLocalStats(m);
      return m.slots[--m.count];
    }
    return AllocateSlow(m);
  }

  /// Return one slot. Hot path: push onto this thread's magazine.
  void Free(void* slot) {
    Magazine& m = MagazineForThisThread();
    if (m.count == kMagazineCapacity) FlushMagazine(m);
    if (((++m.recycled) & kStatsFlushMask) == 0) FlushLocalStats(m);
    m.slots[m.count++] = slot;
  }

  size_t slot_size() const { return slot_size_; }

  /// Chunks carved so far (for tests; exact).
  uint64_t chunks_allocated() const {
    return chunks_allocated_.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLineSize) Magazine {
    uint32_t count = 0;
    /// Local stat tallies, folded into stats_ on slow paths / periodically.
    uint64_t hits = 0;
    uint64_t recycled = 0;
    void* slots[kMagazineCapacity];
  };

  /// This thread's magazine for this allocator. The registry is a plain
  /// thread-local vector indexed by a process-unique allocator id, so the
  /// steady-state lookup is one bounds check + load (no hashing). Entries
  /// for destroyed allocators go stale but are never revisited: ids are
  /// never reused.
  Magazine& MagazineForThisThread() {
    thread_local std::vector<Magazine*> tl_magazines;
    if (allocator_id_ < tl_magazines.size() &&
        tl_magazines[allocator_id_] != nullptr) {
      return *tl_magazines[allocator_id_];
    }
    return RegisterThread(tl_magazines);
  }

  /// Tag for the thread-exit hook: each registering thread caches its
  /// magazine's index so the exit callback can flush the sub-kStatsFlushMask
  /// stat remainders that would otherwise stay invisible until the
  /// allocator itself is destroyed.
  struct SlabExitTag {};
  using ExitCache = TlsSlotCache<SlabExitTag>;

  Magazine& RegisterThread(std::vector<Magazine*>& registry);
  void* AllocateSlow(Magazine& m);
  void FlushMagazine(Magazine& m);
  void FlushLocalStats(Magazine& m);
  static void FlushStatsTrampoline(void* owner, uint32_t magazine_index);
  /// Carve a new chunk.
  void NewChunkLocked() REQUIRES(latch_);

  const size_t slot_size_;
  const size_t chunk_bytes_;
  const uint32_t allocator_id_;
  StatsCollector* const stats_;
  /// tls_slots owner id for the thread-exit stat flush.
  const uint64_t registry_id_;

  SpinLatch latch_;
  /// Global freelist spine (latched).
  std::vector<void*> spine_ GUARDED_BY(latch_);
  /// All chunks ever carved; freed wholesale at destruction (dtors are
  /// exempt from the analysis).
  std::vector<void*> chunks_ GUARDED_BY(latch_);
  /// Bump region of the newest chunk.
  char* bump_ GUARDED_BY(latch_) = nullptr;
  char* bump_end_ GUARDED_BY(latch_) = nullptr;
  /// Magazines owned by this allocator (one per registered thread).
  std::vector<std::unique_ptr<Magazine>> magazines_ GUARDED_BY(latch_);

  std::atomic<uint64_t> chunks_allocated_{0};
};

}  // namespace mvstore
