#include "mem/slab_allocator.h"

#include <algorithm>
#include <new>

namespace mvstore {

namespace {
/// Allocator ids are process-unique and never reused, so stale entries in a
/// thread's magazine registry can never alias a live allocator.
std::atomic<uint32_t> next_allocator_id{0};
}  // namespace

SlabAllocator::SlabAllocator(size_t slot_size, StatsCollector* stats)
    : slot_size_((std::max(slot_size, sizeof(void*)) + kSlotAlign - 1) &
                 ~(kSlotAlign - 1)),
      chunk_bytes_(std::max(kMinChunkBytes,
                            slot_size_ * static_cast<size_t>(kTransferBatch))),
      allocator_id_(next_allocator_id.fetch_add(1, std::memory_order_relaxed)),
      stats_(stats),
      registry_id_(tls_slots::RegisterOwner(this, &FlushStatsTrampoline)) {}

SlabAllocator::~SlabAllocator() {
  // Before any member dies: no thread-exit callback may touch a
  // half-destroyed allocator.
  tls_slots::UnregisterOwner(registry_id_);
  for (auto& m : magazines_) FlushLocalStats(*m);
  for (void* chunk : chunks_) ::operator delete(chunk);
}

SlabAllocator::Magazine& SlabAllocator::RegisterThread(
    std::vector<Magazine*>& registry) {
  auto owned = std::make_unique<Magazine>();
  Magazine* m = owned.get();
  uint32_t index;
  {
    SpinLatchGuard guard(latch_);
    index = static_cast<uint32_t>(magazines_.size());
    magazines_.push_back(std::move(owned));
  }
  if (registry.size() <= allocator_id_) registry.resize(allocator_id_ + 1);
  registry[allocator_id_] = m;
  // Hook thread exit so the magazine's local stat tallies (bounded by
  // kStatsFlushMask) are folded in when the thread dies, not only when the
  // allocator is destroyed. A failed Store means this thread's slot cache is
  // already torn down; the magazine then flushes at allocator destruction as
  // before.
  ExitCache::Store(registry_id_, index);
  return *m;
}

void SlabAllocator::FlushStatsTrampoline(void* owner, uint32_t magazine_index) {
  auto* self = static_cast<SlabAllocator*>(owner);
  Magazine* m = nullptr;
  {
    SpinLatchGuard guard(self->latch_);
    if (magazine_index < self->magazines_.size()) {
      m = self->magazines_[magazine_index].get();
    }
  }
  // The magazine belongs to the exiting thread; nobody else records into it,
  // so flushing outside the latch is single-writer safe. StatsCollector
  // falls back to its overflow cell during TLS teardown and never re-enters
  // the slot registry, which keeps this callback deadlock-free.
  if (m != nullptr) self->FlushLocalStats(*m);
}

void SlabAllocator::NewChunkLocked() {
  void* chunk = ::operator new(chunk_bytes_);
  chunks_.push_back(chunk);
  bump_ = static_cast<char*>(chunk);
  bump_end_ = bump_ + (chunk_bytes_ / slot_size_) * slot_size_;
  chunks_allocated_.fetch_add(1, std::memory_order_relaxed);
  if (stats_ != nullptr) stats_->Add(Stat::kSlabChunksAllocated);
}

void* SlabAllocator::AllocateSlow(Magazine& m) {
  FlushLocalStats(m);
  if (stats_ != nullptr) stats_->Add(Stat::kSlabMagazineMisses);
  uint32_t filled = 0;
  {
    SpinLatchGuard guard(latch_);
    // Recycled slots first: they are warm and bound memory growth.
    while (filled < kTransferBatch && !spine_.empty()) {
      m.slots[filled++] = spine_.back();
      spine_.pop_back();
    }
    // Top up from the bump region of the newest chunk.
    while (filled < kTransferBatch) {
      if (bump_ == bump_end_) NewChunkLocked();
      m.slots[filled++] = bump_;
      bump_ += slot_size_;
    }
  }
  m.count = filled - 1;
  return m.slots[filled - 1];
}

void SlabAllocator::FlushMagazine(Magazine& m) {
  // The magazine is a stack: hand the cold bottom half to the spine and
  // slide the hot top half down.
  {
    SpinLatchGuard guard(latch_);
    spine_.insert(spine_.end(), m.slots, m.slots + kTransferBatch);
  }
  std::copy(m.slots + kTransferBatch, m.slots + m.count, m.slots);
  m.count -= kTransferBatch;
}

void SlabAllocator::FlushLocalStats(Magazine& m) {
  if (stats_ == nullptr) {
    m.hits = 0;
    m.recycled = 0;
    return;
  }
  if (m.hits > 0) {
    stats_->Add(Stat::kSlabMagazineHits, m.hits);
    m.hits = 0;
  }
  if (m.recycled > 0) {
    stats_->Add(Stat::kSlabSlotsRecycled, m.recycled);
    m.recycled = 0;
  }
}

}  // namespace mvstore
