// Transaction object for the multiversion engine.
//
// Lifecycle (paper Section 2.4, Figure 2):
//   Active -> Preparing -> Committed -> Terminated
//   Active/Preparing -> Aborted -> Terminated
//
// The object carries:
//  * commit-dependency state (Section 2.7): CommitDepCounter, AbortNow,
//    CommitDepSet;
//  * wait-for-dependency state for MV/L (Section 4.2): WaitForCounter,
//    NoMoreWaitFors, WaitingTxnList;
//  * the read/scan/write/bucket-lock sets (Sections 3, 4).
//
// Other transactions dereference this object during visibility checks, so it
// is released (to the engine's transaction pool, or the heap in debug mode)
// only through the epoch manager after removal from the transaction table.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/spin_latch.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/hash_index.h"
#include "storage/ordered_index.h"
#include "storage/version.h"

namespace mvstore {

class Table;

enum class TxnState : uint32_t {
  kActive = 0,
  kPreparing,
  kCommitted,
  kAborted,
  kTerminated,
};

inline const char* TxnStateName(TxnState s) {
  switch (s) {
    case TxnState::kActive:
      return "Active";
    case TxnState::kPreparing:
      return "Preparing";
    case TxnState::kCommitted:
      return "Committed";
    case TxnState::kAborted:
      return "Aborted";
    case TxnState::kTerminated:
      return "Terminated";
  }
  return "Unknown";
}

/// One entry per version read (Section 3: "ReadSet contains pointers to
/// every version read"). `read_locked` records whether an MV/L read lock is
/// held and must be released at end of normal processing; the deadlock
/// detector also uses it to recover implicit wait-for edges (Section 4.4).
struct ReadSetEntry {
  Version* version = nullptr;
  bool read_locked = false;
};

/// One entry per index scan, sufficient to repeat the scan during optimistic
/// validation (Section 3.1 "Start scan"). The residual predicate may be
/// empty (pure equality scan).
struct ScanSetEntry {
  Table* table = nullptr;
  HashIndex* index = nullptr;
  uint64_t key = 0;
  std::function<bool(const void* payload)> residual;  // may be null
};

/// One entry per ordered-index range scan under serializable. The scanned
/// range joins the transaction's read footprint and is rescanned at
/// precommit: a version visible at the end timestamp but not at the begin
/// timestamp is a phantom (the paper's Section 3.2 check, extended from
/// hash buckets to key ranges).
struct RangeScanSetEntry {
  Table* table = nullptr;
  OrderedIndex* index = nullptr;
  uint64_t lo = 0;
  uint64_t hi = 0;
  std::function<bool(const void* payload)> residual;  // may be null
};

/// One entry per update/insert/delete (Section 3: "WriteSet contains
/// pointers to versions updated (old and new), versions deleted (old) and
/// versions inserted (new)").
struct WriteSetEntry {
  Table* table = nullptr;
  Version* old_version = nullptr;  // null for inserts
  Version* new_version = nullptr;  // null for deletes
};

/// One entry per bucket lock held by a serializable MV/L transaction
/// (Section 4: "BucketLockSet").
struct BucketLockEntry {
  HashIndex* index = nullptr;
  HashIndex::Bucket* bucket = nullptr;
};

class Transaction {
 public:
  Transaction(TxnId id, IsolationLevel isolation, bool pessimistic,
              bool read_only)
      : id(id),
        isolation(isolation),
        pessimistic(pessimistic),
        read_only(read_only) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Re-arm a recycled transaction object (mem/object_pool.h) as if freshly
  /// constructed. Set vectors keep their capacity -- that is the point of
  /// pooling. Reuse happens only after epoch reclamation, so no concurrent
  /// reader can hold this pointer: relaxed stores suffice (publication to
  /// other threads goes through the txn table's latch).
  /// NO_THREAD_SAFETY_ANALYSIS: clears latch-guarded sets without their
  /// latches. Safe by protocol — Reset runs on pool recycle, before the
  /// transaction is published in the TxnTable, so no other thread can hold
  /// a pointer to it (the previous incarnation was epoch-retired first).
  void Reset(TxnId new_id, IsolationLevel new_isolation, bool new_pessimistic,
             bool new_read_only) NO_THREAD_SAFETY_ANALYSIS {
    id = new_id;
    isolation = new_isolation;
    pessimistic = new_pessimistic;
    read_only = new_read_only;
    start_ticks = 0;
    state.store(TxnState::kActive, std::memory_order_relaxed);
    begin_ts.store(0, std::memory_order_relaxed);
    end_ts.store(0, std::memory_order_relaxed);
    commit_dep_counter.store(0, std::memory_order_relaxed);
    abort_now.store(false, std::memory_order_relaxed);
    kill_reason.store(AbortReason::kNone, std::memory_order_relaxed);
    commit_dep_set.clear();
    deps_drained = false;
    wait_for_counter.store(0, std::memory_order_relaxed);
    no_more_wait_fors.store(false, std::memory_order_relaxed);
    waiting_txn_list.clear();
    waiting_drained = false;
    blocked.store(false, std::memory_order_relaxed);
    read_set.clear();
    scan_set.clear();
    range_scan_set.clear();
    write_set.clear();
    bucket_lock_set.clear();
    // wake_events deliberately survives: it is a monotonic event counter and
    // no waiter can exist across a recycle.
  }

  /// --- identity / phase ----------------------------------------------------

  TxnId id = 0;
  IsolationLevel isolation = IsolationLevel::kReadCommitted;
  /// True for MV/L transactions; false for MV/O. Mixed workloads are allowed
  /// (Section 4.5).
  bool pessimistic = false;
  /// Hint only: read-only transactions skip write-side bookkeeping.
  bool read_only = false;
  /// obs::NowTicks() at Begin (owning thread only; feeds the txn_lifetime
  /// histogram at commit). 0 when histograms are disabled.
  uint64_t start_ticks = 0;

  std::atomic<TxnState> state{TxnState::kActive};
  std::atomic<Timestamp> begin_ts{0};
  std::atomic<Timestamp> end_ts{0};

  /// --- commit dependencies (Section 2.7) -----------------------------------

  /// Unresolved commit dependencies this transaction still waits on.
  std::atomic<uint32_t> commit_dep_counter{0};
  /// Set by a transaction we depended on that aborted; forces our abort.
  std::atomic<bool> abort_now{false};
  /// Why abort_now was set (kCascading by default; kDeadlock when the
  /// deadlock detector chose us as victim).
  std::atomic<AbortReason> kill_reason{AbortReason::kNone};
  /// Guards commit_dep_set / deps_drained.
  SpinLatch dep_latch;
  /// IDs of transactions that depend on us.
  std::vector<TxnId> commit_dep_set GUARDED_BY(dep_latch);
  /// True once we have resolved (drained) our dependents.
  bool deps_drained GUARDED_BY(dep_latch) = false;

  /// --- wait-for dependencies, MV/L (Section 4.2) ---------------------------

  /// Incoming dependencies: how many events must happen before precommit.
  std::atomic<int32_t> wait_for_counter{0};
  /// Once set, no further incoming dependencies may be added (starvation
  /// guard); attempts to add one abort the would-be dependent.
  std::atomic<bool> no_more_wait_fors{false};
  /// Guards waiting_txn_list and waiting_drained.
  SpinLatch waiting_latch;
  /// Outgoing: IDs of transactions waiting on this transaction to complete
  /// (bucket-lock dependencies, Section 4.2.2).
  std::vector<TxnId> waiting_txn_list GUARDED_BY(waiting_latch);
  /// Set once the list has been drained at precommit/abort; late additions
  /// are rejected (the adder no longer needs the dependency: our scans are
  /// already ordered before its commit).
  bool waiting_drained GUARDED_BY(waiting_latch) = false;
  /// True while parked waiting for wait_for_counter to reach zero; the
  /// deadlock detector only considers blocked transactions (Section 4.4).
  std::atomic<bool> blocked{false};

  /// --- read/scan/write sets ------------------------------------------------

  /// Guards read_set against structural races: the deadlock detector walks
  /// other transactions' read sets concurrently with the owner appending
  /// (Section 4.4 step 3). Owner-side validation iterates it latch-free
  /// after the last append (MVEngine::Validate carries the protocol
  /// comment and a NO_THREAD_SAFETY_ANALYSIS opt-out).
  mutable SpinLatch read_set_latch;
  std::vector<ReadSetEntry> read_set GUARDED_BY(read_set_latch);
  std::vector<ScanSetEntry> scan_set;
  std::vector<RangeScanSetEntry> range_scan_set;
  std::vector<WriteSetEntry> write_set;
  std::vector<BucketLockEntry> bucket_lock_set;

  /// --- wake/wait support ----------------------------------------------------

  /// Bumped on every event that could unblock this transaction (commit dep
  /// resolved, AbortNow set, WaitForCounter decremented). Waiters use
  /// C++20 atomic wait on this word, so "transactions never block during
  /// normal processing but may have to wait before commit" costs no
  /// condition-variable setup on the fast path.
  std::atomic<uint64_t> wake_events{0};

  void NotifyEvent() {
    wake_events.fetch_add(1, std::memory_order_release);
    wake_events.notify_all();
  }

  /// Block until `done()` returns true. `done` must become true after a
  /// NotifyEvent() from another thread (or already be true).
  template <typename Pred>
  void WaitEvent(Pred&& done) {
    while (true) {
      uint64_t observed = wake_events.load(std::memory_order_acquire);
      if (done()) return;
      wake_events.wait(observed, std::memory_order_acquire);
    }
  }

  /// --- set helpers -----------------------------------------------------------

  void AddRead(Version* v, bool locked) {
    SpinLatchGuard guard(read_set_latch);
    read_set.push_back(ReadSetEntry{v, locked});
  }

  void AddScan(Table* table, HashIndex* index, uint64_t key,
               std::function<bool(const void*)> residual) {
    scan_set.push_back(ScanSetEntry{table, index, key, std::move(residual)});
  }

  void AddRangeScan(Table* table, OrderedIndex* index, uint64_t lo,
                    uint64_t hi, std::function<bool(const void*)> residual) {
    range_scan_set.push_back(
        RangeScanSetEntry{table, index, lo, hi, std::move(residual)});
  }

  void AddWrite(Table* table, Version* old_version, Version* new_version) {
    write_set.push_back(WriteSetEntry{table, old_version, new_version});
  }
};

/// End timestamp of a transaction observed in Preparing (or later) state.
///
/// Precommit publishes Preparing *before* drawing the end timestamp (see
/// MVEngine::Commit): that ordering is what lets a reader that still
/// observes Active conclude the writer's end timestamp — whenever it is
/// drawn — will exceed the reader's read time. The cost is this window:
/// a reader can catch state == Preparing with end_ts not yet stored (it is
/// reset to 0 between incarnations). Spin it out; the writer is between
/// two adjacent stores, so the wait is a few instructions unless it gets
/// descheduled.
inline Timestamp AwaitEndTimestamp(const Transaction* txn) {
  Timestamp ts = txn->end_ts.load(std::memory_order_acquire);
  uint32_t spins = 0;
  while (ts == 0) {
    // Yield once the writer looks descheduled: with more threads than
    // cores, spinning here is what keeps it descheduled.
    if (++spins < 64) {
      CpuRelax();
    } else {
      spins = 0;
      std::this_thread::yield();
    }
    ts = txn->end_ts.load(std::memory_order_acquire);
  }
  return ts;
}

}  // namespace mvstore
