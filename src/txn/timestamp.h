// Global timestamp and transaction-ID generation (paper Section 2.4:
// "Timestamps are drawn from a global, monotonically increasing counter").
//
// The paper observes that acquiring a timestamp is "the only critical
// section shared by all transactions" in the MV schemes (Section 6). A bare
// fetch_add makes that critical section a single cacheline that every
// transaction invalidates twice (begin and commit). This implementation
// splits the two roles of the clock:
//
//   * Allocation (Next, commits only): each thread carves a private block of
//     end timestamps off the shared `alloc_` cursor, then draws from the
//     block with plain stores to its own cacheline. The shared cursor is
//     touched once per block, not once per commit.
//   * Observation (Current, begins and Read Committed read times): a plain
//     load of `ceiling_`, the maximum timestamp drawn so far. Begins write
//     nothing shared.
//
// The ceiling is maintained by Next() with a skip-if-lower CAS-max: a drawn
// timestamp below the current maximum (most draws, once several blocks are
// in flight) publishes nothing, so in steady state one thread at a time --
// the holder of the highest block -- writes the ceiling line while everyone
// else only reads it.
//
// Snapshot safety: a begin timestamp B = ceiling must never be overtaken by
// a later-drawn end timestamp T <= B, or a reader could watch a transaction
// commit "into its past" and observe half of its writes. Blocks make this
// nontrivial -- a block carved long ago can hold undrawn values below the
// current ceiling. The guard is in Next(): a draw whose candidate is at or
// below the ceiling abandons the rest of the block and carves a fresh one
// (fresh blocks start above `alloc_` >= ceiling). Abandoned timestamps are
// simply never emitted, which is what makes abandonment safe; ids are
// unique, not dense. The ordering argument, with everything seq_cst: a
// reader that observes a writer still Active did so before the writer's
// Preparing store (MVEngine::Commit publishes Preparing before drawing),
// hence before the writer's ceiling check, hence that check sees
// ceiling >= B and the writer's end timestamp lands strictly above B.
// Readers that instead catch Preparing resolve through AwaitEndTimestamp
// and the commit-dependency machinery exactly as before.
//
// AdvanceTo (recovery) raises the cursor and the ceiling together; the
// Next() ceiling guard then retires every stale outstanding block, so
// post-recovery commits draw strictly above everything already replayed.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/port.h"
#include "common/spin_latch.h"
#include "common/types.h"
#include "storage/lock_word.h"

namespace mvstore {

class TimestampGenerator {
 public:
  /// Upper bound on concurrently registered threads. Slots are recycled on
  /// thread exit; overflow falls back to unbatched draws.
  static constexpr uint32_t kMaxSlots = 256;
  static constexpr uint32_t kDefaultBlockSize = 16;

  explicit TimestampGenerator(uint32_t block_size = kDefaultBlockSize);
  ~TimestampGenerator();

  TimestampGenerator(const TimestampGenerator&) = delete;
  TimestampGenerator& operator=(const TimestampGenerator&) = delete;

  /// Unique end timestamp, strictly greater than every Current() value
  /// observed before the call.
  Timestamp Next();

  /// Current logical time: the maximum drawn timestamp. At or above every
  /// commit that finished before this call, strictly below every timestamp
  /// Next() will return after it. Used for begin timestamps and the Read
  /// Committed read time; writes nothing shared.
  Timestamp Current() const {
    return ceiling_.load(std::memory_order_seq_cst);
  }

  /// Raise the clock to at least `floor`: every later Next() returns a
  /// value > `floor` and every later Current() >= `floor`. Recovery calls
  /// this after replay so post-recovery commits draw end timestamps
  /// strictly greater than every timestamp already in the log — the replay
  /// order of a future recovery depends on it.
  void AdvanceTo(Timestamp floor);

  /// High-water mark of slot indexes ever used (tests).
  uint32_t UsedSlots() const {
    return used_slots_.load(std::memory_order_acquire);
  }

 private:
  struct alignas(kCacheLineSize) Slot {
    /// Next undrawn timestamp of this slot's block; > limit when empty.
    /// Owner-thread only; cross-owner handoff happens-before via the
    /// freelist latch.
    uint64_t next = 1;
    /// Last timestamp of the current block.
    uint64_t limit = 0;
  };

  Slot* MySlot();
  Slot* AcquireSlot();
  void ReleaseSlotIndex(uint32_t index);
  static void ReleaseSlotTrampoline(void* owner, uint32_t slot);
  void PublishDrawn(uint64_t ts);

  const uint32_t block_size_;
  const uint64_t registry_id_;

  /// Block allocation cursor: timestamps (base, base + block] are owned by
  /// whoever fetch_add'ed base. Invariant: alloc_ >= ceiling_.
  alignas(kCacheLineSize) std::atomic<uint64_t> alloc_{0};
  /// Maximum drawn timestamp (see file comment).
  alignas(kCacheLineSize) std::atomic<uint64_t> ceiling_{0};

  alignas(kCacheLineSize) std::atomic<uint32_t> used_slots_{0};
  mutable SpinLatch freelist_latch_;
  std::vector<uint32_t> free_slots_ GUARDED_BY(freelist_latch_);

  std::vector<Slot> slots_;
};

/// Transaction IDs come from their own counter; they live in a disjoint
/// encoding space from timestamps (bit 63 of version words) and must fit
/// the 54-bit MV/L WriteLock field. Threads draw blocks of raw ids and mask
/// each one; on 54-bit wraparound (never reached in practice) the values 0
/// and kNoWriter are skipped. Abandoned block remainders are harmless: ids
/// need to be unique, not dense.
class TxnIdGenerator {
 public:
  static constexpr uint32_t kBlockSize = 64;

  TxnIdGenerator() : TxnIdGenerator(0) {}
  /// `start_raw` pre-positions the raw counter (tests exercise wraparound).
  explicit TxnIdGenerator(uint64_t start_raw);

  TxnId Next() {
    // POD thread-locals: no teardown hazard, and a thread switching between
    // generators just abandons its remainder.
    static thread_local uint64_t cached_instance = 0;
    static thread_local uint64_t next_raw = 0;
    static thread_local uint32_t remaining = 0;
    if (cached_instance != instance_id_) {
      cached_instance = instance_id_;
      remaining = 0;
    }
    while (true) {
      if (remaining == 0) {
        next_raw = counter_.fetch_add(kBlockSize, std::memory_order_relaxed);
        remaining = kBlockSize;
      }
      TxnId id = (++next_raw) & lockword::kWriteLockMask;
      --remaining;
      if (id != 0 && id != lockword::kNoWriter) return id;
    }
  }

 private:
  alignas(kCacheLineSize) std::atomic<uint64_t> counter_;
  const uint64_t instance_id_;
};

}  // namespace mvstore
