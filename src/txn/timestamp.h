// Global timestamp and transaction-ID generation (paper Section 2.4:
// "Timestamps are drawn from a global, monotonically increasing counter").
#pragma once

#include <atomic>

#include "common/port.h"
#include "common/types.h"
#include "storage/lock_word.h"

namespace mvstore {

/// The only critical section shared by all transactions in the MV schemes is
/// acquiring a timestamp: a single atomic increment (paper Section 6).
class TimestampGenerator {
 public:
  /// Unique, monotonically increasing timestamp (begin or end).
  Timestamp Next() { return counter_.fetch_add(1, std::memory_order_acq_rel) + 1; }

  /// Current logical time; used as the read time for Read Committed
  /// ("always read the latest committed version") without consuming a tick.
  Timestamp Current() const { return counter_.load(std::memory_order_acquire); }

  /// Raise the clock to at least `floor` (no-op when already past it).
  /// Recovery calls this after replay so that post-recovery commits draw end
  /// timestamps strictly greater than every timestamp already in the log —
  /// the replay order of a future recovery depends on it.
  void AdvanceTo(Timestamp floor) {
    Timestamp cur = counter_.load(std::memory_order_acquire);
    while (cur < floor &&
           !counter_.compare_exchange_weak(cur, floor,
                                           std::memory_order_acq_rel)) {
    }
  }

 private:
  alignas(kCacheLineSize) std::atomic<Timestamp> counter_{0};
};

/// Transaction IDs come from their own counter; they live in a disjoint
/// encoding space from timestamps (bit 63 of version words) and must fit
/// the 54-bit MV/L WriteLock field. On 54-bit wraparound (never reached in
/// practice) the values 0 and kNoWriter are skipped.
class TxnIdGenerator {
 public:
  TxnId Next() {
    while (true) {
      TxnId id = (counter_.fetch_add(1, std::memory_order_acq_rel) + 1) &
                 lockword::kWriteLockMask;
      if (id != 0 && id != lockword::kNoWriter) return id;
    }
  }

 private:
  alignas(kCacheLineSize) std::atomic<TxnId> counter_{0};
};

}  // namespace mvstore
