#include "txn/timestamp.h"

#include "util/tls_slots.h"

namespace mvstore {
namespace {

struct TimestampSlotTag {};
using TsSlotCache = TlsSlotCache<TimestampSlotTag>;

constexpr uint32_t kNoSlot = ~uint32_t{0};

std::atomic<uint64_t> next_txn_id_instance{1};

}  // namespace

TimestampGenerator::TimestampGenerator(uint32_t block_size)
    : block_size_(block_size == 0 ? 1 : block_size),
      registry_id_(tls_slots::RegisterOwner(this, &ReleaseSlotTrampoline)),
      slots_(kMaxSlots) {}

TimestampGenerator::~TimestampGenerator() {
  // First, before any member dies: no thread-exit callback may touch a
  // half-destroyed generator.
  tls_slots::UnregisterOwner(registry_id_);
}

TimestampGenerator::Slot* TimestampGenerator::MySlot() {
  uint32_t index = TsSlotCache::Lookup(registry_id_);
  if (index != TsSlotCache::kNone) return &slots_[index];
  return AcquireSlot();
}

TimestampGenerator::Slot* TimestampGenerator::AcquireSlot() {
  uint32_t index = kNoSlot;
  {
    SpinLatchGuard guard(freelist_latch_);
    if (!free_slots_.empty()) {
      index = free_slots_.back();
      free_slots_.pop_back();
    } else {
      uint32_t high_water = used_slots_.load(std::memory_order_relaxed);
      if (high_water < kMaxSlots) {
        index = high_water;
        used_slots_.store(high_water + 1, std::memory_order_release);
      }
    }
  }
  if (index == kNoSlot) return nullptr;  // > kMaxSlots concurrent threads
  if (!TsSlotCache::Store(registry_id_, index)) {
    // Thread is tearing down: nothing left to release the slot later.
    ReleaseSlotIndex(index);
    return nullptr;
  }
  return &slots_[index];
}

void TimestampGenerator::ReleaseSlotTrampoline(void* owner, uint32_t slot) {
  static_cast<TimestampGenerator*>(owner)->ReleaseSlotIndex(slot);
}

void TimestampGenerator::ReleaseSlotIndex(uint32_t index) {
  // The partially drawn block stays in the slot: the next owner continues
  // it (uniqueness holds -- the freelist hands a slot to one thread at a
  // time, and the latch orders the handoff).
  SpinLatchGuard guard(freelist_latch_);
  free_slots_.push_back(index);
}

void TimestampGenerator::PublishDrawn(uint64_t ts) {
  // Skip-if-lower CAS-max: only draws above every prior draw write the
  // shared line, i.e. in steady state only the holder of the highest block.
  uint64_t ceiling = ceiling_.load(std::memory_order_seq_cst);
  while (ceiling < ts && !ceiling_.compare_exchange_weak(
                             ceiling, ts, std::memory_order_seq_cst)) {
  }
}

Timestamp TimestampGenerator::Next() {
  Slot* slot = MySlot();
  if (slot == nullptr) {
    // Slotless draw (thread teardown or slot exhaustion): a one-timestamp
    // block, degenerating to the unbatched fetch_add.
    uint64_t t = alloc_.fetch_add(1, std::memory_order_seq_cst) + 1;
    PublishDrawn(t);
    return t;
  }
  // The ceiling guard (snapshot safety; see the header comment): a value at
  // or below an already observed begin timestamp must never be drawn, so a
  // block that fell behind the ceiling is abandoned. Fresh blocks start
  // above alloc_ >= ceiling_. Ordering matters: the ceiling load comes
  // after the caller's Preparing store (both seq_cst), which is what pins
  // T > B for every reader that still saw the caller as Active.
  if (slot->next > slot->limit ||
      slot->next <= ceiling_.load(std::memory_order_seq_cst)) {
    uint64_t base = alloc_.fetch_add(block_size_, std::memory_order_seq_cst);
    slot->next = base + 1;
    slot->limit = base + block_size_;
  }
  uint64_t t = slot->next++;
  PublishDrawn(t);
  return t;
}

void TimestampGenerator::AdvanceTo(Timestamp floor) {
  // Raise the cursor first so no block carved after this call starts below
  // `floor`, then the ceiling so Current() reflects it; stale outstanding
  // blocks retire themselves against the ceiling guard on their next draw.
  uint64_t current = alloc_.load(std::memory_order_seq_cst);
  while (current < floor &&
         !alloc_.compare_exchange_weak(current, floor,
                                       std::memory_order_seq_cst)) {
  }
  PublishDrawn(floor);
}

TxnIdGenerator::TxnIdGenerator(uint64_t start_raw)
    : counter_(start_raw),
      instance_id_(
          next_txn_id_instance.fetch_add(1, std::memory_order_relaxed)) {}

}  // namespace mvstore
