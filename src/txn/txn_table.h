// Transaction table: live transactions by ID.
//
// Visibility checks look up transaction IDs found in version Begin/End words
// (Sections 2.5-2.6: "checking another transaction's state and end
// timestamp"); "not found" means the transaction terminated and finalized
// its timestamps, which callers handle by re-reading the version word.
//
// Lookups return raw pointers; callers must hold an EpochGuard, because a
// terminated transaction's object is epoch-retired after removal.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/port.h"
#include "common/spin_latch.h"
#include "common/timing.h"
#include "txn/timestamp.h"
#include "txn/transaction.h"
#include "util/bits.h"

namespace mvstore {

class TxnTable {
 public:
  static constexpr uint32_t kPartitions = 64;

  void Insert(Transaction* txn) {
    Partition& p = PartitionFor(txn->id);
    SpinLatchGuard guard(p.latch);
    p.map.emplace(txn->id, txn);
  }

  /// Remove after postprocessing. The caller epoch-retires the object.
  void Remove(TxnId id) {
    Partition& p = PartitionFor(id);
    SpinLatchGuard guard(p.latch);
    p.map.erase(id);
  }

  /// nullptr if terminated/not found. Caller must hold an EpochGuard.
  Transaction* Find(TxnId id) {
    Partition& p = PartitionFor(id);
    SpinLatchGuard guard(p.latch);
    auto it = p.map.find(id);
    return it == p.map.end() ? nullptr : it->second;
  }

  /// Visit every live transaction, allocation-free. `fn` runs under the
  /// partition latch: keep it tiny and never call back into this table.
  /// Pointers are valid under the caller's EpochGuard.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& p : partitions_) {
      SpinLatchGuard guard(p.latch);
      for (auto& [id, txn] : p.map) fn(txn);
    }
  }

  /// Snapshot all live transactions into `out` (cleared; capacity reused).
  /// Periodic scanners (deadlock detector) hold a scratch vector so the pass
  /// is allocation-free in steady state.
  void SnapshotInto(std::vector<Transaction*>& out) {
    out.clear();
    ForEach([&](Transaction* txn) { out.push_back(txn); });
  }

  /// Snapshot of all live transactions (allocating convenience form).
  std::vector<Transaction*> Snapshot() {
    std::vector<Transaction*> out;
    SnapshotInto(out);
    return out;
  }

  /// Minimum begin timestamp over live transactions, or `fallback` if none.
  /// Every version with end timestamp below this can never be seen again
  /// (GC watermark, Section 2.3). A transaction published with begin_ts
  /// still 0 (the Begin() window) pins the watermark at 0: nothing may be
  /// reclaimed until its timestamp is known. Allocation-free: this runs on
  /// every watermark refresh.
  Timestamp MinActiveBeginTs(Timestamp fallback) {
    Timestamp min_ts = fallback;
    ForEach([&](Transaction* txn) {
      Timestamp b = txn->begin_ts.load(std::memory_order_acquire);
      if (b < min_ts) min_ts = b;
    });
    return min_ts;
  }

  /// Rate-limited, *monotone* watermark: refreshed from MinActiveBeginTs at
  /// most every ~200us, and never allowed to regress. Regression would be
  /// safe (it only delays reclamation) but real: a transaction caught inside
  /// the Begin() window publishes begin_ts 0 and would yank a cached
  /// watermark of millions back to zero for the next 200us, stalling every
  /// cooperative GC pass. The max-guard is sound because a transaction that
  /// begins after a refresh observed watermark W gets begin_ts >= the clock
  /// at that refresh >= W, so versions dead before W stay invisible to it.
  /// `now` (the no-active-transactions fallback) must be monotone; callers
  /// pass the commit clock.
  Timestamp CachedMinActiveBeginTs(Timestamp now) {
    uint64_t t = NowMicros();
    uint64_t last = watermark_refreshed_us_.load(std::memory_order_relaxed);
    if (t - last > kWatermarkRefreshUs &&
        watermark_refreshed_us_.compare_exchange_strong(
            last, t, std::memory_order_relaxed)) {
      Timestamp exact = MinActiveBeginTs(now);
      Timestamp cached = cached_min_begin_.load(std::memory_order_relaxed);
      while (cached < exact &&
             !cached_min_begin_.compare_exchange_weak(
                 cached, exact, std::memory_order_release)) {
      }
    }
    return cached_min_begin_.load(std::memory_order_acquire);
  }

  uint64_t Size() const {
    uint64_t n = 0;
    for (auto& p : partitions_) {
      SpinLatchGuard guard(p.latch);
      n += p.map.size();
    }
    return n;
  }

 private:
  friend struct TsaNegativeProbe;  // scripts/tsa_fixtures/ (compile-only)

  struct alignas(kCacheLineSize) Partition {
    mutable SpinLatch latch;
    std::unordered_map<TxnId, Transaction*> map GUARDED_BY(latch);
  };

  /// Block-affine partitioning: transaction IDs are drawn in per-thread
  /// blocks of TxnIdGenerator::kBlockSize, so mapping each block to one
  /// partition keeps a thread's Insert/Remove traffic on a partition no
  /// other thread is currently hammering. Lookups of *other* transactions'
  /// IDs (visibility checks) still spread across partitions as blocks do.
  Partition& PartitionFor(TxnId id) {
    return partitions_[(id - 1) / TxnIdGenerator::kBlockSize % kPartitions];
  }

  static constexpr uint64_t kWatermarkRefreshUs = 200;

  mutable std::array<Partition, kPartitions> partitions_;
  std::atomic<uint64_t> watermark_refreshed_us_{0};
  std::atomic<Timestamp> cached_min_begin_{0};
};

}  // namespace mvstore
