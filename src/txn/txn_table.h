// Transaction table: live transactions by ID.
//
// Visibility checks look up transaction IDs found in version Begin/End words
// (Sections 2.5-2.6: "checking another transaction's state and end
// timestamp"); "not found" means the transaction terminated and finalized
// its timestamps, which callers handle by re-reading the version word.
//
// Lookups return raw pointers; callers must hold an EpochGuard, because a
// terminated transaction's object is epoch-retired after removal.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/port.h"
#include "common/spin_latch.h"
#include "txn/transaction.h"
#include "util/bits.h"

namespace mvstore {

class TxnTable {
 public:
  static constexpr uint32_t kPartitions = 64;

  void Insert(Transaction* txn) {
    Partition& p = PartitionFor(txn->id);
    SpinLatchGuard guard(p.latch);
    p.map.emplace(txn->id, txn);
  }

  /// Remove after postprocessing. The caller epoch-retires the object.
  void Remove(TxnId id) {
    Partition& p = PartitionFor(id);
    SpinLatchGuard guard(p.latch);
    p.map.erase(id);
  }

  /// nullptr if terminated/not found. Caller must hold an EpochGuard.
  Transaction* Find(TxnId id) {
    Partition& p = PartitionFor(id);
    SpinLatchGuard guard(p.latch);
    auto it = p.map.find(id);
    return it == p.map.end() ? nullptr : it->second;
  }

  /// Visit every live transaction, allocation-free. `fn` runs under the
  /// partition latch: keep it tiny and never call back into this table.
  /// Pointers are valid under the caller's EpochGuard.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (auto& p : partitions_) {
      SpinLatchGuard guard(p.latch);
      for (auto& [id, txn] : p.map) fn(txn);
    }
  }

  /// Snapshot all live transactions into `out` (cleared; capacity reused).
  /// Periodic scanners (deadlock detector) hold a scratch vector so the pass
  /// is allocation-free in steady state.
  void SnapshotInto(std::vector<Transaction*>& out) {
    out.clear();
    ForEach([&](Transaction* txn) { out.push_back(txn); });
  }

  /// Snapshot of all live transactions (allocating convenience form).
  std::vector<Transaction*> Snapshot() {
    std::vector<Transaction*> out;
    SnapshotInto(out);
    return out;
  }

  /// Minimum begin timestamp over live transactions, or `fallback` if none.
  /// Every version with end timestamp below this can never be seen again
  /// (GC watermark, Section 2.3). A transaction published with begin_ts
  /// still 0 (the Begin() window) pins the watermark at 0: nothing may be
  /// reclaimed until its timestamp is known. Allocation-free: this runs on
  /// every watermark refresh.
  Timestamp MinActiveBeginTs(Timestamp fallback) {
    Timestamp min_ts = fallback;
    ForEach([&](Transaction* txn) {
      Timestamp b = txn->begin_ts.load(std::memory_order_acquire);
      if (b < min_ts) min_ts = b;
    });
    return min_ts;
  }

  uint64_t Size() const {
    uint64_t n = 0;
    for (auto& p : partitions_) {
      SpinLatchGuard guard(p.latch);
      n += p.map.size();
    }
    return n;
  }

 private:
  struct alignas(kCacheLineSize) Partition {
    mutable SpinLatch latch;
    std::unordered_map<TxnId, Transaction*> map;
  };

  Partition& PartitionFor(TxnId id) {
    return partitions_[HashInt64(id) % kPartitions];
  }

  mutable std::array<Partition, kPartitions> partitions_;
};

}  // namespace mvstore
