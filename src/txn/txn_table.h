// Transaction table: live transactions by ID.
//
// Visibility checks look up transaction IDs found in version Begin/End words
// (Sections 2.5-2.6: "checking another transaction's state and end
// timestamp"); "not found" means the transaction terminated and finalized
// its timestamps, which callers handle by re-reading the version word.
//
// Lookups return raw pointers; callers must hold an EpochGuard, because a
// terminated transaction's object is epoch-retired after removal.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/port.h"
#include "common/spin_latch.h"
#include "txn/transaction.h"
#include "util/bits.h"

namespace mvstore {

class TxnTable {
 public:
  static constexpr uint32_t kPartitions = 64;

  void Insert(Transaction* txn) {
    Partition& p = PartitionFor(txn->id);
    SpinLatchGuard guard(p.latch);
    p.map.emplace(txn->id, txn);
  }

  /// Remove after postprocessing. The caller epoch-retires the object.
  void Remove(TxnId id) {
    Partition& p = PartitionFor(id);
    SpinLatchGuard guard(p.latch);
    p.map.erase(id);
  }

  /// nullptr if terminated/not found. Caller must hold an EpochGuard.
  Transaction* Find(TxnId id) {
    Partition& p = PartitionFor(id);
    SpinLatchGuard guard(p.latch);
    auto it = p.map.find(id);
    return it == p.map.end() ? nullptr : it->second;
  }

  /// Snapshot of all live transactions. Used by the deadlock detector and
  /// the GC watermark; pointers are valid under the caller's EpochGuard.
  std::vector<Transaction*> Snapshot() {
    std::vector<Transaction*> out;
    for (auto& p : partitions_) {
      SpinLatchGuard guard(p.latch);
      for (auto& [id, txn] : p.map) out.push_back(txn);
    }
    return out;
  }

  /// Minimum begin timestamp over live transactions, or `fallback` if none.
  /// Every version with end timestamp below this can never be seen again
  /// (GC watermark, Section 2.3). A transaction published with begin_ts
  /// still 0 (the Begin() window) pins the watermark at 0: nothing may be
  /// reclaimed until its timestamp is known.
  Timestamp MinActiveBeginTs(Timestamp fallback) {
    Timestamp min_ts = fallback;
    for (auto& p : partitions_) {
      SpinLatchGuard guard(p.latch);
      for (auto& [id, txn] : p.map) {
        Timestamp b = txn->begin_ts.load(std::memory_order_acquire);
        if (b < min_ts) min_ts = b;
      }
    }
    return min_ts;
  }

  uint64_t Size() const {
    uint64_t n = 0;
    for (auto& p : partitions_) {
      SpinLatchGuard guard(p.latch);
      n += p.map.size();
    }
    return n;
  }

 private:
  struct alignas(kCacheLineSize) Partition {
    mutable SpinLatch latch;
    std::unordered_map<TxnId, Transaction*> map;
  };

  Partition& PartitionFor(TxnId id) {
    return partitions_[HashInt64(id) % kPartitions];
  }

  mutable std::array<Partition, kPartitions> partitions_;
};

}  // namespace mvstore
