// Commit dependencies: register-and-report (paper Section 2.7).
//
// T1 acquires a commit dependency on T2 by incrementing its own
// CommitDepCounter and adding its ID to T2's CommitDepSet. When T2 commits
// it decrements each dependent's counter; if T2 aborts it sets their
// AbortNow flags (cascading abort).
#pragma once

#include "txn/transaction.h"
#include "txn/txn_table.h"

namespace mvstore {

/// Outcome of a commit-dependency registration attempt.
enum class CommitDepOutcome {
  kRegistered,          ///< dependency taken; provider will report
  kProviderCommitted,   ///< provider already committed; proceed without one
  kProviderAborted,     ///< provider already aborted; its versions are garbage
  kProviderTerminated,  ///< provider gone; reread the version word for truth
};

/// Register a commit dependency of `dependent` on `provider`.
///
/// Handles the races against provider resolution: if the provider already
/// committed there is nothing to wait for; if it already aborted its
/// versions are garbage. A provider observed Terminated is ambiguous — the
/// caller read the transaction ID out of a version word *before* the
/// provider finalized it, so commit and abort are both possible. By the
/// time the state reads Terminated the provider has finalized that word
/// (Postprocess happens-before the Terminated store), so the caller must
/// reread the version word, which now holds the truth. Treating Terminated
/// as committed here is wrong: an aborted-then-terminated provider would
/// make a speculative reader consume a garbage version with no dependency
/// recorded (a torn read no one ever reports).
inline CommitDepOutcome RegisterCommitDependency(Transaction* dependent,
                                                 Transaction* provider) {
  // Count first so the provider's drain can never miss a registered-but-
  // uncounted dependency.
  dependent->commit_dep_counter.fetch_add(1, std::memory_order_acq_rel);
  {
    SpinLatchGuard guard(provider->dep_latch);
    TxnState s = provider->state.load(std::memory_order_acquire);
    if ((s == TxnState::kPreparing || s == TxnState::kActive) &&
        !provider->deps_drained) {
      provider->commit_dep_set.push_back(dependent->id);
      return CommitDepOutcome::kRegistered;
    }
    // Provider already resolved; undo the provisional count.
    dependent->commit_dep_counter.fetch_sub(1, std::memory_order_acq_rel);
    if (s == TxnState::kCommitted) return CommitDepOutcome::kProviderCommitted;
    if (s == TxnState::kAborted) return CommitDepOutcome::kProviderAborted;
    return CommitDepOutcome::kProviderTerminated;
  }
}

/// Resolve (drain) the dependents of `provider` after it reached
/// Committed or Aborted state. `committed` selects report flavor.
inline void ResolveCommitDependencies(Transaction* provider, bool committed,
                                      TxnTable& txn_table) {
  std::vector<TxnId> dependents;
  {
    SpinLatchGuard guard(provider->dep_latch);
    provider->deps_drained = true;
    dependents.swap(provider->commit_dep_set);
  }
  for (TxnId dep_id : dependents) {
    // "If a dependent transaction is not found, this means that it has
    // already aborted" -- nothing to do.
    Transaction* dep = txn_table.Find(dep_id);
    if (dep == nullptr || dep->id != dep_id) continue;
    if (committed) {
      dep->commit_dep_counter.fetch_sub(1, std::memory_order_acq_rel);
    } else {
      dep->abort_now.store(true, std::memory_order_release);
    }
    dep->NotifyEvent();
  }
}

}  // namespace mvstore
