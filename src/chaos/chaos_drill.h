// Chaos drill: the acknowledged-commit survival harness.
//
// One drill runs `cycles` crash/recover rounds against a single durable
// database directory. Each round forks a child process that arms a CRASH
// action at a randomly chosen durability failpoint (log append, fsync,
// rotation, checkpoint write/publish — see docs/RELIABILITY.md for the site
// catalog), then hammers the database with concurrent read-modify-write
// transactions in LogMode::kSync with fsync enabled. Every transaction the
// database acknowledges as committed is recorded — AFTER Commit() returns
// OK — in an append-only ack file via raw write(2), so the ack survives the
// child dying with std::_Exit (which is exactly how the crash failpoints
// kill it: no stdio flush, no destructors, like a real crash).
//
// After the child dies (or finishes), the parent recovers the database with
// Database::Open and checks the contract this whole subsystem exists to
// keep: every acknowledged commit is still there. Concretely, for every
// acked (key, version): the key exists, its recovered version is >= the
// acked version (later acked commits may have overwritten it), and the
// recovered row's checksum is internally consistent. The database may hold
// MORE than was acked (a commit that became durable just before the crash
// ack could be written) — that is correct; losing an acked commit is the
// bug.
//
// POSIX-only (fork/waitpid); RunDrill returns kUnavailable elsewhere.
// Deterministic per (seed, scheme): site choice, hit counts, and workload
// keys all derive from DrillOptions::seed.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/types.h"

namespace mvstore {
namespace chaos {

struct DrillOptions {
  /// Scratch directory for the log, checkpoint, and ack file. OWNED by the
  /// drill: RunDrill deletes and recreates it.
  std::string dir;
  Scheme scheme = Scheme::kMultiVersionOptimistic;
  /// Drives everything random: crash-site choice, hit counts, workload keys.
  uint64_t seed = 1;
  /// Crash/recover rounds run back-to-back on the same database directory.
  uint32_t cycles = 3;
  /// Per-thread transaction budget per round; the armed crash usually kills
  /// the child long before it is exhausted (a child that survives the
  /// budget exits cleanly, which the drill also accepts).
  uint32_t txns_per_cycle = 1500;
  uint32_t writer_threads = 2;
  /// Log-shipping failover mode: the child additionally hosts a sync
  /// ReplShipper on the leader and a live in-process Replica following it
  /// (mirror under dir/follower). The crash menu gains the repl failpoints
  /// (repl.ship.send, repl.tail.recv) so the child also dies mid-segment-
  /// ship and mid-tail-batch. After each crash the parent still verifies
  /// the leader, and — whenever the follower had attached before the crash
  /// (an attach marker file survives the kill) — verifies every
  /// acknowledged commit against the FOLLOWER's recovered mirror too, plus
  /// checks the mirrored segments are a byte prefix of the leader's.
  bool repl = false;
};

struct DrillReport {
  uint32_t cycles_run = 0;
  /// Children that died at the armed failpoint (exit code
  /// failpoint::kCrashExitCode).
  uint32_t crashes = 0;
  /// Children that exhausted their transaction budget before the crash
  /// fired.
  uint32_t clean_exits = 0;
  /// Acknowledged commits verified present after the final recovery.
  uint64_t acked_commits = 0;
  /// repl mode only: cycles whose follower had attached before the kill —
  /// i.e. cycles where the acked set was also proven present on the
  /// follower's mirror.
  uint32_t follower_verified = 0;
  /// Empty on success; otherwise the first violated invariant, with the
  /// armed site / cycle / seed baked in for reproduction.
  std::string failure;
};

/// Run one drill. The returned Status covers harness-level problems only
/// (unsupported platform, fork failure, unusable directory); a correctness
/// violation — an acknowledged commit missing after recovery — is reported
/// in report->failure so the caller can print it verbatim.
Status RunDrill(const DrillOptions& options, DrillReport* report);

}  // namespace chaos
}  // namespace mvstore
