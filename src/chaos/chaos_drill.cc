#include "chaos/chaos_drill.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/failpoint.h"
#include "core/database.h"
#include "log/log_segment.h"
#include "repl/replica.h"
#include "repl/shipper.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace mvstore {
namespace chaos {

#if !defined(_WIN32)

namespace {

// Workload row: one counter per key, carrying a checksum over (key,
// version) so recovery corruption — not just loss — is detectable.
struct Row {
  uint64_t key;
  uint64_t version;
  uint64_t checksum;
};

// One acknowledged commit, as recorded in the ack file (fixed 24-byte
// little-endian record; a torn trailing record is ignored on load).
struct AckRec {
  uint64_t key;
  uint64_t version;
  uint64_t checksum;
};

constexpr uint64_t kKeys = 512;
constexpr TableId kTable = 0;

uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t Lcg(uint64_t x) {
  return x * 6364136223846793005ull + 1442695040888963407ull;
}

uint64_t RowChecksum(uint64_t key, uint64_t version) {
  return SplitMix(key ^ SplitMix(version));
}

uint64_t RowKey(const void* payload) {
  return static_cast<const Row*>(payload)->key;
}

void DefineSchema(Database& db) {
  TableDef def;
  def.name = "chaos";
  def.payload_size = sizeof(Row);
  IndexDef primary;
  primary.extractor = RowKey;
  primary.bucket_count = 4 * kKeys;
  primary.unique = true;
  def.indexes.push_back(primary);
  db.CreateTable(std::move(def));
}

DatabaseOptions MakeDbOptions(const DrillOptions& options) {
  DatabaseOptions db;
  db.scheme = options.scheme;
  // The strictest durability configuration: synchronous commit, fsync per
  // flushed batch, small segments (so rotation and checkpoint-driven
  // truncation actually happen mid-drill), and a real checkpoint path.
  db.log_mode = LogMode::kSync;
  db.log_path = options.dir + "/wal";
  db.fsync_log = true;
  db.log_segment_bytes = 32 * 1024;
  db.checkpoint_path = options.dir + "/ckpt";
  db.recovery_threads = 2;
  db.group_commit_us = 200;
  return db;
}

/// The follower's mirror lives under dir/follower with the same durability
/// configuration as the leader.
DatabaseOptions MakeFollowerDbOptions(const DrillOptions& options) {
  DatabaseOptions db = MakeDbOptions(options);
  db.log_path = options.dir + "/follower/wal";
  db.checkpoint_path = options.dir + "/follower/ckpt";
  return db;
}

std::string MarkerPath(const DrillOptions& options) {
  return options.dir + "/attached";
}

/// Raw write(2) + close, like the ack file: the marker must survive
/// std::_Exit. Its existence means "the follower attached to the live
/// stream at least once this cycle" — from the moment of attach the
/// follower holds the leader's full durable prefix, and every later
/// acknowledged commit blocked on the follower's ack, so marker-present
/// implies the whole acked set is follower-durable.
void WriteMarker(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  [[maybe_unused]] ssize_t n = ::write(fd, "1", 1);
  ::close(fd);
}

// The crash menu. Hit counts are drawn from [min_hit, min_hit + span) so
// the child dies at a different depth every cycle. log.append.partial is an
// ERROR action because the site itself tears the record and exits — the
// others host a plain CRASH action inside Evaluate.
struct CrashSite {
  const char* site;
  failpoint::ActionKind kind;
  uint32_t min_hit;
  uint32_t span;
};

constexpr CrashSite kCrashSites[] = {
    {"log.append.write", failpoint::ActionKind::kCrash, 4, 120},
    {"log.append.partial", failpoint::ActionKind::kError, 4, 120},
    {"log.append.sync", failpoint::ActionKind::kCrash, 2, 40},
    {"log.fsync", failpoint::ActionKind::kCrash, 1, 24},
    {"log.rotate", failpoint::ActionKind::kCrash, 1, 6},
    {"checkpoint.write", failpoint::ActionKind::kCrash, 1, 3},
    {"checkpoint.rename", failpoint::ActionKind::kCrash, 1, 3},
    // repl-mode extras (the parent only draws these when options.repl):
    // die mid-segment-ship / mid-tail-send on the leader, and mid-tail-batch
    // on the follower. The child hosts both, so the kill takes the pair
    // down together — exactly the whole-box failure a failover drill models.
    {"repl.ship.send", failpoint::ActionKind::kCrash, 1, 60},
    {"repl.tail.recv", failpoint::ActionKind::kCrash, 1, 60},
};
constexpr size_t kNumCrashSites = sizeof(kCrashSites) / sizeof(kCrashSites[0]);
/// Sites [0, kNumBaseSites) apply always; the tail is repl-mode only.
constexpr size_t kNumBaseSites = kNumCrashSites - 2;

// Record an acknowledged commit. Raw write(2) + O_APPEND: no stdio buffer
// to lose when the process exits via std::_Exit, and the mutex keeps
// records from interleaving across writer threads.
void WriteAck(int fd, std::mutex* mu, uint64_t key, uint64_t version) {
  AckRec rec{key, version, RowChecksum(key, version)};
  uint8_t buf[sizeof(AckRec)];
  std::memcpy(buf, &rec, sizeof(rec));
  std::lock_guard<std::mutex> lock(*mu);
  size_t done = 0;
  while (done < sizeof(buf)) {
    ssize_t w = ::write(fd, buf + done, sizeof(buf) - done);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;  // ack dropped: safe direction (DB may hold more than acked)
    }
    done += static_cast<size_t>(w);
  }
}

void Worker(Database* db, int ack_fd, std::mutex* ack_mu, uint64_t seed,
            uint32_t txns, bool checkpointer, std::atomic<bool>* failed) {
  uint64_t rng = seed != 0 ? seed : 1;
  for (uint32_t i = 0; i < txns; ++i) {
    rng = Lcg(rng);
    const uint64_t key = 1 + ((rng >> 33) % kKeys);
    uint64_t version = 0;
    Status s;
    for (int attempt = 0; attempt < 64; ++attempt) {
      s = db->RunTransaction(
          IsolationLevel::kReadCommitted, [&](Txn* txn) {
            Status us = db->Update(txn, kTable, 0, key, [&](void* p) {
              Row* r = static_cast<Row*>(p);
              r->version += 1;
              version = r->version;
              r->checksum = RowChecksum(key, version);
            });
            if (us.IsNotFound()) {
              version = 1;
              Row r{key, version, RowChecksum(key, version)};
              us = db->Insert(txn, kTable, &r);
            }
            return us;
          });
      // Two threads can race the first insert of a key; the loser retries
      // and finds the row. Everything else is final.
      if (!s.IsAlreadyExists()) break;
    }
    if (!s.ok()) {
      failed->store(true, std::memory_order_relaxed);
      return;
    }
    WriteAck(ack_fd, ack_mu, key, version);
    // Exercise rotation + checkpoint publication + segment truncation under
    // fire; a crash armed at a checkpoint site needs a checkpoint to hit.
    if (checkpointer && (i % 300) == 299) (void)db->Checkpoint();
  }
}

/// Open (or, when the local mirror is stale/unusable, wipe and re-seed) the
/// in-child follower. Re-seeding deletes the attach marker first so a
/// marker can only ever refer to the follower state that survives.
std::unique_ptr<Replica> OpenChildReplica(const DrillOptions& options,
                                          const DatabaseOptions& follower_db,
                                          uint16_t leader_port,
                                          bool allow_wipe) {
  ReplicaOptions ropts;
  ropts.db = follower_db;
  ropts.define_schema = DefineSchema;
  ropts.leader_port = leader_port;
  ropts.reconnect_ms = 20;
  const std::string marker = MarkerPath(options);
  ropts.on_first_attach = [marker] { WriteMarker(marker); };
  Status st;
  auto replica = Replica::Open(ropts, &st);
  if (replica == nullptr && allow_wipe) {
    // Local recovery refused the mirror (e.g. a bootstrap died between
    // checkpoint rename and segment pull, leaving a coverage gap): re-seed
    // from scratch, which exercises the checkpoint-ship bootstrap.
    std::error_code ec;
    std::filesystem::remove(marker, ec);
    std::filesystem::remove_all(options.dir + "/follower", ec);
    std::filesystem::create_directories(options.dir + "/follower", ec);
    replica = Replica::Open(ropts, &st);
  }
  return replica;
}

[[noreturn]] void RunChild(const DrillOptions& options,
                           const DatabaseOptions& db_options,
                           const CrashSite& site, uint32_t hit,
                           uint64_t seed) {
  failpoint::Action action;
  action.kind = site.kind;
  action.hit = hit;
  failpoint::Arm(site.site, action);
  Status open_status;
  auto db = Database::Open(db_options, DefineSchema, &open_status);
  if (db == nullptr) std::_Exit(3);

  std::unique_ptr<ReplShipper> shipper;
  std::unique_ptr<Replica> replica;
  if (options.repl) {
    ShipperOptions sopts;
    // Never drop a laggard inside the drill: the zero-acked-loss claim is
    // only provable while every ack is follower-coupled.
    sopts.ack_timeout_ms = 120000;
    shipper = std::make_unique<ReplShipper>(*db, sopts);
    if (!shipper->Start().ok()) std::_Exit(6);
    replica = OpenChildReplica(options, MakeFollowerDbOptions(options),
                               shipper->port(), /*allow_wipe=*/true);
    if (replica == nullptr) std::_Exit(7);
  }

  int ack_fd = ::open((options.dir + "/acks.bin").c_str(),
                      O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) std::_Exit(4);
  std::mutex ack_mu;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(options.writer_threads);
  for (uint32_t t = 0; t < options.writer_threads; ++t) {
    threads.emplace_back(Worker, db.get(), ack_fd, &ack_mu,
                         SplitMix(seed ^ (t + 1)), options.txns_per_cycle,
                         t == 0, &failed);
  }
  // Monitor: a follower parked in failed() (e.g. the leader truncated past
  // its position before it could attach) is wiped and re-seeded fresh
  // mid-run — which exercises the checkpoint-ship bootstrap under load.
  std::atomic<bool> workers_done{false};
  std::thread monitor;
  if (replica != nullptr) {
    monitor = std::thread([&] {
      while (!workers_done.load(std::memory_order_acquire)) {
        if (replica != nullptr && replica->failed()) {
          replica.reset();
          std::error_code ec;
          std::filesystem::remove(MarkerPath(options), ec);
          std::filesystem::remove_all(options.dir + "/follower", ec);
          std::filesystem::create_directories(options.dir + "/follower", ec);
          replica = OpenChildReplica(options, MakeFollowerDbOptions(options),
                                     shipper->port(), /*allow_wipe=*/false);
          if (replica == nullptr) return;  // leader-only for the rest
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }
  for (auto& th : threads) th.join();
  workers_done.store(true, std::memory_order_release);
  if (monitor.joinable()) monitor.join();
  ::close(ack_fd);
  replica.reset();  // close the stream before the shipper goes down
  shipper.reset();
  db.reset();  // clean shutdown: join background threads, flush the log
  std::_Exit(failed.load() ? 5 : 0);
}

/// Divergence check on the raw files, before any recovery touches them:
/// every mirrored segment the leader also still has must be a byte prefix
/// of (or identical to) the leader's — the follower may be shorter (bytes
/// it had not received when the box died) but never different.
bool MirrorIsPrefix(const std::string& leader_prefix,
                    const std::string& follower_prefix, std::string* failure) {
  auto read_file = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  };
  const std::vector<logseg::SegmentFile> leader =
      logseg::ListSegments(leader_prefix);
  char msg[160];
  for (const logseg::SegmentFile& f :
       logseg::ListSegments(follower_prefix)) {
    const logseg::SegmentFile* match = nullptr;
    for (const logseg::SegmentFile& l : leader) {
      if (l.seq == f.seq) {
        match = &l;
        break;
      }
    }
    // The leader may have truncated (checkpoint) a segment the follower
    // still holds; the follower never holds a segment the leader has not
    // yet created.
    if (match == nullptr) continue;
    const std::vector<char> fb = read_file(f.path);
    const std::vector<char> lb = read_file(match->path);
    if (fb.size() > lb.size() ||
        std::memcmp(fb.data(), lb.data(), fb.size()) != 0) {
      std::snprintf(msg, sizeof(msg),
                    "follower segment %llu diverged from leader "
                    "(follower %zu bytes, leader %zu bytes)",
                    static_cast<unsigned long long>(f.seq), fb.size(),
                    lb.size());
      *failure = msg;
      return false;
    }
  }
  return true;
}

bool LoadAcks(const std::string& path, std::vector<AckRec>* out) {
  out->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return true;  // no acks yet (first cycle died early)
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  const size_t count = bytes.size() / sizeof(AckRec);  // drop any torn tail
  out->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    AckRec rec;
    std::memcpy(&rec, bytes.data() + i * sizeof(AckRec), sizeof(AckRec));
    out->push_back(rec);
  }
  return true;
}

// Recover the database and check every acknowledged commit against it.
// Returns true when the contract held; otherwise fills *failure.
bool VerifyAcks(const DatabaseOptions& db_options, const std::string& ack_path,
                uint64_t* acked_commits, std::string* failure) {
  std::vector<AckRec> acks;
  LoadAcks(ack_path, &acks);
  *acked_commits = acks.size();

  Status open_status;
  auto db = Database::Open(db_options, DefineSchema, &open_status);
  if (db == nullptr) {
    *failure = "recovery failed: " + std::string(open_status.ToString());
    return false;
  }
  std::unordered_map<uint64_t, Row> rows;
  Txn* txn = db->Begin(IsolationLevel::kReadCommitted, /*read_only=*/true);
  Status s = db->ScanTable(txn, kTable, [&](const void* p) {
    const Row* r = static_cast<const Row*>(p);
    rows[r->key] = *r;
    return true;
  });
  if (s.ok()) s = db->Commit(txn);
  if (!s.ok()) {
    *failure = "post-recovery scan failed: " + std::string(s.ToString());
    return false;
  }
  char msg[160];
  for (const AckRec& ack : acks) {
    if (ack.checksum != RowChecksum(ack.key, ack.version)) {
      std::snprintf(msg, sizeof(msg), "corrupt ack record for key %llu",
                    static_cast<unsigned long long>(ack.key));
      *failure = msg;
      return false;
    }
    auto it = rows.find(ack.key);
    if (it == rows.end()) {
      std::snprintf(msg, sizeof(msg),
                    "acked key %llu (version %llu) missing after recovery",
                    static_cast<unsigned long long>(ack.key),
                    static_cast<unsigned long long>(ack.version));
      *failure = msg;
      return false;
    }
    if (it->second.version < ack.version) {
      std::snprintf(
          msg, sizeof(msg),
          "acked commit lost: key %llu recovered at version %llu < acked %llu",
          static_cast<unsigned long long>(ack.key),
          static_cast<unsigned long long>(it->second.version),
          static_cast<unsigned long long>(ack.version));
      *failure = msg;
      return false;
    }
    if (it->second.checksum !=
        RowChecksum(it->second.key, it->second.version)) {
      std::snprintf(msg, sizeof(msg),
                    "recovered row for key %llu fails its checksum",
                    static_cast<unsigned long long>(ack.key));
      *failure = msg;
      return false;
    }
  }
  return true;
}

}  // namespace

Status RunDrill(const DrillOptions& options, DrillReport* report) {
  *report = DrillReport{};
  if (options.dir.empty()) return Status::InvalidArgument();
  std::error_code ec;
  std::filesystem::remove_all(options.dir, ec);
  std::filesystem::create_directories(options.dir, ec);
  if (ec) return Status::Internal();

  const DatabaseOptions db_options = MakeDbOptions(options);
  const DatabaseOptions follower_db = MakeFollowerDbOptions(options);
  if (options.repl) {
    std::filesystem::create_directories(options.dir + "/follower", ec);
    if (ec) return Status::Internal();
  }
  const std::string ack_path = options.dir + "/acks.bin";
  uint64_t rng = SplitMix(options.seed ^ (static_cast<uint64_t>(options.scheme)
                                          << 32));
  char msg[160];
  const size_t num_sites = options.repl ? kNumCrashSites : kNumBaseSites;
  for (uint32_t cycle = 0; cycle < options.cycles; ++cycle) {
    rng = Lcg(rng);
    const CrashSite& site = kCrashSites[(rng >> 33) % num_sites];
    rng = Lcg(rng);
    const uint32_t hit = site.min_hit + (rng >> 33) % site.span;
    if (options.repl) {
      // The marker means "THIS cycle's follower attached"; clear the
      // previous cycle's before the child runs.
      std::filesystem::remove(MarkerPath(options), ec);
    }

    pid_t pid = ::fork();
    if (pid < 0) return Status::Internal();
    if (pid == 0) {
      RunChild(options, db_options, site, hit, SplitMix(rng ^ cycle));
    }
    int wstatus = 0;
    if (::waitpid(pid, &wstatus, 0) != pid) return Status::Internal();
    if (WIFEXITED(wstatus) &&
        WEXITSTATUS(wstatus) == failpoint::kCrashExitCode) {
      ++report->crashes;
    } else if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
      ++report->clean_exits;
    } else {
      std::snprintf(msg, sizeof(msg),
                    "child died unexpectedly (wstatus %d) at %s@%u, cycle %u, "
                    "seed %llu",
                    wstatus, site.site, hit, cycle,
                    static_cast<unsigned long long>(options.seed));
      report->failure = msg;
      return Status::OK();
    }

    uint64_t acked = 0;
    std::string failure;
    const bool attached =
        options.repl && std::filesystem::exists(MarkerPath(options));
    // Divergence check first, on the raw files — recovery truncates torn
    // tails and would mask a real byte-level disagreement.
    if (attached &&
        !MirrorIsPrefix(db_options.log_path, follower_db.log_path,
                        &failure)) {
      std::snprintf(msg, sizeof(msg), " [site %s@%u, cycle %u, seed %llu]",
                    site.site, hit, cycle,
                    static_cast<unsigned long long>(options.seed));
      report->failure = failure + msg;
      return Status::OK();
    }
    if (!VerifyAcks(db_options, ack_path, &acked, &failure)) {
      std::snprintf(msg, sizeof(msg), " [site %s@%u, cycle %u, seed %llu]",
                    site.site, hit, cycle,
                    static_cast<unsigned long long>(options.seed));
      report->failure = failure + msg;
      return Status::OK();
    }
    if (attached) {
      // The failover claim: the dead leader's acked set is fully present
      // on the follower's recovered mirror — a promote here loses nothing.
      uint64_t f_acked = 0;
      if (!VerifyAcks(follower_db, ack_path, &f_acked, &failure)) {
        std::snprintf(msg, sizeof(msg),
                      " [on FOLLOWER; site %s@%u, cycle %u, seed %llu]",
                      site.site, hit, cycle,
                      static_cast<unsigned long long>(options.seed));
        report->failure = failure + msg;
        return Status::OK();
      }
      ++report->follower_verified;
    }
    report->acked_commits = acked;
    ++report->cycles_run;
  }
  return Status::OK();
}

#else  // _WIN32

Status RunDrill(const DrillOptions& options, DrillReport* report) {
  (void)options;
  *report = DrillReport{};
  report->failure = "chaos drills require fork(); unsupported platform";
  return Status::Unavailable();
}

#endif

}  // namespace chaos
}  // namespace mvstore
