#include "util/tls_slots.h"

#include "common/mutex.h"

namespace mvstore {
namespace tls_slots {
namespace {

struct Owner {
  void* owner;
  ReleaseFn release;
};

struct Registry {
  Mutex mu;
  std::unordered_map<uint64_t, Owner> owners GUARDED_BY(mu);
  uint64_t next_id GUARDED_BY(mu) = 1;
};

Registry& GetRegistry() {
  // Leaked on purpose: thread-local destructors at process exit must still
  // find a live registry.
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

uint64_t RegisterOwner(void* owner, ReleaseFn release) {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  uint64_t id = r.next_id++;
  r.owners.emplace(id, Owner{owner, release});
  return id;
}

void UnregisterOwner(uint64_t id) {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  r.owners.erase(id);
}

void ReleaseSlot(uint64_t id, uint32_t slot) {
  Registry& r = GetRegistry();
  // The callback runs under the mutex: UnregisterOwner (first line of every
  // owner destructor) cannot complete while a release is in flight, so the
  // owner outlives the callback.
  MutexLock lock(r.mu);
  auto it = r.owners.find(id);
  if (it == r.owners.end()) return;
  it->second.release(it->second.owner, slot);
}

}  // namespace tls_slots
}  // namespace mvstore
