// Small bit-manipulation helpers.
#pragma once

#include <cstdint>

namespace mvstore {

/// Smallest power of two >= n (n >= 1).
inline uint64_t NextPowerOfTwo(uint64_t n) {
  if (n <= 1) return 1;
  return uint64_t{1} << (64 - __builtin_clzll(n - 1));
}

inline bool IsPowerOfTwo(uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Finalizer from MurmurHash3: cheap, well-mixed 64-bit hash for integer
/// keys. Used by hash indexes and lock-table partitioning.
inline uint64_t HashInt64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDull;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ull;
  k ^= k >> 33;
  return k;
}

}  // namespace mvstore
