#include "util/epoch.h"

#include <cassert>
#include <unordered_map>

namespace mvstore {

namespace {
std::atomic<uint64_t> next_instance_id{1};
}  // namespace

EpochManager::EpochManager()
    : instance_id_(next_instance_id.fetch_add(1, std::memory_order_relaxed)),
      slots_(kMaxThreads) {}

EpochManager::~EpochManager() { DrainAll(); }

uint32_t EpochManager::SlotIndex() {
  // Each (thread, manager) pair needs its own slot. The cache is keyed by
  // the manager's instance id (not its address: a new manager can be
  // allocated where a destroyed one lived, and must not inherit its slot).
  thread_local std::unordered_map<uint64_t, uint32_t> cache;
  auto it = cache.find(instance_id_);
  if (it != cache.end()) return it->second;
  uint32_t slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
  assert(slot < kMaxThreads && "too many threads for EpochManager");
  cache.emplace(instance_id_, slot);
  return slot;
}

void EpochManager::Enter() {
  ThreadSlot& slot = slots_[SlotIndex()];
  uint32_t nesting = slot.nesting.load(std::memory_order_relaxed);
  if (nesting == 0) {
    // seq_cst so the epoch publication is ordered before subsequent loads of
    // shared pointers; pairs with the fence in MinActiveEpoch readers.
    slot.epoch.store(global_epoch_.load(std::memory_order_acquire),
                     std::memory_order_seq_cst);
  }
  slot.nesting.store(nesting + 1, std::memory_order_relaxed);
}

void EpochManager::Exit() {
  ThreadSlot& slot = slots_[SlotIndex()];
  uint32_t nesting = slot.nesting.load(std::memory_order_relaxed);
  assert(nesting > 0);
  slot.nesting.store(nesting - 1, std::memory_order_relaxed);
  if (nesting == 1) {
    slot.epoch.store(kIdle, std::memory_order_release);
  }
}

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min_epoch = global_epoch_.load(std::memory_order_seq_cst);
  uint32_t used = next_slot_.load(std::memory_order_acquire);
  if (used > kMaxThreads) used = kMaxThreads;
  for (uint32_t i = 0; i < used; ++i) {
    uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (e != kIdle && e < min_epoch) min_epoch = e;
  }
  return min_epoch;
}

void EpochManager::Retire(void* object, Deleter deleter, void* arg) {
  uint64_t epoch = global_epoch_.load(std::memory_order_acquire);
  {
    SpinLatchGuard guard(retired_latch_);
    retired_.push_back(Retired{object, deleter, arg, epoch});
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  if (retire_ticker_.fetch_add(1, std::memory_order_relaxed) %
          kAdvanceInterval ==
      kAdvanceInterval - 1) {
    TryAdvanceAndReclaim();
  }
}

void EpochManager::TryAdvanceAndReclaim() {
  global_epoch_.fetch_add(1, std::memory_order_acq_rel);
  uint64_t min_active = MinActiveEpoch();

  // Pull out everything freeable under the latch, free outside it.
  std::vector<Retired> to_free;
  {
    SpinLatchGuard guard(retired_latch_);
    size_t kept = 0;
    for (size_t i = 0; i < retired_.size(); ++i) {
      if (retired_[i].epoch < min_active) {
        to_free.push_back(retired_[i]);
      } else {
        retired_[kept++] = retired_[i];
      }
    }
    retired_.resize(kept);
  }
  for (const Retired& r : to_free) r.deleter(r.object, r.arg);
  pending_.fetch_sub(to_free.size(), std::memory_order_relaxed);
}

void EpochManager::DrainAll() {
  std::vector<Retired> to_free;
  {
    SpinLatchGuard guard(retired_latch_);
    to_free.swap(retired_);
  }
  for (const Retired& r : to_free) r.deleter(r.object, r.arg);
  pending_.fetch_sub(to_free.size(), std::memory_order_relaxed);
}

uint64_t EpochManager::PendingCount() const {
  return pending_.load(std::memory_order_relaxed);
}

}  // namespace mvstore
