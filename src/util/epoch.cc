#include "util/epoch.h"

#include <cassert>

#include "util/tls_slots.h"

namespace mvstore {
namespace {

struct EpochSlotTag {};
using EpochSlotCache = TlsSlotCache<EpochSlotTag>;

constexpr uint32_t kNoSlot = ~uint32_t{0};

}  // namespace

EpochManager::EpochManager()
    : registry_id_(tls_slots::RegisterOwner(this, &ReleaseSlotTrampoline)),
      slots_(kMaxThreads) {}

EpochManager::~EpochManager() {
  // First, before any member dies: no thread-exit callback may touch a
  // half-destroyed manager.
  tls_slots::UnregisterOwner(registry_id_);
  DrainAll();
}

EpochManager::ThreadSlot* EpochManager::MySlot() {
  uint32_t index = EpochSlotCache::Lookup(registry_id_);
  if (index != EpochSlotCache::kNone) return &slots_[index];
  return AcquireSlot();
}

EpochManager::ThreadSlot* EpochManager::AcquireSlot() {
  uint32_t index = kNoSlot;
  {
    SpinLatchGuard guard(freelist_latch_);
    if (!free_slots_.empty()) {
      index = free_slots_.back();
      free_slots_.pop_back();
    } else {
      uint32_t high_water = used_slots_.load(std::memory_order_relaxed);
      if (high_water < kMaxThreads) {
        index = high_water;
        used_slots_.store(high_water + 1, std::memory_order_release);
      }
    }
  }
  if (index == kNoSlot) return nullptr;  // > kMaxThreads concurrent threads
  if (!EpochSlotCache::Store(registry_id_, index)) {
    // Thread is tearing down: nothing left to release the slot later.
    ReleaseSlot(index);
    return nullptr;
  }
  return &slots_[index];
}

void EpochManager::ReleaseSlotTrampoline(void* owner, uint32_t slot) {
  static_cast<EpochManager*>(owner)->ReleaseSlot(slot);
}

void EpochManager::ReleaseSlot(uint32_t index) {
  ThreadSlot& slot = slots_[index];
  assert(slot.nesting.load(std::memory_order_relaxed) == 0 &&
         "thread exited inside an EpochGuard");
  // Splice leftovers onto the orphan list so the slot starts empty for its
  // next owner; their epochs still gate their reclamation.
  std::deque<Retired> leftover;
  {
    SpinLatchGuard guard(slot.latch);
    leftover.swap(slot.retired);
  }
  if (!leftover.empty()) {
    uint64_t moved = leftover.size();
    {
      SpinLatchGuard guard(orphans_latch_);
      for (const Retired& r : leftover) orphans_.push_back(r);
    }
    orphan_pending_.fetch_add(moved, std::memory_order_relaxed);
    slot.pending.fetch_sub(moved, std::memory_order_relaxed);
  }
  slot.retire_ticker = 0;
  slot.nesting.store(0, std::memory_order_relaxed);
  slot.epoch.store(kIdle, std::memory_order_seq_cst);
  SpinLatchGuard guard(freelist_latch_);
  free_slots_.push_back(index);
}

void EpochManager::Enter() {
  ThreadSlot* slot = MySlot();
  if (slot == nullptr) {
    // Slotless guard (thread teardown or slot exhaustion): a shared count
    // plus a conservative epoch floor. The floor only ever moves down while
    // in use -- too conservative is safe, too fresh is not.
    slotless_guards_.fetch_add(1, std::memory_order_seq_cst);
    uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
    uint64_t floor = slotless_floor_.load(std::memory_order_seq_cst);
    while ((floor == kIdle || epoch < floor) &&
           !slotless_floor_.compare_exchange_weak(floor, epoch,
                                                  std::memory_order_seq_cst)) {
    }
    return;
  }
  uint32_t nesting = slot->nesting.load(std::memory_order_relaxed);
  if (nesting == 0) {
    // seq_cst so the epoch publication is ordered before subsequent loads of
    // shared pointers; pairs with the fence in MinActiveEpoch readers.
    slot->epoch.store(global_epoch_.load(std::memory_order_acquire),
                      std::memory_order_seq_cst);
  }
  slot->nesting.store(nesting + 1, std::memory_order_relaxed);
}

void EpochManager::Exit() {
  uint32_t index = EpochSlotCache::Lookup(registry_id_);
  if (index == EpochSlotCache::kNone) {
    slotless_guards_.fetch_sub(1, std::memory_order_seq_cst);
    return;
  }
  ThreadSlot& slot = slots_[index];
  uint32_t nesting = slot.nesting.load(std::memory_order_relaxed);
  assert(nesting > 0);
  slot.nesting.store(nesting - 1, std::memory_order_relaxed);
  if (nesting == 1) {
    slot.epoch.store(kIdle, std::memory_order_release);
  }
}

uint64_t EpochManager::MinActiveEpoch(uint64_t global) const {
  uint64_t min_epoch = global;
  if (slotless_guards_.load(std::memory_order_seq_cst) > 0) {
    uint64_t floor = slotless_floor_.load(std::memory_order_seq_cst);
    if (floor != kIdle && floor < min_epoch) min_epoch = floor;
  }
  uint32_t used = used_slots_.load(std::memory_order_acquire);
  if (used > kMaxThreads) used = kMaxThreads;
  for (uint32_t i = 0; i < used; ++i) {
    uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (e != kIdle && e < min_epoch) min_epoch = e;
  }
  return min_epoch;
}

void EpochManager::Retire(void* object, Deleter deleter, void* arg) {
  uint64_t tag = global_epoch_.load(std::memory_order_acquire);
  ThreadSlot* slot = MySlot();
  if (slot != nullptr) {
    {
      SpinLatchGuard guard(slot->latch);
      slot->retired.push_back(Retired{object, deleter, arg, tag});
    }
    slot->pending.fetch_add(1, std::memory_order_release);
    if (++slot->retire_ticker % kAdvanceInterval == 0) {
      TryAdvanceAndReclaim();
    }
    return;
  }
  {
    SpinLatchGuard guard(orphans_latch_);
    orphans_.push_back(Retired{object, deleter, arg, tag});
  }
  orphan_pending_.fetch_add(1, std::memory_order_release);
  TryAdvanceAndReclaim();
}

void EpochManager::TryAdvanceAndReclaim() {
  uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
  uint64_t min_active = MinActiveEpoch(epoch);
  // Advance only when every active reader has caught up to the current
  // epoch: the shared line is written once per epoch, not once per attempt,
  // and a straggling reader simply leaves the epoch in place.
  if (min_active >= epoch &&
      global_epoch_.compare_exchange_strong(epoch, epoch + 1,
                                            std::memory_order_seq_cst)) {
    min_active = MinActiveEpoch(epoch + 1);
  }
  ReclaimUpTo(min_active);
}

void EpochManager::ReclaimUpTo(uint64_t min_active) {
  // One reclaimer at a time; others piggyback on its work and return.
  if (!reclaim_gate_.TryLock()) return;
  std::vector<Retired> to_free;
  uint32_t used = used_slots_.load(std::memory_order_acquire);
  if (used > kMaxThreads) used = kMaxThreads;
  for (uint32_t i = 0; i < used; ++i) {
    ThreadSlot& slot = slots_[i];
    if (slot.pending.load(std::memory_order_acquire) == 0) continue;
    uint64_t freed = 0;
    {
      SpinLatchGuard guard(slot.latch);
      // Epoch tags are nondecreasing per queue: pop eligible entries off
      // the front, O(freed), and never touch the backlog.
      while (!slot.retired.empty() &&
             slot.retired.front().epoch < min_active) {
        to_free.push_back(slot.retired.front());
        slot.retired.pop_front();
        ++freed;
      }
    }
    if (freed != 0) slot.pending.fetch_sub(freed, std::memory_order_relaxed);
  }
  if (orphan_pending_.load(std::memory_order_acquire) != 0) {
    // Orphan entries interleave from many dead threads, so tags are not
    // ordered; compact the (cold, small) queue exactly.
    uint64_t freed = 0;
    {
      SpinLatchGuard guard(orphans_latch_);
      size_t kept = 0;
      for (size_t i = 0; i < orphans_.size(); ++i) {
        if (orphans_[i].epoch < min_active) {
          to_free.push_back(orphans_[i]);
          ++freed;
        } else {
          orphans_[kept++] = orphans_[i];
        }
      }
      orphans_.resize(kept);
    }
    if (freed != 0) orphan_pending_.fetch_sub(freed, std::memory_order_relaxed);
  }
  reclaim_gate_.Unlock();
  // Deleters run outside every latch: they may re-enter Retire (slab
  // recycling bumps stats, pools retire containers).
  for (const Retired& r : to_free) r.deleter(r.object, r.arg);
}

void EpochManager::DrainAll() {
  reclaim_gate_.Lock();
  std::vector<Retired> to_free;
  uint32_t used = used_slots_.load(std::memory_order_acquire);
  if (used > kMaxThreads) used = kMaxThreads;
  for (uint32_t i = 0; i < used; ++i) {
    ThreadSlot& slot = slots_[i];
    uint64_t freed = 0;
    {
      SpinLatchGuard guard(slot.latch);
      while (!slot.retired.empty()) {
        to_free.push_back(slot.retired.front());
        slot.retired.pop_front();
        ++freed;
      }
    }
    if (freed != 0) slot.pending.fetch_sub(freed, std::memory_order_relaxed);
  }
  {
    SpinLatchGuard guard(orphans_latch_);
    uint64_t freed = orphans_.size();
    for (const Retired& r : orphans_) to_free.push_back(r);
    orphans_.clear();
    if (freed != 0) orphan_pending_.fetch_sub(freed, std::memory_order_relaxed);
  }
  reclaim_gate_.Unlock();
  for (const Retired& r : to_free) r.deleter(r.object, r.arg);
}

uint64_t EpochManager::PendingCount() const {
  uint64_t total = orphan_pending_.load(std::memory_order_relaxed);
  uint32_t used = used_slots_.load(std::memory_order_acquire);
  if (used > kMaxThreads) used = kMaxThreads;
  for (uint32_t i = 0; i < used; ++i) {
    total += slots_[i].pending.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace mvstore
