// Epoch-based safe memory reclamation.
//
// The storage engine's hash indexes are scanned lock-free (Section 2.1 of the
// paper), and transaction objects are dereferenced by other transactions
// during visibility checks (Sections 2.5-2.7). Neither may be freed while a
// concurrent reader could still hold a raw pointer. We use classic
// three-epoch reclamation:
//
//   * A reader wraps every unsafe region in an EpochGuard, which publishes
//     the global epoch into its thread slot.
//   * Retire(ptr) tags garbage with the epoch current at retirement.
//   * Garbage with tag e is freed once no thread slot publishes an epoch
//     <= e, i.e. every reader that could have seen the object has left.
//
// The epoch advances cooperatively: every kAdvanceInterval retirements the
// retiring thread attempts a bump. There is no dedicated epoch thread.
//
// This layer underpins the version garbage collection of Section 2.3
// (gc/garbage_collector.*): the GC decides *when* a version is invisible to
// every transaction (timestamp watermark) and unlinks it from the indexes;
// the epoch layer then decides when the unlinked memory is safe to free
// (no in-flight lock-free scan still holds the pointer). It is also what
// makes the paper's claim that readers "never block" hold at the memory
// level: reclamation never waits for readers, only for their epochs.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/port.h"
#include "common/spin_latch.h"

namespace mvstore {

/// Global epoch manager. One instance per Database. Threads register
/// implicitly on first use; slots are never recycled (bounded by
/// kMaxThreads).
class EpochManager {
 public:
  static constexpr uint32_t kMaxThreads = 512;
  static constexpr uint64_t kIdle = ~uint64_t{0};
  static constexpr uint32_t kAdvanceInterval = 64;

  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Enter a protected region. Re-entrant (nested guards share the slot).
  void Enter();
  /// Leave a protected region.
  void Exit();

  /// Deleter invoked once the object is unreachable. `arg` is the context
  /// captured at Retire time -- typically the owning allocator (a Table's
  /// slab, a transaction pool), so recycled memory returns to its slab
  /// instead of the global heap.
  using Deleter = void (*)(void* object, void* arg);

  /// Defer destruction of `object` until no reader can reach it. The deleter
  /// runs on whichever thread performs the reclamation pass.
  void Retire(void* object, Deleter deleter, void* arg = nullptr);

  /// Convenience: retire an object allocated with `new T`.
  template <typename T>
  void RetireObject(T* object) {
    Retire(object, [](void* p, void*) { delete static_cast<T*>(p); });
  }

  /// Try to advance the global epoch and reclaim everything reclaimable.
  /// Called automatically; exposed for tests and shutdown.
  void TryAdvanceAndReclaim();

  /// Reclaim *everything* outstanding. Caller must guarantee no concurrent
  /// guards are live (e.g. database shutdown).
  void DrainAll();

  /// Number of retired-but-not-yet-freed objects (approximate; for tests).
  uint64_t PendingCount() const;

  uint64_t CurrentEpoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

 private:
  struct Retired {
    void* object;
    Deleter deleter;
    void* arg;
    uint64_t epoch;
  };

  struct alignas(kCacheLineSize) ThreadSlot {
    std::atomic<uint64_t> epoch{kIdle};
    std::atomic<uint32_t> nesting{0};
  };

  uint32_t SlotIndex();
  uint64_t MinActiveEpoch() const;

  /// Distinguishes manager instances in the thread-local slot cache.
  const uint64_t instance_id_;
  std::atomic<uint64_t> global_epoch_{1};
  std::vector<ThreadSlot> slots_;
  std::atomic<uint32_t> next_slot_{0};

  SpinLatch retired_latch_;
  std::vector<Retired> retired_;
  std::atomic<uint64_t> pending_{0};
  std::atomic<uint32_t> retire_ticker_{0};
};

/// RAII guard: protects raw pointers read from lock-free structures for the
/// guard's lifetime.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager& manager) : manager_(manager) {
    manager_.Enter();
  }
  ~EpochGuard() { manager_.Exit(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager& manager_;
};

}  // namespace mvstore
