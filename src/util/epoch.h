// Epoch-based safe memory reclamation.
//
// The storage engine's hash indexes are scanned lock-free (Section 2.1 of the
// paper), and transaction objects are dereferenced by other transactions
// during visibility checks (Sections 2.5-2.7). Neither may be freed while a
// concurrent reader could still hold a raw pointer. We use classic
// three-epoch reclamation:
//
//   * A reader wraps every unsafe region in an EpochGuard, which publishes
//     the global epoch into its thread slot.
//   * Retire(ptr) tags garbage with the epoch current at retirement.
//   * Garbage with tag e is freed once no thread slot publishes an epoch
//     <= e, i.e. every reader that could have seen the object has left.
//
// The epoch advances cooperatively: every kAdvanceInterval retirements the
// retiring thread attempts a bump. There is no dedicated epoch thread.
//
// Sharding: every piece of cross-thread state lives in the participant's
// own cacheline-aligned slot -- its published epoch, its retired-object
// queue, its pending count, its advance ticker. Retiring is a push onto the
// thread's own queue; because a thread tags retirements with a monotone
// clock, each queue is epoch-ordered and a reclamation pass pops eligible
// objects off the front in O(freed), never copying the backlog (the old
// single-vector design compacted O(pending) every pass, quadratic under
// watermark lag). The global epoch is advanced by CAS only when every
// active reader has caught up to it, so the shared line is written once per
// epoch instead of once per attempt. Slots are recycled on thread exit via
// the thread-slot registry (util/tls_slots.h); a dying thread's queue is
// spliced onto an orphan list that reclamation passes also drain.
//
// This layer underpins the version garbage collection of Section 2.3
// (gc/garbage_collector.*): the GC decides *when* a version is invisible to
// every transaction (timestamp watermark) and unlinks it from the indexes;
// the epoch layer then decides when the unlinked memory is safe to free
// (no in-flight lock-free scan still holds the pointer). It is also what
// makes the paper's claim that readers "never block" hold at the memory
// level: reclamation never waits for readers, only for their epochs.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/port.h"
#include "common/spin_latch.h"

namespace mvstore {

/// Global epoch manager. One instance per Database. Threads register
/// implicitly on first use; slots are recycled on thread exit (bounded by
/// kMaxThreads *concurrent* participants).
class EpochManager {
 public:
  static constexpr uint32_t kMaxThreads = 512;
  static constexpr uint64_t kIdle = ~uint64_t{0};
  static constexpr uint32_t kAdvanceInterval = 64;

  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Enter a protected region. Re-entrant (nested guards share the slot).
  void Enter();
  /// Leave a protected region.
  void Exit();

  /// Deleter invoked once the object is unreachable. `arg` is the context
  /// captured at Retire time -- typically the owning allocator (a Table's
  /// slab, a transaction pool), so recycled memory returns to its slab
  /// instead of the global heap.
  using Deleter = void (*)(void* object, void* arg);

  /// Defer destruction of `object` until no reader can reach it. The deleter
  /// runs on whichever thread performs the reclamation pass.
  void Retire(void* object, Deleter deleter, void* arg = nullptr);

  /// Convenience: retire an object allocated with `new T`.
  template <typename T>
  void RetireObject(T* object) {
    Retire(object, [](void* p, void*) { delete static_cast<T*>(p); });
  }

  /// Try to advance the global epoch and reclaim everything reclaimable.
  /// Called automatically; exposed for tests and shutdown.
  void TryAdvanceAndReclaim();

  /// Reclaim *everything* outstanding. Caller must guarantee no concurrent
  /// guards are live (e.g. database shutdown).
  void DrainAll();

  /// Number of retired-but-not-yet-freed objects (approximate; for tests).
  uint64_t PendingCount() const;

  uint64_t CurrentEpoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  /// High-water mark of slot indexes ever used. Stays bounded by the peak
  /// number of *concurrent* participants, not the total thread count
  /// (tests churn thousands of short-lived threads through here).
  uint32_t UsedSlots() const {
    return used_slots_.load(std::memory_order_acquire);
  }

 private:
  struct Retired {
    void* object;
    Deleter deleter;
    void* arg;
    uint64_t epoch;
  };

  struct alignas(kCacheLineSize) ThreadSlot {
    std::atomic<uint64_t> epoch{kIdle};
    std::atomic<uint32_t> nesting{0};
    /// Owner-thread only; handoff across owners via the freelist latch.
    uint32_t retire_ticker = 0;
    /// The slot's retired queue: owner pushes at the back, reclaimers pop
    /// eligible entries off the front. Epoch tags are nondecreasing.
    mutable SpinLatch latch;
    std::deque<Retired> retired GUARDED_BY(latch);
    std::atomic<uint64_t> pending{0};
  };

  ThreadSlot* MySlot();
  ThreadSlot* AcquireSlot();
  void ReleaseSlot(uint32_t index);
  static void ReleaseSlotTrampoline(void* owner, uint32_t slot);
  uint64_t MinActiveEpoch(uint64_t global) const;
  void ReclaimUpTo(uint64_t min_active);

  /// Keys the per-thread slot caches (never the address: a new manager can
  /// be allocated where a destroyed one lived).
  const uint64_t registry_id_;
  alignas(kCacheLineSize) std::atomic<uint64_t> global_epoch_{1};

  std::vector<ThreadSlot> slots_;
  std::atomic<uint32_t> used_slots_{0};
  SpinLatch freelist_latch_;
  std::vector<uint32_t> free_slots_ GUARDED_BY(freelist_latch_);

  /// Retirements from dead or slotless threads; drained like a slot queue.
  mutable SpinLatch orphans_latch_;
  std::deque<Retired> orphans_ GUARDED_BY(orphans_latch_);
  std::atomic<uint64_t> orphan_pending_{0};

  /// Guards that could not get a slot (thread teardown, slot exhaustion):
  /// a conservative shared count + epoch floor. The floor only matters while
  /// the count is nonzero and only ever moves down -- conservative is safe.
  std::atomic<uint64_t> slotless_guards_{0};
  std::atomic<uint64_t> slotless_floor_{kIdle};

  /// Keeps concurrent reclamation passes from dog-piling on slot latches.
  SpinLatch reclaim_gate_;
};

/// RAII guard: protects raw pointers read from lock-free structures for the
/// guard's lifetime.
class EpochGuard {
 public:
  explicit EpochGuard(EpochManager& manager) : manager_(manager) {
    manager_.Enter();
  }
  ~EpochGuard() { manager_.Exit(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochManager& manager_;
};

}  // namespace mvstore
