// Thread-slot registry: the shared machinery behind every per-thread-sharded
// structure in the engine (timestamp blocks, epoch slots, stat cells).
//
// Each sharded structure ("owner") hands out per-thread slots from its own
// freelist. The hard part is the *release* side: a slot must return to the
// owner's freelist when the thread exits -- otherwise short-lived threads
// (tests, session churn) grow the slot array without bound -- but a C++
// thread-local destructor must never call into an owner that has already
// been destroyed. This registry brokers that handshake:
//
//   * Owners register a release callback at construction and unregister at
//     the *top* of their destructor, before any member is torn down.
//   * Each owner class instantiates TlsSlotCache<Tag>, a per-thread map from
//     owner id to slot index. Its destructor releases every cached slot
//     through the registry, which invokes the callback only for owners that
//     are still alive (under the registry mutex, so an owner can never be
//     mid-destruction during a callback).
//
// The registry is touched only on thread exit and owner construction or
// destruction; slot *acquisition* and all hot-path work stay entirely inside
// the owner. The registry object itself is intentionally leaked so it
// outlives thread-local destructors that run at process exit.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace mvstore {
namespace tls_slots {

/// Called when a thread that cached `slot` for this owner exits. Runs under
/// the registry mutex: keep it tiny and never re-enter the registry.
using ReleaseFn = void (*)(void* owner, uint32_t slot);

/// Returns a process-unique, never-recycled id for this owner. Ids key the
/// per-thread caches (not the owner's address: a new owner can be allocated
/// where a destroyed one lived, and must not inherit its cached slots).
uint64_t RegisterOwner(void* owner, ReleaseFn release);

/// Owners call this first thing in their destructor.
void UnregisterOwner(uint64_t id);

/// Invoked by thread-exit cleanup. A no-op for ids whose owner is gone.
void ReleaseSlot(uint64_t id, uint32_t slot);

}  // namespace tls_slots

/// Per-thread slot cache for one owner class. `Tag` is any unique type; each
/// instantiation gets independent thread-local storage. Lookups go through a
/// one-entry fast cache (the common case: a thread talks to one Database).
///
/// After this thread's cache has been destroyed (thread teardown), Store()
/// returns false and Lookup() returns kNone: callers must fall back to a
/// slot-free path rather than resurrect the cache, because a re-acquired
/// slot would have no destructor left to release it.
template <typename Tag>
class TlsSlotCache {
 public:
  static constexpr uint32_t kNone = ~uint32_t{0};

  static uint32_t Lookup(uint64_t id) {
    if (last_id_ == id) return last_slot_;
    State* s = state_;
    if (s == nullptr) return kNone;
    auto it = s->slots.find(id);
    if (it == s->slots.end()) return kNone;
    last_id_ = id;
    last_slot_ = it->second;
    return it->second;
  }

  static bool Store(uint64_t id, uint32_t slot) {
    State* s = Ensure();
    if (s == nullptr) return false;
    s->slots[id] = slot;
    last_id_ = id;
    last_slot_ = slot;
    return true;
  }

 private:
  struct State {
    std::unordered_map<uint64_t, uint32_t> slots;
  };
  struct Holder {
    Holder() { state_ = &state; }
    ~Holder() {
      for (const auto& [id, slot] : state.slots) {
        tls_slots::ReleaseSlot(id, slot);
      }
      state_ = nullptr;
      dead_ = true;
      last_id_ = 0;
      last_slot_ = kNone;
    }
    State state;
  };

  static State* Ensure() {
    if (state_ != nullptr) return state_;
    if (dead_) return nullptr;
    thread_local Holder holder;
    return state_;
  }

  // POD thread-locals survive TLS destructor ordering; `dead_` is what keeps
  // a post-teardown call (e.g. a stat bump from another TLS destructor) from
  // rebuilding the cache.
  static inline thread_local State* state_ = nullptr;
  static inline thread_local bool dead_ = false;
  static inline thread_local uint64_t last_id_ = 0;  // owner ids start at 1
  static inline thread_local uint32_t last_slot_ = kNone;
};

}  // namespace mvstore
