// mvclient: command-line client for mvserver.
//
//   mvclient [--host H] [--port P] <command> [args]
//
// Commands:
//   ping                      round-trip liveness check
//   stats                     print server + engine counters
//   resolve NAME              print a registered procedure's id
//   call NAME [SEED] [ISO]    invoke a whole-txn procedure (e.g. tatp.mixed)
//                             with the standard seed|isolation argument
//   get TABLE INDEX KEY       read one row inside a read-only transaction,
//                             print it as hex
//   bench NAME COUNT [DEPTH]  pipelined procedure-call throughput: COUNT
//                             calls at DEPTH frames per batch
//   promote [force]           turn a follower (mvserver --follow) into a
//                             writable leader; `force` promotes even a
//                             follower that never attached to its leader
//                             (accepting whatever it replayed so far)
//   metrics                   print the Prometheus text exposition
//                             (docs/OBSERVABILITY.md has the catalog)
//   top [N [INTERVAL_MS]]     poll metrics N times (default forever) at
//                             INTERVAL_MS (default 1000), rendering commit
//                             throughput and latency quantile deltas
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "client/tcp_transport.h"
#include "common/timing.h"

namespace {

const char* FlagValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

int Usage() {
  std::fprintf(stderr,
               "usage: mvclient [--host H] [--port P] "
               "ping|stats|metrics|top|resolve|call|get|bench|promote ...\n");
  return 1;
}

/// First non-flag argv position (flags are all --name value).
int CommandIndex(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      ++i;  // skip the flag's value
      continue;
    }
    return i;
  }
  return -1;
}

std::vector<uint8_t> ProcArg(uint64_t seed, uint8_t iso) {
  std::vector<uint8_t> arg(9);
  std::memcpy(arg.data(), &seed, 8);
  arg[8] = iso;
  return arg;
}

/// Prometheus text parsed into series-name (labels included) -> value.
std::map<std::string, double> ParseMetrics(const std::string& text) {
  std::map<std::string, double> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    if (text[pos] != '#') {
      size_t sp = text.rfind(' ', eol);
      if (sp != std::string::npos && sp > pos) {
        out[text.substr(pos, sp - pos)] =
            std::strtod(text.c_str() + sp + 1, nullptr);
      }
    }
    pos = eol + 1;
  }
  return out;
}

double MetricValue(const std::map<std::string, double>& m,
                   const std::string& name) {
  auto it = m.find(name);
  return it != m.end() ? it->second : 0.0;
}

/// Per-bucket (non-cumulative) counts of `mvstore_<hist>_seconds`, keyed by
/// the bucket's `le` upper bound. Elided (empty) bucket rows come back as
/// implicit zeros, so two samples diff cleanly even when their emitted
/// bucket sets differ.
std::map<double, double> BucketCounts(const std::map<std::string, double>& m,
                                      const std::string& hist) {
  const std::string prefix = "mvstore_" + hist + "_seconds_bucket{le=\"";
  std::map<double, double> cumulative;
  for (auto it = m.lower_bound(prefix);
       it != m.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    cumulative[std::strtod(it->first.c_str() + prefix.size(), nullptr)] =
        it->second;
  }
  std::map<double, double> counts;
  double prev = 0.0;
  for (const auto& [le, cum] : cumulative) {
    counts[le] = cum - prev;
    prev = cum;
  }
  return counts;
}

/// Quantile (seconds) of the distribution recorded between two metrics
/// samples: diff the per-bucket counts, then walk the delta histogram.
/// Returns 0 when nothing was recorded in the window.
double DeltaQuantileSeconds(const std::map<std::string, double>& now,
                            const std::map<std::string, double>& prev,
                            const std::string& hist, double q) {
  std::map<double, double> now_counts = BucketCounts(now, hist);
  std::map<double, double> prev_counts = BucketCounts(prev, hist);
  double total = 0.0;
  for (auto& [le, count] : now_counts) {
    auto it = prev_counts.find(le);
    if (it != prev_counts.end()) count -= it->second;
    if (count < 0.0) count = 0.0;
    total += count;
  }
  if (total <= 0.0) return 0.0;
  const double target = q * total;
  double acc = 0.0;
  double last_finite = 0.0;
  for (const auto& [le, count] : now_counts) {
    acc += count;
    if (!std::isinf(le)) last_finite = le;
    if (acc >= target && count > 0.0) {
      return std::isinf(le) ? last_finite : le;
    }
  }
  return last_finite;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvstore;

  const char* host_flag = FlagValue(argc, argv, "--host");
  const char* port_flag = FlagValue(argc, argv, "--port");
  std::string host = host_flag != nullptr ? host_flag : "127.0.0.1";
  uint16_t port = static_cast<uint16_t>(
      port_flag != nullptr ? std::strtoul(port_flag, nullptr, 10) : 7711);

  int cmd_at = CommandIndex(argc, argv);
  if (cmd_at < 0) return Usage();
  std::string cmd = argv[cmd_at];
  auto arg_at = [&](int k) -> const char* {
    return cmd_at + k < argc ? argv[cmd_at + k] : nullptr;
  };

  TcpTransport transport(host, port);
  Status status;
  auto conn = transport.Connect(&status);
  if (conn == nullptr) {
    std::fprintf(stderr, "mvclient: cannot connect to %s:%u: %s\n",
                 host.c_str(), port, status.ToString().c_str());
    return 1;
  }
  MVClient client(std::move(conn));

  if (cmd == "ping") {
    Status s = client.Ping();
    std::printf("%s\n", s.ToString().c_str());
    return s.ok() ? 0 : 1;
  }

  if (cmd == "promote") {
    const char* mode = arg_at(1);
    bool force = mode != nullptr && std::strcmp(mode, "force") == 0;
    Status s = client.Promote(force);
    std::printf("%s\n", s.ToString().c_str());
    return s.ok() ? 0 : 1;
  }

  if (cmd == "stats" || cmd == "metrics") {
    std::string text;
    Status s = cmd == "stats" ? client.Stats(&text) : client.Metrics(&text);
    if (!s.ok()) {
      std::fprintf(stderr, "mvclient: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fputs(text.c_str(), stdout);
    return 0;
  }

  if (cmd == "top") {
    // top [N [INTERVAL_MS]]: poll kMetrics and render per-interval deltas —
    // commit/abort/read rates from counter diffs, commit latency quantiles
    // from the diffed commit_total histogram buckets.
    uint64_t rounds = arg_at(1) != nullptr
                          ? std::strtoull(arg_at(1), nullptr, 10)
                          : 0;  // 0 = run until killed
    uint32_t interval_ms = static_cast<uint32_t>(
        arg_at(2) != nullptr ? std::strtoul(arg_at(2), nullptr, 10) : 1000);
    if (interval_ms == 0) interval_ms = 1000;
    std::string text;
    Status s = client.Metrics(&text);
    if (!s.ok()) {
      std::fprintf(stderr, "mvclient: %s\n", s.ToString().c_str());
      return 1;
    }
    std::map<std::string, double> prev = ParseMetrics(text);
    for (uint64_t round = 0; rounds == 0 || round < rounds; ++round) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      s = client.Metrics(&text);
      if (!s.ok()) {
        std::fprintf(stderr, "mvclient: %s\n", s.ToString().c_str());
        return 1;
      }
      std::map<std::string, double> now = ParseMetrics(text);
      const double secs = interval_ms / 1000.0;
      auto rate = [&](const char* name) {
        return (MetricValue(now, name) - MetricValue(prev, name)) / secs;
      };
      auto us = [&](double q) {
        return DeltaQuantileSeconds(now, prev, "commit_total", q) * 1e6;
      };
      if (round % 20 == 0) {
        std::printf("%10s %10s %10s %9s %9s %9s %9s\n", "commit/s", "abort/s",
                    "read/s", "p50_us", "p90_us", "p99_us", "repl_lag");
      }
      std::printf("%10.0f %10.0f %10.0f %9.1f %9.1f %9.1f %9.0f\n",
                  rate("mvstore_txn_committed_total"),
                  rate("mvstore_txn_aborted_total"),
                  rate("mvstore_read_latency_seconds_count"), us(0.5),
                  us(0.9), us(0.99),
                  MetricValue(now, "mvstore_repl_lag_timestamps"));
      std::fflush(stdout);
      prev = std::move(now);
    }
    return 0;
  }

  if (cmd == "resolve" || cmd == "call" || cmd == "bench") {
    const char* name = arg_at(1);
    if (name == nullptr) return Usage();
    uint32_t proc_id = 0;
    Status s = client.Resolve(name, &proc_id);
    if (!s.ok()) {
      std::fprintf(stderr, "mvclient: resolve '%s': %s\n", name,
                   s.ToString().c_str());
      return 1;
    }
    if (cmd == "resolve") {
      std::printf("%u\n", proc_id);
      return 0;
    }
    if (cmd == "call") {
      uint64_t seed = arg_at(2) != nullptr
                          ? std::strtoull(arg_at(2), nullptr, 10)
                          : 42;
      uint8_t iso = static_cast<uint8_t>(
          arg_at(3) != nullptr ? std::strtoul(arg_at(3), nullptr, 10) : 0);
      std::vector<uint8_t> arg = ProcArg(seed, iso);
      std::vector<uint8_t> result;
      s = client.Call(proc_id, arg.data(), arg.size(), &result);
      std::printf("%s\n", s.ToString().c_str());
      return s.ok() || s.IsAborted() ? 0 : 1;
    }
    // bench NAME COUNT [DEPTH]
    uint64_t count = arg_at(2) != nullptr
                         ? std::strtoull(arg_at(2), nullptr, 10)
                         : 10000;
    uint32_t depth = static_cast<uint32_t>(
        arg_at(3) != nullptr ? std::strtoul(arg_at(3), nullptr, 10) : 16);
    if (depth == 0) depth = 1;
    uint64_t committed = 0;
    uint64_t aborted = 0;
    Timer timer;
    for (uint64_t done = 0; done < count;) {
      uint32_t batch = static_cast<uint32_t>(
          count - done < depth ? count - done : depth);
      for (uint32_t i = 0; i < batch; ++i) {
        std::vector<uint8_t> arg = ProcArg(done + i, 0);
        client.QueueCall(proc_id, arg.data(), arg.size());
      }
      std::vector<WireResult> results;
      if (!client.FlushBatch(&results).ok()) {
        std::fprintf(stderr, "mvclient: connection lost mid-bench\n");
        return 1;
      }
      for (const WireResult& r : results) {
        if (r.status.ok()) {
          ++committed;
        } else {
          ++aborted;
        }
      }
      done += batch;
    }
    double seconds = timer.ElapsedSeconds();
    std::printf("%llu calls in %.3fs = %.0f tps (%llu aborted/refused)\n",
                static_cast<unsigned long long>(committed + aborted), seconds,
                (committed + aborted) / seconds,
                static_cast<unsigned long long>(aborted));
    return 0;
  }

  if (cmd == "get") {
    if (arg_at(3) == nullptr) return Usage();
    TableId table = static_cast<TableId>(std::strtoul(arg_at(1), nullptr, 10));
    IndexId index = static_cast<IndexId>(std::strtoul(arg_at(2), nullptr, 10));
    uint64_t key = std::strtoull(arg_at(3), nullptr, 10);
    Status s = client.Begin(IsolationLevel::kReadCommitted, /*read_only=*/true);
    if (!s.ok()) {
      std::fprintf(stderr, "mvclient: begin: %s\n", s.ToString().c_str());
      return 1;
    }
    std::vector<uint8_t> row;
    s = client.Get(table, index, key, &row);
    client.Commit();
    if (s.IsNotFound()) {
      std::printf("NotFound\n");
      return 0;
    }
    if (!s.ok()) {
      std::fprintf(stderr, "mvclient: get: %s\n", s.ToString().c_str());
      return 1;
    }
    for (uint8_t byte : row) std::printf("%02x", byte);
    std::printf("\n");
    return 0;
  }

  return Usage();
}
