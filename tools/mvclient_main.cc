// mvclient: command-line client for mvserver.
//
//   mvclient [--host H] [--port P] <command> [args]
//
// Commands:
//   ping                      round-trip liveness check
//   stats                     print server + engine counters
//   resolve NAME              print a registered procedure's id
//   call NAME [SEED] [ISO]    invoke a whole-txn procedure (e.g. tatp.mixed)
//                             with the standard seed|isolation argument
//   get TABLE INDEX KEY       read one row inside a read-only transaction,
//                             print it as hex
//   bench NAME COUNT [DEPTH]  pipelined procedure-call throughput: COUNT
//                             calls at DEPTH frames per batch
//   promote [force]           turn a follower (mvserver --follow) into a
//                             writable leader; `force` promotes even a
//                             follower that never attached to its leader
//                             (accepting whatever it replayed so far)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "client/client.h"
#include "client/tcp_transport.h"
#include "common/timing.h"

namespace {

const char* FlagValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

int Usage() {
  std::fprintf(stderr,
               "usage: mvclient [--host H] [--port P] "
               "ping|stats|resolve|call|get|bench|promote ...\n");
  return 1;
}

/// First non-flag argv position (flags are all --name value).
int CommandIndex(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      ++i;  // skip the flag's value
      continue;
    }
    return i;
  }
  return -1;
}

std::vector<uint8_t> ProcArg(uint64_t seed, uint8_t iso) {
  std::vector<uint8_t> arg(9);
  std::memcpy(arg.data(), &seed, 8);
  arg[8] = iso;
  return arg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvstore;

  const char* host_flag = FlagValue(argc, argv, "--host");
  const char* port_flag = FlagValue(argc, argv, "--port");
  std::string host = host_flag != nullptr ? host_flag : "127.0.0.1";
  uint16_t port = static_cast<uint16_t>(
      port_flag != nullptr ? std::strtoul(port_flag, nullptr, 10) : 7711);

  int cmd_at = CommandIndex(argc, argv);
  if (cmd_at < 0) return Usage();
  std::string cmd = argv[cmd_at];
  auto arg_at = [&](int k) -> const char* {
    return cmd_at + k < argc ? argv[cmd_at + k] : nullptr;
  };

  TcpTransport transport(host, port);
  Status status;
  auto conn = transport.Connect(&status);
  if (conn == nullptr) {
    std::fprintf(stderr, "mvclient: cannot connect to %s:%u: %s\n",
                 host.c_str(), port, status.ToString().c_str());
    return 1;
  }
  MVClient client(std::move(conn));

  if (cmd == "ping") {
    Status s = client.Ping();
    std::printf("%s\n", s.ToString().c_str());
    return s.ok() ? 0 : 1;
  }

  if (cmd == "promote") {
    const char* mode = arg_at(1);
    bool force = mode != nullptr && std::strcmp(mode, "force") == 0;
    Status s = client.Promote(force);
    std::printf("%s\n", s.ToString().c_str());
    return s.ok() ? 0 : 1;
  }

  if (cmd == "stats") {
    std::string text;
    Status s = client.Stats(&text);
    if (!s.ok()) {
      std::fprintf(stderr, "mvclient: %s\n", s.ToString().c_str());
      return 1;
    }
    std::fputs(text.c_str(), stdout);
    return 0;
  }

  if (cmd == "resolve" || cmd == "call" || cmd == "bench") {
    const char* name = arg_at(1);
    if (name == nullptr) return Usage();
    uint32_t proc_id = 0;
    Status s = client.Resolve(name, &proc_id);
    if (!s.ok()) {
      std::fprintf(stderr, "mvclient: resolve '%s': %s\n", name,
                   s.ToString().c_str());
      return 1;
    }
    if (cmd == "resolve") {
      std::printf("%u\n", proc_id);
      return 0;
    }
    if (cmd == "call") {
      uint64_t seed = arg_at(2) != nullptr
                          ? std::strtoull(arg_at(2), nullptr, 10)
                          : 42;
      uint8_t iso = static_cast<uint8_t>(
          arg_at(3) != nullptr ? std::strtoul(arg_at(3), nullptr, 10) : 0);
      std::vector<uint8_t> arg = ProcArg(seed, iso);
      std::vector<uint8_t> result;
      s = client.Call(proc_id, arg.data(), arg.size(), &result);
      std::printf("%s\n", s.ToString().c_str());
      return s.ok() || s.IsAborted() ? 0 : 1;
    }
    // bench NAME COUNT [DEPTH]
    uint64_t count = arg_at(2) != nullptr
                         ? std::strtoull(arg_at(2), nullptr, 10)
                         : 10000;
    uint32_t depth = static_cast<uint32_t>(
        arg_at(3) != nullptr ? std::strtoul(arg_at(3), nullptr, 10) : 16);
    if (depth == 0) depth = 1;
    uint64_t committed = 0;
    uint64_t aborted = 0;
    Timer timer;
    for (uint64_t done = 0; done < count;) {
      uint32_t batch = static_cast<uint32_t>(
          count - done < depth ? count - done : depth);
      for (uint32_t i = 0; i < batch; ++i) {
        std::vector<uint8_t> arg = ProcArg(done + i, 0);
        client.QueueCall(proc_id, arg.data(), arg.size());
      }
      std::vector<WireResult> results;
      if (!client.FlushBatch(&results).ok()) {
        std::fprintf(stderr, "mvclient: connection lost mid-bench\n");
        return 1;
      }
      for (const WireResult& r : results) {
        if (r.status.ok()) {
          ++committed;
        } else {
          ++aborted;
        }
      }
      done += batch;
    }
    double seconds = timer.ElapsedSeconds();
    std::printf("%llu calls in %.3fs = %.0f tps (%llu aborted/refused)\n",
                static_cast<unsigned long long>(committed + aborted), seconds,
                (committed + aborted) / seconds,
                static_cast<unsigned long long>(aborted));
    return 0;
  }

  if (cmd == "get") {
    if (arg_at(3) == nullptr) return Usage();
    TableId table = static_cast<TableId>(std::strtoul(arg_at(1), nullptr, 10));
    IndexId index = static_cast<IndexId>(std::strtoul(arg_at(2), nullptr, 10));
    uint64_t key = std::strtoull(arg_at(3), nullptr, 10);
    Status s = client.Begin(IsolationLevel::kReadCommitted, /*read_only=*/true);
    if (!s.ok()) {
      std::fprintf(stderr, "mvclient: begin: %s\n", s.ToString().c_str());
      return 1;
    }
    std::vector<uint8_t> row;
    s = client.Get(table, index, key, &row);
    client.Commit();
    if (s.IsNotFound()) {
      std::printf("NotFound\n");
      return 0;
    }
    if (!s.ok()) {
      std::fprintf(stderr, "mvclient: get: %s\n", s.ToString().c_str());
      return 1;
    }
    for (uint8_t byte : row) std::printf("%02x", byte);
    std::printf("\n");
    return 0;
  }

  return Usage();
}
