// mvserver: serve an mvstore database over the wire protocol.
//
//   mvserver [--port P] [--host H] [--scheme 1V|MV/L|MV/O] [--workers N]
//            [--max-sessions N] [--max-pipeline N]
//            [--log PATH] [--fsync 0|1] [--segment-bytes N]
//            [--group-commit-us N] [--checkpoint PATH]
//            [--tatp SUBSCRIBERS]
//
// With --tatp the TATP schema is created, loaded, and its seven
// transactions (plus "tatp.mixed") are registered as whole-txn procedures,
// so any MVClient can drive the paper's workload with one kCall per
// transaction. With --log the database is *opened* (recover-then-continue):
// existing durable state is replayed before serving. SIGINT and SIGTERM are
// handled identically: drain gracefully — in-flight transactions finish,
// the log is flushed — then exit 0. If the shutdown flush cannot promise
// the log is durable (the sink failed or the database degraded to
// read-only mode), the exit status is 2 so supervisors notice the data
// needs attention before a restart (see docs/RELIABILITY.md).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "core/database.h"
#include "core/recovery.h"
#include "server/mv_server.h"
#include "workload/tatp.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_release); }

const char* FlagValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

uint64_t FlagUint(int argc, char** argv, const char* name, uint64_t fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

std::string FlagStr(int argc, char** argv, const char* name,
                    const std::string& fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v != nullptr ? v : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvstore;

  DatabaseOptions db_opts;
  std::string scheme = FlagStr(argc, argv, "--scheme", "MV/O");
  if (scheme == "1V") {
    db_opts.scheme = Scheme::kSingleVersion;
  } else if (scheme == "MV/L") {
    db_opts.scheme = Scheme::kMultiVersionLocking;
  } else if (scheme == "MV/O") {
    db_opts.scheme = Scheme::kMultiVersionOptimistic;
  } else {
    std::fprintf(stderr, "mvserver: unknown --scheme '%s'\n", scheme.c_str());
    return 1;
  }
  db_opts.log_path = FlagStr(argc, argv, "--log", "");
  db_opts.fsync_log = FlagUint(argc, argv, "--fsync", 0) != 0;
  db_opts.log_segment_bytes = FlagUint(argc, argv, "--segment-bytes", 0);
  db_opts.group_commit_us =
      static_cast<uint32_t>(FlagUint(argc, argv, "--group-commit-us", 0));
  db_opts.checkpoint_path = FlagStr(argc, argv, "--checkpoint", "");
  if (db_opts.log_path.empty()) db_opts.log_mode = LogMode::kDisabled;

  const uint64_t tatp_subscribers = FlagUint(argc, argv, "--tatp", 0);

  std::unique_ptr<Database> db;
  tatp::TatpDatabase tatp_db{};
  // Schema only: data committed inside define_schema would be logged and
  // then double-applied by Open's replay. Population happens below, after
  // recovery, and only if the recovered database is empty.
  auto define_schema = [&](Database& d) {
    if (tatp_subscribers > 0) {
      tatp_db = tatp::CreateTatpTables(d, tatp_subscribers);
      tatp::RegisterTatpProcedures(d, tatp_db);
    }
  };
  if (!db_opts.log_path.empty() || !db_opts.checkpoint_path.empty()) {
    Status open_status;
    db = Database::Open(db_opts, define_schema, &open_status);
    if (db == nullptr) {
      std::fprintf(stderr, "mvserver: recovery failed: %s\n",
                   open_status.ToString().c_str());
      return 1;
    }
  } else {
    db = std::make_unique<Database>(db_opts);
    define_schema(*db);
  }
  if (tatp_subscribers > 0) {
    // Fresh database (nothing recovered): load the TATP population now,
    // through the normal commit path, so it is durable for the next start.
    Txn* probe = db->Begin(IsolationLevel::kReadCommitted, /*read_only=*/true);
    tatp::SubscriberRow sub;
    bool loaded = db->Read(probe, tatp_db.subscriber, 0, 1, &sub).ok();
    db->Commit(probe);
    if (!loaded) {
      std::printf("mvserver: loading %llu TATP subscribers...\n",
                  static_cast<unsigned long long>(tatp_subscribers));
      tatp::PopulateTatp(*db, tatp_db);
    }
  }

  ServerOptions srv_opts;
  srv_opts.host = FlagStr(argc, argv, "--host", "127.0.0.1");
  srv_opts.port = static_cast<uint16_t>(FlagUint(argc, argv, "--port", 7711));
  srv_opts.workers = static_cast<uint32_t>(FlagUint(argc, argv, "--workers", 2));
  srv_opts.core.max_sessions =
      static_cast<uint32_t>(FlagUint(argc, argv, "--max-sessions", 256));
  srv_opts.core.max_pipeline =
      static_cast<uint32_t>(FlagUint(argc, argv, "--max-pipeline", 64));

  MVServer server(*db, srv_opts);
  Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "mvserver: cannot listen on %s:%u: %s\n",
                 srv_opts.host.c_str(), srv_opts.port, s.ToString().c_str());
    return 1;
  }
  std::printf("mvserver: %s on %s:%u (%u workers, max %u sessions)%s\n",
              SchemeName(db->scheme()), srv_opts.host.c_str(), server.port(),
              srv_opts.workers, srv_opts.core.max_sessions,
              tatp_subscribers > 0 ? ", TATP procedures registered" : "");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("mvserver: draining...\n");
  server.Stop();
  // Stop() flushed the log; a broken sink or a read-only degradation means
  // acknowledged state may not all be on disk — make the exit status say so.
  if (db->options().log_mode != LogMode::kDisabled &&
      (!db->log_status().ok() || db->read_only())) {
    std::fprintf(stderr,
                 "mvserver: shutdown flush FAILED (%s%s); durable state may "
                 "be behind acknowledged commits\n",
                 db->log_status().ok() ? "" : "log sink broken",
                 db->read_only() ? ", database in read-only mode" : "");
    return 2;
  }
  std::printf("mvserver: stopped\n");
  return 0;
}
