// mvserver: serve an mvstore database over the wire protocol.
//
//   mvserver [--port P] [--host H] [--scheme 1V|MV/L|MV/O] [--workers N]
//            [--max-sessions N] [--max-pipeline N]
//            [--log PATH] [--fsync 0|1] [--segment-bytes N]
//            [--group-commit-us N] [--checkpoint PATH]
//            [--tatp SUBSCRIBERS]
//            [--repl-port P] [--follow HOST:PORT]
//
// With --tatp the TATP schema is created, loaded, and its seven
// transactions (plus "tatp.mixed") are registered as whole-txn procedures,
// so any MVClient can drive the paper's workload with one kCall per
// transaction. With --log the database is *opened* (recover-then-continue):
// existing durable state is replayed before serving. SIGINT and SIGTERM are
// handled identically: drain gracefully — in-flight transactions finish,
// the log is flushed — then exit 0. If the shutdown flush cannot promise
// the log is durable (the sink failed or the database degraded to
// read-only mode), the exit status is 2 so supervisors notice the data
// needs attention before a restart (see docs/RELIABILITY.md).
//
// Replication (docs/REPLICATION.md; Linux only):
//   --repl-port P   leader: host a log shipper on P so followers can
//                   bootstrap + tail this database (requires --log with
//                   --segment-bytes > 0).
//   --follow H:P    follower: mirror the leader's log from H:P and serve
//                   read-only snapshot transactions at replayed_ts; writes
//                   are refused kReadOnly until a client sends promote
//                   (mvclient promote). Requires --log, --segment-bytes,
//                   and --checkpoint; incompatible with --tatp loading
//                   (the schema comes from the leader's define order).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "core/database.h"
#include "core/recovery.h"
#include "repl/replica.h"
#include "repl/shipper.h"
#include "server/mv_server.h"
#include "workload/tatp.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_release); }

const char* FlagValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

uint64_t FlagUint(int argc, char** argv, const char* name, uint64_t fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

std::string FlagStr(int argc, char** argv, const char* name,
                    const std::string& fallback) {
  const char* v = FlagValue(argc, argv, name);
  return v != nullptr ? v : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvstore;

  DatabaseOptions db_opts;
  std::string scheme = FlagStr(argc, argv, "--scheme", "MV/O");
  if (scheme == "1V") {
    db_opts.scheme = Scheme::kSingleVersion;
  } else if (scheme == "MV/L") {
    db_opts.scheme = Scheme::kMultiVersionLocking;
  } else if (scheme == "MV/O") {
    db_opts.scheme = Scheme::kMultiVersionOptimistic;
  } else {
    std::fprintf(stderr, "mvserver: unknown --scheme '%s'\n", scheme.c_str());
    return 1;
  }
  db_opts.log_path = FlagStr(argc, argv, "--log", "");
  db_opts.fsync_log = FlagUint(argc, argv, "--fsync", 0) != 0;
  db_opts.log_segment_bytes = FlagUint(argc, argv, "--segment-bytes", 0);
  db_opts.group_commit_us =
      static_cast<uint32_t>(FlagUint(argc, argv, "--group-commit-us", 0));
  db_opts.checkpoint_path = FlagStr(argc, argv, "--checkpoint", "");
  if (db_opts.log_path.empty()) db_opts.log_mode = LogMode::kDisabled;

  const uint64_t tatp_subscribers = FlagUint(argc, argv, "--tatp", 0);

  // Replication roles (both optional; --follow excludes --repl-port).
  const std::string follow = FlagStr(argc, argv, "--follow", "");
  const uint16_t repl_port =
      static_cast<uint16_t>(FlagUint(argc, argv, "--repl-port", 0));
  const bool follower = !follow.empty();
  if (follower && repl_port != 0) {
    std::fprintf(stderr, "mvserver: --follow and --repl-port are exclusive "
                         "(a follower re-ships only after promote)\n");
    return 1;
  }
  if ((follower || repl_port != 0) &&
      (db_opts.log_path.empty() || db_opts.log_segment_bytes == 0)) {
    std::fprintf(stderr, "mvserver: replication needs --log PATH and "
                         "--segment-bytes N\n");
    return 1;
  }
  if (follower && db_opts.checkpoint_path.empty()) {
    std::fprintf(stderr, "mvserver: --follow needs --checkpoint PATH "
                         "(bootstrap target)\n");
    return 1;
  }

  std::unique_ptr<Database> db;
  std::unique_ptr<Replica> replica;
  tatp::TatpDatabase tatp_db{};
  // Schema only: data committed inside define_schema would be logged and
  // then double-applied by Open's replay. Population happens below, after
  // recovery, and only if the recovered database is empty.
  auto define_schema = [&](Database& d) {
    if (tatp_subscribers > 0) {
      tatp_db = tatp::CreateTatpTables(d, tatp_subscribers);
      tatp::RegisterTatpProcedures(d, tatp_db);
    }
  };
  if (follower) {
    const size_t colon = follow.find_last_of(':');
    ReplicaOptions ropts;
    ropts.db = db_opts;
    ropts.define_schema = define_schema;
    ropts.leader_host = colon == std::string::npos ? "127.0.0.1"
                                                   : follow.substr(0, colon);
    ropts.leader_port = static_cast<uint16_t>(std::strtoul(
        follow.c_str() + (colon == std::string::npos ? 0 : colon + 1), nullptr,
        10));
    if (ropts.leader_port == 0) {
      std::fprintf(stderr, "mvserver: bad --follow '%s' (want HOST:PORT)\n",
                   follow.c_str());
      return 1;
    }
    Status open_status;
    replica = Replica::Open(std::move(ropts), &open_status);
    if (replica == nullptr) {
      std::fprintf(stderr, "mvserver: follower open failed: %s\n",
                   open_status.ToString().c_str());
      return 1;
    }
  } else if (!db_opts.log_path.empty() || !db_opts.checkpoint_path.empty()) {
    Status open_status;
    db = Database::Open(db_opts, define_schema, &open_status);
    if (db == nullptr) {
      std::fprintf(stderr, "mvserver: recovery failed: %s\n",
                   open_status.ToString().c_str());
      return 1;
    }
  } else {
    db = std::make_unique<Database>(db_opts);
    define_schema(*db);
  }
  if (tatp_subscribers > 0 && !follower) {
    // Fresh database (nothing recovered): load the TATP population now,
    // through the normal commit path, so it is durable for the next start.
    Txn* probe = db->Begin(IsolationLevel::kReadCommitted, /*read_only=*/true);
    tatp::SubscriberRow sub;
    bool loaded = db->Read(probe, tatp_db.subscriber, 0, 1, &sub).ok();
    db->Commit(probe);
    if (!loaded) {
      std::printf("mvserver: loading %llu TATP subscribers...\n",
                  static_cast<unsigned long long>(tatp_subscribers));
      tatp::PopulateTatp(*db, tatp_db);
    }
  }

  ServerOptions srv_opts;
  srv_opts.host = FlagStr(argc, argv, "--host", "127.0.0.1");
  srv_opts.port = static_cast<uint16_t>(FlagUint(argc, argv, "--port", 7711));
  srv_opts.workers = static_cast<uint32_t>(FlagUint(argc, argv, "--workers", 2));
  srv_opts.core.max_sessions =
      static_cast<uint32_t>(FlagUint(argc, argv, "--max-sessions", 256));
  srv_opts.core.max_pipeline =
      static_cast<uint32_t>(FlagUint(argc, argv, "--max-pipeline", 64));

  Database& serve_db = follower ? replica->db() : *db;
  MVServer server(serve_db, srv_opts);
  Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "mvserver: cannot listen on %s:%u: %s\n",
                 srv_opts.host.c_str(), srv_opts.port, s.ToString().c_str());
    return 1;
  }
  if (follower) server.core().SetReplica(replica.get());

  std::unique_ptr<ReplShipper> shipper;
  if (repl_port != 0) {
    ShipperOptions ship_opts;
    ship_opts.host = srv_opts.host;
    ship_opts.port = repl_port;
    shipper = std::make_unique<ReplShipper>(serve_db, ship_opts);
    Status ship_status = shipper->Start();
    if (!ship_status.ok()) {
      std::fprintf(stderr, "mvserver: cannot ship log on %s:%u: %s\n",
                   srv_opts.host.c_str(), repl_port,
                   ship_status.ToString().c_str());
      server.Stop();
      return 1;
    }
  }

  std::printf("mvserver: %s on %s:%u (%u workers, max %u sessions)%s%s%s\n",
              SchemeName(serve_db.scheme()), srv_opts.host.c_str(),
              server.port(), srv_opts.workers, srv_opts.core.max_sessions,
              tatp_subscribers > 0 ? ", TATP procedures registered" : "",
              repl_port != 0 ? ", shipping log to followers" : "",
              follower ? ", following leader (read-only until promote)" : "");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("mvserver: draining...\n");
  server.Stop();
  if (shipper != nullptr) shipper->Stop();
  if (follower) {
    server.core().SetReplica(nullptr);
    replica->Stop();
    std::printf("mvserver: follower stopped (replayed_ts %llu%s)\n",
                static_cast<unsigned long long>(replica->replayed_ts()),
                replica->writable() ? ", promoted" : "");
    return 0;
  }
  // Stop() flushed the log; a broken sink or a read-only degradation means
  // acknowledged state may not all be on disk — make the exit status say so.
  if (db->options().log_mode != LogMode::kDisabled &&
      (!db->log_status().ok() || db->read_only())) {
    std::fprintf(stderr,
                 "mvserver: shutdown flush FAILED (%s%s); durable state may "
                 "be behind acknowledged commits\n",
                 db->log_status().ok() ? "" : "log sink broken",
                 db->read_only() ? ", database in read-only mode" : "");
    return 2;
  }
  std::printf("mvserver: stopped\n");
  return 0;
}
