// chaos_drill: seeded kill-at-a-random-failpoint drills from the command
// line (the same harness tests/chaos_recovery_test.cc runs under ctest).
//
//   chaos_drill [--dir D] [--scheme 1v|mvl|mvo] [--iters N] [--seed S]
//               [--cycles C] [--txns T] [--threads W]
//
// Each iteration runs one chaos::RunDrill: fork a workload child, crash it
// at a randomly armed durability failpoint, recover, and verify that every
// acknowledged commit survived. Exit status: 0 when every iteration held
// the contract, 1 on the first violation (printed with the seed needed to
// reproduce it), 2 on usage/harness errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chaos/chaos_drill.h"
#include "common/failpoint.h"

namespace {

const char* FlagValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

int Usage() {
  std::fprintf(stderr,
               "usage: chaos_drill [--dir D] [--scheme 1v|mvl|mvo] "
               "[--iters N] [--seed S] [--cycles C] [--txns T] "
               "[--threads W]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (!mvstore::failpoint::CompiledIn()) {
    std::fprintf(stderr,
                 "chaos_drill: failpoints are compiled out of this build "
                 "(reconfigure with -DMVSTORE_FAILPOINTS_ENABLED=ON)\n");
    return 2;
  }
  std::string dir = "/tmp/mvstore-chaos";
  mvstore::Scheme scheme = mvstore::Scheme::kMultiVersionOptimistic;
  uint64_t iters = 8;
  uint64_t seed = 1;
  mvstore::chaos::DrillOptions options;
  if (const char* v = FlagValue(argc, argv, "--dir")) dir = v;
  if (const char* v = FlagValue(argc, argv, "--scheme")) {
    if (std::strcmp(v, "1v") == 0) {
      scheme = mvstore::Scheme::kSingleVersion;
    } else if (std::strcmp(v, "mvl") == 0) {
      scheme = mvstore::Scheme::kMultiVersionLocking;
    } else if (std::strcmp(v, "mvo") == 0) {
      scheme = mvstore::Scheme::kMultiVersionOptimistic;
    } else {
      return Usage();
    }
  }
  if (const char* v = FlagValue(argc, argv, "--iters")) {
    iters = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--seed")) {
    seed = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--cycles")) {
    options.cycles = static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
  }
  if (const char* v = FlagValue(argc, argv, "--txns")) {
    options.txns_per_cycle =
        static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
  }
  if (const char* v = FlagValue(argc, argv, "--threads")) {
    options.writer_threads =
        static_cast<uint32_t>(std::strtoul(v, nullptr, 10));
  }
  if (iters == 0 || options.cycles == 0 || options.writer_threads == 0) {
    return Usage();
  }

  options.scheme = scheme;
  uint64_t total_crashes = 0;
  uint64_t total_acked = 0;
  for (uint64_t i = 0; i < iters; ++i) {
    options.seed = seed + i;
    options.dir = dir + "/drill-" + std::to_string(options.seed);
    mvstore::chaos::DrillReport report;
    mvstore::Status s = mvstore::chaos::RunDrill(options, &report);
    if (!s.ok()) {
      std::fprintf(stderr, "chaos_drill: harness error (%s): %s\n",
                   s.ToString().c_str(), report.failure.c_str());
      return 2;
    }
    if (!report.failure.empty()) {
      std::fprintf(stderr,
                   "chaos_drill: CONTRACT VIOLATED: %s\n"
                   "reproduce with: chaos_drill --scheme %s --seed %llu "
                   "--iters 1\n",
                   report.failure.c_str(),
                   scheme == mvstore::Scheme::kSingleVersion    ? "1v"
                   : scheme == mvstore::Scheme::kMultiVersionLocking
                       ? "mvl"
                       : "mvo",
                   static_cast<unsigned long long>(options.seed));
      return 1;
    }
    total_crashes += report.crashes;
    total_acked = report.acked_commits;
    std::printf(
        "drill %llu/%llu seed=%llu: %u cycles, %u crashes, %u clean, "
        "%llu acked commits verified\n",
        static_cast<unsigned long long>(i + 1),
        static_cast<unsigned long long>(iters),
        static_cast<unsigned long long>(options.seed), report.cycles_run,
        report.crashes, report.clean_exits,
        static_cast<unsigned long long>(report.acked_commits));
  }
  std::printf(
      "chaos_drill: OK — %llu drills, %llu crash recoveries, zero "
      "acknowledged commits lost (last drill verified %llu acks)\n",
      static_cast<unsigned long long>(iters),
      static_cast<unsigned long long>(total_crashes),
      static_cast<unsigned long long>(total_acked));
  return 0;
}
