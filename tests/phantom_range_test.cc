// Phantom protection for ordered-index range scans, all three schemes
// (paper Section 2.6's validation discussion, Section 3.2's rescan check,
// and the 1V engine's lock-based coverage from Section 5, extended from
// hash keys to key ranges).
//
//  * MV/O and MV/L: a serializable transaction records every scanned range
//    and rescans it at precommit; a version that became visible during the
//    transaction's lifetime aborts it (AbortReason::kPhantom).
//  * 1V: a serializable range scan predicate-locks [lo, hi]; a conflicting
//    insert waits and times out while the scanner is open (lock-based
//    prevention — the *inserter* aborts instead).
//  * Snapshot isolation: the insert is simply excluded from the scanner's
//    read time (the "excluded" arm of the invariant).
#include <gtest/gtest.h>

#include <vector>

#include "core/database.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;    // primary
  uint64_t group;  // ordered secondary
  int64_t value;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }
uint64_t RowGroup(const void* p) { return static_cast<const Row*>(p)->group; }

class PhantomRangeTest : public ::testing::TestWithParam<Scheme> {
 protected:
  PhantomRangeTest() {
    DatabaseOptions opts;
    opts.scheme = GetParam();
    opts.log_mode = LogMode::kDisabled;
    opts.lock_timeout_us = 20000;  // 1V: fast phantom-conflict timeouts
    db_ = std::make_unique<Database>(opts);
    TableDef def;
    def.name = "rows";
    def.payload_size = sizeof(Row);
    def.indexes.push_back(IndexDef{&RowKey, 256, /*unique=*/true});
    IndexDef ordered{&RowGroup, 256, /*unique=*/false};
    ordered.ordered = true;
    def.indexes.push_back(ordered);
    table_ = db_->CreateTable(def);
    for (uint64_t g : {10u, 20u, 30u}) Put(g, g);
  }

  void Put(uint64_t key, uint64_t group) {
    ASSERT_TRUE(db_->RunTransaction(IsolationLevel::kReadCommitted,
                                    [&](Txn* t) {
                                      Row row{key, group, 0};
                                      return db_->Insert(t, table_, &row);
                                    })
                    .ok());
  }

  /// Scan [lo, hi] on the ordered index inside `txn`; returns row count.
  size_t ScanCount(Txn* txn, uint64_t lo, uint64_t hi) {
    size_t n = 0;
    Status s = db_->ScanRange(txn, table_, 1, lo, hi, nullptr,
                              [&](const void*) {
                                ++n;
                                return true;
                              });
    EXPECT_TRUE(s.ok());
    return n;
  }

  std::unique_ptr<Database> db_;
  TableId table_ = 0;
};

TEST_P(PhantomRangeTest, ConflictingInsertAbortsScannerOrInserter) {
  Txn* scanner = db_->Begin(IsolationLevel::kSerializable);
  ASSERT_EQ(ScanCount(scanner, 5, 35), 3u);

  // A concurrent transaction inserts group 25 — inside the scanned range.
  Row phantom{99, 25, 0};
  Status insert_status =
      db_->RunTransaction(IsolationLevel::kReadCommitted,
                          [&](Txn* t) { return db_->Insert(t, table_, &phantom); },
                          /*max_retries=*/0);

  if (GetParam() == Scheme::kSingleVersion) {
    // Lock-based prevention: the inserter hit the scanner's range lock and
    // timed out; the scanner commits untouched.
    EXPECT_TRUE(insert_status.IsAborted());
    EXPECT_TRUE(db_->Commit(scanner).ok());
    // With the range lock gone the same insert goes through.
    Status retry = db_->RunTransaction(
        IsolationLevel::kReadCommitted,
        [&](Txn* t) { return db_->Insert(t, table_, &phantom); });
    EXPECT_TRUE(retry.ok());
  } else {
    // Validation-based prevention: the insert committed, so the scanner's
    // precommit rescan finds a version born inside its range and aborts.
    ASSERT_TRUE(insert_status.ok());
    Status s = db_->Commit(scanner);
    ASSERT_TRUE(s.IsAborted());
    EXPECT_EQ(s.abort_reason(), AbortReason::kPhantom);
    EXPECT_GT(db_->stats().Get(Stat::kAbortPhantom), 0u);
  }
}

TEST_P(PhantomRangeTest, InsertOutsideScannedRangeIsHarmless) {
  Txn* scanner = db_->Begin(IsolationLevel::kSerializable);
  ASSERT_EQ(ScanCount(scanner, 5, 35), 3u);

  Row outside{98, 80, 0};
  Status insert_status = db_->RunTransaction(
      IsolationLevel::kReadCommitted,
      [&](Txn* t) { return db_->Insert(t, table_, &outside); });
  EXPECT_TRUE(insert_status.ok());
  EXPECT_TRUE(db_->Commit(scanner).ok());
}

TEST_P(PhantomRangeTest, EqualityProbeOnOrderedIndexIsPhantomSafe) {
  // Point Scan through the ordered index degenerates to [key, key] and
  // inherits the same protection.
  Txn* scanner = db_->Begin(IsolationLevel::kSerializable);
  size_t n = 0;
  ASSERT_TRUE(db_->Scan(scanner, table_, 1, 25, nullptr,
                        [&](const void*) {
                          ++n;
                          return true;
                        })
                  .ok());
  ASSERT_EQ(n, 0u);  // nothing with group 25 yet

  Row phantom{97, 25, 0};
  Status insert_status =
      db_->RunTransaction(IsolationLevel::kReadCommitted,
                          [&](Txn* t) { return db_->Insert(t, table_, &phantom); },
                          /*max_retries=*/0);
  if (GetParam() == Scheme::kSingleVersion) {
    EXPECT_TRUE(insert_status.IsAborted());
    EXPECT_TRUE(db_->Commit(scanner).ok());
  } else {
    ASSERT_TRUE(insert_status.ok());
    Status s = db_->Commit(scanner);
    ASSERT_TRUE(s.IsAborted());
    EXPECT_EQ(s.abort_reason(), AbortReason::kPhantom);
  }
}

TEST_P(PhantomRangeTest, SnapshotScanExcludesConcurrentInsert) {
  if (GetParam() == Scheme::kSingleVersion) {
    GTEST_SKIP() << "1V has no snapshot scans";
  }
  Txn* scanner = db_->Begin(IsolationLevel::kSnapshot);
  ASSERT_EQ(ScanCount(scanner, 5, 35), 3u);

  Put(96, 25);  // commits mid-scan

  // The snapshot reader's repeat scan still sees its begin-time state, and
  // commits fine: exclusion, not abort.
  EXPECT_EQ(ScanCount(scanner, 5, 35), 3u);
  EXPECT_TRUE(db_->Commit(scanner).ok());

  // A fresh transaction sees the insert.
  Txn* after = db_->Begin(IsolationLevel::kSnapshot);
  EXPECT_EQ(ScanCount(after, 5, 35), 4u);
  EXPECT_TRUE(db_->Commit(after).ok());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PhantomRangeTest,
                         ::testing::Values(Scheme::kSingleVersion,
                                           Scheme::kMultiVersionLocking,
                                           Scheme::kMultiVersionOptimistic),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheme::kSingleVersion:
                               return std::string("SV");
                             case Scheme::kMultiVersionLocking:
                               return std::string("MVL");
                             default:
                               return std::string("MVO");
                           }
                         });

}  // namespace
}  // namespace mvstore
