// Follower read-scaling regression harness (ctest label `perf`, Release CI
// leg) — the replication payoff the log-shipping subsystem exists to buy:
// a follower is extra read capacity, not just a warm spare.
//
// Topology: a leader database, a sync ReplShipper, and an in-process
// Replica attached over real TCP and fully caught up. Both serve the same
// table. The experiment measures aggregate read-only throughput twice with
// the same total thread count:
//
//   leader-only : all reader threads hammer the leader database;
//   split       : half the readers move to the follower's snapshot.
//
// On any box the split must not collapse (the follower read path —
// replayed_ts snapshot visibility over mirrored, replayed state — must not
// serialize against the replication machinery). The generous 0.8x margin
// catches a collapse, not enforces a speedup, same contract as
// scalability_smoke_test; the two configurations are measured in
// alternation and compared by median to survive noisy shared runners.
//
// Also asserted, because throughput without correctness is vacuous: with
// the leader quiescent the follower's rows are value-identical to the
// leader's.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include "bench/harness.h"
#include "common/random.h"
#include "core/database.h"
#include "repl/replica.h"
#include "repl/shipper.h"
#include "workload/homogeneous.h"

namespace mvstore {
namespace {

constexpr uint64_t kRows = 4096;
constexpr uint32_t kReadsPerTxn = 10;
constexpr double kSecondsPerPoint = 1.0;
constexpr double kMargin = 0.8;
constexpr double kSharedCoreMargin = 0.5;
constexpr int kRepeats = 3;
constexpr uint32_t kThreads = 4;

void DefineRowTable(Database& db) {
  TableDef def;
  def.name = "rows";
  def.payload_size = sizeof(workload::Row24);
  def.indexes.push_back(IndexDef{&workload::Row24Key, kRows, /*unique=*/true});
  db.CreateTable(std::move(def));
}

DatabaseOptions MakeReplOptions(const std::string& dir) {
  DatabaseOptions opts;
  opts.scheme = Scheme::kMultiVersionOptimistic;
  opts.log_mode = LogMode::kAsync;  // loading 4096 rows; fsync not the point
  opts.log_path = dir + "/wal";
  opts.log_segment_bytes = 1 << 20;
  opts.checkpoint_path = dir + "/ckpt";
  return opts;
}

/// Aggregate read-only tps over `kThreads` workers; `pick` maps a worker id
/// to the database it reads.
double ReadTps(const std::function<Database&(uint32_t)>& pick) {
  bench::RunResult r = bench::RunFixedDuration(
      kThreads, kSecondsPerPoint,
      [&](uint32_t tid, std::atomic<bool>& stop,
          bench::WorkerCounters& counters) {
        Database& db = pick(tid);
        Random rng(0xF0110 + tid);
        while (!stop.load(std::memory_order_relaxed)) {
          Status s = workload::RunReadOnlyTxn(db, 0, rng, kRows, kReadsPerTxn,
                                              IsolationLevel::kReadCommitted);
          if (s.ok()) {
            ++counters.committed;
          } else {
            ++counters.aborted;
          }
        }
      });
  return r.tps();
}

TEST(ReplReadScalingTest, FollowerAddsReadCapacityWithoutCollapse) {
#if !defined(__linux__)
  GTEST_SKIP() << "replication is Linux-only";
#else
  const bool small_box = std::thread::hardware_concurrency() < 4;
  if (small_box && std::getenv("MVSTORE_PERF_FORCE") == nullptr) {
    GTEST_SKIP() << "needs >= 4 hardware threads";
  }
  const double margin = small_box ? kSharedCoreMargin : kMargin;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "mvstore_repl_read_scaling")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir + "/leader");
  std::filesystem::create_directories(dir + "/follower");

  Status st;
  auto leader = Database::Open(MakeReplOptions(dir + "/leader"),
                               DefineRowTable, &st);
  ASSERT_NE(leader, nullptr) << st.ToString();
  for (uint64_t k = 0; k < kRows; ++k) {
    Txn* txn = leader->Begin(IsolationLevel::kReadCommitted);
    workload::Row24 row{k, k * 10, 0};
    ASSERT_TRUE(leader->Insert(txn, 0, &row).ok());
    ASSERT_TRUE(leader->Commit(txn).ok());
  }

  ReplShipper shipper(*leader);
  ASSERT_TRUE(shipper.Start().ok());

  ReplicaOptions ropts;
  ropts.db = MakeReplOptions(dir + "/follower");
  ropts.define_schema = DefineRowTable;
  ropts.leader_port = shipper.port();
  ropts.reconnect_ms = 20;
  auto replica = Replica::Open(ropts, &st);
  ASSERT_NE(replica, nullptr) << st.ToString();

  // Fully caught up: the follower's watermark reaches the leader's clock.
  const Timestamp leader_ts = leader->LastCommitTimestamp();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (replica->replayed_ts() < leader_ts &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(replica->replayed_ts(), leader_ts) << "follower never caught up";

  // Correctness before throughput: the follower's snapshot is
  // value-identical to the quiescent leader.
  {
    Database& fdb = replica->db();
    Txn* txn = fdb.Begin(IsolationLevel::kReadCommitted, /*read_only=*/true);
    for (uint64_t k = 0; k < kRows; k += 97) {
      workload::Row24 row{};
      ASSERT_TRUE(fdb.Read(txn, 0, 0, k, &row).ok()) << "key " << k;
      ASSERT_EQ(row.value, k * 10) << "key " << k;
    }
    ASSERT_TRUE(fdb.Commit(txn).ok());
  }

  // Warm both sides, then alternate the two configurations and compare
  // medians.
  (void)ReadTps([&](uint32_t tid) -> Database& {
    return tid % 2 == 0 ? *leader : replica->db();
  });
  double leader_only[kRepeats], split[kRepeats];
  for (int rep = 0; rep < kRepeats; ++rep) {
    leader_only[rep] = ReadTps([&](uint32_t) -> Database& { return *leader; });
    split[rep] = ReadTps([&](uint32_t tid) -> Database& {
      return tid % 2 == 0 ? *leader : replica->db();
    });
  }
  std::sort(leader_only, leader_only + kRepeats);
  std::sort(split, split + kRepeats);
  const double tps_leader = leader_only[kRepeats / 2];
  const double tps_split = split[kRepeats / 2];
  RecordProperty("tps_leader_only", static_cast<int64_t>(tps_leader));
  RecordProperty("tps_split", static_cast<int64_t>(tps_split));
  EXPECT_GE(tps_split, margin * tps_leader)
      << "moving half the readers to the follower collapsed throughput: "
      << tps_leader << " tps leader-only vs " << tps_split << " tps split";

  replica->Stop();
  replica.reset();
  shipper.Stop();
  leader.reset();
  std::filesystem::remove_all(dir);
#endif
}

}  // namespace
}  // namespace mvstore
