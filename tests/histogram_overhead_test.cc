// Observability overhead guard (ctest label `perf`, Release CI leg).
//
// The latency histograms ride the hottest path in the engine: every commit
// takes several NowTicks() reads plus a handful of single-writer stores
// into the thread's private cell. The design budget (docs/OBSERVABILITY.md)
// is < 3% on the most instrumentation-sensitive workload we have — the
// contention_bench empty Begin/Commit loop, where a transaction is nothing
// *but* the commit pipeline, so the per-commit instrumentation cost is
// maximal relative to useful work.
//
// Methodology mirrors scalability_smoke_test: histograms-on and
// histograms-off points are measured in alternation and compared by median,
// so a box-level slow phase lands on both sides. The margin is the 3%
// budget plus a noise allowance on dedicated boxes, and a much looser
// catastrophic-only check on small/oversubscribed ones (where timeslicing
// jitter alone exceeds 3%).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "bench/harness.h"

namespace mvstore {
namespace {

constexpr double kSecondsPerPoint = 0.5;
constexpr int kRepeats = 5;
/// 3% budget + 4% box-noise allowance: a real regression that doubles the
/// per-commit instrumentation cost blows far past this; run-to-run noise
/// on a dedicated >= 4-thread box stays within it.
constexpr double kMargin = 0.93;
/// Shared-core boxes only smoke-check for a catastrophic slowdown.
constexpr double kSharedCoreMargin = 0.75;

double EmptyCommitTps(Database& db, uint32_t threads) {
  bench::RunResult r = bench::RunFixedDuration(
      threads, kSecondsPerPoint,
      [&](uint32_t, std::atomic<bool>& stop,
          bench::WorkerCounters& counters) {
        while (!stop.load(std::memory_order_relaxed)) {
          Txn* txn = db.Begin(IsolationLevel::kReadCommitted);
          if (db.Commit(txn).ok()) {
            ++counters.committed;
          } else {
            ++counters.aborted;
          }
        }
      });
  return r.tps();
}

TEST(HistogramOverheadTest, UnderThreePercentOnEmptyCommitLoop) {
  const bool small_box = std::thread::hardware_concurrency() < 4;
  if (small_box && std::getenv("MVSTORE_PERF_FORCE") == nullptr) {
    GTEST_SKIP() << "needs >= 4 hardware threads";
  }
  const double margin = small_box ? kSharedCoreMargin : kMargin;
  const uint32_t threads = 2;

  bench::Flags flags(0, nullptr);
  DatabaseOptions on_opts =
      bench::MakeOptions(Scheme::kMultiVersionOptimistic, flags);
  on_opts.enable_latency_histograms = true;
  DatabaseOptions off_opts = on_opts;
  off_opts.enable_latency_histograms = false;
  Database db_on(on_opts);
  Database db_off(off_opts);

  // Warm both engines (thread slots, txn pools, the calibration spin).
  (void)EmptyCommitTps(db_on, threads);
  (void)EmptyCommitTps(db_off, threads);

  double runs_on[kRepeats], runs_off[kRepeats];
  for (int rep = 0; rep < kRepeats; ++rep) {
    runs_on[rep] = EmptyCommitTps(db_on, threads);
    runs_off[rep] = EmptyCommitTps(db_off, threads);
  }
  std::sort(runs_on, runs_on + kRepeats);
  std::sort(runs_off, runs_off + kRepeats);
  const double tps_on = runs_on[kRepeats / 2];
  const double tps_off = runs_off[kRepeats / 2];
  testing::Test::RecordProperty("tps_hists_on", static_cast<int64_t>(tps_on));
  testing::Test::RecordProperty("tps_hists_off",
                                static_cast<int64_t>(tps_off));
  // The instrumented engine actually recorded: the guard must not pass
  // because histograms silently turned themselves off.
  EXPECT_GT(db_on.hists().Snapshot(obs::Hist::kCommitTotal).count, 0u);
  EXPECT_EQ(db_off.hists().Snapshot(obs::Hist::kCommitTotal).count, 0u);
  EXPECT_GE(tps_on, margin * tps_off)
      << "latency histograms cost more than the overhead budget: "
      << tps_off << " tps with histograms off vs " << tps_on << " with on";
}

}  // namespace
}  // namespace mvstore
