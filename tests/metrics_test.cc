// Metrics exposition end-to-end: the kMetrics opcode round-trips over a
// loopback session and returns well-formed Prometheus text whose counter
// and histogram samples agree with the work the session just did; the
// replication-lag gauge appears when a replica gate is attached.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "client/client.h"
#include "core/database.h"
#include "obs/histogram.h"
#include "server/loopback.h"
#include "server/server_core.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;
  uint64_t value;
};

uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

TableId MakeRowTable(Database& db) {
  TableDef def;
  def.name = "rows";
  def.payload_size = sizeof(Row);
  def.indexes.push_back(IndexDef{&RowKey, 1024, true});
  return db.CreateTable(def);
}

/// Parse Prometheus text into series-name (labels included) -> value,
/// asserting every line is either a comment or exactly "name value".
std::map<std::string, double> ParseExposition(const std::string& text) {
  std::map<std::string, double> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    EXPECT_NE(eol, std::string::npos) << "exposition must end with newline";
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      ADD_FAILURE() << "blank line in exposition";
      continue;
    }
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << "bad comment: " << line;
      continue;
    }
    size_t sp = line.rfind(' ');
    if (sp == std::string::npos) {
      ADD_FAILURE() << "unparsable line: " << line;
      continue;
    }
    char* end = nullptr;
    double value = std::strtod(line.c_str() + sp + 1, &end);
    EXPECT_EQ(*end, '\0') << "non-numeric sample: " << line;
    out[line.substr(0, sp)] = value;
  }
  return out;
}

TEST(MetricsTest, LoopbackRoundTripMatchesWork) {
  DatabaseOptions opts;
  opts.scheme = Scheme::kMultiVersionOptimistic;
  // A slow-txn threshold (far above anything this test does) opts every
  // commit into pipeline tracing, overriding the 1-in-32 sampling so the
  // histogram counts below can be asserted exactly.
  opts.slow_txn_us = 10 * 1000 * 1000;
  Database db(opts);
  TableId table = MakeRowTable(db);
  ServerCore core(db);
  LoopbackTransport transport(core);
  Status status;
  auto conn = transport.Connect(&status);
  ASSERT_NE(conn, nullptr) << status.ToString();
  MVClient client(std::move(conn));

  constexpr uint64_t kCommits = 25;
  for (uint64_t i = 0; i < kCommits; ++i) {
    ASSERT_TRUE(client.Begin(IsolationLevel::kReadCommitted).ok());
    Row row{i, i * 10};
    ASSERT_TRUE(client.Insert(table, &row, sizeof(row)).ok());
    ASSERT_TRUE(client.Commit().ok());
  }
  Row read{};
  ASSERT_TRUE(client.Begin(IsolationLevel::kReadCommitted, true).ok());
  ASSERT_TRUE(client.Get(table, 0, 3, &read, sizeof(read)).ok());
  ASSERT_TRUE(client.Commit().ok());

  std::string text;
  ASSERT_TRUE(client.Metrics(&text).ok());
  std::map<std::string, double> samples = ParseExposition(text);

  // Engine counters carry the _total suffix and the work just done.
  EXPECT_GE(samples["mvstore_txn_committed_total"], kCommits);
  // Service gauges.
  EXPECT_EQ(samples["mvstore_server_sessions_active"], 1.0);
  EXPECT_EQ(samples["mvstore_read_only"], 0.0);
  // No replica gate -> no repl series.
  EXPECT_EQ(samples.count("mvstore_repl_lag_timestamps"), 0u);

  // Commit histogram: _count matches commits, +Inf bucket equals _count,
  // quantiles are present, finite, and ordered p50 <= p99 <= max.
  EXPECT_GE(samples["mvstore_commit_total_seconds_count"], kCommits);
  EXPECT_EQ(samples["mvstore_commit_total_seconds_bucket{le=\"+Inf\"}"],
            samples["mvstore_commit_total_seconds_count"]);
  double p50 = samples["mvstore_commit_total_quantile_seconds{quantile=\"0.5\"}"];
  double p99 =
      samples["mvstore_commit_total_quantile_seconds{quantile=\"0.99\"}"];
  double max = samples["mvstore_commit_total_max_seconds"];
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p99);
  EXPECT_GT(samples["mvstore_commit_total_seconds_sum"], 0.0);
  EXPECT_GT(max, 0.0);
  // Per-phase commit histograms saw the same commits.
  EXPECT_GE(samples["mvstore_commit_validate_seconds_count"], kCommits);
  EXPECT_GE(samples["mvstore_commit_log_append_seconds_count"], kCommits);
  EXPECT_GE(samples["mvstore_txn_lifetime_seconds_count"], kCommits);
  // The read went through the Database facade.
  EXPECT_GE(samples["mvstore_read_latency_seconds_count"], 1.0);
}

TEST(MetricsTest, CommitTracingIsSampledByDefault) {
  // Without a slow-txn threshold, the commit pipeline is traced 1-in-32
  // per thread (obs::kCommitSampleMask): every commit is counted, but only
  // a deterministic subset lands in the commit histograms.
  DatabaseOptions opts;
  opts.scheme = Scheme::kMultiVersionOptimistic;
  Database db(opts);
  TableId table = MakeRowTable(db);
  ServerCore core(db);
  LoopbackTransport transport(core);
  auto conn = transport.Connect(nullptr);
  ASSERT_NE(conn, nullptr);
  MVClient client(std::move(conn));

  constexpr uint64_t kCommits = 2 * (obs::kCommitSampleMask + 1);
  for (uint64_t i = 0; i < kCommits; ++i) {
    ASSERT_TRUE(client.Begin(IsolationLevel::kReadCommitted).ok());
    Row row{i, i};
    ASSERT_TRUE(client.Insert(table, &row, sizeof(row)).ok());
    ASSERT_TRUE(client.Commit().ok());
  }
  std::string text;
  ASSERT_TRUE(client.Metrics(&text).ok());
  std::map<std::string, double> samples = ParseExposition(text);
  EXPECT_GE(samples["mvstore_txn_committed_total"], kCommits);
  // Two full sampling rounds guarantee at least one trace; sampling must
  // also have thinned the stream well below one-per-commit.
  double traced = samples["mvstore_commit_total_seconds_count"];
  EXPECT_GE(traced, 1.0);
  EXPECT_LT(traced, static_cast<double>(kCommits));
  EXPECT_EQ(samples["mvstore_txn_lifetime_seconds_count"], traced);
}

TEST(MetricsTest, HistogramsDisabledStillWellFormed) {
  DatabaseOptions opts;
  opts.enable_latency_histograms = false;
  Database db(opts);
  TableId table = MakeRowTable(db);
  ServerCore core(db);
  LoopbackTransport transport(core);
  auto conn = transport.Connect(nullptr);
  ASSERT_NE(conn, nullptr);
  MVClient client(std::move(conn));

  ASSERT_TRUE(client.Begin(IsolationLevel::kReadCommitted).ok());
  Row row{1, 2};
  ASSERT_TRUE(client.Insert(table, &row, sizeof(row)).ok());
  ASSERT_TRUE(client.Commit().ok());

  std::string text;
  ASSERT_TRUE(client.Metrics(&text).ok());
  std::map<std::string, double> samples = ParseExposition(text);
  // Counters still flow; histogram families render with zero counts.
  EXPECT_GE(samples["mvstore_txn_committed_total"], 1.0);
  EXPECT_EQ(samples["mvstore_commit_total_seconds_count"], 0.0);
  EXPECT_EQ(samples["mvstore_commit_total_seconds_bucket{le=\"+Inf\"}"], 0.0);
}

/// Gate stub: a follower that replayed through ts 40 of a leader at ts 100.
class FakeGate : public ReplicaGate {
 public:
  bool writable() override { return false; }
  bool ready() override { return true; }
  Timestamp replayed_ts() override { return 40; }
  Timestamp leader_ts() override { return 100; }
  Status Promote(bool) override { return Status::OK(); }
};

TEST(MetricsTest, ReplicaGateExportsLagGauge) {
  Database db{DatabaseOptions{}};
  ServerCore core(db);
  FakeGate gate;
  core.SetReplica(&gate);
  std::map<std::string, double> samples = ParseExposition(core.MetricsText());
  core.SetReplica(nullptr);
  EXPECT_EQ(samples["mvstore_repl_writable"], 0.0);
  EXPECT_EQ(samples["mvstore_repl_ready"], 1.0);
  EXPECT_EQ(samples["mvstore_repl_replayed_ts"], 40.0);
  EXPECT_EQ(samples["mvstore_repl_leader_ts"], 100.0);
  EXPECT_EQ(samples["mvstore_repl_lag_timestamps"], 60.0);
}

TEST(MetricsTest, CounterSnapshotIsSortedByName) {
  Database db{DatabaseOptions{}};
  auto snapshot = db.CounterSnapshot();
  ASSERT_FALSE(snapshot.empty());
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].first, snapshot[i].first);
  }
}

}  // namespace
}  // namespace mvstore
