// TATP workload: population rules, non-uniform key generation, the
// transaction mix, and referential consistency under concurrent execution
// across all three schemes (paper Section 5.3).
#include "workload/tatp.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace mvstore {
namespace {

using tatp::TatpDatabase;
using tatp::TatpTxnType;

class TatpTest : public ::testing::TestWithParam<Scheme> {
 protected:
  static constexpr uint64_t kSubscribers = 500;

  TatpTest() {
    DatabaseOptions opts;
    opts.scheme = GetParam();
    opts.log_mode = LogMode::kDisabled;
    opts.lock_timeout_us = 5000;
    db_ = std::make_unique<Database>(opts);
    tatp_ = tatp::LoadTatp(*db_, kSubscribers);
  }

  std::unique_ptr<Database> db_;
  TatpDatabase tatp_;
};

TEST_P(TatpTest, PopulationIsConsistent) {
  EXPECT_TRUE(tatp::CheckConsistency(*db_, tatp_));
}

TEST_P(TatpTest, EverySubscriberLoaded) {
  Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
  for (uint64_t sid = 1; sid <= kSubscribers; ++sid) {
    tatp::SubscriberRow sub{};
    ASSERT_TRUE(db_->Read(txn, tatp_.subscriber, 0, sid, &sub).ok());
    EXPECT_EQ(sub.s_id, sid);
    EXPECT_EQ(sub.sub_nbr, sid);
    // Lookup by sub_nbr (second index) finds the same subscriber.
    tatp::SubscriberRow by_nbr{};
    ASSERT_TRUE(db_->Read(txn, tatp_.subscriber, 1, sid, &by_nbr).ok());
    EXPECT_EQ(by_nbr.s_id, sid);
  }
  ASSERT_TRUE(db_->Commit(txn).ok());
}

TEST_P(TatpTest, EverySubscriberHasAccessInfoAndSpecialFacility) {
  Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
  for (uint64_t sid = 1; sid <= kSubscribers; ++sid) {
    int ai = 0, sf = 0;
    ASSERT_TRUE(db_->Scan(txn, tatp_.access_info, 1, sid, nullptr,
                          [&](const void*) {
                            ++ai;
                            return true;
                          })
                    .ok());
    ASSERT_TRUE(db_->Scan(txn, tatp_.special_facility, 1, sid, nullptr,
                          [&](const void*) {
                            ++sf;
                            return true;
                          })
                    .ok());
    EXPECT_GE(ai, 1);
    EXPECT_LE(ai, 4);
    EXPECT_GE(sf, 1);
    EXPECT_LE(sf, 4);
  }
  ASSERT_TRUE(db_->Commit(txn).ok());
}

TEST_P(TatpTest, MixMatchesSpec) {
  Random rng(7);
  uint64_t counts[7] = {0};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    counts[static_cast<int>(tatp::PickTxnType(rng))]++;
  }
  EXPECT_NEAR(counts[0], kDraws * 0.35, kDraws * 0.02);  // GetSubscriberData
  EXPECT_NEAR(counts[1], kDraws * 0.10, kDraws * 0.02);  // GetNewDestination
  EXPECT_NEAR(counts[2], kDraws * 0.35, kDraws * 0.02);  // GetAccessData
  EXPECT_NEAR(counts[3], kDraws * 0.02, kDraws * 0.01);  // UpdateSubscriber
  EXPECT_NEAR(counts[4], kDraws * 0.14, kDraws * 0.02);  // UpdateLocation
  EXPECT_NEAR(counts[5], kDraws * 0.02, kDraws * 0.01);  // InsertCF
  EXPECT_NEAR(counts[6], kDraws * 0.02, kDraws * 0.01);  // DeleteCF
}

TEST_P(TatpTest, NonUniformSidInRangeAndSkewed) {
  Random rng(9);
  std::vector<uint64_t> histogram(kSubscribers + 1, 0);
  for (int i = 0; i < 200000; ++i) {
    uint64_t sid = tatp::NonUniformSid(rng, kSubscribers);
    ASSERT_GE(sid, 1u);
    ASSERT_LE(sid, kSubscribers);
    histogram[sid]++;
  }
  // The OR-based generator skews toward ids with more set bits; verify it is
  // not uniform (chi-square style: max/min ratio clearly > 1).
  uint64_t max_count = 0, min_count = ~uint64_t{0};
  for (uint64_t sid = 1; sid <= kSubscribers; ++sid) {
    max_count = std::max(max_count, histogram[sid]);
    min_count = std::min(min_count, histogram[sid]);
  }
  EXPECT_GT(max_count, 2 * (min_count + 1));
}

TEST_P(TatpTest, AllTransactionTypesExecute) {
  Random rng(11);
  for (int type = 0; type < 7; ++type) {
    int committed = 0;
    for (int i = 0; i < 50; ++i) {
      Status s = tatp::RunTatpTxn(*db_, tatp_, rng,
                                  static_cast<TatpTxnType>(type));
      if (s.ok()) ++committed;
    }
    EXPECT_GT(committed, 0) << "txn type " << type;
  }
  EXPECT_TRUE(tatp::CheckConsistency(*db_, tatp_));
}

TEST_P(TatpTest, ConcurrentMixKeepsConsistency) {
  constexpr int kThreads = 4;
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(100 + t);
      for (int i = 0; i < 2000; ++i) {
        Status s =
            tatp::RunTatpTxn(*db_, tatp_, rng, tatp::PickTxnType(rng));
        if (s.ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(committed.load(), 4000u);
  EXPECT_TRUE(tatp::CheckConsistency(*db_, tatp_));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, TatpTest,
                         ::testing::Values(Scheme::kSingleVersion,
                                           Scheme::kMultiVersionLocking,
                                           Scheme::kMultiVersionOptimistic),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheme::kSingleVersion:
                               return std::string("SV");
                             case Scheme::kMultiVersionLocking:
                               return std::string("MVL");
                             default:
                               return std::string("MVO");
                           }
                         });

}  // namespace
}  // namespace mvstore
