// MV/L-specific behavior (paper Section 4): record read locks in the End
// word, eager updates with wait-for dependencies, bucket locks, the
// NoMoreReadLocks starvation guard, and deadlock detection.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cc/mv_engine.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;
  uint64_t value;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

class PessimisticTest : public ::testing::Test {
 protected:
  PessimisticTest() {
    MVEngineOptions opts;
    opts.log_mode = LogMode::kDisabled;
    opts.deadlock_interval_us = 500;
    engine_ = std::make_unique<MVEngine>(opts);
    TableDef def;
    def.name = "rows";
    def.payload_size = sizeof(Row);
    def.indexes.push_back(IndexDef{&RowKey, 256, true});
    table_ = engine_->CreateTable(def);
  }

  Transaction* BeginPess(IsolationLevel iso) {
    return engine_->Begin(iso, /*pessimistic=*/true);
  }

  void Put(uint64_t key, uint64_t value) {
    Transaction* t = BeginPess(IsolationLevel::kReadCommitted);
    Row row{key, value};
    ASSERT_TRUE(engine_->Insert(t, table_, &row).ok());
    ASSERT_TRUE(engine_->Commit(t).ok());
  }

  /// The single visible version for `key` (test helper; single-threaded use).
  Version* VersionOf(uint64_t key) {
    Version* found = nullptr;
    engine_->table(table_).index(0).ScanBucket(key, [&](Version* v) {
      if (engine_->table(table_).index(0).KeyOf(v) == key) {
        uint64_t b = v->begin.load();
        if (!beginword::IsTxnId(b) && beginword::TimestampOf(b) != kInfinity) {
          uint64_t e = v->end.load();
          if (lockword::IsLockWord(e) ||
              lockword::TimestampOf(e) == kInfinity) {
            found = v;
            return false;
          }
        }
      }
      return true;
    });
    return found;
  }

  std::unique_ptr<MVEngine> engine_;
  TableId table_ = 0;
};

/// A serializable read takes a record read lock: ReadLockCount appears in
/// the End word (Section 4.1.1).
TEST_F(PessimisticTest, SerializableReadTakesRecordLock) {
  Put(1, 10);
  Transaction* t = BeginPess(IsolationLevel::kSerializable);
  Row row{};
  ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok());

  Version* v = VersionOf(1);
  ASSERT_NE(v, nullptr);
  uint64_t end_word = v->end.load();
  ASSERT_TRUE(lockword::IsLockWord(end_word));
  EXPECT_EQ(lockword::ReadCountOf(end_word), 1u);
  EXPECT_FALSE(lockword::HasWriter(end_word));

  ASSERT_TRUE(engine_->Commit(t).ok());
  // After commit the lock is gone and the word normalized to infinity.
  end_word = v->end.load();
  EXPECT_FALSE(lockword::IsLockWord(end_word));
  EXPECT_EQ(lockword::TimestampOf(end_word), kInfinity);
}

/// Read Committed takes no record locks (Section 4.3.1).
TEST_F(PessimisticTest, ReadCommittedTakesNoLock) {
  Put(1, 10);
  Transaction* t = BeginPess(IsolationLevel::kReadCommitted);
  Row row{};
  ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok());
  Version* v = VersionOf(1);
  ASSERT_NE(v, nullptr);
  EXPECT_FALSE(lockword::IsLockWord(v->end.load()));
  ASSERT_TRUE(engine_->Commit(t).ok());
}

/// Multiple concurrent readers share the lock (reader count accumulates).
TEST_F(PessimisticTest, MultipleReadersShareLock) {
  Put(1, 10);
  Transaction* t1 = BeginPess(IsolationLevel::kSerializable);
  Transaction* t2 = BeginPess(IsolationLevel::kSerializable);
  Row row{};
  ASSERT_TRUE(engine_->Read(t1, table_, 0, 1, &row).ok());
  ASSERT_TRUE(engine_->Read(t2, table_, 0, 1, &row).ok());
  Version* v = VersionOf(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(lockword::ReadCountOf(v->end.load()), 2u);
  ASSERT_TRUE(engine_->Commit(t1).ok());
  ASSERT_TRUE(engine_->Commit(t2).ok());
}

/// Eager update: a writer write-locks a read-locked version without
/// blocking, but cannot precommit until the reader releases (Section 4.2).
TEST_F(PessimisticTest, EagerUpdateWaitsForReader) {
  Put(1, 10);
  Transaction* reader = BeginPess(IsolationLevel::kRepeatableRead);
  Row row{};
  ASSERT_TRUE(engine_->Read(reader, table_, 0, 1, &row).ok());

  Transaction* writer = BeginPess(IsolationLevel::kReadCommitted);
  // Update succeeds immediately (no blocking during normal processing).
  ASSERT_TRUE(engine_->Update(writer, table_, 0, 1, [](void* p) {
                   static_cast<Row*>(p)->value = 11;
                 }).ok());
  EXPECT_EQ(writer->wait_for_counter.load(), 1);

  // Writer's commit must wait for the reader.
  std::atomic<bool> committed{false};
  std::thread commit_thread([&] {
    EXPECT_TRUE(engine_->Commit(writer).ok());
    committed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(committed.load());  // still parked on the wait-for dependency

  ASSERT_TRUE(engine_->Commit(reader).ok());  // releases the read lock
  commit_thread.join();
  EXPECT_TRUE(committed.load());

  Transaction* check = BeginPess(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(engine_->Read(check, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 11u);
  ASSERT_TRUE(engine_->Commit(check).ok());
}

/// A reader can read-lock an already write-locked version; the writer then
/// waits for that reader too (Section 4.2.1, second flavor).
TEST_F(PessimisticTest, ReaderLocksWriteLockedVersion) {
  Put(1, 10);
  Transaction* writer = BeginPess(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(engine_->Update(writer, table_, 0, 1, [](void* p) {
                   static_cast<Row*>(p)->value = 11;
                 }).ok());
  EXPECT_EQ(writer->wait_for_counter.load(), 0);  // no readers yet

  Transaction* reader = BeginPess(IsolationLevel::kRepeatableRead);
  Row row{};
  ASSERT_TRUE(engine_->Read(reader, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 10u);  // reads the (still latest committed) version
  EXPECT_EQ(writer->wait_for_counter.load(), 1);  // reader imposed the wait

  std::atomic<bool> committed{false};
  std::thread commit_thread([&] {
    EXPECT_TRUE(engine_->Commit(writer).ok());
    committed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(committed.load());
  ASSERT_TRUE(engine_->Commit(reader).ok());
  commit_thread.join();
}

/// Releasing the last read lock on a write-locked version sets
/// NoMoreReadLocks; later read-lock attempts abort (starvation guard).
TEST_F(PessimisticTest, NoMoreReadLocksBlocksLateReaders) {
  Put(1, 10);
  Transaction* writer = BeginPess(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(engine_->Update(writer, table_, 0, 1, [](void* p) {
                   static_cast<Row*>(p)->value = 11;
                 }).ok());

  Transaction* reader = BeginPess(IsolationLevel::kRepeatableRead);
  Row row{};
  ASSERT_TRUE(engine_->Read(reader, table_, 0, 1, &row).ok());
  ASSERT_TRUE(engine_->Commit(reader).ok());  // last release -> flag set

  Version* v = VersionOf(1);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(lockword::NoMoreReadLocks(v->end.load()));

  Transaction* late = BeginPess(IsolationLevel::kRepeatableRead);
  Status s = engine_->Read(late, table_, 0, 1, &row);
  ASSERT_TRUE(s.IsAborted());
  EXPECT_EQ(s.abort_reason(), AbortReason::kReadLockFailed);

  ASSERT_TRUE(engine_->Commit(writer).ok());
}

/// Serializable scans bucket-lock their buckets; inserters into a locked
/// bucket take a wait-for dependency and cannot commit first (Section 4.2.2).
TEST_F(PessimisticTest, BucketLockDelaysInserter) {
  Put(1, 10);
  Transaction* scanner = BeginPess(IsolationLevel::kSerializable);
  int seen = 0;
  ASSERT_TRUE(engine_->Scan(scanner, table_, 0, 99, nullptr, [&](const void*) {
                   ++seen;
                   return true;
                 }).ok());
  EXPECT_EQ(seen, 0);

  Transaction* inserter = BeginPess(IsolationLevel::kReadCommitted);
  Row row{99, 1};
  ASSERT_TRUE(engine_->Insert(inserter, table_, &row).ok());
  EXPECT_GE(inserter->wait_for_counter.load(), 1);

  std::atomic<bool> committed{false};
  std::thread commit_thread([&] {
    EXPECT_TRUE(engine_->Commit(inserter).ok());
    committed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(committed.load());  // must wait for the scanner

  ASSERT_TRUE(engine_->Commit(scanner).ok());
  commit_thread.join();
}

/// The scanner side of phantom protection: a serializable scanner that
/// encounters an invisible uncommitted insert imposes the dependency itself.
TEST_F(PessimisticTest, ScannerImposesDependencyOnInserter) {
  Transaction* inserter = BeginPess(IsolationLevel::kReadCommitted);
  Row row{42, 1};
  ASSERT_TRUE(engine_->Insert(inserter, table_, &row).ok());
  EXPECT_EQ(inserter->wait_for_counter.load(), 0);

  Transaction* scanner = BeginPess(IsolationLevel::kSerializable);
  int seen = 0;
  ASSERT_TRUE(engine_->Scan(scanner, table_, 0, 42, nullptr, [&](const void*) {
                   ++seen;
                   return true;
                 }).ok());
  EXPECT_EQ(seen, 0);  // uncommitted insert is invisible
  EXPECT_EQ(inserter->wait_for_counter.load(), 1);  // but it must now wait

  std::atomic<bool> committed{false};
  std::thread commit_thread([&] {
    EXPECT_TRUE(engine_->Commit(inserter).ok());
    committed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(committed.load());
  ASSERT_TRUE(engine_->Commit(scanner).ok());
  commit_thread.join();
}

/// Classic two-transaction deadlock through read locks + eager updates;
/// the detector (Tarjan over the wait-for graph) aborts one victim.
TEST_F(PessimisticTest, DeadlockDetectedAndResolved) {
  Put(1, 10);
  Put(2, 20);

  auto crossing_txn = [&](uint64_t read_key, uint64_t write_key, Status* out) {
    Transaction* t = BeginPess(IsolationLevel::kRepeatableRead);
    Row row{};
    Status s = engine_->Read(t, table_, 0, read_key, &row);
    if (s.IsAborted()) {
      *out = s;
      return;
    }
    s = engine_->Update(t, table_, 0, write_key, [](void* p) {
      static_cast<Row*>(p)->value += 1;
    });
    if (s.IsAborted()) {
      *out = s;
      return;
    }
    *out = engine_->Commit(t);
  };

  Status s1, s2;
  std::thread t1([&] { crossing_txn(1, 2, &s1); });
  std::thread t2([&] { crossing_txn(2, 1, &s2); });
  t1.join();
  t2.join();

  // At least one commits; if both waited, the detector broke the cycle.
  EXPECT_TRUE(s1.ok() || s2.ok());
  if (!(s1.ok() && s2.ok())) {
    const Status& failed = s1.ok() ? s2 : s1;
    EXPECT_TRUE(failed.IsAborted());
  }
}

/// Snapshot-isolation pessimistic transactions take no locks and read as of
/// begin time.
TEST_F(PessimisticTest, SnapshotPessimisticLockFree) {
  Put(1, 10);
  Transaction* t = BeginPess(IsolationLevel::kSnapshot);
  Row row{};

  Transaction* writer = BeginPess(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(engine_->Update(writer, table_, 0, 1, [](void* p) {
                   static_cast<Row*>(p)->value = 99;
                 }).ok());
  ASSERT_TRUE(engine_->Commit(writer).ok());

  ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 10u);  // begin-time snapshot
  ASSERT_TRUE(engine_->Commit(t).ok());
}

/// Mixed mode (Section 4.5): an optimistic writer honors a pessimistic
/// reader's record lock via a wait-for dependency.
TEST_F(PessimisticTest, OptimisticWriterHonorsReadLock) {
  Put(1, 10);
  Transaction* reader = BeginPess(IsolationLevel::kSerializable);
  Row row{};
  ASSERT_TRUE(engine_->Read(reader, table_, 0, 1, &row).ok());

  Transaction* opt_writer = engine_->Begin(IsolationLevel::kReadCommitted,
                                           /*pessimistic=*/false);
  ASSERT_TRUE(engine_->Update(opt_writer, table_, 0, 1, [](void* p) {
                   static_cast<Row*>(p)->value = 11;
                 }).ok());
  // One dependency from the read lock; the serializable reader's bucket lock
  // adds a second when the new version lands in the scanned bucket.
  EXPECT_GE(opt_writer->wait_for_counter.load(), 1);

  std::atomic<bool> committed{false};
  std::thread commit_thread([&] {
    EXPECT_TRUE(engine_->Commit(opt_writer).ok());
    committed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(committed.load());
  ASSERT_TRUE(engine_->Commit(reader).ok());
  commit_thread.join();
}

/// The 8-bit ReadLockCount saturates at 255 concurrent read lockers; the
/// 256th aborts rather than overflowing into the WriteLock field.
TEST_F(PessimisticTest, ReadLockCountSaturation) {
  Put(1, 10);
  std::vector<Transaction*> readers;
  Row row{};
  for (int i = 0; i < 255; ++i) {
    Transaction* t = BeginPess(IsolationLevel::kRepeatableRead);
    ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok()) << i;
    readers.push_back(t);
  }
  Version* v = VersionOf(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(lockword::ReadCountOf(v->end.load()), 255u);

  Transaction* overflow = BeginPess(IsolationLevel::kRepeatableRead);
  Status s = engine_->Read(overflow, table_, 0, 1, &row);
  ASSERT_TRUE(s.IsAborted());
  EXPECT_EQ(s.abort_reason(), AbortReason::kReadLockFailed);

  for (Transaction* t : readers) {
    ASSERT_TRUE(engine_->Commit(t).ok());
  }
  EXPECT_EQ(lockword::IsLockWord(v->end.load()), false);  // normalized
}

/// Read locks on non-latest versions are not required: a snapshot-ish read
/// of an older version under RR just proceeds (Section 4.3.1).
TEST_F(PessimisticTest, NoLockOnOlderVersions) {
  Put(1, 10);
  // Create version churn so older versions exist.
  for (int i = 0; i < 3; ++i) {
    Transaction* w = BeginPess(IsolationLevel::kReadCommitted);
    ASSERT_TRUE(engine_->Update(w, table_, 0, 1, [i](void* p) {
                     static_cast<Row*>(p)->value = 100 + i;
                   }).ok());
    ASSERT_TRUE(engine_->Commit(w).ok());
  }
  Transaction* t = BeginPess(IsolationLevel::kRepeatableRead);
  Row row{};
  ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 102u);
  ASSERT_TRUE(engine_->Commit(t).ok());
}

}  // namespace
}  // namespace mvstore
