// Memory-subsystem tests: slab allocation, magazine recycling, transaction
// pooling, and -- the part that matters for correctness -- the interaction
// between slot recycling and epoch-based reclamation: a recycled version
// slot must never be handed out while a concurrent lock-free scan could
// still dereference the old contents, and Version::Create must fully
// re-initialize a recycled slot.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "cc/mv_engine.h"
#include "common/random.h"
#include "core/database.h"
#include "mem/object_pool.h"
#include "mem/slab_allocator.h"

namespace mvstore {
namespace {

/// ---------------------------------------------------------------------------
/// SlabAllocator unit tests
/// ---------------------------------------------------------------------------

TEST(SlabAllocatorTest, RecyclesFreedSlots) {
  StatsCollector stats;
  SlabAllocator slab(48, &stats);
  EXPECT_GE(slab.slot_size(), 48u);
  EXPECT_EQ(slab.slot_size() % SlabAllocator::kSlotAlign, 0u);

  // Allocate a batch, remember the pointers, free them all.
  std::vector<void*> first;
  for (int i = 0; i < 200; ++i) first.push_back(slab.Allocate());
  std::set<void*> first_set(first.begin(), first.end());
  EXPECT_EQ(first_set.size(), first.size());  // all distinct
  for (void* p : first) slab.Free(p);

  // The next batch must come out of the recycled set, not new chunks. (A
  // few slots may be magazine leftovers carved but never handed out in the
  // first round, so require "almost all" rather than every one.)
  uint64_t chunks_before = slab.chunks_allocated();
  int recycled = 0;
  for (int i = 0; i < 200; ++i) {
    if (first_set.count(slab.Allocate())) ++recycled;
  }
  EXPECT_GE(recycled,
            200 - static_cast<int>(SlabAllocator::kMagazineCapacity));
  EXPECT_EQ(slab.chunks_allocated(), chunks_before);
}

TEST(SlabAllocatorTest, SlotsAreAligned) {
  SlabAllocator slab(24);
  for (int i = 0; i < 100; ++i) {
    auto addr = reinterpret_cast<uintptr_t>(slab.Allocate());
    EXPECT_EQ(addr % SlabAllocator::kSlotAlign, 0u);
  }
}

TEST(SlabAllocatorTest, CrossThreadFreeMigratesThroughSpine) {
  SlabAllocator slab(64);
  // Allocate enough on this thread to overflow a magazine several times.
  constexpr int kSlots = 4 * SlabAllocator::kMagazineCapacity;
  std::vector<void*> slots;
  for (int i = 0; i < kSlots; ++i) slots.push_back(slab.Allocate());

  // Free them all from another thread (GC / epoch reclamation shape).
  std::thread freer([&] {
    for (void* p : slots) slab.Free(p);
  });
  freer.join();

  // This thread's magazine is empty, so reallocations refill from the spine
  // where the freer's overflow landed; at least some pointers must recycle.
  std::set<void*> old_set(slots.begin(), slots.end());
  int recycled = 0;
  for (int i = 0; i < kSlots; ++i) {
    if (old_set.count(slab.Allocate())) ++recycled;
  }
  EXPECT_GT(recycled, 0);
}

TEST(SlabAllocatorTest, ExportsCounters) {
  StatsCollector stats;
  SlabAllocator slab(128, &stats);
  std::vector<void*> slots;
  for (int i = 0; i < 3000; ++i) slots.push_back(slab.Allocate());
  for (void* p : slots) slab.Free(p);
  for (int i = 0; i < 3000; ++i) slab.Allocate();

  EXPECT_GT(stats.Get(Stat::kSlabChunksAllocated), 0u);
  EXPECT_EQ(stats.Get(Stat::kSlabChunksAllocated), slab.chunks_allocated());
  // 3000 hits/recycles overflow the local-tally flush threshold (1024), so
  // the exported counters must have caught up at least partially.
  EXPECT_GT(stats.Get(Stat::kSlabMagazineHits), 0u);
  EXPECT_GT(stats.Get(Stat::kSlabSlotsRecycled), 0u);
  EXPECT_GT(stats.Get(Stat::kSlabMagazineMisses), 0u);
}

TEST(SlabAllocatorTest, ThreadExitFlushesSubThresholdTallies) {
  StatsCollector stats;
  SlabAllocator slab(128, &stats);
  // A handful of hot-path events, all after the thread's last slow path
  // (the first Allocate refills the magazine and flushes local tallies;
  // everything after stays below kStatsFlushMask and never fills or drains
  // the magazine). These tallies are visible only if the thread-exit hook
  // flushes the magazine — the allocator is still alive, so the
  // destructor's catch-all has not run.
  std::thread worker([&slab] {
    void* slots[8];
    for (int i = 0; i < 8; ++i) slots[i] = slab.Allocate();
    for (int i = 0; i < 8; ++i) slab.Free(slots[i]);
  });
  worker.join();
  // First Allocate is the refilling miss, the next 7 pop from the magazine.
  EXPECT_EQ(stats.Get(Stat::kSlabMagazineHits), 7u);
  EXPECT_EQ(stats.Get(Stat::kSlabSlotsRecycled), 8u);
}

/// ---------------------------------------------------------------------------
/// Version placement-reinitialization on a recycled slot
/// ---------------------------------------------------------------------------

struct Row {
  uint64_t key;
  uint64_t a;
  uint64_t b;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

TEST(SlabRecycleTest, VersionCreateFullyReinitializesRecycledSlot) {
  TableDef def;
  def.name = "t";
  def.payload_size = sizeof(Row);
  def.indexes.push_back(IndexDef{&RowKey, 64, true});
  def.indexes.push_back(IndexDef{&RowKey, 64, false});
  Table table(0, def, TableMemoryOptions{/*use_slab=*/true, nullptr});
  ASSERT_NE(table.slab(), nullptr);

  Row row{7, 1, 2};
  Version* v = table.AllocateVersion(&row);
  // Scribble over every header field a recycled slot could leak.
  v->begin.store(0xDEADBEEF, std::memory_order_relaxed);
  v->end.store(0xFEEDFACE, std::memory_order_relaxed);
  v->Next(0).store(reinterpret_cast<Version*>(0x1234),
                   std::memory_order_relaxed);
  v->Next(1).store(reinterpret_cast<Version*>(0x5678),
                   std::memory_order_relaxed);
  std::memset(v->Payload(), 0xAB, sizeof(Row));
  table.FreeUnpublishedVersion(v);

  // The very next allocation reuses the magazine top -- the same slot.
  Row row2{9, 3, 4};
  Version* v2 = table.AllocateVersion(&row2);
  ASSERT_EQ(static_cast<void*>(v2), static_cast<void*>(v));
  EXPECT_EQ(beginword::TimestampOf(v2->begin.load()), kInfinity);
  EXPECT_EQ(lockword::TimestampOf(v2->end.load()), kInfinity);
  EXPECT_EQ(v2->Next(0).load(), nullptr);
  EXPECT_EQ(v2->Next(1).load(), nullptr);
  EXPECT_EQ(v2->num_indexes(), 2u);
  EXPECT_EQ(v2->payload_size(), sizeof(Row));
  EXPECT_EQ(std::memcmp(v2->Payload(), &row2, sizeof(Row)), 0);
  table.FreeUnpublishedVersion(v2);
}

/// ---------------------------------------------------------------------------
/// ObjectPool unit tests
/// ---------------------------------------------------------------------------

struct PooledThing {
  PooledThing() = default;
  explicit PooledThing(int v) : value(v) { payload.assign(16, v); }
  void Reset(int v) {
    value = v;
    payload.clear();
  }
  int value = 0;
  std::vector<int> payload;
};

TEST(ObjectPoolTest, RecyclesAndResets) {
  ObjectPool<PooledThing> pool(/*enabled=*/true);
  PooledThing* a = pool.Acquire(1);
  a->payload.assign(100, 1);
  size_t cap = a->payload.capacity();
  pool.Release(a);
  PooledThing* b = pool.Acquire(2);
  EXPECT_EQ(b, a);  // recycled
  EXPECT_EQ(b->value, 2);
  EXPECT_TRUE(b->payload.empty());
  EXPECT_GE(b->payload.capacity(), cap);  // capacity survived the recycle
  pool.Release(b);
}

TEST(ObjectPoolTest, DisabledModeUsesHeap) {
  ObjectPool<PooledThing> pool(/*enabled=*/false);
  PooledThing* a = pool.Acquire(1);
  EXPECT_EQ(a->value, 1);
  pool.Release(a);  // must not leak (ASan would flag it)
}

/// ---------------------------------------------------------------------------
/// Engine stress: writers churn versions while GC recycles them into the
/// slab, concurrent readers scan lock-free. If a slot were recycled before
/// its epoch is safe, a reader would observe a torn/garbage payload: every
/// row carries a checksum over its fields, verified on every read.
/// ---------------------------------------------------------------------------

struct CheckedRow {
  uint64_t key;
  uint64_t value;
  uint64_t checksum;  // key * 31 + value
  static uint64_t Checksum(uint64_t k, uint64_t v) { return k * 31 + v; }
};
uint64_t CheckedRowKey(const void* p) {
  return static_cast<const CheckedRow*>(p)->key;
}

class SlabChurnTest : public ::testing::TestWithParam<bool> {};

TEST_P(SlabChurnTest, RecycledSlotsNeverVisibleBeforeEpochSafe) {
  const bool use_slab = GetParam();
  DatabaseOptions opts;
  opts.scheme = Scheme::kMultiVersionOptimistic;
  opts.log_mode = LogMode::kDisabled;
  opts.gc_interval_us = 100;  // aggressive reclamation
  opts.use_slab_allocator = use_slab;
  Database db(opts);

  constexpr uint64_t kRows = 64;
  TableDef def;
  def.name = "churn";
  def.payload_size = sizeof(CheckedRow);
  def.indexes.push_back(IndexDef{&CheckedRowKey, kRows, true});
  TableId table = db.CreateTable(def);
  for (uint64_t k = 0; k < kRows; ++k) {
    CheckedRow row{k, 0, CheckedRow::Checksum(k, 0)};
    ASSERT_TRUE(db.RunTransaction(IsolationLevel::kReadCommitted,
                                  [&](Txn* t) {
                                    return db.Insert(t, table, &row);
                                  })
                    .ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> corruptions{0};
  std::atomic<uint64_t> updates{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {
      Random rng(0xBEEF + w);
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t key = rng.Uniform(kRows);
        Status s = db.RunTransaction(
            IsolationLevel::kReadCommitted, [&](Txn* t) {
              return db.Update(t, table, 0, key, [&](void* p) {
                auto* row = static_cast<CheckedRow*>(p);
                row->value += 1;
                row->checksum = CheckedRow::Checksum(row->key, row->value);
              });
            });
        if (s.ok()) updates.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    workers.emplace_back([&, r] {
      Random rng(0xF00D + r);
      CheckedRow out;
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t key = rng.Uniform(kRows);
        Status s = db.RunTransaction(
            IsolationLevel::kReadCommitted, [&](Txn* t) {
              return db.Read(t, table, 0, key, &out);
            });
        if (s.ok()) {
          if (out.checksum != CheckedRow::Checksum(out.key, out.value) ||
              out.key != key) {
            corruptions.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();

  EXPECT_EQ(corruptions.load(), 0u);
  EXPECT_GT(updates.load(), 0u);

  StatsCollector& stats = db.stats();
  EXPECT_GT(stats.Get(Stat::kVersionsCollected), 0u);
  if (use_slab) {
    // Drain GC + epochs so the reclaimed versions actually reached Free()
    // and the local tallies flushed, then confirm slots recycled into the
    // slab rather than the heap.
    db.mv_engine()->gc().RunOnce();
    db.mv_engine()->epoch().TryAdvanceAndReclaim();
    EXPECT_GT(stats.Get(Stat::kSlabChunksAllocated), 0u);
    Table& t = db.mv_engine()->table(table);
    ASSERT_NE(t.slab(), nullptr);
  } else {
    EXPECT_EQ(stats.Get(Stat::kSlabChunksAllocated), 0u);
    EXPECT_EQ(db.mv_engine()->table(table).slab(), nullptr);
  }

  // Final integrity sweep: every row readable and checksum-consistent.
  for (uint64_t k = 0; k < kRows; ++k) {
    CheckedRow out;
    ASSERT_TRUE(db.RunTransaction(IsolationLevel::kReadCommitted,
                                  [&](Txn* t) {
                                    return db.Read(t, table, 0, k, &out);
                                  })
                    .ok());
    EXPECT_EQ(out.key, k);
    EXPECT_EQ(out.checksum, CheckedRow::Checksum(out.key, out.value));
  }
}

INSTANTIATE_TEST_SUITE_P(SlabAndHeap, SlabChurnTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "slab" : "heap";
                         });

/// Transaction pool: recycled MV transaction objects must behave like fresh
/// ones across the whole lifecycle (the pool reuses them after epoch
/// reclamation, so a long run cycles each object many times).
TEST(TxnPoolTest, RecycledTransactionsAreClean) {
  MVEngineOptions opts;
  opts.log_mode = LogMode::kDisabled;
  opts.gc_interval_us = 0;
  opts.deadlock_interval_us = 0;
  opts.use_slab_allocator = true;
  MVEngine engine(opts);

  TableDef def;
  def.name = "t";
  def.payload_size = sizeof(Row);
  def.indexes.push_back(IndexDef{&RowKey, 64, true});
  TableId table = engine.CreateTable(def);

  for (int i = 0; i < 2000; ++i) {
    Transaction* txn = engine.Begin(IsolationLevel::kSerializable, false);
    EXPECT_EQ(txn->state.load(), TxnState::kActive);
    EXPECT_TRUE(txn->read_set.empty());
    EXPECT_TRUE(txn->write_set.empty());
    EXPECT_TRUE(txn->scan_set.empty());
    EXPECT_FALSE(txn->abort_now.load());
    Row row{static_cast<uint64_t>(i % 8), 1, 2};
    if (i % 8 == 0) {
      // Mix in aborts so both release paths recycle.
      engine.Insert(txn, table, &row);
      engine.Abort(txn);
    } else {
      Status s = engine.Update(txn, table, 0, row.key, [](void* p) {
        static_cast<Row*>(p)->a += 1;
      });
      if (s.ok() || s.IsNotFound()) {
        if (s.IsNotFound()) engine.Insert(txn, table, &row);
        engine.Commit(txn);
      }
    }
    // Recycling requires epochs to pass; nudge the manager.
    if (i % 64 == 0) engine.epoch().TryAdvanceAndReclaim();
  }
  EXPECT_GT(engine.stats().Get(Stat::kTxnPoolHits), 0u);
}

}  // namespace
}  // namespace mvstore
