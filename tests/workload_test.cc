// Workload generator helpers (paper Section 5.1): table loading, the R/W
// transaction bodies, and the long-reader body.
#include "workload/homogeneous.h"

#include <gtest/gtest.h>

namespace mvstore {
namespace {

class WorkloadTest : public ::testing::TestWithParam<Scheme> {
 protected:
  WorkloadTest() {
    DatabaseOptions opts;
    opts.scheme = GetParam();
    opts.log_mode = LogMode::kDisabled;
    db_ = std::make_unique<Database>(opts);
  }
  std::unique_ptr<Database> db_;
};

TEST_P(WorkloadTest, LoadCreatesAllRows) {
  TableId table = workload::CreateAndLoadRows(*db_, 500);
  Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
  workload::Row24 row{};
  for (uint64_t k : {uint64_t{0}, uint64_t{250}, uint64_t{499}}) {
    ASSERT_TRUE(db_->Read(txn, table, 0, k, &row).ok());
    EXPECT_EQ(row.key, k);
    EXPECT_EQ(row.value, k * 10);
  }
  EXPECT_TRUE(db_->Read(txn, table, 0, 500, &row).IsNotFound());
  ASSERT_TRUE(db_->Commit(txn).ok());
}

TEST_P(WorkloadTest, UpdateTxnPerformsRAndW) {
  TableId table = workload::CreateAndLoadRows(*db_, 100);
  Random rng(3);
  int committed = 0;
  for (int i = 0; i < 50; ++i) {
    if (workload::RunUpdateTxn(*db_, table, rng, 100, 10, 2,
                               IsolationLevel::kReadCommitted)
            .ok()) {
      ++committed;
    }
  }
  EXPECT_GT(committed, 0);
  // 2 writes per committed txn, each +1 on a row's value: total delta
  // equals 2 * committed.
  int64_t total_delta = 0;
  Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
  workload::Row24 row{};
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(db_->Read(txn, table, 0, k, &row).ok());
    total_delta += static_cast<int64_t>(row.value) -
                   static_cast<int64_t>(k * 10);
  }
  ASSERT_TRUE(db_->Commit(txn).ok());
  EXPECT_EQ(total_delta, 2 * committed);
}

TEST_P(WorkloadTest, ReadOnlyTxnTouchesNothing) {
  TableId table = workload::CreateAndLoadRows(*db_, 100);
  Random rng(4);
  ASSERT_TRUE(workload::RunReadOnlyTxn(*db_, table, rng, 100, 10,
                                       IsolationLevel::kReadCommitted)
                  .ok());
  Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
  workload::Row24 row{};
  ASSERT_TRUE(db_->Read(txn, table, 0, 7, &row).ok());
  EXPECT_EQ(row.value, 70u);
  ASSERT_TRUE(db_->Commit(txn).ok());
}

TEST_P(WorkloadTest, LongReadTxnChecksumsRows) {
  TableId table = workload::CreateAndLoadRows(*db_, 200);
  Random rng(5);
  uint64_t checksum = 0;
  ASSERT_TRUE(
      workload::RunLongReadTxn(*db_, table, rng, 200, 50, &checksum).ok());
  EXPECT_GT(checksum, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, WorkloadTest,
                         ::testing::Values(Scheme::kSingleVersion,
                                           Scheme::kMultiVersionLocking,
                                           Scheme::kMultiVersionOptimistic),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheme::kSingleVersion:
                               return std::string("SV");
                             case Scheme::kMultiVersionLocking:
                               return std::string("MVL");
                             default:
                               return std::string("MVO");
                           }
                         });

}  // namespace
}  // namespace mvstore
