// Full-table scans (paper Section 2.1: "To scan a table, one simply scans
// all buckets of any index on the table").
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/random.h"
#include "core/database.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;
  int64_t value;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

class ScanTableTest : public ::testing::TestWithParam<Scheme> {
 protected:
  ScanTableTest() {
    DatabaseOptions opts;
    opts.scheme = GetParam();
    opts.log_mode = LogMode::kDisabled;
    db_ = std::make_unique<Database>(opts);
    TableDef def;
    def.name = "rows";
    def.payload_size = sizeof(Row);
    def.indexes.push_back(IndexDef{&RowKey, 256, true});
    table_ = db_->CreateTable(def);
  }

  void Put(uint64_t key, int64_t value) {
    ASSERT_TRUE(db_->RunTransaction(IsolationLevel::kReadCommitted,
                                    [&](Txn* t) {
                                      Row row{key, value};
                                      return db_->Insert(t, table_, &row);
                                    })
                    .ok());
  }

  std::unique_ptr<Database> db_;
  TableId table_ = 0;
};

TEST_P(ScanTableTest, SeesAllCommittedRows) {
  for (uint64_t k = 0; k < 100; ++k) Put(k, static_cast<int64_t>(k));
  std::set<uint64_t> seen;
  Status s = db_->RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
    seen.clear();
    return db_->ScanTable(t, table_, [&](const void* p) {
      seen.insert(static_cast<const Row*>(p)->key);
      return true;
    });
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(seen.size(), 100u);
}

TEST_P(ScanTableTest, EarlyStopHonored) {
  for (uint64_t k = 0; k < 50; ++k) Put(k, 1);
  int visited = 0;
  ASSERT_TRUE(db_->RunTransaction(IsolationLevel::kReadCommitted,
                                  [&](Txn* t) {
                                    return db_->ScanTable(t, table_,
                                                          [&](const void*) {
                                                            return ++visited <
                                                                   10;
                                                          });
                                  })
                  .ok());
  EXPECT_EQ(visited, 10);
}

TEST_P(ScanTableTest, UncommittedAndDeletedRowsExcluded) {
  if (GetParam() == Scheme::kSingleVersion) {
    GTEST_SKIP() << "1V full scans block on uncommitted writers instead";
  }
  Put(1, 10);
  Put(2, 20);
  // Delete row 2 (committed); insert row 3 (uncommitted).
  ASSERT_TRUE(db_->RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
                  return db_->Delete(t, table_, 0, 2);
                }).ok());
  Txn* pending = db_->Begin(IsolationLevel::kReadCommitted);
  Row row{3, 30};
  ASSERT_TRUE(db_->Insert(pending, table_, &row).ok());

  std::set<uint64_t> seen;
  ASSERT_TRUE(db_->RunTransaction(IsolationLevel::kReadCommitted,
                                  [&](Txn* t) {
                                    seen.clear();
                                    return db_->ScanTable(
                                        t, table_, [&](const void* p) {
                                          seen.insert(
                                              static_cast<const Row*>(p)->key);
                                          return true;
                                        });
                                  })
                  .ok());
  EXPECT_EQ(seen, std::set<uint64_t>{1});
  db_->Abort(pending);
}

TEST_P(ScanTableTest, SnapshotScanIsConsistentUnderChurn) {
  if (GetParam() == Scheme::kSingleVersion) {
    GTEST_SKIP() << "1V has no snapshot scans";
  }
  constexpr uint64_t kRows = 32;
  constexpr int64_t kInitial = 100;
  for (uint64_t k = 0; k < kRows; ++k) Put(k, kInitial);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Random rng(5);
    while (!stop.load()) {
      db_->RunTransaction(
          IsolationLevel::kReadCommitted,
          [&](Txn* t) {
            uint64_t a = rng.Uniform(kRows);
            uint64_t b = (a + 1) % kRows;
            Status s = db_->Update(t, table_, 0, a, [](void* p) {
              static_cast<Row*>(p)->value -= 3;
            });
            if (!s.ok()) return s;
            return db_->Update(t, table_, 0, b, [](void* p) {
              static_cast<Row*>(p)->value += 3;
            });
          },
          /*max_retries=*/50);
    }
  });

  for (int i = 0; i < 50; ++i) {
    int64_t total = 0;
    Status s = db_->RunTransaction(IsolationLevel::kSnapshot, [&](Txn* t) {
      total = 0;
      return db_->ScanTable(t, table_, [&](const void* p) {
        total += static_cast<const Row*>(p)->value;
        return true;
      });
    });
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(total, static_cast<int64_t>(kRows) * kInitial);
  }
  stop.store(true);
  writer.join();
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ScanTableTest,
                         ::testing::Values(Scheme::kSingleVersion,
                                           Scheme::kMultiVersionLocking,
                                           Scheme::kMultiVersionOptimistic),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheme::kSingleVersion:
                               return std::string("SV");
                             case Scheme::kMultiVersionLocking:
                               return std::string("MVL");
                             default:
                               return std::string("MVO");
                           }
                         });

}  // namespace
}  // namespace mvstore
