// Recovery: parse + replay redo logs, rebuilding identical database
// contents from the log alone.
#include "core/recovery.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/random.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;
  uint64_t value;
  uint64_t extra;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

TableId MakeTable(Database& db) {
  TableDef def;
  def.name = "rows";
  def.payload_size = sizeof(Row);
  def.indexes.push_back(IndexDef{&RowKey, 256, true});
  return db.CreateTable(def);
}

class RecoveryTest : public ::testing::TestWithParam<Scheme> {
 protected:
  RecoveryTest() {
    std::snprintf(path_, sizeof(path_), "/tmp/mvstore_recovery_%d_%d.log",
                  static_cast<int>(GetParam()), ::getpid());
  }
  ~RecoveryTest() override { std::remove(path_); }

  DatabaseOptions LoggedOptions() {
    DatabaseOptions opts;
    opts.scheme = GetParam();
    opts.log_mode = LogMode::kSync;  // deterministic: every commit on disk
    opts.log_path = path_;
    return opts;
  }

  char path_[128];
};

TEST_P(RecoveryTest, RebuildsInsertsUpdatesDeletes) {
  // Phase 1: run a workload against a logged database, then close it.
  std::vector<std::pair<uint64_t, uint64_t>> expected;  // surviving key->value
  {
    Database db(LoggedOptions());
    TableId table = MakeTable(db);
    for (uint64_t k = 0; k < 50; ++k) {
      ASSERT_TRUE(db.RunTransaction(IsolationLevel::kReadCommitted,
                                    [&](Txn* t) {
                                      Row row{k, k * 10, 7};
                                      return db.Insert(t, table, &row);
                                    })
                      .ok());
    }
    // Update even keys, delete keys divisible by 5.
    for (uint64_t k = 0; k < 50; k += 2) {
      ASSERT_TRUE(db.RunTransaction(IsolationLevel::kReadCommitted,
                                    [&](Txn* t) {
                                      return db.Update(t, table, 0, k,
                                                       [](void* p) {
                                                         static_cast<Row*>(p)
                                                             ->value += 1;
                                                       });
                                    })
                      .ok());
    }
    for (uint64_t k = 0; k < 50; k += 5) {
      ASSERT_TRUE(db.RunTransaction(IsolationLevel::kReadCommitted,
                                    [&](Txn* t) {
                                      return db.Delete(t, table, 0, k);
                                    })
                      .ok());
    }
    // An aborted transaction must leave no trace in the log.
    Txn* doomed = db.Begin(IsolationLevel::kReadCommitted);
    Row row{999, 1, 1};
    ASSERT_TRUE(db.Insert(doomed, table, &row).ok());
    db.Abort(doomed);

    for (uint64_t k = 0; k < 50; ++k) {
      if (k % 5 == 0) continue;
      expected.emplace_back(k, k * 10 + (k % 2 == 0 ? 1 : 0));
    }
  }  // database destroyed; log flushed

  // Phase 2: recover into a fresh database.
  DatabaseOptions fresh;
  fresh.scheme = GetParam();
  fresh.log_mode = LogMode::kDisabled;
  Database recovered(fresh);
  TableId table = MakeTable(recovered);
  ASSERT_TRUE(RecoverFromLogFile(recovered, path_).ok());

  for (const auto& [key, value] : expected) {
    Row row{};
    Status s = recovered.RunTransaction(
        IsolationLevel::kReadCommitted,
        [&](Txn* t) { return recovered.Read(t, table, 0, key, &row); });
    ASSERT_TRUE(s.ok()) << "key " << key;
    EXPECT_EQ(row.value, value) << "key " << key;
    EXPECT_EQ(row.extra, 7u);
  }
  // Deleted and aborted keys are absent.
  for (uint64_t k : {uint64_t{0}, uint64_t{5}, uint64_t{999}}) {
    Row row{};
    Status s = recovered.RunTransaction(
        IsolationLevel::kReadCommitted,
        [&](Txn* t) { return recovered.Read(t, table, 0, k, &row); });
    EXPECT_TRUE(s.IsNotFound()) << "key " << k;
  }
}

TEST_P(RecoveryTest, ReplayIsOrderedByEndTimestamp) {
  // Hand-build two records out of order; replay must apply the smaller
  // end timestamp first (insert before update).
  DatabaseOptions fresh;
  fresh.scheme = GetParam();
  fresh.log_mode = LogMode::kDisabled;
  Database db(fresh);
  TableId table = MakeTable(db);

  Row v0{1, 100, 0};
  Row v1 = v0;
  v1.value = 200;

  std::vector<uint8_t> log;
  {
    LogRecordBuilder b(log);  // the *later* update, first in the stream
    b.BeginRecord(/*end_ts=*/20, /*txn=*/2);
    b.AddUpdate(table, 1, &v0, &v1, sizeof(Row));
    b.EndRecord();
  }
  {
    LogRecordBuilder b(log);
    b.BeginRecord(/*end_ts=*/10, /*txn=*/1);
    b.AddInsert(table, &v0, sizeof(Row));
    b.EndRecord();
  }

  std::vector<ParsedLogRecord> records;
  ASSERT_TRUE(ParseAllRecords(log, &records));
  ASSERT_EQ(records.size(), 2u);
  ASSERT_TRUE(ReplayRecords(db, std::move(records)).ok());

  Row row{};
  ASSERT_TRUE(db.RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* t) {
                  return db.Read(t, table, 0, 1, &row);
                }).ok());
  EXPECT_EQ(row.value, 200u);
}

TEST_P(RecoveryTest, CorruptTailReportsValidPrefix) {
  std::vector<uint8_t> log;
  {
    LogRecordBuilder b(log);
    b.BeginRecord(1, 1);
    b.AddDelete(0, 42);
    b.EndRecord();
  }
  const size_t record_bytes = log.size();
  log.push_back(0xFF);  // trailing garbage (torn batch)
  std::vector<ParsedLogRecord> records;
  size_t valid = 0;
  EXPECT_FALSE(ParseAllRecords(log, &records, &valid));
  EXPECT_EQ(records.size(), 1u);       // the intact prefix survives
  EXPECT_EQ(valid, record_bytes);      // and the truncation point is exact
}

TEST_P(RecoveryTest, MissingFileYieldsEmptyLog) {
  EXPECT_TRUE(ReadLogFile("/tmp/definitely_not_here.log").empty());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, RecoveryTest,
                         ::testing::Values(Scheme::kSingleVersion,
                                           Scheme::kMultiVersionLocking,
                                           Scheme::kMultiVersionOptimistic),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheme::kSingleVersion:
                               return std::string("SV");
                             case Scheme::kMultiVersionLocking:
                               return std::string("MVL");
                             default:
                               return std::string("MVO");
                           }
                         });

}  // namespace
}  // namespace mvstore
