// The public Database facade: RunTransaction retry semantics, scheme
// selection, accessors, and the mixed optimistic/pessimistic coexistence
// mode (paper Section 4.5) exercised through the MVEngine directly.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cc/mv_engine.h"
#include "common/random.h"
#include "core/database.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;
  int64_t value;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

TableId MakeTable(Database& db) {
  TableDef def;
  def.name = "rows";
  def.payload_size = sizeof(Row);
  def.indexes.push_back(IndexDef{&RowKey, 256, true});
  return db.CreateTable(def);
}

TEST(DatabaseApiTest, PayloadSizeMatchesDef) {
  for (Scheme scheme : {Scheme::kSingleVersion, Scheme::kMultiVersionOptimistic}) {
    DatabaseOptions opts;
    opts.scheme = scheme;
    opts.log_mode = LogMode::kDisabled;
    Database db(opts);
    TableId t = MakeTable(db);
    EXPECT_EQ(db.PayloadSize(t), sizeof(Row));
    EXPECT_EQ(db.scheme(), scheme);
  }
}

TEST(DatabaseApiTest, EngineAccessorsMatchScheme) {
  DatabaseOptions opts;
  opts.scheme = Scheme::kSingleVersion;
  Database sv(opts);
  EXPECT_EQ(sv.mv_engine(), nullptr);
  EXPECT_NE(sv.sv_engine(), nullptr);

  opts.scheme = Scheme::kMultiVersionLocking;
  Database mv(opts);
  EXPECT_NE(mv.mv_engine(), nullptr);
  EXPECT_EQ(mv.sv_engine(), nullptr);
}

TEST(DatabaseApiTest, RunTransactionCommits) {
  DatabaseOptions opts;
  opts.log_mode = LogMode::kDisabled;
  Database db(opts);
  TableId t = MakeTable(db);
  Status s = db.RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* txn) {
    Row row{1, 10};
    return db.Insert(txn, t, &row);
  });
  EXPECT_TRUE(s.ok());
}

TEST(DatabaseApiTest, RunTransactionReturnsNonAbortErrors) {
  DatabaseOptions opts;
  opts.log_mode = LogMode::kDisabled;
  Database db(opts);
  TableId t = MakeTable(db);
  Status s = db.RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* txn) {
    Row row{};
    return db.Read(txn, t, 0, 404, &row);  // NotFound
  });
  EXPECT_TRUE(s.IsNotFound());
}

TEST(DatabaseApiTest, RunTransactionRetriesThroughConflicts) {
  DatabaseOptions opts;
  opts.log_mode = LogMode::kDisabled;
  Database db(opts);
  TableId t = MakeTable(db);
  ASSERT_TRUE(db.RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* txn) {
                  Row row{1, 0};
                  return db.Insert(txn, t, &row);
                }).ok());

  constexpr int kThreads = 4, kEach = 100;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int n = 0; n < kEach; ++n) {
        Status s =
            db.RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* txn) {
              return db.Update(txn, t, 0, 1, [](void* p) {
                static_cast<Row*>(p)->value += 1;
              });
            });
        ASSERT_TRUE(s.ok());
      }
    });
  }
  for (auto& th : threads) th.join();

  Row row{};
  ASSERT_TRUE(db.RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* txn) {
                  return db.Read(txn, t, 0, 1, &row);
                }).ok());
  EXPECT_EQ(row.value, kThreads * kEach);
}

/// Coexistence stress (Section 4.5): optimistic and pessimistic
/// transactions mixed on the same MV engine preserve the bank invariant.
TEST(CoexistenceTest, MixedSchemesPreserveInvariant) {
  MVEngineOptions opts;
  opts.log_mode = LogMode::kDisabled;
  opts.deadlock_interval_us = 500;
  MVEngine engine(opts);
  TableDef def;
  def.name = "accounts";
  def.payload_size = sizeof(Row);
  def.indexes.push_back(IndexDef{&RowKey, 64, true});
  TableId table = engine.CreateTable(def);

  constexpr uint64_t kAccounts = 16;
  constexpr int64_t kInitial = 100;
  for (uint64_t k = 0; k < kAccounts; ++k) {
    Transaction* txn = engine.Begin(IsolationLevel::kReadCommitted, false);
    Row row{k, kInitial};
    ASSERT_TRUE(engine.Insert(txn, table, &row).ok());
    ASSERT_TRUE(engine.Commit(txn).ok());
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    bool pessimistic = (t % 2 == 0);  // alternate MV/L and MV/O workers
    threads.emplace_back([&, t, pessimistic] {
      Random rng(t + 1);
      IsolationLevel iso = (t % 3 == 0) ? IsolationLevel::kSerializable
                                        : IsolationLevel::kRepeatableRead;
      for (int i = 0; i < 300; ++i) {
        uint64_t from = rng.Uniform(kAccounts);
        uint64_t to = (from + 1 + rng.Uniform(kAccounts - 1)) % kAccounts;
        Transaction* txn = engine.Begin(iso, pessimistic);
        Status s = engine.Update(txn, table, 0, from, [](void* p) {
          static_cast<Row*>(p)->value -= 1;
        });
        if (s.IsAborted()) continue;
        if (s.ok()) {
          s = engine.Update(txn, table, 0, to, [](void* p) {
            static_cast<Row*>(p)->value += 1;
          });
        }
        if (s.IsAborted()) continue;
        if (s.ok()) {
          engine.Commit(txn);
        } else {
          engine.Abort(txn);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  Transaction* audit = engine.Begin(IsolationLevel::kSnapshot, false, true);
  int64_t total = 0;
  for (uint64_t k = 0; k < kAccounts; ++k) {
    Row row{};
    ASSERT_TRUE(engine.Read(audit, table, 0, k, &row).ok());
    total += row.value;
  }
  ASSERT_TRUE(engine.Commit(audit).ok());
  EXPECT_EQ(total, static_cast<int64_t>(kAccounts) * kInitial);
}

/// The GC keeps version chains bounded through sustained mixed churn.
TEST(CoexistenceTest, VersionChainsStayBounded) {
  MVEngineOptions opts;
  opts.log_mode = LogMode::kDisabled;
  opts.gc_interval_us = 500;
  MVEngine engine(opts);
  TableDef def;
  def.name = "hot";
  def.payload_size = sizeof(Row);
  def.indexes.push_back(IndexDef{&RowKey, 16, true});
  TableId table = engine.CreateTable(def);
  {
    Transaction* txn = engine.Begin(IsolationLevel::kReadCommitted, false);
    Row row{1, 0};
    ASSERT_TRUE(engine.Insert(txn, table, &row).ok());
    ASSERT_TRUE(engine.Commit(txn).ok());
  }
  for (int i = 0; i < 5000; ++i) {
    Transaction* txn = engine.Begin(IsolationLevel::kReadCommitted, i % 2);
    Status s = engine.Update(txn, table, 0, 1, [](void* p) {
      static_cast<Row*>(p)->value += 1;
    });
    if (s.ok()) {
      engine.Commit(txn);
    } else if (!s.IsAborted()) {
      engine.Abort(txn);
    }
  }
  engine.gc().RunOnce();
  EXPECT_LE(engine.table(table).index(0).CountEntries(), 2u);
}

}  // namespace
}  // namespace mvstore
