#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace mvstore {
namespace {

TEST(RandomTest, DeterministicGivenSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, UniformInRange) {
  Random rng(42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RandomTest, UniformCoversRange) {
  Random rng(42);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, PercentChanceRoughlyCalibrated) {
  Random rng(42);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.PercentChance(30)) ++hits;
  }
  EXPECT_NEAR(hits, 30000, 1500);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(42);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace mvstore
