// MV/O-specific behavior (paper Section 3): backward validation of reads,
// phantom detection by scan repetition (the Figure 3 scenarios), isolation-
// level cost structure, and commit-dependency flows through the engine.
#include <gtest/gtest.h>

#include <thread>

#include "cc/mv_engine.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;
  uint64_t value;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

class OptimisticTest : public ::testing::Test {
 protected:
  OptimisticTest() {
    MVEngineOptions opts;
    opts.log_mode = LogMode::kDisabled;
    engine_ = std::make_unique<MVEngine>(opts);
    TableDef def;
    def.name = "rows";
    def.payload_size = sizeof(Row);
    def.indexes.push_back(IndexDef{&RowKey, 256, true});
    table_ = engine_->CreateTable(def);
  }

  Transaction* BeginOpt(IsolationLevel iso) {
    return engine_->Begin(iso, /*pessimistic=*/false);
  }

  void Put(uint64_t key, uint64_t value) {
    Transaction* t = BeginOpt(IsolationLevel::kReadCommitted);
    Row row{key, value};
    ASSERT_TRUE(engine_->Insert(t, table_, &row).ok());
    ASSERT_TRUE(engine_->Commit(t).ok());
  }

  Status UpdateCommitted(uint64_t key, uint64_t value) {
    Transaction* t = BeginOpt(IsolationLevel::kReadCommitted);
    Status s = engine_->Update(t, table_, 0, key, [value](void* p) {
      static_cast<Row*>(p)->value = value;
    });
    if (!s.ok()) return s;
    return engine_->Commit(t);
  }

  Status DeleteCommitted(uint64_t key) {
    Transaction* t = BeginOpt(IsolationLevel::kReadCommitted);
    Status s = engine_->Delete(t, table_, 0, key);
    if (!s.ok()) return s;
    return engine_->Commit(t);
  }

  std::unique_ptr<MVEngine> engine_;
  TableId table_ = 0;
};

/// Figure 3, V1: visible at start and end -> passes read validation and
/// phantom detection.
TEST_F(OptimisticTest, Fig3V1StableReadCommits) {
  Put(1, 10);
  Transaction* t = BeginOpt(IsolationLevel::kSerializable);
  Row row{};
  ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok());
  EXPECT_TRUE(engine_->Commit(t).ok());
}

/// Figure 3, V2: visible at start, replaced during T -> read validation
/// fails under RR/SR.
TEST_F(OptimisticTest, Fig3V2UpdatedReadFailsValidation) {
  Put(1, 10);
  Transaction* t = BeginOpt(IsolationLevel::kRepeatableRead);
  Row row{};
  ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok());
  ASSERT_TRUE(UpdateCommitted(1, 20).ok());  // concurrent committed update
  Status s = engine_->Commit(t);
  ASSERT_TRUE(s.IsAborted());
  EXPECT_EQ(s.abort_reason(), AbortReason::kReadValidation);
}

/// Same scenario, but a deletion instead of an update.
TEST_F(OptimisticTest, Fig3V2DeletedReadFailsValidation) {
  Put(1, 10);
  Transaction* t = BeginOpt(IsolationLevel::kSerializable);
  Row row{};
  ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok());
  ASSERT_TRUE(DeleteCommitted(1).ok());
  Status s = engine_->Commit(t);
  ASSERT_TRUE(s.IsAborted());
  EXPECT_EQ(s.abort_reason(), AbortReason::kReadValidation);
}

/// Figure 3, V3: created *and* deleted during T's lifetime -> not visible at
/// either endpoint, so neither read validation nor phantom detection fires.
TEST_F(OptimisticTest, Fig3V3TransientVersionHarmless) {
  Transaction* t = BeginOpt(IsolationLevel::kSerializable);
  int seen = 0;
  ASSERT_TRUE(engine_->Scan(t, table_, 0, 5, nullptr, [&](const void*) {
                   ++seen;
                   return true;
                 }).ok());
  EXPECT_EQ(seen, 0);

  Put(5, 50);                       // created during T
  ASSERT_TRUE(DeleteCommitted(5).ok());  // and deleted during T
  EXPECT_TRUE(engine_->Commit(t).ok());
}

/// Figure 3, V4: created during T and visible at the end -> phantom; the
/// serializable scan repetition catches it.
TEST_F(OptimisticTest, Fig3V4PhantomFailsValidation) {
  Transaction* t = BeginOpt(IsolationLevel::kSerializable);
  int seen = 0;
  ASSERT_TRUE(engine_->Scan(t, table_, 0, 5, nullptr, [&](const void*) {
                   ++seen;
                   return true;
                 }).ok());
  EXPECT_EQ(seen, 0);

  Put(5, 50);  // phantom
  Status s = engine_->Commit(t);
  ASSERT_TRUE(s.IsAborted());
  EXPECT_EQ(s.abort_reason(), AbortReason::kPhantom);
}

/// Repeatable read does NOT repeat scans: V4 is admitted (phantoms allowed).
TEST_F(OptimisticTest, RepeatableReadAdmitsPhantom) {
  Transaction* t = BeginOpt(IsolationLevel::kRepeatableRead);
  int seen = 0;
  ASSERT_TRUE(engine_->Scan(t, table_, 0, 5, nullptr, [&](const void*) {
                   ++seen;
                   return true;
                 }).ok());
  Put(5, 50);
  EXPECT_TRUE(engine_->Commit(t).ok());  // no scan set -> no phantom check
}

/// Read Committed and Snapshot skip validation entirely: a stale read set
/// never aborts the transaction.
TEST_F(OptimisticTest, LowerIsolationSkipsValidation) {
  Put(1, 10);
  for (IsolationLevel iso :
       {IsolationLevel::kReadCommitted, IsolationLevel::kSnapshot}) {
    Transaction* t = BeginOpt(iso);
    Row row{};
    ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok());
    ASSERT_TRUE(UpdateCommitted(1, row.value + 1).ok());
    EXPECT_TRUE(engine_->Commit(t).ok()) << IsolationLevelName(iso);
  }
}

/// Snapshot isolation reads as of the transaction's begin time.
TEST_F(OptimisticTest, SnapshotReadsBeginTime) {
  Put(1, 10);
  Transaction* t = BeginOpt(IsolationLevel::kSnapshot);
  ASSERT_TRUE(UpdateCommitted(1, 99).ok());
  Row row{};
  ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 10u);  // pre-update snapshot
  EXPECT_TRUE(engine_->Commit(t).ok());
}

/// Read Committed reads the latest committed version at each read.
TEST_F(OptimisticTest, ReadCommittedReadsCurrentTime) {
  Put(1, 10);
  Transaction* t = BeginOpt(IsolationLevel::kReadCommitted);
  Row row{};
  ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 10u);
  ASSERT_TRUE(UpdateCommitted(1, 99).ok());
  ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 99u);
  EXPECT_TRUE(engine_->Commit(t).ok());
}

/// First-writer-wins: a write-write conflict aborts the second writer
/// immediately (Section 2.6).
TEST_F(OptimisticTest, FirstWriterWins) {
  Put(1, 10);
  Transaction* t1 = BeginOpt(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(engine_->Update(t1, table_, 0, 1, [](void* p) {
                   static_cast<Row*>(p)->value = 11;
                 }).ok());

  Transaction* t2 = BeginOpt(IsolationLevel::kReadCommitted);
  Status s = engine_->Update(t2, table_, 0, 1, [](void* p) {
    static_cast<Row*>(p)->value = 12;
  });
  ASSERT_TRUE(s.IsAborted());
  EXPECT_EQ(s.abort_reason(), AbortReason::kWriteWriteConflict);

  ASSERT_TRUE(engine_->Commit(t1).ok());
  EXPECT_EQ(engine_->stats().Get(Stat::kAbortWriteConflict), 1u);
}

/// After the first writer aborts, the version is updatable again.
TEST_F(OptimisticTest, AbortedWriterReleasesVersion) {
  Put(1, 10);
  Transaction* t1 = BeginOpt(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(engine_->Update(t1, table_, 0, 1, [](void* p) {
                   static_cast<Row*>(p)->value = 11;
                 }).ok());
  engine_->Abort(t1);

  EXPECT_TRUE(UpdateCommitted(1, 12).ok());
  Transaction* t = BeginOpt(IsolationLevel::kReadCommitted);
  Row row{};
  ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 12u);
  ASSERT_TRUE(engine_->Commit(t).ok());
}

/// Speculative read of a preparing transaction's version, resolved by the
/// provider committing: the dependent commits too. Runs at Snapshot
/// isolation -- Read Committed never speculates (visibility.h), so a
/// snapshot reader whose begin timestamp lands inside the writer's
/// Preparing window is what exercises the dependency path.
TEST_F(OptimisticTest, CommitDependencyResolvedByCommit) {
  Put(1, 10);
  // t1 updates and stalls in Preparing by holding a commit dependency of its
  // own? Simpler: drive the interleaving with threads -- t1 commits while t2
  // reads concurrently. Here we exercise the full path statistically.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) {
      UpdateCommitted(1, 42);
    }
  });
  uint64_t reads = 0;
  for (int i = 0; i < 2000; ++i) {
    Transaction* t = BeginOpt(IsolationLevel::kSnapshot);
    Row row{};
    Status s = engine_->Read(t, table_, 0, 1, &row);
    if (!s.IsAborted()) {
      if (engine_->Commit(t).ok()) ++reads;
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(reads, 0u);
}

/// Write validation interplay: serializable read-modify-write on two keys
/// with interleaved foreign update -> exactly one outcome is serializable.
TEST_F(OptimisticTest, SerializableReadModifyWrite) {
  Put(1, 10);
  Put(2, 20);
  Transaction* t = BeginOpt(IsolationLevel::kSerializable);
  Row a{}, b{};
  ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &a).ok());
  ASSERT_TRUE(engine_->Read(t, table_, 0, 2, &b).ok());
  ASSERT_TRUE(engine_->Update(t, table_, 0, 1, [&](void* p) {
                   static_cast<Row*>(p)->value = a.value + b.value;
                 }).ok());
  ASSERT_TRUE(engine_->Commit(t).ok());

  Transaction* check = BeginOpt(IsolationLevel::kReadCommitted);
  Row out{};
  ASSERT_TRUE(engine_->Read(check, table_, 0, 1, &out).ok());
  EXPECT_EQ(out.value, 30u);
  ASSERT_TRUE(engine_->Commit(check).ok());
}

/// A transaction that only reads commits without validation cost at RC/SI
/// but still validates under RR/SR -- just verifying all paths commit when
/// there is no interference.
TEST_F(OptimisticTest, AllIsolationLevelsCommitQuietly) {
  Put(1, 10);
  for (IsolationLevel iso :
       {IsolationLevel::kReadCommitted, IsolationLevel::kSnapshot,
        IsolationLevel::kRepeatableRead, IsolationLevel::kSerializable}) {
    Transaction* t = BeginOpt(iso);
    Row row{};
    ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok());
    EXPECT_TRUE(engine_->Commit(t).ok()) << IsolationLevelName(iso);
  }
}

/// The scan set must also catch phantoms that satisfy only the residual
/// predicate boundary.
TEST_F(OptimisticTest, PhantomDetectionHonorsResidualPredicate) {
  Transaction* t = BeginOpt(IsolationLevel::kSerializable);
  auto residual = [](const void* p) {
    return static_cast<const Row*>(p)->value >= 100;
  };
  int seen = 0;
  ASSERT_TRUE(engine_->Scan(t, table_, 0, 7, residual, [&](const void*) {
                   ++seen;
                   return true;
                 }).ok());
  Put(7, 50);  // matches key but NOT the residual -> not a phantom
  EXPECT_TRUE(engine_->Commit(t).ok());

  Transaction* t2 = BeginOpt(IsolationLevel::kSerializable);
  ASSERT_TRUE(engine_->Scan(t2, table_, 0, 8, residual, [&](const void*) {
                   return true;
                 }).ok());
  Put(8, 150);  // matches key AND residual -> phantom
  Status s = engine_->Commit(t2);
  ASSERT_TRUE(s.IsAborted());
  EXPECT_EQ(s.abort_reason(), AbortReason::kPhantom);
}

}  // namespace
}  // namespace mvstore
