// Property test: a random single-threaded operation sequence applied to the
// engine must match a std::map reference model exactly, for every scheme and
// isolation level. Catches visibility/updatability/GC bugs that targeted
// tests miss.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/database.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;
  uint64_t value;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

struct OracleParam {
  Scheme scheme;
  IsolationLevel isolation;
  uint64_t seed;
};

std::string OracleName(const ::testing::TestParamInfo<OracleParam>& info) {
  std::string s;
  switch (info.param.scheme) {
    case Scheme::kSingleVersion:
      s = "SV";
      break;
    case Scheme::kMultiVersionLocking:
      s = "MVL";
      break;
    case Scheme::kMultiVersionOptimistic:
      s = "MVO";
      break;
  }
  return s + "_" + IsolationLevelName(info.param.isolation) + "_seed" +
         std::to_string(info.param.seed);
}

class OracleTest : public ::testing::TestWithParam<OracleParam> {};

TEST_P(OracleTest, RandomOpsMatchReferenceModel) {
  DatabaseOptions opts;
  opts.scheme = GetParam().scheme;
  opts.log_mode = LogMode::kDisabled;
  Database db(opts);
  TableDef def;
  def.name = "rows";
  def.payload_size = sizeof(Row);
  def.indexes.push_back(IndexDef{&RowKey, 64, true});
  TableId table = db.CreateTable(def);

  std::map<uint64_t, uint64_t> model;
  Random rng(GetParam().seed);
  constexpr uint64_t kKeySpace = 32;  // small: plenty of key reuse
  const IsolationLevel iso = GetParam().isolation;

  for (int step = 0; step < 3000; ++step) {
    uint64_t key = rng.Uniform(kKeySpace);
    uint64_t op = rng.Uniform(5);
    Txn* txn = db.Begin(iso);
    switch (op) {
      case 0: {  // insert
        Row row{key, step * 1000 + key};
        Status s = db.Insert(txn, table, &row);
        if (model.count(key)) {
          ASSERT_TRUE(s.IsAlreadyExists()) << "step " << step;
          db.Abort(txn);
        } else {
          ASSERT_TRUE(s.ok()) << "step " << step << ": " << s.ToString();
          ASSERT_TRUE(db.Commit(txn).ok());
          model[key] = row.value;
        }
        break;
      }
      case 1: {  // update
        uint64_t new_value = step * 1000 + key + 1;
        Status s = db.Update(txn, table, 0, key, [&](void* p) {
          static_cast<Row*>(p)->value = new_value;
        });
        if (model.count(key)) {
          ASSERT_TRUE(s.ok()) << "step " << step << ": " << s.ToString();
          ASSERT_TRUE(db.Commit(txn).ok());
          model[key] = new_value;
        } else {
          ASSERT_TRUE(s.IsNotFound()) << "step " << step;
          db.Abort(txn);
        }
        break;
      }
      case 2: {  // delete
        Status s = db.Delete(txn, table, 0, key);
        if (model.count(key)) {
          ASSERT_TRUE(s.ok()) << "step " << step << ": " << s.ToString();
          ASSERT_TRUE(db.Commit(txn).ok());
          model.erase(key);
        } else {
          ASSERT_TRUE(s.IsNotFound()) << "step " << step;
          db.Abort(txn);
        }
        break;
      }
      case 3: {  // read
        Row row{};
        Status s = db.Read(txn, table, 0, key, &row);
        if (model.count(key)) {
          ASSERT_TRUE(s.ok()) << "step " << step << ": " << s.ToString();
          EXPECT_EQ(row.value, model[key]) << "step " << step;
        } else {
          ASSERT_TRUE(s.IsNotFound()) << "step " << step;
        }
        ASSERT_TRUE(db.Commit(txn).ok());
        break;
      }
      case 4: {  // update then abort: must leave no trace
        Status s = db.Update(txn, table, 0, key, [&](void* p) {
          static_cast<Row*>(p)->value = 0xDEADBEEF;
        });
        if (s.IsAborted()) break;  // cannot happen single-threaded, but safe
        db.Abort(txn);
        break;
      }
    }
  }

  // Final sweep: database contents == model contents.
  Txn* txn = db.Begin(IsolationLevel::kReadCommitted);
  std::map<uint64_t, uint64_t> found;
  ASSERT_TRUE(db.ScanTable(txn, table, [&](const void* p) {
                  const Row* r = static_cast<const Row*>(p);
                  found[r->key] = r->value;
                  return true;
                }).ok());
  ASSERT_TRUE(db.Commit(txn).ok());
  EXPECT_EQ(found, model);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OracleTest,
    ::testing::Values(
        OracleParam{Scheme::kSingleVersion, IsolationLevel::kReadCommitted, 1},
        OracleParam{Scheme::kSingleVersion, IsolationLevel::kSerializable, 2},
        OracleParam{Scheme::kMultiVersionLocking,
                    IsolationLevel::kReadCommitted, 3},
        OracleParam{Scheme::kMultiVersionLocking,
                    IsolationLevel::kRepeatableRead, 4},
        OracleParam{Scheme::kMultiVersionLocking,
                    IsolationLevel::kSerializable, 5},
        OracleParam{Scheme::kMultiVersionOptimistic,
                    IsolationLevel::kReadCommitted, 6},
        OracleParam{Scheme::kMultiVersionOptimistic,
                    IsolationLevel::kRepeatableRead, 7},
        OracleParam{Scheme::kMultiVersionOptimistic,
                    IsolationLevel::kSerializable, 8},
        OracleParam{Scheme::kMultiVersionOptimistic, IsolationLevel::kSnapshot,
                    9}),
    OracleName);

}  // namespace
}  // namespace mvstore
