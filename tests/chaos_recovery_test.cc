// Chaos recovery harness (ctest label: chaos).
//
// Runs seeded chaos drills (src/chaos/chaos_drill.h) for every scheme: each
// drill forks a child workload, kills it at a randomly armed durability
// failpoint (log append/fsync/rotation, checkpoint write/publish), recovers,
// and verifies that no acknowledged commit was lost and no state became
// unrecoverable.
//
// Scale: MVSTORE_CHAOS_ITERS sets drills per scheme (default 3 for local
// runs). Each drill is `cycles` crash/recover rounds, so CI's
// MVSTORE_CHAOS_ITERS=23 yields 23 x 3 cycles x 3 schemes = 207 seeded
// kill-at-a-random-failpoint iterations per run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "chaos/chaos_drill.h"
#include "common/failpoint.h"

namespace mvstore {
namespace {

uint32_t DrillsPerScheme() {
  const char* env = std::getenv("MVSTORE_CHAOS_ITERS");
  if (env == nullptr || env[0] == '\0') return 3;
  unsigned long v = std::strtoul(env, nullptr, 10);
  return v == 0 ? 1 : static_cast<uint32_t>(v);
}

class ChaosRecoveryTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(ChaosRecoveryTest, AcknowledgedCommitsSurviveRandomCrashes) {
  if (!failpoint::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const Scheme scheme = GetParam();
  const uint32_t drills = DrillsPerScheme();
  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("mvstore_chaos_" + std::string(SchemeName(scheme))))
          .string();

  uint32_t total_crashes = 0;
  uint64_t total_acked = 0;
  for (uint32_t i = 0; i < drills; ++i) {
    chaos::DrillOptions options;
    options.scheme = scheme;
    options.seed = 1000 + i;  // fixed seed base: failures reproduce exactly
    options.dir = base + "-" + std::to_string(options.seed);
    chaos::DrillReport report;
    Status s = chaos::RunDrill(options, &report);
    if (s.IsUnavailable()) GTEST_SKIP() << "fork() unsupported here";
    ASSERT_TRUE(s.ok()) << "harness error: " << s.ToString();
    ASSERT_TRUE(report.failure.empty()) << report.failure;
    EXPECT_EQ(report.cycles_run, options.cycles);
    total_crashes += report.crashes;
    total_acked += report.acked_commits;
    std::error_code ec;
    std::filesystem::remove_all(options.dir, ec);  // keep /tmp bounded
  }
  // The drills must actually have exercised crash recovery and verified
  // real acknowledged commits — an all-clean-exit run would be vacuous.
  EXPECT_GT(total_crashes, 0u) << "no drill crashed; hit counts too high?";
  EXPECT_GT(total_acked, 0u);
  RecordProperty("crashes", static_cast<int>(total_crashes));
}

// Leader-kill -> follower-verify cycles: the same drill with a live
// in-process replica following the leader (DrillOptions::repl). The crash
// menu gains the repl failpoints (repl.ship.send, repl.tail.recv), and every
// cycle whose follower had attached also proves the acked set present on
// the follower's recovered mirror plus byte-prefix agreement of the
// mirrored segments — the promote-would-lose-nothing invariant. The full
// promote path (seal + go-writable + serve writes) runs in
// failover_drill_test (label: repl).
TEST_P(ChaosRecoveryTest, AcknowledgedCommitsSurviveLeaderKills) {
  if (!failpoint::CompiledIn()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  const Scheme scheme = GetParam();
  // Repl cycles are slower (every commit waits on the follower's fsync):
  // fewer drills, smaller budgets.
  const uint32_t drills = (DrillsPerScheme() + 2) / 3;
  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("mvstore_chaos_repl_" + std::string(SchemeName(scheme))))
          .string();

  uint32_t total_crashes = 0;
  uint32_t total_follower_verified = 0;
  for (uint32_t i = 0; i < drills; ++i) {
    chaos::DrillOptions options;
    options.scheme = scheme;
    options.repl = true;
    options.seed = 7000 + i;
    options.txns_per_cycle = 500;
    options.dir = base + "-" + std::to_string(options.seed);
    chaos::DrillReport report;
    Status s = chaos::RunDrill(options, &report);
    if (s.IsUnavailable()) GTEST_SKIP() << "fork() unsupported here";
    ASSERT_TRUE(s.ok()) << "harness error: " << s.ToString();
    ASSERT_TRUE(report.failure.empty()) << report.failure;
    EXPECT_EQ(report.cycles_run, options.cycles);
    total_crashes += report.crashes;
    total_follower_verified += report.follower_verified;
    std::error_code ec;
    std::filesystem::remove_all(options.dir, ec);
  }
  EXPECT_GT(total_crashes, 0u) << "no drill crashed; hit counts too high?";
  // At least one cycle must have made it to attach, or the follower half of
  // the verification never ran and the test is vacuous.
  EXPECT_GT(total_follower_verified, 0u)
      << "no cycle reached follower attach";
  RecordProperty("follower_verified",
                 static_cast<int>(total_follower_verified));
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ChaosRecoveryTest,
                         ::testing::Values(Scheme::kSingleVersion,
                                           Scheme::kMultiVersionLocking,
                                           Scheme::kMultiVersionOptimistic),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           switch (info.param) {
                             case Scheme::kSingleVersion:
                               return "SingleVersion";
                             case Scheme::kMultiVersionLocking:
                               return "MultiVersionLocking";
                             default:
                               return "MultiVersionOptimistic";
                           }
                         });

}  // namespace
}  // namespace mvstore
