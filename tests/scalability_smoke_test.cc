// Thread-scaling regression harness (ctest label `perf`, Release CI leg).
//
// The fig5 regression this guards against: before the Section-6 hot-path
// work, MV/O and MV/L throughput *dropped* from 1 to 4 threads (to ~0.73x)
// because every transaction serialized on a handful of global cachelines --
// the timestamp clock, the stat counters, the epoch manager, the
// transaction-table partitions. This test reruns that experiment small:
// the homogeneous R=10/W=2 update workload on the fig5 hotspot table
// (N=1,000 rows, the high-contention configuration the regression showed
// up in) at 1 and at 4 threads, and fails if 4 threads fall materially
// below 1 thread again.
//
// The margin is deliberately generous (0.8x): CI boxes are noisy and often
// oversubscribed, and the point is to catch a *serialization collapse*,
// not to enforce a speedup. The pre-fix ratio (~0.73x) still fails it.
// Against box-level noise (shared runners slow down for whole minutes at a
// time), the two thread counts are measured in alternation and compared by
// median -- a slow phase then lands on both sides instead of on whichever
// point happened to run during it.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "bench/harness.h"
#include "common/random.h"
#include "workload/homogeneous.h"

namespace mvstore {
namespace {

constexpr uint64_t kRows = 1000;
constexpr double kSecondsPerPoint = 1.0;
constexpr double kGenerousMargin = 0.8;
// Margin when forced onto a box with fewer than 4 hardware threads. There
// the 4-thread run pays an unavoidable timeslicing tax the engine cannot
// remove: a worker preempted inside its commit pipeline stalls its peers
// for a scheduler quantum. Measured on a 1-CPU container, that tax alone
// puts the ratio at ~0.75-0.85 (a read-only workload on the same box runs
// ~0.95), which a 0.8 threshold cannot tell apart from the pre-fix
// serialization collapse. A shared-core run therefore only smoke-checks
// for catastrophic collapse; the discriminating 0.8 contract applies
// where 4 hardware threads exist.
constexpr double kSharedCoreMargin = 0.5;
constexpr int kRepeats = 3;

double UpdateWorkloadTps(Database& db, TableId table, uint32_t threads) {
  bench::RunResult r = bench::RunFixedDuration(
      threads, kSecondsPerPoint,
      [&](uint32_t tid, std::atomic<bool>& stop,
          bench::WorkerCounters& counters) {
        Random rng(0xC0FFEE + tid);
        while (!stop.load(std::memory_order_relaxed)) {
          Status s = workload::RunUpdateTxn(db, table, rng, kRows, 10, 2,
                                            IsolationLevel::kReadCommitted);
          if (s.ok()) {
            ++counters.committed;
          } else {
            ++counters.aborted;
          }
        }
      });
  return r.tps();
}

void ExpectScalesToFourThreads(Scheme scheme) {
  // MVSTORE_PERF_FORCE runs the measurement even on a small box, with the
  // relaxed shared-core margin (see kSharedCoreMargin).
  const bool small_box = std::thread::hardware_concurrency() < 4;
  if (small_box && std::getenv("MVSTORE_PERF_FORCE") == nullptr) {
    GTEST_SKIP() << "needs >= 4 hardware threads";
  }
  const double margin = small_box ? kSharedCoreMargin : kGenerousMargin;
  bench::Flags flags(0, nullptr);
  DatabaseOptions opts = bench::MakeOptions(scheme, flags);
  Database db(opts);
  TableId table = workload::CreateAndLoadRows(db, kRows);

  // Throwaway point to warm the table, the allocator slabs, and the
  // per-thread slots before either measured point.
  (void)UpdateWorkloadTps(db, table, 2);

  double runs1[kRepeats], runs4[kRepeats];
  for (int rep = 0; rep < kRepeats; ++rep) {
    runs1[rep] = UpdateWorkloadTps(db, table, 1);
    runs4[rep] = UpdateWorkloadTps(db, table, 4);
  }
  std::sort(runs1, runs1 + kRepeats);
  std::sort(runs4, runs4 + kRepeats);
  double tps1 = runs1[kRepeats / 2];
  double tps4 = runs4[kRepeats / 2];
  testing::Test::RecordProperty("tps_1_thread", static_cast<int64_t>(tps1));
  testing::Test::RecordProperty("tps_4_threads", static_cast<int64_t>(tps4));
  EXPECT_GE(tps4, margin * tps1)
      << SchemeName(scheme) << " throughput collapsed under concurrency: "
      << tps1 << " tps at 1 thread vs " << tps4 << " tps at 4 threads";
}

TEST(ScalabilitySmokeTest, MultiVersionOptimistic) {
  ExpectScalesToFourThreads(Scheme::kMultiVersionOptimistic);
}

TEST(ScalabilitySmokeTest, MultiVersionLocking) {
  ExpectScalesToFourThreads(Scheme::kMultiVersionLocking);
}

}  // namespace
}  // namespace mvstore
