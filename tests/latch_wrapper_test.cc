// Behavioral tests for the annotated latch wrappers (common/spin_latch.h,
// common/mutex.h). The thread-safety annotations themselves are compile-time
// only (enforced by scripts/check_thread_safety.sh under clang); these tests
// pin down the runtime semantics the wrappers forward to: try-acquire
// exclusivity, guard release on scope exit (including exceptional exit),
// shared/exclusive modes, and condition-variable wakeups.

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/spin_latch.h"

namespace mvstore {
namespace {

TEST(SpinLatchTest, TryLockExcludesAndReleases) {
  SpinLatch latch;
  ASSERT_TRUE(latch.TryLock());
  EXPECT_FALSE(latch.TryLock());  // held -> second try must fail
  latch.Unlock();
  ASSERT_TRUE(latch.TryLock());  // released -> available again
  latch.Unlock();
}

TEST(SpinLatchTest, GuardReleasesOnScopeExit) {
  SpinLatch latch;
  {
    SpinLatchGuard guard(latch);
    EXPECT_FALSE(latch.TryLock());
  }
  EXPECT_TRUE(latch.TryLock());
  latch.Unlock();
}

TEST(SpinLatchTest, AssertHeldIsRuntimeNoop) {
  SpinLatch latch;
  SpinLatchGuard guard(latch);
  latch.AssertHeld();  // must not deadlock or abort
}

TEST(SpinLatchTest, ContendedHandoff) {
  SpinLatch latch;
  uint64_t counter = 0;  // protected by latch
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        SpinLatchGuard guard(latch);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kIters);
}

TEST(MutexTest, TryLockExcludes) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, ScopedLockReleasesOnThrow) {
  Mutex mu;
  bool caught = false;
  try {
    MutexLock lock(mu);
    EXPECT_FALSE(mu.TryLock());
    throw std::runtime_error("unwind through the guard");
  } catch (const std::runtime_error&) {
    caught = true;
  }
  ASSERT_TRUE(caught);
  EXPECT_TRUE(mu.TryLock());  // the unwind must have released the mutex
  mu.Unlock();
}

TEST(SharedMutexTest, ReadersShareTheLock) {
  SharedMutex mu;
  std::atomic<int> readers_inside{0};
  // Two readers must be able to hold the lock simultaneously: each waits
  // inside its critical section until it has seen the other. If shared mode
  // wrongly excluded readers this would deadlock (and trip the test timeout).
  auto reader = [&] {
    ReaderLock lock(mu);
    readers_inside.fetch_add(1);
    while (readers_inside.load() < 2) std::this_thread::yield();
  };
  std::thread a(reader);
  std::thread b(reader);
  a.join();
  b.join();
  EXPECT_EQ(readers_inside.load(), 2);
}

TEST(SharedMutexTest, WriterExcludesReaders) {
  SharedMutex mu;
  std::atomic<bool> reader_done{false};
  uint64_t value = 0;  // protected by mu
  std::thread writer;
  {
    WriterLock lock(mu);
    // The reader launched while the writer holds the lock must not observe
    // the half-written state: it blocks until the writer scope ends.
    writer = std::thread([&] {
      ReaderLock rlock(mu);
      EXPECT_EQ(value, 2u);
      reader_done.store(true);
    });
    value = 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    value = 2;
  }
  writer.join();
  EXPECT_TRUE(reader_done.load());
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(lock);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_EQ(cv.WaitFor(lock, std::chrono::milliseconds(10)),
            std::cv_status::timeout);
}

TEST(CondVarTest, WaitUntilSeesNotify) {
  Mutex mu;
  CondVar cv;
  bool done = false;  // guarded by mu
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    MutexLock lock(mu);
    done = true;
    cv.NotifyAll();
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  {
    MutexLock lock(mu);
    while (!done) {
      if (cv.WaitUntil(lock, deadline) == std::cv_status::timeout) break;
    }
    EXPECT_TRUE(done);
  }
  producer.join();
}

}  // namespace
}  // namespace mvstore
