// Transaction infrastructure: timestamp/ID generation, the transaction
// table, wake/wait events, and the deadlock detector's graph construction.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "cc/deadlock.h"
#include "txn/commit_dep.h"
#include "txn/timestamp.h"
#include "txn/transaction.h"
#include "txn/txn_table.h"

namespace mvstore {
namespace {

TEST(TimestampTest, MonotoneAndUnique) {
  TimestampGenerator gen;
  Timestamp prev = 0;
  for (int i = 0; i < 1000; ++i) {
    Timestamp t = gen.Next();
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_EQ(gen.Current(), prev);
}

TEST(TimestampTest, ConcurrentUniqueness) {
  TimestampGenerator gen;
  constexpr int kThreads = 8, kPer = 10000;
  std::vector<std::vector<Timestamp>> drawn(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) drawn[t].push_back(gen.Next());
    });
  }
  for (auto& th : threads) th.join();
  std::set<Timestamp> all;
  for (auto& v : drawn) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads) * kPer);
}

TEST(TxnIdTest, CappedAt54Bits) {
  TxnIdGenerator gen;
  TxnId id = gen.Next();
  EXPECT_LE(id, kMaxTxnId);
  EXPECT_GE(id, 1u);
}

TEST(TxnTableTest, InsertFindRemove) {
  TxnTable table;
  Transaction txn(42, IsolationLevel::kSerializable, false, false);
  table.Insert(&txn);
  EXPECT_EQ(table.Find(42), &txn);
  EXPECT_EQ(table.Find(43), nullptr);
  EXPECT_EQ(table.Size(), 1u);
  table.Remove(42);
  EXPECT_EQ(table.Find(42), nullptr);
  EXPECT_EQ(table.Size(), 0u);
}

TEST(TxnTableTest, SnapshotSeesAll) {
  TxnTable table;
  std::vector<std::unique_ptr<Transaction>> txns;
  for (TxnId id = 1; id <= 100; ++id) {
    txns.push_back(std::make_unique<Transaction>(
        id, IsolationLevel::kReadCommitted, false, false));
    table.Insert(txns.back().get());
  }
  EXPECT_EQ(table.Snapshot().size(), 100u);
}

TEST(TxnTableTest, MinActiveBeginTreatsUnsetAsZero) {
  TxnTable table;
  Transaction pending(1, IsolationLevel::kReadCommitted, false, false);
  table.Insert(&pending);  // begin_ts still 0 (publication window)
  EXPECT_EQ(table.MinActiveBeginTs(/*fallback=*/1000), 0u);
  pending.begin_ts.store(500);
  EXPECT_EQ(table.MinActiveBeginTs(1000), 500u);
  table.Remove(1);
  EXPECT_EQ(table.MinActiveBeginTs(1000), 1000u);
}

TEST(TransactionTest, WaitEventWakesOnNotify) {
  Transaction txn(1, IsolationLevel::kReadCommitted, true, false);
  txn.wait_for_counter.store(1);
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    txn.WaitEvent([&] { return txn.wait_for_counter.load() == 0; });
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load());
  txn.wait_for_counter.store(0);
  txn.NotifyEvent();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(CommitDepTest, CountAndDrain) {
  TxnTable table;
  Transaction provider(1, IsolationLevel::kReadCommitted, false, false);
  Transaction dep_a(2, IsolationLevel::kReadCommitted, false, false);
  Transaction dep_b(3, IsolationLevel::kReadCommitted, false, false);
  provider.state.store(TxnState::kPreparing);
  table.Insert(&provider);
  table.Insert(&dep_a);
  table.Insert(&dep_b);

  EXPECT_EQ(RegisterCommitDependency(&dep_a, &provider),
            CommitDepOutcome::kRegistered);
  EXPECT_EQ(RegisterCommitDependency(&dep_b, &provider),
            CommitDepOutcome::kRegistered);
  EXPECT_EQ(dep_a.commit_dep_counter.load(), 1u);
  EXPECT_EQ(dep_b.commit_dep_counter.load(), 1u);

  provider.state.store(TxnState::kCommitted);
  ResolveCommitDependencies(&provider, true, table);
  EXPECT_EQ(dep_a.commit_dep_counter.load(), 0u);
  EXPECT_EQ(dep_b.commit_dep_counter.load(), 0u);
  EXPECT_FALSE(dep_a.abort_now.load());
}

TEST(CommitDepTest, DrainedProviderRejectsLateRegistration) {
  TxnTable table;
  Transaction provider(1, IsolationLevel::kReadCommitted, false, false);
  Transaction late(2, IsolationLevel::kReadCommitted, false, false);
  provider.state.store(TxnState::kPreparing);
  table.Insert(&provider);
  table.Insert(&late);

  provider.state.store(TxnState::kCommitted);
  ResolveCommitDependencies(&provider, true, table);
  // Late registration sees the committed state: no wait needed.
  EXPECT_EQ(RegisterCommitDependency(&late, &provider),
            CommitDepOutcome::kProviderCommitted);
  EXPECT_EQ(late.commit_dep_counter.load(), 0u);
}

TEST(CommitDepTest, MissingDependentIsSkipped) {
  TxnTable table;
  Transaction provider(1, IsolationLevel::kReadCommitted, false, false);
  provider.state.store(TxnState::kPreparing);
  table.Insert(&provider);
  {
    SpinLatchGuard g(provider.dep_latch);
    provider.commit_dep_set.push_back(999);  // dependent no longer exists
  }
  provider.state.store(TxnState::kAborted);
  ResolveCommitDependencies(&provider, false, table);  // must not crash
}

/// Deadlock detector unit test: construct an explicit two-cycle via
/// WaitingTxnLists and verify the youngest is chosen as victim.
TEST(DeadlockDetectorTest, ExplicitCycleVictimIsYoungest) {
  TxnTable table;
  EpochManager epoch;
  StatsCollector stats;
  Transaction t1(10, IsolationLevel::kSerializable, true, false);
  Transaction t2(20, IsolationLevel::kSerializable, true, false);
  table.Insert(&t1);
  table.Insert(&t2);
  // t2 waits for t1 and vice versa (edges from WaitingTxnLists).
  t1.waiting_txn_list.push_back(20);  // t2 -> t1
  t2.waiting_txn_list.push_back(10);  // t1 -> t2
  t1.wait_for_counter.store(1);
  t2.wait_for_counter.store(1);
  t1.blocked.store(true);
  t2.blocked.store(true);

  DeadlockDetector detector(table, epoch, stats, 1000);
  EXPECT_EQ(detector.RunOnce(), 1u);
  EXPECT_TRUE(t2.abort_now.load());   // youngest (highest id)
  EXPECT_FALSE(t1.abort_now.load());
  EXPECT_EQ(t2.kill_reason.load(), AbortReason::kDeadlock);
  EXPECT_EQ(stats.Get(Stat::kDeadlocksDetected), 1u);
}

TEST(DeadlockDetectorTest, NoCycleNoVictim) {
  TxnTable table;
  EpochManager epoch;
  StatsCollector stats;
  Transaction t1(10, IsolationLevel::kSerializable, true, false);
  Transaction t2(20, IsolationLevel::kSerializable, true, false);
  table.Insert(&t1);
  table.Insert(&t2);
  t1.waiting_txn_list.push_back(20);  // t2 waits for t1, no back edge
  t1.blocked.store(true);
  t2.blocked.store(true);

  DeadlockDetector detector(table, epoch, stats, 1000);
  EXPECT_EQ(detector.RunOnce(), 0u);
  EXPECT_FALSE(t1.abort_now.load());
  EXPECT_FALSE(t2.abort_now.load());
}

TEST(DeadlockDetectorTest, UnblockedMemberSuppressesFalsePositive) {
  TxnTable table;
  EpochManager epoch;
  StatsCollector stats;
  Transaction t1(10, IsolationLevel::kSerializable, true, false);
  Transaction t2(20, IsolationLevel::kSerializable, true, false);
  table.Insert(&t1);
  table.Insert(&t2);
  t1.waiting_txn_list.push_back(20);
  t2.waiting_txn_list.push_back(10);
  t1.blocked.store(true);
  t2.blocked.store(false);  // not actually blocked: stale graph

  DeadlockDetector detector(table, epoch, stats, 1000);
  EXPECT_EQ(detector.RunOnce(), 0u);
}

TEST(DeadlockDetectorTest, ThreeCycleDetected) {
  TxnTable table;
  EpochManager epoch;
  StatsCollector stats;
  Transaction a(1, IsolationLevel::kSerializable, true, false);
  Transaction b(2, IsolationLevel::kSerializable, true, false);
  Transaction c(3, IsolationLevel::kSerializable, true, false);
  for (Transaction* t : {&a, &b, &c}) {
    table.Insert(t);
    t->blocked.store(true);
    t->wait_for_counter.store(1);
  }
  // a waits for b waits for c waits for a:
  b.waiting_txn_list.push_back(1);  // a -> b
  c.waiting_txn_list.push_back(2);  // b -> c
  a.waiting_txn_list.push_back(3);  // c -> a
  DeadlockDetector detector(table, epoch, stats, 1000);
  EXPECT_EQ(detector.RunOnce(), 1u);
  EXPECT_TRUE(c.abort_now.load());  // youngest
}

}  // namespace
}  // namespace mvstore
