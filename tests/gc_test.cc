// Garbage collection: watermark computation, deferred reclamation of
// superseded versions, immediate reclamation of aborted versions, and
// cooperative draining (paper Section 2.3).
#include <gtest/gtest.h>

#include "cc/mv_engine.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;
  uint64_t value;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

class GcTest : public ::testing::Test {
 protected:
  GcTest() {
    MVEngineOptions opts;
    opts.log_mode = LogMode::kDisabled;
    opts.gc_interval_us = 0;  // manual control: no background thread
    opts.deadlock_interval_us = 0;
    opts.cooperative_gc_budget = 0;  // disable inline draining too
    engine_ = std::make_unique<MVEngine>(opts);
    TableDef def;
    def.name = "rows";
    def.payload_size = sizeof(Row);
    def.indexes.push_back(IndexDef{&RowKey, 256, true});
    table_ = engine_->CreateTable(def);
  }

  void Put(uint64_t key, uint64_t value) {
    Transaction* t = engine_->Begin(IsolationLevel::kReadCommitted, false);
    Row row{key, value};
    ASSERT_TRUE(engine_->Insert(t, table_, &row).ok());
    ASSERT_TRUE(engine_->Commit(t).ok());
  }

  void UpdateRow(uint64_t key, uint64_t value) {
    Transaction* t = engine_->Begin(IsolationLevel::kReadCommitted, false);
    ASSERT_TRUE(engine_->Update(t, table_, 0, key, [value](void* p) {
                     static_cast<Row*>(p)->value = value;
                   }).ok());
    ASSERT_TRUE(engine_->Commit(t).ok());
  }

  uint64_t ChainLength(uint64_t key) {
    uint64_t n = 0;
    engine_->table(table_).index(0).ScanBucket(key, [&](Version* v) {
      if (engine_->table(table_).index(0).KeyOf(v) == key) ++n;
      return true;
    });
    return n;
  }

  std::unique_ptr<MVEngine> engine_;
  TableId table_ = 0;
};

TEST_F(GcTest, SupersededVersionsCollected) {
  Put(1, 0);
  for (uint64_t i = 1; i <= 10; ++i) UpdateRow(1, i);
  EXPECT_EQ(ChainLength(1), 11u);  // original + 10 updates
  EXPECT_EQ(engine_->gc().PendingCount(), 10u);

  engine_->gc().RunOnce();  // no active txns: watermark passes everything
  EXPECT_EQ(ChainLength(1), 1u);
  EXPECT_EQ(engine_->gc().PendingCount(), 0u);
  EXPECT_EQ(engine_->stats().Get(Stat::kVersionsCollected), 10u);

  // The surviving version is the latest.
  Transaction* t = engine_->Begin(IsolationLevel::kReadCommitted, false);
  Row row{};
  ASSERT_TRUE(engine_->Read(t, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 10u);
  ASSERT_TRUE(engine_->Commit(t).ok());
}

TEST_F(GcTest, ActiveSnapshotBlocksReclamation) {
  Put(1, 0);
  // An open snapshot transaction pins its begin time.
  Transaction* pin = engine_->Begin(IsolationLevel::kSnapshot, false);
  Row row{};
  ASSERT_TRUE(engine_->Read(pin, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 0u);

  UpdateRow(1, 1);
  UpdateRow(1, 2);
  engine_->gc().RunOnce();
  // The versions superseded after `pin` began must survive; only version 0's
  // predecessors (none) could go. Chain: v0, v1, v2 all present.
  EXPECT_EQ(ChainLength(1), 3u);

  // The pinned snapshot still reads its version.
  ASSERT_TRUE(engine_->Read(pin, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 0u);
  ASSERT_TRUE(engine_->Commit(pin).ok());

  engine_->gc().RunOnce();
  EXPECT_EQ(ChainLength(1), 1u);
}

TEST_F(GcTest, AbortedVersionsCollectedImmediately) {
  Put(1, 0);
  Transaction* t = engine_->Begin(IsolationLevel::kReadCommitted, false);
  ASSERT_TRUE(engine_->Update(t, table_, 0, 1, [](void* p) {
                   static_cast<Row*>(p)->value = 99;
                 }).ok());
  engine_->Abort(t);
  EXPECT_EQ(ChainLength(1), 2u);  // aborted new version still linked

  engine_->gc().RunOnce();
  EXPECT_EQ(ChainLength(1), 1u);  // reclaimed without any watermark wait
}

TEST_F(GcTest, DeletedRowFullyReclaimed) {
  Put(1, 0);
  Transaction* t = engine_->Begin(IsolationLevel::kReadCommitted, false);
  ASSERT_TRUE(engine_->Delete(t, table_, 0, 1).ok());
  ASSERT_TRUE(engine_->Commit(t).ok());
  engine_->gc().RunOnce();
  EXPECT_EQ(ChainLength(1), 0u);
}

TEST_F(GcTest, CooperateDrainsWithBudget) {
  Put(1, 0);
  for (uint64_t i = 1; i <= 32; ++i) UpdateRow(1, i);
  uint64_t before = engine_->gc().PendingCount();
  EXPECT_EQ(before, 32u);
  uint32_t drained = 0;
  for (int i = 0; i < 64 && drained < 32; ++i) {
    drained += engine_->gc().Cooperate(4);
  }
  EXPECT_EQ(drained, 32u);
  EXPECT_EQ(ChainLength(1), 1u);
}

TEST_F(GcTest, WatermarkIsMinActiveBegin) {
  Transaction* t1 = engine_->Begin(IsolationLevel::kSnapshot, false);
  Timestamp b1 = t1->begin_ts.load();
  Transaction* t2 = engine_->Begin(IsolationLevel::kSnapshot, false);
  EXPECT_EQ(engine_->gc().Watermark(/*now=*/1 << 20), b1);
  ASSERT_TRUE(engine_->Commit(t1).ok());
  EXPECT_EQ(engine_->gc().Watermark(1 << 20), t2->begin_ts.load());
  ASSERT_TRUE(engine_->Commit(t2).ok());
  EXPECT_EQ(engine_->gc().Watermark(1 << 20), Timestamp{1} << 20);
}

TEST_F(GcTest, HeavyChurnEventuallyBounded) {
  Put(1, 0);
  for (int round = 0; round < 20; ++round) {
    for (uint64_t i = 0; i < 16; ++i) UpdateRow(1, i);
    engine_->gc().RunOnce();
  }
  EXPECT_EQ(ChainLength(1), 1u);
  EXPECT_EQ(engine_->gc().PendingCount(), 0u);
}

}  // namespace
}  // namespace mvstore
