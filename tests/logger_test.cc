// Redo logging: record serialization round trips, diff-based update records,
// group commit batching, sync vs async modes (paper Sections 2.4, 5).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cc/mv_engine.h"
#include "common/failpoint.h"
#include "core/database.h"
#include "log/log_record.h"
#include "log/logger.h"

namespace mvstore {
namespace {

TEST(LogRecordTest, InsertRoundTrip) {
  std::vector<uint8_t> buf;
  LogRecordBuilder builder(buf);
  builder.BeginRecord(/*end_ts=*/42, /*txn_id=*/7);
  uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  builder.AddInsert(/*table=*/3, payload, sizeof(payload));
  builder.EndRecord();

  size_t pos = 0;
  ParsedLogRecord rec;
  ASSERT_TRUE(ParseLogRecord(buf, pos, &rec));
  EXPECT_EQ(rec.end_ts, 42u);
  EXPECT_EQ(rec.txn_id, 7u);
  ASSERT_EQ(rec.ops.size(), 1u);
  EXPECT_EQ(rec.ops[0].op, LogOp::kInsert);
  EXPECT_EQ(rec.ops[0].table, 3u);
  EXPECT_EQ(rec.ops[0].bytes, std::vector<uint8_t>(payload, payload + 8));
  EXPECT_EQ(pos, buf.size());
}

TEST(LogRecordTest, UpdateLogsOnlyTheDiff) {
  std::vector<uint8_t> buf;
  LogRecordBuilder builder(buf);
  builder.BeginRecord(1, 1);
  uint8_t before[16] = {0};
  uint8_t after[16] = {0};
  after[5] = 0xAA;
  after[6] = 0xBB;
  builder.AddUpdate(0, /*key=*/77, before, after, sizeof(before));
  builder.EndRecord();

  size_t pos = 0;
  ParsedLogRecord rec;
  ASSERT_TRUE(ParseLogRecord(buf, pos, &rec));
  ASSERT_EQ(rec.ops.size(), 1u);
  EXPECT_EQ(rec.ops[0].op, LogOp::kUpdate);
  EXPECT_EQ(rec.ops[0].key, 77u);
  EXPECT_EQ(rec.ops[0].offset, 5u);
  EXPECT_EQ(rec.ops[0].bytes, (std::vector<uint8_t>{0xAA, 0xBB}));
}

TEST(LogRecordTest, IdenticalPayloadsProduceEmptyDiff) {
  std::vector<uint8_t> buf;
  LogRecordBuilder builder(buf);
  builder.BeginRecord(1, 1);
  uint8_t data[16] = {9};
  builder.AddUpdate(0, /*key=*/9, data, data, sizeof(data));
  builder.EndRecord();

  size_t pos = 0;
  ParsedLogRecord rec;
  ASSERT_TRUE(ParseLogRecord(buf, pos, &rec));
  EXPECT_TRUE(rec.ops[0].bytes.empty());
}

TEST(LogRecordTest, DeleteLogsKey) {
  std::vector<uint8_t> buf;
  LogRecordBuilder builder(buf);
  builder.BeginRecord(1, 1);
  builder.AddDelete(2, 0xDEADBEEF);
  builder.EndRecord();

  size_t pos = 0;
  ParsedLogRecord rec;
  ASSERT_TRUE(ParseLogRecord(buf, pos, &rec));
  EXPECT_EQ(rec.ops[0].op, LogOp::kDelete);
  EXPECT_EQ(rec.ops[0].key, 0xDEADBEEFu);
}

TEST(LogRecordTest, MultipleRecordsParseSequentially) {
  std::vector<uint8_t> buf;
  for (int i = 0; i < 5; ++i) {
    LogRecordBuilder builder(buf);
    builder.BeginRecord(i, i);
    builder.AddDelete(0, i);
    builder.EndRecord();
  }
  size_t pos = 0;
  ParsedLogRecord rec;
  int count = 0;
  while (ParseLogRecord(buf, pos, &rec)) {
    EXPECT_EQ(rec.end_ts, static_cast<Timestamp>(count));
    ++count;
  }
  EXPECT_EQ(count, 5);
}

TEST(LoggerTest, AsyncAppendsReachSink) {
  auto* sink = new MemoryLogSink();
  Logger logger(LogMode::kAsync, sink);
  std::vector<uint8_t> rec{1, 2, 3, 4};
  for (int i = 0; i < 100; ++i) logger.Append(rec);
  logger.FlushAll();
  EXPECT_EQ(sink->Contents().size(), 400u);
  EXPECT_EQ(logger.records_appended(), 100u);
}

TEST(LoggerTest, SyncWaitsForFlush) {
  auto* sink = new MemoryLogSink();
  Logger logger(LogMode::kSync, sink);
  std::vector<uint8_t> rec{9, 9, 9};
  logger.Append(rec);  // returns only after the batch is flushed
  EXPECT_EQ(sink->Contents().size(), 3u);
}

/// DatabaseOptions::fsync_log: the fsync'd sink must behave identically at
/// the API level (bytes land in the file); the durability difference is
/// only observable across an OS crash, which a unit test cannot stage.
TEST(LoggerTest, FsyncModeWritesIdenticalBytes) {
  const std::string path = ::testing::TempDir() + "/fsync_sink.log";
  std::remove(path.c_str());  // the sink appends; a stale file would skew n
  {
    auto* sink = new FileLogSink(path, /*use_fsync=*/true);
    ASSERT_TRUE(sink->ok());
    Logger logger(LogMode::kSync, sink);
    std::vector<uint8_t> rec{7, 7, 7, 7, 7};
    logger.Append(rec);  // returns only after an fsync'd flush
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  uint8_t buffer[16] = {0};
  size_t n = std::fread(buffer, 1, sizeof(buffer), f);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_EQ(n, 5u);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(buffer[i], 7);
}

/// The reopen bug this suite guards against: FileLogSink used to open with
/// "wb", so reconstructing a database on an existing log path silently
/// destroyed all prior committed records.
TEST(LoggerTest, FileSinkAppendsAcrossReopen) {
  const std::string path = ::testing::TempDir() + "/append_sink.log";
  std::remove(path.c_str());
  for (int round = 0; round < 3; ++round) {
    auto* sink = new FileLogSink(path);
    ASSERT_TRUE(sink->ok());
    Logger logger(LogMode::kSync, sink);
    std::vector<uint8_t> rec{static_cast<uint8_t>(round), 1, 2};
    logger.Append(rec);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  uint8_t buffer[16] = {0};
  size_t n = std::fread(buffer, 1, sizeof(buffer), f);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_EQ(n, 9u);  // three rounds of three bytes, none truncated away
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(buffer[round * 3], static_cast<uint8_t>(round));
  }
}

TEST(LoggerTest, UnopenableSinkSurfacesStatus) {
  FileLogSink sink("/nonexistent_dir_mvstore/x.log");
  EXPECT_FALSE(sink.ok());
  EXPECT_FALSE(sink.status().ok());
}

#if defined(__linux__)
/// /dev/full accepts buffered fwrite but fails the flush with ENOSPC; the
/// sink must report broken durability rather than silently dropping bytes.
TEST(LoggerTest, FullDeviceSurfacesStatus) {
  auto* sink = new FileLogSink("/dev/full");
  if (!sink->ok()) {  // environment without /dev/full semantics
    delete sink;
    GTEST_SKIP();
  }
  Logger logger(LogMode::kSync, sink);
  std::vector<uint8_t> rec(128, 0x42);
  logger.Append(rec);  // flushed (and failed) before returning
  EXPECT_FALSE(logger.sink_status().ok());
}
#endif

/// PauseForReplay drops appended records (they are already in the log being
/// replayed) and ResumeAfterReplay restores normal appends.
TEST(LoggerTest, ReplayPauseDropsAppends) {
  auto* sink = new MemoryLogSink();
  Logger logger(LogMode::kSync, sink);
  std::vector<uint8_t> rec{1, 2, 3};
  logger.Append(rec);
  logger.PauseForReplay();
  logger.Append(rec);  // dropped; must not block in kSync either
  logger.ResumeAfterReplay();
  logger.Append(rec);
  EXPECT_EQ(sink->Contents().size(), 6u);
}

TEST(LoggerTest, DisabledDropsEverything) {
  Logger logger(LogMode::kDisabled, nullptr);
  std::vector<uint8_t> rec{1};
  logger.Append(rec);
  EXPECT_EQ(logger.records_appended(), 0u);
}

/// DatabaseOptions::group_commit_us: concurrent committers coalesce into
/// one flush (one fsync when the sink fsyncs) — strictly fewer sink
/// batches than records under concurrency, with every record accounted
/// for in the group-size counter.
TEST(LoggerTest, GroupCommitCoalescesConcurrentAppenders) {
  const std::string path = ::testing::TempDir() + "/group_commit.log";
  std::remove(path.c_str());
  constexpr uint32_t kThreads = 4;
  constexpr uint32_t kRecords = 25;
  StatsCollector stats;
  auto* sink = new FileLogSink(path, /*use_fsync=*/true, &stats);
  ASSERT_TRUE(sink->ok());
  {
    Logger logger(LogMode::kSync, sink, /*group_commit_us=*/1000, &stats);
    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        std::vector<uint8_t> rec(16, 0x3C);
        for (uint32_t i = 0; i < kRecords; ++i) logger.Append(rec);
      });
    }
    for (auto& th : threads) th.join();
    logger.FlushAll();
    const uint64_t commits = logger.records_appended();
    ASSERT_EQ(commits, kThreads * kRecords);
    // Each counted batch is one Write+Sync (= one fsync on this sink).
    EXPECT_GT(stats.Get(Stat::kLogGroupCommits), 0u);
    EXPECT_LT(stats.Get(Stat::kLogGroupCommits), commits);
    EXPECT_EQ(stats.Get(Stat::kLogGroupSizeSum), commits);
  }
  std::remove(path.c_str());
}

/// With the window at 0 the flusher behaves exactly as before (flush as
/// soon as it wakes), and the counters still balance.
TEST(LoggerTest, ZeroWindowStillCountsBatches) {
  StatsCollector stats;
  auto* sink = new MemoryLogSink();
  {
    Logger logger(LogMode::kSync, sink, /*group_commit_us=*/0, &stats);
    std::vector<uint8_t> rec{1, 2, 3};
    for (int i = 0; i < 10; ++i) logger.Append(rec);
    logger.FlushAll();
    EXPECT_EQ(sink->Contents().size(), 30u);
  }
  EXPECT_GT(stats.Get(Stat::kLogGroupCommits), 0u);
  EXPECT_EQ(stats.Get(Stat::kLogGroupSizeSum), 10u);
}

TEST(LoggerTest, ConcurrentAppendersAllFlushed) {
  auto* sink = new MemoryLogSink();  // owned by the logger
  Logger logger(LogMode::kAsync, sink);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      std::vector<uint8_t> rec(10, 0x5A);
      for (int i = 0; i < 500; ++i) logger.Append(rec);
    });
  }
  for (auto& th : threads) th.join();
  logger.FlushAll();
  EXPECT_EQ(sink->Contents().size(), 4u * 500 * 10);
  EXPECT_EQ(logger.records_appended(), 2000u);
}

/// End-to-end: committed MV transactions produce parseable commit records
/// with their end timestamps; aborted transactions log nothing.
TEST(LoggerTest, EngineCommitsProduceRecords) {
  struct Row {
    uint64_t key;
    uint64_t value;
  };
  MVEngineOptions opts;
  opts.log_mode = LogMode::kAsync;
  MVEngine engine(opts);
  TableDef def;
  def.name = "rows";
  def.payload_size = sizeof(Row);
  def.indexes.push_back(
      IndexDef{[](const void* p) { return static_cast<const Row*>(p)->key; },
               64, true});
  TableId table = engine.CreateTable(def);

  Transaction* t1 = engine.Begin(IsolationLevel::kReadCommitted, false);
  Row row{1, 10};
  ASSERT_TRUE(engine.Insert(t1, table, &row).ok());
  ASSERT_TRUE(engine.Commit(t1).ok());

  Transaction* t2 = engine.Begin(IsolationLevel::kReadCommitted, false);
  ASSERT_TRUE(engine.Update(t2, table, 0, 1, [](void* p) {
                  static_cast<Row*>(p)->value = 20;
                }).ok());
  ASSERT_TRUE(engine.Commit(t2).ok());

  Transaction* t3 = engine.Begin(IsolationLevel::kReadCommitted, false);
  ASSERT_TRUE(engine.Delete(t3, table, 0, 1).ok());
  engine.Abort(t3);  // aborted: no record

  // Read-only transactions log nothing either.
  Transaction* t4 = engine.Begin(IsolationLevel::kReadCommitted, false);
  ASSERT_TRUE(engine.Read(t4, table, 0, 1, &row).IsNotFound() == false);
  ASSERT_TRUE(engine.Commit(t4).ok());

  engine.logger().FlushAll();
  EXPECT_EQ(engine.logger().records_appended(), 2u);
}

/// ENOSPC in the middle of a group-commit window (injected at the sink's
/// sync step via failpoint, replacing the /dev/full trick for the
/// multi-committer case): every committer parked on the shared flush must
/// get the failure promptly — no hang on the flushed-LSN wait, and no
/// spurious success ack for a commit whose bytes never became durable.
TEST(LoggerTest, EnospcMidGroupCommitWindowFailsAllParkedCommitters) {
  struct KvRow {
    uint64_t key;
    uint64_t value;
  };
  failpoint::DisarmAll();
  const std::string path = ::testing::TempDir() + "/enospc_group.log";
  std::remove(path.c_str());
  DatabaseOptions opts;
  opts.log_mode = LogMode::kSync;
  opts.log_path = path;
  opts.fsync_log = true;
  opts.group_commit_us = 2000;  // wide window: committers park together
  Database db(opts);
  TableDef def;
  def.name = "kv";
  def.payload_size = sizeof(KvRow);
  def.indexes.push_back(IndexDef{
      [](const void* p) { return static_cast<const KvRow*>(p)->key; }, 64,
      true});
  TableId table = db.CreateTable(def);

  // Prove the pipe works before breaking it.
  Txn* seed = db.Begin(IsolationLevel::kReadCommitted);
  KvRow first{1, 1};
  ASSERT_TRUE(db.Insert(seed, table, &first).ok());
  ASSERT_TRUE(db.Commit(seed).ok());

  ASSERT_TRUE(failpoint::ArmSpec("log.append.sync=error"));
  constexpr int kThreads = 4;
  std::atomic<int> acked{0};
  std::atomic<int> failed{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Txn* txn = db.Begin(IsolationLevel::kReadCommitted);
      KvRow row{100 + static_cast<uint64_t>(t), 1};
      Status s = db.Insert(txn, table, &row);
      if (s.ok()) {
        s = db.Commit(txn);
      } else if (!s.IsAborted()) {
        db.Abort(txn);
      }
      (s.ok() ? acked : failed).fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  failpoint::DisarmAll();

  EXPECT_EQ(acked.load(), 0);  // no success ack without durability
  EXPECT_EQ(failed.load(), kThreads);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            20);  // parked committers were released promptly, not hung
  EXPECT_FALSE(db.log_status().ok());
  EXPECT_TRUE(db.read_only());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mvstore
