// Basic single-threaded behavior of the MV engine through the Database API:
// CRUD, commit/abort semantics, version visibility across transactions.
#include <gtest/gtest.h>

#include "core/database.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;
  uint64_t value;
};

uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

class MVBasicTest : public ::testing::TestWithParam<Scheme> {
 protected:
  MVBasicTest() {
    DatabaseOptions opts;
    opts.scheme = GetParam();
    opts.log_mode = LogMode::kDisabled;
    db_ = std::make_unique<Database>(opts);
    TableDef def;
    def.name = "rows";
    def.payload_size = sizeof(Row);
    def.indexes.push_back(IndexDef{&RowKey, 1024, true});
    table_ = db_->CreateTable(def);
  }

  Status InsertRow(uint64_t key, uint64_t value) {
    Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
    Row row{key, value};
    Status s = db_->Insert(txn, table_, &row);
    if (!s.ok()) {
      if (!s.IsAborted()) db_->Abort(txn);
      return s;
    }
    return db_->Commit(txn);
  }

  Status ReadRow(uint64_t key, Row* out) {
    Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
    Status s = db_->Read(txn, table_, 0, key, out);
    if (s.IsAborted()) return s;
    Status c = db_->Commit(txn);
    return s.ok() ? c : s;
  }

  std::unique_ptr<Database> db_;
  TableId table_ = 0;
};

TEST_P(MVBasicTest, InsertThenRead) {
  ASSERT_TRUE(InsertRow(1, 100).ok());
  Row row{};
  ASSERT_TRUE(ReadRow(1, &row).ok());
  EXPECT_EQ(row.value, 100u);
}

TEST_P(MVBasicTest, ReadMissingIsNotFound) {
  Row row{};
  EXPECT_TRUE(ReadRow(999, &row).IsNotFound());
}

TEST_P(MVBasicTest, DuplicateInsertRejected) {
  ASSERT_TRUE(InsertRow(1, 100).ok());
  Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
  Row row{1, 200};
  Status s = db_->Insert(txn, table_, &row);
  EXPECT_TRUE(s.IsAlreadyExists());
  db_->Abort(txn);
  Row out{};
  ASSERT_TRUE(ReadRow(1, &out).ok());
  EXPECT_EQ(out.value, 100u);
}

TEST_P(MVBasicTest, UpdateChangesValue) {
  ASSERT_TRUE(InsertRow(1, 100).ok());
  Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(db_->Update(txn, table_, 0, 1, [](void* p) {
                   static_cast<Row*>(p)->value = 777;
                 }).ok());
  ASSERT_TRUE(db_->Commit(txn).ok());
  Row row{};
  ASSERT_TRUE(ReadRow(1, &row).ok());
  EXPECT_EQ(row.value, 777u);
}

TEST_P(MVBasicTest, DeleteRemovesRow) {
  ASSERT_TRUE(InsertRow(1, 100).ok());
  Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(db_->Delete(txn, table_, 0, 1).ok());
  ASSERT_TRUE(db_->Commit(txn).ok());
  Row row{};
  EXPECT_TRUE(ReadRow(1, &row).IsNotFound());
}

TEST_P(MVBasicTest, AbortedInsertInvisible) {
  Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
  Row row{5, 50};
  ASSERT_TRUE(db_->Insert(txn, table_, &row).ok());
  db_->Abort(txn);
  Row out{};
  EXPECT_TRUE(ReadRow(5, &out).IsNotFound());
}

TEST_P(MVBasicTest, AbortedUpdateRolledBack) {
  ASSERT_TRUE(InsertRow(1, 100).ok());
  Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(db_->Update(txn, table_, 0, 1, [](void* p) {
                   static_cast<Row*>(p)->value = 0xDEAD;
                 }).ok());
  db_->Abort(txn);
  Row row{};
  ASSERT_TRUE(ReadRow(1, &row).ok());
  EXPECT_EQ(row.value, 100u);
}

TEST_P(MVBasicTest, AbortedDeleteRolledBack) {
  ASSERT_TRUE(InsertRow(1, 100).ok());
  Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(db_->Delete(txn, table_, 0, 1).ok());
  db_->Abort(txn);
  Row row{};
  EXPECT_TRUE(ReadRow(1, &row).ok());
  EXPECT_EQ(row.value, 100u);
}

TEST_P(MVBasicTest, OwnWritesVisibleBeforeCommit) {
  Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
  Row row{9, 90};
  ASSERT_TRUE(db_->Insert(txn, table_, &row).ok());
  Row out{};
  ASSERT_TRUE(db_->Read(txn, table_, 0, 9, &out).ok());
  EXPECT_EQ(out.value, 90u);
  ASSERT_TRUE(db_->Update(txn, table_, 0, 9, [](void* p) {
                   static_cast<Row*>(p)->value = 91;
                 }).ok());
  ASSERT_TRUE(db_->Read(txn, table_, 0, 9, &out).ok());
  EXPECT_EQ(out.value, 91u);
  ASSERT_TRUE(db_->Delete(txn, table_, 0, 9).ok());
  EXPECT_TRUE(db_->Read(txn, table_, 0, 9, &out).IsNotFound());
  ASSERT_TRUE(db_->Commit(txn).ok());
}

TEST_P(MVBasicTest, UncommittedInvisibleToOthers) {
  Txn* writer = db_->Begin(IsolationLevel::kReadCommitted);
  Row row{3, 30};
  ASSERT_TRUE(db_->Insert(writer, table_, &row).ok());

  Txn* reader = db_->Begin(IsolationLevel::kReadCommitted);
  Row out{};
  Status s = db_->Read(reader, table_, 0, 3, &out);
  if (GetParam() == Scheme::kSingleVersion) {
    // 1V: the reader blocks on the writer's exclusive key lock and times
    // out (no multiversioning to hide the uncommitted row behind).
    ASSERT_TRUE(s.IsAborted());
    EXPECT_EQ(s.abort_reason(), AbortReason::kLockTimeout);
  } else {
    // MV: the uncommitted version is simply invisible; no blocking.
    EXPECT_TRUE(s.IsNotFound());
    ASSERT_TRUE(db_->Commit(reader).ok());
  }
  ASSERT_TRUE(db_->Commit(writer).ok());

  // Now visible.
  EXPECT_TRUE(ReadRow(3, &out).ok());
}

TEST_P(MVBasicTest, ScanMatchesResidual) {
  for (uint64_t k = 1; k <= 5; ++k) ASSERT_TRUE(InsertRow(100 + k, k).ok());
  // All rows share no key; scan a single key with residual.
  Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
  int seen = 0;
  Status s = db_->Scan(
      txn, table_, 0, 103,
      [](const void* p) { return static_cast<const Row*>(p)->value >= 3; },
      [&](const void*) {
        ++seen;
        return true;
      });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(seen, 1);
  ASSERT_TRUE(db_->Commit(txn).ok());
}

TEST_P(MVBasicTest, ManyRowsSurviveChurn) {
  for (uint64_t k = 0; k < 200; ++k) ASSERT_TRUE(InsertRow(k, k).ok());
  for (int round = 0; round < 5; ++round) {
    for (uint64_t k = 0; k < 200; ++k) {
      Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
      ASSERT_TRUE(db_->Update(txn, table_, 0, k, [round](void* p) {
                       static_cast<Row*>(p)->value += round;
                     }).ok());
      ASSERT_TRUE(db_->Commit(txn).ok());
    }
  }
  Row row{};
  ASSERT_TRUE(ReadRow(7, &row).ok());
  EXPECT_EQ(row.value, 7u + 0 + 1 + 2 + 3 + 4);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, MVBasicTest,
                         ::testing::Values(Scheme::kSingleVersion,
                                           Scheme::kMultiVersionLocking,
                                           Scheme::kMultiVersionOptimistic),
                         [](const auto& info) {
                           return std::string(
                               SchemeName(info.param) == std::string("1V")
                                   ? "SV"
                                   : (info.param ==
                                              Scheme::kMultiVersionLocking
                                          ? "MVL"
                                          : "MVO"));
                         });

}  // namespace
}  // namespace mvstore
