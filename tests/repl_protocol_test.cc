// Replication protocol hardening (ctest labels: unit, repl).
//
// The shipper's port faces another machine's bytes, so it gets the same
// adversarial treatment the session port got in wire_test: garbage frames,
// corrupted checksums, truncated bodies, stale and diverged handshakes — and
// in every case the blast radius must be exactly one replication session.
// The leader keeps committing, other followers keep following, and a fresh
// follower can still attach. Also covered here: the follower's
// heartbeat-timeout reconnect against a fake silent leader, the laggard
// drop (an attached follower that never acks cannot wedge commits forever),
// and the session-layer follower gate (reads OK, writes kReadOnly, promote
// opcode flips it).
#include <gtest/gtest.h>

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "client/read_router.h"
#include "core/database.h"
#include "repl/replica.h"
#include "repl/shipper.h"
#include "server/loopback.h"
#include "server/server_core.h"
#include "server/wire.h"

namespace mvstore {
namespace {

#if defined(__linux__)

struct Row {
  uint64_t key;
  uint64_t val;
};

uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

void DefineSchema(Database& db) {
  TableDef def;
  def.name = "t";
  def.payload_size = sizeof(Row);
  IndexDef primary;
  primary.extractor = RowKey;
  primary.bucket_count = 1024;
  primary.unique = true;
  def.indexes.push_back(primary);
  db.CreateTable(std::move(def));
}

std::string FreshDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

DatabaseOptions MakeDbOptions(const std::string& dir) {
  DatabaseOptions db;
  db.scheme = Scheme::kMultiVersionOptimistic;
  db.log_mode = LogMode::kSync;
  db.log_path = dir + "/wal";
  db.log_segment_bytes = 16 * 1024;
  db.checkpoint_path = dir + "/ckpt";
  return db;
}

Status WriteRow(Database& db, uint64_t key, uint64_t val) {
  return db.RunTransaction(IsolationLevel::kReadCommitted, [&](Txn* txn) {
    Row r{key, val};
    Status s = db.Insert(txn, 0, &r);
    if (s.IsAlreadyExists()) {
      s = db.Update(txn, 0, 0, key, [&](void* p) {
        static_cast<Row*>(p)->val = val;
      });
    }
    return s;
  });
}

bool WaitFor(const std::function<bool()>& cond, uint32_t timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

/// Raw test connection to a repl port: hand-crafted frames in, parsed
/// frames out.
struct RawConn {
  int fd = -1;
  wire::FrameParser parser;

  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  bool Dial(uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }

  bool SendRaw(const std::vector<uint8_t>& bytes) {
    return ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(bytes.size());
  }

  bool SendFrame(wire::Opcode opcode, const std::vector<uint8_t>& body,
                 uint8_t flags = 0) {
    std::vector<uint8_t> framed;
    wire::AppendFrame(&framed, opcode, flags, body.data(), body.size());
    return SendRaw(framed);
  }

  /// 1 = frame, 0 = timeout, -1 = closed/garbage.
  int RecvFrame(wire::Frame* frame, int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    uint8_t buf[16 * 1024];
    while (true) {
      switch (parser.Next(frame)) {
        case wire::FrameParser::Result::kFrame:
          return 1;
        case wire::FrameParser::Result::kBad:
          return -1;
        case wire::FrameParser::Result::kNeedMore:
          break;
      }
      if (std::chrono::steady_clock::now() >= deadline) return 0;
      pollfd p{fd, POLLIN, 0};
      if (::poll(&p, 1, 100) <= 0) continue;
      const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
      if (r <= 0) return -1;
      parser.Feed(buf, static_cast<size_t>(r));
    }
  }

  /// True once the peer closed this connection.
  bool PeerClosed(int timeout_ms = 5000) {
    wire::Frame f;
    while (true) {
      const int r = RecvFrame(&f, timeout_ms);
      if (r <= 0) return r == -1;
    }
  }

  std::vector<uint8_t> HandshakeBody(uint8_t proto, uint8_t scheme,
                                     uint8_t have_state, uint64_t seq,
                                     uint64_t size) {
    std::vector<uint8_t> body;
    wire::Put(&body, proto);
    wire::Put(&body, scheme);
    wire::Put(&body, have_state);
    wire::Put(&body, seq);
    wire::Put(&body, size);
    return body;
  }
};

class ReplProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = FreshDir("mvstore_repl_proto");
    Status st;
    db_ = Database::Open(MakeDbOptions(dir_), DefineSchema, &st);
    ASSERT_NE(db_, nullptr) << st.ToString();
    ShipperOptions sopts;
    sopts.ack_timeout_ms = 500;  // laggard tests should not take long
    shipper_ = std::make_unique<ReplShipper>(*db_, sopts);
    ASSERT_TRUE(shipper_->Start().ok());
    ASSERT_NE(shipper_->port(), 0);
  }

  void TearDown() override {
    shipper_.reset();
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  ReplicaOptions FollowerOptions(const std::string& sub) {
    ReplicaOptions ropts;
    ropts.db = MakeDbOptions(dir_ + "/" + sub);
    std::filesystem::create_directories(dir_ + "/" + sub);
    ropts.define_schema = DefineSchema;
    ropts.leader_port = shipper_->port();
    ropts.reconnect_ms = 10;
    return ropts;
  }

  std::string dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ReplShipper> shipper_;
};

// Garbage bytes on the repl port kill only that connection: the leader
// keeps committing and a real follower still attaches afterwards.
TEST_F(ReplProtocolTest, GarbageKillsOnlyThatConnection) {
  RawConn garbage;
  ASSERT_TRUE(garbage.Dial(shipper_->port()));
  ASSERT_TRUE(garbage.SendRaw({'X', 'Y', 0xff, 0x00, 0xde, 0xad, 0xbe,
                               0xef, 1, 2, 3, 4, 5, 6}));
  EXPECT_TRUE(garbage.PeerClosed());

  // Leader unharmed: commits succeed...
  ASSERT_TRUE(WriteRow(*db_, 1, 10).ok());
  // ...and a real follower bootstraps, attaches, and replays that commit.
  Status st;
  auto replica = Replica::Open(FollowerOptions("f1"), &st);
  ASSERT_NE(replica, nullptr) << st.ToString();
  ASSERT_TRUE(WaitFor([&] { return replica->ready(); }));
  ASSERT_TRUE(WriteRow(*db_, 2, 20).ok());
  EXPECT_TRUE(WaitFor([&] { return replica->batches_applied() > 0; }));
  EXPECT_FALSE(replica->failed());
}

// A frame whose checksum does not match its bytes must close the
// connection (framing cannot be trusted afterwards).
TEST_F(ReplProtocolTest, CorruptChecksumClosesConnection) {
  RawConn conn;
  ASSERT_TRUE(conn.Dial(shipper_->port()));
  std::vector<uint8_t> framed;
  const std::vector<uint8_t> body =
      conn.HandshakeBody(wire::kReplProtoVersion,
                         static_cast<uint8_t>(db_->scheme()), 0, 1, 16);
  wire::AppendFrame(&framed, wire::Opcode::kReplHandshake, 0, body.data(),
                    body.size());
  framed[framed.size() - 1] ^= 0x5a;  // corrupt the last body byte
  ASSERT_TRUE(conn.SendRaw(framed));
  EXPECT_TRUE(conn.PeerClosed());
  EXPECT_TRUE(WriteRow(*db_, 3, 30).ok());  // leader unharmed
}

// A structurally valid frame with a truncated body (handshake missing its
// position fields) is answered InvalidArgument and the connection closed.
TEST_F(ReplProtocolTest, TruncatedBodyRefusedFatally) {
  RawConn conn;
  ASSERT_TRUE(conn.Dial(shipper_->port()));
  std::vector<uint8_t> short_body;
  wire::Put(&short_body, wire::kReplProtoVersion);
  ASSERT_TRUE(conn.SendFrame(wire::Opcode::kReplHandshake, short_body));
  wire::Frame frame;
  ASSERT_EQ(conn.RecvFrame(&frame), 1);
  ASSERT_GE(frame.body.size(), 2u);
  EXPECT_TRUE(
      wire::WireToStatus(frame.body[0], frame.body[1]).IsInvalidArgument());
  EXPECT_TRUE(conn.PeerClosed());
}

// Wrong protocol version and wrong scheme are refused before any byte
// ships.
TEST_F(ReplProtocolTest, VersionAndSchemeMismatchRefused) {
  for (int variant = 0; variant < 2; ++variant) {
    RawConn conn;
    ASSERT_TRUE(conn.Dial(shipper_->port()));
    const uint8_t proto =
        variant == 0 ? wire::kReplProtoVersion + 1 : wire::kReplProtoVersion;
    const uint8_t scheme = variant == 0
                               ? static_cast<uint8_t>(db_->scheme())
                               : static_cast<uint8_t>(db_->scheme()) + 1;
    ASSERT_TRUE(conn.SendFrame(
        wire::Opcode::kReplHandshake,
        conn.HandshakeBody(proto, scheme, 0, 1, 16)));
    wire::Frame frame;
    ASSERT_EQ(conn.RecvFrame(&frame), 1) << "variant " << variant;
    EXPECT_TRUE(
        wire::WireToStatus(frame.body[0], frame.body[1]).IsInvalidArgument());
    EXPECT_TRUE(conn.PeerClosed());
  }
}

// A follower claiming a position beyond anything the leader ever wrote is
// diverged; shipping to it could only corrupt it further.
TEST_F(ReplProtocolTest, DivergedAheadHandshakeRefused) {
  RawConn conn;
  ASSERT_TRUE(conn.Dial(shipper_->port()));
  ASSERT_TRUE(conn.SendFrame(
      wire::Opcode::kReplHandshake,
      conn.HandshakeBody(wire::kReplProtoVersion,
                         static_cast<uint8_t>(db_->scheme()), 1,
                         /*seq=*/999999, /*size=*/1 << 30)));
  wire::Frame frame;
  ASSERT_EQ(conn.RecvFrame(&frame), 1);
  EXPECT_TRUE(
      wire::WireToStatus(frame.body[0], frame.body[1]).IsInvalidArgument());
  EXPECT_TRUE(conn.PeerClosed());
}

// An attached follower that never acks must not wedge commits forever: the
// leader drops it at the ack timeout and the commit completes.
TEST_F(ReplProtocolTest, SilentFollowerDroppedAtAckTimeout) {
  RawConn conn;
  ASSERT_TRUE(conn.Dial(shipper_->port()));
  ASSERT_TRUE(conn.SendFrame(
      wire::Opcode::kReplHandshake,
      conn.HandshakeBody(wire::kReplProtoVersion,
                         static_cast<uint8_t>(db_->scheme()), 0, 1, 16)));
  wire::Frame frame;
  ASSERT_EQ(conn.RecvFrame(&frame), 1);
  ASSERT_TRUE(wire::WireToStatus(frame.body[0], frame.body[1]).ok());
  wire::BodyReader reader(frame.body.data() + 2, frame.body.size() - 2);
  uint64_t min_seq = 0, ckpt_size = 0, cov = 0, ts = 0, cur_seq = 0,
           cur_size = 0, last = 0;
  uint8_t present = 0;
  ASSERT_TRUE(reader.Read(&min_seq));
  ASSERT_TRUE(reader.Read(&present));
  ASSERT_TRUE(reader.Read(&ckpt_size));
  ASSERT_TRUE(reader.Read(&cov));
  ASSERT_TRUE(reader.Read(&ts));
  ASSERT_TRUE(reader.Read(&cur_seq));
  ASSERT_TRUE(reader.Read(&cur_size));
  ASSERT_TRUE(reader.Read(&last));

  // Attach at the leader's exact position (quiescent leader: stable).
  std::vector<uint8_t> stream;
  wire::Put(&stream, cur_seq);
  wire::Put(&stream, cur_size);
  ASSERT_TRUE(conn.SendFrame(wire::Opcode::kReplStream, stream));
  ASSERT_EQ(conn.RecvFrame(&frame), 1);
  wire::BodyReader att(frame.body.data() + 2, frame.body.size() - 2);
  uint8_t attached = 0;
  ASSERT_TRUE(att.Read(&attached));
  ASSERT_EQ(attached, 1);
  ASSERT_TRUE(WaitFor([&] { return shipper_->attached_followers() == 1; }));

  // Never ack. The commit must still complete (ack_timeout_ms = 500).
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(WriteRow(*db_, 4, 40).ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(30));
  EXPECT_TRUE(WaitFor([&] { return shipper_->followers_dropped() >= 1; }));
  EXPECT_EQ(shipper_->attached_followers(), 0u);
  // Subsequent commits fly free.
  ASSERT_TRUE(WriteRow(*db_, 5, 50).ok());
}

// A fake leader that answers the handshake and attach but then goes silent
// must trip the follower's heartbeat timeout and trigger reconnects.
TEST_F(ReplProtocolTest, HeartbeatTimeoutTriggersReconnect) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  int on = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const uint16_t fake_port = ntohs(addr.sin_port);

  std::atomic<int> accepts{0};
  std::atomic<bool> stop{false};
  std::thread fake([&] {
    while (!stop.load()) {
      pollfd p{listen_fd, POLLIN, 0};
      if (::poll(&p, 1, 50) <= 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      accepts.fetch_add(1);
      // Serve handshake + empty live chunk + attach, then go silent.
      wire::FrameParser parser;
      uint8_t buf[4096];
      const auto conn_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (!stop.load() &&
             std::chrono::steady_clock::now() < conn_deadline) {
        pollfd cp{fd, POLLIN, 0};
        if (::poll(&cp, 1, 50) <= 0) continue;
        const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
        if (r <= 0) break;
        parser.Feed(buf, static_cast<size_t>(r));
        wire::Frame frame;
        while (parser.Next(&frame) == wire::FrameParser::Result::kFrame) {
          std::vector<uint8_t> payload;
          if (frame.opcode == wire::Opcode::kReplHandshake) {
            wire::Put(&payload, uint64_t{1});   // min_seq
            wire::Put(&payload, uint8_t{0});    // no checkpoint
            wire::Put(&payload, uint64_t{0});
            wire::Put(&payload, uint64_t{0});
            wire::Put(&payload, uint64_t{0});
            wire::Put(&payload, uint64_t{1});   // cur = {1, 16}
            wire::Put(&payload, uint64_t{16});
            wire::Put(&payload, uint64_t{1});   // last_ts
          } else if (frame.opcode == wire::Opcode::kReplSegChunk) {
            wire::Put(&payload, uint8_t{0});    // live segment
            wire::Put(&payload, uint64_t{16});  // total = header only
          } else if (frame.opcode == wire::Opcode::kReplStream) {
            wire::Put(&payload, uint8_t{1});    // attached
            wire::Put(&payload, uint64_t{1});
            wire::Put(&payload, uint64_t{16});
          } else {
            continue;  // acks etc.: ignore
          }
          std::vector<uint8_t> out;
          wire::AppendResponse(&out, frame.opcode, Status::OK(),
                               payload.data(), payload.size());
          if (::send(fd, out.data(), out.size(), MSG_NOSIGNAL) < 0) break;
        }
      }
      ::close(fd);  // silence, then hang up: the replica must reconnect
    }
  });

  ReplicaOptions ropts;
  ropts.db = MakeDbOptions(FreshDir("mvstore_repl_proto_hb"));
  ropts.define_schema = DefineSchema;
  ropts.leader_port = fake_port;
  ropts.reconnect_ms = 10;
  ropts.heartbeat_timeout_ms = 200;
  Status st;
  auto replica = Replica::Open(ropts, &st);
  ASSERT_NE(replica, nullptr) << st.ToString();

  // The fake leader never heartbeats, so every attach must time out and
  // re-dial: multiple accepts prove the detection loop works.
  EXPECT_TRUE(WaitFor([&] { return accepts.load() >= 3; }, 20000));
  EXPECT_TRUE(replica->ready());  // it did attach (then lost the leader)
  EXPECT_GE(replica->reconnects(), 1u);
  EXPECT_FALSE(replica->failed());

  replica->Stop();
  stop.store(true);
  fake.join();
  ::close(listen_fd);
}

// The session layer in front of a follower: reads work at the replayed
// snapshot, writes come back kReadOnly without killing the transaction,
// and kReplPromote flips the gate.
TEST_F(ReplProtocolTest, FollowerSessionsReadOnlyUntilPromoted) {
  ASSERT_TRUE(WriteRow(*db_, 7, 70).ok());
  Status st;
  auto replica = Replica::Open(FollowerOptions("f2"), &st);
  ASSERT_NE(replica, nullptr) << st.ToString();
  ASSERT_TRUE(WaitFor([&] { return replica->ready(); }));
  ASSERT_TRUE(
      WaitFor([&] { return replica->replayed_ts() >= db_->LastCommitTimestamp(); }));

  ServerCore core(replica->db());
  core.SetReplica(replica.get());
  LoopbackTransport transport(core);
  MVClient client(transport);

  ASSERT_TRUE(client.Begin(IsolationLevel::kReadCommitted).ok());
  Row row{};
  ASSERT_TRUE(client.Get(0, 0, 7, &row, sizeof(row)).ok());
  EXPECT_EQ(row.val, 70u);
  Row nrow{8, 80};
  EXPECT_TRUE(client.Insert(0, &nrow, sizeof(nrow)).IsReadOnly());
  // The refusal left the transaction alive: reads still work, commit is OK.
  ASSERT_TRUE(client.Get(0, 0, 7, &row, sizeof(row)).ok());
  ASSERT_TRUE(client.Commit().ok());

  // Promote through the wire opcode, then writes flow.
  ASSERT_TRUE(client.Promote().ok());
  EXPECT_TRUE(replica->writable());
  ASSERT_TRUE(client.Begin(IsolationLevel::kReadCommitted).ok());
  ASSERT_TRUE(client.Insert(0, &nrow, sizeof(nrow)).ok());
  ASSERT_TRUE(client.Commit().ok());

  core.SetReplica(nullptr);
}

// ReadRouter sends read-only transactions to the follower, writes (and
// read-your-own-writes reads) to the leader, and falls back to the
// leader when the follower is marked out.
TEST_F(ReplProtocolTest, ReadRouterRoutesReadsToFollower) {
  ASSERT_TRUE(WriteRow(*db_, 5, 50).ok());
  Status st;
  auto replica = Replica::Open(FollowerOptions("router"), &st);
  ASSERT_NE(replica, nullptr) << st.ToString();
  ASSERT_TRUE(WaitFor([&] {
    return replica->replayed_ts() >= db_->LastCommitTimestamp();
  }));

  ServerCore leader_core(*db_);
  LoopbackTransport leader_transport(leader_core);
  MVClient leader_client(leader_transport);
  ServerCore follower_core(replica->db());
  follower_core.SetReplica(replica.get());
  LoopbackTransport follower_transport(follower_core);
  MVClient follower_client(follower_transport);

  ReadRouter router(&leader_client);
  router.AddFollower(&follower_client);
  ASSERT_EQ(router.Writer(), &leader_client);
  ASSERT_EQ(router.available_followers(), 1u);

  // A read-only transaction through Reader() lands on the follower and
  // sees the replicated row.
  MVClient* reader = router.Reader();
  ASSERT_EQ(reader, &follower_client);
  ASSERT_TRUE(
      reader->Begin(IsolationLevel::kReadCommitted, /*read_only=*/true).ok());
  Row row{};
  ASSERT_TRUE(reader->Get(0, 0, 5, &row, sizeof(row)).ok());
  EXPECT_EQ(row.val, 50u);
  ASSERT_TRUE(reader->Commit().ok());

  // Writes through Writer() reach the leader and replicate down.
  ASSERT_TRUE(WriteRow(*db_, 6, 60).ok());
  ASSERT_TRUE(WaitFor([&] {
    return replica->replayed_ts() >= db_->LastCommitTimestamp();
  }));
  reader = router.Reader();
  ASSERT_EQ(reader, &follower_client);
  ASSERT_TRUE(
      reader->Begin(IsolationLevel::kReadCommitted, /*read_only=*/true).ok());
  ASSERT_TRUE(reader->Get(0, 0, 6, &row, sizeof(row)).ok());
  EXPECT_EQ(row.val, 60u);
  ASSERT_TRUE(reader->Commit().ok());

  // Follower marked out: reads fall back to the leader (and keep
  // working); marking it back restores the fan-out.
  router.MarkUnavailable(&follower_client);
  EXPECT_EQ(router.available_followers(), 0u);
  reader = router.Reader();
  ASSERT_EQ(reader, &leader_client);
  ASSERT_TRUE(
      reader->Begin(IsolationLevel::kReadCommitted, /*read_only=*/true).ok());
  ASSERT_TRUE(reader->Get(0, 0, 6, &row, sizeof(row)).ok());
  ASSERT_TRUE(reader->Commit().ok());
  router.MarkAvailable(&follower_client);
  EXPECT_EQ(router.Reader(), &follower_client);

  follower_core.SetReplica(nullptr);
}

// Promote without ever attaching is refused (the shell would serve
// nothing), and kReplPromote against a non-follower server is
// InvalidArgument.
TEST_F(ReplProtocolTest, PromoteGuards) {
  // Non-follower server: no gate.
  ServerCore core(*db_);
  LoopbackTransport transport(core);
  MVClient client(transport);
  EXPECT_TRUE(client.Promote().IsInvalidArgument());

  // Fresh replica against an unreachable leader: never attaches.
  ReplicaOptions ropts;
  ropts.db = MakeDbOptions(FreshDir("mvstore_repl_proto_pg"));
  ropts.define_schema = DefineSchema;
  ropts.leader_port = 1;  // nothing listens there
  ropts.reconnect_ms = 10;
  Status st;
  auto replica = Replica::Open(ropts, &st);
  ASSERT_NE(replica, nullptr) << st.ToString();
  EXPECT_TRUE(replica->Promote(/*force=*/false).IsUnavailable());
  // Forced promote of an empty-but-valid mirror is allowed (operator's
  // last resort) and yields a writable database.
  EXPECT_TRUE(replica->Promote(/*force=*/true).ok());
  EXPECT_TRUE(replica->writable());
  EXPECT_TRUE(WriteRow(replica->db(), 9, 90).ok());
}

#else  // !__linux__

TEST(ReplProtocolTest, SkippedOnNonLinux) {
  GTEST_SKIP() << "replication is Linux-only";
}

#endif

}  // namespace
}  // namespace mvstore
