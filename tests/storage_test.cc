// Storage-layer details: version layout, multi-index tables, catalog, and
// the striped statistics counters.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "common/counters.h"
#include "storage/table.h"
#include "storage/version.h"

namespace mvstore {
namespace {

struct Wide {
  uint64_t a;
  uint64_t b;
  char blob[40];
};
uint64_t WideKeyA(const void* p) { return static_cast<const Wide*>(p)->a; }
uint64_t WideKeyB(const void* p) { return static_cast<const Wide*>(p)->b; }

TEST(VersionTest, AllocSizeAccountsForIndexesAndPayload) {
  EXPECT_EQ(Version::AllocSize(1, 24), sizeof(Version) + 8 + 24);
  EXPECT_EQ(Version::AllocSize(3, 100), sizeof(Version) + 24 + 100);
}

TEST(VersionTest, CreateInitializesInvisible) {
  alignas(Version) char storage[256];
  uint8_t payload[16] = {1, 2, 3};
  Version* v = Version::Create(storage, 2, sizeof(payload), payload);
  EXPECT_EQ(beginword::TimestampOf(v->begin.load()), kInfinity);
  EXPECT_EQ(lockword::TimestampOf(v->end.load()), kInfinity);
  EXPECT_EQ(v->Next(0).load(), nullptr);
  EXPECT_EQ(v->Next(1).load(), nullptr);
  EXPECT_EQ(std::memcmp(v->Payload(), payload, sizeof(payload)), 0);
  EXPECT_EQ(v->payload_size(), sizeof(payload));
  EXPECT_EQ(v->num_indexes(), 2u);
}

TEST(VersionTest, PayloadOffsetIndependentPerIndexCount) {
  // Payload must sit after the next-pointer array regardless of count.
  for (uint32_t n : {1u, 2u, 4u}) {
    std::vector<char> storage(Version::AllocSize(n, 8));
    uint64_t magic = 0xABCDEF0123456789ull;
    Version* v = Version::Create(storage.data(), n, 8, &magic);
    EXPECT_EQ(*static_cast<const uint64_t*>(v->Payload()), magic);
  }
}

TEST(TableTest, MultiIndexInsertAndUnlink) {
  TableDef def;
  def.name = "wide";
  def.payload_size = sizeof(Wide);
  def.indexes.push_back(IndexDef{&WideKeyA, 64, true});
  def.indexes.push_back(IndexDef{&WideKeyB, 64, false});
  Table table(0, def);
  ASSERT_EQ(table.num_indexes(), 2u);

  Wide row{1, 100, {0}};
  Version* v = table.AllocateVersion(&row);
  table.InsertIntoAllIndexes(v);
  EXPECT_EQ(table.index(0).CountEntries(), 1u);
  EXPECT_EQ(table.index(1).CountEntries(), 1u);

  // Reachable by both keys.
  bool found_a = false, found_b = false;
  table.index(0).ScanBucket(1, [&](Version* x) {
    found_a = (x == v);
    return !found_a;
  });
  table.index(1).ScanBucket(100, [&](Version* x) {
    found_b = (x == v);
    return !found_b;
  });
  EXPECT_TRUE(found_a);
  EXPECT_TRUE(found_b);

  table.UnlinkFromAllIndexes(v);
  EXPECT_EQ(table.index(0).CountEntries(), 0u);
  EXPECT_EQ(table.index(1).CountEntries(), 0u);
  table.FreeUnpublishedVersion(v);
}

TEST(TableTest, AllocateWithNullPayloadLeavesUninitialized) {
  TableDef def;
  def.name = "t";
  def.payload_size = 8;
  def.indexes.push_back(IndexDef{&WideKeyA, 16, true});
  Table table(0, def);
  Version* v = table.AllocateVersion(nullptr);
  ASSERT_NE(v, nullptr);
  table.FreeUnpublishedVersion(v);
}

TEST(CatalogTest, CreateAndLookup) {
  Catalog catalog;
  TableDef def;
  def.name = "alpha";
  def.payload_size = 8;
  def.indexes.push_back(IndexDef{&WideKeyA, 16, true});
  TableId a = catalog.CreateTable(def);
  def.name = "beta";
  TableId b = catalog.CreateTable(def);
  EXPECT_NE(a, b);
  EXPECT_EQ(catalog.table(a).name(), "alpha");
  EXPECT_EQ(catalog.num_tables(), 2u);
  EXPECT_EQ(catalog.FindByName("beta"), &catalog.table(b));
  EXPECT_EQ(catalog.FindByName("gamma"), nullptr);
}

TEST(CountersTest, AddAndAggregate) {
  StatsCollector stats;
  stats.Add(Stat::kTxnCommitted, 5);
  stats.Add(Stat::kTxnCommitted, 3);
  stats.Add(Stat::kTxnAborted);
  EXPECT_EQ(stats.Get(Stat::kTxnCommitted), 8u);
  EXPECT_EQ(stats.Get(Stat::kTxnAborted), 1u);
  stats.Reset();
  EXPECT_EQ(stats.Get(Stat::kTxnCommitted), 0u);
}

TEST(CountersTest, ConcurrentAddsAreLossless) {
  StatsCollector stats;
  constexpr int kThreads = 8, kPer = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) stats.Add(Stat::kVersionsCreated);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(stats.Get(Stat::kVersionsCreated),
            static_cast<uint64_t>(kThreads) * kPer);
}

TEST(CountersTest, ToStringListsNonZero) {
  StatsCollector stats;
  stats.Add(Stat::kDeadlocksDetected, 2);
  std::string s = stats.ToString();
  EXPECT_NE(s.find("deadlocks_detected=2"), std::string::npos);
  EXPECT_EQ(s.find("txn_committed"), std::string::npos);
}

}  // namespace
}  // namespace mvstore
