// Row-by-row tests of the paper's visibility case analysis:
//   Table 1 -- version Begin field contains a transaction ID;
//   Table 2 -- version End field contains a transaction ID;
// including speculative reads / speculative ignores and the commit
// dependencies they register (Sections 2.5-2.7), plus updatability
// (Section 2.6).
#include "cc/visibility.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "storage/table.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

class VisibilityTest : public ::testing::Test {
 protected:
  VisibilityTest() : table_(0, MakeDef()) {}

  static TableDef MakeDef() {
    TableDef def;
    def.name = "t";
    def.payload_size = sizeof(Row);
    def.indexes.push_back(IndexDef{&RowKey, 64, true});
    return def;
  }

  ~VisibilityTest() override {
    for (Version* v : versions_) table_.FreeUnpublishedVersion(v);
    for (Transaction* t : txns_) delete t;
  }

  Version* NewVersion(uint64_t begin_word, uint64_t end_word) {
    Row row{1};
    Version* v = table_.AllocateVersion(&row);
    v->begin.store(begin_word);
    v->end.store(end_word);
    versions_.push_back(v);
    return v;
  }

  Transaction* NewTxn(TxnId id, TxnState state, Timestamp end_ts = 0,
                      bool in_table = true) {
    auto* t = new Transaction(id, IsolationLevel::kSerializable,
                              /*pessimistic=*/false, /*read_only=*/false);
    t->begin_ts.store(1);
    t->end_ts.store(end_ts);
    t->state.store(state);
    txns_.push_back(t);
    if (in_table) txn_table_.Insert(t);
    return t;
  }

  VisibilityContext Ctx(Transaction* self,
                        VisibilityMode mode = VisibilityMode::kNormalProcessing) {
    VisibilityContext ctx;
    ctx.self = self;
    ctx.txn_table = &txn_table_;
    ctx.stats = &stats_;
    ctx.mode = mode;
    return ctx;
  }

  Table table_;
  TxnTable txn_table_;
  StatsCollector stats_;
  std::vector<Version*> versions_;
  std::vector<Transaction*> txns_;
};

/// --- both fields are timestamps ---------------------------------------------

TEST_F(VisibilityTest, TimestampsReadTimeInsideWindow) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeTimestamp(20));
  EXPECT_TRUE(CheckVisibility(Ctx(self), v, 15).visible);
  EXPECT_TRUE(CheckVisibility(Ctx(self), v, 10).visible);   // begin inclusive
  EXPECT_FALSE(CheckVisibility(Ctx(self), v, 20).visible);  // end exclusive
  EXPECT_FALSE(CheckVisibility(Ctx(self), v, 5).visible);
  EXPECT_FALSE(CheckVisibility(Ctx(self), v, 25).visible);
}

TEST_F(VisibilityTest, LatestVersionVisibleToAnyLaterReadTime) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeTimestamp(kInfinity));
  EXPECT_TRUE(CheckVisibility(Ctx(self), v, 1000000).visible);
}

TEST_F(VisibilityTest, GarbageVersionInvisible) {
  // Aborted creator set Begin to infinity.
  Transaction* self = NewTxn(100, TxnState::kActive);
  Version* v = NewVersion(beginword::MakeTimestamp(kInfinity),
                          lockword::MakeTimestamp(kInfinity));
  EXPECT_FALSE(CheckVisibility(Ctx(self), v, 50).visible);
}

/// --- Table 1: Begin contains a transaction ID -------------------------------

TEST_F(VisibilityTest, Table1ActiveOwnVersionLatestVisible) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  Version* v = NewVersion(beginword::MakeTxnId(100),
                          lockword::MakeTimestamp(kInfinity));
  EXPECT_TRUE(CheckVisibility(Ctx(self), v, 1).visible);
}

TEST_F(VisibilityTest, Table1ActiveOwnVersionSupersededInvisible) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  // We created it, then replaced it ourselves (our write lock on it).
  Version* v = NewVersion(beginword::MakeTxnId(100),
                          lockword::MakeLockWord(0, 100));
  EXPECT_FALSE(CheckVisibility(Ctx(self), v, 1).visible);
}

TEST_F(VisibilityTest, Table1ActiveForeignVersionInvisible) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  NewTxn(200, TxnState::kActive);
  Version* v = NewVersion(beginword::MakeTxnId(200),
                          lockword::MakeTimestamp(kInfinity));
  EXPECT_FALSE(CheckVisibility(Ctx(self), v, 50).visible);
}

TEST_F(VisibilityTest, Table1PreparingSpeculativeRead) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  Transaction* tb = NewTxn(200, TxnState::kPreparing, /*end_ts=*/30);
  Version* v = NewVersion(beginword::MakeTxnId(200),
                          lockword::MakeTimestamp(kInfinity));
  // RT=40 > TS=30: speculative read; visible + commit dependency on TB.
  VisibilityResult r = CheckVisibility(Ctx(self), v, 40);
  EXPECT_TRUE(r.visible);
  EXPECT_EQ(self->commit_dep_counter.load(), 1u);
  {
    SpinLatchGuard g(tb->dep_latch);
    ASSERT_EQ(tb->commit_dep_set.size(), 1u);
    EXPECT_EQ(tb->commit_dep_set[0], self->id);
  }
  EXPECT_EQ(stats_.Get(Stat::kSpeculativeReads), 1u);
}

TEST_F(VisibilityTest, Table1PreparingReadCommittedNeverSpeculates) {
  // Same situation as Table1PreparingSpeculativeRead, but the reader runs
  // at Read Committed: no snapshot promise, so the Preparing creator is
  // treated like an Active one -- invisible, and no commit dependency.
  Transaction* self = NewTxn(100, TxnState::kActive);
  self->isolation = IsolationLevel::kReadCommitted;
  Transaction* tb = NewTxn(200, TxnState::kPreparing, /*end_ts=*/30);
  Version* v = NewVersion(beginword::MakeTxnId(200),
                          lockword::MakeTimestamp(kInfinity));
  EXPECT_FALSE(CheckVisibility(Ctx(self), v, 40).visible);
  EXPECT_EQ(self->commit_dep_counter.load(), 0u);
  {
    SpinLatchGuard g(tb->dep_latch);
    EXPECT_TRUE(tb->commit_dep_set.empty());
  }
  EXPECT_EQ(stats_.Get(Stat::kSpeculativeReads), 0u);
}

TEST_F(VisibilityTest, Table1PreparingReadCommittedUpdateStillSpeculates) {
  // An update-path probe (for_update) speculates even at Read Committed:
  // surfacing the older version would only hand the updater a guaranteed
  // write-write abort against the Preparing writer's lock.
  Transaction* self = NewTxn(100, TxnState::kActive);
  self->isolation = IsolationLevel::kReadCommitted;
  NewTxn(200, TxnState::kPreparing, /*end_ts=*/30);
  Version* v = NewVersion(beginword::MakeTxnId(200),
                          lockword::MakeTimestamp(kInfinity));
  VisibilityContext ctx = Ctx(self);
  ctx.for_update = true;
  EXPECT_TRUE(CheckVisibility(ctx, v, 40).visible);
  EXPECT_EQ(self->commit_dep_counter.load(), 1u);
}

TEST_F(VisibilityTest, Table1PreparingTooNewInvisibleNoDep) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  NewTxn(200, TxnState::kPreparing, /*end_ts=*/30);
  Version* v = NewVersion(beginword::MakeTxnId(200),
                          lockword::MakeTimestamp(kInfinity));
  // RT=20 < TS=30: invisible whether TB commits or aborts; no dependency.
  EXPECT_FALSE(CheckVisibility(Ctx(self), v, 20).visible);
  EXPECT_EQ(self->commit_dep_counter.load(), 0u);
}

TEST_F(VisibilityTest, Table1CommittedUsesEndTsAsBeginTime) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  NewTxn(200, TxnState::kCommitted, /*end_ts=*/30);
  Version* v = NewVersion(beginword::MakeTxnId(200),
                          lockword::MakeTimestamp(kInfinity));
  EXPECT_TRUE(CheckVisibility(Ctx(self), v, 40).visible);
  EXPECT_FALSE(CheckVisibility(Ctx(self), v, 20).visible);
  EXPECT_EQ(self->commit_dep_counter.load(), 0u);  // committed: no dep
}

TEST_F(VisibilityTest, Table1AbortedCreatorGarbage) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  NewTxn(200, TxnState::kAborted);
  Version* v = NewVersion(beginword::MakeTxnId(200),
                          lockword::MakeTimestamp(kInfinity));
  EXPECT_FALSE(CheckVisibility(Ctx(self), v, 50).visible);
}

TEST_F(VisibilityTest, Table1TerminatedRereadsBeginField) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  // Creator not in the table at all: visibility re-reads the Begin word
  // until it is finalized. Finalize it from another thread.
  Version* v = NewVersion(beginword::MakeTxnId(999),
                          lockword::MakeTimestamp(kInfinity));
  std::thread finalizer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    v->begin.store(beginword::MakeTimestamp(10));
  });
  VisibilityResult r = CheckVisibility(Ctx(self), v, 50);
  finalizer.join();
  EXPECT_TRUE(r.visible);
}

/// --- Table 2: End contains a transaction ID (lock word) ---------------------

TEST_F(VisibilityTest, Table2ActiveForeignWriterStillVisible) {
  // TE updated V but has not committed: V is the latest committed version.
  Transaction* self = NewTxn(100, TxnState::kActive);
  NewTxn(200, TxnState::kActive);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeLockWord(0, 200));
  EXPECT_TRUE(CheckVisibility(Ctx(self), v, 50).visible);
}

TEST_F(VisibilityTest, Table2OwnWriteLockInvisible) {
  // We updated/deleted V ourselves: our new version (or nothing) wins.
  Transaction* self = NewTxn(100, TxnState::kActive);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeLockWord(0, 100));
  EXPECT_FALSE(CheckVisibility(Ctx(self), v, 50).visible);
}

TEST_F(VisibilityTest, Table2PreparingEndAfterReadTimeVisible) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  NewTxn(200, TxnState::kPreparing, /*end_ts=*/80);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeLockWord(0, 200));
  // TS=80 > RT=50: visible whether TE commits or aborts; no dependency.
  EXPECT_TRUE(CheckVisibility(Ctx(self), v, 50).visible);
  EXPECT_EQ(self->commit_dep_counter.load(), 0u);
}

TEST_F(VisibilityTest, Table2PreparingSpeculativeIgnore) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  Transaction* te = NewTxn(200, TxnState::kPreparing, /*end_ts=*/30);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeLockWord(0, 200));
  // TS=30 < RT=50: speculatively ignore; invisible + commit dep on TE.
  VisibilityResult r = CheckVisibility(Ctx(self), v, 50);
  EXPECT_FALSE(r.visible);
  EXPECT_EQ(self->commit_dep_counter.load(), 1u);
  {
    SpinLatchGuard g(te->dep_latch);
    EXPECT_EQ(te->commit_dep_set.size(), 1u);
  }
  EXPECT_EQ(stats_.Get(Stat::kSpeculativeIgnores), 1u);
}

TEST_F(VisibilityTest, Table2PreparingReadCommittedStaysVisibleNoDep) {
  // Mirror of Table2PreparingSpeculativeIgnore at Read Committed: TE has
  // not committed, so V is still the latest committed version -- visible,
  // and no commit dependency.
  Transaction* self = NewTxn(100, TxnState::kActive);
  self->isolation = IsolationLevel::kReadCommitted;
  Transaction* te = NewTxn(200, TxnState::kPreparing, /*end_ts=*/30);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeLockWord(0, 200));
  EXPECT_TRUE(CheckVisibility(Ctx(self), v, 50).visible);
  EXPECT_EQ(self->commit_dep_counter.load(), 0u);
  {
    SpinLatchGuard g(te->dep_latch);
    EXPECT_TRUE(te->commit_dep_set.empty());
  }
  EXPECT_EQ(stats_.Get(Stat::kSpeculativeIgnores), 0u);
}

TEST_F(VisibilityTest, Table2CommittedWriterEndTs) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  NewTxn(200, TxnState::kCommitted, /*end_ts=*/30);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeLockWord(0, 200));
  EXPECT_TRUE(CheckVisibility(Ctx(self), v, 20).visible);   // RT < TS
  EXPECT_FALSE(CheckVisibility(Ctx(self), v, 40).visible);  // RT > TS
}

TEST_F(VisibilityTest, Table2AbortedWriterVisible) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  NewTxn(200, TxnState::kAborted);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeLockWord(0, 200));
  EXPECT_TRUE(CheckVisibility(Ctx(self), v, 50).visible);
}

TEST_F(VisibilityTest, Table2ReadLockedOnlyVisible) {
  // Read locks without a writer: logical end time is still infinity.
  Transaction* self = NewTxn(100, TxnState::kActive);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeLockWord(3, lockword::kNoWriter));
  EXPECT_TRUE(CheckVisibility(Ctx(self), v, 50).visible);
}

TEST_F(VisibilityTest, Table2TerminatedWriterRereadsEndField) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeLockWord(0, 999));
  std::thread finalizer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    v->end.store(lockword::MakeTimestamp(70));
  });
  VisibilityResult r = CheckVisibility(Ctx(self), v, 50);
  finalizer.join();
  EXPECT_TRUE(r.visible);  // RT=50 < finalized end=70
}

/// --- validation mode ---------------------------------------------------------

TEST_F(VisibilityTest, ValidationWaitsForPreparingCreator) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  Transaction* tb = NewTxn(200, TxnState::kPreparing, /*end_ts=*/30);
  Version* v = NewVersion(beginword::MakeTxnId(200),
                          lockword::MakeTimestamp(kInfinity));
  std::thread committer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    tb->state.store(TxnState::kCommitted);
  });
  // RT=40 > TS=30 would be a speculative read in normal mode; validation
  // mode instead waits for TB to resolve and then sees it committed.
  VisibilityResult r =
      CheckVisibility(Ctx(self, VisibilityMode::kValidation), v, 40);
  committer.join();
  EXPECT_TRUE(r.visible);
  EXPECT_EQ(self->commit_dep_counter.load(), 0u);  // no speculative read dep
}

TEST_F(VisibilityTest, ValidationAbortedCreatorMeansGarbage) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  Transaction* tb = NewTxn(200, TxnState::kPreparing, /*end_ts=*/30);
  Version* v = NewVersion(beginword::MakeTxnId(200),
                          lockword::MakeTimestamp(kInfinity));
  std::thread aborter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    tb->state.store(TxnState::kAborted);
  });
  VisibilityResult r =
      CheckVisibility(Ctx(self, VisibilityMode::kValidation), v, 40);
  aborter.join();
  EXPECT_FALSE(r.visible);
}

TEST_F(VisibilityTest, ValidationSpeculativeIgnoreStillRegistersDep) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  Transaction* te = NewTxn(200, TxnState::kPreparing, /*end_ts=*/30);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeLockWord(0, 200));
  // Section 3.2: dependencies during validation only via speculative ignore.
  VisibilityResult r =
      CheckVisibility(Ctx(self, VisibilityMode::kValidation), v, 50);
  EXPECT_FALSE(r.visible);
  EXPECT_EQ(self->commit_dep_counter.load(), 1u);
  {
    SpinLatchGuard g(te->dep_latch);
    EXPECT_EQ(te->commit_dep_set.size(), 1u);
  }
}

/// --- updatability (Section 2.6) ---------------------------------------------

TEST_F(VisibilityTest, UpdatableWhenEndInfinity) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeTimestamp(kInfinity));
  EXPECT_EQ(CheckUpdatability(Ctx(self), v), Updatability::kUpdatable);
}

TEST_F(VisibilityTest, NotUpdatableWhenSuperseded) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeTimestamp(50));
  EXPECT_EQ(CheckUpdatability(Ctx(self), v), Updatability::kWriteConflict);
}

TEST_F(VisibilityTest, NotUpdatableWhenWriteLockedByActive) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  NewTxn(200, TxnState::kActive);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeLockWord(0, 200));
  EXPECT_EQ(CheckUpdatability(Ctx(self), v), Updatability::kWriteConflict);
}

TEST_F(VisibilityTest, NotUpdatableWhenWriteLockedByPreparing) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  NewTxn(200, TxnState::kPreparing, 30);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeLockWord(0, 200));
  EXPECT_EQ(CheckUpdatability(Ctx(self), v), Updatability::kWriteConflict);
}

TEST_F(VisibilityTest, UpdatableWhenWriterAborted) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  NewTxn(200, TxnState::kAborted);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeLockWord(0, 200));
  EXPECT_EQ(CheckUpdatability(Ctx(self), v), Updatability::kUpdatable);
}

TEST_F(VisibilityTest, UpdatableWhenOnlyReadLocked) {
  // Eager updates: read locks do not block writers (Section 4.2).
  Transaction* self = NewTxn(100, TxnState::kActive);
  Version* v = NewVersion(beginword::MakeTimestamp(10),
                          lockword::MakeLockWord(5, lockword::kNoWriter));
  EXPECT_EQ(CheckUpdatability(Ctx(self), v), Updatability::kUpdatable);
}

/// --- commit dependency resolution (Section 2.7) -----------------------------

TEST_F(VisibilityTest, ProviderCommitResolvesDependency) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  Transaction* tb = NewTxn(200, TxnState::kPreparing, 30);
  Version* v = NewVersion(beginword::MakeTxnId(200),
                          lockword::MakeTimestamp(kInfinity));
  ASSERT_TRUE(CheckVisibility(Ctx(self), v, 40).visible);
  ASSERT_EQ(self->commit_dep_counter.load(), 1u);

  tb->state.store(TxnState::kCommitted);
  ResolveCommitDependencies(tb, /*committed=*/true, txn_table_);
  EXPECT_EQ(self->commit_dep_counter.load(), 0u);
  EXPECT_FALSE(self->abort_now.load());
}

TEST_F(VisibilityTest, ProviderAbortCascades) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  Transaction* tb = NewTxn(200, TxnState::kPreparing, 30);
  Version* v = NewVersion(beginword::MakeTxnId(200),
                          lockword::MakeTimestamp(kInfinity));
  ASSERT_TRUE(CheckVisibility(Ctx(self), v, 40).visible);

  tb->state.store(TxnState::kAborted);
  ResolveCommitDependencies(tb, /*committed=*/false, txn_table_);
  EXPECT_TRUE(self->abort_now.load());
}

TEST_F(VisibilityTest, RegisterOnAlreadyCommittedProviderIsNoWait) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  Transaction* tb = NewTxn(200, TxnState::kCommitted, 30);
  EXPECT_EQ(RegisterCommitDependency(self, tb),
            CommitDepOutcome::kProviderCommitted);
  EXPECT_EQ(self->commit_dep_counter.load(), 0u);
}

TEST_F(VisibilityTest, RegisterOnAbortedProviderFails) {
  Transaction* self = NewTxn(100, TxnState::kActive);
  Transaction* tb = NewTxn(200, TxnState::kAborted);
  EXPECT_EQ(RegisterCommitDependency(self, tb),
            CommitDepOutcome::kProviderAborted);
  EXPECT_EQ(self->commit_dep_counter.load(), 0u);
}

TEST_F(VisibilityTest, RegisterOnTerminatedProviderIsAmbiguous) {
  // A Terminated provider may have committed OR aborted; the version word
  // it finalized is the only truth. Registration must not report
  // "committed" (a speculative reader would consume an aborted provider's
  // garbage version with no dependency recorded).
  Transaction* self = NewTxn(100, TxnState::kActive);
  Transaction* tb = NewTxn(200, TxnState::kTerminated, 30);
  EXPECT_EQ(RegisterCommitDependency(self, tb),
            CommitDepOutcome::kProviderTerminated);
  EXPECT_EQ(self->commit_dep_counter.load(), 0u);
}

}  // namespace
}  // namespace mvstore
