#include "util/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace mvstore {
namespace {

struct Counted {
  explicit Counted(std::atomic<int>& counter) : counter(counter) {
    counter.fetch_add(1);
  }
  ~Counted() { counter.fetch_sub(1); }
  std::atomic<int>& counter;
};

TEST(EpochTest, RetiredObjectFreedAfterAdvance) {
  EpochManager em;
  std::atomic<int> live{0};
  em.RetireObject(new Counted(live));
  EXPECT_EQ(live.load(), 1);
  em.TryAdvanceAndReclaim();
  em.TryAdvanceAndReclaim();
  EXPECT_EQ(live.load(), 0);
  EXPECT_EQ(em.PendingCount(), 0u);
}

TEST(EpochTest, GuardBlocksReclamation) {
  EpochManager em;
  std::atomic<int> live{0};
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};

  std::thread reader([&] {
    EpochGuard guard(em);
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!entered.load()) std::this_thread::yield();

  em.RetireObject(new Counted(live));
  em.TryAdvanceAndReclaim();
  em.TryAdvanceAndReclaim();
  // The reader entered before retirement, so the object must survive.
  EXPECT_EQ(live.load(), 1);

  release.store(true);
  reader.join();
  em.TryAdvanceAndReclaim();
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, NestedGuardsShareSlot) {
  EpochManager em;
  std::atomic<int> live{0};
  {
    EpochGuard outer(em);
    {
      EpochGuard inner(em);
      em.RetireObject(new Counted(live));
    }
    em.TryAdvanceAndReclaim();
    em.TryAdvanceAndReclaim();
    // Outer guard still active: object was retired while we might hold it.
    // (We entered before retirement, so it must survive.)
    EXPECT_EQ(live.load(), 1);
  }
  em.TryAdvanceAndReclaim();
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochTest, DrainAllFreesEverything) {
  EpochManager em;
  std::atomic<int> live{0};
  for (int i = 0; i < 100; ++i) em.RetireObject(new Counted(live));
  em.DrainAll();
  EXPECT_EQ(live.load(), 0);
  EXPECT_EQ(em.PendingCount(), 0u);
}

TEST(EpochTest, EpochAdvances) {
  EpochManager em;
  uint64_t e0 = em.CurrentEpoch();
  em.TryAdvanceAndReclaim();
  EXPECT_GT(em.CurrentEpoch(), e0);
}

/// Thread churn: slots must be recycled through the thread-exit registry,
/// not burned one per thread -- kMaxThreads (512) short-lived threads used
/// to exhaust the slot table for the life of the manager, silently
/// degrading every later guard to the slotless fallback path.
TEST(EpochTest, SlotReuseUnderThreadChurn) {
  EpochManager em;
  std::atomic<int> live{0};
  constexpr int kChurn = 1000;
  static_assert(kChurn > static_cast<int>(EpochManager::kMaxThreads),
                "churn must exceed the slot table to prove reuse");
  for (int i = 0; i < kChurn; ++i) {
    std::thread t([&] {
      EpochGuard guard(em);
      em.RetireObject(new Counted(live));
    });
    t.join();
  }
  // Sequential churn: each thread released its slot on exit, so the next
  // one found it on the freelist. A handful of slots, not a thousand.
  EXPECT_LE(em.UsedSlots(), 4u);
  em.DrainAll();
  EXPECT_EQ(live.load(), 0);
  EXPECT_EQ(em.PendingCount(), 0u);
}

TEST(EpochTest, ConcurrentReadersAndRetirers) {
  EpochManager em;
  std::atomic<int> live{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        EpochGuard guard(em);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) em.RetireObject(new Counted(live));
    });
  }
  for (size_t t = 4; t < threads.size(); ++t) threads[t].join();
  stop.store(true);
  for (int t = 0; t < 4; ++t) threads[t].join();

  em.TryAdvanceAndReclaim();
  em.DrainAll();
  EXPECT_EQ(live.load(), 0);
}

}  // namespace
}  // namespace mvstore
