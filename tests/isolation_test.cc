// Anomaly matrix: which isolation anomalies each (scheme, level) pair must
// prevent or permit.
//
//   * Dirty read       -- prevented at every level by every scheme.
//   * Non-repeatable read -- permitted at Read Committed, prevented at
//     Repeatable Read and above.
//   * Lost update      -- prevented by first-writer-wins (MV) / X locks (1V).
//   * Phantom          -- prevented at Serializable.
//   * Write skew       -- prevented at Serializable (read stability);
//     permitted under Snapshot isolation (the classic SI anomaly).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "common/random.h"
#include "core/database.h"

namespace mvstore {
namespace {

struct Row {
  uint64_t key;
  int64_t value;
};
uint64_t RowKey(const void* p) { return static_cast<const Row*>(p)->key; }

class IsolationTest : public ::testing::TestWithParam<Scheme> {
 protected:
  IsolationTest() {
    DatabaseOptions opts;
    opts.scheme = GetParam();
    opts.log_mode = LogMode::kDisabled;
    opts.lock_timeout_us = 50000;
    db_ = std::make_unique<Database>(opts);
    TableDef def;
    def.name = "rows";
    def.payload_size = sizeof(Row);
    def.indexes.push_back(IndexDef{&RowKey, 256, true});
    table_ = db_->CreateTable(def);
  }

  bool IsSV() const { return GetParam() == Scheme::kSingleVersion; }

  void Put(uint64_t key, int64_t value) {
    Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
    Row row{key, value};
    ASSERT_TRUE(db_->Insert(txn, table_, &row).ok());
    ASSERT_TRUE(db_->Commit(txn).ok());
  }

  std::optional<int64_t> Get(uint64_t key) {
    Row row{};
    Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
    Status s = db_->Read(txn, table_, 0, key, &row);
    if (s.IsAborted()) return std::nullopt;
    db_->Commit(txn);
    if (!s.ok()) return std::nullopt;
    return row.value;
  }

  std::unique_ptr<Database> db_;
  TableId table_ = 0;
};

/// Dirty read: T2 must never observe T1's uncommitted write, at any level.
TEST_P(IsolationTest, NoDirtyRead) {
  Put(1, 100);
  Txn* t1 = db_->Begin(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(db_->Update(t1, table_, 0, 1, [](void* p) {
                   static_cast<Row*>(p)->value = -1;
                 }).ok());

  // Reader in another thread (1V blocks on the lock; run it concurrently
  // and resolve by committing the writer).
  std::optional<int64_t> seen;
  std::thread reader([&] {
    Row row{};
    Txn* t2 = db_->Begin(IsolationLevel::kReadCommitted);
    Status s = db_->Read(t2, table_, 0, 1, &row);
    if (s.ok()) {
      seen = row.value;
      db_->Commit(t2);
    } else if (!s.IsAborted()) {
      db_->Abort(t2);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(db_->Commit(t1).ok());
  reader.join();
  // The reader saw either the old value or the new committed value (1V:
  // after blocking), never a torn/dirty intermediate... -1 is the
  // uncommitted value only until commit, so both -1-after-commit and 100
  // are legal; what is illegal is -1 *before* t1 committed. Since the reader
  // may have read after commit, assert it saw a committed value.
  if (seen.has_value()) {
    EXPECT_TRUE(*seen == 100 || *seen == -1);
  }
  // Deterministic variant for MV schemes: uncommitted writes are invisible.
  if (!IsSV()) {
    Txn* t3 = db_->Begin(IsolationLevel::kReadCommitted);
    ASSERT_TRUE(db_->Update(t3, table_, 0, 1, [](void* p) {
                     static_cast<Row*>(p)->value = -2;
                   }).ok());
    EXPECT_EQ(Get(1).value_or(0), -1);  // still the committed value
    db_->Abort(t3);
  }
}

/// Non-repeatable read: permitted at RC, prevented at RR+.
TEST_P(IsolationTest, NonRepeatableReadAtReadCommitted) {
  Put(1, 100);
  Txn* t1 = db_->Begin(IsolationLevel::kReadCommitted);
  Row row{};
  ASSERT_TRUE(db_->Read(t1, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 100);

  // Concurrent committed update (thread needed for 1V's short locks --
  // actually RC uses short locks, so this succeeds inline).
  Txn* t2 = db_->Begin(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(db_->Update(t2, table_, 0, 1, [](void* p) {
                   static_cast<Row*>(p)->value = 200;
                 }).ok());
  ASSERT_TRUE(db_->Commit(t2).ok());

  ASSERT_TRUE(db_->Read(t1, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 200);  // RC rereads the latest committed value
  ASSERT_TRUE(db_->Commit(t1).ok());
}

TEST_P(IsolationTest, RepeatableReadPreventsNonRepeatableRead) {
  Put(1, 100);
  Txn* t1 = db_->Begin(IsolationLevel::kRepeatableRead);
  Row row{};
  ASSERT_TRUE(db_->Read(t1, table_, 0, 1, &row).ok());
  EXPECT_EQ(row.value, 100);

  // Concurrent update. Under MV/L the updater installs the new version
  // eagerly but its *commit* waits for t1's read lock, so t1 must commit
  // before this thread can be joined.
  std::thread updater([&] {
    Txn* t2 = db_->Begin(IsolationLevel::kReadCommitted);
    Status s = db_->Update(t2, table_, 0, 1, [](void* p) {
      static_cast<Row*>(p)->value = 200;
    });
    if (s.ok()) {
      db_->Commit(t2);
    } else if (!s.IsAborted()) {
      db_->Abort(t2);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  Status r2 = db_->Read(t1, table_, 0, 1, &row);
  int64_t second_read = row.value;
  Status c = r2.ok() ? db_->Commit(t1) : r2;
  updater.join();
  if (r2.ok() && c.ok()) {
    // If t1 committed, both its reads must have returned the same value.
    EXPECT_EQ(second_read, 100);
  }
  // Other legal outcomes: MV/O fails read validation; 1V's updater times
  // out; MV/L's updater waits until after t1's commit.
}

/// Lost update: concurrent increments must all be reflected in the total.
TEST_P(IsolationTest, NoLostUpdate) {
  Put(1, 0);
  constexpr int kThreads = 4;
  constexpr int kIncrements = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      int done = 0;
      while (done < kIncrements) {
        Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
        Status s = db_->Update(txn, table_, 0, 1, [](void* p) {
          static_cast<Row*>(p)->value += 1;
        });
        if (s.ok() && db_->Commit(txn).ok()) {
          ++done;
        } else if (!s.IsAborted() && !s.ok()) {
          db_->Abort(txn);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(Get(1).value_or(-1), kThreads * kIncrements);
}

/// Phantom: serializable scans must not see new rows appear.
TEST_P(IsolationTest, SerializablePreventsPhantom) {
  Put(10, 1);
  // t1: serializable, scans key 11 (absent), then re-scans after t2 inserts.
  Txn* t1 = db_->Begin(IsolationLevel::kSerializable);
  int count1 = 0;
  ASSERT_TRUE(db_->Scan(t1, table_, 0, 11, nullptr, [&](const void*) {
                   ++count1;
                   return true;
                 }).ok());
  EXPECT_EQ(count1, 0);

  // t2 inserts key 11 concurrently.
  std::thread inserter([&] {
    Txn* t2 = db_->Begin(IsolationLevel::kReadCommitted);
    Row row{11, 7};
    Status s = db_->Insert(t2, table_, &row);
    if (s.ok()) {
      db_->Commit(t2);
    } else if (!s.IsAborted()) {
      db_->Abort(t2);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  int count2 = 0;
  Status rescan = db_->Scan(t1, table_, 0, 11, nullptr, [&](const void*) {
    ++count2;
    return true;
  });
  Status commit = rescan.IsAborted() ? rescan : db_->Commit(t1);
  inserter.join();

  if (commit.ok()) {
    // t1 committed: its two scans must agree (no phantom appeared).
    EXPECT_EQ(count1, count2);
  }
  // Otherwise t1 was aborted (validation/phantom/lock) -- also a correct way
  // to prevent the anomaly.
}

/// Write skew: two transactions read both rows, each updates one, violating
/// a constraint (sum >= 0). Serializable must prevent it; snapshot (MV) may
/// permit it -- the classic SI anomaly.
TEST_P(IsolationTest, SerializablePreventsWriteSkew) {
  Put(1, 50);
  Put(2, 50);
  auto skew_txn = [&](uint64_t read_key, uint64_t write_key) {
    Txn* txn = db_->Begin(IsolationLevel::kSerializable);
    Row a{}, b{};
    Status s = db_->Read(txn, table_, 0, read_key, &a);
    if (s.IsAborted()) return s;
    s = db_->Read(txn, table_, 0, write_key, &b);
    if (s.IsAborted()) return s;
    if (a.value + b.value >= 100) {
      s = db_->Update(txn, table_, 0, write_key, [](void* p) {
        static_cast<Row*>(p)->value -= 100;
      });
      if (s.IsAborted()) return s;
    }
    return db_->Commit(txn);
  };

  Status s1, s2;
  std::thread t1([&] { s1 = skew_txn(1, 2); });
  std::thread t2([&] { s2 = skew_txn(2, 1); });
  t1.join();
  t2.join();

  // At most one of the two may commit; the constraint must hold.
  int64_t sum = Get(1).value_or(0) + Get(2).value_or(0);
  EXPECT_GE(sum, -100 + 100);  // i.e. sum >= 0
  EXPECT_FALSE(s1.ok() && s2.ok() && sum < 0);
  EXPECT_GE(sum, 0);
}

TEST_P(IsolationTest, SnapshotAllowsWriteSkewOnMV) {
  if (IsSV()) GTEST_SKIP() << "1V maps snapshot to repeatable read";
  Put(1, 50);
  Put(2, 50);
  // Force the interleaving: both read under SI, then both write.
  Txn* t1 = db_->Begin(IsolationLevel::kSnapshot);
  Txn* t2 = db_->Begin(IsolationLevel::kSnapshot);
  Row row{};
  ASSERT_TRUE(db_->Read(t1, table_, 0, 1, &row).ok());
  ASSERT_TRUE(db_->Read(t1, table_, 0, 2, &row).ok());
  ASSERT_TRUE(db_->Read(t2, table_, 0, 1, &row).ok());
  ASSERT_TRUE(db_->Read(t2, table_, 0, 2, &row).ok());
  Status w1 = db_->Update(t1, table_, 0, 1, [](void* p) {
    static_cast<Row*>(p)->value -= 100;
  });
  Status w2 = db_->Update(t2, table_, 0, 2, [](void* p) {
    static_cast<Row*>(p)->value -= 100;
  });
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  ASSERT_TRUE(db_->Commit(t1).ok());
  ASSERT_TRUE(db_->Commit(t2).ok());
  // Write skew admitted: both committed, constraint violated.
  EXPECT_LT(Get(1).value_or(0) + Get(2).value_or(0), 0);
}

/// Read-only snapshot transactions see a consistent point-in-time view even
/// while writers churn (the mechanism behind Figures 6-9).
TEST_P(IsolationTest, SnapshotReadsAreConsistent) {
  if (IsSV()) GTEST_SKIP() << "1V has no snapshots";
  Put(1, 500);
  Put(2, 500);

  std::atomic<bool> stop{false};
  // Writer: moves money between rows 1 and 2; sum invariant 1000.
  std::thread writer([&] {
    Random rng(1);
    while (!stop.load()) {
      Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
      Status s = db_->Update(txn, table_, 0, 1, [](void* p) {
        static_cast<Row*>(p)->value -= 10;
      });
      if (s.ok()) {
        s = db_->Update(txn, table_, 0, 2, [](void* p) {
          static_cast<Row*>(p)->value += 10;
        });
      }
      if (s.ok()) {
        db_->Commit(txn);
      } else if (!s.IsAborted()) {
        db_->Abort(txn);
      }
    }
  });

  for (int i = 0; i < 100; ++i) {
    Txn* txn = db_->Begin(IsolationLevel::kSnapshot, /*read_only=*/true);
    Row a{}, b{};
    Status s1 = db_->Read(txn, table_, 0, 1, &a);
    Status s2 = db_->Read(txn, table_, 0, 2, &b);
    ASSERT_TRUE(s1.ok() && s2.ok());
    EXPECT_EQ(a.value + b.value, 1000);
    ASSERT_TRUE(db_->Commit(txn).ok());
  }
  stop.store(true);
  writer.join();
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, IsolationTest,
                         ::testing::Values(Scheme::kSingleVersion,
                                           Scheme::kMultiVersionLocking,
                                           Scheme::kMultiVersionOptimistic),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheme::kSingleVersion:
                               return std::string("SV");
                             case Scheme::kMultiVersionLocking:
                               return std::string("MVL");
                             default:
                               return std::string("MVO");
                           }
                         });

}  // namespace
}  // namespace mvstore
