// Property-based concurrency stress: the bank-transfer invariant.
//
// N accounts, T threads move money between random pairs; the total balance
// is invariant under every scheme and every isolation level that provides
// atomicity (all of them -- transfers are atomic read-modify-writes on two
// keys). Serializable additionally guarantees that concurrent audits always
// see the exact total.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/random.h"
#include "core/database.h"

namespace mvstore {
namespace {

struct Account {
  uint64_t id;
  int64_t balance;
};
uint64_t AccountKey(const void* p) {
  return static_cast<const Account*>(p)->id;
}

struct StressParam {
  Scheme scheme;
  IsolationLevel isolation;
};

std::string ParamName(const ::testing::TestParamInfo<StressParam>& info) {
  std::string s;
  switch (info.param.scheme) {
    case Scheme::kSingleVersion:
      s = "SV";
      break;
    case Scheme::kMultiVersionLocking:
      s = "MVL";
      break;
    case Scheme::kMultiVersionOptimistic:
      s = "MVO";
      break;
  }
  return s + "_" + IsolationLevelName(info.param.isolation);
}

class BankStressTest : public ::testing::TestWithParam<StressParam> {
 protected:
  static constexpr uint64_t kAccounts = 64;
  static constexpr int64_t kInitialBalance = 1000;

  BankStressTest() {
    DatabaseOptions opts;
    opts.scheme = GetParam().scheme;
    opts.log_mode = LogMode::kDisabled;
    opts.lock_timeout_us = 2000;
    opts.deadlock_interval_us = 500;
    db_ = std::make_unique<Database>(opts);
    TableDef def;
    def.name = "accounts";
    def.payload_size = sizeof(Account);
    def.indexes.push_back(IndexDef{&AccountKey, kAccounts, true});
    table_ = db_->CreateTable(def);
    for (uint64_t id = 0; id < kAccounts; ++id) {
      Txn* txn = db_->Begin(IsolationLevel::kReadCommitted);
      Account acc{id, kInitialBalance};
      EXPECT_TRUE(db_->Insert(txn, table_, &acc).ok());
      EXPECT_TRUE(db_->Commit(txn).ok());
    }
  }

  /// Transfer `amount` from `from` to `to`; single attempt.
  Status Transfer(uint64_t from, uint64_t to, int64_t amount,
                  IsolationLevel iso) {
    Txn* txn = db_->Begin(iso);
    Status s = db_->Update(txn, table_, 0, from, [amount](void* p) {
      static_cast<Account*>(p)->balance -= amount;
    });
    if (s.IsAborted()) return s;
    if (!s.ok()) {
      db_->Abort(txn);
      return s;
    }
    s = db_->Update(txn, table_, 0, to, [amount](void* p) {
      static_cast<Account*>(p)->balance += amount;
    });
    if (s.IsAborted()) return s;
    if (!s.ok()) {
      db_->Abort(txn);
      return s;
    }
    return db_->Commit(txn);
  }

  int64_t TotalBalance() {
    int64_t total = 0;
    Txn* txn = db_->Begin(IsolationLevel::kSerializable, /*read_only=*/true);
    for (uint64_t id = 0; id < kAccounts; ++id) {
      Account acc{};
      Status s = db_->Read(txn, table_, 0, id, &acc);
      EXPECT_TRUE(s.ok());
      total += acc.balance;
    }
    EXPECT_TRUE(db_->Commit(txn).ok());
    return total;
  }

  std::unique_ptr<Database> db_;
  TableId table_ = 0;
};

TEST_P(BankStressTest, TotalBalanceInvariantUnderConcurrency) {
  constexpr int kThreads = 8;
  constexpr int kTransfersPerThread = 300;
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(1000 + t);
      int done = 0;
      int attempts = 0;
      while (done < kTransfersPerThread && attempts < kTransfersPerThread * 50) {
        ++attempts;
        uint64_t from = rng.Uniform(kAccounts);
        uint64_t to = rng.Uniform(kAccounts);
        if (from == to) continue;
        if (Transfer(from, to, static_cast<int64_t>(rng.Uniform(20)),
                     GetParam().isolation)
                .ok()) {
          ++done;
          committed.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(committed.load(), 0u);
  EXPECT_EQ(TotalBalance(),
            static_cast<int64_t>(kAccounts) * kInitialBalance);
}

TEST_P(BankStressTest, ConcurrentAuditsSeeConsistentTotals) {
  // Snapshot/serializable audits must always see the invariant total even
  // mid-flight. (Read Committed audits may not -- they are excluded.)
  if (GetParam().isolation == IsolationLevel::kReadCommitted) {
    GTEST_SKIP() << "RC audits are allowed to see in-between states";
  }
  std::atomic<bool> stop{false};
  std::atomic<int> bad_audits{0};
  std::thread auditor([&] {
    while (!stop.load()) {
      Txn* txn = db_->Begin(GetParam().scheme == Scheme::kSingleVersion
                                ? IsolationLevel::kSerializable
                                : IsolationLevel::kSnapshot,
                            /*read_only=*/true);
      int64_t total = 0;
      bool ok = true;
      for (uint64_t id = 0; id < kAccounts && ok; ++id) {
        Account acc{};
        Status s = db_->Read(txn, table_, 0, id, &acc);
        if (!s.ok()) {
          ok = false;
          if (!s.IsAborted()) db_->Abort(txn);
          txn = nullptr;
          break;
        }
        total += acc.balance;
      }
      if (txn != nullptr) {
        if (ok && db_->Commit(txn).ok()) {
          if (total != static_cast<int64_t>(kAccounts) * kInitialBalance) {
            bad_audits.fetch_add(1);
          }
        } else if (!ok) {
          // aborted mid-read; nothing to check
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      Random rng(t);
      for (int i = 0; i < 400; ++i) {
        uint64_t from = rng.Uniform(kAccounts);
        uint64_t to = (from + 1 + rng.Uniform(kAccounts - 1)) % kAccounts;
        Transfer(from, to, 5, GetParam().isolation);
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  auditor.join();
  EXPECT_EQ(bad_audits.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndIsolation, BankStressTest,
    ::testing::Values(
        StressParam{Scheme::kSingleVersion, IsolationLevel::kReadCommitted},
        StressParam{Scheme::kSingleVersion, IsolationLevel::kRepeatableRead},
        StressParam{Scheme::kSingleVersion, IsolationLevel::kSerializable},
        StressParam{Scheme::kMultiVersionLocking,
                    IsolationLevel::kReadCommitted},
        StressParam{Scheme::kMultiVersionLocking,
                    IsolationLevel::kRepeatableRead},
        StressParam{Scheme::kMultiVersionLocking,
                    IsolationLevel::kSerializable},
        StressParam{Scheme::kMultiVersionOptimistic,
                    IsolationLevel::kReadCommitted},
        StressParam{Scheme::kMultiVersionOptimistic,
                    IsolationLevel::kRepeatableRead},
        StressParam{Scheme::kMultiVersionOptimistic,
                    IsolationLevel::kSerializable}),
    ParamName);

}  // namespace
}  // namespace mvstore
