#include "storage/hash_index.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "storage/table.h"

namespace mvstore {
namespace {

struct KeyedRow {
  uint64_t key;
  uint64_t value;
};

uint64_t KeyOfRow(const void* p) { return static_cast<const KeyedRow*>(p)->key; }

class HashIndexTest : public ::testing::Test {
 protected:
  HashIndexTest() : table_(0, MakeDef()) {}

  static TableDef MakeDef() {
    TableDef def;
    def.name = "t";
    def.payload_size = sizeof(KeyedRow);
    def.indexes.push_back(IndexDef{&KeyOfRow, 256, true});
    return def;
  }

  Version* MakeVersion(uint64_t key, uint64_t value) {
    KeyedRow row{key, value};
    Version* v = table_.AllocateVersion(&row);
    versions_.push_back(v);
    return v;
  }

  ~HashIndexTest() override {
    for (Version* v : versions_) table_.FreeUnpublishedVersion(v);
  }

  Table table_;
  std::vector<Version*> versions_;
};

TEST_F(HashIndexTest, InsertAndScanByKey) {
  HashIndex& index = table_.index(0);
  index.Insert(MakeVersion(7, 70));
  index.Insert(MakeVersion(8, 80));

  int seen = 0;
  index.ScanBucket(7, [&](Version* v) {
    if (index.KeyOf(v) == 7) {
      EXPECT_EQ(static_cast<const KeyedRow*>(v->Payload())->value, 70u);
      ++seen;
    }
    return true;
  });
  EXPECT_EQ(seen, 1);
}

TEST_F(HashIndexTest, MultipleVersionsSameKeyChained) {
  HashIndex& index = table_.index(0);
  for (int i = 0; i < 5; ++i) index.Insert(MakeVersion(42, i));
  int seen = 0;
  index.ScanBucket(42, [&](Version* v) {
    if (index.KeyOf(v) == 42) ++seen;
    return true;
  });
  EXPECT_EQ(seen, 5);
}

TEST_F(HashIndexTest, UnlinkHead) {
  HashIndex& index = table_.index(0);
  Version* a = MakeVersion(1, 1);
  Version* b = MakeVersion(1, 2);
  index.Insert(a);
  index.Insert(b);  // b is now the head
  EXPECT_TRUE(index.Unlink(b));
  int seen = 0;
  index.ScanBucket(1, [&](Version* v) {
    EXPECT_EQ(v, a);
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 1);
}

TEST_F(HashIndexTest, UnlinkInterior) {
  HashIndex& index = table_.index(0);
  Version* a = MakeVersion(1, 1);
  Version* b = MakeVersion(1, 2);
  Version* c = MakeVersion(1, 3);
  index.Insert(a);
  index.Insert(b);
  index.Insert(c);
  EXPECT_TRUE(index.Unlink(b));
  EXPECT_EQ(index.CountEntries(), 2u);
  EXPECT_FALSE(index.Unlink(b));  // second unlink reports not-found
}

TEST_F(HashIndexTest, ScanAllSeesEverything) {
  HashIndex& index = table_.index(0);
  for (uint64_t k = 0; k < 100; ++k) index.Insert(MakeVersion(k, k));
  uint64_t count = 0;
  index.ScanAll([&](Version*) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 100u);
}

TEST_F(HashIndexTest, BucketLockCount) {
  HashIndex& index = table_.index(0);
  auto& bucket = index.BucketFor(5);
  EXPECT_EQ(HashIndex::BucketLockCount(bucket), 0u);
  HashIndex::IncrBucketLockCount(bucket);
  HashIndex::IncrBucketLockCount(bucket);
  EXPECT_EQ(HashIndex::BucketLockCount(bucket), 2u);
  HashIndex::DecrBucketLockCount(bucket);
  EXPECT_EQ(HashIndex::BucketLockCount(bucket), 1u);
  HashIndex::DecrBucketLockCount(bucket);
  EXPECT_EQ(HashIndex::BucketLockCount(bucket), 0u);
}

TEST_F(HashIndexTest, ConcurrentInsertsAllLand) {
  HashIndex& index = table_.index(0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::vector<Version*>> made(kThreads);
  std::vector<std::thread> threads;
  std::mutex mu;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        KeyedRow row{static_cast<uint64_t>(t * kPerThread + i), 0};
        Version* v = table_.AllocateVersion(&row);
        made[t].push_back(v);
        index.Insert(v);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& list : made) {
    std::lock_guard<std::mutex> guard(mu);
    versions_.insert(versions_.end(), list.begin(), list.end());
  }
  EXPECT_EQ(index.CountEntries(), uint64_t{kThreads} * kPerThread);
}

TEST_F(HashIndexTest, ConcurrentInsertAndUnlinkKeepsOthers) {
  HashIndex& index = table_.index(0);
  // Pre-load one bucket-colliding set, then unlink half while inserting more.
  std::vector<Version*> stable, doomed;
  for (int i = 0; i < 100; ++i) {
    Version* v = MakeVersion(0, i);  // same key -> same bucket
    index.Insert(v);
    (i % 2 == 0 ? stable : doomed).push_back(v);
  }
  std::thread unlinker([&] {
    for (Version* v : doomed) EXPECT_TRUE(index.Unlink(v));
  });
  std::thread inserter([&] {
    for (int i = 0; i < 100; ++i) index.Insert(MakeVersion(0, 1000 + i));
  });
  unlinker.join();
  inserter.join();
  // All stable + new versions remain.
  EXPECT_EQ(index.CountEntries(), 150u);
}

}  // namespace
}  // namespace mvstore
